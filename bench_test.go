package recordroute

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
// Benchmarks measure the cost of regenerating each result at test scale;
// their reported custom metrics carry the reproduced headline numbers so
// `go test -bench` output doubles as a results table.

import (
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"recordroute/internal/analysis"
	"recordroute/internal/measure"
	"recordroute/internal/packet"
	"recordroute/internal/probe"
	"recordroute/internal/study"
	"recordroute/internal/topology"
)

// benchScale keeps benchmark topologies small enough to iterate.
const benchScale = 0.2

func benchInternet(b *testing.B) *Internet {
	b.Helper()
	in, err := New(WithScale(benchScale), WithProbeRate(200))
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkTable1ResponseRates regenerates Table 1: ping and ping-RR
// response rates by IP and AS type.
func BenchmarkTable1ResponseRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := benchInternet(b)
		sum := in.Table1(io.Discard)
		b.ReportMetric(sum.RRRatioByIP, "rr/ping-byIP")
		b.ReportMetric(sum.RRRatioByAS, "rr/ping-byAS")
	}
}

// BenchmarkFigure1ClosestVPCDF regenerates Figure 1 and the §3.3
// headline reachability numbers (including alias and ping-RRudp
// recovery).
func BenchmarkFigure1ClosestVPCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := benchInternet(b)
		sum := in.Figure1Reachability(io.Discard)
		b.ReportMetric(sum.ReachableFrac, "reachable-frac")
		b.ReportMetric(sum.Within8Frac, "within8-frac")
	}
}

// BenchmarkFigure1StudyShards regenerates Figure 1 through the sharded
// campaign executor at K = 1, 2, 4. Results are identical at every K
// (the equivalence tests assert it); what varies is wall-clock, which
// tracks min(K, GOMAXPROCS, NumCPU) — the gomaxprocs and numcpu metrics
// record how much hardware parallelism the run actually had, so scaling
// gates (cmd/benchguard -min-speedup) can tell real regressions from
// undersized hosts.
func BenchmarkFigure1StudyShards(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in, err := New(WithScale(benchScale), WithProbeRate(200), WithShards(k))
				if err != nil {
					b.Fatal(err)
				}
				sum := in.Figure1Reachability(io.Discard)
				b.ReportMetric(sum.ReachableFrac, "reachable-frac")
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			b.ReportMetric(float64(runtime.NumCPU()), "numcpu")
		})
	}
}

// BenchmarkOriginPhase times the single-VP origin ping phase (three
// pings per destination, the paper's responsiveness phase 1) through
// the destination-sharded executor at K = 1, 2, 4: the fleet is built
// and warmed outside the timed region, so the phase's own fan-out —
// contiguous destination ranges across replicas, indexed scheduling,
// the ordered merge (DESIGN.md §15) — is what the clock sees. Results
// are K-invariant (the shard property suite asserts it); wall-clock
// tracks min(K, GOMAXPROCS, NumCPU), recorded per line for the
// benchguard scaling gate.
func BenchmarkOriginPhase(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			cfg := topology.DefaultConfig(topology.Epoch2016).Scale(benchScale)
			s, err := study.New(cfg, study.Options{Rate: 200, ShuffleSeed: 7, Shards: k})
			if err != nil {
				b.Fatal(err)
			}
			dests := s.Data.Addrs()
			fleet := s.Fleet()
			if pc, ok := fleet.(*measure.ParallelCampaign); ok {
				pc.VPNames() // replica cloning is spin-up, not phase time
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				grouped := fleet.PingBatchVP(s.Origin.Name, dests, 3, probe.Options{Rate: 200})
				if len(grouped) != len(dests) {
					b.Fatalf("merged %d groups for %d destinations", len(grouped), len(dests))
				}
			}
			b.ReportMetric(float64(len(dests)), "dests")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			b.ReportMetric(float64(runtime.NumCPU()), "numcpu")
		})
	}
}

// benchRouteGraph builds a deterministic two-tier AS graph shaped like
// the topology generator's output: a meshed transit core, mid-tier
// providers multi-homed into it, and stub leaves under the mid tier.
// Big enough (~3k ASes) that per-destination BFS dominates setup.
func benchRouteGraph() *topology.Graph {
	const core, mid, leaf = 20, 280, 2700
	g := topology.NewGraph(core + mid + leaf)
	for i := 0; i < core; i++ {
		for j := i + 1; j < core; j++ {
			g.AddLink(i, j, topology.RelPeer)
		}
	}
	for m := 0; m < mid; m++ {
		id := core + m
		g.AddLink(id, m%core, topology.RelProvider)
		g.AddLink(id, (m*7+3)%core, topology.RelProvider)
	}
	for l := 0; l < leaf; l++ {
		id := core + mid + l
		g.AddLink(id, core+l%mid, topology.RelProvider)
		if l%3 == 0 {
			g.AddLink(id, core+(l*11+5)%mid, topology.RelProvider)
		}
	}
	return g
}

// BenchmarkRouteBuild times the route-plane build — the all-pairs
// valley-free next-hop computation that dominates topology.Build — at
// worker counts 1, 2, 4 via ComputeRoutesParallel. The flat backing
// array and per-destination row writes make output bit-identical at
// every width (the routing tests assert it); wall-clock tracks
// min(workers, GOMAXPROCS, NumCPU), recorded for the scaling gate.
func BenchmarkRouteBuild(b *testing.B) {
	g := benchRouteGraph()
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := topology.ComputeRoutesParallel(g, w)
				if r == nil {
					b.Fatal("nil routes")
				}
			}
			b.ReportMetric(float64(g.N()), "ases")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			b.ReportMetric(float64(runtime.NumCPU()), "numcpu")
		})
	}
}

// BenchmarkReachabilityRecovery isolates the §3.3 reclassification
// passes (alias resolution plus ping-RRudp) on top of a shared
// responsiveness run.
func BenchmarkReachabilityRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := benchInternet(b)
		in.Table1(nil) // populate the cache outside the interesting part
		sum := in.Figure1Reachability(nil)
		b.ReportMetric(float64(sum.AliasReclassified), "alias-reclass")
		b.ReportMetric(float64(sum.RRUDPReclassified), "rrudp-reclass")
	}
}

// BenchmarkVPResponseDistribution regenerates the §3.2 distribution.
func BenchmarkVPResponseDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := benchInternet(b)
		d := in.VPResponseDistribution()
		b.ReportMetric(d.AboveTwoThirds, "above-2/3-frac")
	}
}

// BenchmarkFigure2Epochs regenerates the 2011-vs-2016 comparison (two
// full Internets, two full measurement campaigns).
func BenchmarkFigure2Epochs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := benchInternet(b)
		sum, err := in.Figure2Epochs(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.Reachable2016, "reachable-2016")
		b.ReportMetric(sum.Reachable2011, "reachable-2011")
	}
}

// BenchmarkStampAudit regenerates the §3.5 traceroute/RR AS audit.
func BenchmarkStampAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := benchInternet(b)
		sum := in.StampAudit(io.Discard, 50)
		b.ReportMetric(float64(sum.Always), "always-stamp")
		b.ReportMetric(float64(sum.Never), "never-stamp")
	}
}

// BenchmarkFigure3CloudDistance regenerates the cloud hop-distance
// comparison.
func BenchmarkFigure3CloudDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := benchInternet(b)
		sum := in.Figure3Clouds(io.Discard, 150)
		for _, f := range sum.Within8 {
			b.ReportMetric(f, "cloud-within8-frac")
			break
		}
	}
}

// BenchmarkFigure4RateLimiting regenerates the per-VP 10-vs-100pps
// response counts.
func BenchmarkFigure4RateLimiting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := benchInternet(b)
		sum := in.Figure4RateLimit(io.Discard, 300)
		b.ReportMetric(float64(len(sum.DrasticDrop)), "drastic-drop-vps")
	}
}

// BenchmarkFigure5TTLTradeoff regenerates the TTL sweep.
func BenchmarkFigure5TTLTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := benchInternet(b)
		sum := in.Figure5TTL(io.Discard, 100)
		b.ReportMetric(sum.ReachableRate[10], "reach-rate@ttl10")
		b.ReportMetric(sum.UnreachableRate[10], "unreach-rate@ttl10")
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationDecode compares the reusable zero-allocation decoder
// (the gopacket DecodingLayer idiom) against allocating fresh layer
// structs per packet.
func BenchmarkAblationDecode(b *testing.B) {
	rr := packet.NewRecordRoute(9)
	for i := 0; i < 4; i++ {
		rr.Record(addrFor(i))
	}
	hdr := packet.IPv4{TTL: 32, Protocol: packet.ProtocolICMP, Src: addrFor(100), Dst: addrFor(200)}
	if err := hdr.SetRecordRoute(rr); err != nil {
		b.Fatal(err)
	}
	wire, err := hdr.Marshal(packet.NewEchoRequest(7, 9, []byte("payload")).Marshal())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("reused", func(b *testing.B) {
		var p packet.Parsed
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := p.Decode(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var p packet.Parsed
			if err := p.Decode(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationProbeOrder compares randomized against sequential
// destination order under destination-proximate rate limiting: random
// order spreads options load over limiters, the motivation for §4.1's
// methodology.
func BenchmarkAblationProbeOrder(b *testing.B) {
	run := func(b *testing.B, shuffle bool) {
		responses := 0.0
		for i := 0; i < b.N; i++ {
			cfg := topology.DefaultConfig(topology.Epoch2016).Scale(benchScale)
			cfg.EdgeRateLimitRate = 0.5 // make limiters common for contrast
			cfg.EdgeRateLimitPPS = 15
			s, err := study.New(cfg, study.Options{Rate: 100})
			if err != nil {
				b.Fatal(err)
			}
			opts := probe.Options{Rate: 100}
			var perVP map[string][]probe.Result
			if shuffle {
				perVP = s.Camp.PingRRAll(s.Data.Addrs(), opts, s.Shuffler())
			} else {
				perVP = s.Camp.PingRRAll(s.Data.Addrs(), opts, nil)
			}
			got := 0
			for _, rs := range perVP {
				for _, r := range rs {
					if r.Type == probe.EchoReply {
						got++
					}
				}
			}
			responses += float64(got)
		}
		b.ReportMetric(responses/float64(b.N), "responses")
	}
	b.Run("sequential", func(b *testing.B) { run(b, false) })
	b.Run("shuffled", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationVPSelection compares greedy against first-k site
// selection for Figure 1's subset coverage.
func BenchmarkAblationVPSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := topology.DefaultConfig(topology.Epoch2016).Scale(benchScale)
		s, err := study.New(cfg, study.Options{Rate: 200})
		if err != nil {
			b.Fatal(err)
		}
		r := s.RunResponsiveness()
		stats := r.Stats
		cover := analysis.CoverageFromStats(stats, 9)
		steps := analysis.GreedyCover(cover, 3)
		if len(steps) > 0 {
			b.ReportMetric(float64(steps[len(steps)-1].TotalCovered), "greedy3-cover")
		}
		// First-3 M-Lab sites by name, the naive alternative.
		naive := make(map[netip.Addr]bool)
		for i, vp := range []string{"mlab-0", "mlab-1", "mlab-2"} {
			_ = i
			for d := range cover[vp] {
				naive[d] = true
			}
		}
		b.ReportMetric(float64(len(naive)), "first3-cover")
	}
}

// BenchmarkAblationFastPath compares full event-level packet simulation
// of a ping-RR against the analytic path oracle (ForwardStampPath): the
// oracle is far cheaper but cannot express behaviour (filtering,
// policing, partial stamping) — which is why measurements run through
// the simulator and the oracle serves as ground truth only.
func BenchmarkAblationFastPath(b *testing.B) {
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(benchScale)
	s, err := study.New(cfg, study.Options{Rate: 200})
	if err != nil {
		b.Fatal(err)
	}
	vp := s.Topo.VPs[len(s.Topo.VPs)-1]
	dst := s.Topo.Dests[0].Addr
	b.Run("event-sim", func(b *testing.B) {
		m := s.Camp.VP(vp.Name)
		for i := 0; i < b.N; i++ {
			done := false
			m.Prober.StartOne(probe.Spec{Dst: dst, Kind: probe.PingRR}, 0, func(probe.Result) { done = true })
			s.Camp.Eng.Run()
			if !done {
				b.Fatal("probe unresolved")
			}
		}
	})
	b.Run("oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if s.Topo.ForwardStampPath(vp.Addr, dst) == nil {
				b.Fatal("no oracle path")
			}
		}
	})
}

// --- Snapshot/clone scaling ----------------------------------------------

// BenchmarkBuildVsClone compares regenerating a topology from its Config
// against stamping out a replica from a frozen snapshot. The build runs
// once outside the timed region; each op is one Clone. The build/clone-x
// metric is the speedup — the whole point of the route-plane split is
// that it stays well above 1 as shard fleets grow. Runs at default
// (unscaled) config: route computation grows superlinearly with the AS
// graph while cloning is linear in nodes, so benchScale would
// understate the gap profile-sized campaigns see.
func BenchmarkBuildVsClone(b *testing.B) {
	cfg := topology.DefaultConfig(topology.Epoch2016)
	start := time.Now()
	src := topology.MustBuild(cfg)
	buildNs := float64(time.Since(start).Nanoseconds())
	snap := topology.SnapshotOf(src)
	snap.Clone() // pay the one-time Freeze outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap.Clone() == nil {
			b.Fatal("nil clone")
		}
	}
	cloneNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(buildNs/cloneNs, "build/clone-x")
}

// BenchmarkFleetSpinup measures wall-clock fleet assembly (snapshot →
// K clone replicas → VP partition) and the retained heap one fleet
// costs, per shard count. The source topology and its freeze are shared
// setup: spin-up here is pure cloning, which is what a study pays when
// its sequential campaign already built the plane.
func BenchmarkFleetSpinup(b *testing.B) {
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(benchScale)
	src := topology.MustBuild(cfg)
	topology.SnapshotOf(src) // freeze once, outside every timed region
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pc, err := measure.NewParallelCampaignFrom(src, k)
				if err != nil {
					b.Fatal(err)
				}
				if len(pc.VPNames()) == 0 { // forces replica construction
					b.Fatal("no VPs")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "spinup-ms")
			b.StopTimer()
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			pc, err := measure.NewParallelCampaignFrom(src, k)
			if err != nil {
				b.Fatal(err)
			}
			pc.VPNames()
			runtime.GC()
			runtime.ReadMemStats(&after)
			heap := float64(after.HeapAlloc) - float64(before.HeapAlloc)
			if heap < 0 {
				heap = 0 // GC noise can outweigh a small fleet
			}
			b.ReportMetric(heap/(1<<20), "replica-heap-MB")
			runtime.KeepAlive(pc)
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			b.ReportMetric(float64(runtime.NumCPU()), "numcpu")
		})
	}
}

// BenchmarkLargeScaleCampaign runs a ping-RR sweep over a destination
// subset of the large profile (10^5+ prefixes) through a 4-shard fleet:
// the scaling smoke test for profile-sized campaigns. The prefixes
// metric records the full destination universe the build carried.
func BenchmarkLargeScaleCampaign(b *testing.B) {
	if testing.Short() {
		b.Skip("large profile in -short mode")
	}
	for i := 0; i < b.N; i++ {
		cfg := topology.DefaultConfig(topology.Epoch2016)
		s, err := study.New(cfg, study.Options{Rate: 200, ShuffleSeed: 7, Shards: 4, Scale: topology.ScaleLarge})
		if err != nil {
			b.Fatal(err)
		}
		dests := s.Data.Addrs()
		if len(dests) > 2000 {
			dests = dests[:2000]
		}
		perVP := s.Fleet().PingRRAll(dests, probe.Options{Rate: 200}, s.Shuffler())
		replies := 0
		for _, rs := range perVP {
			for _, r := range rs {
				if r.Type == probe.EchoReply {
					replies++
				}
			}
		}
		b.ReportMetric(float64(replies), "rr-replies")
		b.ReportMetric(float64(len(s.Data.Addrs())), "prefixes")
	}
}

// BenchmarkSimulatorForwarding measures the raw packet-forwarding rate
// of the discrete-event substrate (events per op via engine counters).
func BenchmarkSimulatorForwarding(b *testing.B) {
	in := benchInternet(b)
	vp := in.MLabVPs()[len(in.MLabVPs())-1]
	dst := in.Destinations()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.PingRR(vp, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// addrFor derives a distinct test address.
func addrFor(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
}
