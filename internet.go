package recordroute

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"recordroute/internal/measure"
	"recordroute/internal/netsim"
	"recordroute/internal/obs"
	"recordroute/internal/probe"
	"recordroute/internal/revtr"
	"recordroute/internal/study"
	"recordroute/internal/topology"
)

// Internet is a simulated Internet with vantage points and probe
// targets. It is not safe for concurrent use: the underlying
// discrete-event engine is single-threaded.
type Internet struct {
	st   *study.Study
	opts options

	resp   *study.Responsiveness // cached Table 1 measurement
	obsCfg obs.Observer          // accumulated observability config (see obs.go)
}

// New builds a simulated Internet.
func New(opts ...Option) (*Internet, error) {
	cfg, o := buildConfig(opts)
	if err := validateScale(o.scale); err != nil {
		return nil, err
	}
	var profile topology.ScaleProfile
	if o.profile != "" {
		p, err := topology.ParseScale(o.profile)
		if err != nil {
			return nil, err
		}
		profile = p
	}
	st, err := study.New(cfg, study.Options{
		Rate: o.rate, Timeout: o.timeout, Shards: o.shards,
		Retries: o.retries, Adaptive: o.retries > 0,
		Scale: profile,
	})
	if err != nil {
		return nil, err
	}
	return &Internet{st: st, opts: o}, nil
}

// MustNew is New, panicking on error; for examples and tests.
func MustNew(opts ...Option) *Internet {
	in, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return in
}

// AttachJournal makes this Internet's campaigns journaled: every
// completed per-VP batch of the sharding-invariant experiments streams
// to the JSONL journal at path as the campaign runs, and — with resume
// set and a compatible journal at path — batches a previous (killed)
// run already completed are skipped, reproducing the uninterrupted run
// byte-identically modulo ReplyIPID (DESIGN.md §11). Must be called
// before the first experiment. Resuming against a journal written for
// a different world or different options is refused.
func (in *Internet) AttachJournal(path string, resume bool) error {
	_, err := in.st.AttachJournal(path, resume)
	return err
}

// CloseJournal flushes and closes the journal attached with
// AttachJournal, if any.
func (in *Internet) CloseJournal() error { return in.st.CloseJournal() }

// VPNames lists the platform vantage points (M-Lab then PlanetLab).
func (in *Internet) VPNames() []string {
	out := make([]string, len(in.st.Topo.VPs))
	for i, vp := range in.st.Topo.VPs {
		out[i] = vp.Name
	}
	return out
}

// CloudNames lists the cloud measurement hosts (e.g. gce, ec2).
func (in *Internet) CloudNames() []string {
	out := make([]string, len(in.st.Topo.CloudVPs))
	for i, vp := range in.st.Topo.CloudVPs {
		out[i] = vp.Name
	}
	return out
}

// Destinations lists every probe target (one per advertised prefix).
func (in *Internet) Destinations() []netip.Addr {
	return in.st.Data.Addrs()
}

// NumASes returns the autonomous-system count.
func (in *Internet) NumASes() int { return len(in.st.Topo.ASes) }

// OriginASN maps an address to its origin AS number, or -1.
func (in *Internet) OriginASN(a netip.Addr) int { return in.st.Topo.ASNOf(a) }

// Reply is the outcome of a single probe.
type Reply struct {
	// Responded reports whether anything came back before the timeout.
	Responded bool
	// Kind describes the response ("echo-reply", "time-exceeded",
	// "port-unreachable", "timeout", ...).
	Kind string
	// From is the responding address.
	From netip.Addr
	// RTT is the round-trip time in virtual time.
	RTT time.Duration
	// HasRecordRoute reports whether a Record Route option was present
	// in the response (or in the quoted header of an error); it can be
	// true with an empty RecordedRoute when no router stamped.
	HasRecordRoute bool
	// RecordedRoute holds the Record Route slots recovered from the
	// response (or from the quoted header of an error).
	RecordedRoute []netip.Addr
	// SlotsRemaining is how many free RR slots the response had.
	SlotsRemaining int
	// DestinationStamped reports whether the probed address appears in
	// RecordedRoute — the paper's RR-reachable test.
	DestinationStamped bool
}

// vpOrErr resolves a VP (platform or cloud) by name.
func (in *Internet) vpOrErr(name string) (*measure.VantagePoint, error) {
	if vp := in.st.Camp.VP(name); vp != nil {
		return vp, nil
	}
	if vp := in.st.CloudCamp.VP(name); vp != nil {
		return vp, nil
	}
	return nil, fmt.Errorf("recordroute: unknown vantage point %q", name)
}

// probeOnce sends one probe synchronously (running the virtual clock
// until the response or timeout resolves).
func (in *Internet) probeOnce(vpName string, spec probe.Spec) (Reply, error) {
	vp, err := in.vpOrErr(vpName)
	if err != nil {
		return Reply{}, err
	}
	var res probe.Result
	vp.Prober.StartOne(spec, in.opts.timeout, func(r probe.Result) { res = r })
	in.st.Camp.Eng.Run()
	return replyFrom(res, spec.Dst), nil
}

func replyFrom(r probe.Result, dst netip.Addr) Reply {
	rep := Reply{
		Responded:      r.Responded(),
		Kind:           r.Type.String(),
		From:           r.From,
		RTT:            r.RTT(),
		SlotsRemaining: r.RRSlotsRemaining(),
	}
	if r.HasRR {
		rep.HasRecordRoute = true
		rep.RecordedRoute = append(rep.RecordedRoute, r.RR...)
		rep.DestinationStamped = r.RRContains(dst)
	}
	return rep
}

// Ping sends a plain ICMP echo request from the named vantage point.
func (in *Internet) Ping(vp string, dst netip.Addr) (Reply, error) {
	return in.probeOnce(vp, probe.Spec{Dst: dst, Kind: probe.Ping})
}

// PingRR sends an echo request with a nine-slot Record Route option.
func (in *Internet) PingRR(vp string, dst netip.Addr) (Reply, error) {
	return in.probeOnce(vp, probe.Spec{Dst: dst, Kind: probe.PingRR})
}

// PingRRWithTTL sends a TTL-limited ping-RR (the §4.2 low-impact probe);
// an expiry error's quoted Record Route is recovered into the Reply.
func (in *Internet) PingRRWithTTL(vp string, dst netip.Addr, ttl uint8) (Reply, error) {
	return in.probeOnce(vp, probe.Spec{Dst: dst, Kind: probe.TTLPingRR, TTL: ttl})
}

// PingRRUDP sends a Record Route UDP probe to a high closed port; the
// port-unreachable error's quoted option is recovered into the Reply.
func (in *Internet) PingRRUDP(vp string, dst netip.Addr) (Reply, error) {
	return in.probeOnce(vp, probe.Spec{Dst: dst, Kind: probe.PingRRUDP})
}

// TimestampEntry is one recorded (hop, milliseconds) pair from an
// Internet Timestamp probe.
type TimestampEntry struct {
	Addr   netip.Addr
	Millis uint32
}

// TimestampReply extends Reply with Internet Timestamp contents.
type TimestampReply struct {
	Reply
	// Entries are the recorded (address, timestamp) pairs, in hop order.
	Entries []TimestampEntry
	// Overflow counts hops that found the option full.
	Overflow uint8
}

// PingTS sends an echo request carrying an Internet Timestamp option in
// address+timestamp mode (four slots) — the companion IP-options
// measurement primitive.
func (in *Internet) PingTS(vpName string, dst netip.Addr) (TimestampReply, error) {
	vp, err := in.vpOrErr(vpName)
	if err != nil {
		return TimestampReply{}, err
	}
	var res probe.Result
	vp.Prober.StartOne(probe.Spec{Dst: dst, Kind: probe.PingTS}, in.opts.timeout, func(r probe.Result) { res = r })
	in.st.Camp.Eng.Run()
	out := TimestampReply{Reply: replyFrom(res, dst), Overflow: res.TSOverflow}
	for _, e := range res.TS {
		out.Entries = append(out.Entries, TimestampEntry{Addr: e.Addr, Millis: e.Millis})
	}
	return out, nil
}

// Hop is one traceroute step.
type Hop struct {
	TTL       uint8
	Addr      netip.Addr // zero when silent
	RTT       time.Duration
	Responded bool
	Final     bool
}

// TraceResult is a completed traceroute.
type TraceResult struct {
	Dst     netip.Addr
	Hops    []Hop
	Reached bool
}

// Traceroute runs a TTL-sweep traceroute from the named vantage point.
func (in *Internet) Traceroute(vpName string, dst netip.Addr) (TraceResult, error) {
	vp, err := in.vpOrErr(vpName)
	if err != nil {
		return TraceResult{}, err
	}
	var tr measure.Trace
	vp.Traceroute(dst, measure.TraceOptions{Timeout: in.opts.timeout}, func(t measure.Trace) { tr = t })
	in.st.Camp.Eng.Run()
	out := TraceResult{Dst: dst, Reached: tr.Reached}
	for _, h := range tr.Hops {
		out.Hops = append(out.Hops, Hop{
			TTL: h.TTL, Addr: h.Addr, RTT: h.RTT,
			Responded: h.Responded(), Final: h.Final,
		})
	}
	return out, nil
}

// ReversePathResult is a reverse-traceroute measurement.
type ReversePathResult struct {
	// Dst is the remote endpoint; Target the vantage point the path
	// leads back to.
	Dst, Target netip.Addr
	// Hops is the reverse path Dst → Target.
	Hops []netip.Addr
	// Complete reports whether every reverse hop was recovered.
	Complete bool
	// Segments counts the stitched RR measurements used.
	Segments int
}

// ReversePath measures the path *from* dst back *to* the named vantage
// point using stitched, source-spoofed Record Route measurements — the
// Reverse Traceroute technique the paper's reachability analysis
// enables.
func (in *Internet) ReversePath(vpName string, dst netip.Addr) (ReversePathResult, error) {
	target, err := in.vpOrErr(vpName)
	if err != nil {
		return ReversePathResult{}, err
	}
	sys := revtr.New(in.st.Camp.VPs, revtr.Options{
		Timeout: in.opts.timeout,
		Ranker:  in.revtrRanker(),
	})
	var p revtr.Path
	var rerr error
	done := false
	sys.MeasureReverse(dst, target, func(pp revtr.Path, err error) { p, rerr, done = pp, err, true })
	in.st.Camp.Eng.Run()
	if !done {
		return ReversePathResult{}, fmt.Errorf("recordroute: reverse path measurement stalled")
	}
	if rerr != nil {
		return ReversePathResult{}, rerr
	}
	return ReversePathResult{
		Dst: p.Dst, Target: p.Target, Hops: p.Hops,
		Complete: p.Complete, Segments: p.Segments,
	}, nil
}

// revtrRanker orders candidate spoofers closest-first using cached
// reachability stats when a responsiveness run exists; otherwise it
// keeps the configured order.
func (in *Internet) revtrRanker() func(netip.Addr, []*measure.VantagePoint) []*measure.VantagePoint {
	if in.resp == nil {
		return nil
	}
	stats := in.resp.Stats
	return func(target netip.Addr, vps []*measure.VantagePoint) []*measure.VantagePoint {
		st := stats[target]
		out := append([]*measure.VantagePoint(nil), vps...)
		if st == nil {
			return out
		}
		slotOf := func(vp *measure.VantagePoint) int {
			if slot, ok := st.SlotsByVP[vp.Name]; ok && slot > 0 {
				return slot
			}
			return 1 << 20 // unknown: last
		}
		sort.SliceStable(out, func(i, j int) bool { return slotOf(out[i]) < slotOf(out[j]) })
		return out
	}
}

// HostOf returns the simulated host behind a vantage point (platform or
// cloud), for capture attachments and advanced instrumentation.
func (in *Internet) HostOf(vpName string) (*netsim.Host, error) {
	if vp := in.st.Topo.VPByName(vpName); vp != nil {
		return vp.Host, nil
	}
	return nil, fmt.Errorf("recordroute: unknown vantage point %q", vpName)
}

// SourceRateLimitedVPs lists VPs behind source-proximate options
// policers (ground truth; useful for demos and tests).
func (in *Internet) SourceRateLimitedVPs() []string {
	var out []string
	for _, vp := range in.st.Topo.VPs {
		if vp.SourceRateLimited {
			out = append(out, vp.Name)
		}
	}
	return out
}

// VPKind reports a platform VP's kind ("mlab", "planetlab", "cloud").
func (in *Internet) VPKind(name string) (string, error) {
	if vp := in.st.Topo.VPByName(name); vp != nil {
		return vp.Kind.String(), nil
	}
	return "", fmt.Errorf("recordroute: unknown vantage point %q", name)
}

// topoVPOfKind lists the VP names of a topology kind.
func (in *Internet) topoVPOfKind(kind topology.VPKind) []string {
	var out []string
	for _, vp := range in.st.Topo.VPs {
		if vp.Kind == kind {
			out = append(out, vp.Name)
		}
	}
	return out
}

// MLabVPs lists the M-Lab-like vantage points.
func (in *Internet) MLabVPs() []string { return in.topoVPOfKind(topology.MLab) }

// PlanetLabVPs lists the PlanetLab-like vantage points.
func (in *Internet) PlanetLabVPs() []string { return in.topoVPOfKind(topology.PlanetLab) }
