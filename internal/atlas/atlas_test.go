package atlas

import (
	"net/netip"
	"strings"
	"testing"

	"recordroute/internal/measure"
	"recordroute/internal/probe"
	"recordroute/internal/topology"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

func mkTrace(dst string, hops ...string) measure.Trace {
	tr := measure.Trace{Dst: a(dst), Reached: true}
	for i, h := range hops {
		if h == "*" {
			tr.Hops = append(tr.Hops, measure.TraceHop{TTL: uint8(i + 1)})
			continue
		}
		tr.Hops = append(tr.Hops, measure.TraceHop{TTL: uint8(i + 1), Addr: a(h)})
	}
	tr.Hops = append(tr.Hops, measure.TraceHop{TTL: uint8(len(hops) + 1), Addr: a(dst), Final: true})
	return tr
}

func mkRRResult(dst string, hops ...string) probe.Result {
	r := probe.Result{
		Spec:         probe.Spec{Dst: a(dst), Kind: probe.PingRR},
		Type:         probe.EchoReply,
		HasRR:        true,
		RRTotalSlots: 9,
	}
	for _, h := range hops {
		r.RR = append(r.RR, a(h))
	}
	return r
}

func TestAtlasMergesProvenance(t *testing.T) {
	at := New(nil)
	at.AddTraceroute(mkTrace("10.9.0.1", "10.1.0.1", "10.2.0.1"))
	// RR sees 10.1.0.1 (both), 10.3.0.1 (RR-only, e.g. anonymous), the
	// dest, then a reverse hop 10.4.0.1.
	at.AddRR(mkRRResult("10.9.0.1", "10.1.0.1", "10.3.0.1", "10.9.0.1", "10.4.0.1"))

	s := at.Stats()
	if s.Interfaces != 4 {
		t.Fatalf("interfaces = %d, want 4", s.Interfaces)
	}
	if s.Both != 1 || s.TracerouteOnly != 1 || s.RROnly != 2 || s.RRReverse != 1 {
		t.Errorf("stats = %+v", s)
	}
	// The destination host must not appear as an interface.
	for _, info := range at.Interfaces() {
		if info.Addr == a("10.9.0.1") {
			t.Error("destination counted as a router interface")
		}
	}
}

func TestAtlasSilentHopsBreakLinks(t *testing.T) {
	at := New(nil)
	at.AddTraceroute(mkTrace("10.9.0.1", "10.1.0.1", "*", "10.3.0.1"))
	if n := at.NumLinks(); n != 0 {
		t.Errorf("links across a silent hop = %d, want 0", n)
	}
	at.AddTraceroute(mkTrace("10.9.0.2", "10.1.0.1", "10.2.0.1"))
	if n := at.NumLinks(); n != 1 {
		t.Errorf("links = %d, want 1", n)
	}
}

func TestAtlasAliasCollapsing(t *testing.T) {
	canon := func(x netip.Addr) netip.Addr {
		if x == a("10.1.0.2") {
			return a("10.1.0.1")
		}
		return x
	}
	at := New(canon)
	at.AddTraceroute(mkTrace("10.9.0.1", "10.1.0.1"))
	at.AddRR(mkRRResult("10.9.0.1", "10.1.0.2", "10.9.0.1"))
	s := at.Stats()
	if s.Interfaces != 1 || s.Both != 1 {
		t.Errorf("alias not collapsed: %+v", s)
	}
}

func TestAtlasRRWithoutDestStampIsForward(t *testing.T) {
	at := New(nil)
	at.AddRR(mkRRResult("10.9.0.1", "10.1.0.1", "10.2.0.1"))
	s := at.Stats()
	if s.RRReverse != 0 {
		t.Errorf("reverse hops inferred without a destination stamp: %+v", s)
	}
	if s.RROnly != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestAtlasStatsRender(t *testing.T) {
	at := New(nil)
	at.AddRR(mkRRResult("10.9.0.1", "10.1.0.1", "10.9.0.1", "10.4.0.1"))
	var sb strings.Builder
	at.Stats().Render(&sb)
	for _, want := range []string{"atlas", "record route only", "reverse paths"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestAtlasFindsAnonymousRoutersInSim drives the full pipeline: in a
// generated Internet, every ground-truth TTL-invisible router that RR
// observed must be classified RR-only — the §2 complementarity claim.
func TestAtlasFindsAnonymousRoutersInSim(t *testing.T) {
	topo := topology.MustBuild(topology.DefaultConfig(topology.Epoch2016).Scale(0.3))
	var vp *topology.VP
	for _, v := range topo.VPs {
		if !v.SourceRateLimited && !topo.ASes[v.ASIdx].FilterOptions {
			vp = v
			break
		}
	}
	m := measure.NewVantagePoint(vp.Name, vp.Host, topo.Net.Engine(), 0x6100)
	at := New(nil)

	// Probe a few hundred destinations with both primitives.
	var dsts []netip.Addr
	for _, d := range topo.Dests {
		if d.GTPingResponsive && !d.GTRRDrop && !topo.ASes[d.ASIdx].FilterOptions {
			dsts = append(dsts, d.Addr)
			if len(dsts) == 150 {
				break
			}
		}
	}
	var rrResults []probe.Result
	m.PingRRBatch(dsts, probe.Options{Rate: 500}, func(rs []probe.Result) { rrResults = rs })
	topo.Net.Engine().Run()
	var traces []measure.Trace
	m.TracerouteBatch(dsts, measure.TraceOptions{StartRate: 200}, func(ts []measure.Trace) { traces = ts })
	topo.Net.Engine().Run()

	for _, r := range rrResults {
		at.AddRR(r)
	}
	for _, tr := range traces {
		at.AddTraceroute(tr)
	}

	s := at.Stats()
	if s.Interfaces == 0 || s.Both == 0 {
		t.Fatalf("degenerate atlas: %+v", s)
	}
	if s.RRReverse == 0 {
		t.Error("no reverse-path interfaces observed")
	}

	// Every observed interface owned by a TTL-invisible router must be
	// RR-only: traceroute cannot elicit a response from it.
	anonChecked := 0
	for _, info := range at.Interfaces() {
		r := topo.RouterByAddr(info.Addr)
		if r == nil || !r.Behavior().NoTTLDecrement {
			continue
		}
		anonChecked++
		if info.Sources.Has(FromTraceroute) {
			t.Errorf("TTL-invisible router %v observed by traceroute", info.Addr)
		}
	}
	t.Logf("atlas: %+v; anonymous interfaces checked: %d", s, anonChecked)
}
