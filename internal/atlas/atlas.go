// Package atlas merges measurements into an interface-level topology
// map — the paper's §2 motivation that Record Route and traceroute
// *complement* each other: RR sees routers that do not decrement TTL
// (MPLS interiors, "anonymous" routers) and reverse-path hops invisible
// to traceroute, while traceroute sees routers that do not stamp RR and
// hops beyond the nine-slot limit.
//
// The atlas is deliberately simple compared to full systems like
// DisCarte (Sherwood et al., SIGCOMM 2008): it unions interface
// observations under an alias canonicalizer and tracks per-interface
// provenance, without attempting exact RR/traceroute path alignment
// (which the paper itself notes is hard, §3.5).
package atlas

import (
	"fmt"
	"io"
	"net/netip"
	"sort"

	"recordroute/internal/measure"
	"recordroute/internal/probe"
)

// Source is a bitmask of measurement kinds that observed an interface
// or link.
type Source uint8

const (
	// FromTraceroute marks hops seen in TTL-expiry responses.
	FromTraceroute Source = 1 << iota
	// FromRRForward marks RR slots recorded before the destination's
	// own stamp.
	FromRRForward
	// FromRRReverse marks RR slots recorded after the destination's
	// stamp — reverse-path hops traceroute cannot see.
	FromRRReverse
	// FromTimestamp marks hops recorded by the Internet Timestamp
	// option.
	FromTimestamp
)

// Has reports whether s includes all bits of q.
func (s Source) Has(q Source) bool { return s&q == q }

// String renders the bitmask compactly.
func (s Source) String() string {
	out := ""
	add := func(bit Source, tag string) {
		if s.Has(bit) {
			if out != "" {
				out += "+"
			}
			out += tag
		}
	}
	add(FromTraceroute, "trace")
	add(FromRRForward, "rr-fwd")
	add(FromRRReverse, "rr-rev")
	add(FromTimestamp, "ts")
	if out == "" {
		return "none"
	}
	return out
}

// Atlas accumulates interface and link observations.
type Atlas struct {
	// canon maps an address to its alias-set representative (identity
	// when unknown).
	canon func(netip.Addr) netip.Addr

	ifaces map[netip.Addr]Source
	links  map[[2]netip.Addr]Source
}

// New returns an empty atlas. aliasOf may be nil (no alias collapsing).
func New(aliasOf func(netip.Addr) netip.Addr) *Atlas {
	if aliasOf == nil {
		aliasOf = func(a netip.Addr) netip.Addr { return a }
	}
	return &Atlas{
		canon:  aliasOf,
		ifaces: make(map[netip.Addr]Source),
		links:  make(map[[2]netip.Addr]Source),
	}
}

// observe records one interface sighting.
func (a *Atlas) observe(addr netip.Addr, src Source) netip.Addr {
	c := a.canon(addr)
	a.ifaces[c] |= src
	return c
}

// observeLink records a directed adjacency between canonical interfaces.
func (a *Atlas) observeLink(from, to netip.Addr, src Source) {
	if from == to {
		return
	}
	a.links[[2]netip.Addr{from, to}] |= src
}

// AddTraceroute merges a completed traceroute. Consecutive responding
// hops become links; silent hops break adjacency (the gap could hide
// any number of routers).
func (a *Atlas) AddTraceroute(tr measure.Trace) {
	var prev netip.Addr
	havePrev := false
	for _, h := range tr.Hops {
		if !h.Responded() {
			havePrev = false
			continue
		}
		if h.Final {
			break // the destination is a host, not a router interface
		}
		c := a.observe(h.Addr, FromTraceroute)
		if havePrev {
			a.observeLink(prev, c, FromTraceroute)
		}
		prev, havePrev = c, true
	}
}

// AddRR merges a ping-RR result: slots before the destination's stamp
// are forward hops, slots after it are reverse hops. When the
// destination (or an alias of it) never appears, every slot is treated
// as forward — the probe may simply have run out of room.
func (a *Atlas) AddRR(r probe.Result) {
	if !r.HasRR || len(r.RR) == 0 {
		return
	}
	destCanon := a.canon(r.Dst)
	split := -1
	for i, h := range r.RR {
		if a.canon(h) == destCanon {
			split = i
			break
		}
	}
	var prev netip.Addr
	havePrev := false
	for i, h := range r.RR {
		if i == split {
			havePrev = false // the destination itself is not a router
			continue
		}
		src := FromRRForward
		if split >= 0 && i > split {
			src = FromRRReverse
		}
		c := a.observe(h, src)
		if havePrev {
			a.observeLink(prev, c, src)
		}
		prev, havePrev = c, true
	}
}

// AddTimestamps merges an Internet Timestamp result's recorded hops.
func (a *Atlas) AddTimestamps(r probe.Result) {
	destCanon := a.canon(r.Dst)
	for _, e := range r.TS {
		if a.canon(e.Addr) == destCanon {
			continue
		}
		a.observe(e.Addr, FromTimestamp)
	}
}

// Interfaces returns each observed canonical interface with its
// provenance, sorted by address.
func (a *Atlas) Interfaces() []InterfaceInfo {
	out := make([]InterfaceInfo, 0, len(a.ifaces))
	for addr, src := range a.ifaces {
		out = append(out, InterfaceInfo{Addr: addr, Sources: src})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// InterfaceInfo is one observed interface.
type InterfaceInfo struct {
	Addr    netip.Addr
	Sources Source
}

// NumLinks returns the count of observed directed adjacencies.
func (a *Atlas) NumLinks() int { return len(a.links) }

// Stats summarizes what each measurement primitive contributed.
type Stats struct {
	// Interfaces is the total observed (alias-collapsed).
	Interfaces int
	// Both were seen by traceroute and RR; the exclusive counts measure
	// each primitive's unique contribution (§2's complementarity).
	Both, TracerouteOnly, RROnly int
	// RRReverse counts interfaces seen on reverse paths — invisible to
	// any forward measurement.
	RRReverse int
	// Links is the number of observed adjacencies.
	Links int
}

// Stats computes the provenance summary.
func (a *Atlas) Stats() Stats {
	s := Stats{Interfaces: len(a.ifaces), Links: len(a.links)}
	for _, src := range a.ifaces {
		rr := src&(FromRRForward|FromRRReverse) != 0
		tr := src.Has(FromTraceroute)
		switch {
		case rr && tr:
			s.Both++
		case rr:
			s.RROnly++
		case tr:
			s.TracerouteOnly++
		}
		if src.Has(FromRRReverse) {
			s.RRReverse++
		}
	}
	return s
}

// Render prints the complementarity summary.
func (s Stats) Render(w io.Writer) {
	fmt.Fprintln(w, "== topology atlas: what RR and traceroute each uncover (§2) ==")
	fmt.Fprintf(w, "interfaces observed (alias-collapsed): %d; links: %d\n", s.Interfaces, s.Links)
	fmt.Fprintf(w, "  seen by both primitives:   %d\n", s.Both)
	fmt.Fprintf(w, "  traceroute only:           %d (non-stamping or beyond nine RR slots)\n", s.TracerouteOnly)
	fmt.Fprintf(w, "  record route only:         %d (TTL-invisible or reverse-path hops)\n", s.RROnly)
	fmt.Fprintf(w, "  on reverse paths:          %d (invisible to all forward probing)\n", s.RRReverse)
}
