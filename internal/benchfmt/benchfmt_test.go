package benchfmt

import "testing"

func TestParseLineBasic(t *testing.T) {
	r, ok := ParseLine("BenchmarkFoo-8   \t100\t  123.5 ns/op\t  64 B/op\t 2 allocs/op")
	if !ok {
		t.Fatal("not parsed")
	}
	if r.Name != "BenchmarkFoo" || r.Procs != 8 || r.Iterations != 100 || r.NsPerOp != 123.5 {
		t.Fatalf("got %+v", r)
	}
	if r.Metrics["B/op"] != 64 || r.Metrics["allocs/op"] != 2 {
		t.Fatalf("metrics %v", r.Metrics)
	}
}

func TestParseLineSubBenchAndCustomMetric(t *testing.T) {
	r, ok := ParseLine("BenchmarkFleetSpinup/shards=4-4 1 2000000 ns/op 12.5 spinup-ms 4 gomaxprocs")
	if !ok {
		t.Fatal("not parsed")
	}
	if r.Name != "BenchmarkFleetSpinup/shards=4" || r.Procs != 4 {
		t.Fatalf("got %+v", r)
	}
	if r.Metrics["spinup-ms"] != 12.5 || r.Metrics["gomaxprocs"] != 4 {
		t.Fatalf("metrics %v", r.Metrics)
	}
}

// A non-numeric trailing dash segment is part of the name, not a procs
// suffix (the bug the shared parser fixes: the old benchjson stripped
// any last segment).
func TestParseLineKeepsNonNumericSuffix(t *testing.T) {
	r, ok := ParseLine("BenchmarkAblationDecode/sub-case 10 5 ns/op")
	if !ok {
		t.Fatal("not parsed")
	}
	if r.Name != "BenchmarkAblationDecode/sub-case" || r.Procs != 1 {
		t.Fatalf("got %+v", r)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"Benchmark", // no fields
		"BenchmarkX notanumber 5 ns/op",
		"ok  \trecordroute\t1.2s",
	} {
		if _, ok := ParseLine(line); ok {
			t.Errorf("parsed noise line %q", line)
		}
	}
}
