// Package benchfmt parses `go test -bench` output lines into structured
// results. It is shared by cmd/benchjson (archiving runs as JSON) and
// cmd/benchguard (regression-checking runs against an archived
// baseline), so both agree on names, units, and the GOMAXPROCS suffix.
package benchfmt

import (
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with any trailing -GOMAXPROCS suffix
	// removed (sub-benchmark path included, e.g. "BenchmarkX/shards=4").
	Name string
	// Procs is the GOMAXPROCS the line ran under (the numeric suffix go
	// test appends); 1 when the line carries none.
	Procs      int
	Iterations int64
	NsPerOp    float64
	// Metrics holds every extra `value unit` pair: B/op, allocs/op, and
	// custom ReportMetric units.
	Metrics map[string]float64
}

// ParseLine parses one `BenchmarkName-P  N  v1 unit1  v2 unit2 ...`
// line; ok is false for anything else. Only an all-digit trailing dash
// segment is treated as the GOMAXPROCS suffix — a name like
// "BenchmarkBuild-vs-clone" keeps its last segment.
func ParseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Procs: 1, Iterations: iters}
	if i := strings.LastIndexByte(r.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil && p > 0 {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics[unit] = v
	}
	return r, true
}
