package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"recordroute/internal/measure"
	"recordroute/internal/results"
)

// The service-level chaos harness (ISSUE: tentpole 4). Each test
// injects one deterministic fault — a worker killed mid-phase, a disk
// that fills under the journal, a daemon killed and restarted, a
// stalled streaming client — and asserts the service-level contract:
// the fault is absorbed (retry, resume, degrade, or disconnect), the
// worker pool stays healthy, and wherever a campaign completes its
// results are identical to an unfaulted run's (the resume-equals-
// uninterrupted property, DESIGN.md §11, observed through HTTP).

// waitTerminal polls until the job reaches done/failed/canceled.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		code, body := get(t, ts, "/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status poll: %d", code)
		}
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if terminalState(st.State) {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job did not reach a terminal state")
	return Status{}
}

// metricValue extracts "name 3"-style samples from /metrics.
func metricValue(t *testing.T, ts *httptest.Server, name string) string {
	t.Helper()
	_, body := get(t, ts, "/metrics")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	return ""
}

// TestChaosWorkerKillMidPhase: chaos scenario 1. A worker goroutine is
// killed (panic) on the shard that just journaled its third batch —
// mid-phase, the worst place. The service must contain the death,
// classify it as retryable, re-run the job resuming from its journal,
// and the retried job's render must be byte-identical to an unfaulted
// run's.
func TestChaosWorkerKillMidPhase(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4, DataDir: dir,
		MaxRetries: 2, RetryBackoff: time.Millisecond})
	var armed atomic.Bool
	var batches atomic.Int64
	s.batchHook = func(job *Job, vp string, attempt int) {
		if armed.Load() && attempt == 1 && batches.Add(1) == 3 {
			panic(fmt.Sprintf("chaos: killing worker mid-phase (vp %s)", vp))
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Unfaulted baseline first (hook disarmed; also warms the topology
	// cache, so the faulted job's attempts are fast).
	base := submit(t, ts, smokeSpec())
	if st := waitTerminal(t, ts, base); st.State != StateDone {
		t.Fatalf("baseline failed: %s", st.Error)
	}
	_, baseline := get(t, ts, "/jobs/"+base+"/render")
	armed.Store(true)

	id := submit(t, ts, smokeSpec())
	st := waitTerminal(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("job did not survive the worker kill: %+v", st)
	}
	if st.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (one kill, one retry)", st.Attempts)
	}
	if st.Done != st.Total || st.Total == 0 {
		t.Errorf("retried job progress %+v, want done == total > 0", st)
	}

	_, render := get(t, ts, "/jobs/"+id+"/render")
	if !bytes.Equal(render, baseline) {
		t.Errorf("retried render differs from unfaulted run:\n--- retried ---\n%s--- baseline ---\n%s", render, baseline)
	}

	// The stream accumulated across both attempts with no duplicate VPs:
	// every VP at most once (the batch whose sink the kill interrupted
	// was journaled but never streamed, so it may be the one missing).
	_, stream := get(t, ts, "/jobs/"+id+"/stream")
	perVP, err := results.ReadJSONL(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("cross-attempt stream is not valid JSONL: %v", err)
	}
	vps := st.Total - smokeShards // origin's range lines collapse into one VP key
	if len(perVP) < vps-1 || len(perVP) > vps {
		t.Errorf("cross-attempt stream covers %d VPs, want %d or %d", len(perVP), vps-1, vps)
	}

	if got := metricValue(t, ts, "rrstudyd_jobs_retried_total"); got != "1" {
		t.Errorf("rrstudyd_jobs_retried_total = %q, want 1", got)
	}
}

// TestChaosJournalWriteFailure: chaos scenario 2. The disk under the
// journal fills up mid-campaign (every write past byte N fails). The
// job must complete anyway — journaling degrades, results don't — with
// the degradation surfaced in the job status and the service counter.
func TestChaosJournalWriteFailure(t *testing.T) {
	prev := measure.WriteShim
	measure.WriteShim = func(path string, f *os.File) io.Writer {
		return &failAfterWriter{w: f, n: 8 << 10}
	}
	t.Cleanup(func() { measure.WriteShim = prev })

	s := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submit(t, ts, smokeSpec())
	st := waitTerminal(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("disk-full journal failed the job: %+v", st)
	}
	if !st.Degraded {
		t.Error("job status does not report the degraded journal")
	}
	if got := metricValue(t, ts, "rrstudyd_journal_degraded_total"); got != "1" {
		t.Errorf("rrstudyd_journal_degraded_total = %q, want 1", got)
	}

	// Results are unharmed: the render still matches the study golden.
	_, render := get(t, ts, "/jobs/"+id+"/render")
	golden, err := os.ReadFile(filepath.Join("..", "study", "testdata", "golden", "table1_responsiveness.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render, golden) {
		t.Errorf("degraded-journal render differs from golden:\n--- service ---\n%s--- golden ---\n%s", render, golden)
	}
}

// failAfterWriter forwards to w until n bytes have passed, then fails
// every write — ENOSPC in miniature.
type failAfterWriter struct {
	w      io.Writer
	n      int
	failed bool
}

func (fw *failAfterWriter) Write(p []byte) (int, error) {
	if fw.failed {
		return 0, fmt.Errorf("no space left on device")
	}
	if len(p) <= fw.n {
		fw.n -= len(p)
		return fw.w.Write(p)
	}
	k := fw.n
	fw.failed = true
	if k > 0 {
		fw.w.Write(p[:k])
	}
	return k, fmt.Errorf("no space left on device")
}

// TestChaosDaemonKillRestartResume: chaos scenario 3. The daemon is
// killed mid-campaign — simulated as the torn journal a SIGKILL leaves
// (cut mid-line after a few batches) — and a NEW service instance over
// the same data dir resumes the job to an identical render.
func TestChaosDaemonKillRestartResume(t *testing.T) {
	dir := t.TempDir()

	// First life: an uninterrupted run whose journal we wound.
	s1 := newTestServer(t, Config{Workers: 1, QueueCap: 4, DataDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	spec := smokeSpec()
	spec.Journal = filepath.Join(dir, "victim.jsonl")
	id := submit(t, ts1, spec)
	if st := waitTerminal(t, ts1, id); st.State != StateDone {
		t.Fatalf("first-life job failed: %s", st.Error)
	}
	_, baseline := get(t, ts1, "/jobs/"+id+"/render")
	ts1.Close()
	s1.Drain()

	// The kill: keep 4 complete VP batches, tear the 5th mid-line.
	data, err := os.ReadFile(spec.Journal)
	if err != nil {
		t.Fatal(err)
	}
	var wound bytes.Buffer
	vps := 0
	for _, l := range bytes.SplitAfter(data, []byte("\n")) {
		if bytes.Contains(l, []byte(`"t":"vp"`)) {
			if vps++; vps > 4 {
				wound.Write(l[:len(l)/3])
				break
			}
		}
		wound.Write(l)
	}
	if err := os.WriteFile(spec.Journal, wound.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Second life: a fresh server (fresh cache, fresh everything) on the
	// same data dir resumes the wounded journal.
	s2 := newTestServer(t, Config{Workers: 1, QueueCap: 4, DataDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	spec.Resume = true
	rid := submit(t, ts2, spec)
	st := waitTerminal(t, ts2, rid)
	if st.State != StateDone {
		t.Fatalf("resumed job failed after restart: %s", st.Error)
	}
	_, render := get(t, ts2, "/jobs/"+rid+"/render")
	if !bytes.Equal(render, baseline) {
		t.Errorf("post-restart render differs from first life:\n--- resumed ---\n%s--- baseline ---\n%s", render, baseline)
	}
}

// TestChaosDrainMidCampaign: chaos scenario 4, the graceful half of
// SIGTERM. Drain is called while a campaign is mid-flight with a live
// streaming client attached; the job must finish, the stream must
// deliver every batch, and the service must refuse new work (readyz
// 503) — all without deadlock between Drain, the worker, and the
// stream handler (the satellite-c race).
func TestChaosDrainMidCampaign(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	started := make(chan struct{})
	var once sync.Once
	s.batchHook = func(*Job, string, int) { once.Do(func() { close(started) }) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submit(t, ts, smokeSpec())

	// A live streaming client follows the job across the drain.
	streamc := make(chan []byte, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
		if err != nil {
			streamc <- nil
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		streamc <- body
	}()

	<-started // the campaign is mid-phase now
	s.Drain() // SIGTERM: must wait for the job, not strand it

	st := waitTerminal(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("job stranded by drain: %+v", st)
	}
	if code, _ := get(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after drain: %d, want 503", code)
	}
	if code, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz after drain: %d, want 200 (alive, just not ready)", code)
	}

	select {
	case body := <-streamc:
		perVP, err := results.ReadJSONL(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("drained stream invalid: %v", err)
		}
		if vps := st.Total - smokeShards; len(perVP) != vps {
			t.Errorf("stream across drain covers %d VPs, want %d", len(perVP), vps)
		}
	case <-time.After(time.Minute):
		t.Fatal("streaming client never finished after drain")
	}
}

// TestCancelEndpoint: DELETE /jobs/{id} against a running job stops it
// at the next deterministic checkpoint, releases its journal path, and
// counts it; against an unknown job it 404s; against a finished job it
// 409s and changes nothing.
func TestCancelEndpoint(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4, DataDir: dir})
	release := make(chan struct{})
	var once sync.Once
	s.startHook = func(*Job) { <-release }
	defer once.Do(func() { close(release) })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := smokeSpec()
	spec.Journal = filepath.Join(dir, "victim.jsonl")
	id := submit(t, ts, spec)

	// Wait until the worker owns the job (it is parked in startHook).
	for deadline := time.Now().Add(10 * time.Second); ; {
		var st Status
		_, body := get(t, ts, "/jobs/"+id)
		json.Unmarshal(body, &st)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}

	code, body := del(t, ts, "/jobs/"+id)
	if code != http.StatusAccepted {
		t.Fatalf("cancel running job: status %d, body %s", code, body)
	}
	once.Do(func() { close(release) })
	st := waitTerminal(t, ts, id)
	if st.State != StateCanceled || st.Class != ClassCanceled {
		t.Fatalf("canceled job settled as %+v", st)
	}
	if got := metricValue(t, ts, "rrstudyd_jobs_canceled_total"); got != "1" {
		t.Errorf("rrstudyd_jobs_canceled_total = %q, want 1", got)
	}
	if code, _ := get(t, ts, "/jobs/"+id+"/render"); code != http.StatusInternalServerError {
		t.Errorf("render of canceled job: status %d, want 500", code)
	}

	// The journal path is released and holds only resume-safe records:
	// a new job may take it over.
	if _, err := s.Submit(spec); err != nil {
		t.Errorf("journal not released after cancel: %v", err)
	}

	if code, _ := del(t, ts, "/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("cancel unknown job: status %d, want 404", code)
	}
}

// TestCancelQueuedJob: a job canceled before a worker ever picks it up
// finalizes as canceled with zero attempts, and cancel on a terminal
// job is a 409 no-op.
func TestCancelQueuedJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	release := make(chan struct{})
	var once sync.Once
	s.startHook = func(*Job) { <-release }
	defer once.Do(func() { close(release) })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	blocker := submit(t, ts, smokeSpec()) // pins the only worker
	queued := submit(t, ts, smokeSpec())

	if code, _ := del(t, ts, "/jobs/"+queued); code != http.StatusAccepted {
		t.Fatalf("cancel queued job: status %d", code)
	}
	once.Do(func() { close(release) })

	st := waitTerminal(t, ts, queued)
	if st.State != StateCanceled || st.Attempts != 0 {
		t.Fatalf("canceled queued job settled as %+v, want canceled with 0 attempts", st)
	}
	if bst := waitTerminal(t, ts, blocker); bst.State != StateDone {
		t.Fatalf("blocker job failed: %s", bst.Error)
	}
	if code, _ := del(t, ts, "/jobs/"+blocker); code != http.StatusConflict {
		t.Errorf("cancel finished job: status %d, want 409", code)
	}
}

func del(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// TestJobDeadlineClassification: an attempt that outlives JobDeadline
// is classified "deadline" and retried within the budget; when every
// attempt expires, the job fails carrying the class and the attempt
// count, and the retry counter reflects the re-queues.
func TestJobDeadlineClassification(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4,
		JobDeadline: time.Millisecond, MaxRetries: 1, RetryBackoff: time.Millisecond})
	s.startHook = func(*Job) { time.Sleep(20 * time.Millisecond) } // outlive the deadline
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submit(t, ts, smokeSpec())
	st := waitTerminal(t, ts, id)
	if st.State != StateFailed || st.Class != ClassDeadline {
		t.Fatalf("deadline-expired job settled as %+v, want failed/deadline", st)
	}
	if st.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (budget of 1 retry)", st.Attempts)
	}
	if got := metricValue(t, ts, "rrstudyd_jobs_retried_total"); got != "1" {
		t.Errorf("rrstudyd_jobs_retried_total = %q, want 1", got)
	}
}

// TestWorkerPanicLeavesQueueHealthy (satellite c): with retries
// disabled, a worker killed by one job must fail that job alone — the
// worker goroutine survives to run the next job to completion.
func TestWorkerPanicLeavesQueueHealthy(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4, MaxRetries: -1})
	s.startHook = func(job *Job) {
		if job.ID == "job-1" {
			panic("chaos: worker killed at job start")
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	victim := submit(t, ts, smokeSpec())
	st := waitTerminal(t, ts, victim)
	if st.State != StateFailed || st.Class != ClassPanic {
		t.Fatalf("panicked job settled as %+v, want failed/panic", st)
	}
	if st.Attempts != 1 {
		t.Errorf("Attempts = %d with retries disabled, want 1", st.Attempts)
	}

	next := submit(t, ts, smokeSpec())
	if st := waitTerminal(t, ts, next); st.State != StateDone {
		t.Fatalf("queue unhealthy after worker panic: next job %+v", st)
	}
}

// TestStreamWriteDeadlineDropsStalledReader: a /stream client that
// stops reading must be disconnected by the per-write deadline instead
// of pinning the handler (and the job's buffers) forever.
func TestStreamWriteDeadlineDropsStalledReader(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4,
		StreamWriteTimeout: 200 * time.Millisecond})
	release := make(chan struct{})
	var once sync.Once
	s.startHook = func(*Job) { <-release }
	defer once.Do(func() { close(release) })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submit(t, ts, smokeSpec())
	job := s.Job(id)
	// Stuff the stream with more than any socket buffer will absorb, so
	// the handler's write blocks on the stalled reader.
	job.mu.Lock()
	job.stream = append(job.stream, bytes.Repeat([]byte("x"), 16<<20)...)
	job.mu.Unlock()
	job.cond.Broadcast()

	// A raw client that sends the request and then never reads.
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /jobs/%s/stream HTTP/1.1\r\nHost: x\r\n\r\n", id)

	deadline := time.Now().Add(30 * time.Second)
	for s.streamDropped.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.streamDropped.Load(); got != 1 {
		t.Fatalf("stalled reader not dropped (streamDropped = %d)", got)
	}
	if got := metricValue(t, ts, "rrstudyd_stream_clients_dropped_total"); got != "1" {
		t.Errorf("rrstudyd_stream_clients_dropped_total = %q, want 1", got)
	}
}
