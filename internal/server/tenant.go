package server

import (
	"errors"
	"fmt"
	"time"

	"recordroute/internal/obs"
)

// Per-tenant admission: quotas and QoS layered on the global 503
// backpressure. Every submission names a tenant (X-Tenant header;
// "default" when absent) and passes two gates before it can compete
// for the shared queue: a max-in-flight quota (queued + running jobs,
// schedule epochs included) and a token bucket (rate + burst). Both
// refuse with a 429-mapped error carrying a Retry-After hint — a
// tenant over its own budget is not the service being full, and must
// never read as the 503 that tells a healthy tenant to back off.

// tenantState is one tenant's admission and accounting state, guarded
// by Server.mu.
type tenantState struct {
	name   string
	active int // in-flight jobs (queued + running); quota gate

	tokens float64   // token bucket level
	last   time.Time // last refill, obs clock

	admitted int64 // submissions accepted
	rejected int64 // submissions refused by quota or bucket
}

// tenant returns (creating on first use) the named tenant's state.
// Caller holds s.mu.
func (s *Server) tenant(name string) *tenantState {
	ts := s.tenants[name]
	if ts == nil {
		ts = &tenantState{name: name, tokens: s.cfg.tenantBurst(), last: obs.Now()}
		s.tenants[name] = ts
	}
	return ts
}

func (c Config) tenantBurst() float64 {
	if c.TenantRate <= 0 {
		return 0
	}
	if c.TenantBurst > 0 {
		return c.TenantBurst
	}
	return max(c.TenantRate, 1)
}

// quotaError is the 429 refusal: the tenant is over its own budget.
type quotaError struct {
	tenant     string
	reason     string
	retryAfter time.Duration
}

func (e *quotaError) Error() string {
	return fmt.Sprintf("tenant %q over %s (retry in %v)", e.tenant, e.reason, e.retryAfter)
}

// asQuotaError unwraps err into a quotaError, or nil.
func asQuotaError(err error) *quotaError {
	var qe *quotaError
	if errors.As(err, &qe) {
		return qe
	}
	return nil
}

// admit charges one submission against the tenant's gates: the
// max-in-flight quota always, the token bucket only when metered
// (schedule epochs are exempt — the schedule paid at creation). Caller
// holds s.mu. On refusal the rejection is counted and a quotaError
// carrying the Retry-After hint is returned; on success one token is
// consumed (refund undoes it if the global queue then refuses).
func (ts *tenantState) admit(cfg Config, metered bool) error {
	if cfg.TenantQuota > 0 && ts.active >= cfg.TenantQuota {
		ts.rejected++
		return &quotaError{tenant: ts.name, reason: fmt.Sprintf("max-concurrent-jobs quota (%d in flight)", ts.active), retryAfter: time.Second}
	}
	if metered && cfg.TenantRate > 0 {
		now := obs.Now()
		ts.tokens = min(cfg.tenantBurst(), ts.tokens+now.Sub(ts.last).Seconds()*cfg.TenantRate)
		ts.last = now
		if ts.tokens < 1 {
			ts.rejected++
			wait := time.Duration((1 - ts.tokens) / cfg.TenantRate * float64(time.Second))
			return &quotaError{tenant: ts.name, reason: "submission rate", retryAfter: max(wait, time.Second)}
		}
		ts.tokens--
	}
	ts.admitted++
	return nil
}

// refund returns the token admit consumed when the submission was
// subsequently refused by the global queue. Caller holds s.mu.
func (ts *tenantState) refund(cfg Config, metered bool) {
	ts.admitted--
	if metered && cfg.TenantRate > 0 {
		ts.tokens = min(cfg.tenantBurst(), ts.tokens+1)
	}
}
