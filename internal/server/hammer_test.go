package server

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestRetryCancelEvictHammer is the satellite-1 regression test for
// the finalize/requeue races: under -race, a pool where every attempt
// panics (forcing the full retry ladder), cancels arrive at arbitrary
// points in the backoff cycle, and RetainJobs is tiny (so eviction
// constantly walks the job table) must settle every job into exactly
// one terminal state with the accounting intact. The bug class this
// pins down: requeue pushing a job into the dispatcher BEFORE setting
// its state, letting the state write stomp a concurrent finalize —
// a finalized job stuck "queued" is never evicted and leaks its
// tenant's quota slot forever.
func TestRetryCancelEvictHammer(t *testing.T) {
	const jobs = 24
	s := newTestServer(t, Config{Workers: 4, QueueCap: jobs,
		RetainJobs: 2, MaxRetries: 2, RetryBackoff: time.Millisecond,
		TenantQuota: jobs})
	// Every attempt dies instantly: each job runs the whole ladder of
	// attempt → panic → backoff → requeue, overlapping with everyone
	// else's, without the cost of real campaigns.
	s.startHook = func(job *Job) { panic("hammer: worker killed at job start") }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := make([]string, jobs)
	for i := range ids {
		job, err := s.SubmitAs("hammer", smokeSpec())
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = job.ID
	}

	// Cancelers race the retry timers: half the jobs get DELETEs fired
	// at staggered moments that land while queued, running, retrying,
	// or already terminal; status pollers and metric scrapes churn the
	// read paths at the same time.
	var wg sync.WaitGroup
	for i, id := range ids {
		if i%2 == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 500 * time.Microsecond)
			s.Cancel(id)
		}(i, id)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				for _, id := range ids {
					if job := s.Job(id); job != nil {
						job.status()
					}
				}
				get(t, ts, "/metrics")
			}
		}()
	}
	wg.Wait()

	// Every job settles: no lost wakeups, no job resurrected past its
	// finalize, no eviction of a live job.
	deadline := time.Now().Add(time.Minute)
	for _, id := range ids {
		job := s.Job(id)
		if job == nil {
			continue // evicted — necessarily terminal
		}
		for {
			job.mu.Lock()
			st, fin := job.state, job.finalized
			job.mu.Unlock()
			if terminalState(st) {
				if !fin {
					t.Errorf("%s terminal (%s) but not finalized", id, st)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s stuck in %q", id, st)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// The tenant's quota slots all came back: a leaked slot here is the
	// stomped-finalize bug wearing its QoS costume.
	waitFor(t, time.Minute, func() (bool, string) {
		s.mu.Lock()
		active := s.tenants["hammer"].active
		s.mu.Unlock()
		return active == 0, fmt.Sprintf("tenant active = %d, want 0", active)
	})
	// And the dispatcher drained completely.
	waitFor(t, time.Minute, func() (bool, string) {
		d := s.QueueDepth()
		return d == 0, fmt.Sprintf("queue depth = %d, want 0", d)
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() (bool, string)) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		ok, msg := cond()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRequeueCannotResurrectFinalizedJob drives the satellite-1 race
// deterministically: a job is finalized (canceled) while its retry
// timer is in flight; whatever order the timer callback and the cancel
// land in, the job must end terminal exactly once and must never
// re-enter the queue after finalize.
func TestRequeueCannotResurrectFinalizedJob(t *testing.T) {
	for round := 0; round < 50; round++ {
		s := newTestServer(t, Config{Workers: 1, QueueCap: 4,
			MaxRetries: 3, RetryBackoff: time.Microsecond})
		s.startHook = func(*Job) { panic("die") }
		job, err := s.Submit(smokeSpec())
		if err != nil {
			t.Fatal(err)
		}
		// Let the retry cycle spin, then cancel at a random phase point.
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		s.Cancel(job.ID)

		deadline := time.Now().Add(30 * time.Second)
		for {
			job.mu.Lock()
			st := job.state
			job.mu.Unlock()
			if terminalState(st) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: job stuck in %q", round, st)
			}
			time.Sleep(100 * time.Microsecond)
		}
		// Settled means settled: the state may never change again, even
		// with retry timers potentially still firing.
		job.mu.Lock()
		settled := job.state
		job.mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		job.mu.Lock()
		now, fin := job.state, job.finalized
		job.mu.Unlock()
		if now != settled || !fin {
			t.Fatalf("round %d: job resurrected after finalize: %q -> %q (finalized=%v)", round, settled, now, fin)
		}
		s.Drain()
	}
}
