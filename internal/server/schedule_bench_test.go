package server

import (
	"net/netip"
	"testing"

	"recordroute/internal/results"
)

// BenchmarkScheduleTick measures the scheduler's per-epoch overhead —
// deriving the next epoch's job spec (seed, churn clock, journal path)
// and folding a completed epoch's reachable set into the time-series
// index — with the campaign itself factored out. benchguard pins
// allocs/op: the tick runs between every pair of epochs of every
// schedule, and an alloc regression here taxes the whole cadence.
func BenchmarkScheduleTick(b *testing.B) {
	sc := &Schedule{ID: "sched-1", Tenant: "bench",
		Spec:  ScheduleSpec{Job: smokeSpec(), Epochs: 1 << 30},
		state: SchedActive, Index: &results.EpochIndex{}}
	reachable := make([]netip.Addr, 64)
	for i := range reachable {
		reachable[i] = netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := i & 7 // bounded cursor: the index stays 8 epochs deep
		spec := sc.epochSpec("/data", e)
		if spec.FaultEpoch != e {
			b.Fatal("epoch spec derivation broken")
		}
		sc.Index.Add(e, reachable)
	}
}
