package server

import (
	"fmt"
	"reflect"
	"testing"

	"recordroute/internal/netsim"
	"recordroute/internal/topology"
)

// TestDigestCoversEveryConfigField is the satellite-2 property test
// for plane-cache key completeness: the frozen-plane cache hands a
// clone of a cached topology to any job whose Config digests equal, so
// a generation input missing from the digest would silently serve one
// tenant another tenant's world. The property: mutate EXACTLY ONE
// field of a fully-populated Config — recursively, down through the
// fault plan — and the digest must change. Every mutation restores
// itself before the next, so each digest comparison isolates one field.
func TestDigestCoversEveryConfigField(t *testing.T) {
	cfg := topology.DefaultConfig(topology.Epoch2016)
	// Populate the optional pointer so its interior fields are reachable
	// by the walk.
	cfg.Faults = &netsim.FaultConfig{Seed: 7, ChurnFrac: 0.5, ChurnProb: 0.25}

	orig := cfg.Digest()
	mutated := 0
	check := func(path string) {
		mutated++
		if got := cfg.Digest(); got == orig {
			t.Errorf("mutating %s did not change the digest — a plane-cache collision between distinct worlds", path)
		}
	}
	walkAndMutate(t, reflect.ValueOf(&cfg).Elem(), "Config", check)

	if got := cfg.Digest(); got != orig {
		t.Fatalf("walk did not restore the config (digest %s != %s): field checks were not isolated", got, orig)
	}
	if mutated < 30 {
		t.Fatalf("walk mutated only %d fields — the reflection sweep is broken", mutated)
	}
}

// walkAndMutate visits every settable leaf of v; each leaf is mutated
// to a distinct value, check(path) is invoked, and the old value is
// put back.
func walkAndMutate(t *testing.T, v reflect.Value, path string, check func(path string)) {
	t.Helper()
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			name := v.Type().Field(i).Name
			if !f.CanSet() {
				t.Fatalf("%s.%s is unexported: it cannot feed the JSON digest, so it must not influence generation", path, name)
			}
			walkAndMutate(t, f, path+"."+name, check)
		}
	case reflect.Pointer:
		if v.IsNil() {
			t.Fatalf("%s is nil in the base config; populate it so its fields are covered", path)
		}
		walkAndMutate(t, v.Elem(), path, check)
	case reflect.Int, reflect.Int64:
		old := v.Int()
		v.SetInt(old + 1)
		check(path)
		v.SetInt(old)
	case reflect.Uint, reflect.Uint64:
		old := v.Uint()
		v.SetUint(old + 1)
		check(path)
		v.SetUint(old)
	case reflect.Float64:
		old := v.Float()
		v.SetFloat(old + 0.123)
		check(path)
		v.SetFloat(old)
	case reflect.Bool:
		old := v.Bool()
		v.SetBool(!old)
		check(path)
		v.SetBool(old)
	case reflect.String:
		old := v.String()
		v.SetString(old + "x")
		check(path)
		v.SetString(old)
	case reflect.Slice:
		// Both length and element values must feed the digest.
		old := v.Interface()
		v.Set(reflect.Append(v, reflect.Zero(v.Type().Elem())))
		check(path + "[+1]")
		v.Set(reflect.ValueOf(old))
		if v.Len() > 0 {
			walkAndMutate(t, v.Index(0), fmt.Sprintf("%s[0]", path), check)
		}
	case reflect.Map:
		if v.IsNil() {
			t.Fatalf("%s is a nil map in the base config; populate it so its entries are covered", path)
		}
		// A new key and a mutated value must both change the digest.
		nk := reflect.New(v.Type().Key()).Elem()
		nk.SetInt(97) // an ASType no default config uses
		v.SetMapIndex(nk, reflect.New(v.Type().Elem()).Elem())
		check(path + "[+key]")
		v.SetMapIndex(nk, reflect.Value{})
		for _, k := range v.MapKeys() {
			old := v.MapIndex(k).Float()
			nv := reflect.New(v.Type().Elem()).Elem()
			nv.SetFloat(old + 0.123)
			v.SetMapIndex(k, nv)
			check(fmt.Sprintf("%s[%v]", path, k))
			nv.SetFloat(old)
			v.SetMapIndex(k, nv)
			break
		}
	default:
		t.Fatalf("%s has unhandled kind %s — extend the walk", path, v.Kind())
	}
}

// TestCacheKeyedByFaultPlan pins the concrete regression behind the
// property: two jobs differing only in their fault plan (one nil, one
// churning) must resolve to different planes — two cache misses, two
// builds — never a shared world.
func TestCacheKeyedByFaultPlan(t *testing.T) {
	cache := newPlaneCache(4)
	plain := topology.DefaultConfig(topology.Epoch2016).Scale(0.1)
	faulted := plain
	faulted.Faults = &netsim.FaultConfig{Seed: 1, ChurnFrac: 0.5, ChurnProb: 0.5}

	if _, hit, err := cache.Get(plain); err != nil || hit {
		t.Fatalf("first plain get: hit=%v err=%v", hit, err)
	}
	if _, hit, err := cache.Get(faulted); err != nil || hit {
		t.Fatalf("faulted config hit the plain plane: hit=%v err=%v", hit, err)
	}
	if _, hit, err := cache.Get(plain); err != nil || !hit {
		t.Fatalf("second plain get should hit: hit=%v err=%v", hit, err)
	}
	if hits, misses, size := cache.Stats(); hits != 1 || misses != 2 || size != 2 {
		t.Errorf("cache stats %d/%d/%d, want hits=1 misses=2 size=2", hits, misses, size)
	}
}
