package server

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"recordroute/internal/obs"
)

// TestPinnedClockProvesNoWallClockInResults is the satellite-3
// regression test for the cache.go wall-clock read: build latency must
// flow through the obs clock seam, never time.Now directly. With the
// clock frozen, every duration the service observes is exactly zero —
// the plane-build histogram's sum stays 0 while its count advances —
// and the campaign's render is still byte-identical to the golden
// produced under a live clock, proving no wall-clock value can reach
// deterministic output.
func TestPinnedClockProvesNoWallClockInResults(t *testing.T) {
	pinned := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	obs.SetNow(func() time.Time { return pinned })
	defer obs.SetNow(nil)

	s := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submit(t, ts, smokeSpec())
	if st := waitTerminal(t, ts, id); st.State != StateDone {
		t.Fatalf("job under pinned clock settled as %+v", st)
	}

	// The miss was observed (count 1) at exactly zero seconds (sum 0):
	// the only clock cache.go read was the pinned one.
	if got := metricValue(t, ts, "rrstudyd_plane_build_seconds_sum"); got != "0" {
		t.Errorf("plane_build_seconds_sum = %q under a pinned clock, want 0", got)
	}
	if got := metricValue(t, ts, "rrstudyd_plane_build_seconds_count"); got != "1" {
		t.Errorf("plane_build_seconds_count = %q, want 1", got)
	}

	// Results are clock-independent: the render equals the study golden.
	_, render := get(t, ts, "/jobs/"+id+"/render")
	golden, err := os.ReadFile(filepath.Join("..", "study", "testdata", "golden", "table1_responsiveness.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render, golden) {
		t.Errorf("pinned-clock render differs from golden:\n--- pinned ---\n%s--- golden ---\n%s", render, golden)
	}
}

// TestObsClockSeam covers the seam itself: SetNow replaces what Now
// and Since read, and SetNow(nil) restores the live clock.
func TestObsClockSeam(t *testing.T) {
	pinned := time.Date(2000, 1, 2, 3, 4, 5, 0, time.UTC)
	obs.SetNow(func() time.Time { return pinned })
	defer obs.SetNow(nil)
	if got := obs.Now(); !got.Equal(pinned) {
		t.Errorf("Now() = %v under pinned clock, want %v", got, pinned)
	}
	if d := obs.Since(pinned.Add(-3 * time.Second)); d != 3*time.Second {
		t.Errorf("Since() = %v, want 3s", d)
	}
	obs.SetNow(nil)
	if d := time.Since(obs.Now()); d < 0 || d > time.Minute {
		t.Errorf("live clock not restored: Now() is %v off", d)
	}
}
