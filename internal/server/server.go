package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"

	"recordroute/internal/obs"
	"recordroute/internal/probe"
	"recordroute/internal/results"
	"recordroute/internal/study"
	"recordroute/internal/topology"
)

// Config sizes the campaign service.
type Config struct {
	// Workers is the worker-pool width: how many campaigns execute
	// concurrently. Default 2.
	Workers int
	// QueueCap bounds the number of accepted-but-not-running jobs.
	// Submissions beyond it are refused with 503 — backpressure, not
	// unbounded memory. Default 16.
	QueueCap int
	// CacheCap bounds the frozen-plane cache (distinct topology
	// configs). Default 4.
	CacheCap int
	// DataDir is where per-job journals live. Default: a "rrstudyd"
	// directory under the OS temp dir.
	DataDir string
	// RetainJobs bounds how many finished (done/failed) jobs stay
	// queryable; beyond it the oldest are evicted along with their
	// stream and render buffers, so a long-lived daemon's memory stays
	// bounded per job, not per lifetime. Journals survive eviction.
	// Default 64.
	RetainJobs int
}

// JobSpec is the submit body: which experiment against which world,
// with which campaign options. The zero value of each field means its
// study default.
type JobSpec struct {
	// Experiment selects the campaign; "table1" (the Table 1
	// responsiveness study) is the one the service runs.
	Experiment string `json:"experiment"`
	// Scale multiplies the default topology sizing (1.0 ≈ 1/100 of the
	// paper's probing volume).
	Scale float64 `json:"scale,omitempty"`
	// Seed overrides the world seed (0 = built-in default).
	Seed uint64 `json:"seed,omitempty"`
	// Epoch is 2016 (default) or 2011.
	Epoch int `json:"epoch,omitempty"`
	// Shards, Rate, ShuffleSeed mirror study.Options.
	Shards      int     `json:"shards,omitempty"`
	Rate        float64 `json:"rate,omitempty"`
	ShuffleSeed uint64  `json:"shuffle_seed,omitempty"`
	// Journal overrides the journal path (default: DataDir/<job>.jsonl);
	// with Resume set, completed batches found there are skipped and
	// the run picks up where the journal stops.
	Journal string `json:"journal,omitempty"`
	Resume  bool   `json:"resume,omitempty"`
}

// config resolves the spec into the topology configuration that keys
// the frozen-plane cache.
func (sp JobSpec) config() (topology.Config, error) {
	epoch := topology.Epoch2016
	switch sp.Epoch {
	case 0, 2016:
	case 2011:
		epoch = topology.Epoch2011
	default:
		return topology.Config{}, fmt.Errorf("unknown epoch %d (want 2016 or 2011)", sp.Epoch)
	}
	cfg := topology.DefaultConfig(epoch)
	if sp.Scale < 0 || sp.Scale > 100 {
		return topology.Config{}, fmt.Errorf("scale %v out of range (0, 100]", sp.Scale)
	}
	if sp.Scale > 0 && sp.Scale != 1 {
		cfg = cfg.Scale(sp.Scale)
	}
	if sp.Seed != 0 {
		cfg.Seed = sp.Seed
	}
	return cfg, nil
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one submitted campaign. Result lines accumulate in stream as
// the campaign's VP batches complete; render holds the finished table.
type Job struct {
	ID   string
	Spec JobSpec
	// journal is the resolved journal path, fixed at submit time so the
	// server can refuse a second job writing the same file.
	journal string

	mu       sync.Mutex
	cond     *sync.Cond
	state    string
	err      string
	cacheHit bool
	done     int // completed VP batches (archived + freshly probed)
	total    int // VP batches the campaign will complete, once known
	stream   []byte
	render   []byte
}

// Status is the job-status JSON.
type Status struct {
	ID       string  `json:"id"`
	State    string  `json:"state"`
	Error    string  `json:"error,omitempty"`
	CacheHit bool    `json:"cache_hit"`
	Done     int     `json:"done"`
	Total    int     `json:"total"`
	Progress float64 `json:"progress"`
}

func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{ID: j.ID, State: j.state, Error: j.err,
		CacheHit: j.cacheHit, Done: j.done, Total: j.total}
	if j.total > 0 {
		s.Progress = float64(j.done) / float64(j.total)
	}
	return s
}

// Server is the campaign service: submit jobs, poll status, stream
// results, scrape metrics. Create with New, serve via Handler, stop
// with Drain.
type Server struct {
	cfg   Config
	cache *planeCache

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string          // submission order, for /metrics
	journals map[string]string // active journal path -> job ID
	nextID   int
	draining bool

	queue chan *Job
	wg    sync.WaitGroup

	// startHook, when set (tests), runs at the top of each job
	// execution — a seam for making workers dwell deterministically.
	startHook func(*Job)
}

// New starts a campaign service with cfg's pool sizes; workers run
// until Drain.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 16
	}
	if cfg.RetainJobs < 1 {
		cfg.RetainJobs = 64
	}
	if cfg.DataDir == "" {
		cfg.DataDir = filepath.Join(os.TempDir(), "rrstudyd")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		cache:    newPlaneCache(cfg.CacheCap),
		jobs:     make(map[string]*Job),
		journals: make(map[string]string),
		queue:    make(chan *Job, cfg.QueueCap),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Drain stops accepting jobs, lets queued and running campaigns finish,
// and returns when the pool is idle — the graceful-shutdown half of the
// daemon's SIGTERM handling. Journals make even an ungraceful kill
// recoverable; drain just finishes the cheap way.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// Submit enqueues a job, refusing with an error when the service is
// draining, the queue is full, or the job's journal is already in use
// by a queued/running job.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	switch spec.Experiment {
	case "table1", "responsiveness":
	default:
		return nil, fmt.Errorf("unknown experiment %q (want table1)", spec.Experiment)
	}
	if _, err := spec.config(); err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	id := fmt.Sprintf("job-%d", s.nextID+1)
	path := spec.Journal
	if path == "" {
		path = filepath.Join(s.cfg.DataDir, id+".jsonl")
	}
	if owner, busy := s.journals[path]; busy {
		return nil, fmt.Errorf("journal %s is in use by %s", path, owner)
	}
	job := &Job{ID: id, Spec: spec, journal: path, state: StateQueued}
	job.cond = sync.NewCond(&job.mu)
	// The non-blocking send happens under s.mu, for two reasons: it is
	// ordered against Drain (which flips draining under s.mu before
	// closing the queue, so we can never send on a closed channel), and
	// the job is registered only after the queue accepts it, so a full
	// queue needs no rollback that could race with other submissions.
	select {
	case s.queue <- job:
	default:
		return nil, errQueueFull
	}
	s.nextID++
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.journals[path] = job.ID
	return job, nil
}

var (
	errQueueFull = fmt.Errorf("job queue full")
	errDraining  = fmt.Errorf("service is draining")
)

// Job returns a submitted job by ID.
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// QueueDepth returns the number of jobs accepted but not yet running.
func (s *Server) QueueDepth() int { return len(s.queue) }

func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.run(job)
	}
}

// run executes one campaign: resolve the world through the frozen-plane
// cache, attach the job's journal, stream batches as they complete,
// render when done.
func (s *Server) run(job *Job) {
	defer func() {
		if r := recover(); r != nil {
			job.fail(fmt.Sprintf("panic: %v", r))
		}
		s.mu.Lock()
		delete(s.journals, job.journal)
		s.mu.Unlock()
		s.evictTerminal()
	}()
	if s.startHook != nil {
		s.startHook(job)
	}
	job.setState(StateRunning)

	cfg, err := job.Spec.config()
	if err != nil {
		job.fail(err.Error())
		return
	}
	topo, hit, err := s.cache.Get(cfg)
	if err != nil {
		job.fail(fmt.Sprintf("topology build: %v", err))
		return
	}
	job.mu.Lock()
	job.cacheHit = hit
	job.mu.Unlock()

	st, err := study.NewFromTopology(topo, study.Options{
		Rate:        job.Spec.Rate,
		ShuffleSeed: job.Spec.ShuffleSeed,
		Shards:      job.Spec.Shards,
	})
	if err != nil {
		job.fail(err.Error())
		return
	}
	path := job.journal
	jn, err := st.AttachJournal(path, job.Spec.Resume)
	if err != nil {
		job.fail(fmt.Sprintf("journal: %v", err))
		return
	}
	defer st.CloseJournal()

	job.mu.Lock()
	job.total = len(st.Topo.VPs)
	job.done = jn.Archived()
	job.mu.Unlock()
	jn.SetSink(func(vp string, rs []probe.Result) {
		var line bytes.Buffer
		if err := results.WriteJSONL(&line, vp, rs); err != nil {
			return
		}
		job.mu.Lock()
		job.done++
		job.stream = append(job.stream, line.Bytes()...)
		job.mu.Unlock()
		job.cond.Broadcast()
	})

	resp := st.RunResponsiveness()
	if errs := st.Fleet().ShardErrors(); len(errs) > 0 {
		job.fail(fmt.Sprintf("%d shard(s) failed: %v (journal %s keeps completed batches; resubmit with resume)", len(errs), errs[0], path))
		return
	}

	var render bytes.Buffer
	resp.Render(&render)
	job.mu.Lock()
	job.render = render.Bytes()
	job.state = StateDone
	job.mu.Unlock()
	job.cond.Broadcast()
}

func (j *Job) setState(st string) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
	j.cond.Broadcast()
}

func (j *Job) fail(msg string) {
	j.mu.Lock()
	j.state = StateFailed
	j.err = msg
	j.mu.Unlock()
	j.cond.Broadcast()
}

// terminal reports whether the job reached done/failed.
func (j *Job) terminal() bool {
	return j.state == StateDone || j.state == StateFailed
}

// evictTerminal drops the oldest finished jobs beyond RetainJobs,
// freeing their stream and render buffers. Queued and running jobs are
// never evicted; clients still holding a *Job keep a valid pointer,
// the job is just no longer addressable over HTTP.
func (s *Server) evictTerminal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	var finished []string
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		done := j.terminal()
		j.mu.Unlock()
		if done {
			finished = append(finished, id)
		}
	}
	for _, id := range finished[:max(0, len(finished)-s.cfg.RetainJobs)] {
		delete(s.jobs, id)
		for k, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:k], s.order[k+1:]...)
				break
			}
		}
	}
}

// Handler returns the service's HTTP surface:
//
//	POST /jobs                submit a JobSpec, 202 {"id": ...} or 503
//	GET  /jobs/{id}           status JSON
//	GET  /jobs/{id}/stream    live JSONL result stream (follows until done)
//	GET  /jobs/{id}/render    the finished table (404 until done)
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /jobs/{id}/render", s.handleRender)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad job spec: %v", err), http.StatusBadRequest)
		return
	}
	job, err := s.Submit(spec)
	switch {
	case err == errQueueFull, err == errDraining:
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": job.ID})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(job.status())
}

// handleStream replays the job's JSONL results from the beginning and
// then follows live completions until the job reaches a terminal state
// (or the client goes away), flushing after every batch.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	// Wake the cond loop when the client disconnects.
	ctx := r.Context()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			job.cond.Broadcast()
		case <-stop:
		}
	}()

	off := 0
	for {
		job.mu.Lock()
		for off == len(job.stream) && !job.terminal() && ctx.Err() == nil {
			job.cond.Wait()
		}
		chunk := job.stream[off:]
		off = len(job.stream)
		end := job.terminal()
		job.mu.Unlock()

		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if ctx.Err() != nil || (end && len(chunk) == 0) {
			return
		}
	}
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		http.NotFound(w, r)
		return
	}
	job.mu.Lock()
	state, render, errMsg := job.state, job.render, job.err
	job.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(render)
	case StateFailed:
		http.Error(w, errMsg, http.StatusInternalServerError)
	default:
		http.Error(w, fmt.Sprintf("job %s is %s", job.ID, state), http.StatusConflict)
	}
}

// handleMetrics exposes the service gauges the acceptance criteria
// name — queue depth, cache hits, per-job progress — plus worker-pool
// and build counters, in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses, size := s.cache.Stats()

	s.mu.Lock()
	states := make(map[string]float64)
	var progress, totals []obs.PromSample
	for _, id := range s.order {
		job := s.jobs[id]
		st := job.status()
		states[st.State]++
		progress = append(progress, obs.PromSample{
			Labels: map[string]string{"job": st.ID}, Value: float64(st.Done)})
		totals = append(totals, obs.PromSample{
			Labels: map[string]string{"job": st.ID}, Value: float64(st.Total)})
	}
	s.mu.Unlock()

	var stateSamples []obs.PromSample
	for _, st := range []string{StateQueued, StateRunning, StateDone, StateFailed} {
		stateSamples = append(stateSamples, obs.PromSample{
			Labels: map[string]string{"state": st}, Value: states[st]})
	}

	fams := []obs.PromFamily{
		{Name: "rrstudyd_queue_depth", Help: "jobs accepted but not yet running", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(s.QueueDepth())}}},
		{Name: "rrstudyd_workers", Help: "worker pool width", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(s.cfg.Workers)}}},
		{Name: "rrstudyd_jobs", Help: "jobs by state", Type: "gauge", Samples: stateSamples},
		{Name: "rrstudyd_cache_hits_total", Help: "frozen-plane cache hits", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(hits)}}},
		{Name: "rrstudyd_cache_misses_total", Help: "frozen-plane cache misses", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(misses)}}},
		{Name: "rrstudyd_cache_planes", Help: "cached frozen planes", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(size)}}},
		{Name: "rrstudyd_topology_builds_total", Help: "process-wide topology builds", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(topology.Builds())}}},
		{Name: "rrstudyd_job_batches_done", Help: "completed VP batches per job (archived + fresh)", Type: "gauge",
			Samples: progress},
		{Name: "rrstudyd_job_batches_total", Help: "VP batches the job's campaign completes", Type: "gauge",
			Samples: totals},
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteProm(w, fams)
}
