package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"recordroute/internal/measure"
	"recordroute/internal/netsim"
	"recordroute/internal/obs"
	"recordroute/internal/probe"
	"recordroute/internal/results"
	"recordroute/internal/study"
	"recordroute/internal/topology"
)

// Config sizes the campaign service.
type Config struct {
	// Workers is the worker-pool width: how many campaigns execute
	// concurrently. Default 2.
	Workers int
	// QueueCap bounds the number of accepted-but-not-running jobs.
	// Submissions beyond it are refused with 503 — backpressure, not
	// unbounded memory. Default 16.
	QueueCap int
	// CacheCap bounds the frozen-plane cache (distinct topology
	// configs). Default 4.
	CacheCap int
	// DataDir is where per-job journals live. Default: a "rrstudyd"
	// directory under the OS temp dir.
	DataDir string
	// RetainJobs bounds how many finished (done/failed/canceled) jobs
	// stay queryable; beyond it the oldest are evicted along with their
	// stream and render buffers, so a long-lived daemon's memory stays
	// bounded per job, not per lifetime. Journals survive eviction.
	// Default 64.
	RetainJobs int
	// JobDeadline bounds one execution attempt's wall-clock time; 0
	// means no deadline. Expiry is observed at the campaign's
	// deterministic checkpoint boundaries (DESIGN.md §13), classified
	// as the retryable "deadline" failure class, and — because every
	// attempt journals its completed batches — the next attempt resumes
	// from where the expired one stopped, so a deadline acts as a
	// progress lease, not a hard kill.
	JobDeadline time.Duration
	// MaxRetries is the per-job retry budget for retryable failure
	// classes (see classRetryable). 0 means the default (2); negative
	// disables retries entirely.
	MaxRetries int
	// RetryBackoff is the delay before a failed job's first retry; each
	// further retry doubles it, capped at 30s. 0 means 500ms.
	RetryBackoff time.Duration
	// JournalFsync syncs the journal file after every checkpoint
	// record, extending crash-safety from process kills to machine
	// crashes at a per-checkpoint I/O cost.
	JournalFsync bool
	// StreamWriteTimeout bounds each write to a /stream client; a
	// reader stalled longer than this is disconnected instead of
	// pinning the handler (and the job buffers it retains) forever.
	// 0 means 30s; negative disables.
	StreamWriteTimeout time.Duration

	// TenantQuota caps each tenant's in-flight jobs (queued + running,
	// schedule epochs included); submissions beyond it get 429 with
	// Retry-After — per-tenant QoS, distinct from the global 503
	// backpressure. 0 means unlimited.
	TenantQuota int
	// TenantRate/TenantBurst add token-bucket admission per tenant:
	// each accepted submission costs one token, refilled at TenantRate
	// per second up to TenantBurst (default: the rate, min 1). A zero
	// rate disables the bucket. Internal schedule epochs are exempt —
	// the schedule paid its token at creation.
	TenantRate  float64
	TenantBurst float64
}

func (c Config) maxRetries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return 2
	default:
		return c.MaxRetries
	}
}

func (c Config) retryBackoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return 500 * time.Millisecond
	}
	return c.RetryBackoff
}

func (c Config) streamWriteTimeout() time.Duration {
	switch {
	case c.StreamWriteTimeout < 0:
		return 0
	case c.StreamWriteTimeout == 0:
		return 30 * time.Second
	default:
		return c.StreamWriteTimeout
	}
}

// maxRetryBackoff caps the exponential retry backoff.
const maxRetryBackoff = 30 * time.Second

// backoffFor returns the capped exponential delay before retry n
// (1-based) of a job.
func (c Config) backoffFor(retry int) time.Duration {
	d := c.retryBackoff()
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= maxRetryBackoff {
			return maxRetryBackoff
		}
	}
	return min(d, maxRetryBackoff)
}

// JobSpec is the submit body: which experiment against which world,
// with which campaign options. The zero value of each field means its
// study default.
type JobSpec struct {
	// Experiment selects the campaign; "table1" (the Table 1
	// responsiveness study) is the one the service runs.
	Experiment string `json:"experiment"`
	// Scale multiplies the default topology sizing (1.0 ≈ 1/100 of the
	// paper's probing volume). Mutually exclusive with Profile.
	Scale float64 `json:"scale,omitempty"`
	// Profile selects a named topology size (small|medium|large)
	// instead of a numeric Scale.
	Profile string `json:"profile,omitempty"`
	// Seed overrides the world seed (0 = built-in default).
	Seed uint64 `json:"seed,omitempty"`
	// Epoch is 2016 (default) or 2011.
	Epoch int `json:"epoch,omitempty"`
	// Faults installs a deterministic fault plan over the topology
	// (chaos weather, long-horizon churn). Part of the plane-cache key:
	// jobs with different fault plans never share a plane.
	Faults *netsim.FaultConfig `json:"faults,omitempty"`
	// Shards, Rate, ShuffleSeed mirror study.Options.
	Shards      int     `json:"shards,omitempty"`
	Rate        float64 `json:"rate,omitempty"`
	ShuffleSeed uint64  `json:"shuffle_seed,omitempty"`
	// FaultEpoch pins the churn clock (study.Options.FaultEpoch): the
	// schedule's virtual-epoch cadence sets it per epoch. Deliberately
	// outside the topology config, so every epoch of a schedule keys
	// the same cached plane.
	FaultEpoch int `json:"fault_epoch,omitempty"`
	// Journal overrides the journal path (default: DataDir/<job>.jsonl);
	// with Resume set, completed batches found there are skipped and
	// the run picks up where the journal stops.
	Journal string `json:"journal,omitempty"`
	Resume  bool   `json:"resume,omitempty"`
}

// config resolves the spec into the topology configuration that keys
// the frozen-plane cache.
func (sp JobSpec) config() (topology.Config, error) {
	epoch := topology.Epoch2016
	switch sp.Epoch {
	case 0, 2016:
	case 2011:
		epoch = topology.Epoch2011
	default:
		return topology.Config{}, fmt.Errorf("unknown epoch %d (want 2016 or 2011)", sp.Epoch)
	}
	cfg := topology.DefaultConfig(epoch)
	if sp.Scale < 0 || sp.Scale > 100 {
		return topology.Config{}, fmt.Errorf("scale %v out of range (0, 100]", sp.Scale)
	}
	if sp.Profile != "" {
		if sp.Scale != 0 {
			return topology.Config{}, fmt.Errorf("profile %q and scale %v are mutually exclusive", sp.Profile, sp.Scale)
		}
		pcfg, err := topology.ProfileConfig(epoch, topology.ScaleProfile(sp.Profile))
		if err != nil {
			return topology.Config{}, err
		}
		cfg = pcfg
	}
	if sp.Scale > 0 && sp.Scale != 1 {
		cfg = cfg.Scale(sp.Scale)
	}
	if sp.Seed != 0 {
		cfg.Seed = sp.Seed
	}
	// The fault plan is plane state (it edits routing weather at build
	// time), so it rides in the Config — and therefore in the digest
	// that keys the frozen-plane cache.
	cfg.Faults = sp.Faults
	return cfg, nil
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateRetrying = "retrying" // failed retryably; waiting out the backoff before re-queueing
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Failure classes. Every failed attempt is classified so the retry
// policy is a property of the failure, not of the error text: classes
// caused by the environment (a crashed worker, a full disk, an expired
// deadline) are retried with the journal carrying the finished batches
// forward, classes caused by the job itself (a bad spec, a topology
// that cannot build) fail immediately — retrying a deterministic error
// only burns the budget.
const (
	ClassSpec      = "spec"        // invalid job spec resolved after submit — deterministic, terminal
	ClassTopology  = "topology"    // topology build error — deterministic, terminal
	ClassJournalIO = "journal-io"  // journal attach/resume I/O failure — environmental, retryable
	ClassPanic     = "panic"       // worker goroutine panic — retryable
	ClassShard     = "shard-panic" // shard replica died mid-campaign — retryable
	ClassDeadline  = "deadline"    // attempt exceeded JobDeadline — retryable (resume makes progress)
	ClassCanceled  = "canceled"    // DELETE /jobs/{id} — terminal by request
)

// classRetryable reports whether a failure class earns another attempt.
func classRetryable(class string) bool {
	switch class {
	case ClassJournalIO, ClassPanic, ClassShard, ClassDeadline:
		return true
	}
	return false
}

// Job is one submitted campaign. Result lines accumulate in stream as
// the campaign's VP batches complete; render holds the finished table.
type Job struct {
	ID   string
	Spec JobSpec
	// journal is the resolved journal path, fixed at submit time so the
	// server can refuse a second job writing the same file. It stays
	// reserved across retries and is released when the job finalizes.
	journal string
	// tenant is the submitting tenant ("default" when anonymous); its
	// quota slot is released when the job finalizes.
	tenant string
	// digest is the topology digest resolved at submit time — the
	// plane-cache key, reused by runOnce; preferred is the worker it
	// hashes to (dispatcher affinity).
	digest    string
	preferred int
	// onTerminal, when set (schedules), runs exactly once after the job
	// finalizes, outside all locks. Set before submit, never mutated.
	onTerminal func(*Job)

	mu        sync.Mutex
	cond      *sync.Cond
	state     string
	err       string
	class     string // failure class of the most recent failed attempt
	attempts  int    // execution attempts started
	degraded  bool   // the journal degraded during some attempt
	cacheHit  bool
	done      int // completed batch checkpoints (archived + freshly probed)
	total     int // batch checkpoints the campaign will complete, once known
	stream    []byte
	render    []byte
	reachable []netip.Addr // the campaign's RR-reachable set (schedule epoch diffs)
	finalized bool         // terminal bookkeeping (journal release, eviction) ran

	cancelRequested bool               // DELETE arrived; honored at the next checkpoint
	cancelRun       context.CancelFunc // cancels the in-flight attempt; nil between attempts
	retryTimer      *time.Timer        // pending backoff re-queue; nil otherwise
}

// Status is the job-status JSON.
type Status struct {
	ID       string  `json:"id"`
	State    string  `json:"state"`
	Error    string  `json:"error,omitempty"`
	Class    string  `json:"class,omitempty"`
	Attempts int     `json:"attempts,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`
	CacheHit bool    `json:"cache_hit"`
	Done     int     `json:"done"`
	Total    int     `json:"total"`
	Progress float64 `json:"progress"`
}

func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{ID: j.ID, State: j.state, Error: j.err, Class: j.class,
		Attempts: j.attempts, Degraded: j.degraded,
		CacheHit: j.cacheHit, Done: j.done, Total: j.total}
	if j.total > 0 {
		s.Progress = float64(j.done) / float64(j.total)
	}
	return s
}

// Server is the campaign service: submit jobs, poll status, stream
// results, cancel, scrape metrics. Create with New, serve via Handler,
// stop with Drain.
type Server struct {
	cfg   Config
	cache *planeCache

	// buildSeconds is the plane-build latency histogram behind the
	// /metrics rrstudyd_plane_build_seconds family: one observation per
	// frozen-plane cache miss (build + snapshot wall-clock).
	buildSeconds *obs.PromHistogram

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string          // submission order, for /metrics
	journals  map[string]string // reserved journal path -> job ID
	tenants   map[string]*tenantState
	schedules map[string]*Schedule
	schedIDs  []string // creation order, for /schedules and /metrics
	nextID    int
	nextSched int
	draining  bool

	dispatch *dispatcher
	wg       sync.WaitGroup

	retriedTotal   atomic.Int64 // attempts re-queued after a retryable failure
	canceledTotal  atomic.Int64 // jobs finalized by DELETE /jobs/{id}
	degradedTotal  atomic.Int64 // jobs whose journal degraded (write errors swallowed)
	streamDropped  atomic.Int64 // /stream clients disconnected by the write deadline
	affinityHits   atomic.Int64 // jobs executed by their plane-affinity worker
	affinityMisses atomic.Int64 // jobs executed via work stealing

	// startHook, when set (tests), runs at the top of each job
	// execution — a seam for making workers dwell deterministically, or
	// crash (a panic here is a worker death the lifecycle must absorb).
	startHook func(*Job)
	// batchHook, when set (tests), runs inside the journal sink on the
	// shard goroutine that completed the batch — the chaos harness's
	// seam for killing a worker mid-phase (a panic here dies exactly
	// where a real mid-campaign fault would).
	batchHook func(job *Job, vp string, attempt int)
}

// New starts a campaign service with cfg's pool sizes; workers run
// until Drain.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 16
	}
	if cfg.RetainJobs < 1 {
		cfg.RetainJobs = 64
	}
	if cfg.DataDir == "" {
		cfg.DataDir = filepath.Join(os.TempDir(), "rrstudyd")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		cache:     newPlaneCache(cfg.CacheCap),
		jobs:      make(map[string]*Job),
		journals:  make(map[string]string),
		tenants:   make(map[string]*tenantState),
		schedules: make(map[string]*Schedule),
		dispatch:  newDispatcher(cfg.Workers, cfg.QueueCap),
		// Bounds straddle the profiles the service actually builds:
		// small smoke planes land in the millisecond buckets, full-scale
		// plane builds in the seconds range.
		buildSeconds: obs.NewPromHistogram(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30),
	}
	s.cache.onBuild = s.buildSeconds.Observe
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	if err := s.loadSchedules(); err != nil {
		return nil, err
	}
	return s, nil
}

// Drain stops accepting jobs, lets queued and running campaigns finish,
// and returns when the pool is idle — the graceful-shutdown half of the
// daemon's SIGTERM handling. Jobs waiting out a retry backoff are not
// granted their next attempt: they finalize as failed with the original
// failure preserved, and their journals keep the completed batches for
// a manual resume. Journals make even an ungraceful kill recoverable;
// drain just finishes the cheap way.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	var waiting []*Job
	for _, id := range s.order {
		job := s.jobs[id]
		job.mu.Lock()
		if job.retryTimer != nil {
			waiting = append(waiting, job)
		}
		job.mu.Unlock()
	}
	s.mu.Unlock()
	// Any retry scheduled after draining flipped fails at scheduling
	// time; any timer that fires from here on sees draining and
	// finalizes instead of enqueueing. Stopping a timer first wins the
	// race to finalize; losing it (Stop returns false) means the timer
	// callback is already running and will finalize itself.
	for _, job := range waiting {
		job.mu.Lock()
		timer := job.retryTimer
		job.retryTimer = nil
		job.mu.Unlock()
		if timer != nil && timer.Stop() {
			s.finalize(job, StateFailed, jobClass(job), jobErr(job)+" (retry abandoned: service draining; journal keeps completed batches)")
		}
	}
	s.dispatch.close()
	s.wg.Wait()
}

func jobClass(j *Job) string { j.mu.Lock(); defer j.mu.Unlock(); return j.class }
func jobErr(j *Job) string   { j.mu.Lock(); defer j.mu.Unlock(); return j.err }

// Submit enqueues a job for the anonymous tenant, refusing with an
// error when the service is draining, the queue is full, or the job's
// journal is already in use by a queued/running job.
func (s *Server) Submit(spec JobSpec) (*Job, error) { return s.SubmitAs("", spec) }

// SubmitAs is Submit on behalf of a named tenant ("" means "default"):
// the submission passes the tenant's quota and token-bucket admission
// before the global queue, so one tenant flooding the service gets 429s
// while the others' jobs still run.
func (s *Server) SubmitAs(tenant string, spec JobSpec) (*Job, error) {
	return s.submit(tenant, spec, true, nil)
}

// submit is the shared submission path. metered submissions pay the
// tenant token bucket; schedule epochs (metered=false) only hold a
// quota slot — the schedule paid its token at creation. onTerminal, if
// set, fires once when the job finalizes.
func (s *Server) submit(tenant string, spec JobSpec, metered bool, onTerminal func(*Job)) (*Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	switch spec.Experiment {
	case "table1", "responsiveness":
	default:
		return nil, fmt.Errorf("unknown experiment %q (want table1)", spec.Experiment)
	}
	cfg, err := spec.config()
	if err != nil {
		return nil, err
	}
	digest := cfg.Digest()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	ts := s.tenant(tenant)
	if err := ts.admit(s.cfg, metered); err != nil {
		return nil, err
	}
	id := fmt.Sprintf("job-%d", s.nextID+1)
	path := spec.Journal
	if path == "" {
		path = filepath.Join(s.cfg.DataDir, id+".jsonl")
	}
	if owner, busy := s.journals[path]; busy {
		return nil, fmt.Errorf("journal %s is in use by %s", path, owner)
	}
	job := &Job{ID: id, Spec: spec, journal: path, tenant: tenant,
		digest: digest, preferred: s.dispatch.preferredWorker(digest),
		onTerminal: onTerminal, state: StateQueued}
	job.cond = sync.NewCond(&job.mu)
	// The push happens under s.mu, for two reasons: it is ordered
	// against Drain (which flips draining under s.mu before closing the
	// dispatcher, so a push can never land after close), and the job is
	// registered only after the dispatcher accepts it, so a full queue
	// needs no rollback that could race with other submissions.
	if err := s.dispatch.push(job); err != nil {
		ts.refund(s.cfg, metered)
		return nil, err
	}
	ts.active++
	s.nextID++
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.journals[path] = job.ID
	return job, nil
}

var (
	errQueueFull = fmt.Errorf("job queue full")
	errDraining  = fmt.Errorf("service is draining")
)

// Job returns a submitted job by ID.
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// QueueDepth returns the number of jobs accepted but not yet running.
func (s *Server) QueueDepth() int { return s.dispatch.queued() }

// Cancel requests cancellation of a job. A queued or backoff-waiting
// job finalizes as canceled without (further) execution; a running job
// has its attempt's context canceled and finalizes at the campaign's
// next deterministic checkpoint. Terminal jobs are left as they are
// (reported via the returned already-terminal flag). Canceled jobs are
// never retried.
func (s *Server) Cancel(id string) (job *Job, terminal bool) {
	job = s.Job(id)
	if job == nil {
		return nil, false
	}
	job.mu.Lock()
	if terminalState(job.state) {
		job.mu.Unlock()
		return job, true
	}
	job.cancelRequested = true
	cancel := job.cancelRun
	timer := job.retryTimer
	job.retryTimer = nil
	job.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	// A backoff-waiting job has no attempt to cancel and is not in the
	// queue; whoever stops the timer finalizes it. Losing the Stop race
	// means the timer callback is re-queueing — the worker that dequeues
	// it will observe cancelRequested and finalize.
	if timer != nil && timer.Stop() {
		s.finalizeCanceled(job, "canceled while waiting for retry")
	}
	return job, false
}

func terminalState(st string) bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}

// terminal reports whether the job reached done/failed/canceled.
func (j *Job) terminal() bool {
	return terminalState(j.state)
}

func (s *Server) worker(i int) {
	defer s.wg.Done()
	for {
		job, _ := s.dispatch.pop(i)
		if job == nil {
			return
		}
		// Affinity accounting: a job executed by the worker its plane
		// digest hashes to will find (or leave) that plane hot in the
		// shared cache and keep the epoch cadence of a schedule landing
		// on one goroutine; a steal is a miss.
		if i == job.preferred {
			s.affinityHits.Add(1)
		} else {
			s.affinityMisses.Add(1)
		}
		s.execute(job)
	}
}

// execute runs one attempt of a dequeued job and settles its fate:
// done, canceled, failed, or re-queued after a class-aware backoff.
func (s *Server) execute(job *Job) {
	job.mu.Lock()
	preCanceled := job.cancelRequested
	attempts := job.attempts
	job.mu.Unlock()
	if preCanceled {
		s.finalizeCanceled(job, "canceled while queued")
		return
	}

	out := s.runOnce(job)
	switch {
	case out.ok:
		s.finalize(job, StateDone, "", "")
	case out.class == ClassCanceled:
		s.finalizeCanceled(job, out.msg)
	case classRetryable(out.class) && attempts < s.cfg.maxRetries():
		s.scheduleRetry(job, out.class, out.msg)
	default:
		s.finalize(job, StateFailed, out.class, out.msg)
	}
}

// finalize settles a job's terminal state exactly once: state/class/
// error recorded, any armed retry timer disarmed (a late requeue of a
// finalized job would resurrect it as an unevictable ghost), waiters
// woken, the journal path released and the tenant's quota slot freed,
// old terminal jobs evicted, and the terminal hook fired.
func (s *Server) finalize(job *Job, state, class, msg string) {
	job.mu.Lock()
	if job.finalized {
		job.mu.Unlock()
		return
	}
	job.finalized = true
	job.state = state
	job.class = class
	job.err = msg
	timer := job.retryTimer
	job.retryTimer = nil
	job.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	job.cond.Broadcast()
	s.mu.Lock()
	delete(s.journals, job.journal)
	if ts := s.tenants[job.tenant]; ts != nil && ts.active > 0 {
		ts.active--
	}
	s.mu.Unlock()
	s.evictTerminal()
	if job.onTerminal != nil {
		job.onTerminal(job)
	}
}

func (s *Server) finalizeCanceled(job *Job, msg string) {
	s.canceledTotal.Add(1)
	s.finalize(job, StateCanceled, ClassCanceled, msg)
}

// scheduleRetry parks a retryably failed job in StateRetrying and arms
// the backoff timer that re-queues it. Under drain there is no next
// attempt: the job fails now, keeping the failure it would have
// retried.
func (s *Server) scheduleRetry(job *Job, class, msg string) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.finalize(job, StateFailed, class, msg+" (retry abandoned: service draining; journal keeps completed batches)")
		return
	}
	job.mu.Lock()
	retry := job.attempts // retry N follows attempt N
	delay := s.cfg.backoffFor(retry)
	job.state = StateRetrying
	job.class = class
	job.err = fmt.Sprintf("%s (attempt %d/%d; retrying in %v)", msg, retry, s.cfg.maxRetries()+1, delay)
	job.retryTimer = time.AfterFunc(delay, func() { s.requeue(job) })
	job.mu.Unlock()
	s.mu.Unlock()
	s.retriedTotal.Add(1)
	job.cond.Broadcast()
}

// requeue moves a backoff-expired job back into the worker queue. The
// journal stayed reserved the whole time, so nothing can have claimed
// the path in between; the next attempt resumes from it.
func (s *Server) requeue(job *Job) {
	job.mu.Lock()
	job.retryTimer = nil
	canceled := job.cancelRequested
	job.mu.Unlock()
	if canceled {
		s.finalizeCanceled(job, "canceled while waiting for retry")
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.finalize(job, StateFailed, jobClass(job), jobErr(job)+" (retry abandoned: service draining; journal keeps completed batches)")
		return
	}
	// The state flips to queued BEFORE the dispatcher push: once the
	// dispatcher holds the job, a worker can pop and run it immediately
	// (or even finish it), and a setState after the push would stomp
	// running/terminal state — a finalized job stuck looking "queued" is
	// never evicted and haunts /metrics forever.
	job.setState(StateQueued)
	if err := s.dispatch.push(job); err != nil {
		// Queue full: back out to retrying and wait another backoff
		// round rather than block a goroutine. Nobody holds the job (the
		// push failed), so the state transition is ours alone.
		job.mu.Lock()
		if !job.finalized {
			job.state = StateRetrying
			job.retryTimer = time.AfterFunc(s.cfg.retryBackoff(), func() { s.requeue(job) })
		}
		job.mu.Unlock()
		job.cond.Broadcast()
	}
	s.mu.Unlock()
}

// attemptOutcome is runOnce's verdict on one execution attempt.
type attemptOutcome struct {
	ok    bool
	class string
	msg   string
}

func failure(class, format string, args ...any) attemptOutcome {
	return attemptOutcome{class: class, msg: fmt.Sprintf(format, args...)}
}

// runOnce executes one campaign attempt: resolve the world through the
// frozen-plane cache, attach the job's journal (resuming it on every
// attempt after the first, so retries continue instead of restarting),
// stream batches as they complete, render when done. Panics — the
// worker's own and cooperative cancellation aborts — are absorbed here
// and classified; the worker goroutine survives every failure mode.
func (s *Server) runOnce(job *Job) (out attemptOutcome) {
	ctx := context.Background()
	var cancel context.CancelFunc
	if s.cfg.JobDeadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobDeadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	var jn *measure.Journal
	defer func() {
		if r := recover(); r != nil {
			if err, ok := measure.CanceledFrom(r); ok {
				out = s.classifyCancel(err, r)
			} else {
				out = failure(ClassPanic, "panic: %v", r)
			}
		}
		if jn != nil && jn.Degraded() != nil {
			s.markDegraded(job, jn.Degraded())
		}
		job.mu.Lock()
		job.cancelRun = nil
		job.mu.Unlock()
		cancel()
	}()

	job.mu.Lock()
	job.attempts++
	attempt := job.attempts
	job.state = StateRunning
	job.cancelRun = cancel
	preCanceled := job.cancelRequested
	job.mu.Unlock()
	job.cond.Broadcast()
	if preCanceled {
		// The DELETE raced the dequeue; don't start probing.
		cancel()
	}
	if s.startHook != nil {
		s.startHook(job)
	}

	cfg, err := job.Spec.config()
	if err != nil {
		return failure(ClassSpec, "%v", err)
	}
	topo, hit, err := s.cache.Get(cfg)
	if err != nil {
		return failure(ClassTopology, "topology build: %v", err)
	}
	job.mu.Lock()
	job.cacheHit = hit
	job.mu.Unlock()

	st, err := study.NewFromTopology(topo, study.Options{
		Rate:        job.Spec.Rate,
		ShuffleSeed: job.Spec.ShuffleSeed,
		Shards:      job.Spec.Shards,
		FaultEpoch:  job.Spec.FaultEpoch,
	})
	if err != nil {
		return failure(ClassSpec, "%v", err)
	}
	st.SetContext(ctx)
	resume := job.Spec.Resume || attempt > 1
	jn, err = st.AttachJournal(job.journal, resume)
	if err != nil {
		return failure(ClassJournalIO, "journal: %v", err)
	}
	jn.SetFsync(s.cfg.JournalFsync)
	defer st.CloseJournal()

	job.mu.Lock()
	// One ping-RR batch checkpoint per VP, plus the origin's
	// destination-sharded ping phase: one range checkpoint per shard
	// (DESIGN.md §15), each streamed under the origin's name.
	job.total = len(st.Topo.VPs)
	if pc, ok := st.Fleet().(*measure.ParallelCampaign); ok {
		ranges := pc.NumShards()
		if n := len(st.Topo.VPs); ranges > n {
			ranges = n // init clamps shards to the VP count
		}
		job.total += ranges
	}
	job.done = jn.Archived()
	job.mu.Unlock()
	jn.SetSink(func(vp string, rs []probe.Result) {
		if s.batchHook != nil {
			s.batchHook(job, vp, attempt)
		}
		var line bytes.Buffer
		if err := results.WriteJSONL(&line, vp, rs); err != nil {
			return
		}
		job.mu.Lock()
		job.done++
		job.stream = append(job.stream, line.Bytes()...)
		job.mu.Unlock()
		job.cond.Broadcast()
	})

	resp := st.RunResponsiveness()
	if errs := st.Fleet().ShardErrors(); len(errs) > 0 {
		// Cancellation/deadline aborts surface as canceled shards when
		// they land at a per-VP checkpoint rather than a phase boundary;
		// the job's own context says which fate this was.
		if err := ctx.Err(); err != nil {
			return s.classifyCancel(err, errs[0])
		}
		return failure(ClassShard, "%d shard(s) failed: %v (journal %s keeps completed batches)", len(errs), errs[0], job.journal)
	}
	if err := ctx.Err(); err != nil {
		// The abort landed after the campaign's last checkpoint; honor
		// it anyway so a canceled job never reports success.
		return s.classifyCancel(err, err)
	}

	var render bytes.Buffer
	resp.Render(&render)
	job.mu.Lock()
	job.render = render.Bytes()
	// The RR-reachable set is the epoch observation a schedule's
	// time-series index diffs; captured here so the terminal hook reads
	// settled data.
	job.reachable = resp.RRResponsive()
	job.mu.Unlock()
	return attemptOutcome{ok: true}
}

// classifyCancel splits a context-driven abort into its two classes: a
// deadline expiry (retryable — the next attempt resumes from the
// journal and makes fresh progress inside a fresh deadline) versus an
// explicit cancel (terminal).
func (s *Server) classifyCancel(ctxErr error, detail any) attemptOutcome {
	if errors.Is(ctxErr, context.DeadlineExceeded) {
		return failure(ClassDeadline, "attempt exceeded job deadline %v: %v", s.cfg.JobDeadline, detail)
	}
	return failure(ClassCanceled, "canceled: %v", detail)
}

// markDegraded records that the job's journal stopped recording
// checkpoints (a write/sync failure was swallowed so the campaign
// could keep running). Counted once per job.
func (s *Server) markDegraded(job *Job, err error) {
	job.mu.Lock()
	first := !job.degraded
	job.degraded = true
	job.mu.Unlock()
	if first {
		s.degradedTotal.Add(1)
	}
}

// setState transitions a non-finalized job; on a finalized job it is a
// no-op — terminal states are settled exactly once by finalize, and no
// late transition may resurrect an evicted job.
func (j *Job) setState(st string) {
	j.mu.Lock()
	if j.finalized {
		j.mu.Unlock()
		return
	}
	j.state = st
	j.mu.Unlock()
	j.cond.Broadcast()
}

// evictTerminal drops the oldest finished jobs beyond RetainJobs,
// freeing their stream and render buffers. Queued, running, and
// retrying jobs are never evicted; clients still holding a *Job keep a
// valid pointer, the job is just no longer addressable over HTTP.
func (s *Server) evictTerminal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	var finished []string
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		done := j.terminal()
		j.mu.Unlock()
		if done {
			finished = append(finished, id)
		}
	}
	for _, id := range finished[:max(0, len(finished)-s.cfg.RetainJobs)] {
		delete(s.jobs, id)
		for k, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:k], s.order[k+1:]...)
				break
			}
		}
	}
}

// Handler returns the service's HTTP surface:
//
//	POST   /jobs                submit a JobSpec, 202 {"id": ...}; 503 full, 429 over tenant budget
//	GET    /jobs/{id}           status JSON
//	DELETE /jobs/{id}           cancel (202; 409 if already terminal)
//	GET    /jobs/{id}/stream    live JSONL result stream (follows until done)
//	GET    /jobs/{id}/render    the finished table (404 until done)
//	POST   /schedules           create a recurring campaign, 202 {"id": ...}
//	GET    /schedules           list schedule statuses
//	GET    /schedules/{id}      schedule status JSON
//	DELETE /schedules/{id}      cancel (202; 409 if already terminal)
//	GET    /schedules/{id}/diff epoch-over-epoch reachability churn table
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness (process is up)
//	GET    /readyz              readiness (accepting jobs; 503 while draining)
//
// Every submission endpoint honors the X-Tenant header ("default" when
// absent): a tenant over its quota or token budget gets 429 with
// Retry-After, while the shared-queue-full refusal stays 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /jobs/{id}/render", s.handleRender)
	mux.HandleFunc("POST /schedules", s.handleScheduleCreate)
	mux.HandleFunc("GET /schedules", s.handleScheduleList)
	mux.HandleFunc("GET /schedules/{id}", s.handleScheduleStatus)
	mux.HandleFunc("DELETE /schedules/{id}", s.handleScheduleCancel)
	mux.HandleFunc("GET /schedules/{id}/diff", s.handleScheduleDiff)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// writeSubmitErr maps a submission refusal onto its HTTP status: 429
// for a tenant over its own budget (with its Retry-After hint), 503
// for the shared service being full or draining, 400 for a bad spec.
// It reports whether err was non-nil (and therefore written).
func writeSubmitErr(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return false
	case asQuotaError(err) != nil:
		qe := asQuotaError(err)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(qe.retryAfter.Seconds()+0.999)))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case err == errQueueFull, err == errDraining:
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad job spec: %v", err), http.StatusBadRequest)
		return
	}
	job, err := s.SubmitAs(r.Header.Get("X-Tenant"), spec)
	if writeSubmitErr(w, err) {
		return
	}
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": job.ID})
}

func (s *Server) handleScheduleCreate(w http.ResponseWriter, r *http.Request) {
	var spec ScheduleSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad schedule spec: %v", err), http.StatusBadRequest)
		return
	}
	sc, err := s.CreateSchedule(r.Header.Get("X-Tenant"), spec)
	if writeSubmitErr(w, err) {
		return
	}
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": sc.ID})
}

func (s *Server) handleScheduleList(w http.ResponseWriter, _ *http.Request) {
	var out []ScheduleStatus
	for _, sc := range s.Schedules() {
		out = append(out, s.scheduleStatus(sc))
	}
	if out == nil {
		out = []ScheduleStatus{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleScheduleStatus(w http.ResponseWriter, r *http.Request) {
	sc := s.Schedule(r.PathValue("id"))
	if sc == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.scheduleStatus(sc))
}

func (s *Server) handleScheduleCancel(w http.ResponseWriter, r *http.Request) {
	sc, terminal := s.CancelSchedule(r.PathValue("id"))
	if sc == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if terminal {
		w.WriteHeader(http.StatusConflict)
	} else {
		w.WriteHeader(http.StatusAccepted)
	}
	json.NewEncoder(w).Encode(s.scheduleStatus(sc))
}

// handleScheduleDiff renders the schedule's epoch-over-epoch
// reachability churn table — the time-series view of what the network
// weather gained and lost between consecutive virtual epochs.
func (s *Server) handleScheduleDiff(w http.ResponseWriter, r *http.Request) {
	sc := s.Schedule(r.PathValue("id"))
	if sc == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	sc.Index.RenderTable(w)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(job.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, terminal := s.Cancel(r.PathValue("id"))
	if job == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if terminal {
		w.WriteHeader(http.StatusConflict)
	} else {
		w.WriteHeader(http.StatusAccepted)
	}
	json.NewEncoder(w).Encode(job.status())
}

// handleStream replays the job's JSONL results from the beginning and
// then follows live completions until the job reaches a terminal state
// (or the client goes away), flushing after every batch. Each write
// carries a deadline: a reader that stops draining is disconnected
// after StreamWriteTimeout instead of holding the handler — and the
// job buffers it pins — for the life of the daemon.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	writeTimeout := s.cfg.streamWriteTimeout()

	// Wake the cond loop when the client disconnects.
	ctx := r.Context()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			job.cond.Broadcast()
		case <-stop:
		}
	}()

	off := 0
	for {
		job.mu.Lock()
		for off == len(job.stream) && !job.terminal() && ctx.Err() == nil {
			job.cond.Wait()
		}
		chunk := job.stream[off:]
		off = len(job.stream)
		end := job.terminal()
		job.mu.Unlock()

		if len(chunk) > 0 {
			if writeTimeout > 0 {
				rc.SetWriteDeadline(time.Now().Add(writeTimeout))
			}
			if _, err := w.Write(chunk); err != nil {
				s.streamDropped.Add(1)
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if ctx.Err() != nil || (end && len(chunk) == 0) {
			return
		}
	}
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		http.NotFound(w, r)
		return
	}
	job.mu.Lock()
	state, render, errMsg := job.state, job.render, job.err
	job.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(render)
	case StateFailed, StateCanceled:
		http.Error(w, errMsg, http.StatusInternalServerError)
	default:
		http.Error(w, fmt.Sprintf("job %s is %s", job.ID, state), http.StatusConflict)
	}
}

// handleMetrics exposes the service gauges the acceptance criteria
// name — queue depth, cache hits, per-job progress — plus worker-pool,
// build, and failure-handling counters (retries, cancellations,
// journal degradations), in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses, size := s.cache.Stats()

	s.mu.Lock()
	states := make(map[string]float64)
	var progress, totals []obs.PromSample
	for _, id := range s.order {
		job := s.jobs[id]
		st := job.status()
		states[st.State]++
		progress = append(progress, obs.PromSample{
			Labels: map[string]string{"job": st.ID}, Value: float64(st.Done)})
		totals = append(totals, obs.PromSample{
			Labels: map[string]string{"job": st.ID}, Value: float64(st.Total)})
	}
	var tenantNames []string
	for name := range s.tenants {
		tenantNames = append(tenantNames, name)
	}
	sort.Strings(tenantNames)
	var tenantActive, tenantAdmitted, tenantRejected []obs.PromSample
	for _, name := range tenantNames {
		ts := s.tenants[name]
		lbl := map[string]string{"tenant": name}
		tenantActive = append(tenantActive, obs.PromSample{Labels: lbl, Value: float64(ts.active)})
		tenantAdmitted = append(tenantAdmitted, obs.PromSample{Labels: lbl, Value: float64(ts.admitted)})
		tenantRejected = append(tenantRejected, obs.PromSample{Labels: lbl, Value: float64(ts.rejected)})
	}
	schedStates := make(map[string]float64)
	for _, id := range s.schedIDs {
		schedStates[s.schedules[id].state]++
	}
	s.mu.Unlock()

	var stateSamples []obs.PromSample
	for _, st := range []string{StateQueued, StateRunning, StateRetrying, StateDone, StateFailed, StateCanceled} {
		stateSamples = append(stateSamples, obs.PromSample{
			Labels: map[string]string{"state": st}, Value: states[st]})
	}
	var schedSamples []obs.PromSample
	for _, st := range []string{SchedActive, SchedDone, SchedFailed, SchedCanceled} {
		schedSamples = append(schedSamples, obs.PromSample{
			Labels: map[string]string{"state": st}, Value: schedStates[st]})
	}

	fams := []obs.PromFamily{
		{Name: "rrstudyd_queue_depth", Help: "jobs accepted but not yet running", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(s.QueueDepth())}}},
		{Name: "rrstudyd_workers", Help: "worker pool width", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(s.cfg.Workers)}}},
		{Name: "rrstudyd_jobs", Help: "jobs by state", Type: "gauge", Samples: stateSamples},
		{Name: "rrstudyd_jobs_retried_total", Help: "job attempts re-queued after a retryable failure", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(s.retriedTotal.Load())}}},
		{Name: "rrstudyd_jobs_canceled_total", Help: "jobs finalized by DELETE /jobs/{id}", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(s.canceledTotal.Load())}}},
		{Name: "rrstudyd_journal_degraded_total", Help: "jobs whose journal degraded (checkpoint writes failing, job continued)", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(s.degradedTotal.Load())}}},
		{Name: "rrstudyd_stream_clients_dropped_total", Help: "/stream clients disconnected by the write deadline", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(s.streamDropped.Load())}}},
		{Name: "rrstudyd_affinity_hits_total", Help: "jobs executed by their plane-affinity worker", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(s.affinityHits.Load())}}},
		{Name: "rrstudyd_affinity_misses_total", Help: "jobs executed via work stealing off their affinity worker", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(s.affinityMisses.Load())}}},
		{Name: "rrstudyd_schedules", Help: "recurring campaigns by state", Type: "gauge", Samples: schedSamples},
		{Name: "rrstudyd_tenant_active_jobs", Help: "in-flight jobs per tenant (queued + running)", Type: "gauge",
			Samples: tenantActive},
		{Name: "rrstudyd_tenant_admitted_total", Help: "submissions accepted per tenant", Type: "counter",
			Samples: tenantAdmitted},
		{Name: "rrstudyd_tenant_rejected_total", Help: "submissions refused per tenant by quota or token bucket (429s)", Type: "counter",
			Samples: tenantRejected},
		{Name: "rrstudyd_cache_hits_total", Help: "frozen-plane cache hits", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(hits)}}},
		{Name: "rrstudyd_cache_misses_total", Help: "frozen-plane cache misses", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(misses)}}},
		{Name: "rrstudyd_cache_planes", Help: "cached frozen planes", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(size)}}},
		{Name: "rrstudyd_topology_builds_total", Help: "process-wide topology builds", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(topology.Builds())}}},
		{Name: "rrstudyd_job_batches_done", Help: "completed VP batches per job (archived + fresh)", Type: "gauge",
			Samples: progress},
		{Name: "rrstudyd_job_batches_total", Help: "batch checkpoints the job's campaign completes", Type: "gauge",
			Samples: totals},
	}
	fams = append(fams, s.buildSeconds.Family(
		"rrstudyd_plane_build_seconds",
		"frozen-plane build duration per cache miss (build + snapshot)"))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteProm(w, fams)
}
