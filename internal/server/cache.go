// Package server is the campaign service: a job queue and bounded
// worker pool executing study campaigns over HTTP, with a frozen-plane
// cache so identical jobs share one topology build, per-job JSONL
// result streaming, and journal-backed checkpoint/resume (DESIGN.md
// §11). The cmd/rrstudyd daemon is a thin flag-and-signal wrapper
// around this package.
package server

import (
	"sync"

	"recordroute/internal/obs"
	"recordroute/internal/topology"
)

// planeCache is the frozen-plane cache: an LRU of topology snapshots
// keyed by Config.Digest(). The first request for a digest pays the one
// topology.Build; every other request — concurrent or later — clones
// the frozen snapshot, which shares the immutable route plane (FIBs,
// routes, addressing) and costs a small fraction of a build. Concurrent
// requests for the same digest are single-flighted: they block on the
// building entry instead of racing their own builds.
type planeCache struct {
	mu  sync.Mutex
	cap int
	ent map[string]*planeEntry

	tick   uint64 // LRU clock
	hits   uint64
	misses uint64

	// onBuild, when set, observes each cache-miss build's wall-clock
	// duration in seconds (snapshot included) — the server feeds its
	// plane-build latency histogram through it. Failed builds are
	// observed too: their latency is exactly what an operator staring
	// at a slow /metrics wants to see.
	onBuild func(seconds float64)
}

// planeEntry is one cached plane. ready is closed once the build
// finished (snap or err set); lastUse orders eviction.
type planeEntry struct {
	ready   chan struct{}
	snap    *topology.Snapshot
	err     error
	lastUse uint64
}

func newPlaneCache(capacity int) *planeCache {
	if capacity < 1 {
		capacity = 4
	}
	return &planeCache{cap: capacity, ent: make(map[string]*planeEntry)}
}

// Get returns a fresh pristine clone of the plane for cfg, building it
// exactly once per digest however many requests arrive together. hit
// reports whether the plane was already cached (or already building) —
// the signal the one-build acceptance assertion and the /metrics cache
// counters read.
func (c *planeCache) Get(cfg topology.Config) (topo *topology.Topology, hit bool, err error) {
	key := cfg.Digest()

	c.mu.Lock()
	e, ok := c.ent[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &planeEntry{ready: make(chan struct{})}
		c.ent[key] = e
		c.evictLocked(key)
	}
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()

	if !ok {
		// The wall clock is read through the obs seam, never directly:
		// build latency feeds only the /metrics histogram, and chaos
		// tests pin obs.SetNow to prove no wall-clock value can reach
		// journaled or rendered output (DESIGN.md §6).
		start := obs.Now()
		built, berr := topology.Build(cfg)
		if berr == nil {
			e.snap = topology.SnapshotOf(built)
		}
		if c.onBuild != nil {
			c.onBuild(obs.Since(start).Seconds())
		}
		e.err = berr
		close(e.ready)
		if berr != nil {
			// A failed build must not poison the key forever: drop it so
			// a corrected config (or transient failure) can retry.
			c.mu.Lock()
			if c.ent[key] == e {
				delete(c.ent, key)
			}
			c.mu.Unlock()
		}
	}

	<-e.ready
	if e.err != nil {
		return nil, ok, e.err
	}
	return e.snap.Clone(), ok, nil
}

// evictLocked drops least-recently-used completed entries until the
// cache fits; entries still building (ready open) are pinned. Called
// with c.mu held, just after inserting keep.
func (c *planeCache) evictLocked(keep string) {
	for len(c.ent) > c.cap {
		victim := ""
		var oldest uint64
		for k, e := range c.ent {
			if k == keep {
				continue
			}
			select {
			case <-e.ready:
			default:
				continue // still building
			}
			if victim == "" || e.lastUse < oldest {
				victim, oldest = k, e.lastUse
			}
		}
		if victim == "" {
			return
		}
		delete(c.ent, victim)
	}
}

// Stats returns the cache's hit/miss counters and current size.
func (c *planeCache) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.ent)
}
