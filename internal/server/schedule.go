package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"recordroute/internal/results"
	"recordroute/internal/study"
)

// Recurring campaigns. A Schedule runs one JobSpec for N virtual
// epochs, each epoch a fully deterministic derivation of the base
// spec: epoch e probes with ShuffleSeed = study.EpochSeed(base, e),
// FaultEpoch = e (advancing the long-horizon churn clock), and its own
// journal path sched-<id>-e<e>.jsonl under DataDir. The topology
// config — and therefore the plane digest — is identical across
// epochs, so every epoch of a schedule hits the frozen-plane cache and
// lands on the same affinity worker. Completed epochs feed the
// schedule's results.EpochIndex, whose consecutive diffs are the
// GET /schedules/{id}/diff churn view.
//
// Schedules are crash-safe the same way jobs are: the schedule record
// (spec, cursor, index) checkpoints to sched-<id>.json after every
// state change, epoch journals carry batch progress, and a restarted
// server resumes the interrupted epoch with Resume semantics — the
// resumed series is byte-identical to an uninterrupted one.

// Schedule states.
const (
	SchedActive   = "active"
	SchedDone     = "done"
	SchedFailed   = "failed"
	SchedCanceled = "canceled"
)

// ScheduleSpec is the POST /schedules body: the base job and how many
// epochs to run it for.
type ScheduleSpec struct {
	// Job is the base campaign spec; per-epoch seed, fault epoch, and
	// journal are derived from it. Journal and Resume must be unset —
	// the schedule owns journal placement.
	Job JobSpec `json:"job"`
	// Epochs is the number of virtual epochs to run (>= 1).
	Epochs int `json:"epochs"`
}

// Schedule is one recurring campaign. All fields are guarded by
// Server.mu; Index has its own lock and is safe to render concurrently.
type Schedule struct {
	ID     string
	Tenant string
	Spec   ScheduleSpec

	state      string
	nextEpoch  int    // first epoch not yet completed
	currentJob string // in-flight epoch job, "" between epochs
	errMsg     string

	Index *results.EpochIndex
}

// schedRecord is the persisted form of a Schedule.
type schedRecord struct {
	ID        string              `json:"id"`
	Tenant    string              `json:"tenant"`
	Spec      ScheduleSpec        `json:"spec"`
	State     string              `json:"state"`
	NextEpoch int                 `json:"next_epoch"`
	Error     string              `json:"error,omitempty"`
	Index     *results.EpochIndex `json:"index"`
}

// ScheduleStatus is the schedule-status JSON.
type ScheduleStatus struct {
	ID         string  `json:"id"`
	Tenant     string  `json:"tenant"`
	State      string  `json:"state"`
	Epochs     int     `json:"epochs"`
	NextEpoch  int     `json:"next_epoch"`
	CurrentJob string  `json:"current_job,omitempty"`
	Error      string  `json:"error,omitempty"`
	Progress   float64 `json:"progress"`
}

func (s *Server) scheduleStatus(sc *Schedule) ScheduleStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ScheduleStatus{ID: sc.ID, Tenant: sc.Tenant, State: sc.state,
		Epochs: sc.Spec.Epochs, NextEpoch: sc.nextEpoch,
		CurrentJob: sc.currentJob, Error: sc.errMsg}
	if sc.Spec.Epochs > 0 {
		st.Progress = float64(sc.nextEpoch) / float64(sc.Spec.Epochs)
	}
	return st
}

// CreateSchedule registers a recurring campaign for a tenant and fires
// its first epoch. The tenant pays one admission token at creation;
// the per-epoch jobs only hold quota slots (metered=false), so a
// schedule cannot starve its own epochs out of the token bucket it
// already paid.
func (s *Server) CreateSchedule(tenant string, spec ScheduleSpec) (*Schedule, error) {
	if tenant == "" {
		tenant = "default"
	}
	if spec.Epochs < 1 {
		return nil, fmt.Errorf("schedule needs epochs >= 1 (got %d)", spec.Epochs)
	}
	if spec.Job.Journal != "" || spec.Job.Resume {
		return nil, fmt.Errorf("schedule job must not set journal/resume: epoch journals are derived from the schedule ID")
	}
	switch spec.Job.Experiment {
	case "table1", "responsiveness":
	default:
		return nil, fmt.Errorf("unknown experiment %q (want table1)", spec.Job.Experiment)
	}
	if _, err := spec.Job.config(); err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	ts := s.tenant(tenant)
	if err := ts.admit(s.cfg, true); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.nextSched++
	sc := &Schedule{
		ID:     fmt.Sprintf("sched-%d", s.nextSched),
		Tenant: tenant,
		Spec:   spec,
		state:  SchedActive,
		Index:  &results.EpochIndex{},
	}
	s.schedules[sc.ID] = sc
	s.schedIDs = append(s.schedIDs, sc.ID)
	s.mu.Unlock()

	s.persistSchedule(sc)
	s.fireEpoch(sc)
	return sc, nil
}

// Schedule returns a registered schedule by ID.
func (s *Server) Schedule(id string) *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.schedules[id]
}

// Schedules returns all schedules in creation order.
func (s *Server) Schedules() []*Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Schedule, 0, len(s.schedIDs))
	for _, id := range s.schedIDs {
		out = append(out, s.schedules[id])
	}
	return out
}

// CancelSchedule stops a schedule: no further epochs fire, and the
// in-flight epoch job (if any) is canceled. Terminal schedules are
// left as they are.
func (s *Server) CancelSchedule(id string) (*Schedule, bool) {
	s.mu.Lock()
	sc := s.schedules[id]
	if sc == nil {
		s.mu.Unlock()
		return nil, false
	}
	if sc.state != SchedActive {
		s.mu.Unlock()
		return sc, true
	}
	sc.state = SchedCanceled
	current := sc.currentJob
	s.mu.Unlock()
	if current != "" {
		s.Cancel(current)
	}
	s.persistSchedule(sc)
	return sc, false
}

// epochSpec derives epoch e's job spec from the schedule's base: a
// fresh shuffle seed (splitmix over the base seed and e), the churn
// clock pinned to e, and the epoch's own journal under DataDir.
// Everything that keys the plane cache is untouched, by construction.
func (sc *Schedule) epochSpec(dataDir string, e int) JobSpec {
	spec := sc.Spec.Job
	spec.ShuffleSeed = study.EpochSeed(sc.Spec.Job.ShuffleSeed, e)
	spec.FaultEpoch = e
	spec.Journal = filepath.Join(dataDir, fmt.Sprintf("%s-e%d.jsonl", sc.ID, e))
	spec.Resume = true // the epoch's journal survives kills; completed batches archive
	return spec
}

// fireEpoch submits the schedule's next epoch job. Refusals that mean
// "later" (queue full, tenant quota) arm a retry timer; draining means
// the epoch fires on the next start (the schedule record has the
// cursor); anything else fails the schedule.
func (s *Server) fireEpoch(sc *Schedule) {
	s.mu.Lock()
	if sc.state != SchedActive || sc.currentJob != "" {
		s.mu.Unlock()
		return
	}
	e := sc.nextEpoch
	spec := sc.epochSpec(s.cfg.DataDir, e)
	s.mu.Unlock()

	job, err := s.submit(sc.Tenant, spec, false, func(j *Job) { s.epochDone(sc, e, j) })
	switch {
	case err == nil:
		s.mu.Lock()
		// The job can finalize — and epochDone clear the slot — before
		// submit returns; only record it as current while its epoch is
		// still the cursor.
		if sc.state == SchedActive && sc.nextEpoch == e {
			sc.currentJob = job.ID
		}
		s.mu.Unlock()
	case err == errDraining:
		// Resume at next start: loadSchedules fires the cursor epoch.
	case err == errQueueFull || asQuotaError(err) != nil:
		time.AfterFunc(s.cfg.retryBackoff(), func() { s.fireEpoch(sc) })
	default:
		s.mu.Lock()
		sc.state = SchedFailed
		sc.errMsg = fmt.Sprintf("epoch %d submit: %v", e, err)
		s.mu.Unlock()
		s.persistSchedule(sc)
	}
}

// epochDone is the terminal hook of an epoch job: record the epoch's
// reachable set, advance the cursor, checkpoint, and fire the next
// epoch (or finish). Runs outside all locks.
func (s *Server) epochDone(sc *Schedule, e int, job *Job) {
	job.mu.Lock()
	state, errMsg := job.state, job.err
	reachable := job.reachable
	job.mu.Unlock()

	s.mu.Lock()
	sc.currentJob = ""
	switch {
	case sc.state != SchedActive:
		// Canceled (or failed) while the epoch ran; keep the record as is.
	case state == StateDone:
		sc.Index.Add(e, reachable)
		if sc.nextEpoch == e {
			sc.nextEpoch = e + 1
		}
		if sc.nextEpoch >= sc.Spec.Epochs {
			sc.state = SchedDone
		}
	case state == StateCanceled:
		sc.state = SchedCanceled
		sc.errMsg = fmt.Sprintf("epoch %d canceled: %s", e, errMsg)
	default:
		sc.state = SchedFailed
		sc.errMsg = fmt.Sprintf("epoch %d failed: %s", e, errMsg)
	}
	active := sc.state == SchedActive
	s.mu.Unlock()

	s.persistSchedule(sc)
	if active {
		s.fireEpoch(sc)
	}
}

// persistSchedule checkpoints the schedule record to
// DataDir/<id>.json, atomically (write-temp, rename): a kill between
// epochs or mid-write leaves either the previous checkpoint or the new
// one, never a torn file.
func (s *Server) persistSchedule(sc *Schedule) {
	s.mu.Lock()
	rec := schedRecord{ID: sc.ID, Tenant: sc.Tenant, Spec: sc.Spec,
		State: sc.state, NextEpoch: sc.nextEpoch, Error: sc.errMsg, Index: sc.Index}
	data, err := json.Marshal(rec)
	s.mu.Unlock()
	if err != nil {
		return
	}
	path := filepath.Join(s.cfg.DataDir, sc.ID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	os.Rename(tmp, path)
}

// loadSchedules restores persisted schedules at startup and fires the
// cursor epoch of every active one — the resume half of the schedule
// lifecycle. A mid-epoch kill left that epoch's journal with its
// completed batches; the refired epoch job resumes from it.
func (s *Server) loadSchedules() error {
	paths, err := filepath.Glob(filepath.Join(s.cfg.DataDir, "sched-*.json"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	var resumed []*Schedule
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("schedule restore %s: %w", path, err)
		}
		var rec schedRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("schedule restore %s: %w", path, err)
		}
		if rec.Index == nil {
			rec.Index = &results.EpochIndex{}
		}
		sc := &Schedule{ID: rec.ID, Tenant: rec.Tenant, Spec: rec.Spec,
			state: rec.State, nextEpoch: rec.NextEpoch, errMsg: rec.Error,
			Index: rec.Index}
		n, ok := schedNum(rec.ID)
		if !ok {
			continue
		}
		s.mu.Lock()
		s.schedules[sc.ID] = sc
		s.schedIDs = append(s.schedIDs, sc.ID)
		if n > s.nextSched {
			s.nextSched = n
		}
		// A restored active tenant holds no token: it paid at creation,
		// in the previous process life.
		s.tenant(sc.Tenant)
		active := sc.state == SchedActive
		s.mu.Unlock()
		if active {
			resumed = append(resumed, sc)
		}
	}
	s.mu.Lock()
	sort.Slice(s.schedIDs, func(i, j int) bool {
		a, _ := schedNum(s.schedIDs[i])
		b, _ := schedNum(s.schedIDs[j])
		return a < b
	})
	s.mu.Unlock()
	for _, sc := range resumed {
		s.fireEpoch(sc)
	}
	return nil
}

func schedNum(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "sched-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}
