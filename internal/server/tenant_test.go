package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"recordroute/internal/obs"
)

func submitAs(t *testing.T, ts *httptest.Server, tenant string, spec JobSpec) *http.Response {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestTenantQuota429WhileOthersRun is the tenant-QoS acceptance
// criterion: a tenant over its in-flight quota gets 429 (with a
// Retry-After), NOT the 503 that means the shared service is full —
// and another tenant's submission sails through at that same moment.
func TestTenantQuota429WhileOthersRun(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 8, TenantQuota: 1})
	release := make(chan struct{})
	var once sync.Once
	s.startHook = func(*Job) { <-release }
	defer once.Do(func() { close(release) })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// alpha's first job occupies its whole quota.
	resp := submitAs(t, ts, "alpha", smokeSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alpha #1: status %d", resp.StatusCode)
	}
	var first map[string]string
	json.NewDecoder(resp.Body).Decode(&first)
	resp.Body.Close()

	// alpha's second is over budget: 429, Retry-After set.
	resp = submitAs(t, ts, "alpha", smokeSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alpha #2: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()

	// beta is a different tenant: same instant, same queue, accepted.
	resp = submitAs(t, ts, "beta", smokeSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("beta: status %d, want 202 while alpha is throttled", resp.StatusCode)
	}
	var beta map[string]string
	json.NewDecoder(resp.Body).Decode(&beta)
	resp.Body.Close()

	if got := metricValue(t, ts, `rrstudyd_tenant_rejected_total{tenant="alpha"}`); got != "1" {
		t.Errorf(`rejected_total{tenant="alpha"} = %q, want 1`, got)
	}
	if got := metricValue(t, ts, `rrstudyd_tenant_rejected_total{tenant="beta"}`); got != "0" {
		t.Errorf(`rejected_total{tenant="beta"} = %q, want 0`, got)
	}

	// Quota slots release at finalize: once alpha's job finishes, alpha
	// may submit again.
	once.Do(func() { close(release) })
	if st := waitTerminal(t, ts, first["id"]); st.State != StateDone {
		t.Fatalf("alpha #1 settled as %+v", st)
	}
	if st := waitTerminal(t, ts, beta["id"]); st.State != StateDone {
		t.Fatalf("beta settled as %+v", st)
	}
	resp = submitAs(t, ts, "alpha", smokeSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alpha #3 after slot release: status %d", resp.StatusCode)
	}
	json.NewDecoder(resp.Body).Decode(&first)
	resp.Body.Close()
	waitTerminal(t, ts, first["id"])
}

// TestTenantTokenBucket: the rate limiter under a pinned obs clock —
// burst tokens run out to a 429 whose Retry-After reflects the refill
// rate, advancing the (virtual) wall clock grants a new token, and a
// refused global push refunds the token it charged.
func TestTenantTokenBucket(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	obs.SetNow(func() time.Time { return now })
	defer obs.SetNow(nil)

	s := newTestServer(t, Config{Workers: 1, QueueCap: 8, TenantRate: 1, TenantBurst: 2})
	release := make(chan struct{})
	s.startHook = func(*Job) { <-release }
	defer close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Burst of 2 accepted; the third is out of tokens.
	for i := 0; i < 2; i++ {
		resp := submitAs(t, ts, "alpha", smokeSpec())
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submit %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := submitAs(t, ts, "alpha", smokeSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want 1 (one token at 1/s)", ra)
	}
	resp.Body.Close()

	// One virtual second refills one token.
	now = now.Add(time.Second)
	resp = submitAs(t, ts, "alpha", smokeSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-refill submit: status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestTenantRefundOnQueueFull: when the tenant bucket admits but the
// shared queue refuses, the charged token is refunded — a 503 storm
// must not also drain the tenant's budget.
func TestTenantRefundOnQueueFull(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	obs.SetNow(func() time.Time { return now })
	defer obs.SetNow(nil)

	s := newTestServer(t, Config{Workers: 1, QueueCap: 1, TenantRate: 1, TenantBurst: 2})
	release := make(chan struct{})
	s.startHook = func(*Job) { <-release }
	defer close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two submissions: one runs (parked in the hook), one fills the queue.
	// Both tokens spent.
	for i := 0; i < 2; i++ {
		resp := submitAs(t, ts, "alpha", smokeSpec())
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Refill one token; the queue is still full, so this 503s — and must
	// give the token back.
	now = now.Add(time.Second)
	resp := submitAs(t, ts, "alpha", smokeSpec())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue-full submit: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	s.mu.Lock()
	tokens := s.tenants["alpha"].tokens
	s.mu.Unlock()
	if tokens != 1 {
		t.Errorf("tokens after refund = %v, want 1", tokens)
	}
}

// TestScheduleEpochsExemptFromBucket: a schedule pays one token at
// creation and its epochs are metered=false — a 3-epoch schedule under
// a burst-1 bucket completes even though three metered submissions
// never could.
func TestScheduleEpochsExemptFromBucket(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	obs.SetNow(func() time.Time { return now })
	defer obs.SetNow(nil)

	s := newTestServer(t, Config{Workers: 1, QueueCap: 8, TenantRate: 0.001, TenantBurst: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id, code := createSchedule(t, ts, "alpha", ScheduleSpec{Job: smokeSpec(), Epochs: 3})
	if code != http.StatusAccepted {
		t.Fatalf("create: status %d", code)
	}
	if st := waitSchedule(t, ts, id); st.State != SchedDone {
		t.Fatalf("schedule under empty bucket settled as %+v", st)
	}

	// The creation token is spent: a second schedule is refused 429.
	if _, code := createSchedule(t, ts, "alpha", ScheduleSpec{Job: smokeSpec(), Epochs: 1}); code != http.StatusTooManyRequests {
		t.Errorf("second create: status %d, want 429", code)
	}
}
