package server

import (
	"hash/fnv"
	"sync"
)

// dispatcher is the worker-pool queue with frozen-plane cache affinity:
// each job hashes its topology digest to a preferred worker and is
// queued there, so repeat epochs of a recurring schedule land on the
// worker whose goroutine already executed — and whose pop order keeps
// executing — jobs of the same plane. Workers drain their own queue
// first and steal from the longest other queue when idle — but only
// from queues whose owner is mid-execution: an idle owner is about to
// take its own job, and stealing it would turn every quiet-pool pop
// into a coin flip between workers. Affinity stays a placement
// preference, never a throughput ceiling: a saturated preferred
// worker's backlog is picked up by whoever is free.
//
// The total queued count across all per-worker queues is bounded by
// cap; push beyond it fails (the server's 503 backpressure). close
// wakes every worker; pop returns nil once closed and drained, which is
// the drain handshake the old channel close provided.
type dispatcher struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]*Job // FIFO per worker
	busy   []bool   // worker w is executing (its queue is steal-eligible)
	depth  int      // total queued across queues
	cap    int
	closed bool
}

func newDispatcher(workers, capacity int) *dispatcher {
	d := &dispatcher{queues: make([][]*Job, workers), busy: make([]bool, workers), cap: capacity}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// preferredWorker maps a topology digest to its affinity worker.
func (d *dispatcher) preferredWorker(digest string) int {
	h := fnv.New32a()
	h.Write([]byte(digest))
	return int(h.Sum32()) % len(d.queues)
}

// push enqueues job on its preferred worker's queue. It fails with
// errQueueFull at capacity and errDraining after close.
func (d *dispatcher) push(job *Job) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errDraining
	}
	if d.depth >= d.cap {
		return errQueueFull
	}
	w := job.preferred
	if w < 0 || w >= len(d.queues) {
		w = 0
	}
	d.queues[w] = append(d.queues[w], job)
	d.depth++
	d.cond.Broadcast()
	return nil
}

// pop returns the next job for worker w — its own queue first, then a
// steal from the longest other queue — blocking while everything is
// empty. nil means closed and fully drained: the worker exits.
func (d *dispatcher) pop(w int) (job *Job, stolen bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.busy[w] = false
	for {
		if len(d.queues[w]) > 0 {
			job, d.queues[w] = d.queues[w][0], d.queues[w][1:]
			d.depth--
			d.busy[w] = true
			return job, false
		}
		// Steal from the longest backlog whose owner is occupied, so the
		// most-oversubscribed plane's wait shrinks first. Queues of idle
		// owners are left alone: the push's broadcast woke them too, and
		// they will take their own job. A job can never strand behind an
		// exited worker — workers only exit (below) with an empty queue,
		// and a closed dispatcher refuses pushes.
		victim, longest := -1, 0
		for i, q := range d.queues {
			if !d.busy[i] {
				continue
			}
			if len(q) > longest {
				victim, longest = i, len(q)
			}
		}
		if victim >= 0 {
			job, d.queues[victim] = d.queues[victim][0], d.queues[victim][1:]
			d.depth--
			d.busy[w] = true
			return job, true
		}
		if d.closed {
			return nil, false
		}
		d.cond.Wait()
	}
}

// close stops the dispatcher: pending jobs still drain, new pushes are
// refused, and idle workers wake to exit.
func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.cond.Broadcast()
}

// queued returns the total number of jobs accepted but not yet popped.
func (d *dispatcher) queued() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.depth
}
