package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"recordroute/internal/netsim"
	"recordroute/internal/results"
)

// churnSpec is smokeSpec under the long-horizon churn weather: a
// deterministic fault plan whose per-epoch withdrawals make the
// schedule's epoch-over-epoch diff non-trivial.
func churnSpec() JobSpec {
	spec := smokeSpec()
	spec.Faults = &netsim.FaultConfig{Seed: 99, ChurnFrac: 0.5, ChurnProb: 0.35}
	return spec
}

func createSchedule(t *testing.T, ts *httptest.Server, tenant string, spec ScheduleSpec) (string, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/schedules", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", resp.StatusCode
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out["id"], resp.StatusCode
}

// waitSchedule polls until the schedule leaves the active state.
func waitSchedule(t *testing.T, ts *httptest.Server, id string) ScheduleStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		code, body := get(t, ts, "/schedules/"+id)
		if code != http.StatusOK {
			t.Fatalf("schedule poll: %d", code)
		}
		var st ScheduleStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != SchedActive {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("schedule never finished")
	return ScheduleStatus{}
}

// TestScheduleEpochsAndDiff is the tentpole's happy path: a 3-epoch
// recurring campaign under churn weather completes, its epoch index
// records one reachable set per epoch, the /diff table shows real
// epoch-over-epoch churn, every epoch's plane comes from the cache
// (one build total), and the plane-affinity hit rate on the repeat
// epochs meets the >= 90% acceptance bar.
func TestScheduleEpochsAndDiff(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id, code := createSchedule(t, ts, "", ScheduleSpec{Job: churnSpec(), Epochs: 3})
	if code != http.StatusAccepted {
		t.Fatalf("create schedule: status %d", code)
	}
	st := waitSchedule(t, ts, id)
	if st.State != SchedDone {
		t.Fatalf("schedule settled as %+v, want done", st)
	}
	if st.NextEpoch != 3 || st.Progress != 1 {
		t.Errorf("cursor %+v, want next_epoch 3 at progress 1", st)
	}

	sc := s.Schedule(id)
	recs := sc.Index.Epochs()
	if len(recs) != 3 {
		t.Fatalf("epoch index holds %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Epoch != i || len(r.Reachable) == 0 {
			t.Errorf("record %d: epoch %d with %d reachable, want epoch %d non-empty", i, r.Epoch, len(r.Reachable), i)
		}
	}
	// Churn must actually move reachability between epochs — a diff of
	// all-stable rows means the virtual-epoch clock never advanced.
	churned := false
	for _, d := range sc.Index.Diffs() {
		if len(d.Gained) > 0 || len(d.Lost) > 0 {
			churned = true
		}
	}
	if !churned {
		t.Error("no reachability churn across 3 epochs under a churn fault plan")
	}

	code, diff := get(t, ts, "/schedules/"+id+"/diff")
	if code != http.StatusOK {
		t.Fatalf("diff: status %d", code)
	}
	if lines := bytes.Count(diff, []byte("\n")); lines != 4 {
		t.Errorf("diff table has %d lines, want 4 (header + 3 epochs):\n%s", lines, diff)
	}

	// One plane for all epochs: same topology digest each time.
	if _, misses, _ := s.cache.Stats(); misses != 1 {
		t.Errorf("plane-cache misses = %d over 3 epochs, want 1", misses)
	}
	// Affinity acceptance: with every epoch hashing to the same worker
	// and no competing load, at least 90% of executions must land on the
	// preferred worker.
	hits, total := s.affinityHits.Load(), s.affinityHits.Load()+s.affinityMisses.Load()
	if total == 0 || float64(hits)/float64(total) < 0.9 {
		t.Errorf("affinity hit rate %d/%d, want >= 90%%", hits, total)
	}

	// The schedule listing includes it, terminal.
	code, body := get(t, ts, "/schedules")
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	var list []ScheduleStatus
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != id || list[0].State != SchedDone {
		t.Errorf("schedule list %+v, want the one done schedule", list)
	}
}

// TestScheduleShardInvariantDiff: the same 3-epoch schedule run at
// shard widths 1, 2, and 4 renders a byte-identical diff table — the
// determinism contract (DESIGN.md §6) extended to the virtual-epoch
// cadence.
func TestScheduleShardInvariantDiff(t *testing.T) {
	var diffs [][]byte
	for _, shards := range []int{1, 2, 4} {
		s := newTestServer(t, Config{Workers: 2, QueueCap: 8})
		ts := httptest.NewServer(s.Handler())
		spec := churnSpec()
		spec.Shards = shards
		id, code := createSchedule(t, ts, "", ScheduleSpec{Job: spec, Epochs: 3})
		if code != http.StatusAccepted {
			t.Fatalf("shards=%d: create status %d", shards, code)
		}
		if st := waitSchedule(t, ts, id); st.State != SchedDone {
			t.Fatalf("shards=%d: schedule settled as %+v", shards, st)
		}
		_, diff := get(t, ts, "/schedules/"+id+"/diff")
		diffs = append(diffs, diff)
		ts.Close()
		s.Drain()
	}
	for i := 1; i < len(diffs); i++ {
		if !bytes.Equal(diffs[0], diffs[i]) {
			t.Errorf("diff table differs between shard widths:\n--- shards=1 ---\n%s--- other ---\n%s", diffs[0], diffs[i])
		}
	}
}

// TestScheduleKillRestartResume is the schedule lifecycle chaos test:
// a daemon killed mid-epoch — simulated as the exact on-disk state a
// SIGKILL leaves (schedule checkpoint at the epoch-1 cursor, epoch-1
// journal torn mid-line, no later artifacts) — must, on restart over
// the same data dir, resume the interrupted epoch from its journal,
// run the remaining epochs, and render a diff table byte-identical to
// an uninterrupted run's.
func TestScheduleKillRestartResume(t *testing.T) {
	// Uninterrupted baseline in its own data dir.
	dirA := t.TempDir()
	s1 := newTestServer(t, Config{Workers: 1, QueueCap: 8, DataDir: dirA})
	ts1 := httptest.NewServer(s1.Handler())
	id, code := createSchedule(t, ts1, "", ScheduleSpec{Job: churnSpec(), Epochs: 3})
	if code != http.StatusAccepted {
		t.Fatalf("baseline create: status %d", code)
	}
	if st := waitSchedule(t, ts1, id); st.State != SchedDone {
		t.Fatalf("baseline schedule settled as %+v", st)
	}
	_, baseline := get(t, ts1, "/schedules/"+id+"/diff")
	ts1.Close()
	s1.Drain()

	// The victim run: complete it in dirB, then rewind the on-disk state
	// to what a kill during epoch 1 leaves behind.
	dirB := t.TempDir()
	s2 := newTestServer(t, Config{Workers: 1, QueueCap: 8, DataDir: dirB})
	ts2 := httptest.NewServer(s2.Handler())
	vid, _ := createSchedule(t, ts2, "", ScheduleSpec{Job: churnSpec(), Epochs: 3})
	if st := waitSchedule(t, ts2, vid); st.State != SchedDone {
		t.Fatalf("victim schedule settled as %+v", st)
	}
	vsc := s2.Schedule(vid)
	ts2.Close()
	s2.Drain()

	// Rewind the checkpoint: cursor back to epoch 1, index holding only
	// epoch 0 — the state persisted right after epoch 0 completed.
	idx := &results.EpochIndex{}
	idx.Add(0, vsc.Index.Epochs()[0].Reachable)
	rec := schedRecord{ID: vid, Tenant: "default", State: SchedActive, NextEpoch: 1,
		Spec: ScheduleSpec{Job: churnSpec(), Epochs: 3}, Index: idx}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirB, vid+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Tear epoch 1's journal mid-line after two batch records and remove
	// epoch 2's entirely.
	e1 := filepath.Join(dirB, fmt.Sprintf("%s-e1.jsonl", vid))
	jdata, err := os.ReadFile(e1)
	if err != nil {
		t.Fatal(err)
	}
	var wound bytes.Buffer
	batches := 0
	for _, l := range bytes.SplitAfter(jdata, []byte("\n")) {
		if bytes.Contains(l, []byte(`"t":"vp"`)) {
			if batches++; batches > 2 {
				wound.Write(l[:len(l)/3])
				break
			}
		}
		wound.Write(l)
	}
	if err := os.WriteFile(e1, wound.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dirB, fmt.Sprintf("%s-e2.jsonl", vid))); err != nil {
		t.Fatal(err)
	}

	// Third life: a fresh server over dirB must pick the schedule up at
	// epoch 1, resume its torn journal, and finish epoch 2.
	s3 := newTestServer(t, Config{Workers: 1, QueueCap: 8, DataDir: dirB})
	ts3 := httptest.NewServer(s3.Handler())
	defer ts3.Close()
	st := waitSchedule(t, ts3, vid)
	if st.State != SchedDone {
		t.Fatalf("resumed schedule settled as %+v", st)
	}
	_, resumed := get(t, ts3, "/schedules/"+vid+"/diff")
	if !bytes.Equal(resumed, baseline) {
		t.Errorf("post-restart diff differs from uninterrupted run:\n--- resumed ---\n%s--- baseline ---\n%s", resumed, baseline)
	}

	// A second restart over the now-done state must not refire anything.
	ts3.Close()
	s3.Drain()
	s4 := newTestServer(t, Config{Workers: 1, QueueCap: 8, DataDir: dirB})
	ts4 := httptest.NewServer(s4.Handler())
	defer ts4.Close()
	if st := waitSchedule(t, ts4, vid); st.State != SchedDone || st.NextEpoch != 3 {
		t.Errorf("restarted done schedule reads %+v, want done at epoch 3", st)
	}
}

// TestScheduleCancel: DELETE /schedules/{id} stops the cadence — the
// in-flight epoch job is canceled, no further epochs fire, and the
// terminal state survives both a second DELETE (409) and a restart.
func TestScheduleCancel(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 1, QueueCap: 8, DataDir: dir})
	release := make(chan struct{})
	s.startHook = func(*Job) { <-release }
	defer close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id, _ := createSchedule(t, ts, "", ScheduleSpec{Job: churnSpec(), Epochs: 5})

	// Wait until epoch 0's job is parked in the worker.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st ScheduleStatus
		_, body := get(t, ts, "/schedules/"+id)
		json.Unmarshal(body, &st)
		if st.CurrentJob != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("epoch 0 never started")
		}
		time.Sleep(time.Millisecond)
	}

	if code, _ := del(t, ts, "/schedules/"+id); code != http.StatusAccepted {
		t.Fatalf("cancel schedule: status %d", code)
	}
	st := waitSchedule(t, ts, id)
	if st.State != SchedCanceled {
		t.Fatalf("canceled schedule settled as %+v", st)
	}
	if st.NextEpoch != 0 {
		t.Errorf("canceled schedule advanced to epoch %d, want 0", st.NextEpoch)
	}
	if code, _ := del(t, ts, "/schedules/"+id); code != http.StatusConflict {
		t.Errorf("second cancel: status %d, want 409", code)
	}
	if code, _ := del(t, ts, "/schedules/nope"); code != http.StatusNotFound {
		t.Errorf("cancel unknown schedule: status %d, want 404", code)
	}
}

// TestScheduleValidation: malformed schedule specs are refused at
// creation, before anything persists or fires.
func TestScheduleValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []ScheduleSpec{
		{Job: smokeSpec(), Epochs: 0},                 // no epochs
		{Job: JobSpec{Experiment: "nope"}, Epochs: 3}, // unknown experiment
		{Job: func() JobSpec { j := smokeSpec(); j.Journal = "/tmp/x"; return j }(), Epochs: 3}, // journal is schedule-owned
		{Job: func() JobSpec { j := smokeSpec(); j.Scale = 999; return j }(), Epochs: 3},        // bad config
	}
	for i, spec := range cases {
		if _, code := createSchedule(t, ts, "", spec); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
	}
	if len(s.Schedules()) != 0 {
		t.Errorf("refused schedules were registered: %d", len(s.Schedules()))
	}
}
