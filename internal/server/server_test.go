package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"recordroute/internal/results"
	"recordroute/internal/study"
	"recordroute/internal/topology"
)

// smokeSpec is the small Table 1 campaign the service tests run — the
// same parameters as the study package's golden files (scale 0.25,
// rate 200, shuffle seed 7, default world seed), so the service render
// can be diffed against testdata/golden/table1_responsiveness.txt.
// Shards is pinned so batch-checkpoint totals — len(VPs) ping-RR
// batches plus smokeShards origin ranges — don't vary with the host's
// CPU count (renders are shard-invariant either way).
func smokeSpec() JobSpec {
	return JobSpec{Experiment: "table1", Scale: 0.25, Rate: 200, ShuffleSeed: 7, Shards: smokeShards}
}

// smokeShards is smokeSpec's pinned executor width: the origin's
// destination-sharded ping phase checkpoints and streams exactly this
// many range batches before the per-VP ping-RR batches.
const smokeShards = 2

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	return s
}

func submit(t *testing.T, ts *httptest.Server, spec JobSpec) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out["id"]
}

func waitDone(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job did not finish")
	return Status{}
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestConcurrentIdenticalJobsOneBuild is the frozen-plane acceptance
// criterion: two identical jobs submitted together perform exactly ONE
// topology build between them — the second either hits the cache or
// blocks on the first's in-flight build — and still produce identical,
// correct renders: both equal to the study package's golden Table 1.
func TestConcurrentIdenticalJobsOneBuild(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := topology.Builds()
	id1 := submit(t, ts, smokeSpec())
	id2 := submit(t, ts, smokeSpec())
	st1, st2 := waitDone(t, ts, id1), waitDone(t, ts, id2)
	if st1.State != StateDone || st2.State != StateDone {
		t.Fatalf("job states: %+v / %+v", st1, st2)
	}
	if delta := topology.Builds() - before; delta != 1 {
		t.Errorf("topology builds for two identical jobs = %d, want exactly 1", delta)
	}
	if !st1.CacheHit && !st2.CacheHit {
		t.Error("neither job observed the frozen-plane cache")
	}

	_, r1 := get(t, ts, "/jobs/"+id1+"/render")
	_, r2 := get(t, ts, "/jobs/"+id2+"/render")
	if !bytes.Equal(r1, r2) {
		t.Errorf("identical jobs rendered differently:\n--- %s ---\n%s--- %s ---\n%s", id1, r1, id2, r2)
	}
	golden, err := os.ReadFile(filepath.Join("..", "study", "testdata", "golden", "table1_responsiveness.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, golden) {
		t.Errorf("service render differs from the study golden:\n--- service ---\n%s--- golden ---\n%s", r1, golden)
	}
}

// TestStreamAndStatus: the JSONL stream carries every VP's batch with
// full per-probe fidelity, and status/progress reach done/total.
func TestStreamAndStatus(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submit(t, ts, smokeSpec())
	st := waitDone(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Total == 0 || st.Done != st.Total || st.Progress != 1 {
		t.Errorf("finished status = %+v, want done == total > 0", st)
	}

	code, body := get(t, ts, "/jobs/"+id+"/stream")
	if code != http.StatusOK {
		t.Fatalf("stream: status %d", code)
	}
	perVP, err := results.ReadJSONL(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("stream is not valid JSONL: %v", err)
	}
	// The stream carries st.Total lines, but the origin's smokeShards
	// range lines collapse into its single VP key — and the origin also
	// sends a ping-RR batch, so distinct VPs = st.Total - smokeShards.
	if len(perVP) != st.Total-smokeShards {
		t.Errorf("stream covers %d VPs, want %d", len(perVP), st.Total-smokeShards)
	}
	for vp, rs := range perVP {
		if len(rs) == 0 {
			t.Errorf("VP %s streamed no results", vp)
		}
	}

	if code, _ := get(t, ts, "/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", code)
	}
}

// TestResumeOverHTTP: a journal cut mid-campaign (the artifact a killed
// daemon leaves) resumed through a fresh job skips the archived batches
// and renders identically.
func TestResumeOverHTTP(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4, DataDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := smokeSpec()
	spec.Journal = filepath.Join(dir, "full.jsonl")
	id := submit(t, ts, spec)
	if st := waitDone(t, ts, id); st.State != StateDone {
		t.Fatalf("baseline job failed: %s", st.Error)
	}
	_, baseline := get(t, ts, "/jobs/"+id+"/render")

	// Wound the journal the way a kill does: cut after half the VP
	// batches, mid-line.
	data, err := os.ReadFile(spec.Journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	var out bytes.Buffer
	vps := 0
	for _, l := range lines {
		if bytes.Contains(l, []byte(`"t":"vp"`)) {
			vps++
			if vps > 3 {
				out.Write(l[:len(l)/2])
				break
			}
		}
		out.Write(l)
	}
	cutPath := filepath.Join(dir, "cut.jsonl")
	if err := os.WriteFile(cutPath, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	rspec := smokeSpec()
	rspec.Journal = cutPath
	rspec.Resume = true
	rid := submit(t, ts, rspec)
	st := waitDone(t, ts, rid)
	if st.State != StateDone {
		t.Fatalf("resumed job failed: %s", st.Error)
	}
	if job := s.Job(rid); job == nil || job.status().Done != st.Total {
		t.Errorf("resumed job progress %+v", st)
	}

	// The resumed stream carries only the freshly probed VPs...
	_, body := get(t, ts, "/jobs/"+rid+"/stream")
	perVP, err := results.ReadJSONL(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(perVP) != st.Total-3 {
		t.Errorf("resumed stream covers %d VPs, want %d fresh ones", len(perVP), st.Total-3)
	}
	// ...but the render is the complete campaign, identical to the
	// uninterrupted one.
	_, render := get(t, ts, "/jobs/"+rid+"/render")
	if !bytes.Equal(render, baseline) {
		t.Errorf("resumed render differs from uninterrupted:\n--- resumed ---\n%s--- baseline ---\n%s", render, baseline)
	}
}

// TestQueueBackpressure: with the one worker pinned and a one-slot
// queue, the third submission must be refused with 503 rather than
// queued without bound.
func TestQueueBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	release := make(chan struct{})
	var once sync.Once
	s.startHook = func(*Job) { <-release }
	defer once.Do(func() { close(release) })

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit(t, ts, smokeSpec()) // occupies the worker (pinned in startHook)
	waitForQueue := func(depth int) {
		deadline := time.Now().Add(5 * time.Second)
		for s.QueueDepth() != depth && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	waitForQueue(0)
	id2 := submit(t, ts, smokeSpec()) // fills the queue slot

	body, _ := json.Marshal(smokeSpec())
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit: status %d, want 503", resp.StatusCode)
	}

	once.Do(func() { close(release) })
	if st := waitDone(t, ts, id2); st.State != StateDone {
		t.Fatalf("queued job failed after release: %s", st.Error)
	}

	// /metrics exposes the service gauges the criteria name, plus the
	// plane-build latency histogram (at least one cache miss ran above,
	// so its _count must be non-zero).
	_, metrics := get(t, ts, "/metrics")
	for _, want := range []string{
		"rrstudyd_queue_depth",
		"rrstudyd_cache_hits_total",
		"rrstudyd_job_batches_done{job=\"job-1\"}",
		"rrstudyd_topology_builds_total",
		"rrstudyd_plane_build_seconds_bucket{le=\"+Inf\"}",
		"rrstudyd_plane_build_seconds_sum",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s:\n%s", want, metrics)
		}
	}
	for _, line := range strings.Split(string(metrics), "\n") {
		if v, ok := strings.CutPrefix(line, "rrstudyd_plane_build_seconds_count "); ok && v == "0" {
			t.Errorf("plane-build histogram observed no builds:\n%s", metrics)
		}
	}
}

// TestSubmitFloodKeepsMetricsConsistent is the regression for the
// queue-full rollback race: a flood of concurrent submissions against a
// tiny queue must never leave a ghost ID in the metrics order (which
// used to panic /metrics), and every accepted job must finish.
func TestSubmitFloodKeepsMetricsConsistent(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	release := make(chan struct{})
	s.startHook = func(*Job) { <-release }
	defer close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted []string
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job, err := s.Submit(smokeSpec())
			if err != nil {
				if err != errQueueFull {
					t.Errorf("submit: %v", err)
				}
				return
			}
			mu.Lock()
			accepted = append(accepted, job.ID)
			mu.Unlock()
		}()
	}
	wg.Wait()

	// Every ID in the metrics order must resolve to a live job.
	s.mu.Lock()
	for _, id := range s.order {
		if s.jobs[id] == nil {
			t.Errorf("ghost job ID %s in order", id)
		}
	}
	s.mu.Unlock()
	if code, _ := get(t, ts, "/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics during flood: status %d", code)
	}
	if len(accepted) == 0 {
		t.Fatal("no submissions accepted")
	}
}

// TestDuplicateJournalRefused: two jobs naming the same journal path
// must not run concurrently — the second is refused while the first is
// queued or running, and accepted again once it finishes.
func TestDuplicateJournalRefused(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4, DataDir: dir})
	release := make(chan struct{})
	var once sync.Once
	s.startHook = func(*Job) { <-release }
	defer once.Do(func() { close(release) })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := smokeSpec()
	spec.Journal = filepath.Join(dir, "shared.jsonl")
	id := submit(t, ts, spec)
	if _, err := s.Submit(spec); err == nil {
		t.Fatal("second job on an in-use journal was accepted")
	}

	once.Do(func() { close(release) })
	if st := waitDone(t, ts, id); st.State != StateDone {
		t.Fatalf("first job failed: %s", st.Error)
	}
	if _, err := s.Submit(spec); err != nil {
		t.Fatalf("journal not released after job finished: %v", err)
	}
}

// TestTerminalJobEviction: finished jobs beyond RetainJobs are evicted
// (freeing their buffers) oldest-first, while newer ones stay queryable.
func TestTerminalJobEviction(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 8, RetainJobs: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		id := submit(t, ts, smokeSpec())
		if st := waitDone(t, ts, id); st.State != StateDone {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[:2] {
		if code, _ := get(t, ts, "/jobs/"+id); code != http.StatusNotFound {
			t.Errorf("evicted job %s: status %d, want 404", id, code)
		}
	}
	for _, id := range ids[2:] {
		if code, _ := get(t, ts, "/jobs/"+id); code != http.StatusOK {
			t.Errorf("retained job %s: status %d, want 200", id, code)
		}
	}
}

// TestDrainRefusesAndFinishes: Drain lets accepted jobs finish and
// refuses new ones — the SIGTERM contract.
func TestDrainRefusesAndFinishes(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submit(t, ts, smokeSpec())
	s.Drain()
	if job := s.Job(id); job == nil || !job.terminal() {
		t.Fatal("Drain returned before the accepted job finished")
	}
	if _, err := s.Submit(smokeSpec()); err == nil {
		t.Fatal("submit accepted while draining")
	}
	body, _ := json.Marshal(smokeSpec())
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", resp.StatusCode)
	}
}

// TestSubmitValidation: bad specs are refused at the door with 400.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, spec := range []JobSpec{
		{Experiment: "fig9"},
		{Experiment: "table1", Scale: -2},
		{Experiment: "table1", Epoch: 1999},
	} {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %+v: status %d, want 400", spec, resp.StatusCode)
		}
	}
}

// TestServiceScaleProfileRefused pins the NewFromTopology contract the
// cache path depends on: a profile cannot resize an already-built
// world, so the study constructor must refuse it rather than silently
// probing the wrong topology.
func TestServiceScaleProfileRefused(t *testing.T) {
	topo, err := topology.Build(topology.DefaultConfig(topology.Epoch2016).Scale(0.15))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := study.NewFromTopology(topo, study.Options{Scale: "large"}); err == nil {
		t.Fatal("NewFromTopology accepted an unresolved scale profile")
	}
}
