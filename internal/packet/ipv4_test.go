package packet

import (
	"errors"
	"net/netip"
	"testing"
)

func TestIPv4RoundTripNoOptions(t *testing.T) {
	h := &IPv4{
		TOS:      0,
		ID:       0xbeef,
		Flags:    FlagDontFragment,
		TTL:      64,
		Protocol: ProtocolICMP,
		Src:      addr("192.0.2.1"),
		Dst:      addr("198.51.100.2"),
	}
	payload := []byte("hello, record route")
	wire, err := h.Marshal(payload)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if len(wire) != 20+len(payload) {
		t.Fatalf("wire length %d, want %d", len(wire), 20+len(payload))
	}
	var back IPv4
	got, err := back.Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if string(got) != string(payload) {
		t.Errorf("payload %q, want %q", got, payload)
	}
	if back.Src != h.Src || back.Dst != h.Dst {
		t.Errorf("addresses %v > %v", back.Src, back.Dst)
	}
	if back.ID != h.ID || back.TTL != h.TTL || back.Protocol != h.Protocol || back.Flags != h.Flags {
		t.Errorf("fields: %+v", back)
	}
	if len(back.Options) != 0 {
		t.Errorf("phantom options: %v", back.Options)
	}
}

func TestIPv4RoundTripWithRecordRoute(t *testing.T) {
	rr := NewRecordRoute(9)
	rr.Record(addr("10.0.0.1"))
	rr.Record(addr("10.0.0.2"))
	h := &IPv4{TTL: 32, Protocol: ProtocolICMP, Src: addr("192.0.2.1"), Dst: addr("198.51.100.2")}
	if err := h.SetRecordRoute(rr); err != nil {
		t.Fatalf("SetRecordRoute: %v", err)
	}
	wire, err := h.Marshal([]byte{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	// 20 fixed + 39 RR + 1 pad byte.
	if wantHdr := 60; int(wire[0]&0xf)*4 != wantHdr {
		t.Fatalf("IHL gives %d-byte header, want %d", int(wire[0]&0xf)*4, wantHdr)
	}
	var back IPv4
	if _, err := back.Decode(wire); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	var rrBack RecordRoute
	found, err := back.RecordRouteOption(&rrBack)
	if err != nil || !found {
		t.Fatalf("RecordRouteOption: found=%v err=%v", found, err)
	}
	if rrBack.RecordedCount() != 2 || rrBack.NumSlots() != 9 {
		t.Fatalf("rr: %d recorded of %d", rrBack.RecordedCount(), rrBack.NumSlots())
	}
	if rrBack.Recorded()[1] != addr("10.0.0.2") {
		t.Errorf("slot 1 = %v", rrBack.Recorded()[1])
	}
}

func TestIPv4SetRecordRouteReplacesInPlace(t *testing.T) {
	h := &IPv4{TTL: 1, Protocol: ProtocolICMP, Src: addr("10.0.0.1"), Dst: addr("10.0.0.2")}
	a := NewRecordRoute(3)
	if err := h.SetRecordRoute(a); err != nil {
		t.Fatal(err)
	}
	b := NewRecordRoute(3)
	b.Record(addr("10.1.0.1"))
	if err := h.SetRecordRoute(b); err != nil {
		t.Fatal(err)
	}
	if len(h.Options) != 1 {
		t.Fatalf("options length %d after replace, want 1", len(h.Options))
	}
	var rr RecordRoute
	if found, err := h.RecordRouteOption(&rr); !found || err != nil {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if rr.RecordedCount() != 1 {
		t.Errorf("recorded %d, want 1 (replacement not applied)", rr.RecordedCount())
	}
}

func TestIPv4DecodeRejectsCorruption(t *testing.T) {
	h := &IPv4{TTL: 64, Protocol: ProtocolUDP, Src: addr("10.0.0.1"), Dst: addr("10.0.0.2")}
	wire, err := h.Marshal([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		corrupt func([]byte) []byte
		want    error
	}{
		{"truncated header", func(b []byte) []byte { return b[:12] }, ErrTruncated},
		{"wrong version", func(b []byte) []byte { b[0] = 6<<4 | 5; return b }, ErrNotIPv4},
		{"IHL below 5", func(b []byte) []byte { b[0] = 4<<4 | 4; return b }, ErrBadHeader},
		{"flipped TTL breaks checksum", func(b []byte) []byte { b[8] ^= 0xff; return b }, ErrChecksum},
		{"total length past buffer", func(b []byte) []byte { return b[:22] }, ErrTruncated},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			buf := make([]byte, len(wire))
			copy(buf, wire)
			var back IPv4
			_, err := back.Decode(tc.corrupt(buf))
			if !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestIPv4DecodeTrimsToTotalLength(t *testing.T) {
	h := &IPv4{TTL: 64, Protocol: ProtocolICMP, Src: addr("10.0.0.1"), Dst: addr("10.0.0.2")}
	wire, err := h.Marshal([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Ethernet-style trailing padding must not leak into the payload.
	padded := append(wire, 0, 0, 0, 0, 0)
	var back IPv4
	payload, err := back.Decode(padded)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(payload) != 3 {
		t.Errorf("payload length %d, want 3", len(payload))
	}
}

func TestIPv4MarshalRejectsNonIPv4(t *testing.T) {
	h := &IPv4{TTL: 1, Protocol: ProtocolICMP, Src: netip.MustParseAddr("2001:db8::1"), Dst: addr("10.0.0.2")}
	if _, err := h.Marshal(nil); !errors.Is(err, ErrNotIPv4) {
		t.Errorf("err = %v, want ErrNotIPv4", err)
	}
}

func TestIPv4DecodeReusesOptionSlice(t *testing.T) {
	rr := NewRecordRoute(9)
	h := &IPv4{TTL: 9, Protocol: ProtocolICMP, Src: addr("10.0.0.1"), Dst: addr("10.0.0.2")}
	if err := h.SetRecordRoute(rr); err != nil {
		t.Fatal(err)
	}
	wire, err := h.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var back IPv4
	if _, err := back.Decode(wire); err != nil {
		t.Fatal(err)
	}
	first := &back.Options[0]
	if _, err := back.Decode(wire); err != nil {
		t.Fatal(err)
	}
	if &back.Options[0] != first {
		t.Error("second Decode reallocated the options slice")
	}
}

func TestIPv4FragmentFieldsRoundTrip(t *testing.T) {
	h := &IPv4{
		Flags:      FlagMoreFragments,
		FragOffset: 0x1234 & 0x1fff,
		TTL:        7,
		Protocol:   ProtocolUDP,
		Src:        addr("10.0.0.1"),
		Dst:        addr("10.0.0.2"),
	}
	wire, err := h.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var back IPv4
	if _, err := back.Decode(wire); err != nil {
		t.Fatal(err)
	}
	if back.Flags != FlagMoreFragments || back.FragOffset != h.FragOffset {
		t.Errorf("flags=%#x offset=%#x", back.Flags, back.FragOffset)
	}
}
