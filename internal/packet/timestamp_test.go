package packet

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestTimestampOnlyRoundTrip(t *testing.T) {
	ts := NewTimestamp(TSOnly, 4)
	if !ts.Record(netip.Addr{}, 1000) || !ts.Record(netip.Addr{}, 2000) {
		t.Fatal("Record failed")
	}
	opt, err := ts.Option()
	if err != nil {
		t.Fatal(err)
	}
	var back Timestamp
	if err := back.DecodeTimestamp(opt); err != nil {
		t.Fatal(err)
	}
	if back.Flag != TSOnly || back.RecordedCount() != 2 {
		t.Fatalf("flag=%v recorded=%d", back.Flag, back.RecordedCount())
	}
	if back.Recorded()[1].Millis != 2000 {
		t.Errorf("millis = %d", back.Recorded()[1].Millis)
	}
}

func TestTimestampAddrRoundTrip(t *testing.T) {
	ts := NewTimestamp(TSAddr, 3)
	ts.Record(addr("10.0.0.1"), 5)
	ts.Record(addr("10.0.0.2"), 9)
	opt, err := ts.Option()
	if err != nil {
		t.Fatal(err)
	}
	var back Timestamp
	if err := back.DecodeTimestamp(opt); err != nil {
		t.Fatal(err)
	}
	got := back.Recorded()
	if len(got) != 2 || got[0].Addr != addr("10.0.0.1") || got[1].Millis != 9 {
		t.Errorf("recorded = %+v", got)
	}
}

func TestTimestampOverflowCounter(t *testing.T) {
	ts := NewTimestamp(TSAddr, 1)
	if !ts.Record(addr("10.0.0.1"), 1) {
		t.Fatal("first record failed")
	}
	for i := 0; i < 20; i++ {
		if ts.Record(addr("10.0.0.2"), 2) {
			t.Fatal("record succeeded on full option")
		}
	}
	if ts.Overflow != 15 {
		t.Errorf("overflow = %d, want saturated 15", ts.Overflow)
	}
}

func TestTimestampPrespecifiedMatchesInOrder(t *testing.T) {
	a1, a2 := addr("10.0.0.1"), addr("10.0.0.2")
	ts := NewTimestampPrespecified([]netip.Addr{a1, a2})
	// Wrong hop first: not our slot, no movement.
	if ts.Record(a2, 100) {
		t.Error("out-of-order prespecified hop recorded")
	}
	if !ts.Record(a1, 100) || !ts.Record(a2, 200) {
		t.Fatal("in-order recording failed")
	}
	if ts.Recorded()[1].Millis != 200 {
		t.Errorf("entries = %+v", ts.Recorded())
	}
}

func TestTimestampInHeader(t *testing.T) {
	ts := NewTimestamp(TSAddr, 3)
	ts.Record(addr("10.0.0.1"), 77)
	h := &IPv4{TTL: 9, Protocol: ProtocolICMP, Src: addr("10.0.0.9"), Dst: addr("10.0.0.8")}
	if err := h.SetTimestamp(ts); err != nil {
		t.Fatal(err)
	}
	wire, err := h.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var back IPv4
	if _, err := back.Decode(wire); err != nil {
		t.Fatal(err)
	}
	var tsBack Timestamp
	found, err := back.TimestampOption(&tsBack)
	if !found || err != nil {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if tsBack.RecordedCount() != 1 || tsBack.Recorded()[0].Millis != 77 {
		t.Errorf("recorded = %+v", tsBack.Recorded())
	}
}

func TestTimestampRejectsMalformed(t *testing.T) {
	tests := []struct {
		name string
		opt  Option
	}{
		{"wrong type", Option{Type: OptNOP}},
		{"short data", Option{Type: OptTimestamp, Data: []byte{5}}},
		{"bad flag", Option{Type: OptTimestamp, Data: []byte{5, 2}}},
		{"ragged body", Option{Type: OptTimestamp, Data: []byte{5, 0, 1, 2, 3}}},
		{"bad pointer", Option{Type: OptTimestamp, Data: []byte{2, 0, 1, 2, 3, 4}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var ts Timestamp
			if err := ts.DecodeTimestamp(tc.opt); err == nil {
				t.Error("malformed option accepted")
			}
		})
	}
}

func TestTimestampCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized timestamp option did not panic")
		}
	}()
	NewTimestamp(TSAddr, 5) // 4 + 5*8 = 44 > 40
}

func TestQuickTimestampRoundTrip(t *testing.T) {
	f := func(nRaw, kRaw uint8, base uint32) bool {
		n := int(nRaw)%4 + 1 // TSAddr fits at most 4 slots
		k := int(kRaw) % (n + 1)
		ts := NewTimestamp(TSAddr, n)
		for i := 0; i < k; i++ {
			if !ts.Record(addr("10.0.0.1"), base+uint32(i)) {
				return false
			}
		}
		opt, err := ts.Option()
		if err != nil {
			return false
		}
		var back Timestamp
		if err := back.DecodeTimestamp(opt); err != nil {
			return false
		}
		if back.RecordedCount() != k {
			return false
		}
		for i, e := range back.Recorded() {
			if e.Millis != base+uint32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
