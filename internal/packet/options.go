package packet

import (
	"fmt"
	"net/netip"
)

// OptionType identifies an IPv4 option. The value is the full option-type
// octet (copied flag, class, and number), as it appears on the wire.
type OptionType uint8

// Option types used by the toolkit (RFC 791 §3.1).
const (
	// OptEndOfList terminates the option list. Single octet.
	OptEndOfList OptionType = 0
	// OptNOP is padding between options. Single octet.
	OptNOP OptionType = 1
	// OptRecordRoute asks each router to record its address. Copied flag
	// clear, class 0, number 7.
	OptRecordRoute OptionType = 7
	// OptTimestamp is the Internet Timestamp option (recognized during
	// parsing; the toolkit does not otherwise process it).
	OptTimestamp OptionType = 68
)

// Limits imposed by the IPv4 header format.
const (
	// MaxOptionsLen is the maximum total length of the options area:
	// IHL is 4 bits, so the header is at most 60 bytes, 20 of them fixed.
	MaxOptionsLen = 40
	// MaxRRSlots is the maximum number of address slots a Record Route
	// option can hold: 3 bytes of type/length/pointer leave 37, so at
	// most nine 4-byte slots. This is the paper's "nine hop limit".
	MaxRRSlots = 9
	// rrFixedLen is the number of fixed octets in a Record Route option
	// (type, length, pointer) preceding the address slots.
	rrFixedLen = 3
	// rrFirstPointer is the smallest legal pointer value: slots start at
	// octet 4 of the option, and the pointer is a 1-based octet offset.
	rrFirstPointer = 4
)

// String returns the conventional name of the option type.
func (t OptionType) String() string {
	switch t {
	case OptEndOfList:
		return "eol"
	case OptNOP:
		return "nop"
	case OptRecordRoute:
		return "rr"
	case OptTimestamp:
		return "ts"
	default:
		return fmt.Sprintf("opt(%d)", uint8(t))
	}
}

// Option is a raw IPv4 option TLV. Data excludes the type and length
// octets; for single-octet options (EOL, NOP) it is empty.
type Option struct {
	Type OptionType
	Data []byte
}

// wireLen returns the number of octets the option occupies on the wire.
func (o Option) wireLen() int {
	if o.Type == OptEndOfList || o.Type == OptNOP {
		return 1
	}
	return 2 + len(o.Data)
}

// appendOptions serializes opts and pads the result to a 4-octet boundary
// with end-of-list octets. It returns ErrOptionSpace if the padded area
// exceeds MaxOptionsLen.
func appendOptions(b []byte, opts []Option) ([]byte, error) {
	start := len(b)
	for _, o := range opts {
		switch o.Type {
		case OptEndOfList, OptNOP:
			b = append(b, byte(o.Type))
		default:
			olen := 2 + len(o.Data)
			if olen > 255 {
				return nil, fmt.Errorf("%w: option %v length %d", ErrBadHeader, o.Type, olen)
			}
			b = append(b, byte(o.Type), byte(olen))
			b = append(b, o.Data...)
		}
	}
	for (len(b)-start)%4 != 0 {
		b = append(b, byte(OptEndOfList))
	}
	if len(b)-start > MaxOptionsLen {
		return nil, ErrOptionSpace
	}
	return b, nil
}

// parseOptions parses the options area of an IPv4 header into dst,
// which is reset and reused to avoid allocation on hot paths. Option
// Data slices alias the input. Parsing stops at an end-of-list octet.
func parseOptions(dst []Option, area []byte) ([]Option, error) {
	dst = dst[:0]
	for i := 0; i < len(area); {
		t := OptionType(area[i])
		switch t {
		case OptEndOfList:
			return dst, nil
		case OptNOP:
			dst = append(dst, Option{Type: OptNOP})
			i++
		default:
			if i+1 >= len(area) {
				return dst, fmt.Errorf("%w: option %v missing length", ErrTruncated, t)
			}
			olen := int(area[i+1])
			if olen < 2 || i+olen > len(area) {
				return dst, fmt.Errorf("%w: option %v length %d", ErrBadHeader, t, olen)
			}
			dst = append(dst, Option{Type: t, Data: area[i+2 : i+olen]})
			i += olen
		}
	}
	return dst, nil
}

// RecordRoute is a decoded Record Route option. Slots holds every address
// slot the sender allocated; recorded slots come first, and the Pointer
// field determines how many have been recorded. Unrecorded slots retain
// whatever the sender placed there (conventionally 0.0.0.0).
type RecordRoute struct {
	// Pointer is the raw pointer octet: a 1-based offset from the start
	// of the option to the next free slot. Its minimum legal value is 4;
	// when it exceeds the option length the option is full.
	Pointer uint8
	// Slots are the address slots, in wire order.
	Slots []netip.Addr
}

// NewRecordRoute returns a Record Route option with n empty slots and the
// pointer at the first slot. It panics if n is not in [1, MaxRRSlots];
// the slot count is a programmer-chosen constant, never wire input.
func NewRecordRoute(n int) *RecordRoute {
	if n < 1 || n > MaxRRSlots {
		panic(fmt.Sprintf("packet: NewRecordRoute slot count %d out of range", n))
	}
	rr := &RecordRoute{Pointer: rrFirstPointer, Slots: make([]netip.Addr, n)}
	zero := netip.AddrFrom4([4]byte{})
	for i := range rr.Slots {
		rr.Slots[i] = zero
	}
	return rr
}

// NumSlots returns the total number of address slots.
func (r *RecordRoute) NumSlots() int { return len(r.Slots) }

// wireLen returns the option length octet value: fixed bytes plus slots.
func (r *RecordRoute) wireLen() int { return rrFixedLen + 4*len(r.Slots) }

// RecordedCount returns how many slots have been recorded, derived from
// the pointer. A corrupt pointer below the minimum yields zero.
func (r *RecordRoute) RecordedCount() int {
	if int(r.Pointer) <= rrFirstPointer-1 {
		return 0
	}
	n := (int(r.Pointer) - rrFirstPointer) / 4
	if n > len(r.Slots) {
		n = len(r.Slots)
	}
	return n
}

// Recorded returns the recorded addresses in the order they were stamped.
// The returned slice aliases Slots.
func (r *RecordRoute) Recorded() []netip.Addr { return r.Slots[:r.RecordedCount()] }

// Remaining returns the number of free slots.
func (r *RecordRoute) Remaining() int { return len(r.Slots) - r.RecordedCount() }

// Full reports whether no free slots remain, i.e. the pointer exceeds the
// option length — the test RFC 791 prescribes for forwarding routers.
func (r *RecordRoute) Full() bool { return int(r.Pointer) > r.wireLen() }

// Record stamps addr into the next free slot and advances the pointer,
// returning false (and leaving the option unchanged) if the option is
// full or addr is not IPv4. This is the router-side stamping operation.
func (r *RecordRoute) Record(addr netip.Addr) bool {
	if r.Full() {
		return false
	}
	idx := r.RecordedCount()
	if idx >= len(r.Slots) {
		return false
	}
	addr = addr.Unmap()
	if !addr.Is4() {
		return false
	}
	r.Slots[idx] = addr
	r.Pointer += 4
	return true
}

// Contains reports whether addr appears among the recorded slots.
func (r *RecordRoute) Contains(addr netip.Addr) bool {
	addr = addr.Unmap()
	for _, a := range r.Recorded() {
		if a == addr {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the option.
func (r *RecordRoute) Clone() *RecordRoute {
	c := &RecordRoute{Pointer: r.Pointer, Slots: make([]netip.Addr, len(r.Slots))}
	copy(c.Slots, r.Slots)
	return c
}

// Option serializes the Record Route into a raw Option TLV. A zero-slot
// option (length 3, permanently full) is wire-legal and accepted.
func (r *RecordRoute) Option() (Option, error) {
	if len(r.Slots) > MaxRRSlots {
		return Option{}, fmt.Errorf("%w: record route with %d slots", ErrBadHeader, len(r.Slots))
	}
	data := make([]byte, 1+4*len(r.Slots))
	data[0] = r.Pointer
	for i, a := range r.Slots {
		b, ok := addr4(a)
		if !ok {
			return Option{}, fmt.Errorf("%w: slot %d is %v", ErrNotIPv4, i, a)
		}
		copy(data[1+4*i:], b[:])
	}
	return Option{Type: OptRecordRoute, Data: data}, nil
}

// DecodeRecordRoute parses a raw Option into the receiver, reusing the
// Slots slice when its capacity allows. It rejects options whose type is
// not Record Route or whose data is not pointer + whole 4-byte slots.
func (r *RecordRoute) DecodeRecordRoute(o Option) error {
	if o.Type != OptRecordRoute {
		return fmt.Errorf("%w: option type %v is not record route", ErrBadHeader, o.Type)
	}
	if len(o.Data) < 1 || (len(o.Data)-1)%4 != 0 {
		return fmt.Errorf("%w: record route data length %d", ErrBadHeader, len(o.Data))
	}
	n := (len(o.Data) - 1) / 4
	if n > MaxRRSlots {
		return fmt.Errorf("%w: record route with %d slots", ErrBadHeader, n)
	}
	r.Pointer = o.Data[0]
	if cap(r.Slots) >= n {
		r.Slots = r.Slots[:n]
	} else {
		r.Slots = make([]netip.Addr, n)
	}
	for i := 0; i < n; i++ {
		var b [4]byte
		copy(b[:], o.Data[1+4*i:])
		r.Slots[i] = netip.AddrFrom4(b)
	}
	// A pointer below the minimum or not slot-aligned is corrupt.
	if r.Pointer < rrFirstPointer || (r.Pointer-rrFirstPointer)%4 != 0 {
		return fmt.Errorf("%w: record route pointer %d", ErrBadHeader, r.Pointer)
	}
	return nil
}

// FindRecordRoute locates the first Record Route option in opts and
// decodes it into r, returning false if none is present.
func (r *RecordRoute) FindRecordRoute(opts []Option) (bool, error) {
	for _, o := range opts {
		if o.Type == OptRecordRoute {
			if err := r.DecodeRecordRoute(o); err != nil {
				return true, err
			}
			return true, nil
		}
	}
	return false, nil
}
