package packet

import "fmt"

// Parsed is a reusable full-packet decoder in the DecodingLayerParser
// style: one Parsed per goroutine decodes any number of packets with no
// per-packet allocation. After Decode, IP is always valid; exactly one of
// HasICMP or HasUDP is set when the protocol is known, otherwise the raw
// payload is available in Payload.
type Parsed struct {
	IP      IPv4
	ICMP    ICMP
	UDP     UDP
	HasICMP bool
	HasUDP  bool
	// Payload is the IP payload for protocols the parser does not decode.
	Payload []byte
}

// Decode parses a full IPv4 datagram. Decoded fields alias data.
func (p *Parsed) Decode(data []byte) error {
	p.HasICMP = false
	p.HasUDP = false
	p.Payload = nil
	body, err := p.IP.Decode(data)
	if err != nil {
		return err
	}
	switch p.IP.Protocol {
	case ProtocolICMP:
		if err := p.ICMP.Decode(body); err != nil {
			return fmt.Errorf("in %v: %w", &p.IP, err)
		}
		p.HasICMP = true
	case ProtocolUDP:
		if err := p.UDP.Decode(body, p.IP.Src, p.IP.Dst); err != nil {
			return fmt.Errorf("in %v: %w", &p.IP, err)
		}
		p.HasUDP = true
	default:
		p.Payload = body
	}
	return nil
}
