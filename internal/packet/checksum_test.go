package packet

import (
	"testing"
	"testing/quick"
)

func TestChecksumKnownVectors(t *testing.T) {
	// RFC 1071 worked example: bytes 00 01 f2 03 f4 f5 f6 f7 sum to
	// ddf2 before complement, so the checksum is ^0xddf2 = 0x220d.
	tests := []struct {
		name string
		data []byte
		want uint16
	}{
		{"rfc1071 example", []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}, 0x220d},
		{"empty", nil, 0xffff},
		{"single zero byte", []byte{0x00}, 0xffff},
		{"single byte pads right", []byte{0xab}, ^uint16(0xab00)},
		{"all ones word", []byte{0xff, 0xff}, 0x0000},
		{"carry folds", []byte{0xff, 0xff, 0x00, 0x01}, ^uint16(0x0001)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Checksum(tc.data); got != tc.want {
				t.Errorf("Checksum(% x) = %#04x, want %#04x", tc.data, got, tc.want)
			}
		})
	}
}

func TestChecksumVerifiesToZero(t *testing.T) {
	// Inserting the computed checksum into a packet must make the whole
	// buffer sum to zero — the receiver-side verification invariant.
	check := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		buf := make([]byte, len(data))
		copy(buf, data)
		buf[0], buf[1] = 0, 0
		cs := Checksum(buf)
		buf[0], buf[1] = byte(cs>>8), byte(cs)
		return Checksum(buf) == 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumOddEvenSplitInvariance(t *testing.T) {
	// Summing a buffer in one pass or as two even-aligned chunks must
	// agree: sumWords is fold-free so it is associative over even splits.
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	whole := foldChecksum(sumWords(0, data))
	split := foldChecksum(sumWords(sumWords(0, data[:32]), data[32:]))
	if whole != split {
		t.Errorf("split sum %#04x != whole sum %#04x", split, whole)
	}
}
