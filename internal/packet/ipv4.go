package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPv4 header flag bits (the three-bit Flags field, here kept in the low
// bits of a byte).
const (
	// FlagMoreFragments (MF) marks all fragments but the last.
	FlagMoreFragments uint8 = 1 << 0
	// FlagDontFragment (DF) forbids fragmentation.
	FlagDontFragment uint8 = 1 << 1
)

// ipv4FixedLen is the length of an IPv4 header without options.
const ipv4FixedLen = 20

// MaxIPv4HeaderLen is the largest possible IPv4 header (IHL = 15).
const MaxIPv4HeaderLen = ipv4FixedLen + MaxOptionsLen

// IPv4 is a decoded IPv4 header. TotalLength, IHL, and Checksum are
// computed on encode; their struct values reflect the last decode.
type IPv4 struct {
	TOS        uint8
	ID         uint16
	Flags      uint8 // low three bits: reserved, DF, MF
	FragOffset uint16
	TTL        uint8
	Protocol   Protocol
	Src, Dst   netip.Addr
	Options    []Option

	// TotalLength is the datagram length from the last decoded header;
	// encoders derive it from the payload instead.
	TotalLength uint16
	// Checksum is the header checksum from the last decoded header.
	Checksum uint16
}

// HeaderLen returns the encoded header length in bytes: 20 plus the
// padded options area.
func (h *IPv4) HeaderLen() int {
	optLen := 0
	for _, o := range h.Options {
		optLen += o.wireLen()
	}
	optLen = (optLen + 3) &^ 3
	return ipv4FixedLen + optLen
}

// AppendTo encodes the header followed by payload onto b, computing IHL,
// TotalLength, and the header checksum. It returns the extended buffer.
func (h *IPv4) AppendTo(b []byte, payload []byte) ([]byte, error) {
	src, ok := addr4(h.Src)
	if !ok {
		return nil, fmt.Errorf("%w: source %v", ErrNotIPv4, h.Src)
	}
	dst, ok := addr4(h.Dst)
	if !ok {
		return nil, fmt.Errorf("%w: destination %v", ErrNotIPv4, h.Dst)
	}
	start := len(b)
	b = append(b,
		0, // version+IHL, patched below
		h.TOS,
		0, 0, // total length, patched below
	)
	b = binary.BigEndian.AppendUint16(b, h.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(h.Flags&0x7)<<13|h.FragOffset&0x1fff)
	b = append(b, h.TTL, byte(h.Protocol), 0, 0) // checksum patched below
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	var err error
	b, err = appendOptions(b, h.Options)
	if err != nil {
		return nil, err
	}
	hdrLen := len(b) - start
	if hdrLen%4 != 0 || hdrLen > MaxIPv4HeaderLen {
		return nil, fmt.Errorf("%w: header length %d", ErrBadHeader, hdrLen)
	}
	total := hdrLen + len(payload)
	if total > 0xffff {
		return nil, fmt.Errorf("%w: total length %d", ErrBadHeader, total)
	}
	b[start] = 4<<4 | byte(hdrLen/4)
	binary.BigEndian.PutUint16(b[start+2:], uint16(total))
	cs := Checksum(b[start : start+hdrLen])
	binary.BigEndian.PutUint16(b[start+10:], cs)
	return append(b, payload...), nil
}

// Marshal encodes the header and payload into a fresh buffer.
func (h *IPv4) Marshal(payload []byte) ([]byte, error) {
	return h.AppendTo(make([]byte, 0, h.HeaderLen()+len(payload)), payload)
}

// Decode parses an IPv4 datagram into the receiver and returns the payload
// (the bytes after the header, trimmed to TotalLength). The receiver's
// Options slice is reused when capacity allows; option data aliases the
// input. The header checksum is verified.
func (h *IPv4) Decode(data []byte) (payload []byte, err error) {
	if len(data) < ipv4FixedLen {
		return nil, fmt.Errorf("%w: %d bytes of IPv4 header", ErrTruncated, len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return nil, fmt.Errorf("%w: version %d", ErrNotIPv4, v)
	}
	hdrLen := int(data[0]&0xf) * 4
	if hdrLen < ipv4FixedLen {
		return nil, fmt.Errorf("%w: IHL %d", ErrBadHeader, hdrLen/4)
	}
	if len(data) < hdrLen {
		return nil, fmt.Errorf("%w: header claims %d bytes, have %d", ErrTruncated, hdrLen, len(data))
	}
	if Checksum(data[:hdrLen]) != 0 {
		return nil, fmt.Errorf("%w: IPv4 header", ErrChecksum)
	}
	h.TOS = data[1]
	h.TotalLength = binary.BigEndian.Uint16(data[2:])
	h.ID = binary.BigEndian.Uint16(data[4:])
	ff := binary.BigEndian.Uint16(data[6:])
	h.Flags = uint8(ff >> 13)
	h.FragOffset = ff & 0x1fff
	h.TTL = data[8]
	h.Protocol = Protocol(data[9])
	h.Checksum = binary.BigEndian.Uint16(data[10:])
	h.Src = netip.AddrFrom4([4]byte(data[12:16]))
	h.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	if hdrLen > ipv4FixedLen {
		h.Options, err = parseOptions(h.Options[:0], data[ipv4FixedLen:hdrLen])
		if err != nil {
			return nil, err
		}
	} else {
		h.Options = h.Options[:0]
	}
	total := int(h.TotalLength)
	if total < hdrLen {
		return nil, fmt.Errorf("%w: total length %d < header length %d", ErrBadHeader, total, hdrLen)
	}
	if total > len(data) {
		return nil, fmt.Errorf("%w: total length %d, have %d", ErrTruncated, total, len(data))
	}
	return data[hdrLen:total], nil
}

// DecodeHeaderOnly parses and verifies just the IPv4 header, returning
// whatever bytes follow it without checking them against TotalLength.
// ICMP error messages quote a truncated copy of the offending datagram,
// so decoding a quote must tolerate a short buffer.
func (h *IPv4) DecodeHeaderOnly(data []byte) (rest []byte, err error) {
	if len(data) < ipv4FixedLen {
		return nil, fmt.Errorf("%w: %d bytes of IPv4 header", ErrTruncated, len(data))
	}
	hdrLen := int(data[0]&0xf) * 4
	if len(data) < hdrLen {
		return nil, fmt.Errorf("%w: header claims %d bytes, have %d", ErrTruncated, hdrLen, len(data))
	}
	// Temporarily zero-extend the view so Decode's TotalLength check
	// cannot fail, then restore the true remainder.
	saveTotal := binary.BigEndian.Uint16(data[2:])
	if int(saveTotal) > len(data) {
		// Clone so we can patch TotalLength (and re-checksum) without
		// touching the caller's buffer.
		patched := make([]byte, len(data))
		copy(patched, data)
		binary.BigEndian.PutUint16(patched[2:], uint16(len(data)))
		binary.BigEndian.PutUint16(patched[10:], 0)
		binary.BigEndian.PutUint16(patched[10:], Checksum(patched[:hdrLen]))
		rest, err = h.Decode(patched)
		if err != nil {
			return nil, err
		}
		h.TotalLength = saveTotal // expose the original claimed length
		h.Checksum = binary.BigEndian.Uint16(data[10:])
		return rest, nil
	}
	return h.Decode(data)
}

// RecordRouteOption finds the header's Record Route option, if any, and
// decodes it into rr. It reports whether the option was present.
func (h *IPv4) RecordRouteOption(rr *RecordRoute) (bool, error) {
	return rr.FindRecordRoute(h.Options)
}

// SetRecordRoute replaces any existing Record Route option in the header
// with the serialization of rr (or appends one if absent).
func (h *IPv4) SetRecordRoute(rr *RecordRoute) error {
	opt, err := rr.Option()
	if err != nil {
		return err
	}
	for i := range h.Options {
		if h.Options[i].Type == OptRecordRoute {
			h.Options[i] = opt
			return nil
		}
	}
	h.Options = append(h.Options, opt)
	return nil
}

// String renders a compact human-readable summary for logs and tests.
func (h *IPv4) String() string {
	return fmt.Sprintf("IPv4 %v > %v ttl=%d proto=%v id=%d opts=%d",
		h.Src, h.Dst, h.TTL, h.Protocol, h.ID, len(h.Options))
}
