package packet

import (
	"errors"
	"net/netip"
	"testing"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestNewRecordRouteEmpty(t *testing.T) {
	rr := NewRecordRoute(9)
	if got := rr.NumSlots(); got != 9 {
		t.Fatalf("NumSlots = %d, want 9", got)
	}
	if got := rr.RecordedCount(); got != 0 {
		t.Errorf("RecordedCount = %d, want 0", got)
	}
	if rr.Full() {
		t.Error("fresh option reports Full")
	}
	if got := rr.Remaining(); got != 9 {
		t.Errorf("Remaining = %d, want 9", got)
	}
	if rr.Pointer != 4 {
		t.Errorf("Pointer = %d, want 4", rr.Pointer)
	}
}

func TestNewRecordRoutePanicsOutOfRange(t *testing.T) {
	for _, n := range []int{0, -1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRecordRoute(%d) did not panic", n)
				}
			}()
			NewRecordRoute(n)
		}()
	}
}

func TestRecordRouteStampingSequence(t *testing.T) {
	rr := NewRecordRoute(3)
	hops := []netip.Addr{addr("10.0.0.1"), addr("10.0.0.2"), addr("10.0.0.3")}
	for i, h := range hops {
		if !rr.Record(h) {
			t.Fatalf("Record(%v) at slot %d returned false", h, i)
		}
		if got := rr.RecordedCount(); got != i+1 {
			t.Fatalf("after %d stamps RecordedCount = %d", i+1, got)
		}
	}
	if !rr.Full() {
		t.Error("option with all slots stamped is not Full")
	}
	if rr.Record(addr("10.0.0.4")) {
		t.Error("Record succeeded on a full option")
	}
	got := rr.Recorded()
	for i := range hops {
		if got[i] != hops[i] {
			t.Errorf("Recorded()[%d] = %v, want %v", i, got[i], hops[i])
		}
	}
	// The final pointer must exceed the option length: 3 + 4*3 = 15, so 16.
	if rr.Pointer != 16 {
		t.Errorf("full pointer = %d, want 16", rr.Pointer)
	}
}

func TestRecordRouteNineHopLimit(t *testing.T) {
	// The paper's central constraint: at most nine addresses fit.
	rr := NewRecordRoute(MaxRRSlots)
	n := 0
	for rr.Record(addr("192.0.2.1")) {
		n++
		if n > MaxRRSlots {
			t.Fatal("recorded more than MaxRRSlots addresses")
		}
	}
	if n != 9 {
		t.Errorf("recorded %d addresses, want 9", n)
	}
}

func TestRecordRouteRejectsNonIPv4(t *testing.T) {
	rr := NewRecordRoute(2)
	if rr.Record(netip.MustParseAddr("2001:db8::1")) {
		t.Error("Record accepted an IPv6 address")
	}
	if got := rr.RecordedCount(); got != 0 {
		t.Errorf("failed Record advanced the pointer: count %d", got)
	}
}

func TestRecordRouteContains(t *testing.T) {
	rr := NewRecordRoute(4)
	rr.Record(addr("10.1.1.1"))
	rr.Record(addr("10.2.2.2"))
	if !rr.Contains(addr("10.2.2.2")) {
		t.Error("Contains missed a recorded address")
	}
	if rr.Contains(addr("0.0.0.0")) {
		t.Error("Contains matched an unrecorded (zero) slot")
	}
}

func TestRecordRouteOptionRoundTrip(t *testing.T) {
	rr := NewRecordRoute(5)
	rr.Record(addr("198.51.100.7"))
	rr.Record(addr("203.0.113.9"))
	opt, err := rr.Option()
	if err != nil {
		t.Fatalf("Option: %v", err)
	}
	if opt.Type != OptRecordRoute {
		t.Fatalf("option type %v", opt.Type)
	}
	if len(opt.Data) != 1+4*5 {
		t.Fatalf("option data length %d, want 21", len(opt.Data))
	}
	var back RecordRoute
	if err := back.DecodeRecordRoute(opt); err != nil {
		t.Fatalf("DecodeRecordRoute: %v", err)
	}
	if back.Pointer != rr.Pointer {
		t.Errorf("pointer %d != %d", back.Pointer, rr.Pointer)
	}
	if back.RecordedCount() != 2 {
		t.Fatalf("recorded count %d, want 2", back.RecordedCount())
	}
	if back.Recorded()[0] != addr("198.51.100.7") || back.Recorded()[1] != addr("203.0.113.9") {
		t.Errorf("recorded = %v", back.Recorded())
	}
}

func TestDecodeRecordRouteRejectsMalformed(t *testing.T) {
	tests := []struct {
		name string
		opt  Option
	}{
		{"wrong type", Option{Type: OptNOP}},
		{"empty data", Option{Type: OptRecordRoute, Data: nil}},
		{"ragged slots", Option{Type: OptRecordRoute, Data: []byte{4, 1, 2, 3}}},
		{"pointer too small", Option{Type: OptRecordRoute, Data: []byte{2, 0, 0, 0, 0}}},
		{"pointer misaligned", Option{Type: OptRecordRoute, Data: []byte{5, 0, 0, 0, 0}}},
		{"too many slots", Option{Type: OptRecordRoute, Data: make([]byte, 1+4*10)}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var rr RecordRoute
			if tc.name == "too many slots" {
				tc.opt.Data[0] = 4
			}
			if err := rr.DecodeRecordRoute(tc.opt); err == nil {
				t.Error("DecodeRecordRoute accepted malformed option")
			}
		})
	}
}

func TestParseOptionsWalk(t *testing.T) {
	// NOP, RR(1 slot), EOL, then trailing garbage that must be ignored.
	area := []byte{
		byte(OptNOP),
		byte(OptRecordRoute), 7, 4, 0, 0, 0, 0,
		byte(OptEndOfList),
		0xde, 0xad,
	}
	opts, err := parseOptions(nil, area)
	if err != nil {
		t.Fatalf("parseOptions: %v", err)
	}
	if len(opts) != 2 {
		t.Fatalf("parsed %d options, want 2 (EOL stops the walk)", len(opts))
	}
	if opts[0].Type != OptNOP || opts[1].Type != OptRecordRoute {
		t.Errorf("types = %v, %v", opts[0].Type, opts[1].Type)
	}
	if len(opts[1].Data) != 5 {
		t.Errorf("rr data length %d, want 5", len(opts[1].Data))
	}
}

func TestParseOptionsErrors(t *testing.T) {
	tests := []struct {
		name string
		area []byte
		want error
	}{
		{"missing length octet", []byte{byte(OptRecordRoute)}, ErrTruncated},
		{"length runs past area", []byte{byte(OptRecordRoute), 40, 4}, ErrBadHeader},
		{"length below minimum", []byte{byte(OptRecordRoute), 1}, ErrBadHeader},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseOptions(nil, tc.area); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestAppendOptionsPadsToWordBoundary(t *testing.T) {
	rr := NewRecordRoute(9)
	opt, err := rr.Option()
	if err != nil {
		t.Fatal(err)
	}
	// A 9-slot RR is 39 bytes; padding must bring the area to 40.
	area, err := appendOptions(nil, []Option{opt})
	if err != nil {
		t.Fatalf("appendOptions: %v", err)
	}
	if len(area) != 40 {
		t.Errorf("padded area = %d bytes, want 40", len(area))
	}
	if area[39] != byte(OptEndOfList) {
		t.Errorf("padding byte = %d, want EOL", area[39])
	}
}

func TestAppendOptionsOverflow(t *testing.T) {
	big := Option{Type: OptTimestamp, Data: make([]byte, 39)}
	if _, err := appendOptions(nil, []Option{big}); !errors.Is(err, ErrOptionSpace) {
		t.Errorf("err = %v, want ErrOptionSpace", err)
	}
}

func TestRecordRouteClone(t *testing.T) {
	rr := NewRecordRoute(3)
	rr.Record(addr("10.0.0.1"))
	c := rr.Clone()
	c.Record(addr("10.0.0.2"))
	if rr.RecordedCount() != 1 {
		t.Error("mutating clone affected original")
	}
	if c.RecordedCount() != 2 {
		t.Error("clone did not accept a stamp")
	}
}

func TestRecordRoutePartialFillReverseSlots(t *testing.T) {
	// The reverse-traceroute use: a ping-RR that reaches the destination
	// with empty slots has those slots filled on the reverse path. Model:
	// forward path stamps 4, destination + reverse path stamp more.
	rr := NewRecordRoute(9)
	for i := 0; i < 4; i++ {
		rr.Record(addr("10.0.0.1"))
	}
	if rr.Remaining() != 5 {
		t.Fatalf("Remaining = %d, want 5", rr.Remaining())
	}
	rr.Record(addr("192.0.2.99")) // destination stamps itself
	for i := 0; i < 4; i++ {
		if !rr.Record(addr("10.9.9.9")) {
			t.Fatalf("reverse stamp %d failed", i)
		}
	}
	if !rr.Full() {
		t.Error("9 stamps should fill the option")
	}
	if !rr.Contains(addr("192.0.2.99")) {
		t.Error("destination address missing from slots")
	}
}
