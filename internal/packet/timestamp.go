package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// TSFlag selects the Internet Timestamp option's mode (RFC 791 §3.1).
type TSFlag uint8

const (
	// TSOnly records 32-bit timestamps only.
	TSOnly TSFlag = 0
	// TSAddr records (address, timestamp) pairs.
	TSAddr TSFlag = 1
	// TSPrespecified records timestamps only at sender-specified
	// addresses.
	TSPrespecified TSFlag = 3
)

// String names the flag.
func (f TSFlag) String() string {
	switch f {
	case TSOnly:
		return "ts-only"
	case TSAddr:
		return "ts-addr"
	case TSPrespecified:
		return "ts-prespecified"
	default:
		return fmt.Sprintf("ts-flag(%d)", uint8(f))
	}
}

// tsFixedLen covers type, length, pointer, and overflow/flag octets.
const tsFixedLen = 4

// TSEntry is one recorded (address, timestamp) pair; Addr is invalid in
// TSOnly mode.
type TSEntry struct {
	Addr netip.Addr
	// Millis is milliseconds since midnight UT per RFC 791; the
	// simulator uses virtual-clock milliseconds.
	Millis uint32
}

// Timestamp is a decoded Internet Timestamp option.
//
// Like RecordRoute, the struct carries the full slot area: Entries
// holds every slot in wire order, with the recorded prefix determined
// by the pointer. In TSPrespecified mode the sender fills the address
// of every slot; routers complete the matching timestamps.
type Timestamp struct {
	// Flag is the option mode.
	Flag TSFlag
	// Pointer is the 1-based octet offset of the next free slot
	// (minimum 5).
	Pointer uint8
	// Overflow counts routers that could not register (4 bits).
	Overflow uint8
	// Entries are the slots in wire order.
	Entries []TSEntry
}

// tsSlotSize returns the per-slot octet count for the mode.
func (f TSFlag) slotSize() int {
	if f == TSOnly {
		return 4
	}
	return 8
}

// NewTimestamp returns an empty option with n slots. It panics if the
// option cannot fit the IPv4 options area — slot counts are programmer
// constants, not wire input.
func NewTimestamp(flag TSFlag, n int) *Timestamp {
	if n < 1 || tsFixedLen+n*flag.slotSize() > MaxOptionsLen {
		panic(fmt.Sprintf("packet: timestamp option with %d %v slots does not fit", n, flag))
	}
	ts := &Timestamp{Flag: flag, Pointer: tsFixedLen + 1, Entries: make([]TSEntry, n)}
	zero := netip.AddrFrom4([4]byte{})
	for i := range ts.Entries {
		ts.Entries[i].Addr = zero
	}
	return ts
}

// NewTimestampPrespecified returns a TSPrespecified option asking the
// named hops for timestamps.
func NewTimestampPrespecified(addrs []netip.Addr) *Timestamp {
	ts := NewTimestamp(TSPrespecified, len(addrs))
	for i, a := range addrs {
		ts.Entries[i].Addr = a
	}
	return ts
}

// wireLen returns the option length octet value.
func (t *Timestamp) wireLen() int { return tsFixedLen + len(t.Entries)*t.Flag.slotSize() }

// RecordedCount derives the number of completed slots from the pointer.
func (t *Timestamp) RecordedCount() int {
	if int(t.Pointer) <= tsFixedLen {
		return 0
	}
	n := (int(t.Pointer) - tsFixedLen - 1) / t.Flag.slotSize()
	if n > len(t.Entries) {
		n = len(t.Entries)
	}
	return n
}

// Recorded returns the completed entries; it aliases Entries.
func (t *Timestamp) Recorded() []TSEntry { return t.Entries[:t.RecordedCount()] }

// Full reports whether no slots remain.
func (t *Timestamp) Full() bool { return int(t.Pointer) > t.wireLen() }

// Record registers a hop. In TSOnly mode only millis is stored; in
// TSAddr mode the hop's address accompanies it; in TSPrespecified mode
// the timestamp is stored only when addr matches the next prespecified
// slot. A full option increments Overflow (saturating at 15) and
// returns false, as RFC 791 specifies.
func (t *Timestamp) Record(addr netip.Addr, millis uint32) bool {
	if t.Full() {
		if t.Overflow < 15 {
			t.Overflow++
		}
		return false
	}
	idx := t.RecordedCount()
	switch t.Flag {
	case TSOnly:
		t.Entries[idx] = TSEntry{Addr: netip.AddrFrom4([4]byte{}), Millis: millis}
	case TSAddr:
		addr = addr.Unmap()
		if !addr.Is4() {
			return false
		}
		t.Entries[idx] = TSEntry{Addr: addr, Millis: millis}
	case TSPrespecified:
		if t.Entries[idx].Addr != addr.Unmap() {
			return false // not our turn; no pointer movement
		}
		t.Entries[idx].Millis = millis
	default:
		return false
	}
	t.Pointer += uint8(t.Flag.slotSize())
	return true
}

// Option serializes the timestamp option to a raw TLV.
func (t *Timestamp) Option() (Option, error) {
	if t.Flag != TSOnly && t.Flag != TSAddr && t.Flag != TSPrespecified {
		return Option{}, fmt.Errorf("%w: timestamp flag %d", ErrBadHeader, t.Flag)
	}
	data := make([]byte, 2, 2+len(t.Entries)*t.Flag.slotSize())
	data[0] = t.Pointer
	data[1] = t.Overflow<<4 | uint8(t.Flag)
	for i, e := range t.Entries {
		if t.Flag != TSOnly {
			b, ok := addr4(e.Addr)
			if !ok {
				return Option{}, fmt.Errorf("%w: slot %d is %v", ErrNotIPv4, i, e.Addr)
			}
			data = append(data, b[:]...)
		}
		data = binary.BigEndian.AppendUint32(data, e.Millis)
	}
	return Option{Type: OptTimestamp, Data: data}, nil
}

// DecodeTimestamp parses a raw Option into the receiver, reusing
// Entries when capacity allows.
func (t *Timestamp) DecodeTimestamp(o Option) error {
	if o.Type != OptTimestamp {
		return fmt.Errorf("%w: option type %v is not timestamp", ErrBadHeader, o.Type)
	}
	if len(o.Data) < 2 {
		return fmt.Errorf("%w: timestamp data length %d", ErrTruncated, len(o.Data))
	}
	t.Pointer = o.Data[0]
	t.Overflow = o.Data[1] >> 4
	t.Flag = TSFlag(o.Data[1] & 0xf)
	slot := t.Flag.slotSize()
	if t.Flag != TSOnly && t.Flag != TSAddr && t.Flag != TSPrespecified {
		return fmt.Errorf("%w: timestamp flag %d", ErrBadHeader, t.Flag)
	}
	body := o.Data[2:]
	if len(body)%slot != 0 {
		return fmt.Errorf("%w: timestamp body length %d for %v", ErrBadHeader, len(body), t.Flag)
	}
	n := len(body) / slot
	if cap(t.Entries) >= n {
		t.Entries = t.Entries[:n]
	} else {
		t.Entries = make([]TSEntry, n)
	}
	for i := 0; i < n; i++ {
		off := i * slot
		if t.Flag == TSOnly {
			t.Entries[i] = TSEntry{
				Addr:   netip.AddrFrom4([4]byte{}),
				Millis: binary.BigEndian.Uint32(body[off:]),
			}
		} else {
			var b [4]byte
			copy(b[:], body[off:])
			t.Entries[i] = TSEntry{
				Addr:   netip.AddrFrom4(b),
				Millis: binary.BigEndian.Uint32(body[off+4:]),
			}
		}
	}
	if t.Pointer < tsFixedLen+1 || (int(t.Pointer)-tsFixedLen-1)%slot != 0 {
		return fmt.Errorf("%w: timestamp pointer %d", ErrBadHeader, t.Pointer)
	}
	return nil
}

// FindTimestamp locates the first Timestamp option in opts and decodes
// it into t, returning false if none is present.
func (t *Timestamp) FindTimestamp(opts []Option) (bool, error) {
	for _, o := range opts {
		if o.Type == OptTimestamp {
			if err := t.DecodeTimestamp(o); err != nil {
				return true, err
			}
			return true, nil
		}
	}
	return false, nil
}

// TimestampOption finds the header's Timestamp option, if any.
func (h *IPv4) TimestampOption(ts *Timestamp) (bool, error) {
	return ts.FindTimestamp(h.Options)
}

// SetTimestamp replaces any existing Timestamp option in the header
// with the serialization of ts (or appends one).
func (h *IPv4) SetTimestamp(ts *Timestamp) error {
	opt, err := ts.Option()
	if err != nil {
		return err
	}
	for i := range h.Options {
		if h.Options[i].Type == OptTimestamp {
			h.Options[i] = opt
			return nil
		}
	}
	h.Options = append(h.Options, opt)
	return nil
}
