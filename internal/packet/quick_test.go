package packet

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

// randomAddr draws an arbitrary IPv4 address.
func randomAddr(r *rand.Rand) netip.Addr {
	var b [4]byte
	r.Read(b[:])
	return netip.AddrFrom4(b)
}

// TestQuickIPv4RoundTrip property: Marshal then Decode recovers every
// header field and the payload for arbitrary field values.
func TestQuickIPv4RoundTrip(t *testing.T) {
	f := func(tos uint8, id uint16, flags uint8, frag uint16, ttl uint8, payloadSeed []byte) bool {
		r := rand.New(rand.NewSource(int64(id)<<16 | int64(tos)))
		h := &IPv4{
			TOS:        tos,
			ID:         id,
			Flags:      flags & 0x7,
			FragOffset: frag & 0x1fff,
			TTL:        ttl,
			Protocol:   ProtocolICMP,
			Src:        randomAddr(r),
			Dst:        randomAddr(r),
		}
		if len(payloadSeed) > 1024 {
			payloadSeed = payloadSeed[:1024]
		}
		wire, err := h.Marshal(payloadSeed)
		if err != nil {
			return false
		}
		var back IPv4
		payload, err := back.Decode(wire)
		if err != nil {
			return false
		}
		return back.TOS == h.TOS && back.ID == h.ID && back.Flags == h.Flags &&
			back.FragOffset == h.FragOffset && back.TTL == h.TTL &&
			back.Src == h.Src && back.Dst == h.Dst &&
			string(payload) == string(payloadSeed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickRecordRouteRoundTrip property: any partially-stamped RR option
// survives Option → DecodeRecordRoute exactly.
func TestQuickRecordRouteRoundTrip(t *testing.T) {
	f := func(slots, stamps uint8, seed int64) bool {
		n := int(slots)%MaxRRSlots + 1
		k := int(stamps) % (n + 1)
		r := rand.New(rand.NewSource(seed))
		rr := NewRecordRoute(n)
		for i := 0; i < k; i++ {
			if !rr.Record(randomAddr(r)) {
				return false
			}
		}
		opt, err := rr.Option()
		if err != nil {
			return false
		}
		var back RecordRoute
		if err := back.DecodeRecordRoute(opt); err != nil {
			return false
		}
		if back.NumSlots() != n || back.RecordedCount() != k {
			return false
		}
		for i, a := range rr.Recorded() {
			if back.Recorded()[i] != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickRecordRouteMonotonicPointer property: Record never decreases
// the pointer, never exceeds wire length + 1, and RecordedCount equals
// the number of successful Record calls.
func TestQuickRecordRouteMonotonicPointer(t *testing.T) {
	f := func(slots uint8, tries uint8, seed int64) bool {
		n := int(slots)%MaxRRSlots + 1
		r := rand.New(rand.NewSource(seed))
		rr := NewRecordRoute(n)
		succeeded := 0
		last := rr.Pointer
		for i := 0; i < int(tries); i++ {
			ok := rr.Record(randomAddr(r))
			if ok {
				succeeded++
			}
			if rr.Pointer < last {
				return false
			}
			last = rr.Pointer
		}
		if succeeded != min(int(tries), n) {
			return false
		}
		return rr.RecordedCount() == succeeded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickICMPRoundTrip property: echo messages round-trip for arbitrary
// identifiers and payloads.
func TestQuickICMPRoundTrip(t *testing.T) {
	f := func(id, seq uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		m := NewEchoRequest(id, seq, payload)
		var back ICMP
		if err := back.Decode(m.Marshal()); err != nil {
			return false
		}
		return back.ID == id && back.Seq == seq && string(back.Payload) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickUDPRoundTrip property: UDP datagrams round-trip and verify
// under their own pseudo-header.
func TestQuickUDPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, payload []byte, seed int64) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		r := rand.New(rand.NewSource(seed))
		src, dst := randomAddr(r), randomAddr(r)
		u := &UDP{SrcPort: sp, DstPort: dp, Payload: payload}
		wire, err := u.Marshal(src, dst)
		if err != nil {
			return false
		}
		var back UDP
		if err := back.Decode(wire, src, dst); err != nil {
			return false
		}
		return back.SrcPort == sp && back.DstPort == dp && string(back.Payload) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeNeverPanics property: the full-packet parser must reject
// or accept arbitrary bytes without panicking.
func TestQuickDecodeNeverPanics(t *testing.T) {
	var p Parsed
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_ = p.Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeMutatedPackets property: flipping any single byte of a
// valid packet either still decodes or fails cleanly — and a flip inside
// the IP header (outside the checksum's own bytes) must be detected.
func TestQuickDecodeMutatedPackets(t *testing.T) {
	rr := NewRecordRoute(9)
	h := &IPv4{TTL: 9, Protocol: ProtocolICMP, Src: addr("10.0.0.1"), Dst: addr("10.0.0.2")}
	if err := h.SetRecordRoute(rr); err != nil {
		t.Fatal(err)
	}
	wire, err := h.Marshal(NewEchoRequest(3, 4, []byte("payload")).Marshal())
	if err != nil {
		t.Fatal(err)
	}
	hdrLen := int(wire[0]&0xf) * 4
	var p Parsed
	for i := 0; i < len(wire); i++ {
		buf := make([]byte, len(wire))
		copy(buf, wire)
		buf[i] ^= 0x55
		err := p.Decode(buf)
		if i < hdrLen && err == nil {
			// Any in-header mutation flips the header sum... except a
			// mutation that keeps the one's-complement sum identical,
			// which a single XOR cannot do.
			t.Errorf("mutation at header byte %d went undetected", i)
		}
	}
}
