package packet

import (
	"encoding/binary"
	"fmt"
)

// ICMPType is the ICMPv4 message type.
type ICMPType uint8

// ICMP message types and codes used by the toolkit (RFC 792).
const (
	ICMPEchoReply      ICMPType = 0
	ICMPDestUnreach    ICMPType = 3
	ICMPEchoRequest    ICMPType = 8
	ICMPTimeExceeded   ICMPType = 11
	ICMPParamProblem   ICMPType = 12
	ICMPTimestamp      ICMPType = 13
	ICMPTimestampReply ICMPType = 14

	// CodePortUnreachable is Destination Unreachable's "port unreachable".
	CodePortUnreachable uint8 = 3
	// CodeTTLExceeded is Time Exceeded's "time to live exceeded in transit".
	CodeTTLExceeded uint8 = 0
)

// String returns the conventional name of the message type.
func (t ICMPType) String() string {
	switch t {
	case ICMPEchoReply:
		return "echo-reply"
	case ICMPDestUnreach:
		return "dest-unreach"
	case ICMPEchoRequest:
		return "echo-request"
	case ICMPTimeExceeded:
		return "time-exceeded"
	case ICMPParamProblem:
		return "param-problem"
	case ICMPTimestamp:
		return "timestamp"
	case ICMPTimestampReply:
		return "timestamp-reply"
	default:
		return fmt.Sprintf("icmp(%d)", uint8(t))
	}
}

// IsError reports whether the type is an ICMP error message, which quotes
// the offending datagram in its body.
func (t ICMPType) IsError() bool {
	switch t {
	case ICMPDestUnreach, ICMPTimeExceeded, ICMPParamProblem:
		return true
	}
	return false
}

// icmpFixedLen is the length of the ICMP header through the 4-byte
// rest-of-header field (ID/Seq for echo, unused for errors).
const icmpFixedLen = 8

// ICMP is a decoded ICMPv4 message.
//
// For echo request/reply, ID and Seq are meaningful and Payload is the
// echo data. For error messages, ID and Seq are zero and Payload is the
// quoted datagram: the offending IPv4 header (with options — this is how
// ping-RRudp reads back Record Route contents, §3.3 of the paper)
// followed by at least its first 8 payload bytes.
type ICMP struct {
	Type     ICMPType
	Code     uint8
	ID, Seq  uint16
	Payload  []byte
	Checksum uint16 // from the last decode
}

// AppendTo encodes the message onto b, computing the checksum.
func (m *ICMP) AppendTo(b []byte) []byte {
	start := len(b)
	b = append(b, byte(m.Type), m.Code, 0, 0)
	b = binary.BigEndian.AppendUint16(b, m.ID)
	b = binary.BigEndian.AppendUint16(b, m.Seq)
	b = append(b, m.Payload...)
	cs := Checksum(b[start:])
	binary.BigEndian.PutUint16(b[start+2:], cs)
	return b
}

// Marshal encodes the message into a fresh buffer.
func (m *ICMP) Marshal() []byte {
	return m.AppendTo(make([]byte, 0, icmpFixedLen+len(m.Payload)))
}

// Decode parses an ICMPv4 message into the receiver, verifying the
// checksum. Payload aliases the input.
func (m *ICMP) Decode(data []byte) error {
	if len(data) < icmpFixedLen {
		return fmt.Errorf("%w: %d bytes of ICMP", ErrTruncated, len(data))
	}
	if Checksum(data) != 0 {
		return fmt.Errorf("%w: ICMP", ErrChecksum)
	}
	m.Type = ICMPType(data[0])
	m.Code = data[1]
	m.Checksum = binary.BigEndian.Uint16(data[2:])
	m.ID = binary.BigEndian.Uint16(data[4:])
	m.Seq = binary.BigEndian.Uint16(data[6:])
	m.Payload = data[icmpFixedLen:]
	if m.Type.IsError() {
		// The ID/Seq field is "unused" in error messages; normalize so
		// callers never match errors against echo identifiers.
		m.ID, m.Seq = 0, 0
	}
	return nil
}

// QuotedDatagram parses the quoted datagram carried by an ICMP error
// message into hdr, returning the quoted transport bytes (typically the
// first 8 bytes of the offending payload). It fails if the message is not
// an error type.
//
// RFC 1812 requires the quote to include the full IP header including
// options, which is what lets a TTL-limited ping-RR be read back at the
// source (§4.2 of the paper).
func (m *ICMP) QuotedDatagram(hdr *IPv4) ([]byte, error) {
	if !m.Type.IsError() {
		return nil, fmt.Errorf("%w: %v carries no quoted datagram", ErrBadHeader, m.Type)
	}
	return hdr.DecodeHeaderOnly(m.Payload)
}

// QuotedEcho extracts the type, identifier, and sequence number from the
// quoted transport bytes of an ICMP error whose offending packet was an
// ICMP echo. The quote is truncated to 8 bytes by most routers, so no
// checksum verification is possible — the caller matches id/seq against
// its own outstanding probes instead.
func QuotedEcho(b []byte) (t ICMPType, id, seq uint16, ok bool) {
	if len(b) < 8 {
		return 0, 0, 0, false
	}
	return ICMPType(b[0]), binary.BigEndian.Uint16(b[4:]), binary.BigEndian.Uint16(b[6:]), true
}

// QuotedUDP extracts the port pair from the quoted transport bytes of an
// ICMP error whose offending packet was UDP. Like QuotedEcho, the quote
// is too short to verify.
func QuotedUDP(b []byte) (srcPort, dstPort uint16, ok bool) {
	if len(b) < 4 {
		return 0, 0, false
	}
	return binary.BigEndian.Uint16(b), binary.BigEndian.Uint16(b[2:]), true
}

// NewEchoRequest builds an echo request with the given identifier,
// sequence number, and data.
func NewEchoRequest(id, seq uint16, data []byte) *ICMP {
	return &ICMP{Type: ICMPEchoRequest, ID: id, Seq: seq, Payload: data}
}

// EchoReply builds the reply to an echo request, preserving ID, Seq, and
// data as RFC 792 requires.
func (m *ICMP) EchoReply() *ICMP {
	return &ICMP{Type: ICMPEchoReply, ID: m.ID, Seq: m.Seq, Payload: m.Payload}
}

// NewError builds an ICMP error message of the given type and code
// quoting the offending datagram. quoteHeader must be the serialized IPv4
// header (with options) of the offending packet and quotePayload its
// payload; the quote is truncated to the header plus 8 payload bytes, the
// minimum RFC 792 quote, which matches common router behaviour.
func NewError(t ICMPType, code uint8, quoteHeader, quotePayload []byte) *ICMP {
	q := quotePayload
	if len(q) > 8 {
		q = q[:8]
	}
	body := make([]byte, 0, len(quoteHeader)+len(q))
	body = append(body, quoteHeader...)
	body = append(body, q...)
	return &ICMP{Type: t, Code: code, Payload: body}
}
