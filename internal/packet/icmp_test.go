package packet

import (
	"errors"
	"testing"
)

func TestICMPEchoRoundTrip(t *testing.T) {
	req := NewEchoRequest(0x1234, 7, []byte("probe-data"))
	wire := req.Marshal()
	var back ICMP
	if err := back.Decode(wire); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if back.Type != ICMPEchoRequest || back.Code != 0 {
		t.Errorf("type/code = %v/%d", back.Type, back.Code)
	}
	if back.ID != 0x1234 || back.Seq != 7 {
		t.Errorf("id/seq = %#x/%d", back.ID, back.Seq)
	}
	if string(back.Payload) != "probe-data" {
		t.Errorf("payload %q", back.Payload)
	}
}

func TestICMPEchoReplyPreservesIdentifiers(t *testing.T) {
	req := NewEchoRequest(42, 99, []byte("xyz"))
	rep := req.EchoReply()
	if rep.Type != ICMPEchoReply {
		t.Errorf("reply type %v", rep.Type)
	}
	if rep.ID != req.ID || rep.Seq != req.Seq {
		t.Errorf("reply id/seq = %d/%d, want %d/%d", rep.ID, rep.Seq, req.ID, req.Seq)
	}
	if string(rep.Payload) != "xyz" {
		t.Errorf("reply payload %q", rep.Payload)
	}
}

func TestICMPDecodeRejectsBadChecksum(t *testing.T) {
	wire := NewEchoRequest(1, 1, nil).Marshal()
	wire[0] ^= 0xff
	var back ICMP
	if err := back.Decode(wire); !errors.Is(err, ErrChecksum) {
		t.Errorf("err = %v, want ErrChecksum", err)
	}
}

func TestICMPDecodeRejectsTruncated(t *testing.T) {
	var back ICMP
	if err := back.Decode([]byte{8, 0, 0}); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestICMPErrorQuotesOptionsHeader(t *testing.T) {
	// Build an offending ping-RR, then a time-exceeded error quoting it,
	// and verify the RR contents are readable from the quote — the exact
	// mechanism §4.2 (TTL-limited probing) and ping-RRudp (§3.3) rely on.
	rr := NewRecordRoute(9)
	rr.Record(addr("10.0.0.1"))
	rr.Record(addr("10.0.0.2"))
	offending := &IPv4{TTL: 0, Protocol: ProtocolICMP, Src: addr("192.0.2.1"), Dst: addr("198.51.100.9")}
	if err := offending.SetRecordRoute(rr); err != nil {
		t.Fatal(err)
	}
	echo := NewEchoRequest(5, 6, []byte("0123456789abcdef")).Marshal()
	offWire, err := offending.Marshal(echo)
	if err != nil {
		t.Fatal(err)
	}
	hdrLen := int(offWire[0]&0xf) * 4

	icmpErr := NewError(ICMPTimeExceeded, CodeTTLExceeded, offWire[:hdrLen], offWire[hdrLen:])
	wire := icmpErr.Marshal()

	var back ICMP
	if err := back.Decode(wire); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !back.Type.IsError() {
		t.Fatal("time exceeded not classified as error")
	}
	var quoted IPv4
	transport, err := back.QuotedDatagram(&quoted)
	if err != nil {
		t.Fatalf("QuotedDatagram: %v", err)
	}
	if quoted.Dst != addr("198.51.100.9") {
		t.Errorf("quoted destination %v", quoted.Dst)
	}
	// Only 8 transport bytes are quoted.
	if len(transport) != 8 {
		t.Errorf("quoted transport = %d bytes, want 8", len(transport))
	}
	var qrr RecordRoute
	found, err := quoted.RecordRouteOption(&qrr)
	if !found || err != nil {
		t.Fatalf("quoted RR: found=%v err=%v", found, err)
	}
	if qrr.RecordedCount() != 2 || qrr.Recorded()[1] != addr("10.0.0.2") {
		t.Errorf("quoted RR recorded = %v", qrr.Recorded())
	}
}

func TestICMPQuotedDatagramToleratesTruncation(t *testing.T) {
	// Quoted datagrams truncate the transport payload (8 bytes), so the
	// quoted header's TotalLength exceeds the quote. QuotedDatagram must
	// still parse the header and report the original claimed length.
	off := &IPv4{TTL: 3, Protocol: ProtocolUDP, Src: addr("10.0.0.1"), Dst: addr("10.0.0.2")}
	wire, err := off.Marshal(make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	e := NewError(ICMPDestUnreach, CodePortUnreachable, wire[:20], wire[20:])
	var back ICMP
	if err := back.Decode(e.Marshal()); err != nil {
		t.Fatal(err)
	}
	var quoted IPv4
	transport, err := back.QuotedDatagram(&quoted)
	if err != nil {
		t.Fatalf("QuotedDatagram: %v", err)
	}
	if len(transport) != 8 {
		t.Errorf("quoted transport = %d bytes, want 8", len(transport))
	}
	if quoted.TotalLength != 120 {
		t.Errorf("quoted TotalLength = %d, want original 120", quoted.TotalLength)
	}
	if quoted.Dst != addr("10.0.0.2") {
		t.Errorf("quoted dst = %v", quoted.Dst)
	}
}

func TestICMPErrorNormalizesIDSeq(t *testing.T) {
	// Error messages must never match an echo id/seq pair by accident.
	e := &ICMP{Type: ICMPTimeExceeded, ID: 77, Seq: 88, Payload: make([]byte, 28)}
	var back ICMP
	if err := back.Decode(e.Marshal()); err != nil {
		t.Fatal(err)
	}
	if back.ID != 0 || back.Seq != 0 {
		t.Errorf("error message id/seq = %d/%d, want 0/0", back.ID, back.Seq)
	}
}

func TestQuotedDatagramRequiresErrorType(t *testing.T) {
	m := NewEchoRequest(1, 2, nil)
	var h IPv4
	if _, err := m.QuotedDatagram(&h); err == nil {
		t.Error("QuotedDatagram succeeded on an echo request")
	}
}
