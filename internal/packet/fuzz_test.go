package packet

import (
	"net/netip"
	"testing"
)

// seedPackets builds a varied corpus of valid packets for the fuzzers.
func seedPackets(t interface{ Fatal(...any) }) [][]byte {
	var seeds [][]byte
	add := func(wire []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, wire)
	}
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")

	plain := &IPv4{TTL: 64, Protocol: ProtocolICMP, Src: src, Dst: dst}
	add(plain.Marshal(NewEchoRequest(1, 2, []byte("data")).Marshal()))

	rr := NewRecordRoute(9)
	rr.Record(netip.MustParseAddr("192.0.2.1"))
	withRR := &IPv4{TTL: 32, Protocol: ProtocolICMP, Src: src, Dst: dst}
	if err := withRR.SetRecordRoute(rr); err != nil {
		t.Fatal(err)
	}
	add(withRR.Marshal(NewEchoRequest(3, 4, nil).Marshal()))

	ts := NewTimestamp(TSAddr, 4)
	ts.Record(netip.MustParseAddr("192.0.2.9"), 123)
	withTS := &IPv4{TTL: 16, Protocol: ProtocolICMP, Src: src, Dst: dst}
	if err := withTS.SetTimestamp(ts); err != nil {
		t.Fatal(err)
	}
	add(withTS.Marshal(NewEchoRequest(5, 6, nil).Marshal()))

	udp := &UDP{SrcPort: 1000, DstPort: 2000, Payload: []byte("u")}
	uw, err := udp.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	udpIP := &IPv4{TTL: 8, Protocol: ProtocolUDP, Src: src, Dst: dst}
	add(udpIP.Marshal(uw))

	e := NewError(ICMPTimeExceeded, CodeTTLExceeded, seeds[1][:60], seeds[1][60:])
	errIP := &IPv4{TTL: 64, Protocol: ProtocolICMP, Src: dst, Dst: src}
	add(errIP.Marshal(e.Marshal()))
	return seeds
}

// FuzzParsedDecode: the full-packet parser must never panic and must
// re-encode anything it accepts into something it accepts again.
func FuzzParsedDecode(f *testing.F) {
	for _, s := range seedPackets(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Parsed
		if err := p.Decode(data); err != nil {
			return
		}
		// Accepted: the header must re-encode and re-decode cleanly.
		var payload []byte
		switch {
		case p.HasICMP:
			payload = p.ICMP.Marshal()
		case p.HasUDP:
			var err error
			payload, err = p.UDP.Marshal(p.IP.Src, p.IP.Dst)
			if err != nil {
				t.Fatalf("re-encode UDP: %v", err)
			}
		default:
			payload = p.Payload
		}
		wire, err := p.IP.Marshal(payload)
		if err != nil {
			t.Fatalf("re-encode accepted packet: %v", err)
		}
		var q Parsed
		if err := q.Decode(wire); err != nil {
			t.Fatalf("re-decode re-encoded packet: %v", err)
		}
	})
}

// FuzzRecordRouteDecode: arbitrary RR option bytes must be rejected or
// produce a structurally consistent option.
func FuzzRecordRouteDecode(f *testing.F) {
	rr := NewRecordRoute(9)
	rr.Record(netip.MustParseAddr("10.0.0.1"))
	opt, _ := rr.Option()
	f.Add(opt.Data)
	f.Add([]byte{4, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var back RecordRoute
		if err := back.DecodeRecordRoute(Option{Type: OptRecordRoute, Data: data}); err != nil {
			return
		}
		if back.RecordedCount() > back.NumSlots() {
			t.Fatalf("recorded %d > slots %d", back.RecordedCount(), back.NumSlots())
		}
		if _, err := back.Option(); err != nil {
			t.Fatalf("accepted option fails to re-encode: %v", err)
		}
	})
}

// FuzzTimestampDecode mirrors FuzzRecordRouteDecode for the Timestamp
// option.
func FuzzTimestampDecode(f *testing.F) {
	ts := NewTimestamp(TSAddr, 2)
	ts.Record(netip.MustParseAddr("10.0.0.1"), 42)
	opt, _ := ts.Option()
	f.Add(opt.Data)
	f.Add([]byte{5, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var back Timestamp
		if err := back.DecodeTimestamp(Option{Type: OptTimestamp, Data: data}); err != nil {
			return
		}
		if back.RecordedCount() > len(back.Entries) {
			t.Fatalf("recorded %d > entries %d", back.RecordedCount(), len(back.Entries))
		}
		if _, err := back.Option(); err != nil {
			t.Fatalf("accepted option fails to re-encode: %v", err)
		}
	})
}
