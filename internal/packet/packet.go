// Package packet implements encoding and decoding of the on-wire formats
// used by the Record Route measurement toolkit: the IPv4 header including
// IP options (most importantly the Record Route option, RFC 791 §3.1),
// ICMPv4 messages (echo request/reply, time exceeded, destination
// unreachable with quoted datagrams, RFC 792), and UDP (RFC 768).
//
// The decoders follow the gopacket "DecodingLayer" idiom: each layer type
// has a Decode method that parses into the receiver without allocating,
// so a hot probing loop can reuse one set of layer structs per goroutine.
// Encoders are append-style (AppendTo) so callers control buffer reuse;
// convenience Marshal wrappers allocate for the common case.
//
// All addresses are netip.Addr values restricted to IPv4. Packets that
// carry anything else fail to encode with ErrNotIPv4.
package packet

import (
	"errors"
	"fmt"
	"net/netip"
)

// Protocol is an IPv4 protocol number (the Protocol header field).
type Protocol uint8

// Protocol numbers used by the toolkit.
const (
	ProtocolICMP Protocol = 1
	ProtocolTCP  Protocol = 6
	ProtocolUDP  Protocol = 17
)

// String returns the conventional name of the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtocolICMP:
		return "icmp"
	case ProtocolTCP:
		return "tcp"
	case ProtocolUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Errors shared by the encoders and decoders in this package.
var (
	// ErrTruncated reports input shorter than the structure it claims to hold.
	ErrTruncated = errors.New("packet: truncated input")
	// ErrNotIPv4 reports an address or version field that is not IPv4.
	ErrNotIPv4 = errors.New("packet: not IPv4")
	// ErrBadHeader reports a malformed header field (IHL, lengths, pointers).
	ErrBadHeader = errors.New("packet: malformed header")
	// ErrOptionSpace reports IPv4 options that do not fit the 40-byte limit.
	ErrOptionSpace = errors.New("packet: options exceed 40 bytes")
	// ErrChecksum reports a failed checksum verification.
	ErrChecksum = errors.New("packet: bad checksum")
)

// addr4 converts a netip.Addr to its 4-byte form, reporting ok=false for
// non-IPv4 addresses (including IPv4-mapped IPv6, which is unmapped first).
func addr4(a netip.Addr) (b [4]byte, ok bool) {
	a = a.Unmap()
	if !a.Is4() {
		return b, false
	}
	return a.As4(), true
}
