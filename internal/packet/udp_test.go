package packet

import (
	"errors"
	"testing"
)

func TestUDPRoundTrip(t *testing.T) {
	src, dst := addr("192.0.2.5"), addr("203.0.113.80")
	u := &UDP{SrcPort: 33434, DstPort: 53001, Payload: []byte("rr-udp-probe")}
	wire, err := u.Marshal(src, dst)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back UDP
	if err := back.Decode(wire, src, dst); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if back.SrcPort != 33434 || back.DstPort != 53001 {
		t.Errorf("ports = %d/%d", back.SrcPort, back.DstPort)
	}
	if string(back.Payload) != "rr-udp-probe" {
		t.Errorf("payload %q", back.Payload)
	}
}

func TestUDPChecksumCoversPseudoHeader(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("10.0.0.2")
	u := &UDP{SrcPort: 1, DstPort: 2, Payload: []byte("x")}
	wire, err := u.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	var back UDP
	// Decoding against the wrong destination address must fail: the
	// pseudo-header binds the datagram to its addresses.
	if err := back.Decode(wire, src, addr("10.0.0.3")); !errors.Is(err, ErrChecksum) {
		t.Errorf("err = %v, want ErrChecksum for wrong pseudo-header", err)
	}
	if err := back.Decode(wire, src, dst); err != nil {
		t.Errorf("correct addresses rejected: %v", err)
	}
}

func TestUDPZeroChecksumSkipsVerification(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("10.0.0.2")
	u := &UDP{SrcPort: 7, DstPort: 9, Payload: []byte("nochk")}
	wire, err := u.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	wire[6], wire[7] = 0, 0 // sender disabled checksumming
	var back UDP
	if err := back.Decode(wire, addr("1.2.3.4"), addr("5.6.7.8")); err != nil {
		t.Errorf("zero checksum rejected: %v", err)
	}
}

func TestUDPDecodeErrors(t *testing.T) {
	var back UDP
	if err := back.Decode([]byte{1, 2, 3}, addr("10.0.0.1"), addr("10.0.0.2")); !errors.Is(err, ErrTruncated) {
		t.Errorf("short buffer: err = %v", err)
	}
	// Length field larger than the buffer.
	wire := []byte{0, 1, 0, 2, 0, 200, 0, 0}
	if err := back.Decode(wire, addr("10.0.0.1"), addr("10.0.0.2")); !errors.Is(err, ErrBadHeader) {
		t.Errorf("oversized length: err = %v", err)
	}
}

func TestUDPLengthTrimsTrailingBytes(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("10.0.0.2")
	u := &UDP{SrcPort: 5, DstPort: 6, Payload: []byte("abc")}
	wire, err := u.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	padded := append(wire, 0xff, 0xff)
	var back UDP
	if err := back.Decode(padded, src, dst); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if string(back.Payload) != "abc" {
		t.Errorf("payload %q, want %q", back.Payload, "abc")
	}
}
