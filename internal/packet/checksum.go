package packet

import "net/netip"

// Checksum computes the Internet checksum (RFC 1071) over data: the one's
// complement of the one's complement sum of the data interpreted as a
// sequence of big-endian 16-bit words, with a trailing odd byte padded
// with zero.
func Checksum(data []byte) uint16 {
	return foldChecksum(sumWords(0, data))
}

// sumWords accumulates the 16-bit one's-complement partial sum of data
// onto acc. The returned value has not been folded.
func sumWords(acc uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		acc += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		acc += uint32(data[n-1]) << 8
	}
	return acc
}

// foldChecksum folds the 32-bit partial sum into 16 bits and complements it.
func foldChecksum(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = (acc & 0xffff) + acc>>16
	}
	return ^uint16(acc)
}

// pseudoHeaderSum returns the unfolded checksum contribution of the IPv4
// pseudo-header used by UDP and TCP: source, destination, zero+protocol,
// and the transport-layer length.
func pseudoHeaderSum(src, dst netip.Addr, proto Protocol, length int) uint32 {
	var acc uint32
	if s, ok := addr4(src); ok {
		acc += uint32(s[0])<<8 | uint32(s[1])
		acc += uint32(s[2])<<8 | uint32(s[3])
	}
	if d, ok := addr4(dst); ok {
		acc += uint32(d[0])<<8 | uint32(d[1])
		acc += uint32(d[2])<<8 | uint32(d[3])
	}
	acc += uint32(proto)
	acc += uint32(length)
	return acc
}
