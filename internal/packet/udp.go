package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// udpFixedLen is the length of a UDP header.
const udpFixedLen = 8

// UDP is a decoded UDP header plus payload.
type UDP struct {
	SrcPort, DstPort uint16
	Payload          []byte
	// Length and Checksum reflect the last decode; encoders compute them.
	Length   uint16
	Checksum uint16
}

// AppendTo encodes the datagram onto b. src and dst are needed for the
// pseudo-header checksum. A computed checksum of zero is transmitted as
// 0xffff per RFC 768.
func (u *UDP) AppendTo(b []byte, src, dst netip.Addr) ([]byte, error) {
	length := udpFixedLen + len(u.Payload)
	if length > 0xffff {
		return nil, fmt.Errorf("%w: UDP length %d", ErrBadHeader, length)
	}
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, uint16(length))
	b = append(b, 0, 0) // checksum patched below
	b = append(b, u.Payload...)
	acc := pseudoHeaderSum(src, dst, ProtocolUDP, length)
	cs := foldChecksum(sumWords(acc, b[start:]))
	if cs == 0 {
		cs = 0xffff
	}
	binary.BigEndian.PutUint16(b[start+6:], cs)
	return b, nil
}

// Marshal encodes the datagram into a fresh buffer.
func (u *UDP) Marshal(src, dst netip.Addr) ([]byte, error) {
	return u.AppendTo(make([]byte, 0, udpFixedLen+len(u.Payload)), src, dst)
}

// Decode parses a UDP datagram into the receiver. src and dst are needed
// to verify the pseudo-header checksum; a zero wire checksum means the
// sender disabled checksumming and verification is skipped. Payload
// aliases the input.
func (u *UDP) Decode(data []byte, src, dst netip.Addr) error {
	if len(data) < udpFixedLen {
		return fmt.Errorf("%w: %d bytes of UDP", ErrTruncated, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data)
	u.DstPort = binary.BigEndian.Uint16(data[2:])
	u.Length = binary.BigEndian.Uint16(data[4:])
	u.Checksum = binary.BigEndian.Uint16(data[6:])
	if int(u.Length) < udpFixedLen || int(u.Length) > len(data) {
		return fmt.Errorf("%w: UDP length %d, have %d", ErrBadHeader, u.Length, len(data))
	}
	if u.Checksum != 0 {
		acc := pseudoHeaderSum(src, dst, ProtocolUDP, int(u.Length))
		if foldChecksum(sumWords(acc, data[:u.Length])) != 0 {
			return fmt.Errorf("%w: UDP", ErrChecksum)
		}
	}
	u.Payload = data[udpFixedLen:u.Length]
	return nil
}
