package packet

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
)

var updateCorpus = flag.Bool("updatecorpus", false, "rewrite the committed seed corpus under testdata/fuzz")

// quotedErrorSeeds builds ICMP error packets whose quoted datagrams
// carry the option-bearing headers the study depends on reading back:
// RR-bearing echoes (ping-RR past the 9th hop), TS-bearing echoes, and
// RR-UDP probes answered with port unreachable.
func quotedErrorSeeds(t interface{ Fatal(...any) }) [][]byte {
	var seeds [][]byte
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.9.0.1")
	rtr := netip.MustParseAddr("192.0.2.1")

	wrap := func(e *ICMP) {
		errIP := &IPv4{TTL: 64, Protocol: ProtocolICMP, Src: rtr, Dst: src}
		wire, err := errIP.Marshal(e.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, wire)
	}
	split := func(hdr *IPv4, payload []byte) (quoteHdr, quotePay []byte) {
		wire, err := hdr.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		return wire[:hdr.HeaderLen()], wire[hdr.HeaderLen():]
	}

	// TTL-exceeded quoting a ping-RR with three stamps.
	rr := NewRecordRoute(9)
	for i := 0; i < 3; i++ {
		rr.Record(rtr)
	}
	rrHdr := &IPv4{TTL: 1, ID: 7, Protocol: ProtocolICMP, Src: src, Dst: dst}
	if err := rrHdr.SetRecordRoute(rr); err != nil {
		t.Fatal(err)
	}
	qh, qp := split(rrHdr, NewEchoRequest(7, 3, []byte("probe")).Marshal())
	wrap(NewError(ICMPTimeExceeded, CodeTTLExceeded, qh, qp))

	// Port unreachable quoting an RR-UDP probe.
	udp := &UDP{SrcPort: 33434, DstPort: 33435, Payload: []byte("u")}
	uw, err := udp.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	udpHdr := &IPv4{TTL: 32, ID: 8, Protocol: ProtocolUDP, Src: src, Dst: dst}
	if err := udpHdr.SetRecordRoute(NewRecordRoute(9)); err != nil {
		t.Fatal(err)
	}
	qh, qp = split(udpHdr, uw)
	wrap(NewError(ICMPDestUnreach, CodePortUnreachable, qh, qp))

	// TTL-exceeded quoting a timestamp probe.
	ts := NewTimestamp(TSAddr, 4)
	ts.Record(rtr, 1234)
	tsHdr := &IPv4{TTL: 1, ID: 9, Protocol: ProtocolICMP, Src: src, Dst: dst}
	if err := tsHdr.SetTimestamp(ts); err != nil {
		t.Fatal(err)
	}
	qh, qp = split(tsHdr, NewEchoRequest(9, 1, nil).Marshal())
	wrap(NewError(ICMPTimeExceeded, CodeTTLExceeded, qh, qp))

	// TTL-exceeded quoting an optionless echo.
	plain := &IPv4{TTL: 1, ID: 10, Protocol: ProtocolICMP, Src: src, Dst: dst}
	qh, qp = split(plain, NewEchoRequest(10, 2, nil).Marshal())
	wrap(NewError(ICMPTimeExceeded, CodeTTLExceeded, qh, qp))

	return seeds
}

// TestUpdateQuotedFuzzCorpus rewrites the committed seed corpus for
// FuzzDecodeICMPQuoted (run with -updatecorpus after changing the seed
// builders). The files use the standard `go test fuzz v1` encoding, so
// both plain `go test` runs and -fuzz campaigns pick them up.
func TestUpdateQuotedFuzzCorpus(t *testing.T) {
	if !*updateCorpus {
		t.Skip("run with -updatecorpus to rewrite testdata/fuzz seeds")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeICMPQuoted")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range quotedErrorSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d wire bytes)", path, len(s))
	}
}

// FuzzDecodeICMPQuoted drives the full reply-read path the prober uses:
// decode an IP packet, its ICMP message, the quoted datagram inside an
// error, and the RR/TS options on the quoted header. Nothing may panic,
// and any structure the decoders accept must be internally consistent
// and re-encodable.
func FuzzDecodeICMPQuoted(f *testing.F) {
	for _, s := range quotedErrorSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var ip IPv4
		payload, err := ip.Decode(data)
		if err != nil || ip.Protocol != ProtocolICMP {
			return
		}
		var m ICMP
		if err := m.Decode(payload); err != nil {
			return
		}
		if !m.Type.IsError() {
			return
		}
		var quoted IPv4
		transport, err := m.QuotedDatagram(&quoted)
		if err != nil {
			return
		}
		// The transport accessors must tolerate any quote length.
		QuotedEcho(transport)
		QuotedUDP(transport)

		var rr RecordRoute
		if ok, err := quoted.RecordRouteOption(&rr); err == nil && ok {
			if rr.RecordedCount() > rr.NumSlots() {
				t.Fatalf("quoted RR recorded %d > slots %d", rr.RecordedCount(), rr.NumSlots())
			}
			if _, err := rr.Option(); err != nil {
				t.Fatalf("accepted quoted RR fails to re-encode: %v", err)
			}
		}
		var ts Timestamp
		if ok, err := quoted.TimestampOption(&ts); err == nil && ok {
			if ts.RecordedCount() > len(ts.Entries) {
				t.Fatalf("quoted TS recorded %d > entries %d", ts.RecordedCount(), len(ts.Entries))
			}
			if _, err := ts.Option(); err != nil {
				t.Fatalf("accepted quoted TS fails to re-encode: %v", err)
			}
		}
		// An accepted quoted header must survive a re-encode round trip.
		wire, err := quoted.Marshal(transport)
		if err != nil {
			return // some decodable quotes (e.g. odd option sets) aren't canonical
		}
		var again IPv4
		if _, err := again.DecodeHeaderOnly(wire); err != nil {
			t.Fatalf("re-encoded quoted header rejected: %v", err)
		}
	})
}
