package packet

import (
	"fmt"
	"net/netip"
)

// Source-route option types (RFC 791 §3.1). Both share the Record Route
// wire layout (type, length, pointer, 4-byte slots); the semantic
// difference is that routers rewrite the destination from the route
// data as the packet travels.
const (
	// OptLSRR is Loose Source and Record Route: the packet must visit
	// the listed hops in order but may take any path between them.
	OptLSRR OptionType = 131
	// OptSSRR is Strict Source and Record Route: consecutive listed
	// hops must be directly connected.
	OptSSRR OptionType = 137
)

// SourceRoute is a decoded LSRR/SSRR option. The historical reverse-
// path measurement trick — route a probe *through* a remote hop and
// back — depended on it; it is almost universally filtered today, which
// is the 2005 tech report's headline and the contrast the Record Route
// study draws (§2).
//
// Wire behaviour (RFC 791): when the packet arrives at its current
// destination and the pointer is within the option, the router swaps
// the destination address with the next slot (recording its own
// address in that slot) and advances the pointer. When the pointer
// exceeds the length, the destination is final.
type SourceRoute struct {
	// Strict marks SSRR (type 137) rather than LSRR (131).
	Strict bool
	// Pointer is the 1-based octet offset of the next hop slot
	// (minimum 4).
	Pointer uint8
	// Slots holds the route data: unvisited next hops after the
	// pointer, recorded addresses before it.
	Slots []netip.Addr
}

// NewSourceRoute builds a source-route option visiting hops in order.
func NewSourceRoute(strict bool, hops []netip.Addr) (*SourceRoute, error) {
	if len(hops) < 1 || len(hops) > MaxRRSlots {
		return nil, fmt.Errorf("%w: source route with %d hops", ErrBadHeader, len(hops))
	}
	sr := &SourceRoute{Strict: strict, Pointer: rrFirstPointer, Slots: make([]netip.Addr, len(hops))}
	copy(sr.Slots, hops)
	return sr, nil
}

// Type returns the option's wire type.
func (s *SourceRoute) Type() OptionType {
	if s.Strict {
		return OptSSRR
	}
	return OptLSRR
}

// wireLen returns the option length octet value.
func (s *SourceRoute) wireLen() int { return rrFixedLen + 4*len(s.Slots) }

// Exhausted reports whether every listed hop has been visited: the
// current destination is final.
func (s *SourceRoute) Exhausted() bool { return int(s.Pointer) > s.wireLen() }

// NextHop returns the next unvisited hop, or an invalid address when
// the route is exhausted.
func (s *SourceRoute) NextHop() netip.Addr {
	idx := s.slotIndex()
	if idx < 0 || idx >= len(s.Slots) {
		return netip.Addr{}
	}
	return s.Slots[idx]
}

// slotIndex converts the pointer to a slot index.
func (s *SourceRoute) slotIndex() int {
	if int(s.Pointer) < rrFirstPointer {
		return -1
	}
	return (int(s.Pointer) - rrFirstPointer) / 4
}

// Advance consumes the next hop: the caller (a router that is the
// packet's current destination) records recordAddr — its own address on
// the outgoing interface — in the slot and moves the pointer, returning
// the new destination. ok is false when the route was exhausted or the
// address is not IPv4.
func (s *SourceRoute) Advance(recordAddr netip.Addr) (newDst netip.Addr, ok bool) {
	idx := s.slotIndex()
	if idx < 0 || idx >= len(s.Slots) || s.Exhausted() {
		return netip.Addr{}, false
	}
	recordAddr = recordAddr.Unmap()
	if !recordAddr.Is4() {
		return netip.Addr{}, false
	}
	newDst = s.Slots[idx]
	s.Slots[idx] = recordAddr
	s.Pointer += 4
	return newDst, true
}

// Recorded returns the already-visited slots (recorded addresses).
func (s *SourceRoute) Recorded() []netip.Addr {
	idx := s.slotIndex()
	if idx < 0 {
		return nil
	}
	if idx > len(s.Slots) {
		idx = len(s.Slots)
	}
	return s.Slots[:idx]
}

// Option serializes the source route to a raw TLV.
func (s *SourceRoute) Option() (Option, error) {
	if len(s.Slots) < 1 || len(s.Slots) > MaxRRSlots {
		return Option{}, fmt.Errorf("%w: source route with %d slots", ErrBadHeader, len(s.Slots))
	}
	data := make([]byte, 1+4*len(s.Slots))
	data[0] = s.Pointer
	for i, a := range s.Slots {
		b, ok := addr4(a)
		if !ok {
			return Option{}, fmt.Errorf("%w: slot %d is %v", ErrNotIPv4, i, a)
		}
		copy(data[1+4*i:], b[:])
	}
	return Option{Type: s.Type(), Data: data}, nil
}

// DecodeSourceRoute parses a raw LSRR/SSRR option into the receiver.
func (s *SourceRoute) DecodeSourceRoute(o Option) error {
	switch o.Type {
	case OptLSRR:
		s.Strict = false
	case OptSSRR:
		s.Strict = true
	default:
		return fmt.Errorf("%w: option type %v is not a source route", ErrBadHeader, o.Type)
	}
	if len(o.Data) < 1 || (len(o.Data)-1)%4 != 0 {
		return fmt.Errorf("%w: source route data length %d", ErrBadHeader, len(o.Data))
	}
	n := (len(o.Data) - 1) / 4
	if n < 1 || n > MaxRRSlots {
		return fmt.Errorf("%w: source route with %d slots", ErrBadHeader, n)
	}
	s.Pointer = o.Data[0]
	if s.Pointer < rrFirstPointer || (s.Pointer-rrFirstPointer)%4 != 0 {
		return fmt.Errorf("%w: source route pointer %d", ErrBadHeader, s.Pointer)
	}
	if cap(s.Slots) >= n {
		s.Slots = s.Slots[:n]
	} else {
		s.Slots = make([]netip.Addr, n)
	}
	for i := 0; i < n; i++ {
		var b [4]byte
		copy(b[:], o.Data[1+4*i:])
		s.Slots[i] = netip.AddrFrom4(b)
	}
	return nil
}

// FindSourceRoute locates the first LSRR/SSRR option in opts and
// decodes it into s, reporting presence.
func (s *SourceRoute) FindSourceRoute(opts []Option) (bool, error) {
	for _, o := range opts {
		if o.Type == OptLSRR || o.Type == OptSSRR {
			if err := s.DecodeSourceRoute(o); err != nil {
				return true, err
			}
			return true, nil
		}
	}
	return false, nil
}

// SourceRouteOption finds the header's source-route option, if any.
func (h *IPv4) SourceRouteOption(sr *SourceRoute) (bool, error) {
	return sr.FindSourceRoute(h.Options)
}

// SetSourceRoute replaces any existing source-route option in the
// header with the serialization of sr (or appends one).
func (h *IPv4) SetSourceRoute(sr *SourceRoute) error {
	opt, err := sr.Option()
	if err != nil {
		return err
	}
	for i := range h.Options {
		if h.Options[i].Type == OptLSRR || h.Options[i].Type == OptSSRR {
			h.Options[i] = opt
			return nil
		}
	}
	h.Options = append(h.Options, opt)
	return nil
}
