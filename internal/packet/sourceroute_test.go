package packet

import (
	"net/netip"
	"testing"
)

func TestSourceRouteAdvance(t *testing.T) {
	hops := []netip.Addr{addr("10.1.0.1"), addr("10.2.0.1")}
	sr, err := NewSourceRoute(false, hops)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Exhausted() {
		t.Fatal("fresh route exhausted")
	}
	if got := sr.NextHop(); got != addr("10.1.0.1") {
		t.Fatalf("NextHop = %v", got)
	}
	dst, ok := sr.Advance(addr("192.0.2.1"))
	if !ok || dst != addr("10.1.0.1") {
		t.Fatalf("Advance = %v, %v", dst, ok)
	}
	if got := sr.Recorded(); len(got) != 1 || got[0] != addr("192.0.2.1") {
		t.Errorf("Recorded = %v", got)
	}
	dst, ok = sr.Advance(addr("192.0.2.2"))
	if !ok || dst != addr("10.2.0.1") {
		t.Fatalf("second Advance = %v, %v", dst, ok)
	}
	if !sr.Exhausted() {
		t.Error("route not exhausted after visiting every hop")
	}
	if _, ok := sr.Advance(addr("192.0.2.3")); ok {
		t.Error("Advance succeeded on exhausted route")
	}
}

func TestSourceRouteRoundTrip(t *testing.T) {
	sr, err := NewSourceRoute(true, []netip.Addr{addr("10.1.0.1"), addr("10.2.0.1"), addr("10.3.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	sr.Advance(addr("192.0.2.1"))
	opt, err := sr.Option()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Type != OptSSRR {
		t.Fatalf("type = %v", opt.Type)
	}
	var back SourceRoute
	if err := back.DecodeSourceRoute(opt); err != nil {
		t.Fatal(err)
	}
	if !back.Strict || back.Pointer != sr.Pointer {
		t.Errorf("back = %+v", back)
	}
	if back.NextHop() != addr("10.2.0.1") {
		t.Errorf("NextHop after decode = %v", back.NextHop())
	}
}

func TestSourceRouteInHeader(t *testing.T) {
	sr, err := NewSourceRoute(false, []netip.Addr{addr("10.5.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	h := &IPv4{TTL: 9, Protocol: ProtocolICMP, Src: addr("10.0.0.1"), Dst: addr("10.9.0.1")}
	if err := h.SetSourceRoute(sr); err != nil {
		t.Fatal(err)
	}
	wire, err := h.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var backH IPv4
	if _, err := backH.Decode(wire); err != nil {
		t.Fatal(err)
	}
	var back SourceRoute
	found, err := backH.SourceRouteOption(&back)
	if !found || err != nil {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if back.NextHop() != addr("10.5.0.1") {
		t.Errorf("NextHop = %v", back.NextHop())
	}
}

func TestSourceRouteRejectsMalformed(t *testing.T) {
	var sr SourceRoute
	oversized := make([]byte, 1+4*10)
	oversized[0] = 4
	cases := []Option{
		{Type: OptNOP},
		{Type: OptLSRR, Data: nil},
		{Type: OptLSRR, Data: []byte{4, 1, 2}},
		{Type: OptSSRR, Data: []byte{2, 0, 0, 0, 0}}, // pointer below minimum
		{Type: OptLSRR, Data: oversized},
	}
	for i, o := range cases {
		if err := sr.DecodeSourceRoute(o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewSourceRoute(false, nil); err == nil {
		t.Error("empty hop list accepted")
	}
}
