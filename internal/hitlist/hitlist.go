// Package hitlist discovers one responsive representative address per
// advertised prefix, the role Fan & Heidemann's history-based hitlist
// (IMC 2010) plays for the paper's destination selection: "the address
// that was most responsive to previous ping probes".
//
// Discovery sweeps a small set of candidate last-octets per prefix with
// plain pings and selects the first responder (candidates are ordered
// by how commonly hosts sit at them). Prefixes with no responder are
// reported unresponsive but still carry a fallback representative so
// studies can probe them (the paper probed one address per prefix
// regardless).
package hitlist

import (
	"net/netip"
	"time"

	"recordroute/internal/probe"
)

// Entry is one prefix's discovery outcome.
type Entry struct {
	Prefix netip.Prefix
	// Addr is the chosen representative: the first responsive candidate,
	// or the first candidate when none responded.
	Addr netip.Addr
	// Responsive reports whether any candidate answered.
	Responsive bool
	// Probes counts the candidates tried.
	Probes int
}

// Options tunes discovery.
type Options struct {
	// Candidates are the last octets to try, in preference order.
	// Empty means the conventional {1, 2, 10, 33, 50, 100, 200, 254}.
	Candidates []uint8
	// Rate is the probing rate in packets per second; 0 means 100.
	Rate float64
	// Timeout is the per-probe wait; 0 means the prober default.
	Timeout time.Duration
}

func (o Options) candidates() []uint8 {
	if len(o.Candidates) == 0 {
		return []uint8{1, 2, 10, 33, 50, 100, 200, 254}
	}
	return o.Candidates
}

func (o Options) rate() float64 {
	if o.Rate <= 0 {
		return 100
	}
	return o.Rate
}

// candidateAddr substitutes the last octet of a /24-or-wider prefix's
// network address.
func candidateAddr(p netip.Prefix, octet uint8) netip.Addr {
	b := p.Masked().Addr().As4()
	b[3] = octet
	return netip.AddrFrom4(b)
}

// Discover sweeps the prefixes and calls done with one entry per
// prefix, in input order. Each prefix's candidates are tried
// sequentially (stopping at the first responder); prefixes proceed
// concurrently under the prober's pacing.
func Discover(p *probe.Prober, prefixes []netip.Prefix, opts Options, done func([]Entry)) {
	if len(prefixes) == 0 {
		p.Schedule(0, func() { done(nil) })
		return
	}
	cands := opts.candidates()
	entries := make([]Entry, len(prefixes))
	remaining := len(prefixes)
	interval := time.Duration(float64(time.Second) / opts.rate())

	var tryNext func(i, c int)
	tryNext = func(i, c int) {
		addr := candidateAddr(prefixes[i], cands[c])
		p.StartOne(probe.Spec{Dst: addr, Kind: probe.Ping}, opts.Timeout, func(r probe.Result) {
			entries[i].Probes++
			if r.Type == probe.EchoReply {
				entries[i].Addr = addr
				entries[i].Responsive = true
			} else if c+1 < len(cands) {
				tryNext(i, c+1)
				return
			} else {
				entries[i].Addr = candidateAddr(prefixes[i], cands[0])
			}
			remaining--
			if remaining == 0 {
				done(entries)
			}
		})
	}
	for i, pfx := range prefixes {
		i := i
		entries[i].Prefix = pfx
		p.Schedule(time.Duration(i)*interval, func() { tryNext(i, 0) })
	}
}

// Responsive filters entries to the responsive representatives.
func Responsive(entries []Entry) []Entry {
	var out []Entry
	for _, e := range entries {
		if e.Responsive {
			out = append(out, e)
		}
	}
	return out
}
