package hitlist

import (
	"net/netip"
	"testing"

	"recordroute/internal/probe"
	"recordroute/internal/topology"
)

func TestCandidateAddr(t *testing.T) {
	p := netip.MustParsePrefix("100.7.3.0/24")
	if got := candidateAddr(p, 254); got != netip.MustParseAddr("100.7.3.254") {
		t.Errorf("candidateAddr = %v", got)
	}
	// Non-canonical prefix input is masked first.
	q := netip.PrefixFrom(netip.MustParseAddr("100.7.3.77"), 24)
	if got := candidateAddr(q, 1); got != netip.MustParseAddr("100.7.3.1") {
		t.Errorf("candidateAddr (unmasked input) = %v", got)
	}
}

// TestDiscoverAgainstSim runs hitlist discovery against a generated
// Internet and compares the outcome with ground truth: every prefix
// whose host is ping-responsive (at a swept octet) must be discovered
// at exactly the host's address.
func TestDiscoverAgainstSim(t *testing.T) {
	topo := topology.MustBuild(topology.DefaultConfig(topology.Epoch2016).Scale(0.15))
	var vp *topology.VP
	for _, v := range topo.VPs {
		if !v.SourceRateLimited {
			vp = v
			break
		}
	}
	p := probe.New(probe.NewSimTransport(vp.Host, topo.Net.Engine()), 0x6200)

	var prefixes []netip.Prefix
	byPrefix := make(map[netip.Prefix]*topology.Dest)
	for _, d := range topo.Dests[:200] {
		prefixes = append(prefixes, d.Prefix)
		byPrefix[d.Prefix] = d
	}

	var entries []Entry
	Discover(p, prefixes, Options{Rate: 2000}, func(es []Entry) { entries = es })
	topo.Net.Engine().Run()

	if len(entries) != len(prefixes) {
		t.Fatalf("entries = %d, want %d", len(entries), len(prefixes))
	}
	foundResponsive := 0
	for _, e := range entries {
		d := byPrefix[e.Prefix]
		if d.GTPingResponsive {
			if !e.Responsive {
				t.Errorf("prefix %v: responsive host %v not discovered", e.Prefix, d.Addr)
				continue
			}
			if e.Addr != d.Addr {
				t.Errorf("prefix %v: discovered %v, host is %v", e.Prefix, e.Addr, d.Addr)
			}
			foundResponsive++
		} else {
			if e.Responsive {
				t.Errorf("prefix %v: discovery found a responder where none lives", e.Prefix)
			}
			if !e.Addr.IsValid() {
				t.Errorf("prefix %v: no fallback representative", e.Prefix)
			}
		}
	}
	if foundResponsive == 0 {
		t.Fatal("no responsive prefixes in sample")
	}
	t.Logf("discovered %d responsive representatives of %d prefixes", foundResponsive, len(prefixes))
}

func TestDiscoverEmpty(t *testing.T) {
	topo := topology.MustBuild(topology.DefaultConfig(topology.Epoch2016).Scale(0.15))
	p := probe.New(probe.NewSimTransport(topo.VPs[0].Host, topo.Net.Engine()), 0x6201)
	called := false
	Discover(p, nil, Options{}, func(es []Entry) { called = es == nil })
	topo.Net.Engine().Run()
	if !called {
		t.Error("done not called for empty input")
	}
}

func TestResponsiveFilter(t *testing.T) {
	es := []Entry{{Responsive: true}, {Responsive: false}, {Responsive: true}}
	if got := len(Responsive(es)); got != 2 {
		t.Errorf("Responsive = %d entries", got)
	}
}
