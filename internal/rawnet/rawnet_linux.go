//go:build linux

// Package rawnet implements the probe Transport over Linux raw sockets,
// so the same Prober that drives the simulator can send real ping-RR
// probes on a live network. Requires CAP_NET_RAW (typically root).
//
// The probe engine is single-threaded by contract; rawnet serializes
// receive callbacks and timer callbacks behind one mutex and exposes Do
// for callers to enter that context.
package rawnet

import (
	"fmt"
	"net/netip"
	"sync"
	"syscall"
	"time"
)

// Transport sends and receives raw IPv4 datagrams.
type Transport struct {
	local   netip.Addr
	sendFD  int
	recvFD  int
	start   time.Time
	mu      sync.Mutex
	recv    func(at time.Duration, pkt []byte)
	closed  bool
	readErr error
}

// New opens raw send (IP_HDRINCL) and receive (ICMP) sockets bound to
// the given local address and starts the reader.
func New(local netip.Addr) (*Transport, error) {
	if !local.Is4() {
		return nil, fmt.Errorf("rawnet: local address %v is not IPv4", local)
	}
	sendFD, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_RAW)
	if err != nil {
		return nil, fmt.Errorf("rawnet: send socket: %w", err)
	}
	if err := syscall.SetsockoptInt(sendFD, syscall.IPPROTO_IP, syscall.IP_HDRINCL, 1); err != nil {
		syscall.Close(sendFD)
		return nil, fmt.Errorf("rawnet: IP_HDRINCL: %w", err)
	}
	recvFD, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_ICMP)
	if err != nil {
		syscall.Close(sendFD)
		return nil, fmt.Errorf("rawnet: recv socket: %w", err)
	}
	t := &Transport{local: local, sendFD: sendFD, recvFD: recvFD, start: time.Now()}
	go t.readLoop()
	return t, nil
}

// LocalAddr implements probe.Transport.
func (t *Transport) LocalAddr() netip.Addr { return t.local }

// Now implements probe.Transport: real time since the transport opened.
func (t *Transport) Now() time.Duration { return time.Since(t.start) }

// Inject implements probe.Transport: the destination is read from the
// packet's own IPv4 header.
func (t *Transport) Inject(pkt []byte) {
	if len(pkt) < 20 {
		return
	}
	var dst [4]byte
	copy(dst[:], pkt[16:20])
	addr := syscall.SockaddrInet4{Addr: dst}
	// Sendto errors on a measurement path are recorded, not fatal: the
	// probe will simply time out, like any lost packet.
	if err := syscall.Sendto(t.sendFD, pkt, 0, &addr); err != nil && t.readErr == nil {
		t.readErr = fmt.Errorf("rawnet: sendto %v: %w", netip.AddrFrom4(dst), err)
	}
}

// SetReceiver implements probe.Transport. It must be called from inside
// the event context (i.e. within Do, which is where probe.New runs), so
// it does not acquire the lock itself.
func (t *Transport) SetReceiver(fn func(at time.Duration, pkt []byte)) {
	t.recv = fn
}

// Schedule implements probe.Transport via real timers, entering the
// serialized event context when firing.
func (t *Transport) Schedule(d time.Duration, fn func()) {
	time.AfterFunc(d, func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		if !t.closed {
			fn()
		}
	})
}

// Do runs fn inside the transport's serialized event context; callers
// must wrap Prober invocations (StartOne, StartBatch) in Do.
func (t *Transport) Do(fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fn()
}

// Err returns the first asynchronous send/receive error, if any.
func (t *Transport) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.readErr
}

// Close shuts the sockets down; pending timers become no-ops.
func (t *Transport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	e1 := syscall.Close(t.sendFD)
	e2 := syscall.Close(t.recvFD)
	if e1 != nil {
		return e1
	}
	return e2
}

// readLoop delivers received datagrams to the registered receiver.
func (t *Transport) readLoop() {
	buf := make([]byte, 65536)
	for {
		n, _, err := syscall.Recvfrom(t.recvFD, buf, 0)
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return
		}
		if err != nil {
			if t.readErr == nil {
				t.readErr = fmt.Errorf("rawnet: recvfrom: %w", err)
			}
			t.mu.Unlock()
			return
		}
		if t.recv != nil && n > 0 {
			t.recv(t.Now(), buf[:n])
		}
		t.mu.Unlock()
	}
}
