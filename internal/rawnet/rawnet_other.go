//go:build !linux

// Package rawnet implements the probe Transport over raw sockets.
// Only Linux is supported; other platforms get a constructor that
// reports so.
package rawnet

import (
	"errors"
	"net/netip"
	"time"
)

// ErrUnsupported reports that raw-socket probing is unavailable.
var ErrUnsupported = errors.New("rawnet: raw-socket probing is only implemented on linux")

// Transport is unavailable on this platform.
type Transport struct{}

// New always fails on non-Linux platforms.
func New(local netip.Addr) (*Transport, error) { return nil, ErrUnsupported }

// LocalAddr is unreachable (New never succeeds).
func (t *Transport) LocalAddr() netip.Addr { return netip.Addr{} }

// Now is unreachable.
func (t *Transport) Now() time.Duration { return 0 }

// Inject is unreachable.
func (t *Transport) Inject(pkt []byte) {}

// SetReceiver is unreachable.
func (t *Transport) SetReceiver(fn func(at time.Duration, pkt []byte)) {}

// Schedule is unreachable.
func (t *Transport) Schedule(d time.Duration, fn func()) {}

// Do is unreachable.
func (t *Transport) Do(fn func()) {}

// Err is unreachable.
func (t *Transport) Err() error { return ErrUnsupported }

// Close is unreachable.
func (t *Transport) Close() error { return nil }
