//go:build linux

package rawnet

import (
	"net/netip"
	"os"
	"testing"
	"time"

	"recordroute/internal/probe"
)

// interfaceCheck verifies Transport satisfies probe.Transport at compile
// time.
var _ probe.Transport = (*Transport)(nil)

// TestLoopbackPing sends a real ICMP echo request to 127.0.0.1 through
// raw sockets and matches the kernel's reply. Needs CAP_NET_RAW; the
// test skips when sockets cannot be opened or loopback doesn't answer
// (some sandboxes drop raw ICMP).
func TestLoopbackPing(t *testing.T) {
	if os.Geteuid() != 0 {
		t.Skip("needs root for raw sockets")
	}
	lo := netip.MustParseAddr("127.0.0.1")
	tr, err := New(lo)
	if err != nil {
		t.Skipf("raw sockets unavailable: %v", err)
	}
	defer tr.Close()

	var res *probe.Result
	done := make(chan struct{})
	tr.Do(func() {
		p := probe.New(tr, uint16(os.Getpid()&0xffff))
		p.StartOne(probe.Spec{Dst: lo, Kind: probe.Ping}, 2*time.Second, func(r probe.Result) {
			res = &r
			close(done)
		})
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("probe never resolved")
	}
	if res.Type != probe.EchoReply {
		t.Skipf("loopback did not answer (%v); sandboxed network", res.Type)
	}
	if res.From != lo {
		t.Errorf("reply from %v", res.From)
	}
	if res.RTT() <= 0 {
		t.Error("non-positive RTT")
	}
}

// TestLoopbackPingRR exercises a real Record Route probe over loopback.
// The Linux loopback path typically returns the reply without
// processing options hop-by-hop, so only option presence is asserted
// loosely; the point is that crafted RR packets are accepted by the
// kernel and the matcher handles real traffic.
func TestLoopbackPingRR(t *testing.T) {
	if os.Geteuid() != 0 {
		t.Skip("needs root for raw sockets")
	}
	lo := netip.MustParseAddr("127.0.0.1")
	tr, err := New(lo)
	if err != nil {
		t.Skipf("raw sockets unavailable: %v", err)
	}
	defer tr.Close()

	var res *probe.Result
	done := make(chan struct{})
	tr.Do(func() {
		p := probe.New(tr, uint16(os.Getpid()&0xffff)^0x5555)
		p.StartOne(probe.Spec{Dst: lo, Kind: probe.PingRR}, 2*time.Second, func(r probe.Result) {
			res = &r
			close(done)
		})
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("probe never resolved")
	}
	if res.Type == probe.NoResponse {
		t.Skip("loopback did not answer ping-RR; kernel may drop options")
	}
	t.Logf("loopback ping-RR: %v hasRR=%v hops=%v", res.Type, res.HasRR, res.RR)
}
