package measure

import (
	"context"
	"net/netip"

	"recordroute/internal/netsim"
	"recordroute/internal/obs"
	"recordroute/internal/probe"
	"recordroute/internal/topology"
	"recordroute/internal/trace"
)

// Fleet is the campaign surface the study layer measures through: a set
// of vantage points that can fan batches out and run the virtual clock
// to quiescence. It is implemented by Campaign (one shared engine) and
// ParallelCampaign (sharded engine replicas with a deterministic merge),
// so experiments choose an execution strategy without changing shape.
//
// Partial-results contract: when a shard of a sharded executor fails
// mid-primitive (a panic while its engine drains), the failure is
// contained to that shard. The primitive still returns, merging the
// surviving shards' results as usual; the failed shard's VPs are
// missing (or, if the failure struck between batch completions,
// partial) in the returned maps and are excluded from every later
// primitive. ShardErrors reports exactly which VPs were lost and why —
// callers that need completeness must check it after each primitive.
// The single-engine Campaign has no shard boundary to contain a
// failure, so there a panic propagates to the caller and ShardErrors
// is always empty.
type Fleet interface {
	// VP returns the named vantage point, or nil.
	VP(name string) *VantagePoint
	// Run drains pending events on every engine the fleet spans and
	// leaves all fleet clocks at the same virtual time.
	Run()
	// PingRRAll sends one ping-RR from every VP to every destination.
	PingRRAll(dests []netip.Addr, opts probe.Options, orderFor func(vp string, dests []netip.Addr) []netip.Addr) map[string][]probe.Result
	// PingAll sends count plain pings per destination from every VP.
	PingAll(dests []netip.Addr, count int, opts probe.Options) map[string][][]probe.Result
	// PingRRUDPAll sends one ping-RRudp from every VP to its targets.
	PingRRUDPAll(perVP map[string][]netip.Addr, opts probe.Options) map[string][]probe.Result
	// PingBatchVP sends count plain pings per destination from the
	// single named VP — the origin phases the paper runs from one
	// vantage point. A sharded executor fans contiguous destination
	// ranges across its engine replicas; send times and sequence numbers
	// derive from each destination's global index, so the merge is
	// invariant under shard count mod ReplyIPID (DESIGN.md §15).
	// Results are grouped per destination in send order; nil when the
	// VP is unknown.
	PingBatchVP(vp string, dests []netip.Addr, count int, opts probe.Options) [][]probe.Result
	// PingSeriesVP probes every address rounds times from the named VP,
	// round-major interleaved (the alias IP-ID sampling schedule), and
	// returns flat results in global spec order (round*len(addrs)+i). A
	// sharded executor partitions addresses across replicas keeping all
	// addresses that share group[i] on one replica, so IP-ID series
	// compared pairwise stay co-located with their shared counters;
	// group may be nil when no such constraint exists.
	PingSeriesVP(vp string, addrs []netip.Addr, group []int, rounds int, opts probe.Options) []probe.Result
	// DoubletreeAll runs one Doubletree traceroute round: each VP
	// traces its listed targets sequentially under the session's stop
	// sets (exhaustively when opts.Exhaustive), and the per-VP deltas
	// are merged into the session's global set afterwards.
	DoubletreeAll(perVP map[string][]netip.Addr, sess *trace.Session, opts trace.Options) map[string]*trace.VPRound
	// ShardErrors reports executor slices that failed during earlier
	// primitives, in shard order; empty while every shard is healthy.
	// See the partial-results contract above.
	ShardErrors() []ShardError
	// Observe attaches an observability configuration to every engine
	// and prober the fleet owns; nil or inactive observers are no-ops.
	Observe(o *obs.Observer)
	// Metrics captures a labeled snapshot of the fleet's counters, one
	// ShardMetrics per engine the fleet spans.
	Metrics(label string) *obs.Snapshot
}

// Campaign fans measurements across many vantage points concurrently
// inside one simulation engine, offering synchronous collect-all APIs:
// every VP's batch is started, the engine runs to quiescence, and the
// per-VP results come back keyed by VP name.
type Campaign struct {
	Eng *netsim.Engine
	Net *netsim.Network
	VPs []*VantagePoint

	byName map[string]*VantagePoint
	ctx    context.Context // nil unless cancellation is armed (SetContext)
}

// NewCampaign builds a campaign over the given topology VPs (any mix of
// platform and cloud VPs). Prober identifiers are assigned sequentially
// so no two VPs cross-match.
func NewCampaign(topo *topology.Topology, vps []*topology.VP) *Campaign {
	c := &Campaign{
		Eng:    topo.Net.Engine(),
		Net:    topo.Net,
		byName: make(map[string]*VantagePoint, len(vps)),
	}
	for i, v := range vps {
		vp := NewVantagePoint(v.Name, v.Host, topo.Net.Engine(), uint16(0x4000+i))
		c.VPs = append(c.VPs, vp)
		c.byName[v.Name] = vp
	}
	return c
}

// VP returns the named vantage point, or nil.
func (c *Campaign) VP(name string) *VantagePoint {
	return c.byName[name]
}

// SetContext arms cooperative cancellation, checked at the start of
// every primitive: once ctx is done the next primitive aborts with a
// Canceled panic (classify via CanceledFrom) instead of starting more
// probes. The single shared engine has no per-shard containment, so
// unlike ParallelCampaign there is no per-batch checkpoint abort — a
// running drain always completes.
func (c *Campaign) SetContext(ctx context.Context) { c.ctx = ctx }

// Run drains the engine's event queue.
func (c *Campaign) Run() {
	checkCanceled(c.ctx)
	c.Eng.Run()
}

// ShardErrors always returns nil: the single shared engine has no
// shard boundary to contain a failure, so a panic propagates to the
// caller instead of being recovered per-shard.
func (c *Campaign) ShardErrors() []ShardError { return nil }

// PingRRAll sends one ping-RR from every VP to every destination in
// dests (per-VP order may be permuted via orderFor) and returns results
// keyed by VP name, in that VP's send order.
func (c *Campaign) PingRRAll(dests []netip.Addr, opts probe.Options, orderFor func(vp string, dests []netip.Addr) []netip.Addr) map[string][]probe.Result {
	checkCanceled(c.ctx)
	out := make(map[string][]probe.Result, len(c.VPs))
	for _, vp := range c.VPs {
		vp := vp
		ds := dests
		if orderFor != nil {
			ds = orderFor(vp.Name, dests)
		}
		vp.PingRRBatch(ds, opts, func(rs []probe.Result) { out[vp.Name] = rs })
	}
	c.Eng.Run()
	return out
}

// PingAll sends count plain pings per destination from every VP.
func (c *Campaign) PingAll(dests []netip.Addr, count int, opts probe.Options) map[string][][]probe.Result {
	checkCanceled(c.ctx)
	out := make(map[string][][]probe.Result, len(c.VPs))
	for _, vp := range c.VPs {
		vp := vp
		vp.PingBatch(dests, count, opts, func(rs [][]probe.Result) { out[vp.Name] = rs })
	}
	c.Eng.Run()
	return out
}

// PingBatchVP sends count plain pings per destination from the single
// named VP over the shared engine — the full [0,len(dests)) range of
// the indexed schedule, byte-identical to what a sharded fleet's merged
// ranges produce (mod ReplyIPID).
func (c *Campaign) PingBatchVP(name string, dests []netip.Addr, count int, opts probe.Options) [][]probe.Result {
	checkCanceled(c.ctx)
	vp := c.byName[name]
	if vp == nil {
		return nil
	}
	var out [][]probe.Result
	vp.PingBatchRange(dests, 0, len(dests), count, opts, func(gs [][]probe.Result) { out = gs })
	c.Eng.Run()
	return out
}

// PingSeriesVP probes every address rounds times from the named VP on
// the shared engine, in round-major interleaved order. group is unused
// here: one engine holds every counter.
func (c *Campaign) PingSeriesVP(name string, addrs []netip.Addr, group []int, rounds int, opts probe.Options) []probe.Result {
	checkCanceled(c.ctx)
	vp := c.byName[name]
	if vp == nil {
		return nil
	}
	sel := make([]int, len(addrs))
	for i := range sel {
		sel[i] = i
	}
	var out []probe.Result
	vp.PingSeriesSlice(addrs, sel, rounds, opts, func(rs []probe.Result) { out = rs })
	c.Eng.Run()
	return out
}

// PingRRUDPAll sends one ping-RRudp from every VP to its listed targets.
func (c *Campaign) PingRRUDPAll(perVP map[string][]netip.Addr, opts probe.Options) map[string][]probe.Result {
	checkCanceled(c.ctx)
	out := make(map[string][]probe.Result, len(c.VPs))
	for _, vp := range c.VPs {
		vp := vp
		ds := perVP[vp.Name]
		if len(ds) == 0 {
			continue
		}
		vp.PingRRUDPBatch(ds, opts, func(rs []probe.Result) { out[vp.Name] = rs })
	}
	c.Eng.Run()
	return out
}

// PingTSAll sends one Internet Timestamp probe from every VP to every
// destination.
func (c *Campaign) PingTSAll(dests []netip.Addr, opts probe.Options) map[string][]probe.Result {
	checkCanceled(c.ctx)
	out := make(map[string][]probe.Result, len(c.VPs))
	for _, vp := range c.VPs {
		vp := vp
		vp.PingTSBatch(dests, opts, func(rs []probe.Result) { out[vp.Name] = rs })
	}
	c.Eng.Run()
	return out
}

// TracerouteAll traces each VP's listed targets.
func (c *Campaign) TracerouteAll(perVP map[string][]netip.Addr, opts TraceOptions) map[string][]Trace {
	checkCanceled(c.ctx)
	out := make(map[string][]Trace, len(c.VPs))
	for _, vp := range c.VPs {
		vp := vp
		ds := perVP[vp.Name]
		if len(ds) == 0 {
			continue
		}
		vp.TracerouteBatch(ds, opts, func(ts []Trace) { out[vp.Name] = ts })
	}
	c.Eng.Run()
	return out
}

// TTLPingRRAll sends TTL-limited ping-RRs: per VP, targets[i] probed
// with ttls[i].
func (c *Campaign) TTLPingRRAll(perVP map[string][]netip.Addr, ttls map[string][]uint8, opts probe.Options) map[string][]probe.Result {
	checkCanceled(c.ctx)
	out := make(map[string][]probe.Result, len(c.VPs))
	for _, vp := range c.VPs {
		vp := vp
		ds := perVP[vp.Name]
		if len(ds) == 0 {
			continue
		}
		vp.TTLPingRRBatch(ds, ttls[vp.Name], opts, func(rs []probe.Result) { out[vp.Name] = rs })
	}
	c.Eng.Run()
	return out
}
