package measure

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"recordroute/internal/probe"
)

// errDiskFull stands in for ENOSPC in the fault-injected writers.
var errDiskFull = errors.New("no space left on device")

// failAfter returns an io.Writer that forwards to w until n bytes have
// passed, fails the write that crosses the boundary (after a partial
// forward — a torn line, like a real full disk), and fails everything
// after that.
type failAfter struct {
	w      io.Writer
	n      int
	failed bool
}

func (fw *failAfter) Write(p []byte) (int, error) {
	if fw.failed {
		return 0, errDiskFull
	}
	if len(p) <= fw.n {
		fw.n -= len(p)
		return fw.w.Write(p)
	}
	k := fw.n
	fw.failed = true
	if k > 0 {
		fw.w.Write(p[:k])
	}
	return k, errDiskFull
}

// withWriteShim installs a journal write shim for the test and restores
// the production path afterwards.
func withWriteShim(t *testing.T, shim func(path string, f *os.File) io.Writer) {
	t.Helper()
	prev := WriteShim
	WriteShim = shim
	t.Cleanup(func() { WriteShim = prev })
}

// TestJournalDegradeOnWriteError is the disk-full regression for the
// journal write path: a failing write must not panic (it would kill the
// shard worker holding the batch), it must flip the journal into the
// degraded state, keep feeding the streaming sink, and leave a valid
// JSONL prefix a later resume accepts.
func TestJournalDegradeOnWriteError(t *testing.T) {
	dir := t.TempDir()
	meta := testMeta()

	// Size the fault: let the meta line through, die 20 bytes into the
	// next record.
	probeJ, err := CreateJournal(filepath.Join(dir, "probe.jsonl"), meta)
	if err != nil {
		t.Fatal(err)
	}
	probeJ.Close()
	healthy, err := os.ReadFile(filepath.Join(dir, "probe.jsonl"))
	if err != nil {
		t.Fatal(err)
	}

	withWriteShim(t, func(path string, f *os.File) io.Writer {
		return &failAfter{w: f, n: len(healthy) + 20}
	})
	path := filepath.Join(dir, "camp.jsonl")
	j, err := CreateJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}

	a := netip.MustParseAddr
	rs := []probe.Result{{
		Spec: probe.Spec{Dst: a("10.0.0.1"), Kind: probe.PingRR},
		Type: probe.EchoReply, From: a("10.0.0.1"),
	}}
	sank := 0
	j.SetSink(func(vp string, got []probe.Result) { sank++ })

	j.beginPhase("ping-rr-all") // torn write: degrades here
	if err := j.Degraded(); err == nil {
		t.Fatal("journal not degraded after failed write")
	} else if !errors.Is(err, errDiskFull) {
		t.Fatalf("Degraded() = %v, want wrapped disk-full", err)
	}
	j.recordResults(0, "ping-rr-all", "mlab-0", rs) // post-degrade: silent no-op on disk...
	j.recordResults(0, "ping-rr-all", "mlab-1", rs)
	if sank != 2 {
		t.Fatalf("streaming sink fired %d times after degradation, want 2", sank)
	}
	j.Close()

	// The file holds the healthy prefix plus at most one torn line;
	// resume must accept it and archive nothing from after the fault.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(got), string(healthy)) {
		t.Fatalf("degraded journal lost its healthy prefix:\n%q", got)
	}
	r, err := ResumeJournal(path, meta)
	if err != nil {
		t.Fatalf("resume of degraded journal: %v", err)
	}
	defer r.Close()
	if n := r.Archived(); n != 0 {
		t.Fatalf("Archived() = %d from a journal degraded before any batch, want 0", n)
	}
}

// TestJournalDegradedCampaignCompletes runs a whole journaled campaign
// against a disk that fills up mid-run: the campaign must finish with
// no shard errors and produce exactly the batches an un-faulted run
// produces — journaling degrades, results don't.
func TestJournalDegradedCampaignCompletes(t *testing.T) {
	cfg := testConfig()
	meta := testMeta()
	opts := probe.Options{Rate: 100}
	dir := t.TempDir()

	// Baseline: healthy journaled run.
	base, err := NewParallelCampaign(cfg, meta.Shards)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := CreateJournal(filepath.Join(dir, "base.jsonl"), meta)
	if err != nil {
		t.Fatal(err)
	}
	base.AttachJournal(bj)
	base.mustInit()
	var ds []netip.Addr
	for _, d := range base.replicas[0].topo.Dests {
		ds = append(ds, d.Addr)
		if len(ds) == 12 {
			break
		}
	}
	baseRR := base.PingRRAll(ds, opts, nil)
	bj.Close()

	// Faulted run: the journal's disk dies 600 bytes in (mid-campaign,
	// after the meta record).
	withWriteShim(t, func(path string, f *os.File) io.Writer {
		return &failAfter{w: f, n: 600}
	})
	faulted, err := NewParallelCampaign(cfg, meta.Shards)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := CreateJournal(filepath.Join(dir, "faulted.jsonl"), meta)
	if err != nil {
		t.Fatal(err)
	}
	faulted.AttachJournal(fj)
	faultRR := faulted.PingRRAll(ds, opts, nil)
	if errs := faulted.ShardErrors(); len(errs) != 0 {
		t.Fatalf("disk-full killed shards: %v", errs)
	}
	if fj.Degraded() == nil {
		t.Fatal("journal did not degrade (shim never tripped? raise the campaign size)")
	}
	fj.Close()

	comparePerVP(t, "degraded-journal campaign", baseRR, faultRR)
}

// TestJournalFsyncRoundTrip: the fsync-per-checkpoint option must not
// change what the journal records or how it resumes.
func TestJournalFsyncRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.jsonl")
	meta := testMeta()
	j, err := CreateJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	j.SetFsync(true)
	a := netip.MustParseAddr
	j.beginPhase("ping-rr-all")
	j.recordResults(0, "ping-rr-all", "mlab-0", []probe.Result{{
		Spec: probe.Spec{Dst: a("10.0.0.1"), Kind: probe.PingRR},
		Type: probe.EchoReply, From: a("10.0.0.1"),
	}})
	if err := j.Degraded(); err != nil {
		t.Fatalf("fsync path degraded the journal: %v", err)
	}
	j.Close()

	r, err := ResumeJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.Archived(); n != 1 {
		t.Fatalf("Archived() = %d after fsynced run, want 1", n)
	}
}

// TestJournalResumeTruncationEveryOffset hand-truncates a finished
// journal at every byte offset and resumes each wound: no offset may
// error out or resurrect a partial record — the archive must always be
// exactly the complete vp lines the prefix still holds. This is the
// brute-force version of the torn-tail regression: a crash can cut the
// file anywhere, so every cut must be survivable.
func TestJournalResumeTruncationEveryOffset(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	meta := testMeta()
	j, err := CreateJournal(full, meta)
	if err != nil {
		t.Fatal(err)
	}
	a := netip.MustParseAddr
	rs := []probe.Result{{
		Spec: probe.Spec{Dst: a("10.0.0.1"), Kind: probe.PingRR},
		Type: probe.EchoReply, From: a("10.0.0.1"),
	}}
	j.beginPhase("ping-rr-all")
	j.recordResults(0, "ping-rr-all", "mlab-0", rs)
	j.recordResults(0, "ping-rr-all", "mlab-1", rs)
	j.Close()

	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Count vp lines complete at each cut: a vp record only exists once
	// its trailing newline does.
	vpLinesBefore := func(cut int) int {
		n := 0
		for _, line := range strings.SplitAfter(string(data[:cut]), "\n") {
			if strings.HasSuffix(line, "\n") && strings.Contains(line, `"t":"vp"`) {
				n++
			}
		}
		return n
	}

	wound := filepath.Join(dir, "wound.jsonl")
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(wound, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := ResumeJournal(wound, meta)
		if err != nil {
			t.Fatalf("cut at byte %d: resume failed: %v", cut, err)
		}
		if got, want := r.Archived(), vpLinesBefore(cut); got != want {
			t.Fatalf("cut at byte %d: Archived() = %d, want %d", cut, got, want)
		}
		r.Close()
	}
}

// TestParallelCancelResume is the measure-layer half of job
// cancellation and deadlines: a context canceled mid-campaign aborts
// each shard at its next per-VP checkpoint (after the batch is
// journaled), the canceled run's journal resumes into a fresh fleet,
// and the resumed campaign reproduces the uninterrupted baseline
// byte-identically mod ReplyIPID — a deadline is a pause, not a loss.
func TestParallelCancelResume(t *testing.T) {
	cfg := testConfig()
	meta := testMeta()
	opts := probe.Options{Rate: 100}
	dir := t.TempDir()

	newFleet := func(name string, resume bool) *ParallelCampaign {
		t.Helper()
		pc, err := NewParallelCampaign(cfg, meta.Shards)
		if err != nil {
			t.Fatal(err)
		}
		var j *Journal
		if resume {
			j, err = ResumeJournal(filepath.Join(dir, name), meta)
		} else {
			j, err = CreateJournal(filepath.Join(dir, name), meta)
		}
		if err != nil {
			t.Fatal(err)
		}
		pc.AttachJournal(j)
		return pc
	}

	base := newFleet("base.jsonl", false)
	base.mustInit()
	var ds []netip.Addr
	for _, d := range base.replicas[0].topo.Dests {
		ds = append(ds, d.Addr)
		if len(ds) == 12 {
			break
		}
	}
	baseRR := base.PingRRAll(ds, opts, nil)
	base.Journal().Close()

	// Canceled run: the context dies after the second journaled batch,
	// so every shard aborts at its next checkpoint.
	ctx, cancel := context.WithCancel(context.Background())
	cut := newFleet("cut.jsonl", false)
	cut.SetContext(ctx)
	batches := 0
	cut.Journal().SetSink(func(vp string, rs []probe.Result) {
		batches++
		if batches == 2 {
			cancel()
		}
	})
	cut.PingRRAll(ds, opts, nil)
	errs := cut.ShardErrors()
	if len(errs) == 0 {
		t.Fatal("canceled campaign reported no shard errors")
	}
	for _, e := range errs {
		if want, got := context.Canceled.Error(), e.Err.Error(); !strings.Contains(got, want) {
			t.Fatalf("shard error %v does not carry the cancellation cause", e)
		}
		if strings.Contains(fmt.Sprint(e.Err), "goroutine") {
			t.Fatalf("cooperative abort rendered with a panic stack: %v", e)
		}
	}
	// A later primitive on the same canceled fleet must refuse at the
	// phase boundary, on the caller's goroutine, as a Canceled panic.
	func() {
		defer func() {
			if err, ok := CanceledFrom(recover()); !ok || !errors.Is(err, context.Canceled) {
				t.Errorf("primitive after cancel: recover = %v, want Canceled{context.Canceled}", err)
			}
		}()
		cut.PingAll(ds[:4], 2, opts)
	}()
	cut.Journal().Close()

	// Resume into an un-canceled fleet: the journaled batches are
	// skipped, the rest re-probed, the whole equal to the baseline.
	res := newFleet("cut.jsonl", true)
	if res.Journal().Archived() == 0 {
		t.Fatal("canceled run journaled nothing before aborting")
	}
	resRR := res.PingRRAll(ds, opts, nil)
	if errs := res.ShardErrors(); len(errs) != 0 {
		t.Fatalf("resumed fleet reported shard errors: %v", errs)
	}
	res.Journal().Close()
	comparePerVP(t, "resume after cancel", baseRR, resRR)
}

// TestCampaignCancelAtPrimitiveStart covers the shared-engine Campaign:
// its primitives check the context only at their start (no per-batch
// aborts on a shared engine), so a done context refuses the next
// primitive as a Canceled panic.
func TestCampaignCancelAtPrimitiveStart(t *testing.T) {
	topo := testTopo(t)
	c := NewCampaign(topo, unlimitedVPs(topo)[:2])
	ctx, cancel := context.WithCancel(context.Background())
	c.SetContext(ctx)
	ds := responsiveDests(topo, 4)
	if got := c.PingRRAll(ds, probe.Options{Rate: 100}, nil); len(got) == 0 {
		t.Fatal("live context blocked the campaign")
	}
	cancel()
	func() {
		defer func() {
			if err, ok := CanceledFrom(recover()); !ok || !errors.Is(err, context.Canceled) {
				t.Errorf("recover = %v, want Canceled{context.Canceled}", err)
			}
		}()
		c.PingRRAll(ds, probe.Options{Rate: 100}, nil)
	}()
}
