package measure

import (
	"net/netip"
	"testing"

	"recordroute/internal/probe"
)

func TestCampaignVPLookup(t *testing.T) {
	topo := testTopo(t)
	c := NewCampaign(topo, topo.VPs[:3])
	if c.VP(topo.VPs[0].Name) == nil {
		t.Error("known VP not found")
	}
	if c.VP("nope") != nil {
		t.Error("unknown VP found")
	}
}

func TestCampaignPingAll(t *testing.T) {
	topo := testTopo(t)
	vps := unlimitedVPs(topo)[:2]
	c := NewCampaign(topo, vps)
	dests := responsiveDests(topo, 4)
	got := c.PingAll(dests, 2, probe.Options{Rate: 500})
	for _, vp := range vps {
		groups := got[vp.Name]
		if len(groups) != len(dests) {
			t.Fatalf("%s: %d groups", vp.Name, len(groups))
		}
		for i, g := range groups {
			if len(g) != 2 {
				t.Fatalf("dest %d: %d results", i, len(g))
			}
		}
	}
}

func TestCampaignPingTSAll(t *testing.T) {
	topo := testTopo(t)
	dests := responsiveDests(topo, 4)
	vps := rrCapableVPs(t, topo, dests[0], 2)
	if len(vps) == 0 {
		t.Skip("no capable VPs")
	}
	c := NewCampaign(topo, vps)
	got := c.PingTSAll(dests, probe.Options{Rate: 500})
	for _, vp := range vps {
		rs := got[vp.Name]
		if len(rs) != len(dests) {
			t.Fatalf("%s: %d results", vp.Name, len(rs))
		}
		sawTS := false
		for _, r := range rs {
			if len(r.TS) > 0 {
				sawTS = true
			}
		}
		if !sawTS {
			t.Errorf("%s: no timestamp entries in any result", vp.Name)
		}
	}
}

func TestCampaignPingRRUDPAll(t *testing.T) {
	topo := testTopo(t)
	var udpDest netip.Addr
	for _, d := range topo.Dests {
		if d.GTUDPResponsive && !d.GTRRDrop && !topo.ASes[d.ASIdx].FilterOptions {
			udpDest = d.Addr
			break
		}
	}
	if !udpDest.IsValid() {
		t.Skip("no UDP-responsive dest")
	}
	vps := rrCapableVPs(t, topo, udpDest, 1)
	if len(vps) == 0 {
		t.Skip("no capable VP")
	}
	c := NewCampaign(topo, vps)
	got := c.PingRRUDPAll(map[string][]netip.Addr{vps[0].Name: {udpDest}}, probe.Options{Rate: 100})
	rs := got[vps[0].Name]
	if len(rs) != 1 || rs[0].Type != probe.PortUnreachable {
		t.Errorf("results = %+v", rs)
	}
}

func TestCampaignTTLPingRRAll(t *testing.T) {
	topo := testTopo(t)
	dests := responsiveDests(topo, 2)
	vps := rrCapableVPs(t, topo, dests[0], 1)
	if len(vps) == 0 {
		t.Skip("no capable VP")
	}
	c := NewCampaign(topo, vps)
	perVP := map[string][]netip.Addr{vps[0].Name: dests}
	ttls := map[string][]uint8{vps[0].Name: {2, 64}}
	got := c.TTLPingRRAll(perVP, ttls, probe.Options{Rate: 100})
	rs := got[vps[0].Name]
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].Type != probe.TimeExceeded {
		t.Errorf("ttl-2 probe: %v, want expiry", rs[0].Type)
	}
	if rs[1].Type != probe.EchoReply {
		t.Errorf("ttl-64 probe: %v, want reply", rs[1].Type)
	}
}

func TestCampaignEmptyPerVPMapsSkip(t *testing.T) {
	topo := testTopo(t)
	c := NewCampaign(topo, topo.VPs[:2])
	if got := c.TracerouteAll(nil, TraceOptions{}); len(got) != 0 {
		t.Errorf("traceroutes from empty map: %d", len(got))
	}
	if got := c.PingRRUDPAll(nil, probe.Options{}); len(got) != 0 {
		t.Errorf("udp from empty map: %d", len(got))
	}
}

func TestPingTSBatchDirect(t *testing.T) {
	topo := testTopo(t)
	dests := responsiveDests(topo, 3)
	raws := rrCapableVPs(t, topo, dests[0], 1)
	if len(raws) == 0 {
		t.Skip("no capable VP")
	}
	vp := NewVantagePoint("tsvp", raws[0].Host, topo.Net.Engine(), 0x5100)
	var got []probe.Result
	vp.PingTSBatch(dests, probe.Options{Rate: 500}, func(rs []probe.Result) { got = rs })
	topo.Net.Engine().Run()
	if len(got) != 3 {
		t.Fatalf("results = %d", len(got))
	}
}

func TestTraceOptionsDefaults(t *testing.T) {
	var o TraceOptions
	if o.maxTTL() != 30 || o.gapLimit() != 4 || o.startRate() != 20 {
		t.Errorf("defaults: %d %d %v", o.maxTTL(), o.gapLimit(), o.startRate())
	}
}
