package measure

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"recordroute/internal/probe"
	"recordroute/internal/results"
	"recordroute/internal/trace"
)

// DefaultQuantum is the virtual-time width of one journaled campaign
// phase. Journaled fleets advance every shard clock to the next quantum
// boundary after each phase, so phase p always starts at exactly p·Q —
// in the original run, and again in a resumed one, regardless of how
// much of the phase the original run completed. That pins every
// clock-derived draw (fault windows, per-packet fault keys) to the same
// values both times, which is what makes resume byte-identical
// (DESIGN.md §11). Virtual time is free: advancing an idle clock costs
// nothing. The quantum only needs to exceed the longest phase's drain
// time; endPhase asserts that loudly rather than corrupting the
// alignment.
const DefaultQuantum = time.Hour

// JournalMeta identifies the campaign a journal belongs to: the
// topology digest (seed, scale, epoch, faults — everything that shapes
// the world) plus every RNG-relevant campaign option. Resuming against
// a journal whose meta differs is refused — replaying another
// campaign's completed VPs would silently mix incompatible streams.
type JournalMeta struct {
	Digest      string        `json:"digest"`
	Shards      int           `json:"shards"`
	Quantum     time.Duration `json:"quantum_ns"`
	Rate        float64       `json:"rate"`
	Timeout     time.Duration `json:"timeout_ns"`
	ShuffleSeed uint64        `json:"shuffle_seed"`
	Retries     int           `json:"retries"`
	Adaptive    bool          `json:"adaptive"`
	// FaultEpoch binds the long-horizon churn clock: an epoch-N journal
	// must never be resumed by an epoch-M campaign, whose route weather
	// (and therefore batch contents) can differ.
	FaultEpoch int `json:"fault_epoch,omitempty"`
}

// journalLine is one JSONL record of a campaign journal. The first
// line is always the meta record; each journaled phase writes one
// phase record when it begins, and one vp record per completed VP
// batch — the incremental result sink. Doubletree phases carry their
// traces in Traces (the stop-set effects are replayed from them, see
// trace.Rebuild) and end with one stopset record checkpointing the
// merged global set through the canonical codec, so a resumed run can
// verify it reconverged byte-for-byte. A killed campaign leaves a
// journal that is valid up to its last complete line.
type journalLine struct {
	T       string           `json:"t"` // "meta" | "phase" | "vp" | "stopset"
	Meta    *JournalMeta     `json:"meta,omitempty"`
	Phase   int              `json:"phase"`
	Kind    string           `json:"kind,omitempty"`
	VP      string           `json:"vp,omitempty"`
	Results []results.Wire   `json:"results,omitempty"`
	Groups  [][]results.Wire `json:"groups,omitempty"`
	Traces  []trace.Result   `json:"traces,omitempty"`
	Data    []byte           `json:"data,omitempty"`
}

// archivedVP is one completed VP batch loaded from a resumed journal.
type archivedVP struct {
	kind    string
	results []probe.Result
	groups  [][]probe.Result
	traces  []trace.Result
}

// WriteShim, when non-nil, wraps the writer behind every journal
// opened afterwards — the fault-injection seam the service-level chaos
// harness uses to fail journal writes at a chosen byte without touching
// the filesystem. Production code leaves it nil (writes go straight to
// the file). Not safe to flip while journals are being created; set it
// in a test, restore it with defer.
var WriteShim func(path string, f *os.File) io.Writer

// Journal is a campaign's incremental result sink and checkpoint: it
// streams every completed per-VP batch to disk as a JSONL line and, on
// resume, hands completed batches back so the fleet skips re-probing
// them. Attach one to a ParallelCampaign before its first primitive.
// Methods are safe for concurrent use from shard workers.
//
// Write failures degrade instead of crashing: the first failed write
// disables further journaling, the error is retained (Degraded), and
// the campaign keeps running un-checkpointed — a full disk costs the
// ability to resume, never the job. The file keeps its valid JSONL
// prefix (plus at most one torn line, which resume discards).
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	w        io.Writer // f, possibly wrapped by WriteShim
	enc      *json.Encoder
	meta     JournalMeta
	fsync    bool
	degraded error // first write/sync failure; once set, writes stop

	phase      int // next phase index to hand out
	phaseKinds map[int]string
	archived   map[string]*archivedVP // "phase|vp" → completed batch
	stopsets   map[int][]byte         // phase → codec bytes of the merged stop set
	sink       func(vp string, rs []probe.Result)
}

func vpKey(phase int, vp string) string { return fmt.Sprintf("%d|%s", phase, vp) }

// CreateJournal starts a fresh journal at path (truncating any previous
// one) and writes the meta record.
func CreateJournal(path string, meta JournalMeta) (*Journal, error) {
	if meta.Quantum <= 0 {
		meta.Quantum = DefaultQuantum
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	j := newJournal(nil, meta)
	j.attach(f, path)
	if err := j.enc.Encode(journalLine{T: "meta", Meta: &meta}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// ResumeJournal loads the journal at path and prepares it for the
// campaign to continue: completed VP batches become the archive the
// fleet skips, a trailing partial line (the usual wound of a kill) is
// discarded, and further records append after the last complete one.
// The stored meta must equal the caller's — a digest or option
// mismatch means the journal belongs to a different campaign and is
// refused. A missing file degrades to CreateJournal, so "resume" is
// safe to use unconditionally.
func ResumeJournal(path string, meta JournalMeta) (*Journal, error) {
	if meta.Quantum <= 0 {
		meta.Quantum = DefaultQuantum
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return CreateJournal(path, meta)
	}
	if err != nil {
		return nil, err
	}

	j := newJournal(nil, meta)
	sawMeta := false
	valid := 0 // byte offset after the last fully-parsed line
	for off := 0; off < len(data); {
		nl := -1
		for i := off; i < len(data); i++ {
			if data[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // trailing partial line: discard
		}
		line := data[off:nl]
		off = nl + 1
		if len(line) == 0 {
			valid = off
			continue
		}
		var rec journalLine
		if err := json.Unmarshal(line, &rec); err != nil {
			break // corrupt line: keep only the prefix before it
		}
		switch rec.T {
		case "meta":
			if rec.Meta == nil || *rec.Meta != meta {
				return nil, fmt.Errorf("measure: journal %s belongs to a different campaign (meta %+v, want %+v)",
					path, rec.Meta, meta)
			}
			sawMeta = true
		case "phase":
			j.phaseKinds[rec.Phase] = rec.Kind
		case "vp":
			a := &archivedVP{kind: rec.Kind, traces: rec.Traces}
			for _, w := range rec.Results {
				a.results = append(a.results, w.Result())
			}
			for _, g := range rec.Groups {
				var rs []probe.Result
				for _, w := range g {
					rs = append(rs, w.Result())
				}
				a.groups = append(a.groups, rs)
			}
			j.archived[vpKey(rec.Phase, rec.VP)] = a
		case "stopset":
			j.stopsets[rec.Phase] = rec.Data
		default:
			return nil, fmt.Errorf("measure: journal %s: unknown record type %q", path, rec.T)
		}
		valid = off
	}
	if !sawMeta {
		// Nothing usable (empty file or a cut within the meta line):
		// start over.
		return CreateJournal(path, meta)
	}

	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	j.attach(f, path)
	return j, nil
}

func newJournal(f *os.File, meta JournalMeta) *Journal {
	j := &Journal{
		meta:       meta,
		phaseKinds: make(map[int]string),
		archived:   make(map[string]*archivedVP),
		stopsets:   make(map[int][]byte),
	}
	if f != nil {
		j.attach(f, f.Name())
	}
	return j
}

// attach binds the journal to its open file, routing writes through
// the chaos shim when one is installed.
func (j *Journal) attach(f *os.File, path string) {
	j.f = f
	j.w = io.Writer(f)
	if WriteShim != nil {
		j.w = WriteShim(path, f)
	}
	j.enc = json.NewEncoder(j.w)
}

// Meta returns the journal's campaign identity.
func (j *Journal) Meta() JournalMeta { return j.meta }

// SetFsync makes every checkpoint record durable before the campaign
// moves on: each journaled line is followed by an fsync, so even a
// power loss (not just a process kill) keeps every completed batch.
// Off by default — the OS page cache already survives a SIGKILL, which
// is the common wound; fsync buys the rarer machine-crash case at a
// per-checkpoint I/O cost. Not part of JournalMeta: durability policy
// does not change the campaign's results, so resuming with a different
// setting is legal.
func (j *Journal) SetFsync(on bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.fsync = on
}

// Degraded returns the first journal write/sync failure, or nil while
// the journal is healthy. A degraded journal has stopped recording —
// the campaign's remaining batches exist only in memory and a crash
// after degradation re-probes them on resume — but its on-disk prefix
// stays valid for resume.
func (j *Journal) Degraded() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// Quantum returns the phase quantum.
func (j *Journal) Quantum() time.Duration { return j.meta.Quantum }

// Archived returns how many completed VP batches the journal carried
// in from a previous run.
func (j *Journal) Archived() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.archived)
}

// SetSink installs fn as the live streaming observer: it is called
// once per freshly completed VP batch (archived batches replayed from
// a previous run are not re-streamed), serialized under the journal
// lock.
func (j *Journal) SetSink(fn func(vp string, rs []probe.Result)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sink = fn
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// beginPhase opens the next journaled phase and returns its index. A
// resumed journal knows what kind each phase had: a mismatch means the
// resumed process is running a different workload against the journal,
// which would mis-align every later phase — that is a programming
// error, reported loudly.
func (j *Journal) beginPhase(kind string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := j.phase
	j.phase++
	if prev, ok := j.phaseKinds[p]; ok {
		if prev != kind {
			panic(fmt.Sprintf("measure: journal resume mismatch: phase %d was %q, replay runs %q", p, prev, kind))
		}
	} else {
		j.phaseKinds[p] = kind
		j.encode(journalLine{T: "phase", Phase: p, Kind: kind})
	}
	return p
}

// archivedResults returns the completed flat batch for (phase, vp)
// from a resumed journal, if present.
func (j *Journal) archivedResults(phase int, vp string) ([]probe.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	a := j.archived[vpKey(phase, vp)]
	if a == nil || a.groups != nil || a.traces != nil {
		return nil, false
	}
	return a.results, true
}

// archivedGroups is archivedResults for grouped (PingAll) batches.
func (j *Journal) archivedGroups(phase int, vp string) ([][]probe.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	a := j.archived[vpKey(phase, vp)]
	if a == nil || a.groups == nil {
		return nil, false
	}
	return a.groups, true
}

// recordResults journals one freshly completed flat VP batch and feeds
// the streaming sink.
func (j *Journal) recordResults(phase int, kind, vp string, rs []probe.Result) {
	j.recordResultsAs(phase, kind, vp, vp, rs)
}

// recordResultsAs journals a flat batch under an archive key that may
// differ from the VP name the streaming sink sees. Destination-sharded
// single-VP phases checkpoint each shard's range separately (key
// "vp#shard", so resume restores exactly the ranges that completed)
// while the sink — which speaks real VP names to live consumers —
// receives the batch as the VP itself.
func (j *Journal) recordResultsAs(phase int, kind, key, sinkVP string, rs []probe.Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	line := journalLine{T: "vp", Phase: phase, Kind: kind, VP: key, Results: make([]results.Wire, len(rs))}
	for i, r := range rs {
		line.Results[i] = results.ToWire(r)
	}
	j.encode(line)
	if j.sink != nil {
		j.sink(sinkVP, rs)
	}
}

// archivedTraces returns the completed traceroute round for
// (phase, vp) from a resumed journal, if present.
func (j *Journal) archivedTraces(phase int, vp string) ([]trace.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	a := j.archived[vpKey(phase, vp)]
	if a == nil || a.traces == nil {
		return nil, false
	}
	return a.traces, true
}

// recordTraces journals one freshly completed per-VP traceroute
// round. The streaming sink is not fed: it speaks probe.Result, and
// traceroute rounds are consumed through their renders, not streamed.
func (j *Journal) recordTraces(phase int, kind, vp string, trs []trace.Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.encode(journalLine{T: "vp", Phase: phase, Kind: kind, VP: vp, Traces: trs})
}

// checkStopSet closes a doubletree phase: on a fresh phase it
// journals the merged global stop set's codec bytes as the phase's
// checkpoint; on a resumed phase it verifies the re-merged set
// reproduced the archived bytes exactly. A mismatch means the replay
// diverged from the original run — the determinism contract is
// broken — which is a programming error, reported loudly like a
// phase-kind mismatch.
func (j *Journal) checkStopSet(phase int, data []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if prev, ok := j.stopsets[phase]; ok {
		if !bytes.Equal(prev, data) {
			panic(fmt.Sprintf("measure: journal resume mismatch: phase %d stop set diverged (%d bytes archived, %d rebuilt)",
				phase, len(prev), len(data)))
		}
		return
	}
	j.stopsets[phase] = data
	j.encode(journalLine{T: "stopset", Phase: phase, Data: data})
}

// recordGroups journals one freshly completed grouped VP batch.
func (j *Journal) recordGroups(phase int, kind, vp string, gs [][]probe.Result) {
	j.recordGroupsAs(phase, kind, vp, vp, gs)
}

// recordGroupsAs is recordGroups with a separate archive key and sink
// VP name; see recordResultsAs.
func (j *Journal) recordGroupsAs(phase int, kind, key, sinkVP string, gs [][]probe.Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	line := journalLine{T: "vp", Phase: phase, Kind: kind, VP: key, Groups: make([][]results.Wire, len(gs))}
	var flat []probe.Result
	for i, g := range gs {
		ws := make([]results.Wire, len(g))
		for k, r := range g {
			ws[k] = results.ToWire(r)
		}
		line.Groups[i] = ws
		flat = append(flat, g...)
	}
	j.encode(line)
	if j.sink != nil {
		j.sink(sinkVP, flat)
	}
}

// encode writes one record (caller holds j.mu). A write or sync
// failure must not panic — it would kill a worker goroutine over a
// full disk — so the journal degrades instead: the error is retained,
// further writes are disabled, and the campaign continues with its
// streaming sink intact but no checkpoint coverage from here on. The
// file is left with its valid prefix plus at most one torn line, which
// ResumeJournal discards.
func (j *Journal) encode(line journalLine) {
	if j.enc == nil || j.degraded != nil {
		return
	}
	if err := j.enc.Encode(line); err != nil {
		j.degraded = fmt.Errorf("measure: journal write: %w", err)
		j.enc = nil
		return
	}
	if j.fsync && j.f != nil {
		if err := j.f.Sync(); err != nil {
			j.degraded = fmt.Errorf("measure: journal fsync: %w", err)
			j.enc = nil
		}
	}
}
