package measure

import (
	"net/netip"
	"time"

	"recordroute/internal/probe"
)

// TraceOptions controls traceroute behaviour.
type TraceOptions struct {
	// MaxTTL bounds the probed hop count; 0 means 30.
	MaxTTL uint8
	// GapLimit stops a trace after this many consecutive silent hops;
	// 0 means 4.
	GapLimit int
	// Timeout is the per-probe wait; 0 means the prober default.
	Timeout time.Duration
	// StartRate is how many new destination traces begin per second;
	// 0 means 20. Probes within one trace are sequential.
	StartRate float64
}

func (o TraceOptions) maxTTL() uint8 {
	if o.MaxTTL == 0 {
		return 30
	}
	return o.MaxTTL
}

func (o TraceOptions) gapLimit() int {
	if o.GapLimit == 0 {
		return 4
	}
	return o.GapLimit
}

func (o TraceOptions) startRate() float64 {
	if o.StartRate <= 0 {
		return 20
	}
	return o.StartRate
}

// TraceHop is one traceroute step.
type TraceHop struct {
	// TTL is the probe's initial TTL.
	TTL uint8
	// Addr is the responding address; invalid on silence.
	Addr netip.Addr
	// RTT is the probe round-trip time (zero on silence).
	RTT time.Duration
	// Final marks the echo reply from the destination itself.
	Final bool
}

// Responded reports whether this hop answered.
func (h TraceHop) Responded() bool { return h.Addr.IsValid() }

// Trace is a completed traceroute.
type Trace struct {
	VP   string
	Dst  netip.Addr
	Hops []TraceHop
	// Reached reports whether the destination replied.
	Reached bool
	// DestTTL is the hop count at which the destination replied
	// (0 when unreached).
	DestTTL uint8
}

// HopAddrs returns the responding hop addresses in order, excluding
// silent hops and the destination's own reply.
func (t Trace) HopAddrs() []netip.Addr {
	var out []netip.Addr
	for _, h := range t.Hops {
		if h.Responded() && !h.Final {
			out = append(out, h.Addr)
		}
	}
	return out
}

// Traceroute runs a single traceroute and calls done with the result.
func (vp *VantagePoint) Traceroute(dst netip.Addr, opts TraceOptions, done func(Trace)) {
	tr := Trace{VP: vp.Name, Dst: dst}
	gaps := 0
	var step func(ttl uint8)
	step = func(ttl uint8) {
		vp.Prober.StartOne(probe.Spec{Dst: dst, Kind: probe.TTLPing, TTL: ttl}, opts.Timeout, func(r probe.Result) {
			switch r.Type {
			case probe.EchoReply:
				tr.Hops = append(tr.Hops, TraceHop{TTL: ttl, Addr: r.From, RTT: r.RTT(), Final: true})
				tr.Reached = true
				tr.DestTTL = ttl
				done(tr)
				return
			case probe.TimeExceeded:
				tr.Hops = append(tr.Hops, TraceHop{TTL: ttl, Addr: r.From, RTT: r.RTT()})
				gaps = 0
			case probe.NoResponse:
				tr.Hops = append(tr.Hops, TraceHop{TTL: ttl})
				gaps++
			default:
				// Unreachables and other errors terminate the trace.
				tr.Hops = append(tr.Hops, TraceHop{TTL: ttl, Addr: r.From, RTT: r.RTT()})
				done(tr)
				return
			}
			if ttl >= opts.maxTTL() || gaps >= opts.gapLimit() {
				done(tr)
				return
			}
			step(ttl + 1)
		})
	}
	step(1)
}

// TracerouteBatch traces every destination, staggering trace starts at
// opts.StartRate, and calls done with results in destination order.
func (vp *VantagePoint) TracerouteBatch(dsts []netip.Addr, opts TraceOptions, done func([]Trace)) {
	if len(dsts) == 0 {
		vp.Prober.Schedule(0, func() { done(nil) })
		return
	}
	results := make([]Trace, len(dsts))
	remaining := len(dsts)
	interval := time.Duration(float64(time.Second) / opts.startRate())
	for i, d := range dsts {
		i, d := i, d
		vp.scheduleAfter(time.Duration(i)*interval, func() {
			vp.Traceroute(d, opts, func(t Trace) {
				results[i] = t
				remaining--
				if remaining == 0 {
					done(results)
				}
			})
		})
	}
}

// scheduleAfter defers fn on the prober's transport clock.
func (vp *VantagePoint) scheduleAfter(d time.Duration, fn func()) {
	vp.Prober.Schedule(d, fn)
}
