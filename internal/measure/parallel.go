package measure

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"recordroute/internal/netsim"
	"recordroute/internal/obs"
	"recordroute/internal/probe"
	"recordroute/internal/topology"
)

// ParallelCampaign executes campaign primitives across K shards, each an
// independent deterministic simulator replica built from the same
// topology.Config and seed. Vantage points are partitioned round-robin
// by their campaign index, so each VP's complete probe stream — pacing,
// source-proximate policer interactions, timeouts — plays out inside
// exactly one replica, bit-for-bit as it would inside the single shared
// engine. Each primitive dispatches the live shards over a work-stealing
// group of at most min(shards, GOMAXPROCS, NumCPU) goroutines — or
// inline on the caller's goroutine when that bound is one, so a
// single-shard fleet (or a single-CPU host) pays zero scheduling
// overhead — and the per-shard result maps merge back into the exact
// per-VP ordering the sequential Campaign produces.
//
// Determinism contract: for workloads whose only cross-VP coupling is
// through destination-side state that stays inactive (edge policers
// below their rate, IP-ID counters no analysis reads), every Result
// field except ReplyIPID is byte-identical to the sequential path, and
// experiment summaries built from them are byte-identical. ReplyIPID is
// exempt because destination IP-ID counters observe only shard-local
// traffic. Rate-limiting experiments that deliberately saturate shared
// destination-side policers (Figure 4) must keep using Campaign: there
// the aggregate cross-VP arrival process is the measured effect, and
// sharding it away would change the drops.
//
// After each primitive, every shard clock is advanced to the maximum
// shard time, which equals the time the sequential engine would show —
// so later phases start at the same virtual instant in every replica.
type ParallelCampaign struct {
	cfg    topology.Config
	src    *topology.Topology // snapshot source; nil → build from cfg
	shards int

	buildOnce sync.Once
	buildErr  error
	replicas  []*replica
	vpShard   map[string]int // VP name → replica index
	vpIndex   map[string]int // VP name → campaign index (prober ID base)
	vpNames   []string       // campaign order, as the sequential path sees it

	observer *obs.Observer   // applied to each replica at init; nil observes nothing
	journal  *Journal        // nil unless the campaign is journaled
	ctx      context.Context // nil unless cancellation is armed (SetContext)
}

// Both executors satisfy the Fleet surface.
var (
	_ Fleet = (*Campaign)(nil)
	_ Fleet = (*ParallelCampaign)(nil)
)

// replica is one shard: a full topology replica plus the VantagePoints
// (with their original campaign prober IDs) assigned to it. A replica
// that panics during a primitive is marked dead and carries the
// recovered failure; dead replicas are excluded from every later
// primitive and clock sync. During a dispatch exactly one goroutine
// runs a given replica (work-stealing hands each index out once), so
// only that goroutine writes dead/err, and readers run after the
// dispatch joins — no lock.
type replica struct {
	idx  int // shard index within the fleet
	topo *topology.Topology
	eng  *netsim.Engine
	vps  []*VantagePoint

	// ghosts are lazily created stand-ins for VPs homed on other shards,
	// used by destination-sharded single-VP phases (PingBatchVP,
	// PingSeriesVP): the same named host on this replica, driven by a
	// prober with the VP's campaign ID so wire images match the
	// sequential run's byte-for-byte. Safe because the VP's home prober
	// lives in a different replica engine — IDs never clash within one
	// engine — and this replica's host had no sniffer before. Created
	// and used only from this replica's dispatch goroutine.
	ghosts map[string]*VantagePoint

	dead bool
	err  error
}

// run executes fn against the replica with panic containment: a panic
// kills only this shard — it is recovered, the replica is marked dead,
// and later primitives and clock syncs skip it, so the surviving shards
// keep producing results (the Fleet partial-results contract). A
// cooperative cancellation abort (Canceled) is an expected shutdown,
// not a crash, so it is recorded without the stack-trace noise.
func (rep *replica) run(fn func(*replica)) {
	defer func() {
		if r := recover(); r != nil {
			rep.dead = true
			if err, ok := CanceledFrom(r); ok {
				rep.err = fmt.Errorf("shard %d canceled at t=%v: %w", rep.idx, rep.eng.Now(), err)
				return
			}
			rep.err = fmt.Errorf("shard %d panicked at t=%v: %v\n%s",
				rep.idx, rep.eng.Now(), r, debug.Stack())
		}
	}()
	fn(rep)
}

// effectiveWorkers bounds a dispatch's goroutine count: no more than
// one per work item, and no more than the host can actually run in
// parallel. GOMAXPROCS alone is not enough — a 1-CPU host with
// GOMAXPROCS=4 would spawn four goroutines to time-slice one core,
// which is pure overhead (the confound behind the original "negative
// scaling" baseline numbers).
func effectiveWorkers(n int) int {
	if p := runtime.GOMAXPROCS(0); p < n {
		n = p
	}
	if c := runtime.NumCPU(); c < n {
		n = c
	}
	return n
}

// forShards runs fn once per replica in reps. With an effective worker
// bound of one the loop runs inline on the caller's goroutine — no
// spawn, no synchronization; otherwise a work-stealing group of w
// goroutines pulls replica indices from a shared atomic counter until
// the list is drained. Goroutines live only for the dispatch, so
// campaigns hold no pool to leak and idle fleets cost nothing.
func forShards(reps []*replica, fn func(*replica)) {
	w := effectiveWorkers(len(reps))
	if w <= 1 {
		for _, rep := range reps {
			rep.run(fn)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reps) {
					return
				}
				reps[i].run(fn)
			}
		}()
	}
	wg.Wait()
}

// ShardError reports one shard that failed during a primitive: the
// replica index, the vantage points whose results are missing or
// partial because of it, and the recovered failure.
type ShardError struct {
	// Shard is the replica index within the fleet.
	Shard int
	// VPs names the vantage points assigned to the failed shard.
	VPs []string
	// Err is the recovered failure, including the panic stack.
	Err error
}

// Error satisfies the error interface.
func (e ShardError) Error() string {
	return fmt.Sprintf("measure: shard %d (VPs %s): %v", e.Shard, strings.Join(e.VPs, ","), e.Err)
}

// NewParallelCampaign returns a K-shard campaign over cfg's platform
// VPs. The fleet is assembled lazily — on the first primitive — by one
// topology.Build whose frozen snapshot stamps out the remaining
// replicas (see NewParallelCampaignFrom for reusing an existing build).
// shards below 1 is an error; shards above the VP count is clamped (an
// empty replica would only waste memory).
func NewParallelCampaign(cfg topology.Config, shards int) (*ParallelCampaign, error) {
	if shards < 1 {
		return nil, fmt.Errorf("measure: %d shards", shards)
	}
	return &ParallelCampaign{cfg: cfg, shards: shards}, nil
}

// NewParallelCampaignFrom returns a K-shard campaign whose replicas are
// all cloned from an already-built topology's frozen snapshot — no
// regeneration at all. The source keeps working independently (its
// engine state never leaks into the pristine clones), so a study can
// share one Build between its sequential campaign and its fleet.
func NewParallelCampaignFrom(src *topology.Topology, shards int) (*ParallelCampaign, error) {
	if shards < 1 {
		return nil, fmt.Errorf("measure: %d shards", shards)
	}
	return &ParallelCampaign{cfg: src.Cfg, src: src, shards: shards}, nil
}

// AttachJournal makes the campaign journaled: every primitive becomes
// one quantized phase whose completed per-VP batches stream to j, and
// batches j already carries (from a resumed run) are skipped instead of
// re-probed. Must be called before the first primitive — the phase
// numbering starts at the campaign's first event.
func (pc *ParallelCampaign) AttachJournal(j *Journal) { pc.journal = j }

// Journal returns the attached journal, or nil.
func (pc *ParallelCampaign) Journal() *Journal { return pc.journal }

// SetContext arms cooperative cancellation: once ctx is done, the
// campaign aborts — with a Canceled panic the caller recovers and
// classifies via CanceledFrom — at its next deterministic boundary.
// Boundaries are the start of every primitive (a journal phase
// boundary, caught on the caller's goroutine) and each per-VP batch
// checkpoint inside a journaled primitive (caught per shard: the batch
// that just completed is recorded first, then the shard dies as a
// canceled ShardError, so every journaled batch stays complete and
// resume-safe). Mid-drain engine work between checkpoints is never
// interrupted — that is what keeps cancellation deterministic
// (DESIGN.md §13).
func (pc *ParallelCampaign) SetContext(ctx context.Context) { pc.ctx = ctx }

// NumShards returns the shard count the campaign will use (clamped to
// the VP count once built).
func (pc *ParallelCampaign) NumShards() int {
	if pc.replicas != nil {
		return len(pc.replicas)
	}
	return pc.shards
}

// init assembles the shard fleet on first use: one route plane, K
// overlays. With no pre-built source, the plane is built once from cfg
// and doubles as replica 0 — it is pristine, so it equals a clone; the
// rest are snapshot clones stamped out concurrently. With a source
// (NewParallelCampaignFrom), every replica is a clone, because the
// source engine may already have run traffic. Cloning shares the frozen
// FIBs, routes, and addressing, so fleet spin-up is a small multiple of
// a single build regardless of K.
func (pc *ParallelCampaign) init() error {
	pc.buildOnce.Do(func() {
		src := pc.src
		firstIsSource := false
		if src == nil {
			built, err := topology.Build(pc.cfg)
			if err != nil {
				pc.buildErr = err
				return
			}
			src = built
			firstIsSource = true
		}
		snap := topology.SnapshotOf(src)
		k := pc.shards
		if n := len(src.VPs); k > n && n > 0 {
			k = n
		}
		pc.replicas = make([]*replica, k)
		start := 0
		if firstIsSource {
			pc.replicas[0] = &replica{idx: 0, topo: src, eng: src.Net.Engine()}
			start = 1
		}
		// Stamp out the remaining clones with the same bounded dispatch
		// primitives use: inline when one worker suffices (single shard,
		// or a host with one usable CPU), work-stealing goroutines
		// otherwise. Distinct goroutines write distinct replicas slots.
		clone := func(s int) {
			topo := snap.Clone()
			pc.replicas[s] = &replica{idx: s, topo: topo, eng: topo.Net.Engine()}
		}
		if w := effectiveWorkers(k - start); w <= 1 {
			for s := start; s < k; s++ {
				clone(s)
			}
		} else {
			var next atomic.Int64
			next.Store(int64(start))
			var wg sync.WaitGroup
			wg.Add(w)
			for g := 0; g < w; g++ {
				go func() {
					defer wg.Done()
					for {
						s := int(next.Add(1)) - 1
						if s >= k {
							return
						}
						clone(s)
					}
				}()
			}
			wg.Wait()
		}
		// Partition VPs round-robin by campaign index, keeping the
		// sequential prober ID assignment (0x4000+i) so wire images and
		// reply matching are identical to Campaign's.
		pc.vpShard = make(map[string]int, len(src.VPs))
		pc.vpIndex = make(map[string]int, len(src.VPs))
		for i, v := range src.VPs {
			shard := i % k
			rep := pc.replicas[shard]
			rv := rep.topo.VPByName(v.Name)
			rep.vps = append(rep.vps, NewVantagePoint(rv.Name, rv.Host, rep.eng, uint16(0x4000+i)))
			pc.vpShard[v.Name] = shard
			pc.vpIndex[v.Name] = i
			pc.vpNames = append(pc.vpNames, v.Name)
		}
		for _, rep := range pc.replicas {
			pc.observeReplica(rep)
		}
	})
	return pc.buildErr
}

// mustInit panics on a replica build failure: the same configuration
// already built once for the sequential study, so a failure here is a
// programming error, not an input error.
func (pc *ParallelCampaign) mustInit() {
	if err := pc.init(); err != nil {
		panic(fmt.Sprintf("measure: shard replica build failed: %v", err))
	}
}

// VP returns the named vantage point's shard replica instance, or nil.
// Probes started on it run inside that VP's shard engine; follow with
// Run to drain and re-synchronize the fleet. VPs on a dead shard
// return nil too: their engine will never run again, so probes started
// there would hang forever.
func (pc *ParallelCampaign) VP(name string) *VantagePoint {
	pc.mustInit()
	s, ok := pc.vpShard[name]
	if !ok || pc.replicas[s].dead {
		return nil
	}
	for _, vp := range pc.replicas[s].vps {
		if vp.Name == name {
			return vp
		}
	}
	return nil
}

// VPNames lists the vantage points in campaign (sequential) order.
func (pc *ParallelCampaign) VPNames() []string {
	pc.mustInit()
	return pc.vpNames
}

// eachShard runs fn once per live replica via forShards (inline or
// work-stealing, see there); fn owns its replica's engine for the
// duration, and shard panics are contained per-replica (replica.run).
// ShardErrors reports any losses afterwards.
func (pc *ParallelCampaign) eachShard(fn func(*replica)) {
	live := pc.replicas[:0:0]
	for _, rep := range pc.replicas {
		if !rep.dead {
			live = append(live, rep)
		}
	}
	forShards(live, fn)
}

// ShardErrors reports the shards that died during earlier primitives,
// in shard order; empty while every replica is healthy. The named VPs
// are the ones whose results are missing or partial in primitives run
// since (and including) the one that killed the shard.
func (pc *ParallelCampaign) ShardErrors() []ShardError {
	var errs []ShardError
	for i, rep := range pc.replicas {
		if rep == nil || !rep.dead {
			continue
		}
		names := make([]string, 0, len(rep.vps))
		for _, vp := range rep.vps {
			names = append(names, vp.Name)
		}
		errs = append(errs, ShardError{Shard: i, VPs: names, Err: rep.err})
	}
	return errs
}

// syncClocks advances every shard clock to the fleet-wide maximum —
// exactly the time a single shared engine would have reached, since the
// sequential end time is the maximum over the same event set.
func (pc *ParallelCampaign) syncClocks() {
	var max time.Duration
	for _, rep := range pc.replicas {
		if rep.dead {
			continue
		}
		if now := rep.eng.Now(); now > max {
			max = now
		}
	}
	for _, rep := range pc.replicas {
		if rep.dead {
			continue
		}
		rep.eng.RunUntil(max)
	}
}

// beginPhase opens a journal phase for one primitive; journaled
// reports whether the campaign is journaled at all. Every primitive
// passes through here, so it doubles as the phase-boundary
// cancellation check: an armed, expired context aborts before the
// phase record is written or any probe is started.
func (pc *ParallelCampaign) beginPhase(kind string) (phase int, journaled bool) {
	checkCanceled(pc.ctx)
	if pc.journal == nil {
		return 0, false
	}
	return pc.journal.beginPhase(kind), true
}

// checkpoint records one freshly completed batch (flat or grouped) and
// then honors cancellation: the completed batch is journaled first, so
// aborting here loses nothing that was measured — the shard dies as a
// canceled ShardError at a per-VP checkpoint boundary, and a resumed
// run re-probes exactly the batches that never completed.
func (pc *ParallelCampaign) checkpoint(record func()) {
	record()
	checkCanceled(pc.ctx)
}

// endPhase quantizes a journaled phase's end: every live shard clock is
// advanced to the next quantum boundary, so the following phase starts
// at exactly (phase+1)·Quantum in this run and in any resumed replay of
// it — the alignment the resume-equals-uninterrupted property rests on
// (clock-derived fault draws see identical times both ways). A phase
// draining past its boundary means the quantum is too small for the
// workload; that corrupts the alignment silently, so it panics instead.
func (pc *ParallelCampaign) endPhase(phase int, journaled bool) {
	if !journaled {
		return
	}
	boundary := time.Duration(phase+1) * pc.journal.Quantum()
	for i, rep := range pc.replicas {
		if rep.dead {
			continue
		}
		if now := rep.eng.Now(); now > boundary {
			panic(fmt.Sprintf("measure: journal quantum %v too small: shard %d drained phase %d at t=%v",
				pc.journal.Quantum(), i, phase, now))
		}
	}
	for _, rep := range pc.replicas {
		if rep.dead {
			continue
		}
		rep.eng.RunUntil(boundary)
	}
}

// archivedFlat pre-fills out with the batches the journal already
// carries for this phase and returns the VP names to skip. Dead-shard
// VPs benefit too: their archived batches are restored even though
// their replica will never run again.
func (pc *ParallelCampaign) archivedFlat(phase int, journaled bool, out map[string][]probe.Result) map[string]bool {
	if !journaled {
		return nil
	}
	skip := make(map[string]bool)
	for _, name := range pc.vpNames {
		if rs, ok := pc.journal.archivedResults(phase, name); ok {
			out[name] = rs
			skip[name] = true
			pc.replaySeqs(name, consumedSeqs(rs))
		}
	}
	return skip
}

// consumedSeqs counts the sequence numbers a completed batch allocated:
// one per attempt actually sent (retransmissions get fresh seqs).
func consumedSeqs(rs []probe.Result) int {
	n := 0
	for _, r := range rs {
		n += r.Attempts
	}
	return n
}

// replaySeqs advances a VP's prober sequence counter past an archived
// batch. Probe wire images carry the seq and per-packet fault draws are
// content-keyed on them, so every VP must enter a re-executed phase
// with the counter position the original run had there — otherwise a
// fault plan would draw different packet fates on resume.
func (pc *ParallelCampaign) replaySeqs(name string, n int) {
	if vp := pc.VP(name); vp != nil {
		vp.Prober.SkipSeqs(n)
	}
}

// Run drains every shard engine with pending events and re-synchronizes
// the fleet clocks. Only dirty shards are dispatched: probes started
// directly on VPs (origin batches, alias collects) usually touch one
// shard, and draining the other K-1 idle engines — even inline — is
// wasted work between every phase of a study. On a journaled campaign
// the drain is a phase of its own: such single-VP work is cheap and a
// resumed run deterministically re-executes it rather than archives it.
func (pc *ParallelCampaign) Run() {
	pc.mustInit()
	phase, journaled := pc.beginPhase("run")
	dirty := pc.replicas[:0:0]
	for _, rep := range pc.replicas {
		if !rep.dead && rep.eng.Pending() > 0 {
			dirty = append(dirty, rep)
		}
	}
	forShards(dirty, func(rep *replica) { rep.eng.Run() })
	pc.syncClocks()
	pc.endPhase(phase, journaled)
}

// PingRRAll sends one ping-RR from every VP to every destination, each
// VP inside its own shard, and merges the per-shard results into one
// map keyed by VP name in that VP's send order — the same shape and
// content Campaign.PingRRAll produces.
func (pc *ParallelCampaign) PingRRAll(dests []netip.Addr, opts probe.Options, orderFor func(vp string, dests []netip.Addr) []netip.Addr) map[string][]probe.Result {
	pc.mustInit()
	phase, journaled := pc.beginPhase("ping-rr-all")
	out := make(map[string][]probe.Result, len(pc.vpNames))
	skip := pc.archivedFlat(phase, journaled, out)
	var mu sync.Mutex
	pc.eachShard(func(rep *replica) {
		for _, vp := range rep.vps {
			vp := vp
			if skip[vp.Name] {
				continue
			}
			ds := dests
			if orderFor != nil {
				ds = orderFor(vp.Name, dests)
			}
			vp.PingRRBatch(ds, opts, func(rs []probe.Result) {
				mu.Lock()
				out[vp.Name] = rs
				mu.Unlock()
				pc.checkpoint(func() {
					if journaled {
						pc.journal.recordResults(phase, "ping-rr-all", vp.Name, rs)
					}
				})
			})
		}
		rep.eng.Run()
	})
	pc.syncClocks()
	pc.endPhase(phase, journaled)
	return out
}

// PingAll sends count plain pings per destination from every VP.
func (pc *ParallelCampaign) PingAll(dests []netip.Addr, count int, opts probe.Options) map[string][][]probe.Result {
	pc.mustInit()
	phase, journaled := pc.beginPhase("ping-all")
	out := make(map[string][][]probe.Result, len(pc.vpNames))
	var skip map[string]bool
	if journaled {
		skip = make(map[string]bool)
		for _, name := range pc.vpNames {
			if gs, ok := pc.journal.archivedGroups(phase, name); ok {
				out[name] = gs
				skip[name] = true
				n := 0
				for _, g := range gs {
					n += consumedSeqs(g)
				}
				pc.replaySeqs(name, n)
			}
		}
	}
	var mu sync.Mutex
	pc.eachShard(func(rep *replica) {
		for _, vp := range rep.vps {
			vp := vp
			if skip[vp.Name] {
				continue
			}
			vp.PingBatch(dests, count, opts, func(rs [][]probe.Result) {
				mu.Lock()
				out[vp.Name] = rs
				mu.Unlock()
				pc.checkpoint(func() {
					if journaled {
						pc.journal.recordGroups(phase, "ping-all", vp.Name, rs)
					}
				})
			})
		}
		rep.eng.Run()
	})
	pc.syncClocks()
	pc.endPhase(phase, journaled)
	return out
}

// PingRRUDPAll sends one ping-RRudp from every VP to its listed targets.
func (pc *ParallelCampaign) PingRRUDPAll(perVP map[string][]netip.Addr, opts probe.Options) map[string][]probe.Result {
	pc.mustInit()
	phase, journaled := pc.beginPhase("ping-rr-udp-all")
	out := make(map[string][]probe.Result, len(perVP))
	skip := pc.archivedFlat(phase, journaled, out)
	var mu sync.Mutex
	pc.eachShard(func(rep *replica) {
		for _, vp := range rep.vps {
			vp := vp
			if skip[vp.Name] {
				continue
			}
			ds := perVP[vp.Name]
			if len(ds) == 0 {
				continue
			}
			vp.PingRRUDPBatch(ds, opts, func(rs []probe.Result) {
				mu.Lock()
				out[vp.Name] = rs
				mu.Unlock()
				pc.checkpoint(func() {
					if journaled {
						pc.journal.recordResults(phase, "ping-rr-udp-all", vp.Name, rs)
					}
				})
			})
		}
		rep.eng.Run()
	})
	pc.syncClocks()
	pc.endPhase(phase, journaled)
	return out
}

// shardVP returns the named VP's prober instance on rep — the assigned
// VantagePoint on its home shard, a lazily created ghost elsewhere (see
// replica.ghosts). Must be called from rep's dispatch goroutine.
func (pc *ParallelCampaign) shardVP(rep *replica, name string) *VantagePoint {
	if pc.vpShard[name] == rep.idx {
		for _, vp := range rep.vps {
			if vp.Name == name {
				return vp
			}
		}
	}
	if vp := rep.ghosts[name]; vp != nil {
		return vp
	}
	rv := rep.topo.VPByName(name)
	if rv == nil {
		return nil
	}
	vp := NewVantagePoint(rv.Name, rv.Host, rep.eng, uint16(0x4000+pc.vpIndex[name]))
	if o := pc.observer; o.Active() && o.Trace != nil {
		vp.Prober.SetTracer(o.Trace.ProberTracer(vp.Name))
	}
	if rep.ghosts == nil {
		rep.ghosts = make(map[string]*VantagePoint)
	}
	rep.ghosts[name] = vp
	return vp
}

// destRange is shard s's contiguous slice of an n-item destination
// list split across k shards: balanced, deterministic, order-preserving.
func destRange(n, k, s int) (lo, hi int) {
	return s * n / k, (s + 1) * n / k
}

// rangeKey is the journal archive key for one shard's slice of a
// destination-sharded single-VP phase. It is journal-internal: range
// records stream to the live sink under the VP's real name.
func rangeKey(vp string, shard int) string { return fmt.Sprintf("%s#%d", vp, shard) }

// partitionByGroup assigns addr indices 0..n-1 to k bins such that all
// indices sharing a group value land in one bin, greedily balancing bin
// sizes over groups in first-appearance order. Deterministic in its
// inputs; each bin comes back sorted ascending. A nil group slice makes
// every index its own group.
func partitionByGroup(n int, group []int, k int) [][]int {
	var order []int
	members := make(map[int][]int)
	for i := 0; i < n; i++ {
		g := i
		if group != nil {
			g = group[i]
		}
		if _, ok := members[g]; !ok {
			order = append(order, g)
		}
		members[g] = append(members[g], i)
	}
	bins := make([][]int, k)
	load := make([]int, k)
	for _, g := range order {
		best := 0
		for s := 1; s < k; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		bins[best] = append(bins[best], members[g]...)
		load[best] += len(members[g])
	}
	for s := range bins {
		sort.Ints(bins[s])
	}
	return bins
}

// PingBatchVP sends count plain pings per destination from the single
// named VP, fanning contiguous destination ranges across the fleet's
// replicas: shard s probes destRange(len(dests), K, s) on its own clone
// through the VP's home prober or a ghost stand-in. Because every
// probe's send time and sequence numbers derive from its global
// destination index (StartIndexedBatch), the merged per-destination
// groups are invariant under K mod ReplyIPID — including per-packet
// fault draws, which are content-keyed on the seq. On a journaled
// campaign each completed range checkpoints under a range key and
// streams to the sink as the VP itself.
func (pc *ParallelCampaign) PingBatchVP(name string, dests []netip.Addr, count int, opts probe.Options) [][]probe.Result {
	pc.mustInit()
	if count < 1 {
		count = 1
	}
	phase, journaled := pc.beginPhase("ping-batch-vp")
	k := len(pc.replicas)
	grouped := make([][]probe.Result, len(dests))
	skip := make(map[int]bool)
	if journaled {
		for s := 0; s < k; s++ {
			lo, hi := destRange(len(dests), k, s)
			if lo == hi {
				continue
			}
			if gs, ok := pc.journal.archivedGroups(phase, rangeKey(name, s)); ok {
				copy(grouped[lo:hi], gs)
				skip[s] = true
			}
		}
	}
	pc.eachShard(func(rep *replica) {
		lo, hi := destRange(len(dests), k, rep.idx)
		if lo == hi || skip[rep.idx] {
			return
		}
		vp := pc.shardVP(rep, name)
		if vp == nil {
			return
		}
		vp.PingBatchRange(dests, lo, hi, count, opts, func(gs [][]probe.Result) {
			copy(grouped[lo:hi], gs) // disjoint ranges: no two shards share an element
			pc.checkpoint(func() {
				if journaled {
					pc.journal.recordGroupsAs(phase, "ping-batch-vp", rangeKey(name, rep.idx), name, gs)
				}
			})
		})
		rep.eng.Run()
	})
	pc.syncClocks()
	pc.endPhase(phase, journaled)
	return grouped
}

// PingSeriesVP probes every address rounds times from the named VP in
// round-major interleaved order, partitioning addresses across replicas
// with partitionByGroup so that addresses sharing group[i] — alias
// candidates whose IP-ID counters must stay co-located — always sample
// the same replica's counters. Results merge back into global spec
// order (round*len(addrs) + addrIdx).
func (pc *ParallelCampaign) PingSeriesVP(name string, addrs []netip.Addr, group []int, rounds int, opts probe.Options) []probe.Result {
	pc.mustInit()
	if rounds < 1 {
		rounds = 1
	}
	phase, journaled := pc.beginPhase("ping-series-vp")
	k := len(pc.replicas)
	sel := partitionByGroup(len(addrs), group, k)
	out := make([]probe.Result, rounds*len(addrs))
	scatter := func(idxs []int, rs []probe.Result) {
		for j, r := range rs {
			out[(j/len(idxs))*len(addrs)+idxs[j%len(idxs)]] = r
		}
	}
	skip := make(map[int]bool)
	if journaled {
		for s := 0; s < k; s++ {
			if len(sel[s]) == 0 {
				continue
			}
			if rs, ok := pc.journal.archivedResults(phase, rangeKey(name, s)); ok {
				scatter(sel[s], rs)
				skip[s] = true
			}
		}
	}
	pc.eachShard(func(rep *replica) {
		idxs := sel[rep.idx]
		if len(idxs) == 0 || skip[rep.idx] {
			return
		}
		vp := pc.shardVP(rep, name)
		if vp == nil {
			return
		}
		vp.PingSeriesSlice(addrs, idxs, rounds, opts, func(rs []probe.Result) {
			scatter(idxs, rs) // disjoint index sets: no two shards share an element
			pc.checkpoint(func() {
				if journaled {
					pc.journal.recordResultsAs(phase, "ping-series-vp", rangeKey(name, rep.idx), name, rs)
				}
			})
		})
		rep.eng.Run()
	})
	pc.syncClocks()
	pc.endPhase(phase, journaled)
	return out
}
