package measure

import (
	"context"
	"fmt"
)

// Cooperative campaign cancellation. A campaign executor armed with a
// context (SetContext) checks it at the deterministic points of its
// schedule — the start of every primitive (a journal phase boundary)
// and, on sharded executors, after each per-VP batch checkpoint is
// recorded — and aborts by panicking with a Canceled payload. Checking
// only at those boundaries is what keeps cancellation compatible with
// the resume-equals-uninterrupted property (DESIGN.md §11): every batch
// the journal holds when the abort lands is complete and was produced
// at exactly the virtual time an uninterrupted run produces it, so a
// resumed campaign reproduces the whole run byte-identically mod
// ReplyIPID no matter where the wall clock cut it off.
//
// The panic is deliberate: campaign primitives return result maps, not
// errors, and the abort must cross the same recover seams a shard
// failure does. Callers that arm a context must recover at the
// granularity they care about and classify with CanceledFrom.

// Canceled is the panic payload of a cooperative campaign abort. Err is
// the context's error: context.Canceled for an explicit cancel,
// context.DeadlineExceeded for a deadline.
type Canceled struct{ Err error }

// Error satisfies the error interface so the payload reads well when a
// recover seam stringifies it.
func (c Canceled) Error() string { return fmt.Sprintf("measure: campaign canceled: %v", c.Err) }

// CanceledFrom extracts the context error from a recovered panic value,
// reporting whether the panic was a cooperative campaign abort.
func CanceledFrom(r any) (error, bool) {
	c, ok := r.(Canceled)
	if !ok {
		return nil, false
	}
	return c.Err, true
}

// checkCanceled aborts the campaign if ctx is done. nil ctx (the
// default, un-armed executor) never aborts.
func checkCanceled(ctx context.Context) {
	if ctx == nil {
		return
	}
	if err := ctx.Err(); err != nil {
		panic(Canceled{err})
	}
}
