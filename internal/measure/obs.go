package measure

import (
	"fmt"

	"recordroute/internal/obs"
)

// Observe attaches an observability configuration to the campaign's
// shared engine and every VP prober. A nil or inactive observer is a
// no-op, leaving the hot paths with their bare nil checks. Attaching
// never perturbs the run: all hooks record synchronously and schedule
// nothing (see package obs).
func (c *Campaign) Observe(o *obs.Observer) {
	if !o.Active() {
		return
	}
	if o.PerNode {
		c.Net.EnableNodeCounters()
	}
	if o.Trace != nil {
		c.Net.SetTracer(o.Trace.NetworkTracer())
		for _, vp := range c.VPs {
			vp.Prober.SetTracer(o.Trace.ProberTracer(vp.Name))
		}
	}
}

// Metrics captures the campaign's counters as a single-shard snapshot.
func (c *Campaign) Metrics(label string) *obs.Snapshot {
	return obs.NewSnapshot(label, obs.Capture("shard0", c.Net))
}

// Observe attaches an observability configuration to every shard
// replica — existing ones immediately, lazily built ones at init. Each
// replica's network and probers report into the same observer; the
// trace ring is mutex-guarded, so concurrent shards may interleave
// their (shard-local-clock-stamped) events.
func (pc *ParallelCampaign) Observe(o *obs.Observer) {
	if !o.Active() {
		return
	}
	pc.observer = o
	for _, rep := range pc.replicas {
		pc.observeReplica(rep)
	}
}

// observeReplica applies the stored observer to one replica.
func (pc *ParallelCampaign) observeReplica(rep *replica) {
	o := pc.observer
	if !o.Active() {
		return
	}
	if o.PerNode {
		rep.topo.Net.EnableNodeCounters()
	}
	if o.Trace != nil {
		rep.topo.Net.SetTracer(o.Trace.NetworkTracer())
		for _, vp := range rep.vps {
			vp.Prober.SetTracer(o.Trace.ProberTracer(vp.Name))
		}
	}
}

// Metrics captures every shard replica's counters ("shard0".."shardN")
// into a labeled snapshot. Dead shards are captured too — their
// counters reflect the work done before the failure, and ShardErrors
// already marks them. The merged totals are shard-count-invariant for
// sharding-safe workloads (the determinism contract): every simulated
// event happens exactly once in exactly one engine regardless of K.
func (pc *ParallelCampaign) Metrics(label string) *obs.Snapshot {
	pc.mustInit()
	shards := make([]obs.ShardMetrics, len(pc.replicas))
	for i, rep := range pc.replicas {
		shards[i] = obs.Capture(fmt.Sprintf("shard%d", i), rep.topo.Net)
	}
	return obs.NewSnapshot(label, shards...)
}
