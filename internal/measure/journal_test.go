package measure

import (
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"recordroute/internal/probe"
)

func testMeta() JournalMeta {
	return JournalMeta{
		Digest:      testConfig().Digest(),
		Shards:      3,
		Quantum:     DefaultQuantum,
		Rate:        100,
		Timeout:     2 * time.Second,
		ShuffleSeed: 7,
	}
}

// TestJournalResumeRoundTrip pins the checkpoint file mechanics: a
// journal written by one process hands every completed batch back to
// the next one, with phase kinds remembered and batches addressable by
// (phase, vp).
func TestJournalResumeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.jsonl")
	meta := testMeta()

	j, err := CreateJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	a := netip.MustParseAddr
	rs := []probe.Result{{
		Spec: probe.Spec{Dst: a("10.0.0.1"), Kind: probe.PingRR},
		Type: probe.EchoReply, From: a("10.0.0.1"), ReplyIPID: 9,
	}}
	gs := [][]probe.Result{{{
		Spec: probe.Spec{Dst: a("10.0.0.2"), Kind: probe.Ping},
		Type: probe.NoResponse,
	}}}
	if p := j.beginPhase("ping-rr-all"); p != 0 {
		t.Fatalf("first phase = %d, want 0", p)
	}
	j.recordResults(0, "ping-rr-all", "mlab-0", rs)
	if p := j.beginPhase("ping-all"); p != 1 {
		t.Fatalf("second phase = %d, want 1", p)
	}
	j.recordGroups(1, "ping-all", "mlab-1", gs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := ResumeJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Archived(); got != 2 {
		t.Fatalf("Archived() = %d, want 2", got)
	}
	back, ok := r.archivedResults(0, "mlab-0")
	if !ok || len(back) != 1 || back[0].Dst != rs[0].Dst || back[0].ReplyIPID != 9 {
		t.Fatalf("archivedResults(0, mlab-0) = %+v, %v", back, ok)
	}
	if _, ok := r.archivedGroups(0, "mlab-0"); ok {
		t.Error("flat batch answered a groups lookup")
	}
	bg, ok := r.archivedGroups(1, "mlab-1")
	if !ok || len(bg) != 1 || len(bg[0]) != 1 || bg[0][0].Dst != gs[0][0].Dst {
		t.Fatalf("archivedGroups(1, mlab-1) = %+v, %v", bg, ok)
	}
	// The replay must re-open the same phases in the same order; a kind
	// mismatch is a different workload and must refuse loudly.
	if p := r.beginPhase("ping-rr-all"); p != 0 {
		t.Fatalf("resumed first phase = %d, want 0", p)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("phase-kind mismatch did not panic")
			}
		}()
		r.beginPhase("ping-rr-udp-all") // journal says phase 1 was ping-all
	}()
}

// TestJournalResumeMetaMismatch: a journal written for a different
// campaign (different digest or options) must be refused, not replayed.
func TestJournalResumeMetaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.jsonl")
	j, err := CreateJournal(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := testMeta()
	other.ShuffleSeed++
	if _, err := ResumeJournal(path, other); err == nil {
		t.Fatal("meta mismatch accepted")
	} else if !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestJournalResumeTruncatedTail: a kill mid-write leaves a partial
// final line. Resume must keep every complete record, discard the
// wound, and leave the file truncated so appended records stay valid
// JSONL.
func TestJournalResumeTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.jsonl")
	meta := testMeta()
	j, err := CreateJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	j.beginPhase("ping-rr-all")
	a := netip.MustParseAddr
	j.recordResults(0, "ping-rr-all", "mlab-0", []probe.Result{{
		Spec: probe.Spec{Dst: a("10.0.0.1"), Kind: probe.PingRR},
		Type: probe.EchoReply, From: a("10.0.0.1"),
	}})
	j.Close()

	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wound := append(append([]byte{}, clean...),
		[]byte(`{"t":"vp","phase":0,"kind":"ping-rr-all","vp":"mlab-1","resu`)...)
	if err := os.WriteFile(path, wound, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := ResumeJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Archived(); got != 1 {
		t.Fatalf("Archived() = %d after truncated tail, want 1", got)
	}
	if _, ok := r.archivedResults(0, "mlab-1"); ok {
		t.Error("partial line resurrected as an archived batch")
	}
	r.Close()
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(clean) {
		t.Errorf("file not truncated back to the last complete line:\n%q\nwant\n%q", after, clean)
	}
}

// TestJournalResumeMissingFile: resuming with no journal on disk is a
// fresh start, so callers can pass -resume unconditionally.
func TestJournalResumeMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.jsonl")
	j, err := ResumeJournal(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if got := j.Archived(); got != 0 {
		t.Fatalf("Archived() = %d on a fresh journal", got)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal file not created: %v", err)
	}
}

// TestJournalShardPanicResume is the shard-failure half of the
// resume-equals-uninterrupted property (DESIGN.md §11), at the measure
// layer where the fault can be injected precisely: a shard that dies
// mid-campaign loses its current-phase batches, and a fresh fleet
// resumed from the journal re-probes exactly those, reproducing the
// uninterrupted journaled run field-for-field modulo ReplyIPID.
func TestJournalShardPanicResume(t *testing.T) {
	cfg := testConfig()
	meta := testMeta()
	opts := probe.Options{Rate: 100}

	dir := t.TempDir()
	newFleet := func(name string, resume bool) *ParallelCampaign {
		t.Helper()
		pc, err := NewParallelCampaign(cfg, meta.Shards)
		if err != nil {
			t.Fatal(err)
		}
		var j *Journal
		if resume {
			j, err = ResumeJournal(filepath.Join(dir, name), meta)
		} else {
			j, err = CreateJournal(filepath.Join(dir, name), meta)
		}
		if err != nil {
			t.Fatal(err)
		}
		pc.AttachJournal(j)
		return pc
	}

	dests := func(pc *ParallelCampaign) []netip.Addr {
		pc.mustInit()
		out := make([]netip.Addr, 0, 10)
		for _, d := range pc.replicas[0].topo.Dests {
			out = append(out, d.Addr)
			if len(out) == 10 {
				break
			}
		}
		return out
	}

	// Uninterrupted journaled run: the baseline both halves compare to.
	base := newFleet("base.jsonl", false)
	ds := dests(base)
	baseRR := base.PingRRAll(ds, opts, nil)
	basePing := base.PingAll(ds[:4], 2, opts)
	base.Journal().Close()

	// Crashed run: phase 0 completes, then shard 1 dies early in phase
	// 1, losing its ping groups but keeping its journaled phase-0 batch.
	crash := newFleet("crash.jsonl", false)
	crashRR := crash.PingRRAll(ds, opts, nil)
	crash.replicas[1].eng.Schedule(0, func() { panic("injected shard fault") })
	crash.PingAll(ds[:4], 2, opts)
	if errs := crash.ShardErrors(); len(errs) != 1 || errs[0].Shard != 1 {
		t.Fatalf("ShardErrors = %v, want exactly shard 1", errs)
	}
	comparePerVP(t, "crashed phase 0", baseRR, crashRR)
	crash.Journal().Close()

	// Resume: a fresh fleet over the same config replays the journal.
	// Phase 0 must come back entirely from the archive; phase 1 re-runs
	// only what the dead shard lost.
	res := newFleet("crash.jsonl", true)
	if got := res.Journal().Archived(); got == 0 {
		t.Fatal("resumed journal carries no archived batches")
	}
	resRR := res.PingRRAll(ds, opts, nil)
	resPing := res.PingAll(ds[:4], 2, opts)
	if errs := res.ShardErrors(); len(errs) != 0 {
		t.Fatalf("resumed fleet reported shard errors: %v", errs)
	}
	res.Journal().Close()

	comparePerVP(t, "resumed ping-rr-all", baseRR, resRR)
	if len(resPing) != len(basePing) {
		t.Fatalf("resumed ping-all covers %d VPs, want %d", len(resPing), len(basePing))
	}
	for vp, want := range basePing {
		got := resPing[vp]
		if len(got) != len(want) {
			t.Errorf("VP %s: %d ping groups, want %d", vp, len(got), len(want))
			continue
		}
		for i := range want {
			comparePerVP(t, "resumed ping-all "+vp, map[string][]probe.Result{vp: want[i]},
				map[string][]probe.Result{vp: got[i]})
		}
	}
}
