package measure

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"recordroute/internal/netsim"
	"recordroute/internal/trace"
)

// Stop-set traffic counters, bumped once per completed VP round on
// the engine that ran it. They are ordinary (non-local) counters, so
// obs merges them shard-invariantly: per-VP stats sum to the same
// totals whatever the partition (DESIGN.md §14).
const (
	counterGlobalHit   = "trace.stop.global.hit"
	counterLocalHit    = "trace.stop.local.hit"
	counterStopMiss    = "trace.stop.miss"
	counterProbesSaved = "trace.probes.saved"
)

// countRound surfaces one VP round's stop-set economics as engine
// counters. All four are always touched so every engine that ran a
// round carries the full counter set, keeping snapshot keys stable.
func countRound(net *netsim.Network, st trace.Stats) {
	net.Count(counterGlobalHit, uint64(st.GlobalStops))
	net.Count(counterLocalHit, uint64(st.LocalStops))
	net.Count(counterStopMiss, uint64(st.Misses))
	net.Count(counterProbesSaved, uint64(st.Saved))
}

// mergeDeltas unions a round's per-VP deltas into the session's
// global set, walking VPs in sorted name order (the order is
// immaterial — min-merge union commutes, which is the whole point —
// but a deterministic walk keeps failures reproducible). Each delta
// passes through the canonical codec inside Session.Merge.
func mergeDeltas(sess *trace.Session, out map[string]*trace.VPRound) {
	names := make([]string, 0, len(out))
	for name := range out {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := sess.Merge(out[name].Delta); err != nil {
			panic(fmt.Sprintf("measure: stop-set merge: %v", err))
		}
	}
}

// DoubletreeAll runs one traceroute round: every VP with targets in
// perVP traces them sequentially under sess's stop sets (or
// exhaustively when opts.Exhaustive), then the per-VP deltas are
// unioned into sess.Global — so the next round's forward probing
// stops on everything this round discovered.
func (c *Campaign) DoubletreeAll(perVP map[string][]netip.Addr, sess *trace.Session, opts trace.Options) map[string]*trace.VPRound {
	checkCanceled(c.ctx)
	out := make(map[string]*trace.VPRound, len(perVP))
	for _, vp := range c.VPs {
		if len(perVP[vp.Name]) > 0 {
			sess.State(vp.Name) // pre-create while single-threaded
		}
	}
	for _, vp := range c.VPs {
		vp := vp
		ds := perVP[vp.Name]
		if len(ds) == 0 {
			continue
		}
		trace.Run(vp.Name, vp.Prober, sess.State(vp.Name), sess.Global, sess.PrefixOf, ds, opts, func(r *trace.VPRound) {
			out[vp.Name] = r
			countRound(c.Net, r.Stats)
		})
	}
	c.Eng.Run()
	mergeDeltas(sess, out)
	return out
}

// DoubletreeAll is the sharded round: each VP traces inside its own
// replica against the frozen sess.Global, per-VP deltas are merged
// after every shard drains, and — journaled — each completed VP round
// is checkpointed as its traces (stop-set effects replay from them via
// trace.Rebuild) with the merged set's codec bytes sealing the phase.
func (pc *ParallelCampaign) DoubletreeAll(perVP map[string][]netip.Addr, sess *trace.Session, opts trace.Options) map[string]*trace.VPRound {
	pc.mustInit()
	phase, journaled := pc.beginPhase("doubletree-all")
	out := make(map[string]*trace.VPRound, len(perVP))
	for _, name := range pc.vpNames {
		if len(perVP[name]) > 0 {
			sess.State(name) // pre-create while single-threaded
		}
	}
	skip := make(map[string]bool)
	if journaled {
		for _, name := range pc.vpNames {
			if trs, ok := pc.journal.archivedTraces(phase, name); ok {
				out[name] = trace.Rebuild(name, sess.State(name), sess.PrefixOf, trs, opts)
				skip[name] = true
				n := 0
				for _, t := range trs {
					n += t.ProbesSent()
				}
				pc.replaySeqs(name, n)
			}
		}
	}
	var mu sync.Mutex
	pc.eachShard(func(rep *replica) {
		for _, vp := range rep.vps {
			vp := vp
			if skip[vp.Name] {
				continue
			}
			ds := perVP[vp.Name]
			if len(ds) == 0 {
				continue
			}
			trace.Run(vp.Name, vp.Prober, sess.State(vp.Name), sess.Global, sess.PrefixOf, ds, opts, func(r *trace.VPRound) {
				mu.Lock()
				out[vp.Name] = r
				mu.Unlock()
				countRound(rep.topo.Net, r.Stats)
				pc.checkpoint(func() {
					if journaled {
						pc.journal.recordTraces(phase, "doubletree-all", vp.Name, r.Traces)
					}
				})
			})
		}
		rep.eng.Run()
	})
	pc.syncClocks()
	mergeDeltas(sess, out)
	if journaled {
		data, err := sess.Global.MarshalBinary()
		if err != nil {
			panic(fmt.Sprintf("measure: stop-set checkpoint: %v", err))
		}
		pc.journal.checkStopSet(phase, data)
	}
	pc.endPhase(phase, journaled)
	return out
}
