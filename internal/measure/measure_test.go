package measure

import (
	"net/netip"
	"testing"

	"recordroute/internal/probe"
	"recordroute/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.MustBuild(topology.DefaultConfig(topology.Epoch2016).Scale(0.15))
}

// unlimitedVPs filters out source-rate-limited VPs and VPs whose
// hosting AS filters options packets (such VPs cannot measure with RR,
// just like the 56 low-response VPs the paper excluded).
func unlimitedVPs(topo *topology.Topology) []*topology.VP {
	var out []*topology.VP
	for _, v := range topo.VPs {
		if !v.SourceRateLimited && !topo.ASes[v.ASIdx].FilterOptions {
			out = append(out, v)
		}
	}
	return out
}

func responsiveDests(topo *topology.Topology, n int) []netip.Addr {
	var out []netip.Addr
	for _, d := range topo.Dests {
		if d.GTPingResponsive && !d.GTRRDrop && !topo.ASes[d.ASIdx].FilterOptions {
			out = append(out, d.Addr)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// rrCapableVPs empirically filters to VPs that can complete a ping-RR
// measurement: like the paper's study, VPs whose local path filters
// options are excluded.
func rrCapableVPs(t *testing.T, topo *topology.Topology, probeDest netip.Addr, max int) []*topology.VP {
	t.Helper()
	var out []*topology.VP
	for i, v := range unlimitedVPs(topo) {
		p := probe.New(probe.NewSimTransport(v.Host, topo.Net.Engine()), uint16(0x7100+i))
		ok := false
		p.StartOne(probe.Spec{Dst: probeDest, Kind: probe.PingRR}, 0, func(r probe.Result) {
			ok = r.Type == probe.EchoReply && r.HasRR
		})
		topo.Net.Engine().Run()
		if ok {
			out = append(out, v)
			if len(out) == max {
				break
			}
		}
	}
	return out
}

func TestCampaignPingRRAllCollectsEveryVP(t *testing.T) {
	topo := testTopo(t)
	dests := responsiveDests(topo, 10)
	vps := rrCapableVPs(t, topo, dests[0], 4)
	if len(vps) < 2 {
		t.Fatalf("only %d RR-capable VPs", len(vps))
	}
	c := NewCampaign(topo, vps)
	got := c.PingRRAll(dests, probe.Options{Rate: 200}, nil)
	if len(got) != len(vps) {
		t.Fatalf("results for %d VPs, want %d", len(got), len(vps))
	}
	for name, rs := range got {
		if len(rs) != len(dests) {
			t.Fatalf("%s: %d results, want %d", name, len(rs), len(dests))
		}
		for i, r := range rs {
			if r.Dst != dests[i] {
				t.Errorf("%s: result %d for %v, want %v (order preserved)", name, i, r.Dst, dests[i])
			}
			if r.Type != probe.EchoReply || !r.HasRR {
				t.Errorf("%s → %v: type=%v hasRR=%v", name, r.Dst, r.Type, r.HasRR)
			}
		}
	}
}

func TestCampaignOrderPermutation(t *testing.T) {
	topo := testTopo(t)
	vps := unlimitedVPs(topo)[:1]
	c := NewCampaign(topo, vps)
	dests := responsiveDests(topo, 6)
	reversed := func(vp string, ds []netip.Addr) []netip.Addr {
		out := make([]netip.Addr, len(ds))
		for i, d := range ds {
			out[len(ds)-1-i] = d
		}
		return out
	}
	got := c.PingRRAll(dests, probe.Options{Rate: 200}, reversed)
	rs := got[vps[0].Name]
	for i := range rs {
		if rs[i].Dst != dests[len(dests)-1-i] {
			t.Fatalf("order not permuted: result %d is %v", i, rs[i].Dst)
		}
	}
}

func TestPingBatchGroupsRepeats(t *testing.T) {
	topo := testTopo(t)
	vp := NewVantagePoint("x", unlimitedVPs(topo)[0].Host, topo.Net.Engine(), 0x5001)
	dests := responsiveDests(topo, 5)
	var grouped [][]probe.Result
	vp.PingBatch(dests, 3, probe.Options{Rate: 500}, func(g [][]probe.Result) { grouped = g })
	topo.Net.Engine().Run()
	if len(grouped) != 5 {
		t.Fatalf("groups = %d", len(grouped))
	}
	for i, g := range grouped {
		if len(g) != 3 {
			t.Fatalf("dest %d: %d results, want 3", i, len(g))
		}
		for _, r := range g {
			if r.Dst != dests[i] {
				t.Errorf("group %d holds result for %v", i, r.Dst)
			}
			if r.Type != probe.EchoReply {
				t.Errorf("dest %v ping: %v", r.Dst, r.Type)
			}
		}
	}
}

func TestTracerouteReachesAndOrdersHops(t *testing.T) {
	topo := testTopo(t)
	raw := unlimitedVPs(topo)[0]
	vp := NewVantagePoint(raw.Name, raw.Host, topo.Net.Engine(), 0x5002)
	dst := responsiveDests(topo, 1)[0]
	var tr *Trace
	vp.Traceroute(dst, TraceOptions{}, func(t Trace) { tr = &t })
	topo.Net.Engine().Run()
	if tr == nil || !tr.Reached {
		t.Fatalf("trace did not reach %v: %+v", dst, tr)
	}
	if tr.DestTTL == 0 || int(tr.DestTTL) != len(tr.Hops) {
		t.Errorf("DestTTL=%d hops=%d", tr.DestTTL, len(tr.Hops))
	}
	last := tr.Hops[len(tr.Hops)-1]
	if !last.Final || last.Addr != dst {
		t.Errorf("final hop = %+v", last)
	}
	for _, h := range tr.HopAddrs() {
		if topo.ASOf(h) < 0 {
			t.Errorf("hop %v outside address plan", h)
		}
	}
}

func TestTracerouteGapLimitStopsDeadTrace(t *testing.T) {
	topo := testTopo(t)
	raw := unlimitedVPs(topo)[0]
	vp := NewVantagePoint(raw.Name, raw.Host, topo.Net.Engine(), 0x5003)
	// An address inside the plan's space but in no AS: first hops
	// answer, then silence. Use a dest AS's unused prefix slot.
	dead := netip.MustParseAddr("100.0.200.1")
	var tr *Trace
	vp.Traceroute(dead, TraceOptions{GapLimit: 3, MaxTTL: 25}, func(t Trace) { tr = &t })
	topo.Net.Engine().Run()
	if tr == nil {
		t.Fatal("trace never completed")
	}
	if tr.Reached {
		t.Fatal("reached a nonexistent destination")
	}
	silent := 0
	for i := len(tr.Hops) - 1; i >= 0 && !tr.Hops[i].Responded(); i-- {
		silent++
	}
	if silent != 3 {
		t.Errorf("trailing silent hops = %d, want gap limit 3", silent)
	}
}

func TestTracerouteBatchCompletes(t *testing.T) {
	topo := testTopo(t)
	raw := unlimitedVPs(topo)[0]
	vp := NewVantagePoint(raw.Name, raw.Host, topo.Net.Engine(), 0x5004)
	dests := responsiveDests(topo, 8)
	var out []Trace
	vp.TracerouteBatch(dests, TraceOptions{StartRate: 100}, func(ts []Trace) { out = ts })
	topo.Net.Engine().Run()
	if len(out) != len(dests) {
		t.Fatalf("traces = %d, want %d", len(out), len(dests))
	}
	for i, tr := range out {
		if tr.Dst != dests[i] {
			t.Errorf("trace %d for %v, want %v", i, tr.Dst, dests[i])
		}
		if !tr.Reached {
			t.Errorf("trace to %v did not reach", tr.Dst)
		}
	}
}

func TestTTLPingRRBatchPanicsOnLengthMismatch(t *testing.T) {
	topo := testTopo(t)
	raw := unlimitedVPs(topo)[0]
	vp := NewVantagePoint(raw.Name, raw.Host, topo.Net.Engine(), 0x5005)
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatched ttls")
		}
	}()
	vp.TTLPingRRBatch([]netip.Addr{netip.MustParseAddr("100.0.0.1")}, nil, probe.Options{}, nil)
}
