// Package measure implements the study's measurement primitives on top
// of the probe engine: ping, ping-RR, ping-RRudp, TTL-limited ping-RR,
// and traceroute, issued per vantage point, plus campaign helpers that
// fan a batch across every vantage point concurrently inside one
// simulation engine run.
package measure

import (
	"fmt"
	"net/netip"

	"recordroute/internal/netsim"
	"recordroute/internal/probe"
)

// VantagePoint couples a named measurement source with its prober.
type VantagePoint struct {
	// Name identifies the VP in results (e.g. "mlab-3").
	Name string
	// Prober sends and matches this VP's probes.
	Prober *probe.Prober
}

// NewVantagePoint wires a prober to a simulated host. id must be unique
// per VP so replies never cross-match.
func NewVantagePoint(name string, host *netsim.Host, eng *netsim.Engine, id uint16) *VantagePoint {
	return &VantagePoint{
		Name:   name,
		Prober: probe.New(probe.NewSimTransport(host, eng), id),
	}
}

// specsFor expands destinations into probe specs of one kind.
func specsFor(dsts []netip.Addr, kind probe.Kind) []probe.Spec {
	specs := make([]probe.Spec, len(dsts))
	for i, d := range dsts {
		specs[i] = probe.Spec{Dst: d, Kind: kind}
	}
	return specs
}

// PingBatch sends count plain pings to every destination (the paper's
// responsiveness study sent three) and reports all results, grouped
// per destination in send order.
func (vp *VantagePoint) PingBatch(dsts []netip.Addr, count int, opts probe.Options, done func([][]probe.Result)) {
	if count < 1 {
		count = 1
	}
	var specs []probe.Spec
	for r := 0; r < count; r++ {
		specs = append(specs, specsFor(dsts, probe.Ping)...)
	}
	vp.Prober.StartBatch(specs, opts, func(rs []probe.Result) {
		grouped := make([][]probe.Result, len(dsts))
		for i := range dsts {
			for r := 0; r < count; r++ {
				grouped[i] = append(grouped[i], rs[r*len(dsts)+i])
			}
		}
		done(grouped)
	})
}

// PingBatchRange sends the [lo,hi) destination slice of a count-round
// indexed ping batch over dests. The global schedule is PingBatch's —
// count rounds, round-major, index g = round*len(dests) + destIdx — but
// every probe derives its send time and sequence numbers from g via
// StartIndexedBatch, so contiguous ranges run on separate engine
// replicas reproduce the unsplit batch per destination. Results come
// back grouped per destination of the range, in send order.
func (vp *VantagePoint) PingBatchRange(dests []netip.Addr, lo, hi, count int, opts probe.Options, done func([][]probe.Result)) {
	if count < 1 {
		count = 1
	}
	width := hi - lo
	specs := make([]probe.IndexedSpec, 0, width*count)
	for r := 0; r < count; r++ {
		for i := lo; i < hi; i++ {
			specs = append(specs, probe.IndexedSpec{Index: r*len(dests) + i, Spec: probe.Spec{Dst: dests[i], Kind: probe.Ping}})
		}
	}
	vp.Prober.StartIndexedBatch(specs, opts, func(rs []probe.Result) {
		grouped := make([][]probe.Result, width)
		for i := 0; i < width; i++ {
			for r := 0; r < count; r++ {
				grouped[i] = append(grouped[i], rs[r*width+i])
			}
		}
		done(grouped)
	})
}

// PingSeriesSlice sends the selected addresses' slice of a rounds-round
// interleaved ping series over addrs (alias collection's IP-ID sampling
// schedule): round-major, global index g = round*len(addrs) + addrIdx.
// sel lists this slice's addr indices in increasing order. Results
// arrive in slice spec order — rounds blocks of len(sel).
func (vp *VantagePoint) PingSeriesSlice(addrs []netip.Addr, sel []int, rounds int, opts probe.Options, done func([]probe.Result)) {
	specs := make([]probe.IndexedSpec, 0, len(sel)*rounds)
	for r := 0; r < rounds; r++ {
		for _, i := range sel {
			specs = append(specs, probe.IndexedSpec{Index: r*len(addrs) + i, Spec: probe.Spec{Dst: addrs[i], Kind: probe.Ping}})
		}
	}
	vp.Prober.StartIndexedBatch(specs, opts, done)
}

// PingRRBatch sends one ping-RR to every destination.
func (vp *VantagePoint) PingRRBatch(dsts []netip.Addr, opts probe.Options, done func([]probe.Result)) {
	vp.Prober.StartBatch(specsFor(dsts, probe.PingRR), opts, done)
}

// PingRRUDPBatch sends one ping-RRudp to every destination (§3.3's
// reclassification probe).
func (vp *VantagePoint) PingRRUDPBatch(dsts []netip.Addr, opts probe.Options, done func([]probe.Result)) {
	vp.Prober.StartBatch(specsFor(dsts, probe.PingRRUDP), opts, done)
}

// PingTSBatch sends one Internet Timestamp probe to every destination.
func (vp *VantagePoint) PingTSBatch(dsts []netip.Addr, opts probe.Options, done func([]probe.Result)) {
	vp.Prober.StartBatch(specsFor(dsts, probe.PingTS), opts, done)
}

// TTLPingRRBatch sends ping-RRs with per-destination initial TTLs
// (§4.2's low-impact probing). ttls[i] applies to dsts[i].
func (vp *VantagePoint) TTLPingRRBatch(dsts []netip.Addr, ttls []uint8, opts probe.Options, done func([]probe.Result)) {
	if len(ttls) != len(dsts) {
		panic(fmt.Sprintf("measure: %d TTLs for %d destinations", len(ttls), len(dsts)))
	}
	specs := make([]probe.Spec, len(dsts))
	for i, d := range dsts {
		specs[i] = probe.Spec{Dst: d, Kind: probe.TTLPingRR, TTL: ttls[i]}
	}
	vp.Prober.StartBatch(specs, opts, done)
}
