package measure

import (
	"net/netip"
	"reflect"
	"testing"

	"recordroute/internal/probe"
	"recordroute/internal/topology"
)

func testConfig() topology.Config {
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(0.2)
	cfg.Seed = 11
	return cfg
}

// normalize strips the one field the determinism contract exempts:
// destination IP-ID counters observe only shard-local traffic, so the
// absolute IDs stamped on replies differ across executors.
func normalize(rs []probe.Result) []probe.Result {
	out := append([]probe.Result(nil), rs...)
	for i := range out {
		out[i].ReplyIPID = 0
	}
	return out
}

func comparePerVP(t *testing.T, label string, seq, par map[string][]probe.Result) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s: %d VPs sequential vs %d parallel", label, len(seq), len(par))
	}
	for vp, srs := range seq {
		prs, ok := par[vp]
		if !ok {
			t.Errorf("%s: VP %s missing from parallel results", label, vp)
			continue
		}
		if len(srs) != len(prs) {
			t.Errorf("%s: VP %s has %d sequential vs %d parallel results", label, vp, len(srs), len(prs))
			continue
		}
		ns, np := normalize(srs), normalize(prs)
		for i := range ns {
			if !reflect.DeepEqual(ns[i], np[i]) {
				t.Errorf("%s: VP %s result %d differs:\nsequential: %+v\nparallel:   %+v",
					label, vp, i, ns[i], np[i])
				break
			}
		}
	}
}

// TestParallelCampaignMatchesSequential is the measure-level determinism
// contract: every campaign primitive returns identical results (modulo
// ReplyIPID) whether VPs share one engine or split across shard
// replicas. Running it under -race also exercises the shard worker pool.
func TestParallelCampaignMatchesSequential(t *testing.T) {
	cfg := testConfig()
	opts := probe.Options{Rate: 100}

	topo, err := topology.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := NewCampaign(topo, topo.VPs)

	par, err := NewParallelCampaign(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}

	dests := make([]netip.Addr, 0, 40)
	for _, d := range topo.Dests {
		dests = append(dests, d.Addr)
		if len(dests) == 40 {
			break
		}
	}
	if len(dests) < 10 {
		t.Fatalf("only %d destinations at test scale", len(dests))
	}

	// Shuffle per VP like the study does, so orderings are VP-specific.
	orderFor := func(vp string, ds []netip.Addr) []netip.Addr {
		out := append([]netip.Addr(nil), ds...)
		rot := len(vp) % len(out)
		return append(out[rot:], out[:rot]...)
	}

	comparePerVP(t, "PingRRAll",
		seq.PingRRAll(dests, opts, orderFor),
		par.PingRRAll(dests, opts, orderFor))

	// Grouped plain pings.
	seqPing := seq.PingAll(dests[:10], 2, opts)
	parPing := par.PingAll(dests[:10], 2, opts)
	if len(seqPing) != len(parPing) {
		t.Fatalf("PingAll: VP count %d vs %d", len(seqPing), len(parPing))
	}
	for vp, gs := range seqPing {
		gp := parPing[vp]
		if len(gs) != len(gp) {
			t.Errorf("PingAll: VP %s group count %d vs %d", vp, len(gs), len(gp))
			continue
		}
		for i := range gs {
			if !reflect.DeepEqual(normalize(gs[i]), normalize(gp[i])) {
				t.Errorf("PingAll: VP %s dest %d differs", vp, i)
				break
			}
		}
	}

	// Per-VP target lists.
	perVP := make(map[string][]netip.Addr)
	for i, name := range par.VPNames() {
		perVP[name] = dests[i%len(dests) : min(i%len(dests)+5, len(dests))]
	}
	comparePerVP(t, "PingRRUDPAll",
		seq.PingRRUDPAll(perVP, opts),
		par.PingRRUDPAll(perVP, opts))

	// Clocks must agree across shards and with the sequential engine
	// after every primitive (phases start at the same virtual instant).
	for i, rep := range par.replicas {
		if rep.eng.Now() != seq.Eng.Now() {
			t.Errorf("shard %d clock %v != sequential clock %v", i, rep.eng.Now(), seq.Eng.Now())
		}
	}
}

// TestParallelCampaignShardFailureIsolated is the partial-results
// contract: a shard that panics mid-primitive is recovered, reported
// through ShardErrors with its lost VPs, and the surviving shards keep
// returning complete results — in that primitive and in later ones.
func TestParallelCampaignShardFailureIsolated(t *testing.T) {
	par, err := NewParallelCampaign(testConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	names := par.VPNames() // forces replica build
	if len(names) < 3 {
		t.Fatalf("only %d VPs at test scale", len(names))
	}

	dests := make([]netip.Addr, 0, 10)
	for _, d := range par.replicas[0].topo.Dests {
		dests = append(dests, d.Addr)
		if len(dests) == 10 {
			break
		}
	}

	// Kill shard 1 mid-primitive: the injected event panics while the
	// shard engine drains its probe batches, before any batch completes.
	par.replicas[1].eng.Schedule(0, func() { panic("injected shard fault") })

	dead := make(map[string]bool)
	for i, n := range names {
		if i%3 == 1 {
			dead[n] = true
		}
	}

	opts := probe.Options{Rate: 100}
	got := par.PingRRAll(dests, opts, nil)

	errs := par.ShardErrors()
	if len(errs) != 1 {
		t.Fatalf("ShardErrors = %v, want exactly the killed shard", errs)
	}
	se := errs[0]
	if se.Shard != 1 || se.Err == nil {
		t.Errorf("ShardError = shard %d err %v, want shard 1 with an error", se.Shard, se.Err)
	}
	if len(se.VPs) != len(dead) {
		t.Errorf("ShardError names %d VPs, want %d", len(se.VPs), len(dead))
	}
	for _, n := range se.VPs {
		if !dead[n] {
			t.Errorf("ShardError names VP %s, which lives on another shard", n)
		}
	}

	for _, n := range names {
		rs, ok := got[n]
		if dead[n] {
			if ok {
				t.Errorf("dead-shard VP %s returned %d results", n, len(rs))
			}
			if par.VP(n) != nil {
				t.Errorf("VP(%q) on a dead shard is non-nil", n)
			}
			continue
		}
		if !ok || len(rs) != len(dests) {
			t.Errorf("surviving VP %s: %d results, want %d", n, len(rs), len(dests))
		}
	}

	// A later primitive still runs on the survivors without re-reporting
	// new failures.
	again := par.PingAll(dests[:3], 1, opts)
	for _, n := range names {
		if dead[n] {
			if _, ok := again[n]; ok {
				t.Errorf("dead-shard VP %s resurfaced in a later primitive", n)
			}
			continue
		}
		if len(again[n]) != 3 {
			t.Errorf("surviving VP %s: %d ping groups, want 3", n, len(again[n]))
		}
	}
	if got := par.ShardErrors(); len(got) != 1 {
		t.Errorf("ShardErrors grew to %d after a healthy primitive", len(got))
	}
}

// TestParallelCampaignShardClamp checks that absurd shard counts clamp
// to the VP population instead of building empty replicas.
func TestParallelCampaignShardClamp(t *testing.T) {
	par, err := NewParallelCampaign(testConfig(), 10000)
	if err != nil {
		t.Fatal(err)
	}
	names := par.VPNames()
	if got := par.NumShards(); got != len(names) {
		t.Errorf("NumShards = %d, want clamp to %d VPs", got, len(names))
	}
	if par.VP(names[0]) == nil {
		t.Errorf("VP(%q) = nil after clamp", names[0])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
