package probe

import (
	"testing"
	"time"

	"recordroute/internal/topology"
)

// TestExpectAndSendSpoofed exercises the reverse-traceroute primitive
// directly: VP B registers an expectation, VP A transmits the probe
// with B's source address, and B's prober matches the reply.
func TestExpectAndSendSpoofed(t *testing.T) {
	topo := topology.MustBuild(topology.DefaultConfig(topology.Epoch2016).Scale(0.15))
	var clean []*topology.VP
	for _, v := range topo.VPs {
		if !v.SourceRateLimited && !topo.ASes[v.ASIdx].FilterOptions {
			clean = append(clean, v)
		}
	}
	if len(clean) < 2 {
		t.Skip("need two clean VPs")
	}
	sender := New(NewSimTransport(clean[0].Host, topo.Net.Engine()), 0x0aaa)
	receiver := New(NewSimTransport(clean[1].Host, topo.Net.Engine()), 0x0bbb)

	d := pickDests(topo, 1)[0]
	spec := Spec{Dst: d.Addr, Kind: PingRR}
	var got *Result
	id, seq, ok := receiver.Expect(spec, time.Second, func(r Result) { got = &r })
	if !ok {
		t.Fatal("Expect refused with an empty sequence space")
	}
	if id != receiver.ID() {
		t.Fatalf("Expect returned id %#x, want receiver's %#x", id, receiver.ID())
	}
	if err := sender.SendSpoofed(spec, receiver.LocalAddr(), id, seq); err != nil {
		t.Fatal(err)
	}
	topo.Net.Engine().Run()

	if got == nil {
		t.Fatal("expectation never resolved")
	}
	if got.Type != EchoReply {
		t.Fatalf("spoofed probe reply = %v", got.Type)
	}
	if !got.HasRR {
		t.Fatal("no RR in spoofed reply")
	}
	// The recorded forward path is the SENDER's path to the dest; the
	// reverse hops (after the dest stamp) lead to the RECEIVER.
	if !got.RRContains(d.Addr) && !got.RRFull {
		t.Errorf("destination missing from spoofed RR: %v", got.RR)
	}
	// The sender's prober must not have matched anything.
	_, senderMatched, _, _ := sender.Stats()
	if senderMatched != 0 {
		t.Errorf("sender matched %d responses to a spoofed probe", senderMatched)
	}
}

// TestExpectTimesOut verifies the expectation resolves on silence.
func TestExpectTimesOut(t *testing.T) {
	topo := topology.MustBuild(topology.DefaultConfig(topology.Epoch2016).Scale(0.15))
	receiver := New(NewSimTransport(topo.VPs[0].Host, topo.Net.Engine()), 0x0ccc)
	var got *Result
	receiver.Expect(Spec{Dst: topo.Dests[0].Addr, Kind: PingRR}, 500*time.Millisecond, func(r Result) { got = &r })
	// Nobody sends the probe.
	topo.Net.Engine().Run()
	if got == nil || got.Type != NoResponse {
		t.Fatalf("expectation result = %+v, want timeout", got)
	}
}

// TestLateResponseIgnored: a reply arriving after the probe's timeout
// must not fire done twice; it lands in the ignored counter.
func TestLateResponseIgnored(t *testing.T) {
	topo := topology.MustBuild(topology.DefaultConfig(topology.Epoch2016).Scale(0.15))
	var vp *topology.VP
	for _, v := range topo.VPs {
		if !v.SourceRateLimited && !topo.ASes[v.ASIdx].FilterOptions {
			vp = v
			break
		}
	}
	p := New(NewSimTransport(vp.Host, topo.Net.Engine()), 0x0ddd)
	d := pickDests(topo, 1)[0]
	calls := 0
	// A 1ns timeout expires long before the reply returns.
	p.StartOne(Spec{Dst: d.Addr, Kind: Ping}, time.Nanosecond, func(r Result) {
		calls++
		if r.Type != NoResponse {
			t.Errorf("resolved as %v, want timeout", r.Type)
		}
	})
	topo.Net.Engine().Run()
	if calls != 1 {
		t.Fatalf("done called %d times", calls)
	}
	_, matched, timedOut, ignored := p.Stats()
	if matched != 0 || timedOut != 1 {
		t.Errorf("matched=%d timedOut=%d", matched, timedOut)
	}
	if ignored == 0 {
		t.Error("late reply not counted as ignored")
	}
}
