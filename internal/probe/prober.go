package probe

import (
	"errors"
	"net/netip"
	"time"

	"recordroute/internal/packet"
)

// Options controls batch pacing, timeouts, and retransmission.
type Options struct {
	// Rate is the send rate in probes per second; 0 means DefaultRate.
	Rate float64
	// Timeout is how long to wait for each probe's response; 0 means
	// DefaultTimeout. With retries, each retransmission doubles the
	// previous attempt's timeout (exponential backoff), and Timeout also
	// caps the adaptive first-attempt timeout.
	Timeout time.Duration
	// Retries is how many times an unanswered probe is retransmitted
	// after its attempt times out; 0 keeps the paper's single-shot
	// probing. Each attempt draws a fresh sequence number, so a late
	// reply to a superseded attempt still matches the probe — repeated
	// probing recovers loss-induced false negatives.
	Retries int
	// Adaptive derives the first-attempt timeout from the prober's
	// RTT EWMA (srtt + 4*rttvar, the TCP RTO estimator), clamped to
	// [MinAdaptiveTimeout, Timeout]. Until a first RTT sample exists,
	// the full Timeout applies.
	Adaptive bool
}

// Default pacing values; 20 pps is the rate the paper's studies used.
const (
	DefaultRate    = 20.0
	DefaultTimeout = 2 * time.Second
	// MinAdaptiveTimeout floors the adaptive timeout so a streak of
	// fast replies cannot shrink it into instant false timeouts.
	MinAdaptiveTimeout = 100 * time.Millisecond
)

// MaxOutstanding caps concurrently pending probes. The 16-bit sequence
// space is the hard limit for matching replies to probes; the margin
// below it keeps allocSeq's linear scan for a free number cheap.
const MaxOutstanding = 1<<16 - 1024

// ErrTooManyOutstanding is the Result.Err of a probe refused because
// MaxOutstanding probes were already awaiting responses.
var ErrTooManyOutstanding = errors.New("probe: too many outstanding probes (sequence space exhausted)")

func (o Options) rate() float64 {
	if o.Rate <= 0 {
		return DefaultRate
	}
	return o.Rate
}

func (o Options) timeout() time.Duration {
	if o.Timeout <= 0 {
		return DefaultTimeout
	}
	return o.Timeout
}

func (o Options) attempts() int {
	if o.Retries <= 0 {
		return 1
	}
	return o.Retries + 1
}

// TraceFunc observes probe lifecycle events: "probe.send",
// "probe.retransmit", "probe.reply", "probe.timeout", "probe.senderror".
// at is the transport clock, dst the probed destination, seq the
// attempt's sequence number, and attempt the 1-based attempt count.
// Tracers are called synchronously from the prober's event context and
// must not re-enter it.
type TraceFunc func(at time.Duration, event string, dst netip.Addr, seq uint16, attempt int)

// Prober sends probes over a Transport and matches responses. A Prober
// is single-threaded: all callbacks arrive from the transport's event
// context. Create one Prober per vantage point with a distinct id.
type Prober struct {
	tr      Transport
	id      uint16
	nextSeq uint16
	pending map[uint16]*pendingProbe
	tracer  TraceFunc // nil unless observability is attached

	// RTT EWMA state for adaptive timeouts (RFC 6298 estimator). Zero
	// srtt means no sample yet.
	srtt, rttvar time.Duration

	// counters for diagnostics
	sent, matched, timedOut, ignored, retransmits uint64

	// scratch decode state
	parsed packet.Parsed
	quoted packet.IPv4
	rr     packet.RecordRoute
	ts     packet.Timestamp
}

// probeOp is one logical probe: up to maxAttempts transmissions, each
// under its own sequence number, resolved exactly once. Superseded
// attempts' pending entries stay registered until the op resolves, so a
// reply outrun by a retransmission still matches; resolution removes
// every attempt's entry, after which further replies count as ignored
// duplicates.
type probeOp struct {
	spec        Spec
	done        func(Result)
	maxAttempts int
	baseTimeout time.Duration
	firstSentAt time.Duration
	attempts    int
	seqs        []uint16
	resolved    bool
	external    bool // RTT unusable: Expect-registered or indexed (see StartIndexedBatch)

	// indexed ops draw position-derived sequence numbers instead of the
	// shared counter: attempt k uses indexedBase + (k-1). Destination-
	// sharded campaign phases rely on this to keep seqs — and therefore
	// content-keyed fault draws — invariant under shard count.
	indexed     bool
	indexedBase uint16
}

// pendingProbe is one transmitted attempt awaiting a response.
type pendingProbe struct {
	op      *probeOp
	seq     uint16
	attempt int // 1-based
	sentAt  time.Duration
}

// New returns a Prober for the transport using the given ICMP identifier.
func New(tr Transport, id uint16) *Prober {
	p := &Prober{tr: tr, id: id, pending: make(map[uint16]*pendingProbe)}
	tr.SetReceiver(p.receive)
	return p
}

// SetTracer installs fn as the prober's lifecycle tracer; nil removes
// it. Probers without a tracer pay a single nil check per event.
func (p *Prober) SetTracer(fn TraceFunc) { p.tracer = fn }

// Schedule defers fn on the transport clock; measurement layers use it
// to stagger work without reaching into the transport.
func (p *Prober) Schedule(d time.Duration, fn func()) { p.tr.Schedule(d, fn) }

// Now returns the transport clock.
func (p *Prober) Now() time.Duration { return p.tr.Now() }

// LocalAddr returns the probing source address.
func (p *Prober) LocalAddr() netip.Addr { return p.tr.LocalAddr() }

// Stats returns cumulative (sent, matched, timed out, ignored) counts.
// sent counts transmissions (retransmissions included); timedOut counts
// probes whose final attempt expired.
func (p *Prober) Stats() (sent, matched, timedOut, ignored uint64) {
	return p.sent, p.matched, p.timedOut, p.ignored
}

// Retransmits returns how many transmissions were retries.
func (p *Prober) Retransmits() uint64 { return p.retransmits }

// RTTEstimate returns the prober's smoothed RTT and RTT variance; both
// are zero before the first matched response.
func (p *Prober) RTTEstimate() (srtt, rttvar time.Duration) { return p.srtt, p.rttvar }

// observeRTT folds a matched attempt's RTT into the EWMA (RFC 6298
// constants). Samples are unambiguous even on retransmitted probes:
// each attempt has its own sequence number, so the matched attempt is
// known — Karn's problem does not arise.
func (p *Prober) observeRTT(rtt time.Duration) {
	if rtt < 0 {
		return
	}
	if p.srtt == 0 {
		p.srtt, p.rttvar = rtt, rtt/2
		return
	}
	d := rtt - p.srtt
	if d < 0 {
		d = -d
	}
	p.rttvar += (d - p.rttvar) / 4
	p.srtt += (rtt - p.srtt) / 8
}

// adaptiveTimeout returns the first-attempt timeout under opts: the
// RTO estimate when adaptive and primed, the configured timeout
// otherwise.
func (p *Prober) adaptiveTimeout(o Options) time.Duration {
	max := o.timeout()
	if !o.Adaptive || p.srtt == 0 {
		return max
	}
	rto := p.srtt + 4*p.rttvar
	if rto < MinAdaptiveTimeout {
		rto = MinAdaptiveTimeout
	}
	if rto > max {
		rto = max
	}
	return rto
}

// Outstanding returns the number of probes awaiting response or timeout.
func (p *Prober) Outstanding() int { return len(p.pending) }

// StartOne sends a single probe now and calls done exactly once, with a
// response or a timeout result. Used directly by sequential measurements
// (traceroute) that chain probes from callbacks. No retransmission: the
// probe gets exactly one attempt.
func (p *Prober) StartOne(spec Spec, timeout time.Duration, done func(Result)) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	p.start(spec, 1, timeout, done)
}

// start launches a probe op with the given retransmission budget and
// first-attempt timeout.
func (p *Prober) start(spec Spec, maxAttempts int, timeout time.Duration, done func(Result)) {
	op := &probeOp{
		spec:        spec,
		done:        done,
		maxAttempts: maxAttempts,
		baseTimeout: timeout,
		firstSentAt: p.tr.Now(),
	}
	p.sendAttempt(op)
}

// sendAttempt transmits the op's next attempt, or fails the op when no
// sequence number is available or the spec cannot be serialized.
func (p *Prober) sendAttempt(op *probeOp) {
	var seq uint16
	if op.indexed {
		// Attempt k (1-based) always uses indexedBase + (k-1); attempts
		// has not been incremented yet, so it equals k-1 here. A busy
		// entry means two live indexed ops landed on the same 16-bit
		// value — a programming error in the caller's index spacing, and
		// silently mismatching replies would corrupt the determinism
		// contract, so fail loudly.
		seq = op.indexedBase + uint16(op.attempts)
		if _, busy := p.pending[seq]; busy {
			panic("probe: indexed sequence collision (seq space too dense for batch)")
		}
	} else {
		var ok bool
		seq, ok = p.allocSeq()
		if !ok {
			p.failOp(op, 0, ErrTooManyOutstanding)
			return
		}
	}
	wire, err := op.spec.build(p.tr.LocalAddr(), p.id, seq)
	if err != nil {
		// Malformed spec (e.g. non-IPv4 destination): fail explicitly
		// rather than panicking mid-study.
		p.failOp(op, seq, err)
		return
	}
	op.attempts++
	pp := &pendingProbe{op: op, seq: seq, attempt: op.attempts, sentAt: p.tr.Now()}
	p.pending[seq] = pp
	op.seqs = append(op.seqs, seq)
	p.sent++
	if op.attempts > 1 {
		p.retransmits++
	}
	if p.tracer != nil {
		ev := "probe.send"
		if op.attempts > 1 {
			ev = "probe.retransmit"
		}
		p.tracer(p.tr.Now(), ev, op.spec.Dst, seq, op.attempts)
	}
	p.tr.Inject(wire)
	// Exponential backoff: attempt k waits baseTimeout << (k-1).
	p.tr.Schedule(op.baseTimeout<<(op.attempts-1), func() { p.attemptTimeout(pp) })
}

// attemptTimeout handles an attempt's timer expiring: retransmit while
// budget remains, otherwise resolve the op as unanswered.
func (p *Prober) attemptTimeout(pp *pendingProbe) {
	op := pp.op
	if op.resolved || pp.attempt < op.attempts {
		return // already matched, or a superseded attempt's timer
	}
	if op.attempts < op.maxAttempts {
		p.sendAttempt(op)
		return
	}
	p.resolveOp(op)
	p.timedOut++
	if p.tracer != nil {
		p.tracer(p.tr.Now(), "probe.timeout", op.spec.Dst, pp.seq, op.attempts)
	}
	op.done(Result{Spec: op.spec, Seq: pp.seq, SentAt: op.firstSentAt,
		Type: NoResponse, Attempts: op.attempts})
}

// failOp resolves an op with a SendError result.
func (p *Prober) failOp(op *probeOp, seq uint16, err error) {
	p.resolveOp(op)
	if p.tracer != nil {
		p.tracer(p.tr.Now(), "probe.senderror", op.spec.Dst, seq, op.attempts)
	}
	op.done(Result{Spec: op.spec, Seq: seq, SentAt: p.tr.Now(),
		Type: SendError, Err: err, Attempts: op.attempts})
}

// resolveOp marks the op finished and retires every attempt's pending
// entry; replies arriving afterwards count as ignored duplicates.
func (p *Prober) resolveOp(op *probeOp) {
	op.resolved = true
	for _, s := range op.seqs {
		delete(p.pending, s)
	}
}

// SendWindow bounds how many batch send events sit in the event heap at
// once: launch i enqueues launch i+SendWindow, so StartBatch holds at
// most SendWindow send closures regardless of batch size — previously
// the entire batch was enqueued upfront, ~100k heap entries per VP
// batch at the large scale profile.
const SendWindow = 64

// StartBatch paces the probes out in order at opts.Rate and calls done
// once with results in spec order after every probe has resolved. This
// is the path that honors opts.Retries and opts.Adaptive.
//
// Sends are windowed, not enqueued upfront: each launch chains its
// i+SendWindow successor. Because launch i fires at exactly
// t0 + i*interval on the integer-nanosecond virtual clock, the chained
// successor lands at exactly t0 + (i+SendWindow)*interval — pacing is
// byte-identical to the upfront schedule, and the adaptive timeout is
// still evaluated at each probe's send time.
func (p *Prober) StartBatch(specs []Spec, opts Options, done func([]Result)) {
	if len(specs) == 0 {
		p.tr.Schedule(0, func() { done(nil) })
		return
	}
	results := make([]Result, len(specs))
	remaining := len(specs)
	interval := time.Duration(float64(time.Second) / opts.rate())
	var launch func(i int)
	launch = func(i int) {
		if next := i + SendWindow; next < len(specs) {
			p.tr.Schedule(time.Duration(SendWindow)*interval, func() { launch(next) })
		}
		// The adaptive timeout is evaluated at send time, so the
		// estimator warms up over the batch.
		p.start(specs[i], opts.attempts(), p.adaptiveTimeout(opts), func(r Result) {
			results[i] = r
			remaining--
			if remaining == 0 {
				done(results)
			}
		})
	}
	for i := 0; i < SendWindow && i < len(specs); i++ {
		i := i
		p.tr.Schedule(time.Duration(i)*interval, func() { launch(i) })
	}
}

// IndexedSpec is one entry of an indexed batch: a probe spec pinned to
// its global position in a larger (possibly sharded) destination list.
type IndexedSpec struct {
	// Index is the spec's position in the full batch. It fixes both the
	// send time (t0 + Index*interval) and the sequence numbers (attempt
	// k uses Index*attempts + k - 1, mod 2^16).
	Index int
	Spec  Spec
}

// StartIndexedBatch is StartBatch for a — possibly sparse — slice of a
// larger logical batch. Everything observable about a probe is derived
// from its global Index rather than from prober state: launch i fires
// at exactly t0 + Index*interval, and each attempt's sequence number is
// Index*opts.attempts() + (attempt-1). The shared sequence counter is
// never consumed, the first-attempt timeout is the fixed opts.Timeout
// (Adaptive is ignored), and matched RTTs do not feed the prober's
// EWMA. Consequently a batch split into contiguous index ranges across
// engine replicas produces, per destination, byte-identical probe
// traffic to the unsplit batch — the invariant destination-sharded
// origin phases are built on (DESIGN.md §15).
//
// Sends are windowed exactly like StartBatch: launch i chains launch
// i+SendWindow after (Index_{i+W} - Index_i) * interval, which on the
// integer-nanosecond virtual clock lands at exactly t0 + Index*interval
// even when the index slice is sparse.
func (p *Prober) StartIndexedBatch(specs []IndexedSpec, opts Options, done func([]Result)) {
	if len(specs) == 0 {
		p.tr.Schedule(0, func() { done(nil) })
		return
	}
	results := make([]Result, len(specs))
	remaining := len(specs)
	interval := time.Duration(float64(time.Second) / opts.rate())
	attempts := opts.attempts()
	timeout := opts.timeout()
	var launch func(i int)
	launch = func(i int) {
		if next := i + SendWindow; next < len(specs) {
			d := time.Duration(specs[next].Index-specs[i].Index) * interval
			p.tr.Schedule(d, func() { launch(next) })
		}
		op := &probeOp{
			spec:        specs[i].Spec,
			maxAttempts: attempts,
			baseTimeout: timeout,
			firstSentAt: p.tr.Now(),
			indexed:     true,
			indexedBase: uint16(specs[i].Index * attempts),
			external:    true,
			done: func(r Result) {
				results[i] = r
				remaining--
				if remaining == 0 {
					done(results)
				}
			},
		}
		p.sendAttempt(op)
	}
	for i := 0; i < SendWindow && i < len(specs); i++ {
		i := i
		p.tr.Schedule(time.Duration(specs[i].Index)*interval, func() { launch(i) })
	}
}

// ID returns the prober's ICMP identifier.
func (p *Prober) ID() uint16 { return p.id }

// SkipSeqs advances the sequence counter by n without sending, as if n
// attempts had been allocated and already retired. Campaign resume uses
// it to replay the consumption of archived batches: probe wire images
// carry the seq, and per-packet fault draws are content-keyed on them,
// so a resumed VP must enter each phase with the same counter position
// it had in the original run for the replay to stay byte-identical.
func (p *Prober) SkipSeqs(n int) { p.nextSeq += uint16(n) }

// Expect registers an externally-transmitted probe for matching: the
// reverse-traceroute system sends source-spoofed probes from one vantage
// point whose replies arrive at another. The returned (id, seq) must be
// embedded by the actual sender (see SendSpoofed) only when ok is true.
// On sequence-space exhaustion ok is false, done fires synchronously
// with a SendError result, and the returned identifiers are unusable —
// seq 0 may belong to a live pending probe, so a caller that transmits
// it anyway can resolve the wrong op with a stranger's reply.
func (p *Prober) Expect(spec Spec, timeout time.Duration, done func(Result)) (id, seq uint16, ok bool) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if seq, ok = p.allocSeq(); !ok {
		done(Result{Spec: spec, SentAt: p.tr.Now(), Type: SendError, Err: ErrTooManyOutstanding})
		return p.id, 0, false
	}
	op := &probeOp{
		spec:        spec,
		done:        done,
		maxAttempts: 1,
		baseTimeout: timeout,
		firstSentAt: p.tr.Now(),
		attempts:    1,
		seqs:        []uint16{seq},
		external:    true,
	}
	pp := &pendingProbe{op: op, seq: seq, attempt: 1, sentAt: p.tr.Now()}
	p.pending[seq] = pp
	p.tr.Schedule(timeout, func() { p.attemptTimeout(pp) })
	return p.id, seq, true
}

// SendSpoofed transmits a probe from this prober's vantage point with a
// spoofed source address, carrying identifiers allocated by the prober
// that expects the reply (via Expect). The spoof reaches the network
// exactly as a raw socket would send it.
func (p *Prober) SendSpoofed(spec Spec, spoofedSrc netip.Addr, id, seq uint16) error {
	wire, err := spec.build(spoofedSrc, id, seq)
	if err != nil {
		return err
	}
	p.sent++
	p.tr.Inject(wire)
	return nil
}

// allocSeq returns the next free sequence number. It refuses (ok=false)
// once MaxOutstanding probes are pending: with the 16-bit space nearly
// full the scan below would otherwise degenerate — and with it entirely
// full, spin forever.
func (p *Prober) allocSeq() (seq uint16, ok bool) {
	if len(p.pending) >= MaxOutstanding {
		return 0, false
	}
	for {
		seq := p.nextSeq
		p.nextSeq++
		if _, busy := p.pending[seq]; !busy {
			return seq, true
		}
	}
}

// receive matches an incoming packet against outstanding probes.
func (p *Prober) receive(at time.Duration, pkt []byte) {
	if err := p.parsed.Decode(pkt); err != nil || !p.parsed.HasICMP {
		p.ignored++
		return
	}
	icmp := &p.parsed.ICMP
	switch {
	case icmp.Type == packet.ICMPEchoReply:
		p.matchEchoReply(at)
	case icmp.Type.IsError():
		p.matchError(at)
	default:
		p.ignored++
	}
}

// matchEchoReply resolves a probe from a direct echo reply.
func (p *Prober) matchEchoReply(at time.Duration) {
	icmp := &p.parsed.ICMP
	if icmp.ID != p.id {
		p.ignored++
		return
	}
	pp := p.pending[icmp.Seq]
	if pp == nil {
		p.ignored++
		return
	}
	res := Result{
		Spec:      pp.op.spec,
		Seq:       pp.seq,
		SentAt:    pp.sentAt,
		RcvdAt:    at,
		Type:      EchoReply,
		From:      p.parsed.IP.Src,
		ReplyIPID: p.parsed.IP.ID,
	}
	p.extractRR(&p.parsed.IP, &res, false)
	p.complete(pp, res)
}

// matchError resolves a probe from an ICMP error quoting it.
func (p *Prober) matchError(at time.Duration) {
	icmp := &p.parsed.ICMP
	transport, err := icmp.QuotedDatagram(&p.quoted)
	if err != nil {
		p.ignored++
		return
	}
	var seq uint16
	switch p.quoted.Protocol {
	case packet.ProtocolICMP:
		t, id, s, ok := packet.QuotedEcho(transport)
		if !ok || t != packet.ICMPEchoRequest || id != p.id {
			p.ignored++
			return
		}
		seq = s
	case packet.ProtocolUDP:
		sp, _, ok := packet.QuotedUDP(transport)
		if !ok {
			p.ignored++
			return
		}
		s, ok := seqFromUDPSrcPort(sp)
		if !ok {
			p.ignored++
			return
		}
		seq = s
	default:
		p.ignored++
		return
	}
	pp := p.pending[seq]
	if pp == nil || !quotedDstMatches(pp.op.spec, p.quoted.Dst) {
		p.ignored++
		return
	}
	res := Result{
		Spec:      pp.op.spec,
		Seq:       pp.seq,
		SentAt:    pp.sentAt,
		RcvdAt:    at,
		From:      p.parsed.IP.Src,
		ReplyIPID: p.parsed.IP.ID,
	}
	switch {
	case icmp.Type == packet.ICMPTimeExceeded:
		res.Type = TimeExceeded
	case icmp.Type == packet.ICMPDestUnreach && icmp.Code == packet.CodePortUnreachable:
		res.Type = PortUnreachable
	default:
		res.Type = OtherResponse
	}
	p.extractRR(&p.quoted, &res, true)
	p.complete(pp, res)
}

// quotedDstMatches reports whether a quoted offending destination is
// consistent with the probe: normally the probed address, but a
// source-routed probe travels addressed to its via hops (and, once
// rewritten, the destination itself).
func quotedDstMatches(spec Spec, quotedDst netip.Addr) bool {
	if quotedDst == spec.Dst {
		return true
	}
	for _, v := range spec.Via {
		if quotedDst == v {
			return true
		}
	}
	return false
}

// extractRR copies the Record Route and Timestamp contents out of hdr
// into res.
func (p *Prober) extractRR(hdr *packet.IPv4, res *Result, quoted bool) {
	if found, err := hdr.RecordRouteOption(&p.rr); found && err == nil {
		res.HasRR = true
		res.QuotedRR = quoted
		res.RR = append([]netip.Addr(nil), p.rr.Recorded()...)
		res.RRTotalSlots = p.rr.NumSlots()
		res.RRFull = p.rr.Full()
	}
	if found, err := hdr.TimestampOption(&p.ts); found && err == nil {
		res.TS = append([]packet.TSEntry(nil), p.ts.Recorded()...)
		res.TSOverflow = p.ts.Overflow
	}
}

// complete finalizes a matched probe op.
func (p *Prober) complete(pp *pendingProbe, res Result) {
	if p.pending[pp.seq] != pp {
		p.ignored++ // duplicate response after the op already resolved
		return
	}
	op := pp.op
	res.Attempts = op.attempts
	res.MatchedAttempt = pp.attempt
	p.resolveOp(op)
	p.matched++
	if p.tracer != nil {
		p.tracer(res.RcvdAt, "probe.reply", op.spec.Dst, pp.seq, pp.attempt)
	}
	if !op.external {
		p.observeRTT(res.RcvdAt - pp.sentAt)
	}
	op.done(res)
}
