package probe

import (
	"net/netip"
	"time"

	"recordroute/internal/packet"
)

// Options controls batch pacing.
type Options struct {
	// Rate is the send rate in probes per second; 0 means DefaultRate.
	Rate float64
	// Timeout is how long to wait for each probe's response; 0 means
	// DefaultTimeout.
	Timeout time.Duration
}

// Default pacing values; 20 pps is the rate the paper's studies used.
const (
	DefaultRate    = 20.0
	DefaultTimeout = 2 * time.Second
)

func (o Options) rate() float64 {
	if o.Rate <= 0 {
		return DefaultRate
	}
	return o.Rate
}

func (o Options) timeout() time.Duration {
	if o.Timeout <= 0 {
		return DefaultTimeout
	}
	return o.Timeout
}

// Prober sends probes over a Transport and matches responses. A Prober
// is single-threaded: all callbacks arrive from the transport's event
// context. Create one Prober per vantage point with a distinct id.
type Prober struct {
	tr      Transport
	id      uint16
	nextSeq uint16
	pending map[uint16]*pendingProbe

	// counters for diagnostics
	sent, matched, timedOut, ignored uint64

	// scratch decode state
	parsed packet.Parsed
	quoted packet.IPv4
	rr     packet.RecordRoute
	ts     packet.Timestamp
}

type pendingProbe struct {
	spec   Spec
	seq    uint16
	sentAt time.Duration
	done   func(Result)
}

// New returns a Prober for the transport using the given ICMP identifier.
func New(tr Transport, id uint16) *Prober {
	p := &Prober{tr: tr, id: id, pending: make(map[uint16]*pendingProbe)}
	tr.SetReceiver(p.receive)
	return p
}

// Schedule defers fn on the transport clock; measurement layers use it
// to stagger work without reaching into the transport.
func (p *Prober) Schedule(d time.Duration, fn func()) { p.tr.Schedule(d, fn) }

// Now returns the transport clock.
func (p *Prober) Now() time.Duration { return p.tr.Now() }

// LocalAddr returns the probing source address.
func (p *Prober) LocalAddr() netip.Addr { return p.tr.LocalAddr() }

// Stats returns cumulative (sent, matched, timed out, ignored) counts.
func (p *Prober) Stats() (sent, matched, timedOut, ignored uint64) {
	return p.sent, p.matched, p.timedOut, p.ignored
}

// Outstanding returns the number of probes awaiting response or timeout.
func (p *Prober) Outstanding() int { return len(p.pending) }

// StartOne sends a single probe now and calls done exactly once, with a
// response or a timeout result. Used directly by sequential measurements
// (traceroute) that chain probes from callbacks.
func (p *Prober) StartOne(spec Spec, timeout time.Duration, done func(Result)) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	seq := p.allocSeq()
	wire, err := spec.build(p.tr.LocalAddr(), p.id, seq)
	if err != nil {
		// Malformed spec (e.g. non-IPv4 destination): report as an
		// immediate timeout rather than panicking mid-study.
		done(Result{Spec: spec, Seq: seq, SentAt: p.tr.Now(), Type: NoResponse})
		return
	}
	pp := &pendingProbe{spec: spec, seq: seq, sentAt: p.tr.Now(), done: done}
	p.pending[seq] = pp
	p.sent++
	p.tr.Inject(wire)
	p.tr.Schedule(timeout, func() {
		if p.pending[seq] == pp {
			delete(p.pending, seq)
			p.timedOut++
			done(Result{Spec: spec, Seq: seq, SentAt: pp.sentAt, Type: NoResponse})
		}
	})
}

// StartBatch paces the probes out in order at opts.Rate and calls done
// once with results in spec order after every probe has resolved.
func (p *Prober) StartBatch(specs []Spec, opts Options, done func([]Result)) {
	if len(specs) == 0 {
		p.tr.Schedule(0, func() { done(nil) })
		return
	}
	results := make([]Result, len(specs))
	remaining := len(specs)
	interval := time.Duration(float64(time.Second) / opts.rate())
	for i, spec := range specs {
		i, spec := i, spec
		p.tr.Schedule(time.Duration(i)*interval, func() {
			p.StartOne(spec, opts.timeout(), func(r Result) {
				results[i] = r
				remaining--
				if remaining == 0 {
					done(results)
				}
			})
		})
	}
}

// ID returns the prober's ICMP identifier.
func (p *Prober) ID() uint16 { return p.id }

// Expect registers an externally-transmitted probe for matching: the
// reverse-traceroute system sends source-spoofed probes from one vantage
// point whose replies arrive at another. The returned (id, seq) must be
// embedded by the actual sender (see SendSpoofed). done fires exactly
// once with the matched response or a timeout.
func (p *Prober) Expect(spec Spec, timeout time.Duration, done func(Result)) (id, seq uint16) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	seq = p.allocSeq()
	pp := &pendingProbe{spec: spec, seq: seq, sentAt: p.tr.Now(), done: done}
	p.pending[seq] = pp
	p.tr.Schedule(timeout, func() {
		if p.pending[seq] == pp {
			delete(p.pending, seq)
			p.timedOut++
			done(Result{Spec: spec, Seq: seq, SentAt: pp.sentAt, Type: NoResponse})
		}
	})
	return p.id, seq
}

// SendSpoofed transmits a probe from this prober's vantage point with a
// spoofed source address, carrying identifiers allocated by the prober
// that expects the reply (via Expect). The spoof reaches the network
// exactly as a raw socket would send it.
func (p *Prober) SendSpoofed(spec Spec, spoofedSrc netip.Addr, id, seq uint16) error {
	wire, err := spec.build(spoofedSrc, id, seq)
	if err != nil {
		return err
	}
	p.sent++
	p.tr.Inject(wire)
	return nil
}

// allocSeq returns the next free sequence number.
func (p *Prober) allocSeq() uint16 {
	for {
		seq := p.nextSeq
		p.nextSeq++
		if _, busy := p.pending[seq]; !busy {
			return seq
		}
	}
}

// receive matches an incoming packet against outstanding probes.
func (p *Prober) receive(at time.Duration, pkt []byte) {
	if err := p.parsed.Decode(pkt); err != nil || !p.parsed.HasICMP {
		p.ignored++
		return
	}
	icmp := &p.parsed.ICMP
	switch {
	case icmp.Type == packet.ICMPEchoReply:
		p.matchEchoReply(at)
	case icmp.Type.IsError():
		p.matchError(at)
	default:
		p.ignored++
	}
}

// matchEchoReply resolves a probe from a direct echo reply.
func (p *Prober) matchEchoReply(at time.Duration) {
	icmp := &p.parsed.ICMP
	if icmp.ID != p.id {
		p.ignored++
		return
	}
	pp := p.pending[icmp.Seq]
	if pp == nil {
		p.ignored++
		return
	}
	res := Result{
		Spec:      pp.spec,
		Seq:       pp.seq,
		SentAt:    pp.sentAt,
		RcvdAt:    at,
		Type:      EchoReply,
		From:      p.parsed.IP.Src,
		ReplyIPID: p.parsed.IP.ID,
	}
	p.extractRR(&p.parsed.IP, &res, false)
	p.complete(pp, res)
}

// matchError resolves a probe from an ICMP error quoting it.
func (p *Prober) matchError(at time.Duration) {
	icmp := &p.parsed.ICMP
	transport, err := icmp.QuotedDatagram(&p.quoted)
	if err != nil {
		p.ignored++
		return
	}
	var seq uint16
	switch p.quoted.Protocol {
	case packet.ProtocolICMP:
		t, id, s, ok := packet.QuotedEcho(transport)
		if !ok || t != packet.ICMPEchoRequest || id != p.id {
			p.ignored++
			return
		}
		seq = s
	case packet.ProtocolUDP:
		sp, _, ok := packet.QuotedUDP(transport)
		if !ok {
			p.ignored++
			return
		}
		s, ok := seqFromUDPSrcPort(sp)
		if !ok {
			p.ignored++
			return
		}
		seq = s
	default:
		p.ignored++
		return
	}
	pp := p.pending[seq]
	if pp == nil || !quotedDstMatches(pp.spec, p.quoted.Dst) {
		p.ignored++
		return
	}
	res := Result{
		Spec:      pp.spec,
		Seq:       pp.seq,
		SentAt:    pp.sentAt,
		RcvdAt:    at,
		From:      p.parsed.IP.Src,
		ReplyIPID: p.parsed.IP.ID,
	}
	switch {
	case icmp.Type == packet.ICMPTimeExceeded:
		res.Type = TimeExceeded
	case icmp.Type == packet.ICMPDestUnreach && icmp.Code == packet.CodePortUnreachable:
		res.Type = PortUnreachable
	default:
		res.Type = OtherResponse
	}
	p.extractRR(&p.quoted, &res, true)
	p.complete(pp, res)
}

// quotedDstMatches reports whether a quoted offending destination is
// consistent with the probe: normally the probed address, but a
// source-routed probe travels addressed to its via hops (and, once
// rewritten, the destination itself).
func quotedDstMatches(spec Spec, quotedDst netip.Addr) bool {
	if quotedDst == spec.Dst {
		return true
	}
	for _, v := range spec.Via {
		if quotedDst == v {
			return true
		}
	}
	return false
}

// extractRR copies the Record Route and Timestamp contents out of hdr
// into res.
func (p *Prober) extractRR(hdr *packet.IPv4, res *Result, quoted bool) {
	if found, err := hdr.RecordRouteOption(&p.rr); found && err == nil {
		res.HasRR = true
		res.QuotedRR = quoted
		res.RR = append([]netip.Addr(nil), p.rr.Recorded()...)
		res.RRTotalSlots = p.rr.NumSlots()
		res.RRFull = p.rr.Full()
	}
	if found, err := hdr.TimestampOption(&p.ts); found && err == nil {
		res.TS = append([]packet.TSEntry(nil), p.ts.Recorded()...)
		res.TSOverflow = p.ts.Overflow
	}
}

// complete finalizes a matched probe.
func (p *Prober) complete(pp *pendingProbe, res Result) {
	if p.pending[pp.seq] != pp {
		p.ignored++ // duplicate response after timeout
		return
	}
	delete(p.pending, pp.seq)
	p.matched++
	pp.done(res)
}
