package probe

import (
	"net/netip"
	"testing"
	"time"

	"recordroute/internal/packet"
)

func TestKindStringsAndProperties(t *testing.T) {
	cases := []struct {
		k     Kind
		s     string
		hasRR bool
	}{
		{Ping, "ping", false},
		{PingRR, "ping-rr", true},
		{PingRRUDP, "ping-rr-udp", true},
		{TTLPing, "ttl-ping", false},
		{TTLPingRR, "ttl-ping-rr", true},
		{PingTS, "ping-ts", false},
		{PingLSRR, "ping-lsrr", false},
	}
	for _, c := range cases {
		if c.k.String() != c.s {
			t.Errorf("%d.String() = %q, want %q", c.k, c.k.String(), c.s)
		}
		if c.k.HasRR() != c.hasRR {
			t.Errorf("%s.HasRR() = %v", c.s, c.k.HasRR())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind has empty string")
	}
}

func TestResponseTypeStrings(t *testing.T) {
	for _, c := range []struct {
		r ResponseType
		s string
	}{
		{NoResponse, "timeout"},
		{EchoReply, "echo-reply"},
		{TimeExceeded, "time-exceeded"},
		{PortUnreachable, "port-unreachable"},
		{OtherResponse, "other"},
	} {
		if c.r.String() != c.s {
			t.Errorf("%d.String() = %q", c.r, c.r.String())
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	var s Spec
	if s.ttl() != DefaultTTL || s.rrSlots() != DefaultRRSlots || s.udpDstPort() != DefaultUDPPort {
		t.Errorf("defaults: %d %d %d", s.ttl(), s.rrSlots(), s.udpDstPort())
	}
	s = Spec{TTL: 5, RRSlots: 3, UDPDstPort: 9999}
	if s.ttl() != 5 || s.rrSlots() != 3 || s.udpDstPort() != 9999 {
		t.Errorf("overrides: %d %d %d", s.ttl(), s.rrSlots(), s.udpDstPort())
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.rate() != DefaultRate || o.timeout() != DefaultTimeout {
		t.Errorf("defaults: %v %v", o.rate(), o.timeout())
	}
	o = Options{Rate: 5, Timeout: time.Second}
	if o.rate() != 5 || o.timeout() != time.Second {
		t.Errorf("overrides: %v %v", o.rate(), o.timeout())
	}
}

func TestUDPSrcPortRoundTrip(t *testing.T) {
	for _, seq := range []uint16{0, 1, 1000, 39999, 40000, 65535} {
		port := udpSrcPort(seq)
		got, ok := seqFromUDPSrcPort(port)
		if !ok {
			t.Fatalf("seq %d: port %d unparseable", seq, port)
		}
		if got != seq%40000 {
			t.Errorf("seq %d: round trip gave %d", seq, got)
		}
	}
	if _, ok := seqFromUDPSrcPort(100); ok {
		t.Error("low port accepted")
	}
	if _, ok := seqFromUDPSrcPort(60001); ok {
		t.Error("high port accepted")
	}
}

func TestSpecBuildWireShapes(t *testing.T) {
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.9.0.1")
	via := netip.MustParseAddr("10.5.0.1")

	cases := []struct {
		name string
		spec Spec
		// verify inspects the decoded header.
		verify func(t *testing.T, h *packet.IPv4)
	}{
		{"ping", Spec{Dst: dst, Kind: Ping}, func(t *testing.T, h *packet.IPv4) {
			if len(h.Options) != 0 {
				t.Error("plain ping carries options")
			}
		}},
		{"rr", Spec{Dst: dst, Kind: PingRR, RRSlots: 4}, func(t *testing.T, h *packet.IPv4) {
			var rr packet.RecordRoute
			if found, _ := h.RecordRouteOption(&rr); !found || rr.NumSlots() != 4 {
				t.Errorf("rr slots = %d", rr.NumSlots())
			}
		}},
		{"ts", Spec{Dst: dst, Kind: PingTS}, func(t *testing.T, h *packet.IPv4) {
			var ts packet.Timestamp
			if found, _ := h.TimestampOption(&ts); !found || ts.Flag != packet.TSAddr {
				t.Errorf("ts option missing or wrong flag")
			}
		}},
		{"lsrr", Spec{Dst: dst, Kind: PingLSRR, Via: []netip.Addr{via}}, func(t *testing.T, h *packet.IPv4) {
			if h.Dst != via {
				t.Errorf("lsrr initial dst = %v, want via %v", h.Dst, via)
			}
			var sr packet.SourceRoute
			if found, _ := h.SourceRouteOption(&sr); !found || sr.NextHop() != dst {
				t.Errorf("source route next hop = %v", sr.NextHop())
			}
		}},
		{"udp", Spec{Dst: dst, Kind: PingRRUDP}, func(t *testing.T, h *packet.IPv4) {
			if h.Protocol != packet.ProtocolUDP {
				t.Errorf("protocol = %v", h.Protocol)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wire, err := c.spec.build(src, 7, 9)
			if err != nil {
				t.Fatal(err)
			}
			var h packet.IPv4
			if _, err := h.Decode(wire); err != nil {
				t.Fatal(err)
			}
			c.verify(t, &h)
		})
	}

	if _, err := (Spec{Dst: dst, Kind: PingLSRR}).build(src, 1, 1); err == nil {
		t.Error("lsrr without via accepted")
	}
	if _, err := (Spec{Dst: netip.MustParseAddr("::1"), Kind: Ping}).build(src, 1, 1); err == nil {
		t.Error("IPv6 destination accepted")
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Type: NoResponse}
	if r.Responded() || r.RTT() != 0 || r.RRSlotsRemaining() != 0 {
		t.Error("timeout result helpers wrong")
	}
	r = Result{
		Type: EchoReply, SentAt: time.Millisecond, RcvdAt: 3 * time.Millisecond,
		HasRR: true, RRTotalSlots: 9,
		RR: []netip.Addr{netip.MustParseAddr("10.0.0.1")},
	}
	if r.RTT() != 2*time.Millisecond {
		t.Errorf("RTT = %v", r.RTT())
	}
	if !r.RRContains(netip.MustParseAddr("10.0.0.1")) || r.RRContains(netip.MustParseAddr("10.0.0.2")) {
		t.Error("RRContains wrong")
	}
	if r.RRSlotsRemaining() != 8 {
		t.Errorf("remaining = %d", r.RRSlotsRemaining())
	}
}
