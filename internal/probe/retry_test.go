package probe

import (
	"net/netip"
	"testing"
	"time"

	"recordroute/internal/netsim"
	"recordroute/internal/packet"
)

// scriptedTransport is a Transport whose network is the test itself:
// every Inject is handed to onSend, which decides whether and when a
// reply comes back. Timers run on a bare netsim engine, so virtual time
// is exact and the prober's timeout/retransmit schedule is observable.
type scriptedTransport struct {
	eng    *netsim.Engine
	src    netip.Addr
	recv   func(at time.Duration, pkt []byte)
	onSend func(wire []byte)
}

func newScriptedTransport() *scriptedTransport {
	return &scriptedTransport{eng: netsim.NewEngine(), src: netip.MustParseAddr("192.0.2.1")}
}

func (s *scriptedTransport) LocalAddr() netip.Addr { return s.src }
func (s *scriptedTransport) Inject(pkt []byte) {
	if s.onSend != nil {
		s.onSend(append([]byte(nil), pkt...))
	}
}
func (s *scriptedTransport) SetReceiver(fn func(at time.Duration, pkt []byte)) { s.recv = fn }
func (s *scriptedTransport) Schedule(d time.Duration, fn func())               { s.eng.Schedule(d, fn) }
func (s *scriptedTransport) Now() time.Duration                                { return s.eng.Now() }

// deliver feeds a packet to the prober after d of virtual time.
func (s *scriptedTransport) deliver(d time.Duration, pkt []byte) {
	s.eng.Schedule(d, func() { s.recv(s.eng.Now(), pkt) })
}

// echoReplyFor builds the destination's echo reply to a captured echo
// request probe.
func echoReplyFor(t *testing.T, wire []byte) []byte {
	t.Helper()
	var ip packet.IPv4
	payload, err := ip.Decode(wire)
	if err != nil {
		t.Fatalf("decode probe: %v", err)
	}
	var ic packet.ICMP
	if err := ic.Decode(payload); err != nil {
		t.Fatalf("decode probe ICMP: %v", err)
	}
	hdr := packet.IPv4{TTL: 64, ID: 4242, Protocol: packet.ProtocolICMP, Src: ip.Dst, Dst: ip.Src}
	out, err := hdr.Marshal(ic.EchoReply().Marshal())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

var retryDst = netip.MustParseAddr("198.51.100.9")

// startRetrying launches one probe through the batch path (the path
// that honors Retries/Adaptive) and returns a pointer that is filled
// with the result.
func startRetrying(p *Prober, opts Options) *[]Result {
	var got []Result
	out := &got
	p.StartBatch([]Spec{{Dst: retryDst, Kind: Ping}}, opts, func(rs []Result) { *out = rs })
	return out
}

func TestRetransmitAfterTimeoutMatchesSecondAttempt(t *testing.T) {
	tr := newScriptedTransport()
	p := New(tr, 0x1111)
	sends := 0
	tr.onSend = func(wire []byte) {
		sends++
		if sends == 1 {
			return // first attempt vanishes
		}
		tr.deliver(10*time.Millisecond, echoReplyFor(t, wire))
	}
	got := startRetrying(p, Options{Retries: 2, Timeout: time.Second, Rate: 100})
	tr.eng.Run()

	if *got == nil {
		t.Fatal("batch never completed")
	}
	r := (*got)[0]
	if r.Type != EchoReply || r.Attempts != 2 || r.MatchedAttempt != 2 {
		t.Errorf("result = %v attempts=%d matched=%d, want echo-reply 2/2", r.Type, r.Attempts, r.MatchedAttempt)
	}
	// The RTT is the matched attempt's, not time since the first send.
	if r.RTT() != 10*time.Millisecond {
		t.Errorf("RTT = %v, want 10ms", r.RTT())
	}
	sent, matched, timedOut, _ := p.Stats()
	if sent != 2 || matched != 1 || timedOut != 0 || p.Retransmits() != 1 {
		t.Errorf("stats sent=%d matched=%d timedOut=%d retransmits=%d", sent, matched, timedOut, p.Retransmits())
	}
}

func TestLateReplyToSupersededAttemptStillMatches(t *testing.T) {
	tr := newScriptedTransport()
	p := New(tr, 0x1112)
	sends := 0
	tr.onSend = func(wire []byte) {
		sends++
		if sends == 1 {
			// The first attempt's reply arrives 500ms after the 1s
			// timeout already triggered a retransmission.
			tr.deliver(1500*time.Millisecond, echoReplyFor(t, wire))
			return
		}
		tr.deliver(10*time.Millisecond, echoReplyFor(t, wire))
	}
	got := startRetrying(p, Options{Retries: 3, Timeout: time.Second, Rate: 100})
	tr.eng.Run()

	r := (*got)[0]
	// Attempt 2's fast reply (at 1s+10ms) wins; attempt 1's late reply
	// (1.5s) must be recognized as a duplicate of a resolved op.
	if r.Type != EchoReply || r.Attempts != 2 || r.MatchedAttempt != 2 {
		t.Errorf("result = %v attempts=%d matched=%d, want echo-reply 2/2", r.Type, r.Attempts, r.MatchedAttempt)
	}
	_, matched, _, ignored := p.Stats()
	if matched != 1 || ignored != 1 {
		t.Errorf("matched=%d ignored=%d, want 1 and 1 (late duplicate deduped)", matched, ignored)
	}
}

func TestDuplicateRepliesAfterRetransmitDeduped(t *testing.T) {
	tr := newScriptedTransport()
	p := New(tr, 0x1113)
	sends := 0
	tr.onSend = func(wire []byte) {
		sends++
		if sends == 1 {
			// Slow path: the first attempt is answered only after its
			// timeout, racing the second attempt's reply.
			tr.deliver(1100*time.Millisecond, echoReplyFor(t, wire))
			return
		}
		// The retransmission's reply is duplicated in flight.
		reply := echoReplyFor(t, wire)
		tr.deliver(20*time.Millisecond, reply)
		tr.deliver(30*time.Millisecond, reply)
	}
	got := startRetrying(p, Options{Retries: 1, Timeout: time.Second, Rate: 100})
	tr.eng.Run()

	r := (*got)[0]
	if r.Type != EchoReply || r.MatchedAttempt != 2 {
		t.Errorf("result = %v matched=%d, want echo-reply on attempt 2", r.Type, r.MatchedAttempt)
	}
	_, matched, _, ignored := p.Stats()
	if matched != 1 || ignored != 2 {
		t.Errorf("matched=%d ignored=%d, want exactly one match, two dropped duplicates", matched, ignored)
	}
}

func TestReplyInSameTickAsTimeoutDoesNotDoubleResolve(t *testing.T) {
	for _, retries := range []int{0, 1} {
		tr := newScriptedTransport()
		p := New(tr, 0x1114)
		sends, dones := 0, 0
		tr.onSend = func(wire []byte) {
			sends++
			if sends == 1 {
				// Reply lands at exactly t=1s, the same engine tick as the
				// timeout. Scheduling it from a deferred event gives it a
				// later FIFO sequence than the timeout timer (as in the
				// simulator, where the last delivery hop is scheduled long
				// after the probe's timer), so the timeout runs first.
				reply := echoReplyFor(t, wire)
				tr.eng.Schedule(0, func() { tr.deliver(time.Second, reply) })
			}
		}
		var last Result
		p.StartBatch([]Spec{{Dst: retryDst, Kind: Ping}},
			Options{Retries: retries, Timeout: time.Second, Rate: 100},
			func(rs []Result) { dones++; last = rs[0] })
		tr.eng.Run()

		if dones != 1 {
			t.Fatalf("retries=%d: done called %d times", retries, dones)
		}
		if retries == 0 {
			// Single-shot: the timeout resolved the op; the same-tick
			// reply must be ignored, not double-complete it.
			if last.Type != NoResponse {
				t.Errorf("retries=0: result %v, want timeout", last.Type)
			}
			if _, _, _, ignored := p.Stats(); ignored != 1 {
				t.Errorf("retries=0: ignored=%d, want 1", ignored)
			}
		} else {
			// With budget left, the timeout retransmitted first — but the
			// attempt-1 entry is still live, so the same-tick reply
			// matches attempt 1.
			if last.Type != EchoReply || last.MatchedAttempt != 1 || last.Attempts != 2 {
				t.Errorf("retries=1: result %v matched=%d attempts=%d, want echo-reply 1/2",
					last.Type, last.MatchedAttempt, last.Attempts)
			}
		}
	}
}

func TestExponentialBackoffSchedule(t *testing.T) {
	tr := newScriptedTransport()
	p := New(tr, 0x1115)
	var sentAt []time.Duration
	tr.onSend = func([]byte) { sentAt = append(sentAt, tr.eng.Now()) }
	got := startRetrying(p, Options{Retries: 2, Timeout: time.Second, Rate: 100})
	tr.eng.Run()

	want := []time.Duration{0, time.Second, 3 * time.Second} // 1s, then 2s backoff
	if len(sentAt) != len(want) {
		t.Fatalf("sends at %v, want %v", sentAt, want)
	}
	for i := range want {
		if sentAt[i] != want[i] {
			t.Errorf("attempt %d at %v, want %v", i+1, sentAt[i], want[i])
		}
	}
	r := (*got)[0]
	if r.Type != NoResponse || r.Attempts != 3 || r.SentAt != 0 {
		t.Errorf("result = %v attempts=%d sentAt=%v, want timeout after 3 attempts, SentAt of first", r.Type, r.Attempts, r.SentAt)
	}
	// Final timeout fires 4s after the last attempt.
	if now := tr.eng.Now(); now != 7*time.Second {
		t.Errorf("virtual end time %v, want 7s", now)
	}
	if _, _, timedOut, _ := p.Stats(); timedOut != 1 {
		t.Errorf("timedOut = %d, want 1 (per op, not per attempt)", timedOut)
	}
}

func TestAdaptiveTimeoutTracksRTTEWMA(t *testing.T) {
	tr := newScriptedTransport()
	p := New(tr, 0x1116)
	var sentAt []time.Duration
	sends := 0
	tr.onSend = func(wire []byte) {
		sends++
		sentAt = append(sentAt, tr.eng.Now())
		if sends == 1 {
			tr.deliver(100*time.Millisecond, echoReplyFor(t, wire)) // primes the EWMA
		}
	}
	specs := []Spec{{Dst: retryDst, Kind: Ping}, {Dst: retryDst, Kind: Ping}}
	var got []Result
	// Rate 5 → probe B sent at 200ms, after probe A's reply primed the
	// estimator: srtt=100ms, rttvar=50ms → RTO 300ms.
	p.StartBatch(specs, Options{Retries: 1, Timeout: 2 * time.Second, Rate: 5, Adaptive: true},
		func(rs []Result) { got = rs })
	tr.eng.Run()

	if srtt, rttvar := p.RTTEstimate(); srtt != 100*time.Millisecond || rttvar != 50*time.Millisecond {
		t.Errorf("EWMA = (%v, %v), want (100ms, 50ms)", srtt, rttvar)
	}
	want := []time.Duration{0, 200 * time.Millisecond, 500 * time.Millisecond}
	if len(sentAt) != 3 {
		t.Fatalf("sends at %v, want %v", sentAt, want)
	}
	for i := range want {
		if sentAt[i] != want[i] {
			t.Errorf("send %d at %v, want %v (adaptive 300ms timeout)", i, sentAt[i], want[i])
		}
	}
	if got[1].Type != NoResponse || got[1].Attempts != 2 {
		t.Errorf("probe B = %v attempts=%d, want timeout after 2 attempts", got[1].Type, got[1].Attempts)
	}
}

func TestAllocSeqCapFailsExplicitly(t *testing.T) {
	tr := newScriptedTransport()
	p := New(tr, 0x1117)
	// Saturate the sequence space with expectations that never resolve
	// within the test horizon.
	for i := 0; i < MaxOutstanding; i++ {
		p.Expect(Spec{Dst: retryDst, Kind: Ping}, time.Hour, func(Result) {})
	}
	if p.Outstanding() != MaxOutstanding {
		t.Fatalf("outstanding = %d, want %d", p.Outstanding(), MaxOutstanding)
	}

	var res *Result
	p.StartOne(Spec{Dst: retryDst, Kind: Ping}, time.Second, func(r Result) { res = &r })
	if res == nil {
		t.Fatal("done not called synchronously on seq exhaustion")
	}
	if res.Type != SendError || res.Err != ErrTooManyOutstanding {
		t.Errorf("result = %v err=%v, want SendError/ErrTooManyOutstanding", res.Type, res.Err)
	}
	if res.Responded() {
		t.Error("SendError result claims Responded()")
	}
	if p.Outstanding() != MaxOutstanding {
		t.Errorf("failed probe leaked a pending entry: %d", p.Outstanding())
	}

	// Expect refuses the same way, and says so via ok.
	var eres *Result
	_, seq, ok := p.Expect(Spec{Dst: retryDst, Kind: Ping}, time.Second, func(r Result) { eres = &r })
	if ok || seq != 0 || eres == nil || eres.Type != SendError {
		t.Errorf("Expect under cap: ok=%v seq=%d res=%+v, want refusal with immediate SendError", ok, seq, eres)
	}
}

// TestStartBatchHeapDepthBounded pins the windowed batch schedule: a
// batch of N specs enqueues at most SendWindow send events (the old
// upfront schedule put all N in the heap at t≈0 — ~100k entries per VP
// batch at the large scale profile), while pacing stays exact: probe i
// leaves at exactly i*interval, in spec order.
func TestStartBatchHeapDepthBounded(t *testing.T) {
	tr := newScriptedTransport()
	p := New(tr, 0x111b)
	var sentAt []time.Duration
	tr.onSend = func([]byte) { sentAt = append(sentAt, tr.eng.Now()) }
	const n = 4 * SendWindow
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{Dst: retryDst, Kind: Ping}
	}
	var got []Result
	p.StartBatch(specs, Options{Rate: 1000, Timeout: time.Millisecond}, func(rs []Result) { got = rs })
	if pend := tr.eng.Pending(); pend > SendWindow {
		t.Fatalf("StartBatch enqueued %d events upfront, want <= SendWindow (%d)", pend, SendWindow)
	}
	tr.eng.Run()

	if len(got) != n {
		t.Fatalf("batch returned %d results, want %d", len(got), n)
	}
	interval := time.Duration(float64(time.Second) / 1000)
	if len(sentAt) != n {
		t.Fatalf("%d transmissions, want %d", len(sentAt), n)
	}
	for i, at := range sentAt {
		if want := time.Duration(i) * interval; at != want {
			t.Fatalf("probe %d sent at %v, want %v", i, at, want)
		}
	}
	for i, r := range got {
		if want := time.Duration(i) * interval; r.SentAt != want {
			t.Errorf("result %d SentAt=%v, want %v (spec order broken)", i, r.SentAt, want)
			break
		}
	}
}

// TestExpectExhaustionNoCrossOpDelivery is the regression test for the
// sequence-exhaustion aliasing bug: Expect used to return (p.id, 0)
// after a SendError, identifiers that alias whatever live probe holds
// seq 0 — a caller embedding them via SendSpoofed would elicit a reply
// that resolves the wrong op. The fixed contract reports the refusal
// (ok=false) so callers never transmit the aliased identifiers, and the
// live seq-0 op keeps its registration and resolves only with its own
// reply.
func TestExpectExhaustionNoCrossOpDelivery(t *testing.T) {
	tr := newScriptedTransport()
	p := New(tr, 0x111a)

	// The live op: the prober's first allocation takes seq 0, exactly the
	// number the buggy Expect used to hand out after a refusal.
	liveDst := netip.MustParseAddr("198.51.100.10")
	var liveWire []byte
	tr.onSend = func(wire []byte) { liveWire = wire }
	var live *Result
	p.StartOne(Spec{Dst: liveDst, Kind: Ping}, time.Hour, func(r Result) { live = &r })
	if liveWire == nil {
		t.Fatal("live probe was not transmitted")
	}

	// Fill the remaining sequence space with expectations that never
	// resolve within the test horizon.
	for p.Outstanding() < MaxOutstanding {
		p.Expect(Spec{Dst: retryDst, Kind: Ping}, time.Hour, func(Result) {})
	}

	// One more registration must be refused outright.
	otherDst := netip.MustParseAddr("203.0.113.77")
	refusals := 0
	id, seq, ok := p.Expect(Spec{Dst: otherDst, Kind: PingRR}, time.Hour, func(r Result) {
		refusals++
		if r.Type != SendError || r.Err != ErrTooManyOutstanding {
			t.Errorf("refused expectation resolved as %v err=%v, want SendError", r.Type, r.Err)
		}
	})
	if ok {
		t.Fatal("Expect granted a registration with the sequence space full")
	}
	if refusals != 1 {
		t.Fatalf("refusal callback fired %d times, want 1", refusals)
	}
	if id != p.ID() || seq != 0 {
		t.Fatalf("refused Expect returned (id=%#x, seq=%d)", id, seq)
	}
	if p.Outstanding() != MaxOutstanding {
		t.Errorf("refused expectation leaked a pending entry: %d", p.Outstanding())
	}

	// A caller honoring ok transmits nothing for the refused spec, so the
	// only traffic is the live probe's own reply — which must resolve the
	// live op with the live destination, proving seq 0 still belongs to it.
	tr.deliver(10*time.Millisecond, echoReplyFor(t, liveWire))
	tr.eng.RunUntil(20 * time.Millisecond)
	if live == nil {
		t.Fatal("live seq-0 probe never resolved")
	}
	if live.Type != EchoReply || live.From != liveDst || live.Seq != 0 {
		t.Errorf("live op resolved as %v from %v seq=%d, want its own reply from %v at seq 0",
			live.Type, live.From, live.Seq, liveDst)
	}
	if refusals != 1 {
		t.Errorf("refused expectation received a delivery after its SendError (%d callbacks)", refusals)
	}
}

func TestStartBatchMalformedSpecMidBatch(t *testing.T) {
	tr := newScriptedTransport()
	p := New(tr, 0x1118)
	tr.onSend = func(wire []byte) { tr.deliver(5*time.Millisecond, echoReplyFor(t, wire)) }
	specs := []Spec{
		{Dst: retryDst, Kind: Ping},
		{Dst: retryDst, Kind: PingLSRR}, // no Via hops: cannot serialize
		{Dst: retryDst, Kind: Ping},
	}
	var got []Result
	p.StartBatch(specs, Options{Rate: 100, Timeout: time.Second, Retries: 1}, func(rs []Result) { got = rs })
	tr.eng.Run()

	if got == nil {
		t.Fatal("batch with malformed middle spec never completed")
	}
	if got[0].Type != EchoReply || got[2].Type != EchoReply {
		t.Errorf("good specs = %v / %v, want echo replies", got[0].Type, got[2].Type)
	}
	if got[1].Type != SendError || got[1].Err == nil || got[1].Attempts != 0 {
		t.Errorf("malformed spec = %v err=%v attempts=%d, want SendError with cause, 0 attempts",
			got[1].Type, got[1].Err, got[1].Attempts)
	}
}
