package probe

import (
	"net/netip"
	"testing"
	"time"
)

// TestPingTSRecordsHopTimestamps drives the Internet Timestamp probe
// end-to-end: routers on the forward path register (address, millis)
// pairs, the destination completes its own, and overflow counts the
// hops beyond the four-slot capacity.
func TestPingTSRecordsHopTimestamps(t *testing.T) {
	topo, p, vp := testbed(t)
	d := pickDests(topo, 1)[0]
	var res *Result
	p.StartOne(Spec{Dst: d.Addr, Kind: PingTS}, time.Second, func(r Result) { res = &r })
	topo.Net.Engine().Run()
	if res == nil || res.Type != EchoReply {
		t.Fatalf("result = %+v", res)
	}
	if len(res.TS) == 0 {
		t.Fatal("no timestamp entries recovered")
	}
	// Timestamps are non-decreasing along the path.
	for i := 1; i < len(res.TS); i++ {
		if res.TS[i].Millis < res.TS[i-1].Millis {
			t.Errorf("timestamps out of order: %+v", res.TS)
		}
	}
	// Every recorded address belongs to the plan (routers or the dest).
	for _, e := range res.TS {
		if topo.ASOf(e.Addr) < 0 {
			t.Errorf("timestamp hop %v outside plan", e.Addr)
		}
	}
	// The forward path in this topology is longer than four hops, so
	// the overflow counter should register the excess — or the dest is
	// close and the option fits entirely.
	fwd := topo.ForwardStampPath(vp.Addr, d.Addr)
	if len(fwd) > len(res.TS) && res.TSOverflow == 0 && len(res.TS) == 4 {
		t.Errorf("expected overflow for a %d-hop path with 4 slots", len(fwd))
	}
	t.Logf("ping-ts to %v: %d entries, overflow %d", d.Addr, len(res.TS), res.TSOverflow)
}

// TestPingTSVsPingRRSamePath checks the two option types see the same
// hop addresses (over the shared four first slots).
func TestPingTSVsPingRRSamePath(t *testing.T) {
	topo, p, _ := testbed(t)
	d := pickDests(topo, 1)[0]
	var rrRes, tsRes *Result
	p.StartOne(Spec{Dst: d.Addr, Kind: PingRR}, time.Second, func(r Result) { rrRes = &r })
	topo.Net.Engine().Run()
	p.StartOne(Spec{Dst: d.Addr, Kind: PingTS}, time.Second, func(r Result) { tsRes = &r })
	topo.Net.Engine().Run()
	if rrRes == nil || tsRes == nil || !rrRes.HasRR || len(tsRes.TS) == 0 {
		t.Fatalf("rr=%+v ts=%+v", rrRes, tsRes)
	}
	n := min(len(tsRes.TS), len(rrRes.RR))
	for i := 0; i < n; i++ {
		if tsRes.TS[i].Addr != rrRes.RR[i] {
			t.Errorf("slot %d: TS records %v, RR records %v", i, tsRes.TS[i].Addr, rrRes.RR[i])
		}
	}
}

// TestPingLSRRRefusedOnModernInternet sends a loose-source-routed ping
// through an observed router hop: on the default (modern) topology no
// router honors it, reproducing the 2005 "IP options are not an
// option" result for source routing — in contrast to ping-RR.
func TestPingLSRRRefusedOnModernInternet(t *testing.T) {
	topo, p, _ := testbed(t)
	d := pickDests(topo, 1)[0]
	// Learn a router on the path via ping-RR first.
	var rr *Result
	p.StartOne(Spec{Dst: d.Addr, Kind: PingRR}, time.Second, func(r Result) { rr = &r })
	topo.Net.Engine().Run()
	if rr == nil || !rr.HasRR || len(rr.RR) == 0 {
		t.Fatal("no RR hops to route through")
	}
	via := rr.RR[0]
	var res *Result
	p.StartOne(Spec{Dst: d.Addr, Kind: PingLSRR, Via: []netip.Addr{via}}, time.Second, func(r Result) { res = &r })
	topo.Net.Engine().Run()
	if res == nil {
		t.Fatal("probe unresolved")
	}
	if res.Type == EchoReply {
		// Only possible if the via router is one of the rare legacy
		// honorers; the default config has none.
		t.Errorf("source-routed ping succeeded via %v", via)
	}
	if got := topo.Net.Counter("router.drop.sourceroute"); got == 0 {
		t.Error("no source-route refusal recorded")
	}
}
