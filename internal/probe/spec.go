package probe

import (
	"fmt"
	"net/netip"
	"time"

	"recordroute/internal/packet"
)

// Kind selects the probe type.
type Kind int

const (
	// Ping is a plain ICMP echo request.
	Ping Kind = iota
	// PingRR is an echo request carrying a Record Route option
	// (the paper's ping-RR).
	PingRR
	// PingRRUDP is a UDP datagram to a high closed port carrying a
	// Record Route option; the port-unreachable error quotes the option
	// (the paper's ping-RRudp, §3.3).
	PingRRUDP
	// TTLPing is a TTL-limited plain echo request (a traceroute probe).
	TTLPing
	// TTLPingRR is a TTL-limited ping-RR (§4.2's low-impact probe).
	TTLPingRR
	// PingTS is an echo request carrying an Internet Timestamp option
	// in address+timestamp mode (four slots) — the companion IP-options
	// primitive the paper's related work measures with.
	PingTS
	// PingLSRR is an echo request loose-source-routed through Via to
	// the destination — the 2005 tech report's unusable primitive,
	// kept for the historical contrast with Record Route.
	PingLSRR
)

// String names the probe kind.
func (k Kind) String() string {
	switch k {
	case Ping:
		return "ping"
	case PingRR:
		return "ping-rr"
	case PingRRUDP:
		return "ping-rr-udp"
	case TTLPing:
		return "ttl-ping"
	case TTLPingRR:
		return "ttl-ping-rr"
	case PingTS:
		return "ping-ts"
	case PingLSRR:
		return "ping-lsrr"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// HasRR reports whether the kind carries a Record Route option.
func (k Kind) HasRR() bool { return k == PingRR || k == PingRRUDP || k == TTLPingRR }

// Default probe parameters.
const (
	DefaultTTL     = 64
	DefaultRRSlots = packet.MaxRRSlots
	// DefaultUDPPort is the base high destination port for ping-RRudp.
	DefaultUDPPort = 40967
	// udpSrcPortBase spreads the probe sequence number over source
	// ports so quoted UDP headers identify the probe.
	udpSrcPortBase = 20000
)

// Spec describes one probe to send.
type Spec struct {
	// Dst is the probed destination.
	Dst netip.Addr
	// Kind selects the probe type.
	Kind Kind
	// TTL overrides the initial TTL; 0 means DefaultTTL.
	TTL uint8
	// RRSlots overrides the Record Route slot count for RR kinds;
	// 0 means DefaultRRSlots (nine).
	RRSlots int
	// UDPDstPort overrides the UDP destination port; 0 means
	// DefaultUDPPort.
	UDPDstPort uint16
	// Via lists intermediate hops for PingLSRR; the packet is first
	// addressed to Via[0] and source-routed onward to Dst.
	Via []netip.Addr
}

// ttl returns the effective initial TTL.
func (s Spec) ttl() uint8 {
	if s.TTL == 0 {
		return DefaultTTL
	}
	return s.TTL
}

// rrSlots returns the effective RR slot count.
func (s Spec) rrSlots() int {
	if s.RRSlots == 0 {
		return DefaultRRSlots
	}
	return s.RRSlots
}

// udpDstPort returns the effective UDP destination port.
func (s Spec) udpDstPort() uint16 {
	if s.UDPDstPort == 0 {
		return DefaultUDPPort
	}
	return s.UDPDstPort
}

// build serializes the probe packet for the given source, ICMP
// identifier, and sequence number.
func (s Spec) build(src netip.Addr, id, seq uint16) ([]byte, error) {
	hdr := packet.IPv4{
		TTL: s.ttl(),
		// The IP ID of the probe is the sequence number: harmless,
		// useful in captures.
		ID:  seq,
		Src: src,
		Dst: s.Dst,
	}
	if s.Kind.HasRR() {
		if err := hdr.SetRecordRoute(packet.NewRecordRoute(s.rrSlots())); err != nil {
			return nil, err
		}
	}
	if s.Kind == PingTS {
		// TSAddr mode fits at most four (address, timestamp) pairs.
		if err := hdr.SetTimestamp(packet.NewTimestamp(packet.TSAddr, 4)); err != nil {
			return nil, err
		}
	}
	if s.Kind == PingLSRR {
		if len(s.Via) == 0 {
			return nil, fmt.Errorf("probe: ping-lsrr needs at least one via hop")
		}
		route := append(append([]netip.Addr(nil), s.Via[1:]...), s.Dst)
		sr, err := packet.NewSourceRoute(false, route)
		if err != nil {
			return nil, err
		}
		if err := hdr.SetSourceRoute(sr); err != nil {
			return nil, err
		}
		hdr.Dst = s.Via[0]
	}
	switch s.Kind {
	case Ping, PingRR, TTLPing, TTLPingRR, PingTS, PingLSRR:
		hdr.Protocol = packet.ProtocolICMP
		return hdr.Marshal(packet.NewEchoRequest(id, seq, nil).Marshal())
	case PingRRUDP:
		hdr.Protocol = packet.ProtocolUDP
		u := packet.UDP{SrcPort: udpSrcPort(seq), DstPort: s.udpDstPort()}
		transport, err := u.Marshal(src, s.Dst)
		if err != nil {
			return nil, err
		}
		return hdr.Marshal(transport)
	default:
		return nil, fmt.Errorf("probe: unknown kind %v", s.Kind)
	}
}

// udpSrcPort encodes a probe sequence number as a UDP source port.
func udpSrcPort(seq uint16) uint16 { return udpSrcPortBase + seq%40000 }

// seqFromUDPSrcPort inverts udpSrcPort; ok is false for ports outside
// the probe range.
func seqFromUDPSrcPort(port uint16) (uint16, bool) {
	if port < udpSrcPortBase || port >= udpSrcPortBase+40000 {
		return 0, false
	}
	return port - udpSrcPortBase, true
}

// ResponseType classifies what came back for a probe.
type ResponseType int

const (
	// NoResponse means the probe timed out.
	NoResponse ResponseType = iota
	// EchoReply is a normal ping response.
	EchoReply
	// TimeExceeded is an ICMP TTL-expiry error.
	TimeExceeded
	// PortUnreachable is the ping-RRudp success response.
	PortUnreachable
	// OtherResponse is any other matched ICMP message.
	OtherResponse
	// SendError means the probe could not be transmitted at all — a
	// malformed spec or an exhausted sequence space (Result.Err says
	// which). Not a network response: Responded() is false.
	SendError
)

// String names the response type.
func (r ResponseType) String() string {
	switch r {
	case NoResponse:
		return "timeout"
	case EchoReply:
		return "echo-reply"
	case TimeExceeded:
		return "time-exceeded"
	case PortUnreachable:
		return "port-unreachable"
	case OtherResponse:
		return "other"
	case SendError:
		return "send-error"
	default:
		return fmt.Sprintf("resp(%d)", int(r))
	}
}

// Result reports the outcome of one probe.
type Result struct {
	Spec
	// Seq is the engine-assigned sequence number.
	Seq uint16
	// SentAt and RcvdAt are transport-clock times; RcvdAt is zero on
	// timeout.
	SentAt, RcvdAt time.Duration
	// Type classifies the response.
	Type ResponseType
	// From is the source address of the response packet.
	From netip.Addr
	// ReplyIPID is the IP identifier of the response (alias resolution
	// uses it).
	ReplyIPID uint16
	// HasRR reports whether a Record Route option was recovered, either
	// from the response header (echo replies) or from the quoted
	// offending header inside an error (time-exceeded, port-unreachable).
	HasRR bool
	// RR holds the recorded addresses in stamp order.
	RR []netip.Addr
	// RRSlots is the total slot count of the recovered option.
	RRTotalSlots int
	// RRFull reports whether the recovered option had no free slots.
	RRFull bool
	// QuotedRR reports that RR came from a quoted header rather than
	// the response's own header.
	QuotedRR bool
	// TS holds recovered Internet Timestamp entries (PingTS probes).
	TS []packet.TSEntry
	// TSOverflow is the option's overflow counter: hops that could not
	// register a timestamp.
	TSOverflow uint8
	// Attempts is how many times the probe was transmitted (1 plus the
	// retransmissions used); 0 for a SendError before any transmission.
	Attempts int
	// MatchedAttempt is the 1-based attempt the response answered — a
	// late reply to a superseded attempt still matches it — or 0 on
	// timeout and send error.
	MatchedAttempt int
	// Err carries the failure for SendError results; nil otherwise.
	Err error
}

// Responded reports whether any response was matched.
func (r Result) Responded() bool { return r.Type != NoResponse && r.Type != SendError }

// RTT returns the probe round-trip time, or 0 on timeout.
func (r Result) RTT() time.Duration {
	if !r.Responded() {
		return 0
	}
	return r.RcvdAt - r.SentAt
}

// RRContains reports whether addr appears among the recorded hops.
func (r Result) RRContains(addr netip.Addr) bool {
	for _, h := range r.RR {
		if h == addr {
			return true
		}
	}
	return false
}

// RRSlotsRemaining returns how many free slots the recovered option had.
func (r Result) RRSlotsRemaining() int {
	if !r.HasRR {
		return 0
	}
	return r.RRTotalSlots - len(r.RR)
}
