// Package probe is the measurement engine: a scamper-like prober that
// paces crafted probes onto a transport, matches responses (echo
// replies, time-exceeded and port-unreachable errors with quoted
// headers) back to outstanding probes, extracts Record Route contents,
// and reports per-probe results.
//
// The engine is transport-agnostic: the same Prober drives a simulated
// vantage point (internal/netsim) or a raw socket (internal/rawnet).
// Transports must deliver packets and timer callbacks from a single
// goroutine at a time.
package probe

import (
	"net/netip"
	"time"

	"recordroute/internal/netsim"
)

// Transport carries probe packets for a Prober and schedules its timers.
type Transport interface {
	// LocalAddr is the source address probes are sent from.
	LocalAddr() netip.Addr
	// Inject transmits a serialized IPv4 datagram.
	Inject(pkt []byte)
	// SetReceiver registers the packet callback; pkt is valid only for
	// the duration of the call.
	SetReceiver(fn func(at time.Duration, pkt []byte))
	// Schedule runs fn after d.
	Schedule(d time.Duration, fn func())
	// Now returns the transport's clock.
	Now() time.Duration
}

// SimTransport adapts a netsim vantage-point host to the Transport
// interface.
type SimTransport struct {
	host *netsim.Host
	eng  *netsim.Engine
}

// NewSimTransport wraps host (its sniffer is claimed) on the engine eng.
func NewSimTransport(host *netsim.Host, eng *netsim.Engine) *SimTransport {
	return &SimTransport{host: host, eng: eng}
}

// LocalAddr implements Transport.
func (s *SimTransport) LocalAddr() netip.Addr { return s.host.Addr() }

// Inject implements Transport.
func (s *SimTransport) Inject(pkt []byte) { s.host.Inject(pkt) }

// SetReceiver implements Transport.
func (s *SimTransport) SetReceiver(fn func(at time.Duration, pkt []byte)) {
	if fn == nil {
		s.host.SetSniffer(nil)
		return
	}
	s.host.SetSniffer(netsim.SnifferFunc(fn))
}

// Schedule implements Transport.
func (s *SimTransport) Schedule(d time.Duration, fn func()) { s.eng.Schedule(d, fn) }

// Now implements Transport.
func (s *SimTransport) Now() time.Duration { return s.eng.Now() }
