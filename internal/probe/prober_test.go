package probe

import (
	"net/netip"
	"testing"
	"time"

	"recordroute/internal/topology"
)

// testbed builds a small generated Internet and a prober on its first
// M-Lab vantage point that is not behind a source-proximate policer
// (the calibrated config deliberately rate-limits the first few).
func testbed(t *testing.T) (*topology.Topology, *Prober, *topology.VP) {
	t.Helper()
	topo := topology.MustBuild(topology.DefaultConfig(topology.Epoch2016).Scale(0.15))
	var vp *topology.VP
	for _, v := range topo.VPs {
		if !v.SourceRateLimited && !topo.ASes[v.ASIdx].FilterOptions {
			vp = v
			break
		}
	}
	if vp == nil {
		t.Fatal("no unlimited VP")
	}
	p := New(NewSimTransport(vp.Host, topo.Net.Engine()), 0x7a01)
	return topo, p, vp
}

// pickDests returns up to n ground-truth fully-responsive destinations.
func pickDests(topo *topology.Topology, n int) []*topology.Dest {
	var out []*topology.Dest
	for _, d := range topo.Dests {
		if d.GTPingResponsive && !d.GTRRDrop && !d.GTNoHonorRR && !d.GTAlias.IsValid() &&
			!topo.ASes[d.ASIdx].FilterOptions {
			out = append(out, d)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

func TestBatchPingRRAgainstGeneratedInternet(t *testing.T) {
	topo, p, _ := testbed(t)
	dests := pickDests(topo, 20)
	if len(dests) < 5 {
		t.Fatalf("only %d responsive dests", len(dests))
	}
	specs := make([]Spec, len(dests))
	for i, d := range dests {
		specs[i] = Spec{Dst: d.Addr, Kind: PingRR}
	}
	var results []Result
	p.StartBatch(specs, Options{Rate: 100}, func(rs []Result) { results = rs })
	topo.Net.Engine().Run()

	if results == nil {
		t.Fatal("batch never completed")
	}
	for i, r := range results {
		if r.Type != EchoReply {
			t.Errorf("dest %v: response %v, want echo reply", dests[i].Addr, r.Type)
			continue
		}
		if !r.HasRR {
			t.Errorf("dest %v: reply lacks RR", dests[i].Addr)
			continue
		}
		if len(r.RR) == 0 {
			t.Errorf("dest %v: empty RR", dests[i].Addr)
		}
		if r.RTT() <= 0 {
			t.Errorf("dest %v: non-positive RTT %v", dests[i].Addr, r.RTT())
		}
		// Reachability: if slots remained, the destination must appear.
		if !r.RRFull && !r.RRContains(dests[i].Addr) {
			t.Errorf("dest %v within range but absent from RR %v", dests[i].Addr, r.RR)
		}
	}
}

func TestUnresponsiveDestTimesOut(t *testing.T) {
	topo, p, _ := testbed(t)
	var dead *topology.Dest
	for _, d := range topo.Dests {
		if !d.GTPingResponsive {
			dead = d
			break
		}
	}
	if dead == nil {
		t.Fatal("no unresponsive dest in topology")
	}
	var res *Result
	p.StartOne(Spec{Dst: dead.Addr, Kind: Ping}, time.Second, func(r Result) { res = &r })
	topo.Net.Engine().Run()
	if res == nil {
		t.Fatal("done never called")
	}
	if res.Type != NoResponse {
		t.Errorf("response %v, want timeout", res.Type)
	}
	_, _, timedOut, _ := p.Stats()
	if timedOut != 1 {
		t.Errorf("timedOut = %d", timedOut)
	}
}

func TestTTLPingElicitsTimeExceeded(t *testing.T) {
	topo, p, vp := testbed(t)
	d := pickDests(topo, 1)[0]
	var res *Result
	p.StartOne(Spec{Dst: d.Addr, Kind: TTLPing, TTL: 1}, time.Second, func(r Result) { res = &r })
	topo.Net.Engine().Run()
	if res == nil || res.Type != TimeExceeded {
		t.Fatalf("result = %+v, want time exceeded", res)
	}
	// The error source is the VP's first-hop router, an infra address
	// of the VP's own AS.
	if topo.ASOf(res.From) != vp.ASIdx {
		t.Errorf("time exceeded from %v (as%d), want first hop in as%d",
			res.From, topo.ASOf(res.From), vp.ASIdx)
	}
}

func TestTTLPingRRRecoversQuotedRR(t *testing.T) {
	topo, p, _ := testbed(t)
	d := pickDests(topo, 1)[0]
	var res *Result
	p.StartOne(Spec{Dst: d.Addr, Kind: TTLPingRR, TTL: 2}, time.Second, func(r Result) { res = &r })
	topo.Net.Engine().Run()
	if res == nil || res.Type != TimeExceeded {
		t.Fatalf("result = %+v, want time exceeded", res)
	}
	if !res.HasRR || !res.QuotedRR {
		t.Fatalf("quoted RR not recovered: %+v", res)
	}
	// A TTL-2 probe is stamped at most once (by the first-hop router,
	// which may itself be a non-stamping router) before expiring at the
	// second.
	if len(res.RR) > 1 {
		t.Errorf("quoted RR has %d hops, want <= 1: %v", len(res.RR), res.RR)
	}
}

// TestTTLPingRRExpiresAtDestinationHop pins the boundary the
// doubletree forward phase depends on: a probe whose TTL equals the
// destination's hop distance is answered by the destination itself
// (an echo reply carrying RR stamps), while one hop less expires at
// the final router with a readable quoted RR.
func TestTTLPingRRExpiresAtDestinationHop(t *testing.T) {
	topo, p, _ := testbed(t)
	d := pickDests(topo, 1)[0]

	// Find the path length L: the smallest TTL whose probe the
	// destination answers.
	pathLen := uint8(0)
	for ttl := uint8(1); ttl <= 30; ttl++ {
		var res *Result
		p.StartOne(Spec{Dst: d.Addr, Kind: TTLPing, TTL: ttl}, time.Second, func(r Result) { res = &r })
		topo.Net.Engine().Run()
		if res == nil {
			t.Fatalf("TTL %d probe never completed", ttl)
		}
		if res.Type == EchoReply {
			pathLen = ttl
			break
		}
		if res.Type != TimeExceeded {
			t.Fatalf("TTL %d: result %v, want time exceeded en route", ttl, res.Type)
		}
	}
	if pathLen < 2 {
		t.Fatalf("destination %v at path length %d, want >= 2", d.Addr, pathLen)
	}

	// TTL == L: the destination is the expiring hop and must reply
	// itself — an echo reply, not a time exceeded — with RR stamps.
	var atDest *Result
	p.StartOne(Spec{Dst: d.Addr, Kind: TTLPingRR, TTL: pathLen}, time.Second, func(r Result) { atDest = &r })
	topo.Net.Engine().Run()
	if atDest == nil || atDest.Type != EchoReply {
		t.Fatalf("TTL==L result = %+v, want echo reply from the destination", atDest)
	}
	if atDest.From != d.Addr {
		t.Errorf("TTL==L reply from %v, want destination %v", atDest.From, d.Addr)
	}
	if !atDest.HasRR || len(atDest.RR) == 0 {
		t.Errorf("TTL==L reply lacks RR stamps: %+v", atDest)
	}

	// TTL == L-1: expires at the last router before the destination,
	// whose time exceeded quotes the probe's RR option.
	var before *Result
	p.StartOne(Spec{Dst: d.Addr, Kind: TTLPingRR, TTL: pathLen - 1}, time.Second, func(r Result) { before = &r })
	topo.Net.Engine().Run()
	if before == nil || before.Type != TimeExceeded {
		t.Fatalf("TTL==L-1 result = %+v, want time exceeded", before)
	}
	if before.From == d.Addr {
		t.Error("TTL==L-1 error came from the destination itself")
	}
	if !before.QuotedRR {
		t.Errorf("TTL==L-1 quote does not carry the RR option: %+v", before)
	}
}

func TestPingRRUDPElicitsPortUnreachable(t *testing.T) {
	topo, p, _ := testbed(t)
	var dest *topology.Dest
	for _, d := range topo.Dests {
		if d.GTUDPResponsive && !d.GTRRDrop && !topo.ASes[d.ASIdx].FilterOptions {
			dest = d
			break
		}
	}
	if dest == nil {
		t.Fatal("no UDP-responsive dest")
	}
	var res *Result
	p.StartOne(Spec{Dst: dest.Addr, Kind: PingRRUDP}, time.Second, func(r Result) { res = &r })
	topo.Net.Engine().Run()
	if res == nil || res.Type != PortUnreachable {
		t.Fatalf("result = %+v, want port unreachable", res)
	}
	if !res.HasRR || !res.QuotedRR {
		t.Fatalf("quoted RR missing: %+v", res)
	}
	// The quote shows the option as it arrived: stamped by forward
	// routers only, never by the destination.
	if res.RRContains(dest.Addr) {
		t.Errorf("quoted RR contains the destination: %v", res.RR)
	}
}

func TestBatchPacingSpreadsSends(t *testing.T) {
	topo, p, _ := testbed(t)
	dests := pickDests(topo, 10)
	specs := make([]Spec, len(dests))
	for i, d := range dests {
		specs[i] = Spec{Dst: d.Addr, Kind: Ping}
	}
	var results []Result
	p.StartBatch(specs, Options{Rate: 10}, func(rs []Result) { results = rs })
	topo.Net.Engine().Run()
	if results == nil {
		t.Fatal("batch never completed")
	}
	for i := 1; i < len(results); i++ {
		gap := results[i].SentAt - results[i-1].SentAt
		if gap != 100*time.Millisecond {
			t.Errorf("send gap %d = %v, want 100ms", i, gap)
		}
	}
}

func TestStartOneChaining(t *testing.T) {
	// A miniature traceroute: increase TTL until the destination
	// answers, chaining StartOne calls from callbacks.
	topo, p, vp := testbed(t)
	d := pickDests(topo, 1)[0]
	var hops []netip.Addr
	var reached bool
	var step func(ttl uint8)
	step = func(ttl uint8) {
		p.StartOne(Spec{Dst: d.Addr, Kind: TTLPing, TTL: ttl}, time.Second, func(r Result) {
			switch r.Type {
			case TimeExceeded:
				hops = append(hops, r.From)
				if ttl < 32 {
					step(ttl + 1)
				}
			case EchoReply:
				reached = true
			}
		})
	}
	step(1)
	topo.Net.Engine().Run()
	if !reached {
		t.Fatalf("never reached %v; hops %v", d.Addr, hops)
	}
	if len(hops) == 0 {
		t.Fatal("no intermediate hops")
	}
	// Hop ASes must appear in path order.
	asPath := topo.Routes.Path(vp.ASIdx, d.ASIdx)
	pos := map[int]int{}
	for i, a := range asPath {
		pos[a] = i
	}
	last := 0
	for _, h := range hops {
		if pi, ok := pos[topo.ASOf(h)]; ok {
			if pi < last {
				t.Errorf("hops out of AS order: %v", hops)
				break
			}
			last = pi
		}
	}
}

func TestDistinctProbersDoNotCrossMatch(t *testing.T) {
	topo := topology.MustBuild(topology.DefaultConfig(topology.Epoch2016).Scale(0.15))
	d := func() *topology.Dest {
		for _, d := range topo.Dests {
			if d.GTPingResponsive && !topo.ASes[d.ASIdx].FilterOptions {
				return d
			}
		}
		return nil
	}()
	pa := New(NewSimTransport(topo.VPs[0].Host, topo.Net.Engine()), 0x0a0a)
	pb := New(NewSimTransport(topo.VPs[1].Host, topo.Net.Engine()), 0x0b0b)
	var ra, rb *Result
	pa.StartOne(Spec{Dst: d.Addr, Kind: Ping}, time.Second, func(r Result) { ra = &r })
	pb.StartOne(Spec{Dst: d.Addr, Kind: Ping}, time.Second, func(r Result) { rb = &r })
	topo.Net.Engine().Run()
	if ra == nil || rb == nil {
		t.Fatal("a batch never completed")
	}
	if ra.Type != EchoReply || rb.Type != EchoReply {
		t.Errorf("responses %v / %v", ra.Type, rb.Type)
	}
}

func TestEmptyBatchCompletes(t *testing.T) {
	topo, p, _ := testbed(t)
	called := false
	p.StartBatch(nil, Options{}, func(rs []Result) { called = rs == nil })
	topo.Net.Engine().Run()
	if !called {
		t.Error("empty batch did not complete")
	}
}

// TestIndexedBatchDenseMatchesStartBatch: with dense indices, single
// attempts, and a fixed timeout, StartIndexedBatch is byte-identical to
// StartBatch on a fresh prober — same seqs, send times, and outcomes.
// This is what keeps pre-existing goldens stable when origin phases
// switch to the indexed path.
func TestIndexedBatchDenseMatchesStartBatch(t *testing.T) {
	topoA, pa, _ := testbed(t)
	dests := pickDests(topoA, 20)
	specs := make([]Spec, len(dests))
	for i, d := range dests {
		specs[i] = Spec{Dst: d.Addr, Kind: PingRR}
	}
	var want []Result
	pa.StartBatch(specs, Options{Rate: 100}, func(rs []Result) { want = rs })
	topoA.Net.Engine().Run()

	topoB, pb, _ := testbed(t)
	idx := make([]IndexedSpec, len(specs))
	for i := range specs {
		idx[i] = IndexedSpec{Index: i, Spec: specs[i]}
	}
	var got []Result
	pb.StartIndexedBatch(idx, Options{Rate: 100}, func(rs []Result) { got = rs })
	topoB.Net.Engine().Run()

	if want == nil || got == nil {
		t.Fatal("a batch never completed")
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Seq != w.Seq || g.SentAt != w.SentAt || g.RcvdAt != w.RcvdAt ||
			g.Type != w.Type || g.From != w.From || g.ReplyIPID != w.ReplyIPID {
			t.Errorf("probe %d: indexed %+v != batch %+v", i, g, w)
		}
	}
}

// TestIndexedBatchShardsEqualUnsplit: splitting an indexed batch into
// contiguous ranges run on separate (identically built) networks yields
// per-destination results identical to the unsplit batch — send times
// and sequence numbers derive from the global index, retransmissions
// included — and never consumes the prober's shared sequence counter.
func TestIndexedBatchShardsEqualUnsplit(t *testing.T) {
	opts := Options{Rate: 200, Retries: 1}
	build := func(lo, hi int) (*topology.Topology, *Prober, []Result) {
		topo, p, _ := testbed(t)
		n := 150
		if len(topo.Dests) < n {
			n = len(topo.Dests)
		}
		if hi > n {
			hi = n
		}
		specs := make([]IndexedSpec, 0, hi-lo)
		for g := lo; g < hi; g++ {
			specs = append(specs, IndexedSpec{Index: g, Spec: Spec{Dst: topo.Dests[g].Addr, Kind: Ping}})
		}
		var rs []Result
		p.StartIndexedBatch(specs, opts, func(out []Result) { rs = out })
		topo.Net.Engine().Run()
		if rs == nil {
			t.Fatalf("indexed batch [%d,%d) never completed", lo, hi)
		}
		return topo, p, rs
	}

	topo, _, full := build(0, 1<<30)
	n := len(full)
	cut := n / 2
	_, pLow, low := build(0, cut)
	_, _, high := build(cut, n)
	merged := append(append([]Result(nil), low...), high...)

	sawTimeout := false
	for g := range full {
		w, m := full[g], merged[g]
		if m.Seq != w.Seq || m.SentAt != w.SentAt || m.RcvdAt != w.RcvdAt ||
			m.Type != w.Type || m.From != w.From || m.ReplyIPID != w.ReplyIPID {
			t.Errorf("dest %d: sharded %+v != unsplit %+v", g, m, w)
		}
		if w.Type == NoResponse {
			sawTimeout = true
			if wantSeq := uint16(2*g + 1); w.Seq != wantSeq {
				t.Errorf("dest %d final attempt seq = %d, want %d", g, w.Seq, wantSeq)
			}
		}
	}
	if !sawTimeout {
		t.Error("no unresponsive destination exercised the retransmit path")
	}
	_ = topo

	// Indexed batches must not consume the shared counter: the next
	// counter-allocated probe still draws seq 0.
	var one Result
	pLow.StartOne(Spec{Dst: topo.Dests[0].Addr, Kind: Ping}, 0, func(r Result) { one = r })
	if one.Seq != 0 && one.Type == NoResponse {
		t.Errorf("counter-allocated probe after indexed batch drew seq %d, want 0", one.Seq)
	}
}
