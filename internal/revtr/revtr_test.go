package revtr

import (
	"net/netip"
	"testing"
	"time"

	"recordroute/internal/measure"
	"recordroute/internal/probe"
	"recordroute/internal/topology"
)

// bed builds a topology plus measurement VPs for all platform vantage
// points (unlimited ones first, so the system prefers clean spoofers).
func bed(t *testing.T) (*topology.Topology, []*measure.VantagePoint) {
	t.Helper()
	topo := topology.MustBuild(topology.DefaultConfig(topology.Epoch2016).Scale(0.15))
	var vps []*measure.VantagePoint
	id := uint16(0x2000)
	for _, v := range topo.VPs {
		if !v.SourceRateLimited {
			vps = append(vps, measure.NewVantagePoint(v.Name, v.Host, topo.Net.Engine(), id))
			id++
		}
	}
	return topo, vps
}

func TestReverseHopsExtraction(t *testing.T) {
	cur := netip.MustParseAddr("100.7.0.1")
	r := probe.Result{
		Type:  probe.EchoReply,
		HasRR: true,
		RR: []netip.Addr{
			netip.MustParseAddr("100.1.255.1"), // forward
			cur,                                // dest stamp
			netip.MustParseAddr("100.9.255.1"), // reverse
			netip.MustParseAddr("100.9.255.2"),
		},
		RRTotalSlots: 9,
	}
	rev, spare, ok := reverseHops(r, cur)
	if !ok || !spare {
		t.Fatalf("ok=%v spare=%v", ok, spare)
	}
	if len(rev) != 2 || rev[0] != netip.MustParseAddr("100.9.255.1") {
		t.Errorf("rev = %v", rev)
	}
}

func TestReverseHopsRejectsUnstamped(t *testing.T) {
	cur := netip.MustParseAddr("100.7.0.1")
	r := probe.Result{
		Type:         probe.EchoReply,
		HasRR:        true,
		RR:           []netip.Addr{netip.MustParseAddr("100.1.255.1")},
		RRTotalSlots: 9,
	}
	if _, _, ok := reverseHops(r, cur); ok {
		t.Error("accepted a response without the target's stamp")
	}
}

func TestMeasureReverseEndToEnd(t *testing.T) {
	topo, vps := bed(t)
	sys := New(vps, Options{})
	target := vps[0]

	// Pick a conformant destination close enough to *some* VP.
	var dst netip.Addr
	for _, d := range topo.Dests {
		if !d.GTPingResponsive || d.GTRRDrop || d.GTNoHonorRR || d.GTAlias.IsValid() ||
			topo.ASes[d.ASIdx].FilterOptions {
			continue
		}
		for _, vp := range vps {
			if n := len(topo.ForwardStampPath(vp.Prober.LocalAddr(), d.Addr)); n > 0 && n <= 7 {
				dst = d.Addr
				break
			}
		}
		if dst.IsValid() {
			break
		}
	}
	if !dst.IsValid() {
		t.Fatal("no destination within RR range of any VP")
	}

	var got *Path
	var gotErr error
	sys.MeasureReverse(dst, target, func(p Path, err error) { got, gotErr = &p, err })
	topo.Net.Engine().Run()

	if got == nil {
		t.Fatal("measurement never completed")
	}
	if gotErr != nil {
		t.Fatalf("MeasureReverse: %v", gotErr)
	}
	if len(got.Hops) == 0 {
		t.Fatal("no reverse hops measured")
	}
	// Ground truth: the reverse path dst → target is the forward stamp
	// path from dst's host to the target address — restricted to routers
	// that actually stamp (the topology deliberately includes
	// non-stamping routers).
	full := topo.ForwardStampPath(dst, target.Prober.LocalAddr())
	if full == nil {
		t.Fatal("no ground-truth reverse path")
	}
	var want []netip.Addr
	for _, hop := range full {
		r := topo.RouterByAddr(hop)
		if r != nil && !r.Behavior().NoStampRR {
			want = append(want, hop)
		}
	}
	// Every measured hop must lie on the true reverse path, in order.
	pos := -1
	for _, h := range got.Hops {
		found := -1
		for i, w := range want {
			if w == h {
				found = i
				break
			}
		}
		if found < 0 {
			t.Errorf("measured hop %v not on true reverse path %v", h, want)
			continue
		}
		if found <= pos {
			t.Errorf("measured hops out of order: %v vs truth %v", got.Hops, want)
		}
		pos = found
	}
	if got.Complete {
		// A complete measurement must cover the entire true path.
		if len(got.Hops) != len(want) {
			t.Errorf("complete path has %d hops, truth has %d\n got: %v\nwant: %v",
				len(got.Hops), len(want), got.Hops, want)
		}
	}
	t.Logf("reverse path %v → %v: %d hops, complete=%v, segments=%d",
		dst, target.Prober.LocalAddr(), len(got.Hops), got.Complete, got.Segments)
}

func TestMeasureReverseUnreachableTarget(t *testing.T) {
	topo, vps := bed(t)
	sys := New(vps[:1], Options{MaxSpoofers: 1})
	// An address that answers nothing: a ground-truth unresponsive dest.
	var dead netip.Addr
	for _, d := range topo.Dests {
		if !d.GTPingResponsive {
			dead = d.Addr
			break
		}
	}
	var gotErr error
	called := false
	sys.MeasureReverse(dead, vps[0], func(p Path, err error) { called, gotErr = true, err })
	topo.Net.Engine().Run()
	if !called {
		t.Fatal("done never called")
	}
	if gotErr == nil {
		t.Error("expected an error for an unmeasurable destination")
	}
}

func TestMeasureReverseBatch(t *testing.T) {
	topo, vps := bed(t)
	sys := New(vps, Options{})
	target := vps[0]
	// Collect several close destinations.
	var dsts []netip.Addr
	for _, d := range topo.Dests {
		if !d.GTPingResponsive || d.GTRRDrop || topo.ASes[d.ASIdx].FilterOptions {
			continue
		}
		for _, vp := range vps {
			if n := len(topo.ForwardStampPath(vp.Prober.LocalAddr(), d.Addr)); n > 0 && n <= 6 {
				dsts = append(dsts, d.Addr)
				break
			}
		}
		if len(dsts) == 4 {
			break
		}
	}
	if len(dsts) < 2 {
		t.Skip("not enough close destinations")
	}
	var results []BatchResult
	sys.MeasureReverseBatch(dsts, target, 50*time.Millisecond, func(rs []BatchResult) { results = rs })
	topo.Net.Engine().Run()
	if len(results) != len(dsts) {
		t.Fatalf("results = %d, want %d", len(results), len(dsts))
	}
	measured := 0
	for i, r := range results {
		if r.Path.Dst != dsts[i] {
			t.Errorf("result %d for %v, want %v", i, r.Path.Dst, dsts[i])
		}
		if r.Err == nil && len(r.Path.Hops) > 0 {
			measured++
		}
	}
	if measured == 0 {
		t.Error("no destination yielded a reverse path")
	}
}

// TestRankerOrdersSpooferAttempts verifies the configured ranker
// controls which VPs are tried and in what order.
func TestRankerOrdersSpooferAttempts(t *testing.T) {
	topo, vps := bed(t)
	if len(vps) < 3 {
		t.Skip("need several VPs")
	}
	var rankedFor []netip.Addr
	reversed := func(target netip.Addr, in []*measure.VantagePoint) []*measure.VantagePoint {
		rankedFor = append(rankedFor, target)
		out := make([]*measure.VantagePoint, len(in))
		for i, vp := range in {
			out[len(in)-1-i] = vp
		}
		return out
	}
	sys := New(vps, Options{Ranker: reversed})

	var dst netip.Addr
	for _, d := range topo.Dests {
		if !d.GTPingResponsive || d.GTRRDrop || topo.ASes[d.ASIdx].FilterOptions {
			continue
		}
		for _, vp := range vps {
			if n := len(topo.ForwardStampPath(vp.Prober.LocalAddr(), d.Addr)); n > 0 && n <= 6 {
				dst = d.Addr
				break
			}
		}
		if dst.IsValid() {
			break
		}
	}
	if !dst.IsValid() {
		t.Skip("no close destination")
	}
	doneCalled := false
	sys.MeasureReverse(dst, vps[0], func(Path, error) { doneCalled = true })
	topo.Net.Engine().Run()
	if !doneCalled {
		t.Fatal("measurement never completed")
	}
	if len(rankedFor) == 0 {
		t.Fatal("ranker never consulted")
	}
	if rankedFor[0] != dst {
		t.Errorf("first segment ranked for %v, want %v", rankedFor[0], dst)
	}
}
