// Package revtr implements a simplified Reverse Traceroute (Katz-Bassett
// et al., NSDI 2010) on top of the Record Route primitive — the system
// whose continued viability the paper's reachability analysis (§3.3)
// argues for.
//
// To measure the path *back* from a destination D to a target vantage
// point T:
//
//  1. Some vantage point S within eight RR hops of D sends D a ping-RR
//     whose source address is spoofed as T. The probe reaches D with
//     free Record Route slots; D stamps itself and replies — to T,
//     because of the spoof. Routers on D's path toward T fill the
//     remaining slots: the first segment of the reverse path.
//  2. If slots ran out before the reply reached T, the last recorded
//     reverse hop H becomes the new measurement target: assuming
//     destination-based routing, H's path to T is the tail of D's
//     reverse path. Repeat from step 1 with D = H.
//  3. The path is complete when a reply arrives with slots to spare
//     (every remaining reverse hop fit) or a recorded hop lands in T's
//     own network.
//
// Spoofed transmission and cross-vantage-point matching are coordinated
// through probe.Prober.Expect/SendSpoofed.
package revtr

import (
	"fmt"
	"net/netip"
	"time"

	"recordroute/internal/measure"
	"recordroute/internal/probe"
)

// Options tunes the measurement.
type Options struct {
	// MaxSegments bounds the stitching iterations; 0 means 10.
	MaxSegments int
	// MaxSpoofers bounds how many vantage points are tried per segment;
	// 0 means 8.
	MaxSpoofers int
	// Timeout is the per-probe wait; 0 means the prober default.
	Timeout time.Duration
	// RRSlots overrides the Record Route size; 0 means nine.
	RRSlots int
	// Ranker, when set, orders the candidate spoofing vantage points
	// per segment target (closest-first ordering cuts wasted probes,
	// as the production Reverse Traceroute system does with its
	// reachability atlas). Nil keeps the configured VP order.
	Ranker func(target netip.Addr, vps []*measure.VantagePoint) []*measure.VantagePoint
}

func (o Options) maxSegments() int {
	if o.MaxSegments == 0 {
		return 10
	}
	return o.MaxSegments
}

func (o Options) maxSpoofers() int {
	if o.MaxSpoofers == 0 {
		return 8
	}
	return o.MaxSpoofers
}

// Path is a measured reverse path.
type Path struct {
	// Dst is the destination whose path back to Target was measured.
	Dst netip.Addr
	// Target is the vantage point the path leads to.
	Target netip.Addr
	// Hops are the recorded reverse-path router addresses, from Dst
	// toward Target. Stitch points (re-measured intermediate routers)
	// appear once.
	Hops []netip.Addr
	// Complete reports whether the final segment reached Target with
	// slots to spare, i.e. no reverse hop is missing.
	Complete bool
	// Segments counts the stitched measurements.
	Segments int
}

// System coordinates reverse-path measurements across vantage points.
type System struct {
	// VPs are the available vantage points; per segment they are tried
	// in order as spoofing sources, so callers should place likely-close
	// ones first.
	VPs  []*measure.VantagePoint
	Opts Options
}

// New returns a System over the given vantage points.
func New(vps []*measure.VantagePoint, opts Options) *System {
	return &System{VPs: vps, Opts: opts}
}

// MeasureReverse measures the reverse path from dst back to the target
// vantage point and calls done exactly once. Partial paths are reported
// with Complete == false and a nil error; an error means not even the
// first segment could be measured.
func (s *System) MeasureReverse(dst netip.Addr, target *measure.VantagePoint, done func(Path, error)) {
	p := Path{Dst: dst, Target: target.Prober.LocalAddr()}
	s.segment(dst, target, &p, done)
}

// BatchResult pairs a destination's measured path with its error.
type BatchResult struct {
	Path Path
	Err  error
}

// MeasureReverseBatch measures the reverse path of every destination
// back to target, staggering starts by interval (spoofed RR probes are
// options traffic; pace them like any study probing). done receives
// results in destination order.
func (s *System) MeasureReverseBatch(dsts []netip.Addr, target *measure.VantagePoint, interval time.Duration, done func([]BatchResult)) {
	if len(dsts) == 0 {
		target.Prober.Schedule(0, func() { done(nil) })
		return
	}
	results := make([]BatchResult, len(dsts))
	remaining := len(dsts)
	for i, d := range dsts {
		i, d := i, d
		target.Prober.Schedule(time.Duration(i)*interval, func() {
			s.MeasureReverse(d, target, func(p Path, err error) {
				results[i] = BatchResult{Path: p, Err: err}
				remaining--
				if remaining == 0 {
					done(results)
				}
			})
		})
	}
}

// segment measures one stitching step: the reverse hops from cur toward
// the target.
func (s *System) segment(cur netip.Addr, target *measure.VantagePoint, p *Path, done func(Path, error)) {
	if p.Segments >= s.Opts.maxSegments() {
		done(*p, nil)
		return
	}
	order := s.VPs
	if s.Opts.Ranker != nil {
		order = s.Opts.Ranker(cur, s.VPs)
	}
	s.trySpoofer(order, 0, cur, target, p, done)
}

// trySpoofer attempts the i'th vantage point of the given order as the
// spoofing source for the current segment, advancing on failure.
func (s *System) trySpoofer(order []*measure.VantagePoint, i int, cur netip.Addr, target *measure.VantagePoint, p *Path, done func(Path, error)) {
	if i >= len(order) || i >= s.Opts.maxSpoofers() {
		// No spoofer in range: report what we have.
		if p.Segments == 0 {
			done(*p, fmt.Errorf("revtr: no vantage point within RR range of %v", cur))
		} else {
			done(*p, nil)
		}
		return
	}
	spoofer := order[i]
	spec := probe.Spec{Dst: cur, Kind: probe.PingRR, RRSlots: s.Opts.RRSlots}
	id, seq, ok := target.Prober.Expect(spec, s.Opts.Timeout, func(r probe.Result) {
		rev, spare, ok := reverseHops(r, cur)
		if !ok {
			// Timeout, stripped option, or cur did not stamp (out of
			// range from this spoofer): try the next vantage point.
			s.trySpoofer(order, i+1, cur, target, p, done)
			return
		}
		if !spare && len(rev) == 0 {
			// cur stamped the final slot: in range of this spoofer but
			// with no room for reverse hops. A closer one may do better.
			s.trySpoofer(order, i+1, cur, target, p, done)
			return
		}
		p.Segments++
		for _, h := range rev {
			// A hop reappearing across segments would loop forever;
			// stop with the partial path instead.
			for _, seen := range p.Hops {
				if seen == h {
					done(*p, nil)
					return
				}
			}
			p.Hops = append(p.Hops, h)
		}
		if spare {
			p.Complete = true
			done(*p, nil)
			return
		}
		s.segment(rev[len(rev)-1], target, p, done)
	})
	if !ok {
		// Sequence space exhausted: the registration failed and done
		// already advanced the search with a SendError. Transmitting the
		// returned identifiers anyway could collide with a live pending
		// probe at the same (id, seq) and resolve a stranger's op.
		return
	}
	if err := spoofer.Prober.SendSpoofed(spec, target.Prober.LocalAddr(), id, seq); err != nil {
		// Malformed send: the Expect timeout will advance the search.
		return
	}
}

// reverseHops extracts the reverse-path hops from a spoofed ping-RR
// response: the recorded slots after cur's own stamp. spare reports
// whether free slots remained (the path is complete). ok is false when
// the response is unusable.
func reverseHops(r probe.Result, cur netip.Addr) (rev []netip.Addr, spare, ok bool) {
	if r.Type != probe.EchoReply || !r.HasRR {
		return nil, false, false
	}
	stamp := -1
	for i, h := range r.RR {
		if h == cur {
			stamp = i
			break
		}
	}
	if stamp < 0 {
		return nil, false, false
	}
	return r.RR[stamp+1:], r.RRSlotsRemaining() > 0, true
}
