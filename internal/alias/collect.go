package alias

import (
	"net/netip"

	"recordroute/internal/probe"
)

// Collect gathers IP-ID series for the candidate addresses by sending
// `rounds` interleaved pings to each (round-robin over addresses, the
// interleaving MIDAR's test depends on) and calls done with the series
// keyed by address. Unanswered probes contribute no samples.
func Collect(p *probe.Prober, addrs []netip.Addr, rounds int, opts probe.Options, done func(map[netip.Addr]Series)) {
	if rounds < 1 {
		rounds = 1
	}
	specs := make([]probe.Spec, 0, rounds*len(addrs))
	for r := 0; r < rounds; r++ {
		for _, a := range addrs {
			specs = append(specs, probe.Spec{Dst: a, Kind: probe.Ping})
		}
	}
	p.StartBatch(specs, opts, func(rs []probe.Result) {
		done(SeriesFrom(rs))
	})
}

// SeriesFrom folds raw ping results into per-address IP-ID series, in
// result order. It is the collection half of Collect for callers that
// schedule the interleaved rounds themselves (e.g. a destination-sharded
// fleet probing disjoint candidate subsets on separate replicas).
// Unanswered probes contribute no samples.
func SeriesFrom(rs []probe.Result) map[netip.Addr]Series {
	series := make(map[netip.Addr]Series)
	for _, r := range rs {
		if r.Type != probe.EchoReply {
			continue
		}
		series[r.Dst] = append(series[r.Dst], Sample{At: r.RcvdAt, ID: r.ReplyIPID})
	}
	return series
}
