package alias

import (
	"net/netip"
	"testing"
	"time"

	"recordroute/internal/probe"
	"recordroute/internal/topology"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

// mk builds a series from (ms, id) pairs.
func mk(pairs ...[2]int) Series {
	var s Series
	for _, p := range pairs {
		s = append(s, Sample{At: time.Duration(p[0]) * time.Millisecond, ID: uint16(p[1])})
	}
	return s
}

func TestCompatibleSharedCounter(t *testing.T) {
	// One counter sampled alternately: 100, 102, 104... interleaved.
	sa := mk([2]int{0, 100}, [2]int{20, 102}, [2]int{40, 104})
	sb := mk([2]int{10, 101}, [2]int{30, 103}, [2]int{50, 105})
	if !Compatible(sa, sb, Config{}) {
		t.Error("shared counter judged incompatible")
	}
}

func TestIncompatibleIndependentCounters(t *testing.T) {
	// Two counters far apart: merged sequence jumps wildly.
	sa := mk([2]int{0, 100}, [2]int{20, 101}, [2]int{40, 102})
	sb := mk([2]int{10, 40000}, [2]int{30, 40001}, [2]int{50, 40002})
	if Compatible(sa, sb, Config{}) {
		t.Error("independent counters judged compatible")
	}
}

func TestIncompatibleEqualIDs(t *testing.T) {
	sa := mk([2]int{0, 7}, [2]int{20, 8}, [2]int{40, 9})
	sb := mk([2]int{10, 7}, [2]int{30, 8}, [2]int{50, 9})
	if Compatible(sa, sb, Config{}) {
		t.Error("duplicate IDs judged compatible")
	}
}

func TestCompatibleToleratesWrap(t *testing.T) {
	// Counter wrapping 65535 → 0 is a delta of 1 mod 2^16.
	sa := mk([2]int{0, 65534}, [2]int{20, 0}, [2]int{40, 2})
	sb := mk([2]int{10, 65535}, [2]int{30, 1}, [2]int{50, 3})
	if !Compatible(sa, sb, Config{}) {
		t.Error("wrap-around shared counter judged incompatible")
	}
}

func TestShortSeriesNeverCompatible(t *testing.T) {
	sa := mk([2]int{0, 1}, [2]int{10, 2})
	sb := mk([2]int{5, 1}, [2]int{15, 2}, [2]int{25, 3})
	if Compatible(sa, sb, Config{}) {
		t.Error("short series passed the test")
	}
}

func TestVelocityBoundRejectsFastJumps(t *testing.T) {
	// 10k increment over 10ms at MaxVelocity 2000/s → impossible.
	sa := mk([2]int{0, 0}, [2]int{20, 20000}, [2]int{40, 40000})
	sb := mk([2]int{10, 10000}, [2]int{30, 30000}, [2]int{50, 50000})
	if Compatible(sa, sb, Config{}) {
		t.Error("implausibly fast counter judged compatible")
	}
}

func TestSetsUnionCanonical(t *testing.T) {
	s := NewSets()
	s.Union(a("10.0.0.2"), a("10.0.0.1"))
	s.Union(a("10.0.0.2"), a("10.0.0.3"))
	if got := s.Canonical(a("10.0.0.3")); got != a("10.0.0.1") {
		t.Errorf("canonical = %v, want lowest member", got)
	}
	if !s.SameDevice(a("10.0.0.1"), a("10.0.0.3")) {
		t.Error("transitive union lost")
	}
	if s.SameDevice(a("10.0.0.1"), a("10.0.0.9")) {
		t.Error("unrelated address joined")
	}
	if got := s.Canonical(a("99.9.9.9")); got != a("99.9.9.9") {
		t.Error("unknown address not identity")
	}
	sets := s.All()
	if len(sets) != 1 || len(sets[0]) != 3 {
		t.Errorf("All = %v", sets)
	}
}

func TestResolveViaPairs(t *testing.T) {
	shared1 := mk([2]int{0, 10}, [2]int{20, 12}, [2]int{40, 14})
	shared2 := mk([2]int{10, 11}, [2]int{30, 13}, [2]int{50, 15})
	lone := mk([2]int{0, 50000}, [2]int{20, 50001}, [2]int{40, 50002})
	series := map[netip.Addr]Series{
		a("10.0.0.1"): shared1,
		a("10.0.0.2"): shared2,
		a("10.0.0.3"): lone,
	}
	sets := Resolve(series, AllPairs([]netip.Addr{a("10.0.0.1"), a("10.0.0.2"), a("10.0.0.3")}), Config{})
	if !sets.SameDevice(a("10.0.0.1"), a("10.0.0.2")) {
		t.Error("aliases not merged")
	}
	if sets.SameDevice(a("10.0.0.1"), a("10.0.0.3")) {
		t.Error("independent device merged")
	}
}

func TestAllPairsCount(t *testing.T) {
	got := AllPairs([]netip.Addr{a("1.1.1.1"), a("2.2.2.2"), a("3.3.3.3"), a("4.4.4.4")})
	if len(got) != 6 {
		t.Errorf("pairs = %d, want 6", len(got))
	}
}

// TestEndToEndAliasResolutionInSim drives the whole pipeline against a
// generated topology: probe a destination's two addresses (ground-truth
// aliases) plus an unrelated destination, and verify the resolver pairs
// exactly the true aliases.
func TestEndToEndAliasResolutionInSim(t *testing.T) {
	topo := topology.MustBuild(topology.DefaultConfig(topology.Epoch2016).Scale(0.15))
	var aliased *topology.Dest
	var other *topology.Dest
	for _, d := range topo.Dests {
		if d.GTAlias.IsValid() && d.GTPingResponsive && aliased == nil {
			aliased = d
		} else if d.GTPingResponsive && !d.GTAlias.IsValid() && other == nil {
			other = d
		}
	}
	if aliased == nil {
		t.Skip("no aliased destination drawn at this scale")
	}
	var vpHost *topology.VP
	for _, v := range topo.VPs {
		if !v.SourceRateLimited {
			vpHost = v
			break
		}
	}
	p := probe.New(probe.NewSimTransport(vpHost.Host, topo.Net.Engine()), 0x6001)
	cands := []netip.Addr{aliased.Addr, aliased.GTAlias, other.Addr}
	var series map[netip.Addr]Series
	Collect(p, cands, 5, probe.Options{Rate: 50}, func(s map[netip.Addr]Series) { series = s })
	topo.Net.Engine().Run()
	if series == nil {
		t.Fatal("collection never completed")
	}
	if len(series[aliased.Addr]) < 3 || len(series[aliased.GTAlias]) < 3 {
		t.Fatalf("too few samples: %d/%d", len(series[aliased.Addr]), len(series[aliased.GTAlias]))
	}
	sets := Resolve(series, AllPairs(cands), Config{})
	if !sets.SameDevice(aliased.Addr, aliased.GTAlias) {
		t.Error("true aliases not resolved")
	}
	if sets.SameDevice(aliased.Addr, other.Addr) {
		t.Error("false alias pair resolved")
	}
}
