// Package alias implements MIDAR-style IP alias resolution: interfaces
// of one device share a single monotonically increasing IP-ID counter,
// so interleaved probes to two aliases yield ID samples that merge into
// one consistent increasing sequence (the Monotonic Bound Test), while
// unrelated devices almost never do.
//
// The paper (§3.3) uses MIDAR to reclassify destinations that recorded
// an alias — rather than the probed address — into their Record Route
// responses.
package alias

import (
	"net/netip"
	"sort"
	"time"
)

// Sample is one (receive time, IP-ID) observation for a candidate
// address.
type Sample struct {
	At time.Duration
	ID uint16
}

// Series is a time-ordered sequence of samples from one address.
type Series []Sample

// Config tunes the monotonic bound test.
type Config struct {
	// MaxVelocity is the highest plausible counter rate in IDs per
	// second; implied increments beyond it refute shared ownership.
	// 0 means 2000.
	MaxVelocity float64
	// MinSamples is the minimum number of samples per address for a
	// pair to be testable. 0 means 3.
	MinSamples int
}

func (c Config) maxVelocity() float64 {
	if c.MaxVelocity <= 0 {
		return 2000
	}
	return c.MaxVelocity
}

func (c Config) minSamples() int {
	if c.MinSamples <= 0 {
		return 3
	}
	return c.MinSamples
}

// Compatible runs the monotonic bound test on two series: it merges them
// in time order and checks that consecutive IDs advance like one shared
// 16-bit counter — strictly increasing (mod 2^16) with increments
// bounded by MaxVelocity times the elapsed gap. Series that are too
// short are never compatible.
func Compatible(a, b Series, cfg Config) bool {
	if len(a) < cfg.minSamples() || len(b) < cfg.minSamples() {
		return false
	}
	merged := make(Series, 0, len(a)+len(b))
	merged = append(merged, a...)
	merged = append(merged, b...)
	sort.Slice(merged, func(i, j int) bool { return merged[i].At < merged[j].At })
	return monotonic(merged, cfg.maxVelocity())
}

// monotonic checks a merged series against the shared-counter model.
func monotonic(s Series, maxVelocity float64) bool {
	for i := 1; i < len(s); i++ {
		dt := (s[i].At - s[i-1].At).Seconds()
		delta := int(s[i].ID-s[i-1].ID) & 0xffff
		if delta == 0 {
			// A shared counter increments on every originated packet;
			// two equal IDs in sequence mean two different counters
			// (or a wrap of exactly 2^16, beyond any sane velocity).
			return false
		}
		// Allow one increment of slack for near-simultaneous arrivals.
		if float64(delta) > maxVelocity*dt+64 {
			return false
		}
	}
	return true
}

// Sets is a disjoint-set partition of addresses into alias sets.
type Sets struct {
	parent map[netip.Addr]netip.Addr
}

// NewSets returns an empty partition.
func NewSets() *Sets {
	return &Sets{parent: make(map[netip.Addr]netip.Addr)}
}

// find returns the set representative with path compression.
func (s *Sets) find(a netip.Addr) netip.Addr {
	p, ok := s.parent[a]
	if !ok || p == a {
		return a
	}
	root := s.find(p)
	s.parent[a] = root
	return root
}

// Union merges the sets of a and b. The representative is the numerically
// smaller address, keeping results deterministic.
func (s *Sets) Union(a, b netip.Addr) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	if rb.Less(ra) {
		ra, rb = rb, ra
	}
	s.parent[rb] = ra
	if _, ok := s.parent[ra]; !ok {
		s.parent[ra] = ra
	}
}

// Canonical returns the representative of a's alias set (a itself when
// unknown) — the aliasOf function the analysis layer consumes.
func (s *Sets) Canonical(a netip.Addr) netip.Addr { return s.find(a) }

// SameDevice reports whether a and b were resolved to one device.
func (s *Sets) SameDevice(a, b netip.Addr) bool { return s.find(a) == s.find(b) }

// All returns every non-singleton alias set, each sorted, ordered by
// representative.
func (s *Sets) All() [][]netip.Addr {
	groups := make(map[netip.Addr][]netip.Addr)
	for a := range s.parent {
		r := s.find(a)
		groups[r] = append(groups[r], a)
	}
	var reps []netip.Addr
	for r, members := range groups {
		if len(members) < 2 {
			continue
		}
		reps = append(reps, r)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].Less(reps[j]) })
	out := make([][]netip.Addr, 0, len(reps))
	for _, r := range reps {
		members := groups[r]
		sort.Slice(members, func(i, j int) bool { return members[i].Less(members[j]) })
		out = append(out, members)
	}
	return out
}

// Resolve tests the given candidate pairs and unions those whose series
// pass the monotonic bound test.
func Resolve(series map[netip.Addr]Series, pairs [][2]netip.Addr, cfg Config) *Sets {
	sets := NewSets()
	for _, p := range pairs {
		sa, sb := series[p[0]], series[p[1]]
		if Compatible(sa, sb, cfg) {
			sets.Union(p[0], p[1])
		}
	}
	return sets
}

// AllPairs expands a candidate list into every unordered pair, for
// small-scale exhaustive resolution.
func AllPairs(addrs []netip.Addr) [][2]netip.Addr {
	var out [][2]netip.Addr
	for i := range addrs {
		for j := i + 1; j < len(addrs); j++ {
			out = append(out, [2]netip.Addr{addrs[i], addrs[j]})
		}
	}
	return out
}
