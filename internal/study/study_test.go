package study

import (
	"os"
	"strings"
	"testing"

	"recordroute/internal/topology"
)

// testStudy builds a moderately sized study; shared across tests via
// sync.Once-style caching would hide determinism bugs, so each test
// builds its own.
func testStudy(t *testing.T, scale float64) *Study {
	t.Helper()
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(scale)
	s, err := New(cfg, Options{Rate: 200, ShuffleSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestResponsivenessShape(t *testing.T) {
	s := testStudy(t, 0.3)
	r := s.RunResponsiveness()
	r.Render(os.Stderr)

	if got := r.RRRatioByIP(); got < 0.60 || got > 0.90 {
		t.Errorf("RR/ping ratio by IP = %.2f, want ~0.75", got)
	}
	if got := r.RRRatioByAS(); got < 0.70 || got > 0.95 {
		t.Errorf("RR/ping ratio by AS = %.2f, want ~0.82", got)
	}
	if byAS, byIP := r.RRRatioByAS(), r.RRRatioByIP(); byAS <= byIP {
		t.Errorf("by-AS ratio %.2f not above by-IP %.2f", byAS, byIP)
	}
	dist := r.VPResponseDist()
	if dist.AboveTwoThirds < 0.5 {
		t.Errorf("only %.2f of RR-responsive dests answer >2/3 of VPs, want most", dist.AboveTwoThirds)
	}
}

func TestReachabilityShape(t *testing.T) {
	s := testStudy(t, 0.3)
	r := s.RunResponsiveness()
	re := s.RunReachability(r)
	re.Render(os.Stderr)

	if re.ReachableFrac < 0.4 || re.ReachableFrac > 0.9 {
		t.Errorf("reachable fraction = %.2f, want ~0.66", re.ReachableFrac)
	}
	if re.Within8Frac > re.ReachableFrac {
		t.Errorf("within-8 %.2f exceeds within-9 %.2f", re.Within8Frac, re.ReachableFrac)
	}
}

// TestStudyDeterministic: two identically-seeded studies produce
// byte-identical Table 1 renders — the reproducibility guarantee the
// simulator exists to provide.
func TestStudyDeterministic(t *testing.T) {
	render := func() string {
		s := testStudy(t, 0.15)
		r := s.RunResponsiveness()
		var sb strings.Builder
		r.Render(&sb)
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Error("identically-seeded studies diverge")
	}
}

// TestStudyOriginIsCleanMLab: the plain-ping origin must be an M-Lab VP
// without a source-proximate policer.
func TestStudyOriginIsCleanMLab(t *testing.T) {
	s := testStudy(t, 0.3)
	if s.Origin == nil {
		t.Fatal("no origin")
	}
	for _, vp := range s.Topo.VPs {
		if vp.Name == s.Origin.Name {
			if vp.Kind != topology.MLab || vp.SourceRateLimited {
				t.Errorf("origin %s kind=%v limited=%v", vp.Name, vp.Kind, vp.SourceRateLimited)
			}
			return
		}
	}
	t.Error("origin not found among VPs")
}

// TestSeedStability: headline ratios stay within a band across seeds —
// the calibration is a property of the model, not of one lucky draw.
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep in -short mode")
	}
	for _, seed := range []uint64{1, 20170924, 777} {
		cfg := topology.DefaultConfig(topology.Epoch2016).Scale(0.3)
		cfg.Seed = seed
		s, err := New(cfg, Options{Rate: 200, ShuffleSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		r := s.RunResponsiveness()
		if ratio := r.RRRatioByIP(); ratio < 0.55 || ratio > 0.95 {
			t.Errorf("seed %d: by-IP ratio %.2f out of band", seed, ratio)
		}
		if byAS := r.RRRatioByAS(); byAS < r.RRRatioByIP() {
			t.Errorf("seed %d: by-AS ratio %.2f below by-IP %.2f", seed, byAS, r.RRRatioByIP())
		}
	}
}

func TestVPResponseDistFigure(t *testing.T) {
	s := testStudy(t, 0.15)
	r := s.RunResponsiveness()
	fig := r.VPResponseDist().Figure()
	var sb strings.Builder
	fig.Render(&sb)
	if !strings.Contains(sb.String(), "destinations") {
		t.Error("figure render incomplete")
	}
}
