package study

import (
	"bytes"
	"testing"

	"recordroute/internal/netsim"
	"recordroute/internal/topology"
)

func chaosTestConfig() topology.Config {
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(0.2)
	cfg.Seed = 5
	return cfg
}

// TestChaosRetriesRecoverLostReachability is the experiment's core
// claim: at >= 10% link loss, single-shot probing loses RR-reachable
// classifications that retries plus the §3.3 rescue pipeline win back —
// a majority of them.
func TestChaosRetriesRecoverLostReachability(t *testing.T) {
	cfg := chaosTestConfig()
	levels := []ChaosLevel{
		{"loss-10", netsim.FaultConfig{LossProb: 0.10, LossFrac: 0.25}},
	}
	c, err := RunChaos(cfg, Options{Rate: 200, ShuffleSeed: 7}, levels)
	if err != nil {
		t.Fatal(err)
	}
	if c.Baseline.RRReachable == 0 {
		t.Fatal("baseline has no RR-reachable destinations")
	}
	st := c.Steps[0]
	if st.Faults.LossyLinks == 0 {
		t.Fatalf("no lossy links installed: %v", st.Faults)
	}
	if st.Lost == 0 {
		t.Fatalf("10%% link loss lost no RR-reachable classifications (baseline %d)",
			c.Baseline.RRReachable)
	}
	if 2*st.Recovered <= st.Lost {
		t.Errorf("retries recovered %d of %d lost classifications, want a majority",
			st.Recovered, st.Lost)
	}
	if st.Retry.RRReachable <= st.NoRetry.RRReachable {
		t.Errorf("retry arm RR-reachable %d not above single-shot %d",
			st.Retry.RRReachable, st.NoRetry.RRReachable)
	}
}

// TestChaosSweepDeterministic pins the acceptance bar for the CLI:
// the same seed renders a byte-identical chaos report on every run.
func TestChaosSweepDeterministic(t *testing.T) {
	levels := []ChaosLevel{
		{"storm", netsim.FaultConfig{LossProb: 0.10, LossFrac: 0.25, FlapFrac: 0.2,
			OutageFrac: 0.1, SuppressFrac: 0.2, WithdrawFrac: 0.2}},
	}
	run := func() []byte {
		c, err := RunChaos(chaosTestConfig(), Options{Rate: 200, ShuffleSeed: 7, Retries: 1}, levels)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		c.Render(&buf)
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("chaos report not reproducible:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestChaosShardEquivalence extends the DESIGN.md §6 determinism
// contract to fault-enabled workloads: with a fault plan installed and
// retries on, the rendered study output must be byte-identical between
// the single shared engine and a three-shard fleet. Content-keyed
// chaos draws are what make this hold — each packet's fate depends on
// the packet, not on unrelated traffic sharing an RNG stream.
func TestChaosShardEquivalence(t *testing.T) {
	cfg := chaosTestConfig()
	cfg.Faults = &netsim.FaultConfig{Seed: cfg.Seed, LossProb: 0.10, LossFrac: 0.25,
		FlapFrac: 0.2, OutageFrac: 0.1, SuppressFrac: 0.2, WithdrawFrac: 0.2}
	opts := Options{Rate: 200, ShuffleSeed: 7, Retries: 2, Adaptive: true}

	render := func(shards int) []byte {
		opts := opts
		opts.Shards = shards
		s, err := New(cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		r := s.RunResponsiveness()
		re := s.RunReachability(r)
		var buf bytes.Buffer
		r.Render(&buf)
		re.Render(&buf)
		return buf.Bytes()
	}
	seq, par := render(1), render(3)
	if !bytes.Equal(seq, par) {
		t.Errorf("faulted study render differs between 1 and 3 shards:\n--- sequential ---\n%s\n--- sharded ---\n%s", seq, par)
	}
}
