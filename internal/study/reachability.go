package study

import (
	"fmt"
	"io"
	"net/netip"
	"sort"

	"recordroute/internal/alias"
	"recordroute/internal/analysis"
	"recordroute/internal/probe"
	"recordroute/internal/topology"
)

// Reachability is the §3.3 / Figure 1 experiment: how many
// RR-responsive destinations sit within the nine-hop limit, by VP
// subset, plus the alias and ping-RRudp reclassifications.
type Reachability struct {
	// RRResponsive is the analyzed population.
	RRResponsive []netip.Addr
	// Stats are the (possibly reclassified) per-destination stats.
	Stats map[netip.Addr]*analysis.RRDestStat

	// Figure1 holds the closest-VP hop CDF lines.
	Figure1 *analysis.Figure
	// Greedy is the M-Lab site-selection sequence.
	Greedy []analysis.GreedyStep

	// ReachableFrac is the §3.3 headline (0.66 published); Within8Frac
	// the reverse-path criterion (≈0.60 published).
	ReachableFrac, Within8Frac float64

	// AliasReclassified and RRUDPReclassified count the §3.3 recoveries
	// (5,637 and 4,358 published, of ~300k).
	AliasReclassified, RRUDPReclassified int
	// AliasSets holds the resolved alias sets.
	AliasSets *alias.Sets
}

// RunReachability executes the §3.3 analysis on top of responsiveness
// results, issuing the extra alias-resolution pings and ping-RRudp
// probes it needs.
func (s *Study) RunReachability(r *Responsiveness) *Reachability {
	re := &Reachability{
		RRResponsive: r.RRResponsive(),
		Stats:        r.Stats,
	}

	// Reclassification 1: alias resolution over each unreachable
	// destination and the addresses recorded in its own responses.
	re.AliasSets, re.AliasReclassified = s.resolveAliases(r)

	// Reclassification 2: ping-RRudp to destinations still unreachable.
	re.RRUDPReclassified = s.runRRUDP(r)

	// Headline fractions.
	reachable, within8 := 0, 0
	for _, d := range re.RRResponsive {
		st := re.Stats[d]
		if st.RRReachable() {
			reachable++
		}
		if st.WithinHops(8) {
			within8++
		}
	}
	re.ReachableFrac = frac(reachable, len(re.RRResponsive))
	re.Within8Frac = frac(within8, len(re.RRResponsive))

	re.Figure1 = s.buildFigure1(r)
	re.Greedy = analysis.GreedyCover(
		s.coverage(r, s.vpNamesOfKind(topology.MLab), 9), 10)
	return re
}

// resolveAliases runs MIDAR-style resolution for destinations that are
// RR-responsive but unreachable, pairing each with the addresses its own
// responses recorded, then applies the upgrades.
func (s *Study) resolveAliases(r *Responsiveness) (*alias.Sets, int) {
	// Index every RR response by destination once; the naive
	// per-destination scan over all VP results is quadratic.
	byDst := make(map[netip.Addr][]probe.Result)
	for _, vpRes := range r.PerVP {
		for _, res := range vpRes {
			if res.Type == probe.EchoReply && res.HasRR {
				byDst[res.Dst] = append(byDst[res.Dst], res)
			}
		}
	}
	candSet := make(map[netip.Addr]bool)
	pairSeen := make(map[[2]netip.Addr]bool)
	var pairs [][2]netip.Addr
	for _, d := range r.Dests {
		st := r.Stats[d]
		if st == nil || !st.RRResponsive() || st.RRReachable() {
			continue
		}
		for _, res := range byDst[d] {
			for _, hop := range res.RR {
				// Only same-origin-AS hops can be host aliases.
				if hop == d || s.Data.OriginASN(hop) != s.Data.OriginASN(d) {
					continue
				}
				pair := [2]netip.Addr{d, hop}
				if !pairSeen[pair] {
					pairSeen[pair] = true
					pairs = append(pairs, pair)
					candSet[d], candSet[hop] = true, true
				}
			}
		}
	}
	if len(pairs) == 0 {
		return alias.NewSets(), 0
	}
	cands := make([]netip.Addr, 0, len(candSet))
	for a := range candSet {
		cands = append(cands, a)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Less(cands[j]) })

	fleet := s.Fleet()
	// Candidate probing fans across a sharded fleet's replicas; grouping
	// by origin AS keeps both halves of every candidate pair — always
	// same-AS by the filter above — sampling one replica's IP-ID
	// counters, so the pairwise MIDAR comparisons stay meaningful.
	groups := make([]int, len(cands))
	for i, a := range cands {
		groups[i] = s.Data.OriginASN(a)
	}
	rs := fleet.PingSeriesVP(s.Origin.Name, cands, groups, 5, s.Opts.probeOpts())
	sets := alias.Resolve(alias.SeriesFrom(rs), pairs, alias.Config{})
	n := analysis.ApplyAliases(r.Stats, r.PerVP, sets.Canonical)
	return sets, n
}

// runRRUDP sends ping-RRudp from every VP to the destinations still
// classified unreachable and applies the §3.3 upgrade.
func (s *Study) runRRUDP(r *Responsiveness) int {
	var targets []netip.Addr
	for _, d := range r.Dests {
		st := r.Stats[d]
		if st != nil && st.RRResponsive() && !st.RRReachable() {
			targets = append(targets, d)
		}
	}
	if len(targets) == 0 {
		return 0
	}
	perVP := make(map[string][]netip.Addr, len(s.Camp.VPs))
	for _, vp := range s.Camp.VPs {
		perVP[vp.Name] = targets
	}
	results := s.Fleet().PingRRUDPAll(perVP, s.Opts.probeOpts())
	return analysis.ApplyRRUDP(r.Stats, results)
}

// coverage derives reachable-destination sets per VP, restricted to the
// named VPs and maxSlot.
func (s *Study) coverage(r *Responsiveness, names []string, maxSlot int) map[string]map[netip.Addr]bool {
	allowed := make(map[string]bool, len(names))
	for _, n := range names {
		allowed[n] = true
	}
	full := analysis.CoverageFromStats(r.Stats, maxSlot)
	out := make(map[string]map[netip.Addr]bool)
	for vp, set := range full {
		if allowed[vp] {
			out[vp] = set
		}
	}
	return out
}

// buildFigure1 assembles the closest-VP hop CDF for the paper's VP
// subsets: all M-Lab, the ten greedily best M-Lab sites, the single
// best M-Lab site, and all PlanetLab.
func (s *Study) buildFigure1(r *Responsiveness) *analysis.Figure {
	fig := &analysis.Figure{
		Title:  "Figure 1: RR hops from closest vantage point to RR-responsive destinations (CDF)",
		XLabel: "rr-hops",
		X:      analysis.IntRange(1, 9),
	}
	mlab := s.vpNamesOfKind(topology.MLab)
	plab := s.vpNamesOfKind(topology.PlanetLab)

	greedy := analysis.GreedyCover(s.coverage(r, mlab, 9), 10)
	var top10, top1 []string
	for i, step := range greedy {
		if i < 10 {
			top10 = append(top10, step.VP)
		}
		if i < 1 {
			top1 = append(top1, step.VP)
		}
	}

	population := len(r.RRResponsive())
	for _, line := range []struct {
		name string
		vps  []string
	}{
		{"all-mlab", mlab},
		{"10-mlab", top10},
		{"1-mlab", top1},
		{"all-planetlab", plab},
	} {
		fig.AddLine(line.name, s.closestVPCDF(r, line.vps, population))
	}
	return fig
}

// closestVPCDF returns, for x = 1..9, the fraction of RR-responsive
// destinations whose closest VP among the subset is within x hops.
func (s *Study) closestVPCDF(r *Responsiveness, vps []string, population int) []float64 {
	allowed := make(map[string]bool, len(vps))
	for _, v := range vps {
		allowed[v] = true
	}
	counts := make([]int, 10) // index = min slot, 1..9
	for _, d := range r.RRResponsive() {
		st := r.Stats[d]
		best := 0
		for vp, slot := range st.SlotsByVP {
			if !allowed[vp] || slot == 0 {
				continue
			}
			if best == 0 || slot < best {
				best = slot
			}
		}
		if best >= 1 && best <= 9 {
			counts[best]++
		}
	}
	out := make([]float64, 9)
	cum := 0
	for x := 1; x <= 9; x++ {
		cum += counts[x]
		out[x-1] = frac(cum, population)
	}
	return out
}

// Render prints the figure, the greedy steps, and the headline numbers.
func (re *Reachability) Render(w io.Writer) {
	fmt.Fprintln(w, "== §3.3 / Figure 1: are destinations within the 9 hop limit? ==")
	fmt.Fprintf(w, "RR-reachable fraction of RR-responsive: %.2f (paper: 0.66)\n", re.ReachableFrac)
	fmt.Fprintf(w, "within 8 hops (reverse-path criterion): %.2f (paper: ~0.60)\n", re.Within8Frac)
	fmt.Fprintf(w, "reclassified via alias resolution:      %d (paper: 5,637 of ~300k)\n", re.AliasReclassified)
	fmt.Fprintf(w, "reclassified via ping-RRudp:            %d (paper: 4,358 of ~300k)\n\n", re.RRUDPReclassified)
	re.Figure1.Render(w)
	fmt.Fprintln(w, "\ngreedy M-Lab site selection (paper: 73/82/86/91/95% at 1/2/3/5/10 sites):")
	reachTotal := 0
	for _, d := range re.RRResponsive {
		if re.Stats[d].RRReachable() {
			reachTotal++
		}
	}
	for i, step := range re.Greedy {
		fmt.Fprintf(w, "  %2d sites: %-12s +%-5d covered %5d/%d (%.0f%% of RR-reachable)\n",
			i+1, step.VP, step.NewlyCovered, step.TotalCovered, reachTotal,
			pct(step.TotalCovered, reachTotal))
	}
}
