package study

import (
	"recordroute/internal/measure"
	"recordroute/internal/obs"
)

// Observe attaches an observability configuration to every engine the
// study probes through: the shared topology network (origin pings,
// cloud probing, Figure 4's contention runs) and the sharding fleet's
// replicas, built or not — a lazily built replica inherits the
// observer at init. Attach before running experiments; attaching never
// changes what a run computes (see package obs).
func (s *Study) Observe(o *obs.Observer) {
	if !o.Active() {
		return
	}
	s.Camp.Observe(o)
	s.CloudCamp.Observe(o) // same shared net; wires the cloud probers
	if f := s.Fleet(); f != measure.Fleet(s.Camp) {
		f.Observe(o)
	}
}

// Metrics captures a labeled snapshot spanning the study's engines:
// "shared" for the topology network plus one "shardN" entry per fleet
// replica when the fleet is sharded. With one shard the fleet is the
// shared engine itself, so it is captured exactly once — which is what
// makes Merged totals comparable across shard counts: every simulated
// event lands in exactly one captured engine either way.
func (s *Study) Metrics(label string) *obs.Snapshot {
	shards := []obs.ShardMetrics{obs.Capture("shared", s.Topo.Net)}
	if pc, ok := s.fleet.(*measure.ParallelCampaign); ok {
		shards = append(shards, pc.Metrics(label).Shards...)
	}
	return obs.NewSnapshot(label, shards...)
}
