package study

import (
	"bytes"
	"testing"

	"recordroute/internal/topology"
)

func epochsLiveConfig() topology.Config {
	return topology.DefaultConfig(topology.Epoch2016).Scale(0.25)
}

// TestEpochsLiveShardInvariance extends the determinism contract
// (DESIGN.md §6) to the virtual-epoch cadence: the same 3-epoch
// churn series rendered at shard widths 1, 2, and 4 must come out
// byte-identical — churn is a pure function of (seed, epoch), never of
// execution interleaving.
func TestEpochsLiveShardInvariance(t *testing.T) {
	var renders [][]byte
	for _, shards := range []int{1, 2, 4} {
		el, err := RunEpochsLive(epochsLiveConfig(),
			Options{Rate: 200, ShuffleSeed: 7, Shards: shards}, 3)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var buf bytes.Buffer
		el.Render(&buf)
		renders = append(renders, buf.Bytes())
	}
	for i := 1; i < len(renders); i++ {
		if !bytes.Equal(renders[0], renders[i]) {
			t.Errorf("epochs-live render differs across shard widths:\n--- shards=1 ---\n%s--- other ---\n%s",
				renders[0], renders[i])
		}
	}
}

// TestEpochsLiveChurnMovesReachability: with the default churn plan,
// consecutive epochs must actually gain and lose destinations — and
// with churn disabled, they must not. The pair proves the per-epoch
// reachability differences come from the churn clock, not from any
// nondeterminism in the probing itself.
func TestEpochsLiveChurn(t *testing.T) {
	el, err := RunEpochsLive(epochsLiveConfig(), Options{Rate: 200, ShuffleSeed: 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if el.Faults.ChurnedPfxs == 0 {
		t.Fatal("default churn plan afflicted no prefixes")
	}
	moved := false
	for _, d := range el.Index.Diffs() {
		if len(d.Gained) > 0 || len(d.Lost) > 0 {
			moved = true
		}
		if d.Stable == 0 {
			t.Errorf("epoch %d->%d has no stable core; churn should be partial", d.From, d.To)
		}
	}
	if !moved {
		t.Error("3 epochs under churn show zero reachability movement")
	}

	// Churn off: every epoch sees the identical world; only the shuffle
	// seed differs, which must not change the reachable set.
	cfg := epochsLiveConfig()
	cfg.Faults = DefaultChurnFaults(cfg.Seed)
	cfg.Faults.ChurnProb = 0
	still, err := RunEpochsLive(cfg, Options{Rate: 200, ShuffleSeed: 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range still.Index.Diffs() {
		if len(d.Gained) != 0 || len(d.Lost) != 0 {
			t.Errorf("churn-free epochs %d->%d moved: +%d -%d", d.From, d.To, len(d.Gained), len(d.Lost))
		}
	}
}

// TestGoldenEpochsLive pins the epochs-live render byte-for-byte at
// the standard golden scale and seeds — the single-process twin of the
// daemon's schedule path, so a diff here means the scheduler's epoch
// derivation changed.
func TestGoldenEpochsLive(t *testing.T) {
	el, err := RunEpochsLive(epochsLiveConfig(), Options{Rate: 200, ShuffleSeed: 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	el.Render(&buf)
	compareGolden(t, "epochs_live", buf.Bytes())
}
