package study

import (
	"bytes"
	"fmt"
	"testing"

	"recordroute/internal/measure"
	"recordroute/internal/netsim"
	"recordroute/internal/topology"
)

// dtRun is one cell of the traceroute determinism property: the
// doubletree experiment run to completion on K shards.
type dtRun struct {
	result *DoubletreeResult
	render []byte
	errs   []string
}

// runDoubletreeSharded builds one study from identical config and runs
// the full two-arm experiment on K shards.
func runDoubletreeSharded(t *testing.T, seed uint64, fc *netsim.FaultConfig, shards int) dtRun {
	t.Helper()
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(0.15)
	cfg.Seed = seed
	cfg.Faults = fc
	s, err := New(cfg, Options{Rate: 200, ShuffleSeed: 7, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	run := dtRun{result: s.RunDoubletree(120, 3)}
	var buf bytes.Buffer
	run.result.Render(&buf)
	run.render = buf.Bytes()
	if pc, ok := s.Fleet().(*measure.ParallelCampaign); ok {
		for _, e := range pc.ShardErrors() {
			run.errs = append(run.errs, fmt.Sprint(e))
		}
	}
	return run
}

// TestTracerouteShardDeterminismProperty extends the shard-determinism
// contract (DESIGN.md §6, §14) to the doubletree engine: for every
// seed, with and without a fault plan, the experiment on K=2 and K=4
// shards must reproduce the K=1 run exactly — byte-identical render
// and a byte-identical final global stop set. The render folds in
// every per-wave budget and the merged set's codec bytes, so any
// divergence in probing decisions or delta merging surfaces here.
func TestTracerouteShardDeterminismProperty(t *testing.T) {
	seeds := []uint64{3, 11, 29}
	faults := []struct {
		name string
		fc   *netsim.FaultConfig
	}{
		{"no-faults", nil},
		{"fault-plan", &netsim.FaultConfig{LossProb: 0.05, LossFrac: 0.25,
			OutageFrac: 0.02, WithdrawFrac: 0.05}},
	}
	for _, seed := range seeds {
		for _, f := range faults {
			t.Run(fmt.Sprintf("seed%d/%s", seed, f.name), func(t *testing.T) {
				base := runDoubletreeSharded(t, seed, f.fc, 1)
				for _, k := range []int{2, 4} {
					got := runDoubletreeSharded(t, seed, f.fc, k)
					if len(got.errs) > 0 {
						t.Errorf("K=%d: shard errors: %v", k, got.errs)
					}
					if !bytes.Equal(got.render, base.render) {
						t.Errorf("K=%d: render differs from sequential:\n--- K=1 ---\n%s\n--- K=%d ---\n%s",
							k, base.render, k, got.render)
					}
					if !bytes.Equal(got.result.StopSetBytes, base.result.StopSetBytes) {
						t.Errorf("K=%d: final global stop set differs from sequential (%d vs %d bytes)",
							k, len(got.result.StopSetBytes), len(base.result.StopSetBytes))
					}
				}
			})
		}
	}
}

// TestDoubletreeCompletenessProperty is the paper's coverage claim:
// doubletree with stop sets discovers (essentially) the same interface
// set as exhaustive per-VP traceroute on the same seed, while spending
// under half the probes. Backward stops can hide interfaces on path
// tails that diverge below the stop — Doubletree's documented blind
// spot — so coverage is asserted at >= 97%, not equality. The medium
// profile adds only scale, so it is skipped in -short and -race runs.
func TestDoubletreeCompletenessProperty(t *testing.T) {
	cells := []struct {
		profile topology.ScaleProfile
		dests   int
		heavy   bool
	}{
		{topology.ScaleSmall, 400, false},
		{topology.ScaleMedium, 250, true},
	}
	for _, cell := range cells {
		t.Run(string(cell.profile), func(t *testing.T) {
			if cell.heavy && (testing.Short() || raceEnabled) {
				t.Skip("medium profile: skipped in -short/-race runs")
			}
			cfg := topology.DefaultConfig(topology.Epoch2016)
			cfg.Seed = 11
			s, err := New(cfg, Options{Rate: 200, ShuffleSeed: 7, Shards: 2, Scale: cell.profile})
			if err != nil {
				t.Fatal(err)
			}
			res := s.RunDoubletree(cell.dests, 4)
			if cov := res.Coverage(); cov < 0.97 {
				t.Errorf("interface coverage %.4f (%d/%d), want >= 0.97",
					cov, res.CommonIfaces, res.NaiveIfaces)
			}
			if saved := res.SavedFrac(); saved < 0.5 {
				t.Errorf("probe saving %.4f (%d vs %d probes), want >= 0.5",
					saved, res.DT.Probes, res.Naive.Probes)
			}
			if res.DT.GlobalStops == 0 {
				t.Error("global stop set never fired")
			}
			if res.DT.LocalStops == 0 {
				t.Error("local stop sets never fired")
			}
		})
	}
}
