// Package study reproduces every table and figure of "The Record Route
// Option is an Option!" (IMC 2017) against the simulated Internet:
//
//	Table 1   — ping vs ping-RR response rates, by IP and by AS type
//	Figure 1  — RR hops to the closest vantage point, by VP subset
//	§3.2      — per-destination VP response distribution
//	§3.3      — reachability, greedy site selection, alias and
//	            ping-RRudp reclassification
//	Figure 2  — 2011 vs 2016 reachability
//	§3.5      — traceroute/RR AS stamping audit
//	Figure 3  — cloud-provider hop distance
//	Figure 4  — per-VP response counts at 10 vs 100 pps
//	Figure 5  — response rate vs initial TTL
//
// Each experiment returns a result struct with a Render method that
// prints the same rows/series the paper reports.
package study

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/netip"
	"runtime"
	"time"

	"recordroute/internal/dataset"
	"recordroute/internal/measure"
	"recordroute/internal/probe"
	"recordroute/internal/topology"
)

// Options tunes a study run.
type Options struct {
	// Rate is the default probing rate per VP (pps); 0 means 20, the
	// paper's rate.
	Rate float64
	// Timeout is the per-probe timeout; 0 means 2s.
	Timeout time.Duration
	// ShuffleSeed drives per-VP destination-order randomization.
	ShuffleSeed uint64
	// Retries is the per-probe retransmission budget: each probe is
	// retransmitted up to Retries times with exponential backoff before
	// it is declared lost. 0 disables retries (the paper's single-shot
	// probing).
	Retries int
	// Adaptive turns on RTT-adaptive per-attempt timeouts (RFC
	// 6298-style EWMA, clamped to Timeout), so retransmissions fire as
	// soon as the path's own RTT history says the attempt is lost.
	Adaptive bool
	// Shards selects the campaign executor for the experiments whose
	// results are invariant under VP sharding (responsiveness,
	// reachability, epoch comparison): 0 picks runtime.GOMAXPROCS
	// shards, 1 forces the single shared engine, >1 forces that many
	// shards. Rate-limiting experiments (Figure 4) ignore it — they
	// measure cross-VP contention at shared policers and always run on
	// the single engine.
	Shards int
	// Scale replaces the roster/prefix/VP sizing of the passed Config
	// with a named profile's (topology.ProfileConfig) while keeping its
	// Seed, Epoch, and Faults. Empty means: use the Config as given.
	Scale topology.ScaleProfile
	// FaultEpoch pins the long-horizon churn clock
	// (netsim.SetFaultEpoch) for the whole run: epoch-churned prefixes
	// (FaultConfig.ChurnProb) are present or withdrawn as a pure
	// function of this value. Deliberately NOT part of the topology
	// config — the frozen route plane is epoch-invariant, so recurring
	// campaigns hit the same plane cache entry every epoch.
	FaultEpoch int
}

func (o Options) rate() float64 {
	if o.Rate <= 0 {
		return 20
	}
	return o.Rate
}

func (o Options) timeout() time.Duration {
	if o.Timeout <= 0 {
		return 2 * time.Second
	}
	return o.Timeout
}

func (o Options) probeOpts() probe.Options {
	return probe.Options{Rate: o.rate(), Timeout: o.timeout(), Retries: o.Retries, Adaptive: o.Adaptive}
}

func (o Options) shards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	return runtime.GOMAXPROCS(0)
}

// Study binds a built topology to its datasets and vantage points.
type Study struct {
	Topo *topology.Topology
	Data *dataset.Dataset
	Opts Options

	// Camp probes from the platform VPs (M-Lab + PlanetLab); CloudCamp
	// from the cloud measurement hosts.
	Camp      *measure.Campaign
	CloudCamp *measure.Campaign

	// Origin issues the plain-ping responsiveness probes, standing in
	// for the paper's single USC machine. It is the first M-Lab VP not
	// behind a source-proximate policer.
	Origin *measure.VantagePoint

	fleet   measure.Fleet
	journal *measure.Journal
	ctx     context.Context
}

// New builds the simulated Internet for cfg and wires up the campaign.
func New(cfg topology.Config, opts Options) (*Study, error) {
	if opts.Scale != "" {
		pcfg, err := topology.ProfileConfig(cfg.Epoch, opts.Scale)
		if err != nil {
			return nil, err
		}
		pcfg.Seed, pcfg.Faults = cfg.Seed, cfg.Faults
		cfg = pcfg
		opts.Scale = ""
	}
	topo, err := topology.Build(cfg)
	if err != nil {
		return nil, err
	}
	return NewFromTopology(topo, opts)
}

// NewFromTopology wires a study over an already-built topology — the
// campaign-service path, where a frozen-plane cache hands out one Build
// per distinct config and each job gets a clone. opts.Scale must be
// empty: a profile resizes the Config, which is impossible after the
// world is built.
func NewFromTopology(topo *topology.Topology, opts Options) (*Study, error) {
	if opts.Scale != "" {
		return nil, fmt.Errorf("study: scale profile %q must be resolved before the topology is built", opts.Scale)
	}
	s := &Study{
		Topo: topo,
		Data: dataset.FromTopology(topo),
		Opts: opts,
	}
	// The epoch is overlay state on this study's private network; shard
	// replicas cloned from it (Fleet) inherit the same epoch.
	topo.Net.SetFaultEpoch(opts.FaultEpoch)
	s.Camp = measure.NewCampaign(topo, topo.VPs)
	s.CloudCamp = measure.NewCampaign(topo, topo.CloudVPs)
	for _, vp := range topo.VPs {
		if vp.Kind == topology.MLab && !vp.SourceRateLimited {
			s.Origin = s.Camp.VP(vp.Name)
			break
		}
	}
	if s.Origin == nil {
		s.Origin = s.Camp.VPs[0]
	}
	return s, nil
}

// Fleet returns the campaign executor sharding-invariant experiments
// probe through: the shared-engine Campaign when Opts resolves to one
// shard, otherwise a lazily built ParallelCampaign whose replicas are
// cloned from this study's own topology snapshot — the Build New
// already paid is never repeated. A journaled study always gets a
// ParallelCampaign, even at one shard: the journal's quantized phases
// and per-VP skip live in that executor. Experiments that measure
// cross-VP contention (Figure 4) must keep using s.Camp directly — see
// measure.ParallelCampaign's determinism contract.
func (s *Study) Fleet() measure.Fleet {
	if s.fleet == nil {
		if k := s.Opts.shards(); k <= 1 && s.journal == nil {
			s.fleet = s.Camp
		} else {
			pc, err := measure.NewParallelCampaignFrom(s.Topo, k)
			if err != nil {
				panic(err) // k >= 1 here; NewParallelCampaignFrom rejects only k < 1
			}
			if s.journal != nil {
				pc.AttachJournal(s.journal)
			}
			pc.SetContext(s.ctx)
			s.fleet = pc
		}
	}
	return s.fleet
}

// SetContext arms cooperative cancellation on every campaign executor
// the study probes through: once ctx is done, the next deterministic
// boundary — a primitive start, or a per-VP checkpoint on a journaled
// fleet — aborts the campaign with a measure.Canceled panic the caller
// classifies via measure.CanceledFrom. The campaign-service daemon uses
// this for job deadlines and DELETE /jobs/{id}; aborting only at those
// boundaries keeps every journaled batch resume-safe (DESIGN.md §13).
func (s *Study) SetContext(ctx context.Context) {
	s.ctx = ctx
	s.Camp.SetContext(ctx)
	s.CloudCamp.SetContext(ctx)
	if pc, ok := s.fleet.(*measure.ParallelCampaign); ok {
		pc.SetContext(ctx)
	}
}

// AttachJournal makes the study's fleet journaled: completed per-VP
// batches stream to the JSONL journal at path as they finish, and —
// when resume is true and path holds a compatible journal — already
// completed batches are skipped, so a killed campaign picks up where it
// stopped and reproduces the uninterrupted run byte-identically mod
// ReplyIPID (DESIGN.md §11). The journal meta binds the topology digest
// and every RNG-relevant option, so resuming with a different world or
// different options is refused. Must be called before the first Fleet
// use; the returned journal is owned by the study (CloseJournal).
func (s *Study) AttachJournal(path string, resume bool) (*measure.Journal, error) {
	if s.fleet != nil {
		return nil, fmt.Errorf("study: AttachJournal after the fleet is already built")
	}
	meta := measure.JournalMeta{
		Digest:      s.Topo.Cfg.Digest(),
		Shards:      s.Opts.shards(),
		Quantum:     measure.DefaultQuantum,
		Rate:        s.Opts.rate(),
		Timeout:     s.Opts.timeout(),
		ShuffleSeed: s.Opts.ShuffleSeed,
		Retries:     s.Opts.Retries,
		Adaptive:    s.Opts.Adaptive,
		FaultEpoch:  s.Opts.FaultEpoch,
	}
	var (
		j   *measure.Journal
		err error
	)
	if resume {
		j, err = measure.ResumeJournal(path, meta)
	} else {
		j, err = measure.CreateJournal(path, meta)
	}
	if err != nil {
		return nil, err
	}
	s.journal = j
	return j, nil
}

// CloseJournal flushes and closes the attached journal, if any.
func (s *Study) CloseJournal() error {
	if s.journal == nil {
		return nil
	}
	return s.journal.Close()
}

// EpochSeed derives the per-epoch shuffle seed of a recurring campaign
// from its base seed: a splitmix-style hash of (base, epoch), so each
// epoch probes in a fresh deterministic order while epoch 0 of two
// schedules with different bases never collide. The topology seed is
// deliberately not derived per epoch — the route plane (and its digest,
// hence the service's plane-cache key) must stay constant across epochs
// so repeat epochs land on an already-built plane.
func EpochSeed(base uint64, epoch int) uint64 {
	h := base + uint64(epoch)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// MustNew is New for known-good configurations.
func MustNew(cfg topology.Config, opts Options) *Study {
	s, err := New(cfg, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Shuffler returns a deterministic per-VP destination permutation,
// mirroring the paper's randomized probing order (§4.1).
func (s *Study) Shuffler() func(vp string, dests []netip.Addr) []netip.Addr {
	return func(vp string, dests []netip.Addr) []netip.Addr {
		var h uint64 = 14695981039346656037
		for i := 0; i < len(vp); i++ {
			h ^= uint64(vp[i])
			h *= 1099511628211
		}
		rng := rand.New(rand.NewPCG(s.Opts.ShuffleSeed^h, h))
		out := append([]netip.Addr(nil), dests...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
}

// vpNamesOfKind lists platform VP names of one kind.
func (s *Study) vpNamesOfKind(kind topology.VPKind) []string {
	var out []string
	for _, vp := range s.Topo.VPs {
		if vp.Kind == kind {
			out = append(out, vp.Name)
		}
	}
	return out
}

// pct returns 100*num/den, or 0.
func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// frac returns num/den, or 0.
func frac(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
