package study

import (
	"fmt"
	"io"

	"recordroute/internal/analysis"
	"recordroute/internal/topology"
)

// EpochComparison is the §3.4 / Figure 2 experiment: reachability from
// the 2011-era Internet and vantage points versus 2016, including the
// common-VP subset that isolates topology change from VP growth.
type EpochComparison struct {
	Figure2 *analysis.Figure
	// ReachableFrac2016/2011 are the all-VP headline fractions
	// (0.66 vs 0.12 published).
	ReachableFrac2016, ReachableFrac2011 float64
	// CommonFrac are the same restricted to VPs present in both years.
	CommonFrac2016, CommonFrac2011 float64
}

// RunEpochComparison builds and measures both epochs. cfg2016 seeds the
// roster; the 2011 topology shares it but re-derives the peering and VP
// populations of that era.
func RunEpochComparison(cfg2016 topology.Config, opts Options) (*EpochComparison, error) {
	cfg2011 := topology.DefaultConfig(topology.Epoch2011)
	cfg2011.Seed = cfg2016.Seed
	// Carry any scaling of the roster over to the 2011 config.
	cfg2011.NumTier1 = cfg2016.NumTier1
	cfg2011.NumTransit = cfg2016.NumTransit
	cfg2011.NumAccess = cfg2016.NumAccess
	cfg2011.NumEnterprise = cfg2016.NumEnterprise
	cfg2011.NumContent = cfg2016.NumContent
	cfg2011.NumUnknown = cfg2016.NumUnknown
	scale := float64(cfg2016.NumMLab) / float64(topology.DefaultConfig(topology.Epoch2016).NumMLab)
	cfg2011.NumMLab = max(1, int(float64(cfg2011.NumMLab)*scale+0.5))
	cfg2011.NumPlanetLab = max(1, int(float64(cfg2011.NumPlanetLab)*scale+0.5))

	s16, err := New(cfg2016, opts)
	if err != nil {
		return nil, err
	}
	s11, err := New(cfg2011, opts)
	if err != nil {
		return nil, err
	}

	// The two epochs are independent simulations with independent
	// engines; measure them in parallel.
	var r16, r11 *Responsiveness
	done := make(chan struct{})
	go func() {
		r11 = s11.RunResponsiveness()
		close(done)
	}()
	r16 = s16.RunResponsiveness()
	<-done

	// Common VPs: names present in both years (the generator names VPs
	// stably per platform).
	names16 := make(map[string]bool)
	for _, vp := range s16.Topo.VPs {
		names16[vp.Name] = true
	}
	var common []string
	for _, vp := range s11.Topo.VPs {
		if names16[vp.Name] {
			common = append(common, vp.Name)
		}
	}

	ec := &EpochComparison{
		Figure2: &analysis.Figure{
			Title:  "Figure 2: RR hops from closest VP, 2011 vs 2016 (CDF over RR-responsive destinations)",
			XLabel: "rr-hops",
			X:      analysis.IntRange(1, 9),
		},
	}
	allNames := func(s *Study) []string {
		var out []string
		for _, vp := range s.Topo.VPs {
			out = append(out, vp.Name)
		}
		return out
	}
	pop16 := len(r16.RRResponsive())
	pop11 := len(r11.RRResponsive())
	ec.Figure2.AddLine("2016-all-vps", s16.closestVPCDF(r16, allNames(s16), pop16))
	ec.Figure2.AddLine("2016-common-vps", s16.closestVPCDF(r16, common, pop16))
	ec.Figure2.AddLine("2011-all-vps", s11.closestVPCDF(r11, allNames(s11), pop11))
	ec.Figure2.AddLine("2011-common-vps", s11.closestVPCDF(r11, common, pop11))

	last := len(ec.Figure2.X) - 1
	ec.ReachableFrac2016 = ec.Figure2.Lines[0].Y[last]
	ec.CommonFrac2016 = ec.Figure2.Lines[1].Y[last]
	ec.ReachableFrac2011 = ec.Figure2.Lines[2].Y[last]
	ec.CommonFrac2011 = ec.Figure2.Lines[3].Y[last]
	return ec, nil
}

// Render prints the figure and headline fractions.
func (ec *EpochComparison) Render(w io.Writer) {
	fmt.Fprintln(w, "== §3.4 / Figure 2: has reachability changed over time? ==")
	ec.Figure2.Render(w)
	fmt.Fprintf(w, "\nRR-reachable fraction, all VPs: 2016 %.2f vs 2011 %.2f (paper: 0.66 vs 0.12)\n",
		ec.ReachableFrac2016, ec.ReachableFrac2011)
	fmt.Fprintf(w, "RR-reachable fraction, common VPs: 2016 %.2f vs 2011 %.2f (same direction expected)\n",
		ec.CommonFrac2016, ec.CommonFrac2011)
}
