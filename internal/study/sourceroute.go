package study

import (
	"fmt"
	"io"
	"net/netip"

	"recordroute/internal/probe"
)

// SourceRouteResult is the historical-contrast experiment: the 2005
// "IP options are not an option" report found loose source routing
// unusable; this paper found Record Route workable. Both primitives are
// measured against the same destinations from the same vantage points.
type SourceRouteResult struct {
	// Probed counts (VP, destination) pairs attempted with each kind.
	Probed int
	// RRResponses and LSRRResponses count echo replies per kind.
	RRResponses, LSRRResponses int
}

// RRRate and LSRRRate are the per-kind response rates.
func (s *SourceRouteResult) RRRate() float64   { return frac(s.RRResponses, s.Probed) }
func (s *SourceRouteResult) LSRRRate() float64 { return frac(s.LSRRResponses, s.Probed) }

// RunSourceRouteCheck probes up to perVPCap of each VP's RR-responsive
// destinations twice: once with ping-RR and once loose-source-routed
// through the first router its ping-RR recorded.
func (s *Study) RunSourceRouteCheck(r *Responsiveness, perVPCap int) *SourceRouteResult {
	if perVPCap <= 0 {
		perVPCap = 100
	}
	res := &SourceRouteResult{}

	// Choose per-VP targets with a known first hop from that VP.
	type target struct {
		dst, via netip.Addr
	}
	perVP := make(map[string][]target)
	for vp, results := range r.PerVP {
		var mine []target
		for _, pr := range results {
			if pr.Type != probe.EchoReply || !pr.HasRR || len(pr.RR) == 0 {
				continue
			}
			mine = append(mine, target{dst: pr.Dst, via: pr.RR[0]})
			if len(mine) == perVPCap {
				break
			}
		}
		perVP[vp] = mine
	}

	for _, vp := range s.Camp.VPs {
		vp := vp
		targets := perVP[vp.Name]
		if len(targets) == 0 {
			continue
		}
		rrSpecs := make([]probe.Spec, len(targets))
		lsrrSpecs := make([]probe.Spec, len(targets))
		for i, t := range targets {
			rrSpecs[i] = probe.Spec{Dst: t.dst, Kind: probe.PingRR}
			lsrrSpecs[i] = probe.Spec{Dst: t.dst, Kind: probe.PingLSRR, Via: []netip.Addr{t.via}}
		}
		res.Probed += len(targets)
		count := func(rs []probe.Result, into *int) {
			for _, pr := range rs {
				if pr.Type == probe.EchoReply {
					*into++
				}
			}
		}
		vp.Prober.StartBatch(rrSpecs, s.Opts.probeOpts(), func(rs []probe.Result) { count(rs, &res.RRResponses) })
		vp.Prober.StartBatch(lsrrSpecs, s.Opts.probeOpts(), func(rs []probe.Result) { count(rs, &res.LSRRResponses) })
	}
	s.Camp.Eng.Run()
	return res
}

// Render prints the contrast.
func (sr *SourceRouteResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== historical contrast: is source routing an option? (2005 report vs this paper) ==")
	fmt.Fprintf(w, "probed %d (VP, destination) pairs with both primitives\n", sr.Probed)
	fmt.Fprintf(w, "  ping-RR response rate:   %.0f%%\n", 100*sr.RRRate())
	fmt.Fprintf(w, "  ping-LSRR response rate: %.0f%% (source routing is refused nearly everywhere)\n",
		100*sr.LSRRRate())
}
