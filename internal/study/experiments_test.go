package study

import (
	"os"
	"testing"

	"recordroute/internal/topology"
)

func TestEpochComparisonShape(t *testing.T) {
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(0.3)
	ec, err := RunEpochComparison(cfg, Options{Rate: 200, ShuffleSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ec.Render(os.Stderr)
	if ec.ReachableFrac2016 <= ec.ReachableFrac2011 {
		t.Errorf("2016 reachability %.2f not above 2011 %.2f",
			ec.ReachableFrac2016, ec.ReachableFrac2011)
	}
	if ec.CommonFrac2016 <= ec.CommonFrac2011 {
		t.Errorf("common-VP 2016 %.2f not above 2011 %.2f (topology change must show through)",
			ec.CommonFrac2016, ec.CommonFrac2011)
	}
	if ec.ReachableFrac2011 > 0.5 {
		t.Errorf("2011 reachability %.2f too high, want sparse-peering era ~0.12", ec.ReachableFrac2011)
	}
}

func TestStampAuditShape(t *testing.T) {
	s := testStudy(t, 0.3)
	r := s.RunResponsiveness()
	sa := s.RunStampAudit(r, 50)
	sa.Render(os.Stderr)

	if sa.PairsCompared == 0 {
		t.Fatal("no traceroute/RR pairs compared")
	}
	total := len(sa.Audit.PerAS)
	if total == 0 {
		t.Fatal("no ASes audited")
	}
	// The vast majority must always stamp; never-stampers are needles.
	if frac(len(sa.Audit.Always), total) < 0.8 {
		t.Errorf("always-stamp fraction %.2f, want > 0.8 (paper: 7040/7185)", frac(len(sa.Audit.Always), total))
	}
	if len(sa.Audit.Never) > total/5 {
		t.Errorf("never-stamp count %d of %d, want a handful", len(sa.Audit.Never), total)
	}
	// Ground truth: every configured AS-wide no-stamp transit AS that was
	// observed must be classified Never.
	neverSet := make(map[int]bool)
	for _, asn := range sa.Audit.Never {
		neverSet[asn] = true
	}
	for _, as := range s.Topo.ASes {
		if as.NoStamp {
			if _, observed := sa.Audit.PerAS[as.ASN]; observed && !neverSet[as.ASN] {
				t.Errorf("ground-truth no-stamp AS %d not in Never set", as.ASN)
			}
		}
	}
}

func TestCloudDistanceShape(t *testing.T) {
	s := testStudy(t, 0.3)
	r := s.RunResponsiveness()
	cr := s.RunCloudDistance(r, 150)
	cr.Render(os.Stderr)

	if len(cr.Within8) == 0 {
		t.Fatal("no clouds measured")
	}
	// Clouds peer almost everywhere in 2016: their median distance to
	// the RR-reachable set must not exceed M-Lab's.
	for cloud, med := range cr.CloudMedian {
		if med > cr.MLabMedian+1 {
			t.Errorf("%s median %.0f hops exceeds M-Lab %.0f", cloud, med, cr.MLabMedian)
		}
	}
	for cloud, f := range cr.Within8 {
		if f < 0.1 {
			t.Errorf("%s reaches only %.0f%% of RR-responsive within 8 hops", cloud, 100*f)
		}
	}
}

func TestRateLimitShape(t *testing.T) {
	s := testStudy(t, 0.3)
	r := s.RunResponsiveness()
	rl := s.RunRateLimit(r, 300)
	rl.Render(os.Stderr)

	limited := make(map[string]bool)
	for _, vp := range s.Topo.VPs {
		if vp.SourceRateLimited {
			limited[vp.Name] = true
		}
	}
	if len(limited) == 0 {
		t.Skip("no source-rate-limited VPs at this scale")
	}
	drastic := make(map[string]bool)
	for _, vp := range rl.DrasticDrop {
		drastic[vp] = true
	}
	for vp := range limited {
		if !drastic[vp] {
			t.Errorf("source-limited VP %s did not show a drastic drop", vp)
		}
	}
	// Beyond the configured limiters, drastic drops may only come from
	// organic policers on a VP's first-hop path (an emergent effect the
	// paper also saw); they must stay a small minority.
	if len(rl.DrasticDrop) > len(limited)+3 {
		t.Errorf("%d drastic-drop VPs for %d configured limiters", len(rl.DrasticDrop), len(limited))
	}
	// The majority of VPs must be essentially unaffected by rate.
	unaffected := 0
	for _, v := range rl.PerVP {
		if v.At10 > 0 && v.DropFrac() <= 0.05 {
			unaffected++
		}
	}
	if unaffected < len(rl.PerVP)/2 {
		t.Errorf("only %d of %d VPs unaffected at 100pps", unaffected, len(rl.PerVP))
	}
}

func TestTTLStudyShape(t *testing.T) {
	s := testStudy(t, 0.3)
	r := s.RunResponsiveness()
	tr := s.RunTTLStudy(r, 150)
	tr.Render(os.Stderr)

	// At TTL 64 everyone responds; below TTL 8 reachable response rate
	// must fall under one half (paper: "less than half"); at the 10-12
	// sweet spot reachable mostly respond while unreachable mostly don't.
	if tr.ReachableRate[64] < 0.95 || tr.UnreachableRate[64] < 0.95 {
		t.Errorf("TTL 64 rates %.2f/%.2f, want ~1", tr.ReachableRate[64], tr.UnreachableRate[64])
	}
	if tr.ReachableRate[4] > 0.5 {
		t.Errorf("TTL 4 reachable rate %.2f, want < 0.5", tr.ReachableRate[4])
	}
	if tr.ReachableRate[12] < tr.UnreachableRate[12] {
		t.Errorf("at TTL 12 reachable (%.2f) should lead unreachable (%.2f)",
			tr.ReachableRate[12], tr.UnreachableRate[12])
	}
	// Monotone non-decreasing in TTL (within sampling noise) for the
	// unreachable population at the decision boundary.
	if tr.UnreachableRate[20] < tr.UnreachableRate[10] {
		t.Errorf("unreachable response rate fell with TTL: %.2f@10 vs %.2f@20",
			tr.UnreachableRate[10], tr.UnreachableRate[20])
	}
}

func TestAtlasExperimentShape(t *testing.T) {
	s := testStudy(t, 0.3)
	r := s.RunResponsiveness()
	ar := s.RunAtlas(r, 100)
	ar.Render(os.Stderr)
	if ar.Stats.Interfaces == 0 || ar.Stats.Both == 0 {
		t.Fatalf("degenerate atlas: %+v", ar.Stats)
	}
	if ar.Stats.RRReverse == 0 {
		t.Error("no reverse-path interfaces in atlas")
	}
	if ar.AnonymousLeaked != 0 {
		t.Errorf("%d TTL-invisible routers leaked into traceroute", ar.AnonymousLeaked)
	}
	// RR must contribute interfaces traceroute missed and vice versa.
	if ar.Stats.RROnly == 0 || ar.Stats.TracerouteOnly == 0 {
		t.Errorf("complementarity absent: %+v", ar.Stats)
	}
}

func TestSourceRouteContrast(t *testing.T) {
	s := testStudy(t, 0.3)
	r := s.RunResponsiveness()
	sr := s.RunSourceRouteCheck(r, 40)
	sr.Render(os.Stderr)
	if sr.Probed == 0 {
		t.Fatal("nothing probed")
	}
	if sr.RRRate() < 0.7 {
		t.Errorf("ping-RR rate %.2f on known-responsive targets, want high", sr.RRRate())
	}
	if sr.LSRRRate() > 0.05 {
		t.Errorf("LSRR rate %.2f, want near zero on a modern topology", sr.LSRRRate())
	}
}
