package study

import (
	"fmt"
	"io"
	"net/netip"

	"recordroute/internal/atlas"
	"recordroute/internal/measure"
	"recordroute/internal/topology"
)

// AtlasResult is the §2 complementarity experiment: merge every ping-RR
// result with traceroutes and count what each primitive uniquely
// uncovered.
type AtlasResult struct {
	Stats atlas.Stats
	// AnonymousRROnly counts ground-truth TTL-invisible routers that RR
	// observed (traceroute cannot see them); AnonymousLeaked counts any
	// that traceroute somehow reported — always zero in a correct
	// simulation.
	AnonymousRROnly, AnonymousLeaked int
	// TracerouteDests is how many destinations were traced.
	TracerouteDests int
}

// RunAtlas merges the responsiveness study's RR results with fresh
// traceroutes (up to perVPCap destinations per M-Lab VP) into a
// topology atlas.
func (s *Study) RunAtlas(r *Responsiveness, perVPCap int) *AtlasResult {
	if perVPCap <= 0 {
		perVPCap = 200
	}
	at := atlas.New(nil)
	for _, rs := range r.PerVP {
		for _, res := range rs {
			at.AddRR(res)
		}
	}

	perVP := make(map[string][]netip.Addr)
	traced := 0
	for _, name := range s.vpNamesOfKind(topology.MLab) {
		var mine []netip.Addr
		for _, d := range r.Dests {
			st := r.Stats[d]
			if st == nil {
				continue
			}
			if _, responded := st.SlotsByVP[name]; responded {
				mine = append(mine, d)
			}
			if len(mine) == perVPCap {
				break
			}
		}
		perVP[name] = mine
		traced += len(mine)
	}
	traces := s.Camp.TracerouteAll(perVP, measure.TraceOptions{
		StartRate: s.Opts.rate(), Timeout: s.Opts.timeout(),
	})
	for _, ts := range traces {
		for _, tr := range ts {
			at.AddTraceroute(tr)
		}
	}

	res := &AtlasResult{Stats: at.Stats(), TracerouteDests: traced}
	for _, info := range at.Interfaces() {
		router := s.Topo.RouterByAddr(info.Addr)
		if router == nil || !router.Behavior().NoTTLDecrement {
			continue
		}
		if info.Sources.Has(atlas.FromTraceroute) {
			res.AnonymousLeaked++
		} else {
			res.AnonymousRROnly++
		}
	}
	return res
}

// Render prints the atlas summary.
func (ar *AtlasResult) Render(w io.Writer) {
	ar.Stats.Render(w)
	fmt.Fprintf(w, "TTL-invisible routers uncovered by RR alone: %d (leaked to traceroute: %d)\n",
		ar.AnonymousRROnly, ar.AnonymousLeaked)
	fmt.Fprintf(w, "traceroute targets merged: %d\n", ar.TracerouteDests)
}
