package study

import (
	"fmt"
	"io"
	"net/netip"

	"recordroute/internal/netsim"
	"recordroute/internal/obs"
	"recordroute/internal/topology"
)

// ChaosLevel is one step of the fault-intensity sweep: a label and the
// fault plan to install. A zero Faults.Seed inherits the topology seed.
type ChaosLevel struct {
	Label  string
	Faults netsim.FaultConfig
}

// DefaultChaosLevels is the standard loss/outage sweep: rising link
// loss, then outages and the full storm (flaps, ICMP suppression,
// transient withdrawals) on top.
func DefaultChaosLevels(seed uint64) []ChaosLevel {
	return []ChaosLevel{
		{"loss-2", netsim.FaultConfig{Seed: seed, LossProb: 0.02, LossFrac: 0.25}},
		{"loss-10", netsim.FaultConfig{Seed: seed, LossProb: 0.10, LossFrac: 0.25}},
		{"loss+outage", netsim.FaultConfig{Seed: seed, LossProb: 0.10, LossFrac: 0.25,
			OutageFrac: 0.05}},
		{"full-storm", netsim.FaultConfig{Seed: seed, LossProb: 0.10, LossFrac: 0.25,
			OutageFrac: 0.05, FlapFrac: 0.05, SuppressFrac: 0.10, WithdrawFrac: 0.10}},
	}
}

// ChaosArm holds one measurement arm's headline counts.
type ChaosArm struct {
	// PingResponsive counts destinations answering the origin's plain
	// pings; RRResponsive those answering some VP's ping-RR;
	// RRReachable the RR-responsive ones stamped within the nine-hop
	// limit.
	PingResponsive, RRResponsive, RRReachable int
}

// ChaosStep is one sweep level: the installed faults, the single-shot
// degradation arm, the retry recovery arm, and the recovery accounting
// against the fault-free baseline.
type ChaosStep struct {
	Label string
	// Faults summarizes what the plan installed at this level.
	Faults netsim.FaultSummary
	// NoRetry is the degradation arm: single-shot probing, RR-reachable
	// read straight off the ping-RR stats (no rescue pipeline). Retry
	// is the recovery arm: retransmissions with adaptive timeouts plus
	// the §3.3 rescue (alias resolution and ping-RRudp).
	NoRetry, Retry ChaosArm
	// Lost counts baseline-RR-reachable destinations the degradation
	// arm no longer classifies reachable; Recovered how many of those
	// the recovery arm wins back.
	Lost, Recovered int
}

// RecoveredFrac is the recovered share of lost classifications.
func (s ChaosStep) RecoveredFrac() float64 { return frac(s.Recovered, s.Lost) }

// Chaos is the fault-injection experiment: how fragile are the paper's
// headline classifications under network weather, and how much of the
// damage do probe retries plus the §3.3 rescue pipeline undo?
type Chaos struct {
	// Baseline is the fault-free single-shot measurement.
	Baseline ChaosArm
	// Steps are the sweep levels in input order.
	Steps []ChaosStep
	// Retries is the recovery arm's retransmission budget.
	Retries int
	// Snapshots holds each arm's metrics capture, keyed "baseline",
	// "<label>/single-shot", and "<label>/retry". Every arm rebuilds
	// its Internet from the same config and seeds, so snapshots are as
	// reproducible as the arms themselves.
	Snapshots map[string]*obs.Snapshot
}

// chaosArm builds a fresh Internet from cfg with the given fault plan
// and measures it. retries == 0 is the degradation arm: single-shot
// responsiveness only. retries > 0 is the recovery arm: retransmission
// with adaptive timeouts plus the full §3.3 rescue pipeline, whose
// reclassifications land in the returned reachable set.
func chaosArm(cfg topology.Config, opts Options, fc *netsim.FaultConfig, retries int, armLabel string) (ChaosArm, map[netip.Addr]bool, netsim.FaultSummary, *obs.Snapshot, error) {
	cfg.Faults = fc
	opts.Retries = retries
	opts.Adaptive = retries > 0
	s, err := New(cfg, opts)
	if err != nil {
		return ChaosArm{}, nil, netsim.FaultSummary{}, nil, err
	}
	r := s.RunResponsiveness()
	if retries > 0 {
		s.RunReachability(r) // applies the alias and ping-RRudp upgrades to r.Stats
	}
	var arm ChaosArm
	reach := make(map[netip.Addr]bool)
	for _, d := range r.Dests {
		if r.PingResp[d] {
			arm.PingResponsive++
		}
		st := r.Stats[d]
		if st == nil || !st.RRResponsive() {
			continue
		}
		arm.RRResponsive++
		if st.RRReachable() {
			arm.RRReachable++
			reach[d] = true
		}
	}
	return arm, reach, s.Topo.Faults, s.Metrics(armLabel), nil
}

// RunChaos sweeps the fault levels (DefaultChaosLevels when nil),
// measuring each twice — single-shot and with retries — against a
// fault-free baseline. opts.Retries sets the recovery budget (default
// 2); every arm rebuilds the topology from cfg, so arms never observe
// each other's engine state and the whole sweep is a pure function of
// the seeds.
func RunChaos(cfg topology.Config, opts Options, levels []ChaosLevel) (*Chaos, error) {
	if levels == nil {
		levels = DefaultChaosLevels(cfg.Seed)
	}
	retries := opts.Retries
	if retries <= 0 {
		retries = 2
	}
	c := &Chaos{Retries: retries, Snapshots: make(map[string]*obs.Snapshot)}
	var err error
	var baseReach map[netip.Addr]bool
	if c.Baseline, baseReach, _, c.Snapshots["baseline"], err = chaosArm(cfg, opts, nil, 0, "baseline"); err != nil {
		return nil, err
	}
	for _, lv := range levels {
		fc := lv.Faults
		if fc.Seed == 0 {
			fc.Seed = cfg.Seed
		}
		step := ChaosStep{Label: lv.Label}
		var noReach, reReach map[netip.Addr]bool
		single, retry := lv.Label+"/single-shot", lv.Label+"/retry"
		if step.NoRetry, noReach, step.Faults, c.Snapshots[single], err = chaosArm(cfg, opts, &fc, 0, single); err != nil {
			return nil, err
		}
		if step.Retry, reReach, _, c.Snapshots[retry], err = chaosArm(cfg, opts, &fc, retries, retry); err != nil {
			return nil, err
		}
		for d := range baseReach {
			if noReach[d] {
				continue
			}
			step.Lost++
			if reReach[d] {
				step.Recovered++
			}
		}
		c.Steps = append(c.Steps, step)
	}
	return c, nil
}

// Render prints the sweep in the study's table style.
func (c *Chaos) Render(w io.Writer) {
	fmt.Fprintln(w, "== chaos: headline classifications under injected faults ==")
	fmt.Fprintf(w, "recovery arm: %d retries, adaptive timeouts, §3.3 rescue (alias + ping-RRudp)\n\n", c.Retries)
	fmt.Fprintf(w, "%-14s | %s | %s | %s\n", "",
		"single-shot  ping rr-resp rr-reach",
		fmt.Sprintf("%d-retry  ping rr-resp rr-reach", c.Retries),
		"lost recovered")
	row := func(label string, a ChaosArm) {
		fmt.Fprintf(w, "%-14s | %17d %7d %8d |", label, a.PingResponsive, a.RRResponsive, a.RRReachable)
	}
	row("none", c.Baseline)
	fmt.Fprintf(w, "%13s %7s %8s |\n", "", "", "")
	for _, st := range c.Steps {
		row(st.Label, st.NoRetry)
		fmt.Fprintf(w, "%13d %7d %8d | %4d %6d (%.0f%%)\n",
			st.Retry.PingResponsive, st.Retry.RRResponsive, st.Retry.RRReachable,
			st.Lost, st.Recovered, 100*st.RecoveredFrac())
	}
	fmt.Fprintln(w, "\ninstalled faults per level:")
	for _, st := range c.Steps {
		fmt.Fprintf(w, "  %-14s %s\n", st.Label, st.Faults)
	}
}
