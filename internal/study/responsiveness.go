package study

import (
	"fmt"
	"io"
	"net/netip"
	"sort"

	"recordroute/internal/analysis"
	"recordroute/internal/probe"
)

// Responsiveness is the Table 1 experiment (§3.1–§3.2): three plain
// pings per destination from the origin, one ping-RR per destination
// from every vantage point.
type Responsiveness struct {
	// Dests is the probed hitlist, in dataset order.
	Dests []netip.Addr
	// PingResp marks ping-responsive destinations.
	PingResp map[netip.Addr]bool
	// Stats aggregates ping-RR outcomes per destination.
	Stats map[netip.Addr]*analysis.RRDestStat
	// PerVP retains the raw per-VP ping-RR results for downstream
	// experiments (reachability, stamping audit).
	PerVP map[string][]probe.Result
	// Table is the rendered classification.
	Table *analysis.Table1
	// NumVPs is the vantage-point count used; FunctionalVPs counts VPs
	// that received at least one RR response (the paper's 141 VPs were
	// all functional; simulated ones behind options-filtering upstreams
	// are not, mirroring the VPs the paper excluded).
	NumVPs, FunctionalVPs int
}

// RunResponsiveness executes the Table 1 measurement.
func (s *Study) RunResponsiveness() *Responsiveness {
	r := &Responsiveness{
		Dests:  s.Data.Addrs(),
		PerVP:  make(map[string][]probe.Result),
		NumVPs: len(s.Camp.VPs),
	}

	// The experiment is sharding-invariant (each VP's probe stream is
	// independent), so it probes through the configured fleet executor.
	fleet := s.Fleet()

	// Phase 1: three plain pings per destination from the origin host
	// (the paper's USC machine). Routed through the fleet's single-VP
	// batch primitive: on a sharded executor the destination list fans
	// across the engine replicas in contiguous ranges (DESIGN.md §15).
	grouped := fleet.PingBatchVP(s.Origin.Name, r.Dests, 3, s.Opts.probeOpts())
	r.PingResp = analysis.PingResponsive(r.Dests, grouped)

	// Phase 2: one ping-RR per destination from every VP, each VP in
	// its own randomized order.
	perVP := fleet.PingRRAll(r.Dests, s.Opts.probeOpts(), s.Shuffler())
	r.PerVP = perVP
	r.Stats = analysis.AggregateRR(perVP)
	for _, rs := range perVP {
		for _, res := range rs {
			if res.Type == probe.EchoReply && res.HasRR {
				r.FunctionalVPs++
				break
			}
		}
	}

	rrResp := make(map[netip.Addr]bool, len(r.Stats))
	for a, st := range r.Stats {
		rrResp[a] = st.RRResponsive()
	}
	r.Table = analysis.BuildTable1(s.Data.DestInfos(), r.PingResp, rrResp)
	return r
}

// RRResponsive lists destinations classified RR-responsive, in dataset
// order.
func (r *Responsiveness) RRResponsive() []netip.Addr {
	var out []netip.Addr
	for _, d := range r.Dests {
		if st := r.Stats[d]; st != nil && st.RRResponsive() {
			out = append(out, d)
		}
	}
	return out
}

// RRRatioByIP returns the paper's headline by-IP ratio (0.75 published).
func (r *Responsiveness) RRRatioByIP() float64 {
	return r.Table.ByIP[analysis.TotalLabel].RRRatio()
}

// RRRatioByAS returns the by-AS ratio (0.82 published).
func (r *Responsiveness) RRRatioByAS() float64 {
	return r.Table.ByAS[analysis.TotalLabel].RRRatio()
}

// VPResponseDistribution is the §3.2 distribution: for each
// RR-responsive destination, the fraction of VPs whose ping-RR it
// answered. The paper reports ~80% of destinations answering >90 of
// 141 VPs (~64%).
type VPResponseDistribution struct {
	// FracAnswering[i] is the fraction of VPs destination i answered.
	Frac []float64
	// Above is the share of destinations answering more than the given
	// fraction of VPs.
	AboveTwoThirds float64
}

// Figure returns the distribution as a CDF over the fraction of
// functional VPs answered, sampled at deciles.
func (d *VPResponseDistribution) Figure() *analysis.Figure {
	fig := &analysis.Figure{
		Title:  "§3.2: fraction of VPs answered per RR-responsive destination (CDF)",
		XLabel: "frac-vps",
		X:      []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
	}
	fig.AddCDF("destinations", analysis.NewCDF(d.Frac))
	return fig
}

// VPResponseDist computes the §3.2 distribution from the stats.
func (r *Responsiveness) VPResponseDist() *VPResponseDistribution {
	d := &VPResponseDistribution{}
	above := 0
	total := 0
	for _, dst := range r.Dests {
		st := r.Stats[dst]
		if st == nil || !st.RRResponsive() {
			continue
		}
		total++
		f := frac(st.Responses, r.FunctionalVPs)
		d.Frac = append(d.Frac, f)
		if f > 2.0/3.0 {
			above++
		}
	}
	d.AboveTwoThirds = frac(above, total)
	return d
}

// Render prints Table 1 plus the headline ratios.
func (r *Responsiveness) Render(w io.Writer) {
	fmt.Fprintln(w, "== Table 1: response rates for pings with/without RR ==")
	r.Table.Render(w)
	fmt.Fprintf(w, "\nRR-responsive / ping-responsive by IP: %.2f (paper: 0.75)\n", r.RRRatioByIP())
	fmt.Fprintf(w, "RR-responsive / ping-responsive by AS: %.2f (paper: 0.82)\n", r.RRRatioByAS())
	dist := r.VPResponseDist()
	fmt.Fprintf(w, "destinations answering >2/3 of VPs:     %.2f (paper: ~0.80 answering >90/141)\n",
		dist.AboveTwoThirds)
	// Per-type ratios, the paper's "over 0.67 for every type" check.
	types := append([]string{analysis.TotalLabel}, r.Table.Types...)
	sort.Strings(types[1:])
	fmt.Fprintln(w, "\nper-type RR/ping ratios (paper: all > 0.67):")
	for _, typ := range types {
		fmt.Fprintf(w, "  %-16s %.2f\n", typ, r.Table.ByIP[typ].RRRatio())
	}
}
