package study

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net/netip"

	"recordroute/internal/analysis"
	"recordroute/internal/probe"
	"recordroute/internal/topology"
	"recordroute/internal/trace"
)

// RRvsTRPair is one (VP, destination) comparison of the two path
// views: the ping-RR stamps and an exhaustive traceroute.
type RRvsTRPair struct {
	VP  string
	Dst netip.Addr
	// RouterOverlap is the fraction of distinct RR stamps the
	// traceroute also saw (router-level containment).
	RouterOverlap float64
	// ASAgree is the AS-path agreement (longest-common-prefix
	// fraction) between the RR stamps and the traceroute hops over
	// the RR window; ASExact marks full agreement.
	ASAgree float64
	ASExact bool
}

// RRvsTRResult is the paper's RR-vs-traceroute comparison: how well
// the nine RR slots reproduce what TTL-limited probing sees, at
// router and AS granularity.
type RRvsTRResult struct {
	Pairs    int
	PerVPCap int

	RouterOverlap analysis.Description
	ASExactFrac   float64
	ASAgreeMean   float64

	Fig *analysis.Figure
}

// RunRRvsTR pairs each M-Lab VP's cached ping-RR results with fresh
// exhaustive traceroutes (stop sets disabled — path comparison wants
// the full hop sequence) of up to perVPCap RR-responsive destinations
// per VP, then scores router-level containment and AS-level path
// agreement. Traceroutes go through the study's fleet, so the render
// is byte-identical across shard counts.
func (s *Study) RunRRvsTR(r *Responsiveness, perVPCap int) *RRvsTRResult {
	if perVPCap <= 0 {
		perVPCap = 200
	}
	rng := rand.New(rand.NewPCG(s.Opts.ShuffleSeed^0x7274, 0x5254))

	// Index this VP's RR results by destination for pairing.
	rrByVPDst := make(map[string]map[netip.Addr]probe.Result)
	for vp, rs := range r.PerVP {
		m := make(map[netip.Addr]probe.Result)
		for _, res := range rs {
			m[res.Dst] = res
		}
		rrByVPDst[vp] = m
	}

	// Each M-Lab VP traces a random capped sample of the destinations
	// that stamped RR for it.
	perVP := make(map[string][]netip.Addr)
	for _, name := range s.vpNamesOfKind(topology.MLab) {
		var mine []netip.Addr
		for _, d := range r.Dests {
			st := r.Stats[d]
			if st == nil {
				continue
			}
			if slot, ok := st.SlotsByVP[name]; ok && slot > 0 {
				mine = append(mine, d)
			}
		}
		rng.Shuffle(len(mine), func(i, j int) { mine[i], mine[j] = mine[j], mine[i] })
		if len(mine) > perVPCap {
			mine = mine[:perVPCap]
		}
		perVP[name] = mine
	}

	sess := trace.NewSession(s.stopSetPrefixOf)
	rounds := s.Fleet().DoubletreeAll(perVP, sess,
		trace.Options{Timeout: s.Opts.timeout(), Exhaustive: true})

	res := &RRvsTRResult{PerVPCap: perVPCap}
	var pairs []RRvsTRPair
	for _, vp := range sortedVPNames(rounds) {
		for _, t := range rounds[vp].Traces {
			rrRes, ok := rrByVPDst[vp][t.Dst]
			if !ok || !rrRes.HasRR || len(rrRes.RR) == 0 {
				continue
			}
			trHops := t.HopAddrs() // exhaustive → ascending TTL order
			window := trHops
			if len(window) > len(rrRes.RR) {
				window = window[:len(rrRes.RR)]
			}
			asRR := analysis.ASPath(rrRes.RR, s.Topo.ASNOf)
			asTR := analysis.ASPath(window, s.Topo.ASNOf)
			agree := analysis.PathAgreement(asRR, asTR)
			pairs = append(pairs, RRvsTRPair{
				VP: vp, Dst: t.Dst,
				RouterOverlap: analysis.OverlapFrac(rrRes.RR, trHops),
				ASAgree:       agree,
				ASExact:       agree == 1,
			})
		}
	}

	res.Pairs = len(pairs)
	overlaps := make([]float64, len(pairs))
	exact := 0
	agreeSum := 0.0
	for i, p := range pairs {
		overlaps[i] = p.RouterOverlap
		agreeSum += p.ASAgree
		if p.ASExact {
			exact++
		}
	}
	res.RouterOverlap = analysis.Describe(overlaps)
	if len(pairs) > 0 {
		res.ASExactFrac = float64(exact) / float64(len(pairs))
		res.ASAgreeMean = agreeSum / float64(len(pairs))
	}

	fig := &analysis.Figure{
		Title:  "CDF of per-pair router-level RR∩traceroute overlap",
		XLabel: "overlap",
		X:      []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
	}
	fig.AddCDF("pairs", analysis.NewCDF(overlaps))
	res.Fig = fig
	return res
}

// Render prints the comparison.
func (r *RRvsTRResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== RR vs traceroute: router- and AS-level path agreement ==")
	fmt.Fprintf(w, "pairs compared: %d (per-VP cap %d, M-Lab VPs)\n", r.Pairs, r.PerVPCap)
	fmt.Fprintf(w, "router level — fraction of RR stamps traceroute also saw:\n")
	fmt.Fprintf(w, "  median %.2f   mean %.2f   p90 %.2f\n",
		r.RouterOverlap.Median, r.RouterOverlap.Mean, r.RouterOverlap.P90)
	fmt.Fprintf(w, "AS level — agreement over the RR window:\n")
	fmt.Fprintf(w, "  exact AS-path match: %.1f%%\n", 100*r.ASExactFrac)
	fmt.Fprintf(w, "  mean AS-path agreement (LCP fraction): %.2f\n", r.ASAgreeMean)
	r.Fig.Render(w)
}
