package study

import (
	"fmt"
	"io"

	"recordroute/internal/netsim"
	"recordroute/internal/results"
	"recordroute/internal/topology"
)

// EpochsLive is the recurring-campaign experiment: one topology probed
// across consecutive fault epochs under long-horizon route churn
// (FaultConfig.ChurnProb), with the per-epoch RR-reachable sets diffed
// into a gained/lost/stable time series. It is the single-process twin
// of a daemon Schedule — same derived seeds, same epoch semantics — so
// its golden render pins the scheduler's determinism contract.
type EpochsLive struct {
	Index  *results.EpochIndex
	Faults netsim.FaultSummary
	Epochs int
}

// DefaultChurnFaults is the fault plan epochs-live installs when the
// caller supplies none: no packet-level faults, only epoch churn — half
// the registered (router, prefix) candidates join the pool, and each
// pooled prefix sits out any given epoch with probability 0.35.
func DefaultChurnFaults(seed uint64) *netsim.FaultConfig {
	return &netsim.FaultConfig{
		Seed:      seed ^ 0xc4ceb9fe1a85ec53,
		ChurnFrac: 0.5,
		ChurnProb: 0.35,
	}
}

// RunEpochsLive builds the world once, snapshots it, and measures
// `epochs` consecutive fault epochs, each on a fresh clone with the
// epoch's derived shuffle seed (EpochSeed) and churn clock. The route
// plane is built exactly once — the property the service's plane-cache
// affinity relies on — and each epoch's render is byte-reproducible at
// any shard count.
func RunEpochsLive(cfg topology.Config, opts Options, epochs int) (*EpochsLive, error) {
	if epochs < 1 {
		epochs = 3
	}
	if opts.Scale != "" {
		pcfg, err := topology.ProfileConfig(cfg.Epoch, opts.Scale)
		if err != nil {
			return nil, err
		}
		pcfg.Seed, pcfg.Faults = cfg.Seed, cfg.Faults
		cfg = pcfg
		opts.Scale = ""
	}
	if cfg.Faults == nil {
		cfg.Faults = DefaultChurnFaults(cfg.Seed)
	}
	topo, err := topology.Build(cfg)
	if err != nil {
		return nil, err
	}
	snap := topology.SnapshotOf(topo)
	el := &EpochsLive{Index: &results.EpochIndex{}, Faults: topo.Faults, Epochs: epochs}
	base := opts.ShuffleSeed
	for e := 0; e < epochs; e++ {
		eopts := opts
		eopts.FaultEpoch = e
		eopts.ShuffleSeed = EpochSeed(base, e)
		st, err := NewFromTopology(snap.Clone(), eopts)
		if err != nil {
			return nil, err
		}
		r := st.RunResponsiveness()
		el.Index.Add(e, r.RRResponsive())
	}
	return el, nil
}

// Render prints the epoch time series and churn deltas.
func (el *EpochsLive) Render(w io.Writer) {
	fmt.Fprintln(w, "== epochs-live: RR reachability across fault epochs under route churn ==")
	fmt.Fprintf(w, "faults: %s\n\n", el.Faults)
	el.Index.RenderTable(w)
}
