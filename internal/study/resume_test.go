package study

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"recordroute/internal/netsim"
	"recordroute/internal/probe"
	"recordroute/internal/topology"
)

// journaledRun is one cell of the resume property: a journaled study
// run to completion, with its render and how much of it came from the
// journal's archive versus fresh probing.
type journaledRun struct {
	resp     *Responsiveness
	render   []byte
	archived int // batches replayed from the journal
	streamed int // fresh batches seen by the live sink
	errs     int
}

// runJournaled builds a study identical to runSharded's cells, attaches
// a journal at path, and runs the Table 1 experiment to completion.
func runJournaled(t *testing.T, seed uint64, fc *netsim.FaultConfig, shards int, path string, resume bool) journaledRun {
	t.Helper()
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(0.15)
	cfg.Seed = seed
	cfg.Faults = fc
	s, err := New(cfg, Options{Rate: 200, ShuffleSeed: 7, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.AttachJournal(path, resume)
	if err != nil {
		t.Fatal(err)
	}
	run := journaledRun{archived: j.Archived()}
	j.SetSink(func(string, []probe.Result) { run.streamed++ })

	run.resp = s.RunResponsiveness()
	var buf bytes.Buffer
	run.resp.Render(&buf)
	run.render = buf.Bytes()
	run.errs = len(s.Fleet().ShardErrors())
	if err := s.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	return run
}

// truncateJournal simulates a kill mid-campaign: it keeps the journal's
// meta and phase records plus the first half of the completed VP
// batches, then appends half of the next line — the torn write a dead
// process leaves behind.
func truncateJournal(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	var head, vps [][]byte
	for _, l := range lines {
		if len(bytes.TrimSpace(l)) == 0 {
			continue
		}
		if bytes.Contains(l, []byte(`"t":"vp"`)) {
			vps = append(vps, l)
		} else {
			head = append(head, l)
		}
	}
	if len(vps) < 2 {
		t.Fatalf("journal %s holds only %d VP batches; cannot cut mid-run", src, len(vps))
	}
	keep := len(vps) / 2
	var out bytes.Buffer
	for _, l := range head {
		out.Write(l)
	}
	for _, l := range vps[:keep] {
		out.Write(l)
	}
	out.Write(vps[keep][:len(vps[keep])/2]) // the torn final write
	if err := os.WriteFile(dst, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestResumeEqualsUninterrupted is the checkpoint/resume property
// (DESIGN.md §11): a campaign killed mid-run and resumed from its
// journal reproduces the uninterrupted journaled run — byte-identical
// Table 1 render and per-VP result streams equal field-for-field apart
// from ReplyIPID — across shard counts, with and without a fault plan.
// The kill is simulated the way it actually wounds a journal: the file
// is cut after half the completed batches, mid-line. (The shard-panic
// variant of the same property lives in measure's journal tests, where
// the fault can be injected into a specific replica.)
// runDoubletreeJournaled mirrors runJournaled for the doubletree
// experiment.
func runDoubletreeJournaled(t *testing.T, seed uint64, shards int, path string, resume bool) (*DoubletreeResult, []byte, int) {
	t.Helper()
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(0.15)
	cfg.Seed = seed
	s, err := New(cfg, Options{Rate: 200, ShuffleSeed: 7, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.AttachJournal(path, resume)
	if err != nil {
		t.Fatal(err)
	}
	res := s.RunDoubletree(120, 3)
	var buf bytes.Buffer
	res.Render(&buf)
	if errs := s.Fleet().ShardErrors(); len(errs) > 0 {
		t.Fatalf("shard errors: %v", errs)
	}
	archived := j.Archived()
	if err := s.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes(), archived
}

// cutJournalPrefix keeps the first frac of the journal's lines plus a
// torn half-line — the prefix a killed process actually leaves.
func cutJournalPrefix(t *testing.T, src, dst string, frac float64) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	keep := int(float64(len(lines)) * frac)
	if keep < 2 || keep >= len(lines) {
		t.Fatalf("journal %s has %d lines; cannot cut at %.2f", src, len(lines), frac)
	}
	var out bytes.Buffer
	for _, l := range lines[:keep] {
		out.Write(l)
	}
	out.Write(lines[keep][:len(lines[keep])/2]) // the torn final write
	if err := os.WriteFile(dst, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDoubletreeResumeEqualsUninterrupted extends the
// checkpoint/resume property to the traceroute engine: a journaled
// doubletree campaign killed mid-run (the journal cut to a prefix,
// mid-line) and resumed must reproduce the uninterrupted run —
// byte-identical render and final global stop set. Archived phases
// replay through trace.Rebuild rather than re-probing, and each
// completed phase's stop-set seal is re-verified byte-for-byte against
// the journal on resume.
func TestDoubletreeResumeEqualsUninterrupted(t *testing.T) {
	const seed = 11
	for _, k := range []int{1, 2} {
		t.Run(fmt.Sprintf("K%d", k), func(t *testing.T) {
			dir := t.TempDir()
			full := filepath.Join(dir, "full.jsonl")
			cut := filepath.Join(dir, "cut.jsonl")

			base, baseRender, archived := runDoubletreeJournaled(t, seed, k, full, false)
			if archived != 0 {
				t.Fatalf("fresh journal replayed %d archived batches", archived)
			}

			cutJournalPrefix(t, full, cut, 0.6)
			resumed, resumedRender, rearchived := runDoubletreeJournaled(t, seed, k, cut, true)
			if rearchived == 0 {
				t.Fatal("resume replayed nothing: the journal cut left no archive")
			}
			if !bytes.Equal(resumedRender, baseRender) {
				t.Errorf("resumed render differs from uninterrupted:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s",
					baseRender, resumedRender)
			}
			if !bytes.Equal(resumed.StopSetBytes, base.StopSetBytes) {
				t.Errorf("resumed final stop set differs (%d vs %d bytes)",
					len(resumed.StopSetBytes), len(base.StopSetBytes))
			}
		})
	}
}

func TestResumeEqualsUninterrupted(t *testing.T) {
	const seed = 11
	faults := []struct {
		name string
		fc   *netsim.FaultConfig
	}{
		{"no-faults", nil},
		{"fault-plan", &netsim.FaultConfig{LossProb: 0.05, LossFrac: 0.25,
			OutageFrac: 0.02, WithdrawFrac: 0.05}},
	}
	for _, f := range faults {
		for _, k := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("K%d/%s", k, f.name), func(t *testing.T) {
				dir := t.TempDir()
				full := filepath.Join(dir, "full.jsonl")
				cut := filepath.Join(dir, "cut.jsonl")

				base := runJournaled(t, seed, f.fc, k, full, false)
				if base.errs > 0 {
					t.Fatalf("uninterrupted run reported %d shard errors", base.errs)
				}
				if base.archived != 0 {
					t.Fatalf("fresh journal replayed %d archived batches", base.archived)
				}

				truncateJournal(t, full, cut)
				resumed := runJournaled(t, seed, f.fc, k, cut, true)
				if resumed.errs > 0 {
					t.Fatalf("resumed run reported %d shard errors", resumed.errs)
				}
				if resumed.archived == 0 {
					t.Fatal("resume replayed nothing: the journal cut left no archive")
				}

				// The resume must actually skip: fresh (streamed) batches
				// plus archived ones cover the VP set exactly once.
				if total := resumed.archived + resumed.streamed; total != base.streamed {
					t.Errorf("archived %d + streamed %d = %d batches, want %d",
						resumed.archived, resumed.streamed, total, base.streamed)
				}

				if !bytes.Equal(resumed.render, base.render) {
					t.Errorf("resumed Table 1 render differs from uninterrupted:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s",
						base.render, resumed.render)
				}
				comparePerVP(t, k, base.resp, resumed.resp)
			})
		}
	}
}
