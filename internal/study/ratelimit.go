package study

import (
	"fmt"
	"io"
	"net/netip"
	"sort"

	"recordroute/internal/probe"
)

// RateLimitResult is the §4.1 / Figure 4 experiment: per-VP ping-RR
// response counts when probing the same RR-responsive destinations at
// 10 pps and 100 pps.
type RateLimitResult struct {
	// PerVP maps VP name to response counts at each rate.
	PerVP map[string]*RateLimitVP
	// Dests is the probed population size.
	Dests int
	// DrasticDrop lists VPs losing more than 25% of responses at the
	// high rate — the paper's source-proximate-limiter signature
	// (8 of 79 published).
	DrasticDrop []string
}

// RateLimitVP is one VP's response counts.
type RateLimitVP struct {
	At10, At100 int
}

// DropFrac is the fractional response loss at 100 pps, in [0, 1].
// The edge cases are explicit so the >25% drastic-drop classification
// cannot misfire:
//   - At10 <= 0: there is no baseline to lose responses against. A VP
//     that additionally answered at 100 pps *gained* responses, so the
//     drop is 0 by decision, not by a division guard that happens to
//     return 0.
//   - At100 >= At10: a response gain at the high rate (loss noise at
//     10 pps resolving at 100 pps). The naive ratio would go negative
//     and silently offset real drops in any aggregate; clamped to 0.
func (v *RateLimitVP) DropFrac() float64 {
	switch {
	case v.At10 <= 0:
		return 0 // no baseline signal: a drop cannot be measured
	case v.At100 >= v.At10:
		return 0 // gain, not drop
	}
	return 1 - float64(v.At100)/float64(v.At10)
}

// RunRateLimit probes up to sampleCap RR-responsive destinations from
// every VP at 10 and then 100 pps, in per-VP random order (which also
// spreads load over destination-proximate limiters, §4.1).
func (s *Study) RunRateLimit(r *Responsiveness, sampleCap int) *RateLimitResult {
	targets := r.RRResponsive()
	if sampleCap > 0 && len(targets) > sampleCap {
		targets = targets[:sampleCap]
	}
	res := &RateLimitResult{
		PerVP: make(map[string]*RateLimitVP),
		Dests: len(targets),
	}
	count := func(rs []probe.Result) int {
		n := 0
		for _, pr := range rs {
			if pr.Type == probe.EchoReply && pr.HasRR {
				n++
			}
		}
		return n
	}
	for _, rate := range []float64{10, 100} {
		opts := probe.Options{Rate: rate, Timeout: s.Opts.timeout()}
		perVP := s.Camp.PingRRAll(targets, opts, s.Shuffler())
		for vp, rs := range perVP {
			v := res.PerVP[vp]
			if v == nil {
				v = &RateLimitVP{}
				res.PerVP[vp] = v
			}
			if rate == 10 {
				v.At10 = count(rs)
			} else {
				v.At100 = count(rs)
			}
		}
	}
	for vp, v := range res.PerVP {
		if v.DropFrac() > 0.25 {
			res.DrasticDrop = append(res.DrasticDrop, vp)
		}
	}
	sort.Strings(res.DrasticDrop)
	return res
}

// Render prints the per-VP response counts, Figure 4's series.
func (rl *RateLimitResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== §4.1 / Figure 4: RR responses per VP at 10 vs 100 pps ==")
	fmt.Fprintf(w, "destinations probed per VP: %d\n", rl.Dests)
	names := make([]string, 0, len(rl.PerVP))
	for n := range rl.PerVP {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-12s %10s %10s %8s\n", "vp", "10pps", "100pps", "drop")
	for _, n := range names {
		v := rl.PerVP[n]
		fmt.Fprintf(w, "%-12s %10d %10d %7.1f%%\n", n, v.At10, v.At100, 100*v.DropFrac())
	}
	fmt.Fprintf(w, "\nVPs with >25%% response drop at 100pps: %d %v (paper: 8 of 79)\n",
		len(rl.DrasticDrop), rl.DrasticDrop)
}

// addrsOnly is a tiny helper used by tests.
func addrsOnly(rs []probe.Result) []netip.Addr {
	out := make([]netip.Addr, len(rs))
	for i, r := range rs {
		out[i] = r.Dst
	}
	return out
}
