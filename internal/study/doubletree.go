package study

import (
	"fmt"
	"io"
	"net/netip"
	"sort"

	"recordroute/internal/analysis"
	"recordroute/internal/trace"
)

// RoundBudget is one doubletree round's probe economics, paired with
// what the naive arm spent on the same VP wave.
type RoundBudget struct {
	Round       int
	VPs         int
	DTProbes    int
	NaiveProbes int
	GlobalStops int
	LocalStops  int
	// SetSize is the global stop set's entry count after this round's
	// delta merge.
	SetSize int
}

// DoubletreeResult compares a Doubletree campaign (shared global +
// per-VP local stop sets, VPs probing in waves with a deterministic
// delta merge in between) against a naive full-traceroute arm over
// the identical (VP, destination) pairs.
type DoubletreeResult struct {
	VPs     int
	Dests   int
	Rounds  int
	DestCap int

	Naive    trace.Stats
	DT       trace.Stats
	PerRound []RoundBudget

	// StopSetBytes is the final merged global set in its canonical
	// codec form — the bytes the shard-determinism property compares
	// across K (identical final stop sets, DESIGN.md §14).
	StopSetBytes []byte
	StopSetLen   int

	// Interface discovery: the union over all VPs of responding
	// non-final hop addresses, per arm, and their intersection — the
	// completeness comparison (Doubletree's known blind spots are
	// paths that diverge below a backward stop).
	NaiveIfaces  int
	DTIfaces     int
	CommonIfaces int

	Fig *analysis.Figure
}

// SavedFrac is the probe-budget saving of doubletree over naive.
func (r *DoubletreeResult) SavedFrac() float64 {
	if r.Naive.Probes == 0 {
		return 0
	}
	return 1 - float64(r.DT.Probes)/float64(r.Naive.Probes)
}

// Coverage is the fraction of naive-discovered interfaces doubletree
// also discovered.
func (r *DoubletreeResult) Coverage() float64 {
	return frac(r.CommonIfaces, r.NaiveIfaces)
}

// stopSetPrefixOf maps a destination to the prefix its global-set
// entries are keyed by: the advertised prefix it belongs to.
func (s *Study) stopSetPrefixOf(a netip.Addr) netip.Prefix {
	if d := s.Topo.DestByAddr(a); d != nil {
		return d.Prefix
	}
	p, err := a.Prefix(24)
	if err != nil {
		return netip.PrefixFrom(a, a.BitLen())
	}
	return p
}

// platformVPNames lists every platform VP in campaign order.
func (s *Study) platformVPNames() []string {
	out := make([]string, 0, len(s.Topo.VPs))
	for _, vp := range s.Topo.VPs {
		out = append(out, vp.Name)
	}
	return out
}

// RunDoubletree runs both arms of the probe-budget experiment: a
// naive exhaustive traceroute of every (VP, destination) pair, then a
// Doubletree campaign over the same pairs — VPs partitioned
// round-robin into waves, each wave's forward probing stopping on the
// destination-side interfaces earlier waves fed into the global set
// (frozen at the previous merge). destCap caps the destination list
// (0 = the full hitlist); rounds <= 0 means 4. Both arms probe
// through the study's fleet, so every reported number is
// byte-identical across shard counts.
func (s *Study) RunDoubletree(destCap, rounds int) *DoubletreeResult {
	if rounds <= 0 {
		rounds = 4
	}
	dests := s.Data.Addrs()
	if destCap > 0 && len(dests) > destCap {
		dests = dests[:destCap]
	}
	vpNames := s.platformVPNames()
	if rounds > len(vpNames) {
		rounds = len(vpNames)
	}
	shuffle := s.Shuffler()
	perVPFor := func(names []string) map[string][]netip.Addr {
		m := make(map[string][]netip.Addr, len(names))
		for _, name := range names {
			m[name] = shuffle(name, dests)
		}
		return m
	}
	fleet := s.Fleet()
	res := &DoubletreeResult{
		VPs: len(vpNames), Dests: len(dests), Rounds: rounds, DestCap: destCap,
	}

	// Naive arm: full traceroutes, no stop sets.
	naiveSess := trace.NewSession(s.stopSetPrefixOf)
	naive := fleet.DoubletreeAll(perVPFor(vpNames), naiveSess,
		trace.Options{Timeout: s.Opts.timeout(), Exhaustive: true})

	// Doubletree arm: VPs round-robin over waves. Paths to a
	// destination form a tree rooted near it, so a later wave's forward
	// probe meets an interface some earlier wave already reported and
	// stops; the wave's own discoveries merge into the global set
	// afterwards. Within a wave the set is frozen (DESIGN.md §14).
	res.PerRound = make([]RoundBudget, rounds)
	dtSess := trace.NewSession(s.stopSetPrefixOf)
	dtIfaces := make(map[netip.Addr]bool)
	for rd := 0; rd < rounds; rd++ {
		var wave []string
		for i, name := range vpNames {
			if i%rounds == rd {
				wave = append(wave, name)
			}
		}
		rr := fleet.DoubletreeAll(perVPFor(wave), dtSess, trace.Options{Timeout: s.Opts.timeout()})
		b := &res.PerRound[rd]
		b.Round = rd + 1
		b.VPs = len(wave)
		for _, name := range wave {
			round := rr[name]
			if round == nil {
				continue
			}
			res.DT.Add(round.Stats)
			b.DTProbes += round.Stats.Probes
			b.GlobalStops += round.Stats.GlobalStops
			b.LocalStops += round.Stats.LocalStops
			for _, t := range round.Traces {
				for _, a := range t.HopAddrs() {
					dtIfaces[a] = true
				}
			}
			if nr := naive[name]; nr != nil {
				b.NaiveProbes += nr.Stats.Probes
			}
		}
		b.SetSize = dtSess.Global.Len()
	}

	// Naive accounting over the same VPs.
	naiveIfaces := make(map[netip.Addr]bool)
	for _, name := range vpNames {
		round := naive[name]
		if round == nil {
			continue
		}
		res.Naive.Add(round.Stats)
		for _, t := range round.Traces {
			for _, a := range t.HopAddrs() {
				naiveIfaces[a] = true
			}
		}
	}

	res.NaiveIfaces = len(naiveIfaces)
	res.DTIfaces = len(dtIfaces)
	for a := range dtIfaces {
		if naiveIfaces[a] {
			res.CommonIfaces++
		}
	}

	data, err := dtSess.Global.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("study: stop-set serialization: %v", err))
	}
	res.StopSetBytes = data
	res.StopSetLen = dtSess.Global.Len()

	fig := &analysis.Figure{
		Title:  "probe budget by round: doubletree vs naive",
		XLabel: "round",
		X:      analysis.IntRange(1, rounds),
	}
	dt := make([]float64, rounds)
	nv := make([]float64, rounds)
	for i, b := range res.PerRound {
		dt[i] = float64(b.DTProbes)
		nv[i] = float64(b.NaiveProbes)
	}
	fig.AddLine("doubletree", dt)
	fig.AddLine("naive", nv)
	res.Fig = fig
	return res
}

// Render prints the probe-budget comparison.
func (r *DoubletreeResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== Doubletree: shared stop sets vs naive traceroute ==")
	fmt.Fprintf(w, "VPs: %d   destinations: %d   rounds: %d\n", r.VPs, r.Dests, r.Rounds)
	fmt.Fprintf(w, "naive full traceroute:   %d probes\n", r.Naive.Probes)
	fmt.Fprintf(w, "doubletree (stop sets):  %d probes — %.1f%% saved\n", r.DT.Probes, 100*r.SavedFrac())
	fmt.Fprintf(w, "  forward stops (global set):  %d\n", r.DT.GlobalStops)
	fmt.Fprintf(w, "  backward stops (local set):  %d\n", r.DT.LocalStops)
	fmt.Fprintf(w, "  stop-set misses:             %d\n", r.DT.Misses)
	fmt.Fprintf(w, "  stop-credited probes saved:  %d\n", r.DT.Saved)
	fmt.Fprintf(w, "  traces: %d (reached %d, dest TTL inferred unprobed %d)\n",
		r.DT.Traces, r.DT.Reached, r.DT.Inferred)
	fmt.Fprintf(w, "global stop set: %d (iface, dst-prefix) entries (%d codec bytes)\n",
		r.StopSetLen, len(r.StopSetBytes))
	fmt.Fprintf(w, "interface coverage vs naive: %d/%d (%.2f%%), doubletree-only %d\n",
		r.CommonIfaces, r.NaiveIfaces, 100*r.Coverage(), r.DTIfaces-r.CommonIfaces)
	r.Fig.Render(w)
	fmt.Fprintln(w, "# wave budgets: global/local stops and stop-set growth")
	fmt.Fprintf(w, "%-8s %6s %12s %12s %12s\n", "round", "vps", "gstops", "lstops", "set-size")
	for _, b := range r.PerRound {
		fmt.Fprintf(w, "%-8d %6d %12d %12d %12d\n", b.Round, b.VPs, b.GlobalStops, b.LocalStops, b.SetSize)
	}
}

// sortedVPNames returns the map's keys sorted, for deterministic
// iteration over per-VP rounds.
func sortedVPNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
