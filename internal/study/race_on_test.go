//go:build race

package study

// raceEnabled reports whether this test binary was built with -race;
// the heaviest property-test cells skip under it.
const raceEnabled = true
