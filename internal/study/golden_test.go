package study

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// TestGoldenRenders pins the rendered experiment output byte-for-byte
// at a fixed scale, seed, and shuffle order. Every render is a pure
// function of the deterministic simulation, so any diff here is a real
// behavior change — rerun with -update only when the change is
// intended, and review the golden diff like code.
func TestGoldenRenders(t *testing.T) {
	s := testStudy(t, 0.25)
	r := s.RunResponsiveness()

	cases := []struct {
		name   string
		render func(*bytes.Buffer)
	}{
		{"table1_responsiveness", func(b *bytes.Buffer) { r.Render(b) }},
		{"fig1_reachability", func(b *bytes.Buffer) { s.RunReachability(r).Render(b) }},
		{"fig4_ratelimit", func(b *bytes.Buffer) { s.RunRateLimit(r, 500).Render(b) }},
		{"fig5_ttl", func(b *bytes.Buffer) { s.RunTTLStudy(r, 200).Render(b) }},
		{"stamp_audit", func(b *bytes.Buffer) { s.RunStampAudit(r, 50).Render(b) }},
		{"doubletree_traceroute", func(b *bytes.Buffer) { s.RunDoubletree(120, 3).Render(b) }},
		{"rr_vs_tr", func(b *bytes.Buffer) { s.RunRRvsTR(r, 50).Render(b) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got bytes.Buffer
			tc.render(&got)
			compareGolden(t, tc.name, got.Bytes())
		})
	}
}

// TestGoldenMetricsSnapshot pins the merged metrics snapshot of a small
// sharded campaign: the JSON must stay byte-stable across revisions
// (and, per DESIGN.md §6, across shard counts — covered by the
// property test in parallel_test.go).
func TestGoldenMetricsSnapshot(t *testing.T) {
	s := testStudy(t, 0.25)
	s.Opts.Shards = 2
	s.RunResponsiveness()
	snap := s.Metrics("golden")
	raw, err := snap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "metrics_snapshot", raw)
}

// compareGolden diffs got against testdata/golden/<name>.txt,
// rewriting the file when -update is set.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run `go test ./internal/study -run TestGolden -update`): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden (run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, firstDiffWindow(got, want), firstDiffWindow(want, got))
	}
}

// firstDiffWindow returns a short window of a around the first byte
// where a and b diverge, keeping failure output readable for large
// renders.
func firstDiffWindow(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	start := i - 120
	if start < 0 {
		start = 0
	}
	end := i + 240
	if end > len(a) {
		end = len(a)
	}
	return a[start:end]
}
