package study

import (
	"fmt"
	"io"
	"net/netip"
	"sort"

	"recordroute/internal/analysis"
	"recordroute/internal/measure"
	"recordroute/internal/topology"
)

// CloudResult is the §3.6 / Figure 3 experiment: hop-count distance
// from cloud providers to RR-reachable and RR-responsive destinations,
// calibrated against M-Lab's distance to its RR-reachable set.
type CloudResult struct {
	Figure3 *analysis.Figure
	// Within8 maps each cloud to the fraction of RR-responsive (but not
	// RR-reachable-from-M-Lab) destinations within eight traceroute hops
	// (paper: EC2 40%, Softlayer 45%; GCE better still).
	Within8 map[string]float64
	// MLabMedian and CloudMedian summarize the reachable-set distances.
	MLabMedian  float64
	CloudMedian map[string]float64
	// SampledReachable/Responsive record the population sizes used.
	SampledReachable, SampledResponsive int
}

// RunCloudDistance traceroutes from each cloud's border to samples of
// the RR-reachable and RR-responsive-only destination sets, and from
// M-Lab VPs to the reachable sample.
func (s *Study) RunCloudDistance(r *Responsiveness, sampleCap int) *CloudResult {
	if sampleCap <= 0 {
		sampleCap = 300
	}
	var reachable, responsiveOnly []netip.Addr
	for _, d := range r.Dests {
		st := r.Stats[d]
		if st == nil || !st.RRResponsive() {
			continue
		}
		if st.RRReachable() {
			reachable = append(reachable, d)
		} else {
			responsiveOnly = append(responsiveOnly, d)
		}
	}
	if len(reachable) > sampleCap {
		reachable = reachable[:sampleCap]
	}
	if len(responsiveOnly) > sampleCap {
		responsiveOnly = responsiveOnly[:sampleCap]
	}

	topts := measure.TraceOptions{StartRate: s.Opts.rate(), Timeout: s.Opts.timeout(), MaxTTL: 30}

	// Cloud traceroutes to both sets.
	perCloud := make(map[string][]netip.Addr)
	for _, vp := range s.CloudCamp.VPs {
		perCloud[vp.Name] = append(append([]netip.Addr(nil), reachable...), responsiveOnly...)
	}
	cloudTraces := s.CloudCamp.TracerouteAll(perCloud, topts)

	// M-Lab traceroutes to the reachable set: each destination traced
	// from its closest M-Lab VP (matching the paper's per-VP usage).
	perMLab := make(map[string][]netip.Addr)
	mlabSet := make(map[string]bool)
	for _, n := range s.vpNamesOfKind(topology.MLab) {
		mlabSet[n] = true
	}
	for _, d := range reachable {
		st := r.Stats[d]
		best, bestSlot := "", 0
		for vp, slot := range st.SlotsByVP {
			if !mlabSet[vp] || slot == 0 {
				continue
			}
			if bestSlot == 0 || slot < bestSlot || (slot == bestSlot && vp < best) {
				best, bestSlot = vp, slot
			}
		}
		if best != "" {
			perMLab[best] = append(perMLab[best], d)
		}
	}
	mlabTraces := s.Camp.TracerouteAll(perMLab, topts)

	res := &CloudResult{
		Figure3: &analysis.Figure{
			Title:  "Figure 3: traceroute hop count from clouds and M-Lab (CDF of destinations)",
			XLabel: "trace-hops",
			X:      analysis.IntRange(1, 20),
		},
		Within8:           make(map[string]float64),
		CloudMedian:       make(map[string]float64),
		SampledReachable:  len(reachable),
		SampledResponsive: len(responsiveOnly),
	}

	reachSet := make(map[netip.Addr]bool, len(reachable))
	for _, d := range reachable {
		reachSet[d] = true
	}

	hopCounts := func(traces []measure.Trace, filter func(netip.Addr) bool) []int {
		var out []int
		for _, tr := range traces {
			if tr.Reached && filter(tr.Dst) {
				out = append(out, int(tr.DestTTL))
			}
		}
		return out
	}

	names := make([]string, 0, len(cloudTraces))
	for n := range cloudTraces {
		names = append(names, n)
	}
	sort.Strings(names)
	primary := ""
	for _, cloud := range names {
		if primary == "" {
			primary = cloud
		}
		reach := hopCounts(cloudTraces[cloud], func(d netip.Addr) bool { return reachSet[d] })
		resp := hopCounts(cloudTraces[cloud], func(d netip.Addr) bool { return !reachSet[d] })
		cReach := analysis.NewCDFInts(reach)
		cResp := analysis.NewCDFInts(resp)
		res.Within8[cloud] = cResp.At(8)
		res.CloudMedian[cloud] = cReach.Quantile(0.5)
		if cloud == primary {
			res.Figure3.AddCDF(cloud+"-rr-reachable", cReach)
			res.Figure3.AddCDF(cloud+"-rr-responsive", cResp)
		}
	}

	var mlabAll []int
	for _, ts := range mlabTraces {
		mlabAll = append(mlabAll, hopCounts(ts, func(netip.Addr) bool { return true })...)
	}
	mlabCDF := analysis.NewCDFInts(mlabAll)
	res.Figure3.AddCDF("mlab-rr-reachable", mlabCDF)
	res.MLabMedian = mlabCDF.Quantile(0.5)
	return res
}

// Render prints the figure and the per-cloud summary.
func (cr *CloudResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== §3.6 / Figure 3: could RR be useful to cloud providers? ==")
	fmt.Fprintf(w, "sampled %d RR-reachable and %d RR-responsive-only destinations\n\n",
		cr.SampledReachable, cr.SampledResponsive)
	cr.Figure3.Render(w)
	fmt.Fprintf(w, "\nM-Lab median hops to RR-reachable: %.0f\n", cr.MLabMedian)
	names := make([]string, 0, len(cr.Within8))
	for n := range cr.Within8 {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, cloud := range names {
		fmt.Fprintf(w, "%-10s median hops to reachable: %.0f; RR-responsive within 8 hops: %.0f%% (paper: EC2 40%%, Softlayer 45%%)\n",
			cloud, cr.CloudMedian[cloud], 100*cr.Within8[cloud])
	}
}
