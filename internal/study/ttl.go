package study

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net/netip"

	"recordroute/internal/analysis"
	"recordroute/internal/probe"
)

// TTLResult is the §4.2 / Figure 5 experiment: response rate of
// RR-reachable and non-RR-reachable destinations to ping-RRs with
// limited initial TTLs.
type TTLResult struct {
	Figure5 *analysis.Figure
	// RateAt returns the response rates measured at each probed TTL.
	ReachableRate, UnreachableRate map[uint8]float64
	// TTLs lists the probed TTL values in order.
	TTLs []uint8
	// Probes counts the probes sent.
	Probes int
}

// RunTTLStudy probes, from each VP, an equal number of RR-reachable and
// non-RR-reachable (but RR-responsive) destinations with TTLs drawn
// from {3..23, 64}, and reports per-TTL destination response rates
// (a response is an echo reply from the destination; expiry errors are
// the cheap outcome the technique aims for).
func (s *Study) RunTTLStudy(r *Responsiveness, perVPCap int) *TTLResult {
	if perVPCap <= 0 {
		perVPCap = 200
	}
	rng := rand.New(rand.NewPCG(s.Opts.ShuffleSeed^0x77aa, 0x1199))

	ttls := make([]uint8, 0, 22)
	for v := 3; v <= 23; v++ {
		ttls = append(ttls, uint8(v))
	}
	ttls = append(ttls, 64)

	// Per VP: equal-sized near and far sets, following the paper — each
	// VP probes destinations *it* previously received RR responses
	// from, split by whether they were RR-reachable from that VP.
	perVPdst := make(map[string][]netip.Addr)
	perVPttl := make(map[string][]uint8)
	nearForVP := make(map[string]map[netip.Addr]bool)
	probes := 0
	for _, vp := range s.Camp.VPs {
		var near, far []netip.Addr
		for _, d := range r.Dests {
			st := r.Stats[d]
			if st == nil {
				continue
			}
			slot, responded := st.SlotsByVP[vp.Name]
			if !responded {
				continue
			}
			if slot > 0 {
				near = append(near, d)
			} else {
				far = append(far, d)
			}
		}
		n := min(perVPCap, min(len(near), len(far)))
		if n == 0 {
			continue
		}
		var dsts []netip.Addr
		dsts = append(dsts, pickN(rng, near, n)...)
		nf := make(map[netip.Addr]bool, n)
		for _, d := range dsts {
			nf[d] = true
		}
		nearForVP[vp.Name] = nf
		dsts = append(dsts, pickN(rng, far, n)...)
		tt := make([]uint8, len(dsts))
		for i := range tt {
			tt[i] = ttls[rng.IntN(len(ttls))]
		}
		perVPdst[vp.Name] = dsts
		perVPttl[vp.Name] = tt
		probes += len(dsts)
	}

	results := s.Camp.TTLPingRRAll(perVPdst, perVPttl, s.Opts.probeOpts())

	type bucket struct{ sent, replied int }
	reach := make(map[uint8]*bucket)
	unreach := make(map[uint8]*bucket)
	get := func(m map[uint8]*bucket, ttl uint8) *bucket {
		b := m[ttl]
		if b == nil {
			b = &bucket{}
			m[ttl] = b
		}
		return b
	}
	for vp, rs := range results {
		for _, pr := range rs {
			m := unreach
			if nearForVP[vp][pr.Dst] {
				m = reach
			}
			b := get(m, pr.TTL)
			b.sent++
			if pr.Type == probe.EchoReply {
				b.replied++
			}
		}
	}

	res := &TTLResult{
		ReachableRate:   make(map[uint8]float64),
		UnreachableRate: make(map[uint8]float64),
		TTLs:            ttls,
		Probes:          probes,
	}
	xs := make([]float64, len(ttls))
	yr := make([]float64, len(ttls))
	yu := make([]float64, len(ttls))
	for i, ttl := range ttls {
		xs[i] = float64(ttl)
		if b := reach[ttl]; b != nil && b.sent > 0 {
			yr[i] = float64(b.replied) / float64(b.sent)
		}
		if b := unreach[ttl]; b != nil && b.sent > 0 {
			yu[i] = float64(b.replied) / float64(b.sent)
		}
		res.ReachableRate[ttl] = yr[i]
		res.UnreachableRate[ttl] = yu[i]
	}
	res.Figure5 = &analysis.Figure{
		Title:  "Figure 5: destination response rate vs initial TTL of ping-RR",
		XLabel: "initial-ttl",
		X:      xs,
	}
	res.Figure5.AddLine("rr-reachable", yr)
	res.Figure5.AddLine("rr-unreachable", yu)
	return res
}

// pickN samples n elements without replacement (n ≤ len(pool)).
func pickN(rng *rand.Rand, pool []netip.Addr, n int) []netip.Addr {
	idx := rng.Perm(len(pool))[:n]
	out := make([]netip.Addr, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// Render prints the figure and the 10–12 sweet-spot summary.
func (tr *TTLResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== §4.2 / Figure 5: choosing low-impact TTLs ==")
	fmt.Fprintf(w, "probes sent: %d\n\n", tr.Probes)
	tr.Figure5.Render(w)
	fmt.Fprintf(w, "\nat TTL 10: reachable %.0f%% respond (paper ~70%%), unreachable %.0f%% (paper ~25%%)\n",
		100*tr.ReachableRate[10], 100*tr.UnreachableRate[10])
	fmt.Fprintf(w, "at TTL 64: both populations respond fully (reachable %.0f%%, unreachable %.0f%%)\n",
		100*tr.ReachableRate[64], 100*tr.UnreachableRate[64])
}
