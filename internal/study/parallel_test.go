package study

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"recordroute/internal/measure"
	"recordroute/internal/netsim"
	"recordroute/internal/probe"
	"recordroute/internal/topology"
)

// shardRun is one cell of the determinism property: a study built from
// identical config, run to completion on K shards.
type shardRun struct {
	shards int
	resp   *Responsiveness
	render []byte
	merged []byte // canonical JSON of the merged metrics counters
	aliases string // alias partition from reachability's sharded collection
	errs    []string
}

// runSharded builds and runs one study cell: responsiveness (whose
// phase 1 exercises the destination-sharded PingBatchVP) and
// reachability (whose alias resolution exercises the group-partitioned
// PingSeriesVP).
func runSharded(t *testing.T, seed uint64, fc *netsim.FaultConfig, shards int) shardRun {
	t.Helper()
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(0.15)
	cfg.Seed = seed
	cfg.Faults = fc
	s, err := New(cfg, Options{Rate: 200, ShuffleSeed: 7, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	run := shardRun{shards: shards, resp: s.RunResponsiveness()}
	re := s.RunReachability(run.resp)
	run.aliases = fmt.Sprint(re.AliasSets.All())

	var buf bytes.Buffer
	run.resp.Render(&buf)
	re.Render(&buf)
	run.render = buf.Bytes()

	merged, err := json.Marshal(s.Metrics("prop").Merged)
	if err != nil {
		t.Fatal(err)
	}
	run.merged = merged

	if pc, ok := s.Fleet().(*measure.ParallelCampaign); ok {
		for _, e := range pc.ShardErrors() {
			run.errs = append(run.errs, fmt.Sprint(e))
		}
	}
	return run
}

// TestShardDeterminismProperty is the table-driven determinism
// contract (DESIGN.md §6–7, §15): for every seed, with and without a
// fault plan, running the campaign on K=2 and K=4 shards must
// reproduce the K=1 run exactly — byte-identical Table 1 and
// reachability renders (covering the destination-sharded origin ping
// phase and the group-partitioned alias collection), identical alias
// partitions, per-VP result streams equal field-for-field apart from
// ReplyIPID, byte-identical merged metrics counters, and no shard
// failures.
func TestShardDeterminismProperty(t *testing.T) {
	seeds := []uint64{3, 11, 29}
	faults := []struct {
		name string
		fc   *netsim.FaultConfig
	}{
		{"no-faults", nil},
		// Withdrawals are included deliberately: their route-cache flip
		// observations are engine-local and must be excluded from the
		// merged metrics for the snapshot comparison to hold.
		{"fault-plan", &netsim.FaultConfig{LossProb: 0.05, LossFrac: 0.25,
			OutageFrac: 0.02, WithdrawFrac: 0.05}},
	}
	for _, seed := range seeds {
		for _, f := range faults {
			t.Run(fmt.Sprintf("seed%d/%s", seed, f.name), func(t *testing.T) {
				base := runSharded(t, seed, f.fc, 1)
				for _, k := range []int{2, 4} {
					got := runSharded(t, seed, f.fc, k)
					if len(got.errs) > 0 {
						t.Errorf("K=%d: shard errors: %v", k, got.errs)
					}
					if !bytes.Equal(got.render, base.render) {
						t.Errorf("K=%d: Table 1 render differs from sequential:\n--- K=1 ---\n%s\n--- K=%d ---\n%s",
							k, base.render, k, got.render)
					}
					if !bytes.Equal(got.merged, base.merged) {
						t.Errorf("K=%d: merged metrics differ from sequential:\nK=1: %s\nK=%d: %s",
							k, base.merged, k, got.merged)
					}
					if got.aliases != base.aliases {
						t.Errorf("K=%d: alias partition differs from sequential:\nK=1: %s\nK=%d: %s",
							k, base.aliases, k, got.aliases)
					}
					comparePerVP(t, k, base.resp, got.resp)
				}
			})
		}
	}
}

// comparePerVP checks the merge discipline below the summaries: same
// VP set, and per VP the same destinations in the same send order with
// identical probe outcomes, modulo ReplyIPID (destination IP-ID
// counters see only shard-local traffic; no summary reads them).
func comparePerVP(t *testing.T, k int, seq, par *Responsiveness) {
	t.Helper()
	var seqVPs, parVPs []string
	for vp := range seq.PerVP {
		seqVPs = append(seqVPs, vp)
	}
	for vp := range par.PerVP {
		parVPs = append(parVPs, vp)
	}
	sort.Strings(seqVPs)
	sort.Strings(parVPs)
	if !reflect.DeepEqual(seqVPs, parVPs) {
		t.Fatalf("K=%d: VP sets differ: %v vs %v", k, seqVPs, parVPs)
	}
	for _, vp := range seqVPs {
		srs, prs := seq.PerVP[vp], par.PerVP[vp]
		if len(srs) != len(prs) {
			t.Errorf("K=%d VP %s: %d results sequential vs %d sharded", k, vp, len(srs), len(prs))
			continue
		}
		for i := range srs {
			a, b := srs[i], prs[i]
			a.ReplyIPID, b.ReplyIPID = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Errorf("K=%d VP %s result %d differs:\nsequential: %+v\nsharded:    %+v", k, vp, i, a, b)
				break
			}
		}
	}
}

// TestCloneEquivalenceProperty is the snapshot/clone contract (DESIGN.md
// §10) at the campaign-primitive level, across all three scale profiles:
// a fleet of replicas cloned from the study's own topology — after that
// topology has already carried the sequential campaign's traffic — must
// reproduce the sequential per-VP ping-RR streams exactly, modulo
// ReplyIPID, with and without a fault plan. Destination lists are capped
// on the bigger profiles to keep the cell bounded; the small profile
// additionally runs at K=2 (the large ones use K=4, the heavier
// partition). The large cell is skipped in -short and -race runs: it
// adds only scale, not new sharing topology.
func TestCloneEquivalenceProperty(t *testing.T) {
	faults := []struct {
		name string
		fc   *netsim.FaultConfig
	}{
		{"no-faults", nil},
		{"fault-plan", &netsim.FaultConfig{LossProb: 0.05, LossFrac: 0.25,
			OutageFrac: 0.02, WithdrawFrac: 0.05}},
	}
	cells := []struct {
		profile topology.ScaleProfile
		shards  []int
		dests   int
		heavy   bool
	}{
		{topology.ScaleSmall, []int{2, 4}, 400, false},
		{topology.ScaleMedium, []int{4}, 250, false},
		{topology.ScaleLarge, []int{4}, 120, true},
	}
	for _, cell := range cells {
		for _, f := range faults {
			for _, k := range cell.shards {
				t.Run(fmt.Sprintf("%s/%s/K=%d", cell.profile, f.name, k), func(t *testing.T) {
					if cell.heavy && (testing.Short() || raceEnabled) {
						t.Skip("large profile: skipped in -short/-race runs")
					}
					cfg := topology.DefaultConfig(topology.Epoch2016)
					cfg.Seed = 11
					cfg.Faults = f.fc
					opts := Options{Rate: 200, ShuffleSeed: 7, Shards: k, Scale: cell.profile}
					s, err := New(cfg, opts)
					if err != nil {
						t.Fatal(err)
					}
					dests := s.Data.Addrs()
					if len(dests) > cell.dests {
						dests = dests[:cell.dests]
					}
					// Sequential first: the fleet snapshot is taken only
					// afterwards, off an engine that has already run — the
					// clones must come out pristine regardless.
					seq := s.Camp.PingRRAll(dests, opts.probeOpts(), s.Shuffler())
					par := s.Fleet().PingRRAll(dests, opts.probeOpts(), s.Shuffler())
					if pc, ok := s.Fleet().(*measure.ParallelCampaign); ok {
						if errs := pc.ShardErrors(); len(errs) > 0 {
							t.Fatalf("shard errors: %v", errs)
						}
					} else {
						t.Fatalf("Shards=%d did not resolve to a ParallelCampaign", k)
					}
					comparePerVPResults(t, k, seq, par)
				})
			}
		}
	}
}

// comparePerVPResults is comparePerVP for raw primitive result maps.
func comparePerVPResults(t *testing.T, k int, seq, par map[string][]probe.Result) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("K=%d: %d VPs sequential vs %d sharded", k, len(seq), len(par))
	}
	var vps []string
	for vp := range seq {
		vps = append(vps, vp)
	}
	sort.Strings(vps)
	for _, vp := range vps {
		srs, prs := seq[vp], par[vp]
		if len(srs) != len(prs) {
			t.Errorf("K=%d VP %s: %d results sequential vs %d sharded", k, vp, len(srs), len(prs))
			continue
		}
		for i := range srs {
			a, b := srs[i], prs[i]
			a.ReplyIPID, b.ReplyIPID = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Errorf("K=%d VP %s result %d differs:\nsequential: %+v\nsharded:    %+v", k, vp, i, a, b)
				break
			}
		}
	}
}

// TestStudyShardsOptionResolution pins the executor-selection rules:
// Shards=1 must hand back the shared-engine Campaign itself, Shards>1 a
// ParallelCampaign, and the resolved fleet is cached.
func TestStudyShardsOptionResolution(t *testing.T) {
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(0.15)
	seq, err := New(cfg, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Fleet() != interface{}(seq.Camp) {
		t.Errorf("Shards=1: Fleet() is not the shared-engine Campaign")
	}
	par, err := New(cfg, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	fl := par.Fleet()
	if fl == interface{}(par.Camp) {
		t.Errorf("Shards=2: Fleet() fell back to the shared-engine Campaign")
	}
	if fl != par.Fleet() {
		t.Errorf("Fleet() not cached across calls")
	}
}
