package study

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"recordroute/internal/measure"
	"recordroute/internal/netsim"
	"recordroute/internal/topology"
)

// shardRun is one cell of the determinism property: a study built from
// identical config, run to completion on K shards.
type shardRun struct {
	shards  int
	resp    *Responsiveness
	render  []byte
	merged  []byte // canonical JSON of the merged metrics counters
	errs    []string
}

// runSharded builds and runs one study cell.
func runSharded(t *testing.T, seed uint64, fc *netsim.FaultConfig, shards int) shardRun {
	t.Helper()
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(0.15)
	cfg.Seed = seed
	cfg.Faults = fc
	s, err := New(cfg, Options{Rate: 200, ShuffleSeed: 7, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	run := shardRun{shards: shards, resp: s.RunResponsiveness()}

	var buf bytes.Buffer
	run.resp.Render(&buf)
	run.render = buf.Bytes()

	merged, err := json.Marshal(s.Metrics("prop").Merged)
	if err != nil {
		t.Fatal(err)
	}
	run.merged = merged

	if pc, ok := s.Fleet().(*measure.ParallelCampaign); ok {
		for _, e := range pc.ShardErrors() {
			run.errs = append(run.errs, fmt.Sprint(e))
		}
	}
	return run
}

// TestShardDeterminismProperty is the table-driven determinism
// contract (DESIGN.md §6–7): for every seed, with and without a fault
// plan, running the campaign on K=2 and K=4 shards must reproduce the
// K=1 sequential run exactly — byte-identical Table 1 render,
// per-VP result streams equal field-for-field apart from ReplyIPID,
// byte-identical merged metrics counters, and no shard failures.
func TestShardDeterminismProperty(t *testing.T) {
	seeds := []uint64{3, 11, 29}
	faults := []struct {
		name string
		fc   *netsim.FaultConfig
	}{
		{"no-faults", nil},
		// Withdrawals are included deliberately: their route-cache flip
		// observations are engine-local and must be excluded from the
		// merged metrics for the snapshot comparison to hold.
		{"fault-plan", &netsim.FaultConfig{LossProb: 0.05, LossFrac: 0.25,
			OutageFrac: 0.02, WithdrawFrac: 0.05}},
	}
	for _, seed := range seeds {
		for _, f := range faults {
			t.Run(fmt.Sprintf("seed%d/%s", seed, f.name), func(t *testing.T) {
				base := runSharded(t, seed, f.fc, 1)
				for _, k := range []int{2, 4} {
					got := runSharded(t, seed, f.fc, k)
					if len(got.errs) > 0 {
						t.Errorf("K=%d: shard errors: %v", k, got.errs)
					}
					if !bytes.Equal(got.render, base.render) {
						t.Errorf("K=%d: Table 1 render differs from sequential:\n--- K=1 ---\n%s\n--- K=%d ---\n%s",
							k, base.render, k, got.render)
					}
					if !bytes.Equal(got.merged, base.merged) {
						t.Errorf("K=%d: merged metrics differ from sequential:\nK=1: %s\nK=%d: %s",
							k, base.merged, k, got.merged)
					}
					comparePerVP(t, k, base.resp, got.resp)
				}
			})
		}
	}
}

// comparePerVP checks the merge discipline below the summaries: same
// VP set, and per VP the same destinations in the same send order with
// identical probe outcomes, modulo ReplyIPID (destination IP-ID
// counters see only shard-local traffic; no summary reads them).
func comparePerVP(t *testing.T, k int, seq, par *Responsiveness) {
	t.Helper()
	var seqVPs, parVPs []string
	for vp := range seq.PerVP {
		seqVPs = append(seqVPs, vp)
	}
	for vp := range par.PerVP {
		parVPs = append(parVPs, vp)
	}
	sort.Strings(seqVPs)
	sort.Strings(parVPs)
	if !reflect.DeepEqual(seqVPs, parVPs) {
		t.Fatalf("K=%d: VP sets differ: %v vs %v", k, seqVPs, parVPs)
	}
	for _, vp := range seqVPs {
		srs, prs := seq.PerVP[vp], par.PerVP[vp]
		if len(srs) != len(prs) {
			t.Errorf("K=%d VP %s: %d results sequential vs %d sharded", k, vp, len(srs), len(prs))
			continue
		}
		for i := range srs {
			a, b := srs[i], prs[i]
			a.ReplyIPID, b.ReplyIPID = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Errorf("K=%d VP %s result %d differs:\nsequential: %+v\nsharded:    %+v", k, vp, i, a, b)
				break
			}
		}
	}
}

// TestStudyShardsOptionResolution pins the executor-selection rules:
// Shards=1 must hand back the shared-engine Campaign itself, Shards>1 a
// ParallelCampaign, and the resolved fleet is cached.
func TestStudyShardsOptionResolution(t *testing.T) {
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(0.15)
	seq, err := New(cfg, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Fleet() != interface{}(seq.Camp) {
		t.Errorf("Shards=1: Fleet() is not the shared-engine Campaign")
	}
	par, err := New(cfg, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	fl := par.Fleet()
	if fl == interface{}(par.Camp) {
		t.Errorf("Shards=2: Fleet() fell back to the shared-engine Campaign")
	}
	if fl != par.Fleet() {
		t.Errorf("Fleet() not cached across calls")
	}
}
