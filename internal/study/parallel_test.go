package study

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"recordroute/internal/topology"
)

// runBothWays executes RunResponsiveness and RunReachability on two
// studies built from the same config — one pinned to the sequential
// engine, one forced onto three shards — and returns all four results.
func runBothWays(t *testing.T) (seqR, parR *Responsiveness, seqRe, parRe *Reachability) {
	t.Helper()
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(0.25)
	cfg.Seed = 3
	opts := Options{Rate: 200, ShuffleSeed: 7}

	opts.Shards = 1
	seq, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Shards = 3
	par, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}

	seqR = seq.RunResponsiveness()
	parR = par.RunResponsiveness()
	seqRe = seq.RunReachability(seqR)
	parRe = par.RunReachability(parR)
	return
}

// TestParallelStudyByteIdentical is the study-level determinism
// contract from DESIGN.md: the rendered Table 1 and §3.3/Figure 1
// summaries must be byte-identical whether the campaign ran on one
// engine or on a sharded fleet, and the per-VP result streams must
// match field-for-field apart from ReplyIPID (destination IP-ID
// counters see only shard-local traffic; no summary reads them).
func TestParallelStudyByteIdentical(t *testing.T) {
	seqR, parR, seqRe, parRe := runBothWays(t)

	var seqOut, parOut bytes.Buffer
	seqR.Render(&seqOut)
	parR.Render(&parOut)
	if !bytes.Equal(seqOut.Bytes(), parOut.Bytes()) {
		t.Errorf("Table 1 render differs between sequential and sharded runs:\n--- sequential ---\n%s\n--- sharded ---\n%s",
			seqOut.String(), parOut.String())
	}

	seqOut.Reset()
	parOut.Reset()
	seqRe.Render(&seqOut)
	parRe.Render(&parOut)
	if !bytes.Equal(seqOut.Bytes(), parOut.Bytes()) {
		t.Errorf("reachability render differs between sequential and sharded runs:\n--- sequential ---\n%s\n--- sharded ---\n%s",
			seqOut.String(), parOut.String())
	}
}

// TestParallelStudyPerVPOrdering checks the merge discipline below the
// summaries: same VP set, and per VP the same destinations in the same
// send order with identical probe outcomes.
func TestParallelStudyPerVPOrdering(t *testing.T) {
	seqR, parR, _, _ := runBothWays(t)

	var seqVPs, parVPs []string
	for vp := range seqR.PerVP {
		seqVPs = append(seqVPs, vp)
	}
	for vp := range parR.PerVP {
		parVPs = append(parVPs, vp)
	}
	sort.Strings(seqVPs)
	sort.Strings(parVPs)
	if !reflect.DeepEqual(seqVPs, parVPs) {
		t.Fatalf("VP sets differ: sequential %v vs sharded %v", seqVPs, parVPs)
	}

	for _, vp := range seqVPs {
		srs, prs := seqR.PerVP[vp], parR.PerVP[vp]
		if len(srs) != len(prs) {
			t.Errorf("VP %s: %d results sequential vs %d sharded", vp, len(srs), len(prs))
			continue
		}
		for i := range srs {
			a, b := srs[i], prs[i]
			a.ReplyIPID, b.ReplyIPID = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Errorf("VP %s result %d differs:\nsequential: %+v\nsharded:    %+v", vp, i, a, b)
				break
			}
		}
	}
}

// TestStudyShardsOptionResolution pins the executor-selection rules:
// Shards=1 must hand back the shared-engine Campaign itself, Shards>1 a
// ParallelCampaign, and the resolved fleet is cached.
func TestStudyShardsOptionResolution(t *testing.T) {
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(0.15)
	seq, err := New(cfg, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Fleet() != interface{}(seq.Camp) {
		t.Errorf("Shards=1: Fleet() is not the shared-engine Campaign")
	}
	par, err := New(cfg, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	fl := par.Fleet()
	if fl == interface{}(par.Camp) {
		t.Errorf("Shards=2: Fleet() fell back to the shared-engine Campaign")
	}
	if fl != par.Fleet() {
		t.Errorf("Fleet() not cached across calls")
	}
}
