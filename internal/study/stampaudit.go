package study

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net/netip"

	"recordroute/internal/analysis"
	"recordroute/internal/measure"
	"recordroute/internal/probe"
	"recordroute/internal/topology"
)

// StampAuditResult is the §3.5 experiment: compare traceroute-derived
// and RR-derived AS paths to find ASes that forward options packets
// without stamping them.
type StampAuditResult struct {
	Audit *analysis.StampAudit
	// PairsCompared counts (VP, destination) measurement pairs.
	PairsCompared int
	// PerVPCap notes the per-VP destination cap applied.
	PerVPCap int
}

// RunStampAudit traceroutes, from each M-Lab VP, up to perVPCap of that
// VP's RR-reachable destinations (chosen at random like the paper's
// 10,000), then aligns the AS paths.
func (s *Study) RunStampAudit(r *Responsiveness, perVPCap int) *StampAuditResult {
	if perVPCap <= 0 {
		perVPCap = 500
	}
	rng := rand.New(rand.NewPCG(s.Opts.ShuffleSeed^0x5a5a, 0x3c3c))

	// Index this VP's RR results by destination for pairing.
	rrByVPDst := make(map[string]map[netip.Addr]probe.Result)
	for vp, rs := range r.PerVP {
		m := make(map[netip.Addr]probe.Result)
		for _, res := range rs {
			m[res.Dst] = res
		}
		rrByVPDst[vp] = m
	}

	// Choose each M-Lab VP's reachable destinations.
	perVP := make(map[string][]netip.Addr)
	for _, name := range s.vpNamesOfKind(topology.MLab) {
		var mine []netip.Addr
		for _, d := range r.Dests {
			st := r.Stats[d]
			if st == nil {
				continue
			}
			if slot, ok := st.SlotsByVP[name]; ok && slot > 0 {
				mine = append(mine, d)
			}
		}
		rng.Shuffle(len(mine), func(i, j int) { mine[i], mine[j] = mine[j], mine[i] })
		if len(mine) > perVPCap {
			mine = mine[:perVPCap]
		}
		perVP[name] = mine
	}

	traces := s.Camp.TracerouteAll(perVP, measure.TraceOptions{
		StartRate: s.Opts.rate(),
		Timeout:   s.Opts.timeout(),
	})

	var pairs []analysis.TraceRRPair
	for vp, ts := range traces {
		for _, tr := range ts {
			rrRes, ok := rrByVPDst[vp][tr.Dst]
			if !ok || !rrRes.HasRR {
				continue
			}
			pairs = append(pairs, analysis.TraceRRPair{
				Dst:       tr.Dst,
				TraceHops: tr.HopAddrs(),
				RRHops:    rrRes.RR,
			})
		}
	}
	return &StampAuditResult{
		Audit:         analysis.AuditStamping(pairs, s.Topo.ASNOf),
		PairsCompared: len(pairs),
		PerVPCap:      perVPCap,
	}
}

// Render prints the audit in the paper's terms.
func (sa *StampAuditResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== §3.5: do ASes refuse to stamp packets? ==")
	total := len(sa.Audit.PerAS)
	fmt.Fprintf(w, "measurement pairs compared: %d (per-VP cap %d)\n", sa.PairsCompared, sa.PerVPCap)
	fmt.Fprintf(w, "ASes observed in traceroutes: %d (paper: 7,185)\n", total)
	fmt.Fprintf(w, "  always also in RR:    %d (paper: 7,040)\n", len(sa.Audit.Always))
	fmt.Fprintf(w, "  sometimes missing:    %d (paper: 143)\n", len(sa.Audit.Sometimes))
	fmt.Fprintf(w, "  never in RR:          %d (paper: 2)\n", len(sa.Audit.Never))
	if len(sa.Audit.Never) > 0 {
		fmt.Fprintf(w, "  suspected AS-wide no-stamp policies: %v\n", sa.Audit.Never)
	}
}
