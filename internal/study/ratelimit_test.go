package study

import (
	"math"
	"testing"
)

// TestDropFracEdgeCases pins DropFrac's explicit edge-case handling:
// the naive 1 - At100/At10 ratio used to report 0% for a VP with no
// baseline (At10 == 0) via the division guard, and let response gains
// (At100 > At10) flow through as negative drops — either of which can
// misclassify VPs around the >25% drastic-drop threshold.
func TestDropFracEdgeCases(t *testing.T) {
	cases := []struct {
		name        string
		at10, at100 int
		want        float64
		drastic     bool
	}{
		{"silent-both", 0, 0, 0, false},
		{"zero-baseline-gain", 0, 40, 0, false},
		{"negative-counts", -1, -5, 0, false},
		{"equal", 50, 50, 0, false},
		{"gain-clamped", 40, 60, 0, false},
		{"mild-drop", 100, 90, 0.1, false},
		{"threshold-exact", 100, 75, 0.25, false},
		{"drastic", 100, 60, 0.4, true},
		{"total-drop", 80, 0, 1, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v := &RateLimitVP{At10: c.at10, At100: c.at100}
			got := v.DropFrac()
			if math.Abs(got-c.want) > 1e-12 {
				t.Errorf("DropFrac(At10=%d, At100=%d) = %v, want %v", c.at10, c.at100, got, c.want)
			}
			if got < 0 || got > 1 {
				t.Errorf("DropFrac out of [0,1]: %v", got)
			}
			if (got > 0.25) != c.drastic {
				t.Errorf("drastic classification = %v, want %v", got > 0.25, c.drastic)
			}
		})
	}
}
