// Package core defines the paper's primary contribution as an
// operational artifact: the §3.1 measurement methodology that decides,
// from raw probe results, whether a destination is ping-responsive,
// RR-responsive, RR-reachable, and usable for reverse-path measurement.
// Every higher layer (analysis aggregation, the study harness, the
// public facade) applies these rules; this package is their single
// authoritative statement.
package core

import (
	"fmt"
	"net/netip"

	"recordroute/internal/probe"
)

// The Record Route option's structural limits (RFC 791), which the
// paper's methodology revolves around.
const (
	// NineHopLimit is the option's slot capacity: a destination farther
	// than nine stamping hops from every vantage point cannot appear in
	// any RR header.
	NineHopLimit = 9
	// ReversePathLimit is the slot budget left for the destination's
	// own stamp while still recording at least one reverse hop — the
	// §3.3 criterion for measuring reverse paths (Reverse Traceroute).
	ReversePathLimit = 8
)

// Class is a destination's §3.1 classification.
type Class int

const (
	// Unresponsive answered nothing.
	Unresponsive Class = iota
	// PingResponsive answered a plain ping but no ping-RR.
	PingResponsive
	// RRResponsive answered a ping-RR with the option copied into the
	// reply, but never appeared within the nine slots.
	RRResponsive
	// RRReachable appeared in an RR header within nine slots of some
	// vantage point.
	RRReachable
	// ReverseMeasurable appeared within eight slots: its reverse path
	// toward a vantage point is measurable.
	ReverseMeasurable
)

// String names the classification.
func (c Class) String() string {
	switch c {
	case Unresponsive:
		return "unresponsive"
	case PingResponsive:
		return "ping-responsive"
	case RRResponsive:
		return "rr-responsive"
	case RRReachable:
		return "rr-reachable"
	case ReverseMeasurable:
		return "reverse-measurable"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// AtLeast reports whether c satisfies the threshold class q (the
// classes are ordered: each level implies the previous ones, except
// that ping- and RR-responsiveness are measured by different probes;
// per §3.2, 75% of ping-responsive destinations are also RR-responsive).
func (c Class) AtLeast(q Class) bool { return c >= q }

// Verdict is a destination's full classification with its evidence.
type Verdict struct {
	Dst   netip.Addr
	Class Class
	// BestSlot is the smallest 1-based RR slot the destination (or a
	// known alias) occupied across all results; 0 when never recorded.
	BestSlot int
	// FalseNegativeSignal marks responses whose option had free slots
	// yet no destination stamp — the §3.3 signature worth re-testing
	// with alias resolution or ping-RRudp.
	FalseNegativeSignal bool
}

// Classify applies the §3.1 rules to one destination's probe results
// (any mix of plain pings, ping-RRs, and ping-RRudps from any number of
// vantage points). aliasOf maps addresses to their alias-set
// representative; nil means no alias knowledge.
func Classify(dst netip.Addr, results []probe.Result, aliasOf func(netip.Addr) netip.Addr) Verdict {
	if aliasOf == nil {
		aliasOf = func(a netip.Addr) netip.Addr { return a }
	}
	v := Verdict{Dst: dst}
	canon := aliasOf(dst)

	pingResp, rrResp := false, false
	for _, r := range results {
		if aliasOf(r.Dst) != canon {
			continue
		}
		switch r.Kind {
		case probe.Ping, probe.TTLPing:
			if r.Type == probe.EchoReply {
				pingResp = true
			}
		case probe.PingRR, probe.TTLPingRR:
			if r.Type != probe.EchoReply {
				continue
			}
			// Replying to a ping implies ping-responsiveness even when
			// the probe carried an option.
			pingResp = true
			if !r.HasRR {
				continue // option stripped from the reply: not RR-responsive
			}
			rrResp = true
			slot := destSlot(r, canon, aliasOf)
			if slot == 0 && r.RRSlotsRemaining() > 0 {
				v.FalseNegativeSignal = true
			}
			if slot > 0 && (v.BestSlot == 0 || slot < v.BestSlot) {
				v.BestSlot = slot
			}
		case probe.PingRRUDP:
			// A port-unreachable whose quoted option still had room
			// proves arrival within the slot limit (§3.3): credit the
			// slot the destination's stamp would have taken.
			if r.Type != probe.PortUnreachable || !r.HasRR || r.RRSlotsRemaining() <= 0 {
				continue
			}
			if slot := len(r.RR) + 1; v.BestSlot == 0 || slot < v.BestSlot {
				v.BestSlot = slot
			}
		}
	}

	switch {
	case v.BestSlot > 0 && v.BestSlot <= ReversePathLimit:
		v.Class = ReverseMeasurable
	case v.BestSlot > 0 && v.BestSlot <= NineHopLimit:
		v.Class = RRReachable
	case rrResp:
		v.Class = RRResponsive
	case pingResp:
		v.Class = PingResponsive
	default:
		v.Class = Unresponsive
	}
	return v
}

// destSlot returns the 1-based slot where the destination (or an alias)
// was recorded, or 0.
func destSlot(r probe.Result, canon netip.Addr, aliasOf func(netip.Addr) netip.Addr) int {
	for i, h := range r.RR {
		if aliasOf(h) == canon {
			return i + 1
		}
	}
	return 0
}
