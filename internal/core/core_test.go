package core

import (
	"net/netip"
	"testing"

	"recordroute/internal/probe"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

func rrReply(dst string, total int, hops ...string) probe.Result {
	r := probe.Result{
		Spec:         probe.Spec{Dst: a(dst), Kind: probe.PingRR},
		Type:         probe.EchoReply,
		HasRR:        true,
		RRTotalSlots: total,
	}
	for _, h := range hops {
		r.RR = append(r.RR, a(h))
	}
	return r
}

func TestClassifyLadder(t *testing.T) {
	dst := "100.1.0.1"
	cases := []struct {
		name    string
		results []probe.Result
		want    Class
		slot    int
	}{
		{"nothing", nil, Unresponsive, 0},
		{"timeouts only", []probe.Result{
			{Spec: probe.Spec{Dst: a(dst), Kind: probe.Ping}, Type: probe.NoResponse},
		}, Unresponsive, 0},
		{"ping only", []probe.Result{
			{Spec: probe.Spec{Dst: a(dst), Kind: probe.Ping}, Type: probe.EchoReply},
		}, PingResponsive, 0},
		{"rr reply without option", []probe.Result{
			{Spec: probe.Spec{Dst: a(dst), Kind: probe.PingRR}, Type: probe.EchoReply},
		}, PingResponsive, 0},
		{"rr responsive, option full, unstamped", []probe.Result{
			rrReply(dst, 2, "9.0.0.1", "9.0.0.2"),
		}, RRResponsive, 0},
		{"reachable at slot 9", []probe.Result{
			rrReply(dst, 9, "1.0.0.1", "1.0.0.2", "1.0.0.3", "1.0.0.4",
				"1.0.0.5", "1.0.0.6", "1.0.0.7", "1.0.0.8", dst),
		}, RRReachable, 9},
		{"reverse-measurable at slot 3", []probe.Result{
			rrReply(dst, 9, "1.0.0.1", "1.0.0.2", dst),
		}, ReverseMeasurable, 3},
		{"best slot across vantage points", []probe.Result{
			rrReply(dst, 9, "1.0.0.1", "1.0.0.2", "1.0.0.3", "1.0.0.4",
				"1.0.0.5", "1.0.0.6", "1.0.0.7", "1.0.0.8", dst),
			rrReply(dst, 9, "2.0.0.1", dst),
		}, ReverseMeasurable, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := Classify(a(dst), tc.results, nil)
			if v.Class != tc.want || v.BestSlot != tc.slot {
				t.Errorf("got %v slot %d, want %v slot %d", v.Class, v.BestSlot, tc.want, tc.slot)
			}
		})
	}
}

func TestClassifyFalseNegativeSignal(t *testing.T) {
	dst := "100.1.0.1"
	v := Classify(a(dst), []probe.Result{rrReply(dst, 9, "9.0.0.1", "9.0.0.2")}, nil)
	if v.Class != RRResponsive || !v.FalseNegativeSignal {
		t.Errorf("verdict = %+v, want RR-responsive with false-negative signal", v)
	}
}

func TestClassifyAliasUpgrade(t *testing.T) {
	dst, alias := "100.1.0.1", "100.1.0.129"
	aliasOf := func(x netip.Addr) netip.Addr {
		if x == a(alias) {
			return a(dst)
		}
		return x
	}
	results := []probe.Result{rrReply(dst, 9, "9.0.0.1", alias)}
	if v := Classify(a(dst), results, nil); v.Class != RRResponsive {
		t.Fatalf("without aliases: %v", v.Class)
	}
	v := Classify(a(dst), results, aliasOf)
	if v.Class != ReverseMeasurable || v.BestSlot != 2 {
		t.Errorf("with aliases: %+v", v)
	}
}

func TestClassifyRRUDPUpgrade(t *testing.T) {
	dst := "100.1.0.1"
	results := []probe.Result{
		rrReply(dst, 9, "9.0.0.1", "9.0.0.2"), // responsive, never stamped
		{
			Spec:         probe.Spec{Dst: a(dst), Kind: probe.PingRRUDP},
			Type:         probe.PortUnreachable,
			HasRR:        true,
			QuotedRR:     true,
			RR:           []netip.Addr{a("9.0.0.1"), a("9.0.0.2")},
			RRTotalSlots: 9,
		},
	}
	v := Classify(a(dst), results, nil)
	if v.Class != ReverseMeasurable || v.BestSlot != 3 {
		t.Errorf("verdict = %+v, want reverse-measurable at slot 3", v)
	}
}

func TestClassifyIgnoresOtherDestinations(t *testing.T) {
	v := Classify(a("100.1.0.1"), []probe.Result{rrReply("100.2.0.1", 9, "9.0.0.1", "100.2.0.1")}, nil)
	if v.Class != Unresponsive {
		t.Errorf("foreign results classified: %v", v.Class)
	}
}

func TestClassOrderingAndStrings(t *testing.T) {
	order := []Class{Unresponsive, PingResponsive, RRResponsive, RRReachable, ReverseMeasurable}
	for i := 1; i < len(order); i++ {
		if !order[i].AtLeast(order[i-1]) {
			t.Errorf("%v not at least %v", order[i], order[i-1])
		}
		if order[i-1].AtLeast(order[i]) {
			t.Errorf("%v wrongly at least %v", order[i-1], order[i])
		}
	}
	for _, c := range order {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}
