package trace

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
)

var updateCorpus = flag.Bool("updatecorpus", false, "rewrite the committed seed corpus under testdata/fuzz")

// codecSeeds builds the committed seed corpus: valid serializations of
// sets the campaign actually produces (empty, single-entry, multi-
// prefix) plus near-valid mutants that exercise each strict-decode
// rejection.
func codecSeeds() [][]byte {
	rng := rand.New(rand.NewPCG(11, 13))
	var seeds [][]byte
	add := func(g *GlobalSet) {
		b, err := g.MarshalBinary()
		if err != nil {
			panic(err)
		}
		seeds = append(seeds, b)
	}
	add(NewGlobalSet())
	one := NewGlobalSet()
	one.Add(Key{Iface: mustAddr("10.0.0.1"), Prefix: mustPrefix("192.0.2.0/24")}, 4)
	add(one)
	add(randomSet(rng, 8))
	add(randomSet(rng, 64))

	// Mutants: each trips one strict-decode check.
	base, _ := one.MarshalBinary()
	mutate := func(f func(b []byte)) {
		b := append([]byte(nil), base...)
		f(b)
		seeds = append(seeds, b)
	}
	mutate(func(b []byte) { b[0] = 'X' })                // magic
	mutate(func(b []byte) { b[4] = 9 })                  // version
	mutate(func(b []byte) { b[codecHeader+4] = 33 })     // bits
	mutate(func(b []byte) { b[codecHeader+3] = 7 })      // unmasked
	seeds = append(seeds, base[:len(base)-1])            // truncated
	seeds = append(seeds, append([]byte(nil), 'r', 'r')) // short header
	return seeds
}

// TestUpdateCodecFuzzCorpus rewrites the committed seed corpus for
// FuzzStopSetCodec (run with -updatecorpus after changing the seed
// builders). The files use the standard `go test fuzz v1` encoding, so
// both plain `go test` runs and -fuzz campaigns pick them up.
func TestUpdateCodecFuzzCorpus(t *testing.T) {
	if !*updateCorpus {
		t.Skip("run with -updatecorpus to rewrite testdata/fuzz seeds")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzStopSetCodec")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range codecSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(s))
	}
}

// FuzzStopSetCodec pins the stop-set codec's two load-bearing
// properties: arbitrary bytes never panic the decoder (the bytes cross
// shard-merge and journal-resume boundaries), and anything it accepts
// is canonical — re-encoding reproduces the input byte for byte.
func FuzzStopSetCodec(f *testing.F) {
	for _, s := range codecSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := UnmarshalGlobalSet(data)
		if err != nil {
			return
		}
		out, err := g.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded set failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode∘encode not identity:\n in  %x\n out %x", data, out)
		}
	})
}
