package trace

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// The global stop set crosses two serialization boundaries: shard
// deltas are handed to the merge step as codec bytes (so the merge
// only ever consumes canonical data, whatever engine produced it),
// and journaled campaigns checkpoint the merged set after each round
// so a resumed run can verify it reconverged byte-for-byte. The
// format is deliberately rigid — sorted entries, exact length, no
// varints — so that equal sets always serialize to equal bytes.
//
//	magic "rrSS" | version 1 | count uint32 | count × entry
//	entry: prefixAddr [4]byte | prefixBits byte | iface [4]byte | rem byte
const (
	codecMagic   = "rrSS"
	codecVersion = 1
	codecHeader  = 4 + 1 + 4
	codecEntry   = 4 + 1 + 4 + 1
)

// MarshalBinary serializes the set canonically: header then entries
// in Keys() order. Only IPv4 addresses are representable — the
// simulated Internet is IPv4 — so any other address is an error.
func (g *GlobalSet) MarshalBinary() ([]byte, error) {
	keys := g.Keys()
	out := make([]byte, 0, codecHeader+len(keys)*codecEntry)
	out = append(out, codecMagic...)
	out = append(out, codecVersion)
	out = binary.BigEndian.AppendUint32(out, uint32(len(keys)))
	for _, k := range keys {
		if !k.Prefix.Addr().Is4() || !k.Iface.Is4() {
			return nil, fmt.Errorf("trace: non-IPv4 stop-set key %v/%v", k.Iface, k.Prefix)
		}
		pa := k.Prefix.Addr().As4()
		ia := k.Iface.As4()
		out = append(out, pa[:]...)
		out = append(out, byte(k.Prefix.Bits()))
		out = append(out, ia[:]...)
		out = append(out, g.m[k])
	}
	return out, nil
}

// UnmarshalGlobalSet parses codec bytes back into a set. It is
// strict: bad magic or version, truncated or trailing bytes, invalid
// prefix lengths, duplicate or out-of-order entries are all errors —
// accepting only canonical input keeps decode∘encode the identity,
// the property the fuzz target pins.
func UnmarshalGlobalSet(data []byte) (*GlobalSet, error) {
	if len(data) < codecHeader {
		return nil, fmt.Errorf("trace: stop-set codec: %d bytes, want at least %d", len(data), codecHeader)
	}
	if string(data[:4]) != codecMagic {
		return nil, fmt.Errorf("trace: stop-set codec: bad magic %q", data[:4])
	}
	if data[4] != codecVersion {
		return nil, fmt.Errorf("trace: stop-set codec: version %d, want %d", data[4], codecVersion)
	}
	count := binary.BigEndian.Uint32(data[5:9])
	if got, want := len(data)-codecHeader, int(count)*codecEntry; got != want {
		return nil, fmt.Errorf("trace: stop-set codec: %d entry bytes for %d entries (want %d)", got, count, want)
	}
	g := NewGlobalSet()
	var prev Key
	for i := 0; i < int(count); i++ {
		e := data[codecHeader+i*codecEntry:]
		bits := int(e[4])
		if bits > 32 {
			return nil, fmt.Errorf("trace: stop-set codec: entry %d: prefix length %d", i, bits)
		}
		k := Key{
			Iface:  netip.AddrFrom4([4]byte(e[5:9])),
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte(e[0:4])), bits),
		}
		if k.Prefix.Masked() != k.Prefix {
			return nil, fmt.Errorf("trace: stop-set codec: entry %d: unmasked prefix %v", i, k.Prefix)
		}
		if i > 0 && !keyLess(prev, k) {
			return nil, fmt.Errorf("trace: stop-set codec: entry %d out of canonical order", i)
		}
		g.m[k] = e[9]
		prev = k
	}
	return g, nil
}
