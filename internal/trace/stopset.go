// Package trace implements a Doubletree-style traceroute engine
// ("Efficient Route Tracing from a Single Source", Donnet et al.) on
// top of the probe layer's TTL-limited pings. Each vantage point
// probes forward from a midpoint TTL toward the destination and
// backward from the midpoint toward itself; a per-VP *local* stop set
// (interfaces this VP already discovered) halts the backward phase,
// and a *global* stop set of destination-side (interface, dst-prefix)
// pairs — shared across all VPs and merged across campaign shards —
// halts the forward phase, eliminating the bulk of the redundant
// probes a naive full traceroute of every (VP, destination) pair
// would send.
//
// Determinism contract (DESIGN.md §14): within one probing round the
// global set is a frozen snapshot; each VP accumulates its
// discoveries into a private delta, and deltas are unioned between
// rounds with a min-merge on remaining-hop values. Union-with-min is
// commutative and associative, so the merged set — and therefore
// every later round's probing decisions — is byte-identical no matter
// how VPs are partitioned across shards.
package trace

import (
	"net/netip"
	"sort"
)

// LocalSet is one vantage point's stop set: every router interface
// the VP has discovered in earlier traces. Backward probing halts
// when it reaches an interface already in the set — the path below it
// was (modulo route changes) covered by the trace that discovered it.
type LocalSet struct {
	m map[netip.Addr]struct{}
}

// NewLocalSet returns an empty local stop set.
func NewLocalSet() *LocalSet {
	return &LocalSet{m: make(map[netip.Addr]struct{})}
}

// Has reports whether the interface is already in the set.
func (s *LocalSet) Has(a netip.Addr) bool {
	_, ok := s.m[a]
	return ok
}

// Add inserts an interface, reporting whether it was new.
func (s *LocalSet) Add(a netip.Addr) bool {
	if _, ok := s.m[a]; ok {
		return false
	}
	s.m[a] = struct{}{}
	return true
}

// Len returns the number of interfaces in the set.
func (s *LocalSet) Len() int { return len(s.m) }

// Addrs returns the interfaces in sorted order.
func (s *LocalSet) Addrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(s.m))
	for a := range s.m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Key is one global stop-set entry's identity: a router interface on
// the destination side of some path, qualified by the destination
// prefix it was observed en route to. Qualifying by prefix keeps the
// stop condition sound — an interface stops a trace only toward
// destinations whose tail it is actually known to lead to.
type Key struct {
	Iface  netip.Addr
	Prefix netip.Prefix
}

// GlobalSet is the destination-side stop set shared by every VP: for
// each (interface, dst-prefix) pair, the smallest observed number of
// remaining hops from that interface to the prefix's representative
// destination. Forward probing halts on a hit, crediting the
// remaining hops as saved probes and inferring the destination's hop
// distance without probing it.
type GlobalSet struct {
	m map[Key]uint8
}

// NewGlobalSet returns an empty global stop set.
func NewGlobalSet() *GlobalSet {
	return &GlobalSet{m: make(map[Key]uint8)}
}

// Lookup returns the remaining-hop count recorded for the pair.
func (g *GlobalSet) Lookup(iface netip.Addr, prefix netip.Prefix) (rem uint8, ok bool) {
	rem, ok = g.m[Key{Iface: iface, Prefix: prefix}]
	return rem, ok
}

// Add records a pair, keeping the minimum remaining-hop value on
// conflict. Min-merge makes Union order-independent: the merged set
// is the same whatever order deltas arrive in, which is what lets
// sharded campaigns merge per-shard deltas deterministically.
func (g *GlobalSet) Add(k Key, rem uint8) {
	if old, ok := g.m[k]; !ok || rem < old {
		g.m[k] = rem
	}
}

// Union merges other into g with Add's min-merge semantics.
func (g *GlobalSet) Union(other *GlobalSet) {
	if other == nil {
		return
	}
	for k, rem := range other.m {
		g.Add(k, rem)
	}
}

// Len returns the number of (interface, prefix) entries.
func (g *GlobalSet) Len() int { return len(g.m) }

// Keys returns the entries in the codec's canonical order: by prefix
// address, then prefix length, then interface address.
func (g *GlobalSet) Keys() []Key {
	out := make([]Key, 0, len(g.m))
	for k := range g.m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i], out[j]) })
	return out
}

// keyLess orders keys canonically.
func keyLess(a, b Key) bool {
	if a.Prefix.Addr() != b.Prefix.Addr() {
		return a.Prefix.Addr().Less(b.Prefix.Addr())
	}
	if a.Prefix.Bits() != b.Prefix.Bits() {
		return a.Prefix.Bits() < b.Prefix.Bits()
	}
	return a.Iface.Less(b.Iface)
}

// Equal reports whether two sets hold identical entries and values.
func (g *GlobalSet) Equal(other *GlobalSet) bool {
	if len(g.m) != len(other.m) {
		return false
	}
	for k, rem := range g.m {
		if o, ok := other.m[k]; !ok || o != rem {
			return false
		}
	}
	return true
}
