package trace

import (
	"net/netip"
	"testing"
	"time"

	"recordroute/internal/probe"
	"recordroute/internal/topology"
)

// testbed builds a small generated Internet and a prober on an
// unfiltered M-Lab vantage point, mirroring internal/probe's harness.
func testbed(t *testing.T) (*topology.Topology, *probe.Prober, *topology.VP) {
	t.Helper()
	topo := topology.MustBuild(topology.DefaultConfig(topology.Epoch2016).Scale(0.15))
	var vp *topology.VP
	for _, v := range topo.VPs {
		if !v.SourceRateLimited && !topo.ASes[v.ASIdx].FilterOptions {
			vp = v
			break
		}
	}
	if vp == nil {
		t.Fatal("no unlimited VP")
	}
	p := probe.New(probe.NewSimTransport(vp.Host, topo.Net.Engine()), 0x7b01)
	return topo, p, vp
}

// pickDests returns up to n ground-truth fully-responsive destinations.
func pickDests(topo *topology.Topology, n int) []netip.Addr {
	var out []netip.Addr
	for _, d := range topo.Dests {
		if d.GTPingResponsive && !d.GTRRDrop && !d.GTNoHonorRR && !d.GTAlias.IsValid() &&
			!topo.ASes[d.ASIdx].FilterOptions {
			out = append(out, d.Addr)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

func prefix24(a netip.Addr) netip.Prefix {
	p, _ := a.Prefix(24)
	return p
}

// runRound drives one Run call to completion on the testbed engine.
func runRound(t *testing.T, topo *topology.Topology, p *probe.Prober, st *VPState, global *GlobalSet, dsts []netip.Addr, opts Options) *VPRound {
	t.Helper()
	var round *VPRound
	Run("vp", p, st, global, prefix24, dsts, opts, func(r *VPRound) { round = r })
	topo.Net.Engine().Run()
	if round == nil {
		t.Fatal("round never completed")
	}
	return round
}

func TestRunEmptyDests(t *testing.T) {
	topo, p, _ := testbed(t)
	round := runRound(t, topo, p, NewVPState(), NewGlobalSet(), nil, Options{Timeout: time.Second})
	if round.Stats.Traces != 0 || round.Delta.Len() != 0 {
		t.Errorf("empty round traced: %+v", round.Stats)
	}
}

func TestExhaustiveTraceReachesDest(t *testing.T) {
	topo, p, _ := testbed(t)
	dsts := pickDests(topo, 5)
	if len(dsts) < 5 {
		t.Fatalf("only %d responsive dests", len(dsts))
	}
	round := runRound(t, topo, p, NewVPState(), NewGlobalSet(), dsts, Options{Timeout: time.Second, Exhaustive: true})
	if round.Stats.Traces != len(dsts) {
		t.Fatalf("traces = %d, want %d", round.Stats.Traces, len(dsts))
	}
	for _, res := range round.Traces {
		if !res.Reached || res.DestTTL == 0 {
			t.Errorf("dst %v: Reached=%v DestTTL=%d", res.Dst, res.Reached, res.DestTTL)
		}
		if res.FwdProbes != len(res.Hops) {
			t.Errorf("dst %v: exhaustive trace has a backward phase (%d/%d)", res.Dst, res.FwdProbes, len(res.Hops))
		}
		for i, h := range res.Hops {
			if int(h.TTL) != i+1 {
				t.Errorf("dst %v: hop %d probed at TTL %d", res.Dst, i, h.TTL)
			}
		}
		if last := res.Hops[len(res.Hops)-1]; !last.Final || last.TTL != res.DestTTL {
			t.Errorf("dst %v: last hop %+v, want final at DestTTL %d", res.Dst, last, res.DestTTL)
		}
	}
	// Exhaustive mode must not leak into the stop sets.
	if round.Delta.Len() != 0 {
		t.Errorf("exhaustive round produced a delta of %d entries", round.Delta.Len())
	}
}

// TestDoubletreeMatchesExhaustiveDestTTL pins that doubletree probing
// measures the same destination distances as classic traceroute.
func TestDoubletreeMatchesExhaustiveDestTTL(t *testing.T) {
	topo, p, _ := testbed(t)
	dsts := pickDests(topo, 8)
	want := make(map[netip.Addr]uint8)
	ex := runRound(t, topo, p, NewVPState(), NewGlobalSet(), dsts, Options{Timeout: time.Second, Exhaustive: true})
	for _, res := range ex.Traces {
		want[res.Dst] = res.DestTTL
	}
	dt := runRound(t, topo, p, NewVPState(), NewGlobalSet(), dsts, Options{Timeout: time.Second})
	for _, res := range dt.Traces {
		if !res.Reached {
			t.Errorf("dst %v: doubletree did not reach", res.Dst)
			continue
		}
		if res.DestTTL != want[res.Dst] {
			t.Errorf("dst %v: doubletree DestTTL %d, exhaustive %d", res.Dst, res.DestTTL, want[res.Dst])
		}
	}
	if dt.Delta.Len() == 0 {
		t.Error("doubletree round produced no global-set delta")
	}
	if dt.Stats.Probes >= ex.Stats.Probes {
		t.Errorf("doubletree spent %d probes, naive %d — no saving", dt.Stats.Probes, ex.Stats.Probes)
	}
}

// TestGlobalStopHaltsForwardPhase seeds the global set from one
// exhaustive trace and checks a retrace stops on it, inferring the
// destination's distance without probing it.
func TestGlobalStopHaltsForwardPhase(t *testing.T) {
	topo, p, _ := testbed(t)
	dsts := pickDests(topo, 1)
	ex := runRound(t, topo, p, NewVPState(), NewGlobalSet(), dsts, Options{Timeout: time.Second, Exhaustive: true})
	res := ex.Traces[0]
	if !res.Reached || res.DestTTL < 4 {
		t.Skipf("destination too close for a midpoint test: %+v", res)
	}
	global := NewGlobalSet()
	for _, h := range res.Hops {
		if h.Responded() && !h.Final {
			global.Add(Key{Iface: h.Addr, Prefix: prefix24(res.Dst)}, res.DestTTL-h.TTL)
		}
	}
	dt := runRound(t, topo, p, NewVPState(), global, dsts,
		Options{Timeout: time.Second, FirstHop: res.DestTTL / 2})
	got := dt.Traces[0]
	if !got.GlobalStop || !got.Inferred {
		t.Fatalf("retrace did not global-stop: %+v", got)
	}
	if got.DestTTL != res.DestTTL {
		t.Errorf("inferred DestTTL %d, measured %d", got.DestTTL, res.DestTTL)
	}
	if got.FwdProbes != 1 {
		t.Errorf("forward phase took %d probes, want 1 (stop on first hit)", got.FwdProbes)
	}
	if dt.Stats.Saved == 0 {
		t.Error("global stop credited no saved probes")
	}
}

// TestLocalStopHaltsBackwardPhase checks that once a VP's local set
// holds its near-side path, later backward phases stop on it.
func TestLocalStopHaltsBackwardPhase(t *testing.T) {
	topo, p, _ := testbed(t)
	dsts := pickDests(topo, 12)
	if len(dsts) < 6 {
		t.Fatalf("only %d responsive dests", len(dsts))
	}
	st := NewVPState()
	round := runRound(t, topo, p, st, NewGlobalSet(), dsts, Options{Timeout: time.Second})
	if round.Stats.LocalStops == 0 {
		t.Error("no backward probe ever hit the local set")
	}
	if st.Local.Len() == 0 {
		t.Error("local set still empty after a full round")
	}
}

// TestRebuildMatchesLive pins the journal-replay contract: rebuilding
// a round from its archived traces reproduces the live delta, stats,
// and local set exactly.
func TestRebuildMatchesLive(t *testing.T) {
	topo, p, _ := testbed(t)
	dsts := pickDests(topo, 10)
	liveState := NewVPState()
	live := runRound(t, topo, p, liveState, NewGlobalSet(), dsts, Options{Timeout: time.Second})

	replayState := NewVPState()
	replay := Rebuild("vp", replayState, prefix24, live.Traces, Options{Timeout: time.Second})
	if replay.Stats != live.Stats {
		t.Errorf("replayed stats %+v != live %+v", replay.Stats, live.Stats)
	}
	if !replay.Delta.Equal(live.Delta) {
		t.Error("replayed delta differs from live delta")
	}
	la, ra := liveState.Local.Addrs(), replayState.Local.Addrs()
	if len(la) != len(ra) {
		t.Fatalf("local sets differ: %d vs %d", len(la), len(ra))
	}
	for i := range la {
		if la[i] != ra[i] {
			t.Fatalf("local sets differ at %d: %v vs %v", i, la[i], ra[i])
		}
	}
	if replayState.midTTL(Options{}) != liveState.midTTL(Options{}) {
		t.Error("replayed midpoint adaptation differs from live")
	}
}

// TestRROptionKind checks the RR mode sends TTLPingRR probes.
func TestRROptionKind(t *testing.T) {
	if (Options{RR: true}).kind() != probe.TTLPingRR {
		t.Error("RR mode does not select TTLPingRR")
	}
	if (Options{}).kind() != probe.TTLPing {
		t.Error("default mode does not select TTLPing")
	}
}
