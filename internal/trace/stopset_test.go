package trace

import (
	"bytes"
	"math/rand/v2"
	"net/netip"
	"testing"
)

func mustAddr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestLocalSet(t *testing.T) {
	s := NewLocalSet()
	a, b := mustAddr("10.0.0.2"), mustAddr("10.0.0.1")
	if s.Has(a) {
		t.Error("empty set Has = true")
	}
	if !s.Add(a) {
		t.Error("first Add = false")
	}
	if s.Add(a) {
		t.Error("duplicate Add = true")
	}
	s.Add(b)
	if !s.Has(a) || !s.Has(b) || s.Len() != 2 {
		t.Errorf("Has/Len broken: %v", s.Addrs())
	}
	got := s.Addrs()
	if len(got) != 2 || got[0] != b || got[1] != a {
		t.Errorf("Addrs = %v, want sorted [%v %v]", got, b, a)
	}
}

func TestGlobalSetMinMerge(t *testing.T) {
	g := NewGlobalSet()
	k := Key{Iface: mustAddr("10.0.0.1"), Prefix: mustPrefix("192.0.2.0/24")}
	g.Add(k, 5)
	g.Add(k, 7) // larger must not overwrite
	if rem, ok := g.Lookup(k.Iface, k.Prefix); !ok || rem != 5 {
		t.Errorf("after min-merge rem = %d, %v; want 5, true", rem, ok)
	}
	g.Add(k, 3)
	if rem, _ := g.Lookup(k.Iface, k.Prefix); rem != 3 {
		t.Errorf("smaller rem not kept: %d", rem)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
}

// randomSet builds a deterministic pseudo-random global set.
func randomSet(rng *rand.Rand, n int) *GlobalSet {
	g := NewGlobalSet()
	for i := 0; i < n; i++ {
		iface := netip.AddrFrom4([4]byte{10, byte(rng.IntN(4)), byte(rng.IntN(256)), byte(rng.IntN(256))})
		pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{192, byte(rng.IntN(8)), byte(rng.IntN(256)), 0}), 24)
		g.Add(Key{Iface: iface, Prefix: pfx}, uint8(rng.IntN(30)))
	}
	return g
}

// TestUnionOrderIndependent pins the determinism contract's algebra:
// min-merge union commutes, so any merge order converges on the same
// set — the property that makes the shard merge shard-count-invariant.
func TestUnionOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	deltas := make([]*GlobalSet, 5)
	for i := range deltas {
		deltas[i] = randomSet(rng, 40)
	}
	fwd, rev := NewGlobalSet(), NewGlobalSet()
	for _, d := range deltas {
		fwd.Union(d)
	}
	for i := len(deltas) - 1; i >= 0; i-- {
		rev.Union(deltas[i])
	}
	if !fwd.Equal(rev) {
		t.Fatal("union order changed the merged set")
	}
	a, _ := fwd.MarshalBinary()
	b, _ := rev.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("equal sets serialized to different bytes")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{0, 1, 17, 300} {
		g := randomSet(rng, n)
		data, err := g.MarshalBinary()
		if err != nil {
			t.Fatalf("n=%d: marshal: %v", n, err)
		}
		back, err := UnmarshalGlobalSet(data)
		if err != nil {
			t.Fatalf("n=%d: unmarshal: %v", n, err)
		}
		if !g.Equal(back) {
			t.Fatalf("n=%d: round trip changed the set", n)
		}
		again, err := back.MarshalBinary()
		if err != nil || !bytes.Equal(data, again) {
			t.Fatalf("n=%d: re-encode not byte-identical (%v)", n, err)
		}
	}
}

func TestCodecMarshalRejectsNonIPv4(t *testing.T) {
	g := NewGlobalSet()
	g.Add(Key{Iface: mustAddr("2001:db8::1"), Prefix: mustPrefix("192.0.2.0/24")}, 1)
	if _, err := g.MarshalBinary(); err == nil {
		t.Fatal("IPv6 iface marshaled without error")
	}
}

func TestCodecStrictDecode(t *testing.T) {
	g := NewGlobalSet()
	g.Add(Key{Iface: mustAddr("10.0.0.1"), Prefix: mustPrefix("192.0.2.0/24")}, 4)
	g.Add(Key{Iface: mustAddr("10.0.0.2"), Prefix: mustPrefix("198.51.100.0/24")}, 2)
	good, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":      {},
		"short":      good[:codecHeader-1],
		"bad magic":  mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad ver":    mutate(func(b []byte) []byte { b[4] = 9; return b }),
		"truncated":  good[:len(good)-1],
		"trailing":   append(append([]byte(nil), good...), 0),
		"bits>32":    mutate(func(b []byte) []byte { b[codecHeader+4] = 33; return b }),
		"unmasked":   mutate(func(b []byte) []byte { b[codecHeader+3] = 7; return b }),
		"disordered": mutate(func(b []byte) []byte { b[codecHeader] = 250; return b }),
	}
	// Duplicate entries violate strict ordering too.
	dup := append([]byte(nil), good...)
	copy(dup[codecHeader+codecEntry:], good[codecHeader:codecHeader+codecEntry])
	cases["duplicate"] = dup

	for name, data := range cases {
		if _, err := UnmarshalGlobalSet(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestSessionPrefixOf(t *testing.T) {
	d := mustAddr("203.0.113.9")
	def := NewSession(nil)
	if got, want := def.PrefixOf(d), mustPrefix("203.0.113.0/24"); got != want {
		t.Errorf("nil prefixOf: %v, want %v", got, want)
	}
	custom := NewSession(func(netip.Addr) netip.Prefix { return mustPrefix("203.0.112.0/23") })
	if got, want := custom.PrefixOf(d), mustPrefix("203.0.112.0/23"); got != want {
		t.Errorf("custom prefixOf: %v, want %v", got, want)
	}
}

func TestSessionMergeThroughCodec(t *testing.T) {
	s := NewSession(nil)
	k := Key{Iface: mustAddr("10.0.0.1"), Prefix: mustPrefix("192.0.2.0/24")}
	d1, d2 := NewGlobalSet(), NewGlobalSet()
	d1.Add(k, 6)
	d2.Add(k, 4)
	if err := s.Merge(d1, nil, d2, NewGlobalSet()); err != nil {
		t.Fatal(err)
	}
	if rem, ok := s.Global.Lookup(k.Iface, k.Prefix); !ok || rem != 4 {
		t.Errorf("merged rem = %d, %v; want 4, true", rem, ok)
	}
	bad := NewGlobalSet()
	bad.Add(Key{Iface: mustAddr("2001:db8::1"), Prefix: mustPrefix("192.0.2.0/24")}, 1)
	if err := s.Merge(bad); err == nil {
		t.Error("merging an unserializable delta did not error")
	}
}

func TestMidTTL(t *testing.T) {
	st := NewVPState()
	opts := Options{FirstHop: 8}
	if got := st.midTTL(opts); got != 8 {
		t.Errorf("cold midTTL = %d, want FirstHop 8", got)
	}
	for _, ttl := range []uint8{4, 4, 10, 12, 12} {
		st.observeDestTTL(ttl)
	}
	if got := st.midTTL(opts); got != 10 {
		t.Errorf("median midTTL = %d, want 10", got)
	}
	// Distances beyond the histogram share the last bucket.
	big := NewVPState()
	for i := 0; i < 6; i++ {
		big.observeDestTTL(200)
	}
	if got := big.midTTL(opts); got != ttlHistSize-1 {
		t.Errorf("clamped midTTL = %d, want %d", got, ttlHistSize-1)
	}
}
