package trace

import "net/netip"

// ttlHistSize bounds the destination-distance histogram; distances at
// or beyond it share the last bucket (paths that long never steer the
// midpoint anyway).
const ttlHistSize = 64

// VPState is one vantage point's persistent probing state across
// rounds: its local stop set and the destination-distance histogram
// that adapts the forward phase's starting TTL. It must only be
// touched from the VP's own engine context (or the single-threaded
// journal replay), never shared between VPs.
type VPState struct {
	Local *LocalSet

	ttlHist [ttlHistSize]int
	ttlN    int
}

// NewVPState returns fresh per-VP state.
func NewVPState() *VPState {
	return &VPState{Local: NewLocalSet()}
}

// observeDestTTL records one measured or inferred destination
// distance for midpoint adaptation.
func (st *VPState) observeDestTTL(t uint8) {
	i := int(t)
	if i >= ttlHistSize {
		i = ttlHistSize - 1
	}
	st.ttlHist[i]++
	st.ttlN++
}

// midTTL picks the forward phase's starting TTL: the median of the
// destination distances this VP has observed, or Options.FirstHop
// until five samples exist. Starting near the middle of a typical
// path is what lets both stop sets bite — the global set ahead, the
// local set behind (Doubletree §2).
func (st *VPState) midTTL(opts Options) uint8 {
	if st.ttlN < 5 {
		return opts.firstHop()
	}
	half := (st.ttlN + 1) / 2
	cum := 0
	for t, n := range st.ttlHist {
		cum += n
		if cum >= half {
			if t < 1 {
				return 1
			}
			return uint8(t)
		}
	}
	return opts.firstHop()
}

// Session owns the cross-VP probing state of a multi-round campaign:
// the shared global stop set, the per-VP states, and the
// destination-to-prefix mapping global keys are qualified by.
//
// Concurrency contract: State must be called for every participating
// VP before a round is dispatched across shards (the campaign layer
// does this), so that during the round each shard only reads the map
// and mutates its own VPs' entries. The global set is frozen during a
// round — only Merge, called between rounds on one goroutine, may
// mutate it.
type Session struct {
	Global *GlobalSet

	prefixOf func(netip.Addr) netip.Prefix
	states   map[string]*VPState
}

// NewSession starts a session with an empty global set. prefixOf maps
// a destination to the prefix its global-set entries are keyed by;
// nil falls back to the destination's /24.
func NewSession(prefixOf func(netip.Addr) netip.Prefix) *Session {
	return &Session{
		Global:   NewGlobalSet(),
		prefixOf: prefixOf,
		states:   make(map[string]*VPState),
	}
}

// PrefixOf resolves a destination's stop-set prefix.
func (s *Session) PrefixOf(a netip.Addr) netip.Prefix {
	if s.prefixOf != nil {
		if p := s.prefixOf(a); p.IsValid() {
			return p.Masked()
		}
	}
	p, err := a.Prefix(24)
	if err != nil {
		return netip.PrefixFrom(a, a.BitLen())
	}
	return p
}

// State returns the named VP's state, creating it on first use. Not
// safe for concurrent creation — see the Session concurrency contract.
func (s *Session) State(vp string) *VPState {
	st, ok := s.states[vp]
	if !ok {
		st = NewVPState()
		s.states[vp] = st
	}
	return st
}

// Merge unions a round's per-VP deltas into the global set through
// the canonical codec: each delta is serialized and re-parsed before
// the union, so the merge consumes exactly the bytes a shard
// hand-off or journal checkpoint would carry. Min-merge union is
// order-independent, so the caller may pass deltas in any order and
// still converge on the same set (DESIGN.md §14).
func (s *Session) Merge(deltas ...*GlobalSet) error {
	for _, d := range deltas {
		if d == nil || d.Len() == 0 {
			continue
		}
		b, err := d.MarshalBinary()
		if err != nil {
			return err
		}
		parsed, err := UnmarshalGlobalSet(b)
		if err != nil {
			return err
		}
		s.Global.Union(parsed)
	}
	return nil
}
