package trace

import (
	"net/netip"
	"time"

	"recordroute/internal/probe"
)

// Options controls a traceroute round.
type Options struct {
	// MaxTTL bounds the probed hop count; 0 means 30.
	MaxTTL uint8
	// GapLimit ends a probing phase after this many consecutive
	// silent hops; 0 means 4.
	GapLimit int
	// Timeout is the per-probe wait; 0 means the prober default.
	Timeout time.Duration
	// FirstHop is the forward phase's starting TTL before the VP has
	// enough destination-distance samples to pick its own midpoint;
	// 0 means 6.
	FirstHop uint8
	// Exhaustive disables both stop sets and probes every destination
	// classically from TTL 1 — the naive arm doubletree is measured
	// against, and the mode path-comparison experiments use.
	Exhaustive bool
	// RR carries the record-route option on every probe (TTLPingRR
	// instead of TTLPing), so hop discovery doubles as RR stamping.
	RR bool
}

func (o Options) maxTTL() uint8 {
	if o.MaxTTL == 0 {
		return 30
	}
	return o.MaxTTL
}

func (o Options) gapLimit() int {
	if o.GapLimit == 0 {
		return 4
	}
	return o.GapLimit
}

func (o Options) firstHop() uint8 {
	if o.FirstHop == 0 {
		return 6
	}
	return o.FirstHop
}

func (o Options) kind() probe.Kind {
	if o.RR {
		return probe.TTLPingRR
	}
	return probe.TTLPing
}

// Hop is one probe of a trace, in probe order (forward phase first,
// then backward).
type Hop struct {
	// TTL is the probe's initial TTL.
	TTL uint8 `json:"ttl"`
	// Addr is the responding address; invalid on silence.
	Addr netip.Addr `json:"addr"`
	// RTT is the probe round-trip time (zero on silence).
	RTT time.Duration `json:"rtt"`
	// Final marks an echo reply from the destination itself.
	Final bool `json:"final,omitempty"`
}

// Responded reports whether this hop answered.
func (h Hop) Responded() bool { return h.Addr.IsValid() }

// Result is one completed (VP, destination) trace. It records enough
// to replay its effect on the stop sets deterministically (Rebuild),
// which is what lets journaled campaigns archive traces instead of
// stop-set state.
type Result struct {
	VP  string     `json:"vp"`
	Dst netip.Addr `json:"dst"`
	// Hops holds every probe sent, in probe order; Hops[:FwdProbes]
	// is the forward phase.
	Hops      []Hop `json:"hops"`
	FwdProbes int   `json:"fwd"`
	// Reached reports an echo reply from the destination; DestTTL is
	// its hop distance — measured when Reached, inferred from the
	// global set's remaining-hop value when Inferred, 0 when unknown.
	Reached  bool  `json:"reached,omitempty"`
	Inferred bool  `json:"inferred,omitempty"`
	DestTTL  uint8 `json:"dest_ttl,omitempty"`
	// GlobalStop marks a forward phase halted by a global-set hit;
	// LocalStop a backward phase halted by a local-set hit. Misses
	// counts forward responders consulted against the global set that
	// were absent from it.
	GlobalStop bool `json:"gstop,omitempty"`
	LocalStop  bool `json:"lstop,omitempty"`
	Misses     int  `json:"misses,omitempty"`
}

// ProbesSent is the number of probes this trace cost.
func (r Result) ProbesSent() int { return len(r.Hops) }

// HopAddrs returns the responding hop addresses in probe order,
// excluding silence and the destination's own replies.
func (r Result) HopAddrs() []netip.Addr {
	var out []netip.Addr
	for _, h := range r.Hops {
		if h.Responded() && !h.Final {
			out = append(out, h.Addr)
		}
	}
	return out
}

// Stats aggregates one VP round's probe economics.
type Stats struct {
	Traces      int `json:"traces"`
	Probes      int `json:"probes"`
	Reached     int `json:"reached"`
	Inferred    int `json:"inferred"`
	GlobalStops int `json:"global_stops"`
	LocalStops  int `json:"local_stops"`
	Misses      int `json:"misses"`
	// Saved counts probes a stop-set hit made unnecessary: the
	// remaining forward hops on a global hit, the remaining backward
	// hops on a local hit.
	Saved int `json:"saved"`
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Traces += other.Traces
	s.Probes += other.Probes
	s.Reached += other.Reached
	s.Inferred += other.Inferred
	s.GlobalStops += other.GlobalStops
	s.LocalStops += other.LocalStops
	s.Misses += other.Misses
	s.Saved += other.Saved
}

// VPRound is one VP's completed round: its traces, the global-set
// delta it contributes to the between-rounds merge, and its probe
// accounting.
type VPRound struct {
	VP     string
	Traces []Result
	Delta  *GlobalSet
	Stats  Stats
}

// Run traces dsts from p strictly sequentially — one destination at a
// time, each probe chained on the previous response — consulting the
// frozen global set on the forward phase and st.Local on the backward
// phase, then calls done with the completed round. Everything runs on
// the prober's transport event context; the caller drains the engine.
func Run(vp string, p *probe.Prober, st *VPState, global *GlobalSet, prefixOf func(netip.Addr) netip.Prefix, dsts []netip.Addr, opts Options, done func(*VPRound)) {
	round := &VPRound{VP: vp, Delta: NewGlobalSet()}
	if len(dsts) == 0 {
		p.Schedule(0, func() { done(round) })
		return
	}
	var next func(i int)
	next = func(i int) {
		if i >= len(dsts) {
			done(round)
			return
		}
		traceOne(vp, p, st, global, prefixOf(dsts[i]), dsts[i], opts, func(res Result) {
			absorb(st, round, res, prefixOf, opts)
			next(i + 1)
		})
	}
	next(0)
}

// Rebuild reconstructs a VPRound from archived traces by replaying
// their effect on the VP's state: the identical delta, stats, local
// set, and midpoint adaptation the live run produced — the
// journal-resume path. absorb is a pure function of (prior state,
// result), so replay order equals live order.
func Rebuild(vp string, st *VPState, prefixOf func(netip.Addr) netip.Prefix, traces []Result, opts Options) *VPRound {
	round := &VPRound{VP: vp, Delta: NewGlobalSet()}
	for _, res := range traces {
		absorb(st, round, res, prefixOf, opts)
	}
	return round
}

// traceOne runs one doubletree (or exhaustive) trace toward dst.
func traceOne(vp string, p *probe.Prober, st *VPState, global *GlobalSet, prefix netip.Prefix, dst netip.Addr, opts Options, done func(Result)) {
	res := Result{VP: vp, Dst: dst}
	maxTTL, gapLimit := opts.maxTTL(), opts.gapLimit()
	h := uint8(1)
	if !opts.Exhaustive {
		h = st.midTTL(opts)
		if h > maxTTL {
			h = maxTTL
		}
	}
	gaps := 0
	send := func(ttl uint8, cb func(probe.Result)) {
		p.StartOne(probe.Spec{Dst: dst, Kind: opts.kind(), TTL: ttl}, opts.Timeout, cb)
	}

	var backward func(t uint8)
	backward = func(t uint8) {
		send(t, func(r probe.Result) {
			switch r.Type {
			case probe.EchoReply:
				res.Hops = append(res.Hops, Hop{TTL: t, Addr: r.From, RTT: r.RTT(), Final: true})
				res.Reached = true
				if res.DestTTL == 0 || t < res.DestTTL {
					res.DestTTL = t
					res.Inferred = false
				}
				gaps = 0
			case probe.TimeExceeded:
				res.Hops = append(res.Hops, Hop{TTL: t, Addr: r.From, RTT: r.RTT()})
				gaps = 0
				if st.Local.Has(r.From) {
					res.LocalStop = true
					done(res)
					return
				}
			case probe.NoResponse:
				res.Hops = append(res.Hops, Hop{TTL: t})
				gaps++
				if gaps >= gapLimit {
					done(res)
					return
				}
			default:
				// Unreachables and send errors end the trace.
				res.Hops = append(res.Hops, Hop{TTL: t, Addr: r.From, RTT: r.RTT()})
				done(res)
				return
			}
			if t <= 1 {
				done(res)
				return
			}
			backward(t - 1)
		})
	}

	// endForward closes the forward phase and opens the backward one
	// (exhaustive traces start at TTL 1, so there is nothing behind).
	endForward := func() {
		res.FwdProbes = len(res.Hops)
		if opts.Exhaustive || h <= 1 {
			done(res)
			return
		}
		gaps = 0
		backward(h - 1)
	}

	var forward func(t uint8)
	forward = func(t uint8) {
		send(t, func(r probe.Result) {
			switch r.Type {
			case probe.EchoReply:
				res.Hops = append(res.Hops, Hop{TTL: t, Addr: r.From, RTT: r.RTT(), Final: true})
				res.Reached = true
				res.DestTTL = t
				endForward()
				return
			case probe.TimeExceeded:
				res.Hops = append(res.Hops, Hop{TTL: t, Addr: r.From, RTT: r.RTT()})
				gaps = 0
				if !opts.Exhaustive {
					if rem, ok := global.Lookup(r.From, prefix); ok {
						// The path's tail is known: halt, crediting
						// the remaining hops, and infer the
						// destination's distance without probing it.
						res.GlobalStop = true
						res.Inferred = true
						res.DestTTL = t + rem
						endForward()
						return
					}
					res.Misses++
				}
			case probe.NoResponse:
				res.Hops = append(res.Hops, Hop{TTL: t})
				gaps++
			default:
				res.Hops = append(res.Hops, Hop{TTL: t, Addr: r.From, RTT: r.RTT()})
				res.FwdProbes = len(res.Hops)
				done(res)
				return
			}
			if t >= maxTTL || gaps >= gapLimit {
				endForward()
				return
			}
			forward(t + 1)
		})
	}
	forward(h)
}

// absorb folds one completed trace into the round and the VP's
// persistent state: probe accounting, the stop-set delta, the local
// set, and midpoint adaptation. It is also the journal-replay path
// (Rebuild), so it must stay a pure function of (prior state, result).
func absorb(st *VPState, round *VPRound, res Result, prefixOf func(netip.Addr) netip.Prefix, opts Options) {
	round.Traces = append(round.Traces, res)
	round.Stats.Traces++
	round.Stats.Probes += len(res.Hops)
	round.Stats.Misses += res.Misses
	if res.Reached {
		round.Stats.Reached++
	}
	if res.Inferred {
		round.Stats.Inferred++
	}
	if res.GlobalStop && res.FwdProbes > 0 {
		round.Stats.GlobalStops++
		round.Stats.Saved += int(res.DestTTL) - int(res.Hops[res.FwdProbes-1].TTL)
	}
	if res.LocalStop && len(res.Hops) > 0 {
		round.Stats.LocalStops++
		round.Stats.Saved += int(res.Hops[len(res.Hops)-1].TTL) - 1
	}
	if opts.Exhaustive {
		return
	}
	for _, hp := range res.Hops {
		if hp.Responded() && !hp.Final {
			st.Local.Add(hp.Addr)
		}
	}
	if res.DestTTL == 0 {
		return
	}
	st.observeDestTTL(res.DestTTL)
	prefix := prefixOf(res.Dst)
	for _, hp := range res.Hops {
		if hp.Responded() && !hp.Final && hp.TTL < res.DestTTL {
			round.Delta.Add(Key{Iface: hp.Addr, Prefix: prefix}, res.DestTTL-hp.TTL)
		}
	}
}
