package netsim

import (
	"fmt"
	"testing"
)

// TestCounterIDSharedAcrossNetworks pins the property the sharded
// campaign executor depends on: replica simulators built in the same
// process intern a counter name to the same ID, so their per-network
// counter slices are index-compatible and merge by simple addition.
func TestCounterIDSharedAcrossNetworks(t *testing.T) {
	n1 := New()
	n2 := New()
	id1 := CounterID("test.shared.counter")
	id2 := CounterID("test.shared.counter")
	if id1 != id2 {
		t.Fatalf("same name interned to different IDs: %d vs %d", id1, id2)
	}
	n1.CountID(id1, 3)
	n2.CountID(id2, 4)
	if n1.CounterMap()["test.shared.counter"] != 3 || n2.CounterMap()["test.shared.counter"] != 4 {
		t.Fatalf("per-network counts wrong: n1=%v n2=%v", n1.CounterMap(), n2.CounterMap())
	}
}

// TestCounterMarkReset checks the registry leak fix: names interned
// after MarkCounters are released by Reset, and the freed ID range is
// handed out again for fresh names.
func TestCounterMarkReset(t *testing.T) {
	mark := MarkCounters()
	base := NumCounters()

	ids := make([]int, 8)
	for i := range ids {
		ids[i] = CounterID(fmt.Sprintf("test.leak.%d", i))
	}
	if got := NumCounters(); got != base+len(ids) {
		t.Fatalf("NumCounters = %d after interning %d names over %d", got, len(ids), base)
	}
	// Interning is idempotent while the names are live.
	if again := CounterID("test.leak.0"); again != ids[0] {
		t.Fatalf("re-intern changed ID: %d vs %d", again, ids[0])
	}

	mark.Reset()
	if got := NumCounters(); got != base {
		t.Fatalf("NumCounters = %d after Reset, want %d", got, base)
	}
	if _, ok := lookupCounterID("test.leak.0"); ok {
		t.Fatal("released name still resolvable after Reset")
	}

	// The freed ID range is reused, so repeated register/Reset cycles
	// (e.g. a test suite building thousands of topologies) cannot grow
	// the registry without bound.
	fresh := CounterID("test.leak.reused")
	if fresh != ids[0] {
		t.Errorf("freed ID not reused: got %d, want %d", fresh, ids[0])
	}
	mark.Reset()
	if got := NumCounters(); got != base {
		t.Fatalf("NumCounters = %d after second Reset, want %d", got, base)
	}
}

// TestLocalCounterRegistration: engine-local marking survives re-intern
// and is cleared by Reset so a reused ID cannot inherit it.
func TestLocalCounterRegistration(t *testing.T) {
	mark := MarkCounters()
	id := RegisterLocalCounter("test.local.diag")
	if !CounterIsLocal("test.local.diag") {
		t.Fatal("freshly registered local counter not reported local")
	}
	if CounterID("test.local.diag") != id {
		t.Fatal("RegisterLocalCounter and CounterID disagree on ID")
	}
	mark.Reset()
	if CounterIsLocal("test.local.diag") {
		t.Fatal("local flag survived Reset")
	}
	// Re-registering the name plainly must not resurrect the flag.
	if CounterID("test.local.diag"); CounterIsLocal("test.local.diag") {
		t.Fatal("plain CounterID re-intern marked the name local")
	}
	mark.Reset()
}

// TestCounterMarkResetPreservesHotIDs: Reset must never disturb the
// pre-interned hot-path IDs the router/host fast paths cache at
// package init.
func TestCounterMarkResetPreservesHotIDs(t *testing.T) {
	mark := MarkCounters()
	CounterID("test.transient")
	mark.Reset()
	for _, tc := range []struct {
		id   int
		name string
	}{
		{cRouterFwd, "router.fwd"},
		{cRouterSlowpath, "router.slowpath"},
		{cRouterStamped, "router.rr.stamped"},
		{cHostEchoReply, "host.echo.reply"},
		{cLinkTx, "link.tx"},
	} {
		if got, ok := lookupCounterID(tc.name); !ok || got != tc.id {
			t.Errorf("%s resolves to (%d,%v), want cached ID %d", tc.name, got, ok, tc.id)
		}
		if counterName(tc.id) != tc.name {
			t.Errorf("counterName(%d) = %q, want %q", tc.id, counterName(tc.id), tc.name)
		}
	}
}
