package netsim

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"recordroute/internal/packet"
)

func TestFaultWindowOneShot(t *testing.T) {
	w := faultWindow{offset: 10 * time.Second, duty: 5 * time.Second}
	cases := []struct {
		at     time.Duration
		active bool
		flips  int
	}{
		{9 * time.Second, false, 0},
		{10 * time.Second, true, 1},
		{14 * time.Second, true, 1},
		{15 * time.Second, false, 2},
		{1 * time.Hour, false, 2},
	}
	for _, c := range cases {
		if got := w.active(c.at); got != c.active {
			t.Errorf("active(%v) = %v, want %v", c.at, got, c.active)
		}
		if got := w.flips(c.at); got != c.flips {
			t.Errorf("flips(%v) = %d, want %d", c.at, got, c.flips)
		}
	}
}

func TestFaultWindowPeriodic(t *testing.T) {
	w := faultWindow{offset: 10 * time.Second, period: 20 * time.Second, duty: 5 * time.Second}
	cases := []struct {
		at     time.Duration
		active bool
		flips  int
	}{
		{9 * time.Second, false, 0},
		{12 * time.Second, true, 1},
		{16 * time.Second, false, 2},
		{31 * time.Second, true, 3},
		{36 * time.Second, false, 4},
		{52 * time.Second, true, 5},
	}
	for _, c := range cases {
		if got := w.active(c.at); got != c.active {
			t.Errorf("active(%v) = %v, want %v", c.at, got, c.active)
		}
		if got := w.flips(c.at); got != c.flips {
			t.Errorf("flips(%v) = %d, want %d", c.at, got, c.flips)
		}
	}
}

// pingAt schedules a plain ping injection at an absolute virtual time.
func pingAt(t *testing.T, c *chain, at time.Duration, id uint16) {
	t.Helper()
	wire := makePingRR(t, a(vpAddrStr), a(destAddrStr), id, 1, 64, 0)
	c.net.Engine().At(at, func() { c.vp.Inject(wire) })
}

// replyIDs decodes the ICMP IDs of all captured replies.
func replyIDs(t *testing.T, c *chain) []uint16 {
	t.Helper()
	var ids []uint16
	for _, rep := range c.replies {
		_, icmp := decodeReply(t, rep.raw)
		ids = append(ids, icmp.ID)
	}
	return ids
}

func TestChaosLinkFlapDropsDuringWindow(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	// Flap the VP uplink: down during [1s, 2s), both directions.
	lf := linkFaults{down: faultWindow{offset: time.Second, duty: time.Second}}
	up := c.routers[0].Interfaces()[0] // r0's iface toward the VP
	fa, fb := lf, lf
	up.faults, up.peer.faults = &fa, &fb

	pingAt(t, c, 0, 1)
	pingAt(t, c, 1500*time.Millisecond, 2)
	pingAt(t, c, 3*time.Second, 3)
	c.net.Engine().Run()

	if ids := replyIDs(t, c); !reflect.DeepEqual(ids, []uint16{1, 3}) {
		t.Errorf("reply IDs = %v, want [1 3] (probe 2 sent mid-flap)", ids)
	}
	if got := c.net.Counter("chaos.link.down"); got != 1 {
		t.Errorf("chaos.link.down = %d, want 1", got)
	}
}

func TestChaosDuplicationDeliversCopies(t *testing.T) {
	c := buildChain(1, nil, DefaultHostBehavior())
	// Duplicate every packet the VP transmits toward r0 (one direction
	// only, so the copies don't multiply further down the path).
	up := c.routers[0].Interfaces()[0].peer // the VP's uplink iface
	up.faults = &linkFaults{salt: 1, dup: 1}

	pingAt(t, c, 0, 7)
	c.net.Engine().Run()

	if ids := replyIDs(t, c); !reflect.DeepEqual(ids, []uint16{7, 7}) {
		t.Errorf("reply IDs = %v, want [7 7] (duplicate elicits a second reply)", ids)
	}
	if got := c.net.Counter("chaos.link.dup"); got != 1 {
		t.Errorf("chaos.link.dup = %d, want 1", got)
	}
}

func TestChaosJitterDelaysButDelivers(t *testing.T) {
	c := buildChain(1, nil, DefaultHostBehavior())
	up := c.routers[0].Interfaces()[0].peer
	up.faults = &linkFaults{salt: 99, jitterMax: 50 * time.Millisecond}

	pingAt(t, c, 0, 8)
	c.net.Engine().Run()

	if len(c.replies) != 1 {
		t.Fatalf("replies = %d, want 1", len(c.replies))
	}
	// Baseline RTT is 4 link hops at 1ms; jitter adds (0, 50ms) once.
	if rtt := c.replies[0].at; rtt <= 4*time.Millisecond || rtt > 54*time.Millisecond {
		t.Errorf("reply at %v, want in (4ms, 54ms]", rtt)
	}
}

func TestChaosRouterOutageWindow(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	c.routers[1].faults = &routerFaults{offline: faultWindow{offset: time.Second, duty: time.Second}}

	pingAt(t, c, 0, 1)
	pingAt(t, c, 1500*time.Millisecond, 2)
	pingAt(t, c, 3*time.Second, 3)
	c.net.Engine().Run()

	if ids := replyIDs(t, c); !reflect.DeepEqual(ids, []uint16{1, 3}) {
		t.Errorf("reply IDs = %v, want [1 3] (probe 2 hit the outage)", ids)
	}
	if got := c.net.Counter("chaos.router.offline"); got != 1 {
		t.Errorf("chaos.router.offline = %d, want 1", got)
	}
}

func TestChaosICMPSuppressionWindow(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	// r1 suppresses ICMP errors during [0, 1s).
	c.routers[1].faults = &routerFaults{suppress: faultWindow{duty: time.Second}}

	// TTL-2 probes expire at r1; the first falls inside the window.
	w1 := makePingRR(t, a(vpAddrStr), a(destAddrStr), 1, 1, 2, 0)
	w2 := makePingRR(t, a(vpAddrStr), a(destAddrStr), 2, 1, 2, 0)
	c.net.Engine().At(0, func() { c.vp.Inject(w1) })
	c.net.Engine().At(2*time.Second, func() { c.vp.Inject(w2) })
	c.net.Engine().Run()

	if len(c.replies) != 1 {
		t.Fatalf("replies = %d, want only the post-window Time Exceeded", len(c.replies))
	}
	if _, icmp := decodeReply(t, c.replies[0].raw); icmp.Type != packet.ICMPTimeExceeded {
		t.Errorf("reply type = %v, want Time Exceeded", icmp.Type)
	}
	if got := c.net.Counter("chaos.icmp.suppressed"); got != 1 {
		t.Errorf("chaos.icmp.suppressed = %d, want 1", got)
	}
}

func TestChaosRouteWithdrawalInvalidatesRouteCache(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	// r0 transiently withdraws the destination /32 during [1s, 2s).
	c.routers[0].faults = &routerFaults{
		withdraw: faultWindow{offset: time.Second, duty: time.Second},
		prefix:   netip.PrefixFrom(a(destAddrStr), 32),
	}

	// Probe 1 populates r0's route cache before the withdrawal; probe 2
	// must not be forwarded off the stale cached entry; probe 3 must get
	// the route back after restoration.
	pingAt(t, c, 0, 1)
	pingAt(t, c, 1500*time.Millisecond, 2)
	pingAt(t, c, 3*time.Second, 3)
	c.net.Engine().Run()

	if ids := replyIDs(t, c); !reflect.DeepEqual(ids, []uint16{1, 3}) {
		t.Errorf("reply IDs = %v, want [1 3] (probe 2 blackholed)", ids)
	}
	if got := c.net.Counter("router.drop.noroute"); got != 1 {
		t.Errorf("router.drop.noroute = %d, want 1", got)
	}
	// Both window boundaries crossed by lookups → two invalidations.
	if got := c.net.Counter("chaos.route.flip"); got != 2 {
		t.Errorf("chaos.route.flip = %d, want 2", got)
	}
}

// buildChaosChain builds a chain with a full FaultPlan installed from
// cfg, registering every router interface, router, and the dest prefix.
func buildChaosChain(t *testing.T, n int, cfg FaultConfig) (*chain, FaultSummary) {
	t.Helper()
	c := buildChain(n, nil, DefaultHostBehavior())
	plan := NewFaultPlan(cfg)
	for _, r := range c.routers {
		plan.AddRouter(r)
		for _, ifc := range r.Interfaces() {
			plan.AddLink(ifc)
		}
	}
	plan.AddWithdrawal(c.routers[0], netip.PrefixFrom(a(destAddrStr), 32))
	return c, plan.Install()
}

func TestFaultPlanContentKeyedLossIsReproducible(t *testing.T) {
	run := func() ([]uint16, uint64) {
		cfg := FaultConfig{Seed: 42, LossProb: 0.4}
		c, sum := buildChaosChain(t, 3, cfg)
		if sum.LossyLinks != sum.Links {
			t.Fatalf("lossy links = %d, want all %d", sum.LossyLinks, sum.Links)
		}
		for i := 0; i < 200; i++ {
			pingAt(t, c, time.Duration(i)*10*time.Millisecond, uint16(i))
		}
		c.net.Engine().Run()
		return replyIDs(t, c), c.net.Counter("chaos.link.loss")
	}
	ids1, lost1 := run()
	ids2, lost2 := run()
	if !reflect.DeepEqual(ids1, ids2) || lost1 != lost2 {
		t.Errorf("chaos loss not reproducible: %d vs %d replies, %d vs %d losses",
			len(ids1), len(ids2), lost1, lost2)
	}
	if lost1 == 0 {
		t.Error("no chaos losses at 40% per-direction loss")
	}
	if len(ids1) == 0 {
		t.Error("no survivors at 40% per-direction loss")
	}
}

func TestFaultPlanSeedSelectsDifferentWeather(t *testing.T) {
	cfg := FaultConfig{Seed: 1, LossProb: 0.5, LossFrac: 0.5, FlapFrac: 0.5}
	_, sum1 := buildChaosChain(t, 8, cfg)
	cfg.Seed = 2
	_, sum2 := buildChaosChain(t, 8, cfg)
	// With 9 links at 50% fractions, two seeds picking identical subsets
	// for both loss and flaps is a ~1/2^18 coincidence; treat as failure.
	if sum1 == sum2 {
		t.Errorf("identical fault summaries under different seeds: %v", sum1)
	}
}

func TestFaultPlanZeroConfigInstallsNothing(t *testing.T) {
	c, sum := buildChaosChain(t, 2, FaultConfig{Seed: 7})
	if sum.LossyLinks+sum.FlapLinks+sum.JitterLinks+sum.DupLinks+
		sum.OfflineRouters+sum.SuppressRouters+sum.WithdrawnPfxs != 0 {
		t.Errorf("zero config installed faults: %v", sum)
	}
	for _, r := range c.routers {
		if r.faults != nil {
			t.Errorf("router %s has fault state", r.Name())
		}
		for _, ifc := range r.Interfaces() {
			if ifc.faults != nil {
				t.Errorf("iface %v has fault state", ifc.Addr)
			}
		}
	}
}
