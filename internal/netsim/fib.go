package netsim

import (
	"net/netip"
)

// FIB is a longest-prefix-match forwarding table mapping destination
// prefixes to egress interfaces. Host routes (/32), which dominate real
// tables here because every link installs two, live in a dedicated
// address-keyed map probed first; shorter prefixes go through per-length
// maps from most to least specific. Real tables here hold only a handful
// of distinct lengths, so this stays fast without a trie.
type FIB struct {
	host    map[netip.Addr]*Iface // /32 routes, the common hit
	byLen   map[int]map[netip.Prefix]*Iface
	lengths []int // sorted descending, kept in sync with byLen; never 32
	size    int
}

// NewFIB returns an empty forwarding table.
func NewFIB() *FIB {
	return &FIB{
		host:  make(map[netip.Addr]*Iface),
		byLen: make(map[int]map[netip.Prefix]*Iface),
	}
}

// Add installs a route. The prefix is masked to its canonical form; a
// later Add for the same prefix overwrites the earlier one.
func (f *FIB) Add(p netip.Prefix, via *Iface) {
	p = p.Masked()
	if p.Bits() == 32 {
		if _, exists := f.host[p.Addr()]; !exists {
			f.size++
		}
		f.host[p.Addr()] = via
		return
	}
	m := f.byLen[p.Bits()]
	if m == nil {
		m = make(map[netip.Prefix]*Iface)
		f.byLen[p.Bits()] = m
		f.insertLength(p.Bits())
	}
	if _, exists := m[p]; !exists {
		f.size++
	}
	m[p] = via
}

// insertLength places bits into the descending-sorted lengths slice
// without re-sorting the whole slice on every new length.
func (f *FIB) insertLength(bits int) {
	i := len(f.lengths)
	for i > 0 && f.lengths[i-1] < bits {
		i--
	}
	f.lengths = append(f.lengths, 0)
	copy(f.lengths[i+1:], f.lengths[i:])
	f.lengths[i] = bits
}

// Grow preallocates the /32 host-route map for about n entries. It only
// acts on a still-empty table — the topology generator calls it right
// after creating a router, when the expected connected-route count is
// known but nothing is installed yet — so no copying ever happens.
func (f *FIB) Grow(n int) {
	if f.size == 0 && n > 0 {
		f.host = make(map[netip.Addr]*Iface, n)
	}
}

// clone returns a deep copy of the table structure. The values — egress
// interface pointers — are shared on purpose: a cloned replica resolves
// them through Network.localize.
func (f *FIB) clone() *FIB {
	c := &FIB{
		host:    make(map[netip.Addr]*Iface, len(f.host)),
		byLen:   make(map[int]map[netip.Prefix]*Iface, len(f.byLen)),
		lengths: append([]int(nil), f.lengths...),
		size:    f.size,
	}
	for a, v := range f.host {
		c.host[a] = v
	}
	for bits, m := range f.byLen {
		cm := make(map[netip.Prefix]*Iface, len(m))
		for p, v := range m {
			cm[p] = v
		}
		c.byLen[bits] = cm
	}
	return c
}

// Lookup returns the egress interface for dst under longest-prefix
// match, or nil if no route covers it. The /32 host-route map — the
// common case on forwarding paths, where connected peers are host
// routes — is probed before any prefix arithmetic.
func (f *FIB) Lookup(dst netip.Addr) *Iface {
	if via, ok := f.host[dst]; ok {
		return via
	}
	for _, bits := range f.lengths {
		p, err := dst.Prefix(bits)
		if err != nil {
			continue
		}
		if via, ok := f.byLen[bits][p]; ok {
			return via
		}
	}
	return nil
}

// Len returns the number of installed routes.
func (f *FIB) Len() int { return f.size }
