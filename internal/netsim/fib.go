package netsim

import (
	"net/netip"
	"sort"
)

// FIB is a longest-prefix-match forwarding table mapping destination
// prefixes to egress interfaces. Lookups probe per-prefix-length maps
// from most to least specific; real tables here hold only a handful of
// distinct lengths, so this stays fast without a trie.
type FIB struct {
	byLen   map[int]map[netip.Prefix]*Iface
	lengths []int // sorted descending, kept in sync with byLen
	size    int
}

// NewFIB returns an empty forwarding table.
func NewFIB() *FIB {
	return &FIB{byLen: make(map[int]map[netip.Prefix]*Iface)}
}

// Add installs a route. The prefix is masked to its canonical form; a
// later Add for the same prefix overwrites the earlier one.
func (f *FIB) Add(p netip.Prefix, via *Iface) {
	p = p.Masked()
	m := f.byLen[p.Bits()]
	if m == nil {
		m = make(map[netip.Prefix]*Iface)
		f.byLen[p.Bits()] = m
		f.lengths = append(f.lengths, p.Bits())
		sort.Sort(sort.Reverse(sort.IntSlice(f.lengths)))
	}
	if _, exists := m[p]; !exists {
		f.size++
	}
	m[p] = via
}

// Lookup returns the egress interface for dst under longest-prefix
// match, or nil if no route covers it.
func (f *FIB) Lookup(dst netip.Addr) *Iface {
	for _, bits := range f.lengths {
		p, err := dst.Prefix(bits)
		if err != nil {
			continue
		}
		if via, ok := f.byLen[bits][p]; ok {
			return via
		}
	}
	return nil
}

// Len returns the number of installed routes.
func (f *FIB) Len() int { return f.size }
