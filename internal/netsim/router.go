package netsim

import (
	"net/netip"
	"time"

	"recordroute/internal/packet"
)

// RouterBehavior configures how a router treats packets, especially those
// carrying IP options. The zero value is a fully RFC-conformant router:
// it stamps Record Route, decrements TTL, sends Time Exceeded errors, and
// imposes no options rate limit.
type RouterBehavior struct {
	// NoStampRR forwards options packets without recording an address
	// (the RFC 7126 / BCP 186 "ignore" stance the paper's §3.5 hunts for).
	NoStampRR bool
	// DropOptions silently drops any packet carrying IP options
	// (AS-edge filtering).
	DropOptions bool
	// NoTTLDecrement makes the router invisible to traceroute: it
	// forwards without decrementing TTL (an "anonymous" router or an
	// MPLS tunnel interior hop). Such a router can still stamp RR.
	NoTTLDecrement bool
	// NoTimeExceeded drops expired packets silently instead of
	// generating ICMP Time Exceeded.
	NoTimeExceeded bool
	// OptionsRateLimit, if positive, is the packets-per-second budget of
	// the control-plane slow path that handles options packets;
	// non-conforming packets are dropped (CoPP-style policing).
	OptionsRateLimit float64
	// OptionsRateBurst is the policer's burst size; it defaults to the
	// rate (one second's worth) when zero.
	OptionsRateBurst float64
	// SlowPathDelay is extra per-packet forwarding latency applied to
	// options packets, modelling route-processor punting.
	SlowPathDelay time.Duration
	// ICMPErrorRateLimit, if positive, caps the router's ICMP error
	// generation (Time Exceeded and friends) in errors per second, as
	// real routers do; excess expirations are dropped silently.
	ICMPErrorRateLimit float64
	// AllowSourceRoute makes the router honor LSRR/SSRR options
	// addressed to it, forwarding to the next listed hop. Modern
	// routers refuse (RFC 7126 recommends dropping source-routed
	// packets), which is the default — and the reason the 2005 tech
	// report found source routing unusable while this paper finds
	// Record Route workable.
	AllowSourceRoute bool
}

// Router is a packet-forwarding node.
type Router struct {
	name       string
	net        *Network
	idx        int // registration index; replica clones keep it
	behavior   RouterBehavior
	fib        *FIB
	routeFn    func(dst netip.Addr) *Iface
	ifaces     []*Iface
	local      map[netip.Addr]bool
	limiter    *TokenBucket
	errLimiter *TokenBucket
	ipid       uint16
	faults     *routerFaults // nil when no fault plan afflicts this router

	// fibShared/localShared mark fib and local as part of a frozen route
	// plane possibly shared with replica networks (see Network.Freeze):
	// mutation must copy first. Both clear on the first copy-on-write.
	fibShared   bool
	localShared bool

	// routeCache memoizes lookupRoute results per destination (including
	// negative ones): the routing oracle recomputes a policy path on
	// every packet, and forwarding asks the same question for every probe
	// of a campaign. Invalidated whenever the FIB or oracle changes.
	routeCache map[netip.Addr]*Iface
	// routeBase is the frozen, read-only memoized-route map inherited
	// from a snapshot (source-network interface pointers, localized on
	// hit). It is never written; invalidation just drops the reference.
	routeBase map[netip.Addr]*Iface

	// scratch decoding state; safe because the engine is single-threaded.
	ip packet.IPv4
	rr packet.RecordRoute
	ts packet.Timestamp
	sr packet.SourceRoute
}

// routeCacheMax bounds the per-router cache; on overflow the cache is
// reset wholesale, which keeps memory proportional to the working set.
const routeCacheMax = 1 << 14

// AddRouter creates a router and registers it with the network.
func (n *Network) AddRouter(name string, behavior RouterBehavior) *Router {
	r := &Router{
		name:     name,
		net:      n,
		behavior: behavior,
		fib:      NewFIB(),
		local:    make(map[netip.Addr]bool),
		ipid:     seedIPID(name),
	}
	n.register(r)
	return r
}

// optionsLimiter returns the slow-path policer, materializing it on
// first use. Policer state is copy-on-write across replica clones: the
// frozen plane carries only the behavior's rate config, and each
// network allocates its own mutable bucket the first time a policed
// packet arrives. Exact because a fresh bucket starts full and Allow's
// refill clamps at burst — a bucket born at virtual time t is
// indistinguishable from one born at time 0 and first consulted at t.
func (r *Router) optionsLimiter() *TokenBucket {
	if r.limiter == nil && r.behavior.OptionsRateLimit > 0 {
		burst := r.behavior.OptionsRateBurst
		if burst <= 0 {
			burst = r.behavior.OptionsRateLimit
		}
		r.limiter = NewTokenBucket(r.behavior.OptionsRateLimit, burst)
	}
	return r.limiter
}

// icmpErrLimiter is optionsLimiter for the ICMP-error policer.
func (r *Router) icmpErrLimiter() *TokenBucket {
	if r.errLimiter == nil && r.behavior.ICMPErrorRateLimit > 0 {
		r.errLimiter = NewTokenBucket(r.behavior.ICMPErrorRateLimit, r.behavior.ICMPErrorRateLimit/2)
	}
	return r.errLimiter
}

// Name returns the router's name.
func (r *Router) Name() string { return r.name }

// count bumps a network counter and, when per-node attribution is
// enabled, charges it to this router. The extra branch is the whole
// cost of disabled observability.
func (r *Router) count(id int) {
	r.net.CountID(id, 1)
	if r.net.nodeCounts != nil {
		r.net.countNode(r.name, id, 1)
	}
}

// countName is count for cold paths that never pre-interned an ID.
func (r *Router) countName(name string) { r.count(CounterID(name)) }

// trace emits a packet event for the datagram currently decoded in
// r.ip; callers guard on r.net.tracer != nil.
func (r *Router) trace(event string) {
	r.net.tracer(r.net.Now(), r.name, event, r.ip.Src, r.ip.Dst)
}

// Behavior returns the router's configured behavior.
func (r *Router) Behavior() RouterBehavior { return r.behavior }

// FIB returns the router's forwarding table for route installation.
func (r *Router) FIB() *FIB { return r.fib }

// AddRoute installs a route for prefix via the given interface. On a
// router whose FIB belongs to a frozen, shared route plane the table is
// copied first (copy-on-write), so siblings cloned from the same
// snapshot never see the change.
func (r *Router) AddRoute(prefix netip.Prefix, via *Iface) {
	if r.fibShared {
		r.fib = r.fib.clone()
		r.fibShared = false
	}
	r.fib.Add(prefix, via)
	r.invalidateRoutes()
}

// SetRouteFunc installs a routing oracle consulted before the FIB.
// Large generated topologies use a shared oracle instead of populating
// millions of per-router FIB entries; fn returning nil falls back to the
// FIB (which still holds connected routes).
func (r *Router) SetRouteFunc(fn func(dst netip.Addr) *Iface) {
	r.routeFn = fn
	r.invalidateRoutes()
}

// invalidateRoutes drops all memoized lookups after a routing change.
// The shared frozen base (if any) is detached, never mutated: sibling
// replicas keep reading it.
func (r *Router) invalidateRoutes() {
	clear(r.routeCache)
	r.routeBase = nil
}

// lookupRoute resolves the egress interface for dst via the oracle or
// FIB, memoizing the result (nil included: no route stays no route until
// routing changes). A replica cloned from a snapshot first consults the
// snapshot's frozen memo (routeBase), localizing its plane pointers.
func (r *Router) lookupRoute(dst netip.Addr) *Iface {
	if f := r.faults; f != nil && f.withdraw.duty > 0 {
		// A transient withdrawal boundary invalidates memoized routes —
		// the same hook a real routing change uses — so cached entries
		// never straddle a withdrawal flip.
		if n := f.withdraw.flips(r.net.Now()); n != f.wFlips {
			f.wFlips = n
			r.invalidateRoutes()
			r.count(cChaosRouteFlip)
		}
	}
	if via, ok := r.routeCache[dst]; ok {
		return via
	}
	via, hit := (*Iface)(nil), false
	if r.routeBase != nil {
		via, hit = r.routeBase[dst]
		if hit {
			via = r.net.localize(via)
		}
	}
	if !hit {
		via = r.net.localize(r.lookupRouteSlow(dst))
	}
	if r.routeCache == nil || len(r.routeCache) >= routeCacheMax {
		r.routeCache = make(map[netip.Addr]*Iface, 64)
	}
	r.routeCache[dst] = via
	return via
}

// lookupRouteSlow is the uncached resolution path.
func (r *Router) lookupRouteSlow(dst netip.Addr) *Iface {
	if f := r.faults; f != nil {
		if f.prefix.IsValid() && f.prefix.Contains(dst) && f.withdraw.active(r.net.Now()) {
			return nil
		}
		// Epoch churn: the churned prefix is blackholed for the whole of
		// any epoch whose (seed, epoch) draw fires. Constant within an
		// epoch, so the memoized result stays valid until SetFaultEpoch.
		if f.churnPrefix.IsValid() && f.churnPrefix.Contains(dst) && f.churned(r.net.faultEpoch) {
			r.count(cChaosChurn)
			return nil
		}
	}
	if r.routeFn != nil {
		if via := r.routeFn(dst); via != nil {
			return via
		}
	}
	return r.fib.Lookup(dst)
}

// Interfaces returns the router's interfaces in attachment order.
func (r *Router) Interfaces() []*Iface { return r.ifaces }

// Addrs reports whether addr is local to the router.
func (r *Router) ownsAddr(addr netip.Addr) bool { return r.local[addr] }

func (r *Router) addIface(i *Iface) {
	if r.localShared {
		local := make(map[netip.Addr]bool, len(r.local)+1)
		for a := range r.local {
			local[a] = true
		}
		r.local = local
		r.localShared = false
	}
	r.ifaces = append(r.ifaces, i)
	r.local[i.Addr] = true
}

// nextID returns the next IP identifier from the router's shared
// counter. A shared monotonic counter across interfaces is the signal
// MIDAR-style alias resolution relies on.
func (r *Router) nextID() uint16 {
	r.ipid++
	return r.ipid
}

// Receive implements Node. It is the router's forwarding path.
func (r *Router) Receive(pkt []byte, on *Iface) {
	if f := r.faults; f != nil && f.offline.active(r.net.Now()) {
		r.count(cChaosOffline)
		if r.net.tracer != nil {
			// The header is not decoded yet; the event carries no addresses.
			r.net.tracer(r.net.Now(), r.name, "chaos.router.offline", netip.Addr{}, netip.Addr{})
		}
		return
	}
	payload, err := r.ip.Decode(pkt)
	if err != nil {
		r.countName("router.drop.parse")
		return
	}
	hasOpts := len(r.ip.Options) > 0

	// Options packets traverse the slow path: filtering and policing
	// happen before any other processing, including local delivery.
	if hasOpts {
		if r.behavior.DropOptions {
			r.countName("router.drop.filter")
			if r.net.tracer != nil {
				r.trace("router.drop.filter")
			}
			return
		}
		if lim := r.optionsLimiter(); lim != nil && !lim.Allow(r.net.Now()) {
			r.countName("router.drop.ratelimit")
			if r.net.tracer != nil {
				r.trace("router.drop.ratelimit")
			}
			return
		}
		r.count(cRouterSlowpath)
		if r.net.tracer != nil {
			r.trace("router.slowpath")
		}
	}

	if r.ownsAddr(r.ip.Dst) {
		if found, err := r.ip.SourceRouteOption(&r.sr); found && err == nil && !r.sr.Exhausted() {
			r.forwardSourceRouted(payload)
			return
		}
		r.deliverLocal(payload)
		return
	}

	// TTL handling. An "anonymous" router forwards without decrementing.
	if !r.behavior.NoTTLDecrement {
		if r.ip.TTL <= 1 {
			if !r.behavior.NoTimeExceeded {
				r.sendTimeExceeded(pkt, on)
			} else {
				r.countName("router.drop.ttl.silent")
			}
			r.countName("router.ttl.expired")
			if r.net.tracer != nil {
				r.trace("router.ttl.expired")
			}
			return
		}
		r.ip.TTL--
	}

	egress := r.lookupRoute(r.ip.Dst)
	if egress == nil {
		r.countName("router.drop.noroute")
		if r.net.tracer != nil {
			r.trace("router.drop.noroute")
		}
		return
	}

	// Stamp Record Route with the outgoing interface address (RFC 791:
	// "its own internet address as known in the environment into which
	// this datagram is being forwarded").
	if hasOpts && !r.behavior.NoStampRR {
		if found, err := r.ip.RecordRouteOption(&r.rr); found && err == nil && !r.rr.Full() {
			r.rr.Record(egress.Addr)
			if err := r.ip.SetRecordRoute(&r.rr); err != nil {
				r.countName("router.drop.rrencode")
				return
			}
			r.count(cRouterStamped)
			if r.net.tracer != nil {
				r.trace("router.rr.stamped")
			}
		}
		// The Internet Timestamp option is processed on the same slow
		// path; a full option increments its overflow counter.
		if found, err := r.ip.TimestampOption(&r.ts); found && err == nil {
			r.ts.Record(egress.Addr, uint32(r.net.Now().Milliseconds()))
			if err := r.ip.SetTimestamp(&r.ts); err != nil {
				r.countName("router.drop.tsencode")
				return
			}
			r.count(cRouterTS)
			if r.net.tracer != nil {
				r.trace("router.ts.stamped")
			}
		}
	}

	out, err := r.ip.AppendTo(r.net.getBuf(), payload)
	if err != nil {
		r.countName("router.drop.encode")
		return
	}
	r.count(cRouterFwd)
	if hasOpts && r.behavior.SlowPathDelay > 0 {
		r.net.engine.Schedule(r.behavior.SlowPathDelay, func() { egress.Send(out) })
		return
	}
	egress.Send(out)
}

// forwardSourceRouted handles a source-routed packet whose current
// destination is this router: if the router honors source routing it
// swaps in the next listed hop (recording its own outgoing address in
// the slot, per RFC 791) and forwards; otherwise the packet is dropped,
// the near-universal stance on today's Internet.
func (r *Router) forwardSourceRouted(payload []byte) {
	if !r.behavior.AllowSourceRoute {
		r.countName("router.drop.sourceroute")
		return
	}
	next := r.sr.NextHop()
	egress := r.lookupRoute(next)
	if egress == nil {
		r.countName("router.drop.noroute")
		return
	}
	newDst, ok := r.sr.Advance(egress.Addr)
	if !ok {
		r.countName("router.drop.sourceroute")
		return
	}
	r.ip.Dst = newDst
	if err := r.ip.SetSourceRoute(&r.sr); err != nil {
		r.countName("router.drop.encode")
		return
	}
	if !r.behavior.NoTTLDecrement && r.ip.TTL > 1 {
		r.ip.TTL--
	}
	out, err := r.ip.AppendTo(r.net.getBuf(), payload)
	if err != nil {
		r.countName("router.drop.encode")
		return
	}
	r.countName("router.fwd.sourceroute")
	egress.Send(out)
}

// deliverLocal handles packets addressed to the router itself (r.ip
// holds the already-decoded header). Routers answer ICMP echo (including
// ping-RR, stamping themselves and copying the option into the reply) so
// that they can serve as probe targets and alias-resolution subjects.
func (r *Router) deliverLocal(payload []byte) {
	var icmp packet.ICMP
	if r.ip.Protocol != packet.ProtocolICMP || icmp.Decode(payload) != nil {
		r.countName("router.local.ignored")
		return
	}
	if icmp.Type != packet.ICMPEchoRequest {
		r.countName("router.local.ignored")
		return
	}
	reply := icmp.EchoReply()
	hdr := packet.IPv4{
		TTL:      64,
		ID:       r.nextID(),
		Protocol: packet.ProtocolICMP,
		Src:      r.ip.Dst,
		Dst:      r.ip.Src,
	}
	// Copy the Record Route option into the reply and stamp ourselves,
	// as a conformant destination does.
	if found, err := r.ip.RecordRouteOption(&r.rr); found && err == nil {
		cp := r.rr.Clone()
		if !r.behavior.NoStampRR {
			cp.Record(r.ip.Dst)
		}
		if err := hdr.SetRecordRoute(cp); err != nil {
			return
		}
	}
	if r.net.tracer != nil {
		r.trace("router.echo.reply")
	}
	r.sendLocal(&hdr, reply.Marshal())
}

// sendTimeExceeded emits an ICMP Time Exceeded error quoting the expired
// packet as received (its Record Route option included, which is what
// lets TTL-limited ping-RR results be read at the source, §4.2).
// Generation is subject to the router's ICMP error policer.
func (r *Router) sendTimeExceeded(orig []byte, on *Iface) {
	if f := r.faults; f != nil && f.suppress.active(r.net.Now()) {
		r.count(cChaosSuppress)
		if r.net.tracer != nil {
			r.trace("chaos.icmp.suppressed")
		}
		return
	}
	if lim := r.icmpErrLimiter(); lim != nil && !lim.Allow(r.net.Now()) {
		r.countName("router.drop.errlimit")
		if r.net.tracer != nil {
			r.trace("router.drop.errlimit")
		}
		return
	}
	hdrLen := int(orig[0]&0xf) * 4
	if hdrLen > len(orig) {
		hdrLen = len(orig)
	}
	src := r.ip.Src // origin header was decoded into r.ip by Receive
	e := packet.NewError(packet.ICMPTimeExceeded, packet.CodeTTLExceeded, orig[:hdrLen], orig[hdrLen:])
	hdr := packet.IPv4{
		TTL:      64,
		ID:       r.nextID(),
		Protocol: packet.ProtocolICMP,
		Src:      on.Addr, // errors originate from the receiving interface
		Dst:      src,
	}
	r.countName("router.icmp.timeexceeded")
	if r.net.tracer != nil {
		r.trace("router.icmp.timeexceeded")
	}
	r.sendLocal(&hdr, e.Marshal())
}

// sendLocal routes and transmits a router-originated packet.
func (r *Router) sendLocal(hdr *packet.IPv4, transport []byte) {
	egress := r.lookupRoute(hdr.Dst)
	if egress == nil {
		r.countName("router.drop.noroute.local")
		return
	}
	out, err := hdr.AppendTo(r.net.getBuf(), transport)
	if err != nil {
		r.countName("router.drop.encode")
		return
	}
	egress.Send(out)
}
