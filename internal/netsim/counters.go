package netsim

import "sync"

// Counter names are interned into small integer IDs at first use, so the
// per-packet hot path (forwarding, link transmission, slow-path
// accounting) bumps a slice slot instead of hashing a string into a map
// millions of times per campaign. The registry is process-global: IDs
// are stable across Networks, which also lets shard replicas of the same
// topology share call-site IDs.
var counterReg = struct {
	sync.Mutex
	ids   map[string]int
	names []string
}{ids: make(map[string]int)}

// CounterID interns a counter name, returning its stable ID. Call sites
// on hot paths resolve their ID once (package init or construction) and
// use Network.CountID.
func CounterID(name string) int {
	counterReg.Lock()
	defer counterReg.Unlock()
	if id, ok := counterReg.ids[name]; ok {
		return id
	}
	id := len(counterReg.names)
	counterReg.ids[name] = id
	counterReg.names = append(counterReg.names, name)
	return id
}

// counterName resolves an ID back to its name.
func counterName(id int) string {
	counterReg.Lock()
	defer counterReg.Unlock()
	return counterReg.names[id]
}

// lookupCounterID resolves a name without registering it.
func lookupCounterID(name string) (int, bool) {
	counterReg.Lock()
	defer counterReg.Unlock()
	id, ok := counterReg.ids[name]
	return id, ok
}

// counterSnapshot returns the registered names, index = ID.
func counterSnapshot() []string {
	counterReg.Lock()
	defer counterReg.Unlock()
	return append([]string(nil), counterReg.names...)
}

// Pre-interned IDs for the per-packet hot paths.
var (
	cLinkTx         = CounterID("link.tx")
	cLinkLoss       = CounterID("link.loss")
	cRouterFwd      = CounterID("router.fwd")
	cRouterSlowpath = CounterID("router.slowpath")
	cRouterStamped  = CounterID("router.rr.stamped")
	cRouterTS       = CounterID("router.ts.stamped")
	cHostInject     = CounterID("host.inject")
	cHostEchoReply  = CounterID("host.echo.reply")
	cHostUDPUnreach = CounterID("host.udp.unreach")
)
