package netsim

import "sync"

// Counter names are interned into small integer IDs at first use, so the
// per-packet hot path (forwarding, link transmission, slow-path
// accounting) bumps a slice slot instead of hashing a string into a map
// millions of times per campaign. The registry is process-global: IDs
// are stable across Networks, which also lets shard replicas of the same
// topology share call-site IDs.
var counterReg = struct {
	sync.Mutex
	ids   map[string]int
	names []string
	local map[string]bool
}{ids: make(map[string]int), local: make(map[string]bool)}

// CounterID interns a counter name, returning its stable ID. Call sites
// on hot paths resolve their ID once (package init or construction) and
// use Network.CountID.
func CounterID(name string) int {
	counterReg.Lock()
	defer counterReg.Unlock()
	if id, ok := counterReg.ids[name]; ok {
		return id
	}
	id := len(counterReg.names)
	counterReg.ids[name] = id
	counterReg.names = append(counterReg.names, name)
	return id
}

// RegisterLocalCounter interns a counter name like CounterID but marks
// it engine-local: its value depends on per-engine evaluation order
// (cache maintenance, memoization hits, lazily observed fault windows)
// rather than counting simulated events, so it is not shard-invariant
// and must stay out of merged cross-shard totals. Observability
// consumers filter on CounterIsLocal.
func RegisterLocalCounter(name string) int {
	id := CounterID(name)
	counterReg.Lock()
	counterReg.local[name] = true
	counterReg.Unlock()
	return id
}

// CounterIsLocal reports whether name was registered as an engine-local
// diagnostic (see RegisterLocalCounter).
func CounterIsLocal(name string) bool {
	counterReg.Lock()
	defer counterReg.Unlock()
	return counterReg.local[name]
}

// counterName resolves an ID back to its name.
func counterName(id int) string {
	counterReg.Lock()
	defer counterReg.Unlock()
	return counterReg.names[id]
}

// lookupCounterID resolves a name without registering it.
func lookupCounterID(name string) (int, bool) {
	counterReg.Lock()
	defer counterReg.Unlock()
	id, ok := counterReg.ids[name]
	return id, ok
}

// counterSnapshot returns the registered names, index = ID.
func counterSnapshot() []string {
	counterReg.Lock()
	defer counterReg.Unlock()
	return append([]string(nil), counterReg.names...)
}

// CounterMark is a checkpoint of the process-global counter registry,
// taken with MarkCounters and restored with Reset. The registry only
// ever grows (interning is how shard replicas of one topology share
// call-site IDs), so long-lived processes that keep registering fresh
// dynamic names — test suites churning through ad-hoc counters,
// repeated topology rebuilds with generation-specific names — would
// otherwise leak interned strings and drift IDs across tests.
//
// Reset truncates the registry back to the checkpoint: IDs below the
// mark (including every pre-interned hot-path ID) keep their meaning,
// names registered after the mark are forgotten, and the next CounterID
// call reuses the freed ID range. Reset must only be called when no
// live Network still counts under post-mark IDs — Networks hold plain
// slices indexed by ID, so stale high IDs would silently alias onto
// newly registered names. It is a scoping tool for tests and
// long-running drivers, not something to call mid-campaign.
type CounterMark int

// MarkCounters checkpoints the current registry size.
func MarkCounters() CounterMark {
	counterReg.Lock()
	defer counterReg.Unlock()
	return CounterMark(len(counterReg.names))
}

// Reset restores the registry to the checkpoint, forgetting every name
// interned after it. See CounterMark for the safety contract.
func (m CounterMark) Reset() {
	counterReg.Lock()
	defer counterReg.Unlock()
	if int(m) >= len(counterReg.names) {
		return
	}
	for _, name := range counterReg.names[m:] {
		delete(counterReg.ids, name)
		delete(counterReg.local, name)
	}
	counterReg.names = counterReg.names[:m]
}

// NumCounters reports how many counter names are currently interned
// (diagnostics; pairs with MarkCounters/Reset in leak tests).
func NumCounters() int {
	counterReg.Lock()
	defer counterReg.Unlock()
	return len(counterReg.names)
}

// counterPad is the number of spare uint64 slots placed on each side of
// a freshly allocated counter slice. Shard replicas bump their counters
// concurrently during parallel campaigns; without padding, counter
// slices allocated back-to-back can land on the same cache line and the
// independent per-shard increments turn into cross-core false sharing.
// Eight slots = 64 bytes = one cache line on every platform we run on.
const counterPad = 8

// newCounters allocates a counter slice sized to the current registry,
// padded with counterPad slots on both sides. The full slice expression
// caps the result at its length, so a later append (registry grown after
// allocation) reallocates instead of overwriting the trailing pad. That
// growth path drops the padding — acceptable: it only triggers for
// counters interned after the network was built, which by construction
// are cold.
func newCounters() []uint64 {
	counterReg.Lock()
	n := len(counterReg.names)
	counterReg.Unlock()
	buf := make([]uint64, counterPad+n+counterPad)
	return buf[counterPad : counterPad+n : counterPad+n]
}

// Pre-interned IDs for the per-packet hot paths.
var (
	cLinkTx         = CounterID("link.tx")
	cLinkLoss       = CounterID("link.loss")
	cRouterFwd      = CounterID("router.fwd")
	cRouterSlowpath = CounterID("router.slowpath")
	cRouterStamped  = CounterID("router.rr.stamped")
	cRouterTS       = CounterID("router.ts.stamped")
	cHostInject     = CounterID("host.inject")
	cHostEchoReply  = CounterID("host.echo.reply")
	cHostUDPUnreach = CounterID("host.udp.unreach")

	// Route-flip observations happen when a router's memoized route
	// cache notices a withdrawal boundary during a lookup; how many a
	// given engine notices depends on its own traffic, so the counter
	// is engine-local (excluded from merged cross-shard totals).
	cChaosRouteFlip = RegisterLocalCounter("chaos.route.flip")

	// Epoch-churn blackholes are counted per lookup miss; like route
	// flips, the number of lookups that notice a churned prefix is a
	// function of the engine's own traffic, so the counter is local.
	cChaosChurn = RegisterLocalCounter("chaos.route.churn")
)
