package netsim

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"recordroute/internal/packet"
)

func TestPcapWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	p, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkt := []byte{0x45, 0, 0, 20}
	p.WritePacket(1500*time.Millisecond, pkt)
	if p.Err() != nil || p.Packets() != 1 {
		t.Fatalf("err=%v packets=%d", p.Err(), p.Packets())
	}
	out := buf.Bytes()
	if len(out) != 24+16+len(pkt) {
		t.Fatalf("capture length %d", len(out))
	}
	if got := binary.LittleEndian.Uint32(out[0:]); got != pcapMagic {
		t.Errorf("magic %#x", got)
	}
	if got := binary.LittleEndian.Uint32(out[20:]); got != pcapLinktypeRaw {
		t.Errorf("linktype %d", got)
	}
	// Record header: 1s, 500000us, lens.
	if got := binary.LittleEndian.Uint32(out[24:]); got != 1 {
		t.Errorf("ts_sec %d", got)
	}
	if got := binary.LittleEndian.Uint32(out[28:]); got != 500000 {
		t.Errorf("ts_usec %d", got)
	}
	if got := binary.LittleEndian.Uint32(out[32:]); got != uint32(len(pkt)) {
		t.Errorf("caplen %d", got)
	}
	if !bytes.Equal(out[40:], pkt) {
		t.Error("payload mismatch")
	}
}

func TestCaptureHostRecordsDeliveredPackets(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	var buf bytes.Buffer
	p, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	stop := CaptureHost(c.vp, p)
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 1, 1, 64, 9))
	c.net.Engine().Run()
	if p.Packets() != 1 {
		t.Fatalf("captured %d packets, want the echo reply", p.Packets())
	}
	stop()
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 2, 1, 64, 9))
	c.net.Engine().Run()
	if p.Packets() != 1 {
		t.Error("capture continued after stop")
	}
	// The captured record must decode as the reply datagram.
	rec := buf.Bytes()[24+16:]
	var ip packet.IPv4
	payload, err := ip.Decode(rec)
	if err != nil {
		t.Fatalf("captured packet undecodable: %v", err)
	}
	var icmp packet.ICMP
	if err := icmp.Decode(payload); err != nil || icmp.Type != packet.ICMPEchoReply {
		t.Errorf("captured %v, err=%v", icmp.Type, err)
	}
}
