package netsim

import (
	"encoding/binary"
	"io"
	"time"
)

// PcapWriter streams captured packets in libpcap format (LINKTYPE_RAW:
// each record is a bare IPv4 datagram), so simulated traffic can be
// inspected with tcpdump or Wireshark. Timestamps are virtual-clock
// offsets from the simulation epoch.
type PcapWriter struct {
	w   io.Writer
	err error
	n   int
}

// pcap magic for microsecond-resolution captures.
const (
	pcapMagic       = 0xa1b2c3d4
	pcapVersionMaj  = 2
	pcapVersionMin  = 4
	pcapSnapLen     = 65535
	pcapLinktypeRaw = 101
)

// NewPcapWriter writes the global header and returns a writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVersionMaj)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVersionMin)
	// thiszone, sigfigs: zero.
	binary.LittleEndian.PutUint32(hdr[16:], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], pcapLinktypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &PcapWriter{w: w}, nil
}

// WritePacket appends one captured datagram at the given virtual time.
// Errors are sticky; check Err after the capture.
func (p *PcapWriter) WritePacket(at time.Duration, pkt []byte) {
	if p.err != nil {
		return
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(at/time.Second))
	binary.LittleEndian.PutUint32(rec[4:], uint32(at%time.Second/time.Microsecond))
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(pkt)))
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(pkt)))
	if _, err := p.w.Write(rec[:]); err != nil {
		p.err = err
		return
	}
	if _, err := p.w.Write(pkt); err != nil {
		p.err = err
		return
	}
	p.n++
}

// Packets returns how many records were written.
func (p *PcapWriter) Packets() int { return p.n }

// Err returns the first write error, if any.
func (p *PcapWriter) Err() error { return p.err }

// CaptureHost attaches a pcap capture to a host, recording every packet
// delivered to it. An existing sniffer (e.g. a vantage point's prober)
// keeps receiving packets — the capture tees. The returned stop function
// restores the previous sniffer.
func CaptureHost(h *Host, p *PcapWriter) (stop func()) {
	prev := h.Sniffer()
	h.SetSniffer(func(at time.Duration, pkt []byte) {
		p.WritePacket(at, pkt)
		if prev != nil {
			prev(at, pkt)
		}
	})
	return func() { h.SetSniffer(prev) }
}
