package netsim

import (
	"fmt"
	"net/netip"
	"sort"
	"time"
)

// Node is anything attachable to the network: a router or a host.
type Node interface {
	// Name returns the node's unique name within its Network.
	Name() string
	// Receive handles a serialized IPv4 datagram arriving on iface.
	Receive(pkt []byte, on *Iface)
	// addIface registers a new interface during Connect.
	addIface(i *Iface)
}

// Iface is one end of a point-to-point link.
type Iface struct {
	// Addr is the interface's IPv4 address.
	Addr netip.Addr
	// Owner is the node this interface belongs to.
	Owner Node

	// id is the interface's index in its network's registry, assigned in
	// Connect creation order. Replica networks cloned from a snapshot
	// reuse the same ids, which is how shared route-plane structures
	// (FIBs, oracle closures) holding source-network interface pointers
	// resolve to the clone's own interfaces — see Network.localize.
	id     int32
	peer   *Iface
	delay  time.Duration
	loss   float64 // per-direction drop probability
	net    *Network
	faults *linkFaults // nil when no fault plan afflicts this direction
}

// Peer returns the interface at the other end of the link.
func (i *Iface) Peer() *Iface { return i.peer }

// SetLoss sets the probability that a packet transmitted from this
// interface is silently dropped (failure injection). Loss draws come
// from the network's deterministic RNG.
func (i *Iface) SetLoss(p float64) { i.loss = p }

// Send schedules pkt for delivery to the link peer after the link delay.
// Ownership of the buffer transfers to the network: it must not be
// modified or retained by the caller afterwards (it is recycled into the
// serialization pool once the receiver returns).
func (i *Iface) Send(pkt []byte) {
	if i.peer == nil {
		i.net.Count("drop.unconnected", 1)
		i.net.putBuf(pkt)
		return
	}
	if i.loss > 0 && i.net.lossDraw() < i.loss {
		i.net.CountID(cLinkLoss, 1)
		i.net.putBuf(pkt)
		return
	}
	delay := i.delay
	if f := i.faults; f != nil {
		if f.down.active(i.net.Now()) {
			i.net.CountID(cChaosLinkDown, 1)
			i.net.putBuf(pkt)
			return
		}
		if f.loss > 0 && chaosDraw(f.salt, chaosSaltLoss, pkt) < f.loss {
			i.net.CountID(cChaosLoss, 1)
			i.net.putBuf(pkt)
			return
		}
		if f.jitterMax > 0 {
			delay += time.Duration(chaosDraw(f.salt, chaosSaltJitter, pkt) * float64(f.jitterMax))
		}
		if f.dup > 0 && chaosDraw(f.salt, chaosSaltDup, pkt) < f.dup {
			cp := append(i.net.getBuf(), pkt...)
			i.net.CountID(cChaosDup, 1)
			i.net.engine.scheduleDelivery(delay+i.delay/2, cp, i.peer)
		}
	}
	i.net.CountID(cLinkTx, 1)
	i.net.engine.scheduleDelivery(delay, pkt, i.peer)
}

// seedIPID derives a device's initial IP-ID counter value from its name
// (FNV-1a), so distinct devices start far apart — as real, long-running
// devices do. Interfaces of one device share the counter; that shared
// monotonic sequence is what MIDAR-style alias resolution detects.
func seedIPID(name string) uint16 {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return uint16(h>>16) ^ uint16(h)
}

// Network owns the engine, the nodes, and global counters.
type Network struct {
	engine   *Engine
	nodes    []Node
	byName   map[string]Node
	nameIdx  map[string]int // frozen name → nodes index, shared by clones
	ifaces   []*Iface       // registry in Connect order; index = Iface.id
	frozen   bool           // immutable route plane; see Freeze
	counters []uint64       // indexed by interned counter ID
	lossRNG  uint64         // xorshift state for deterministic loss draws
	// faultEpoch is the coarse virtual clock of a recurring campaign:
	// epoch-churned prefixes (FaultConfig.ChurnProb) are withdrawn or
	// present as a pure function of this value. It is overlay state —
	// clones inherit it from their snapshot source, and it never enters
	// the frozen route plane or the topology digest.
	faultEpoch int
	hook       func(at time.Duration, counter string)
	bufs     [][]byte // free list of serialization buffers
	bufSlab  []byte   // arena the free list's buffers are carved from

	// Observability hooks (see obs.go); both nil/off by default so the
	// per-packet paths pay only a nil check.
	tracer     TraceFunc
	nodeCounts map[string][]uint64 // node name → counters by ID
}

// bufCap is the capacity of pooled packet buffers: 128 bytes covers an
// IPv4 header, a 40-byte RR/TS option, and every payload the simulator
// generates. A packet that outgrows it reallocates out of the arena (the
// append in AppendTo copies to a fresh heap slice) and simply never
// returns to the pool — putBuf screens on capacity.
const bufCap = 128

// bufSlabSize is the arena growth quantum: 256 buffers (32 KiB) at a
// time, so the steady-state pool for a whole replica lives in a handful
// of large pointer-free allocations the GC scans in O(slabs), not
// O(packets in flight).
const bufSlabSize = 256 * bufCap

// getBuf returns an empty buffer for packet serialization, reusing a
// recycled one when available and carving a fresh one from the buffer
// arena otherwise. Buffers flow: getBuf → AppendTo → Iface.Send →
// delivery → putBuf. Receivers must never retain delivered packet bytes
// beyond Receive (the long-standing Send/sniffer contract), which is
// what makes the recycling safe.
func (n *Network) getBuf() []byte {
	if len(n.bufs) == 0 {
		if len(n.bufSlab) < bufCap {
			n.bufSlab = make([]byte, bufSlabSize)
		}
		b := n.bufSlab[:0:bufCap]
		n.bufSlab = n.bufSlab[bufCap:]
		return b
	}
	b := n.bufs[len(n.bufs)-1]
	n.bufs = n.bufs[:len(n.bufs)-1]
	return b
}

// putBuf returns a packet buffer to the free list. Buffers that grew
// past bufCap escaped the arena on their growth append; recycling them
// anyway is fine — the pool tracks slices, not arena offsets.
func (n *Network) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	n.bufs = append(n.bufs, b[:0])
}

// lossSeed is the fixed initial xorshift state for link-loss draws;
// replicas cloned from a snapshot restart from it, exactly like a fresh
// build.
const lossSeed = 0x9e3779b97f4a7c15

// New returns an empty network with a fresh engine. Counters are
// preallocated to the interned-registry size (cache-line padded, see
// newCounters) so hot-path CountID never grows the slice and parallel
// shard replicas never share a counter cache line.
func New() *Network {
	return &Network{
		engine:   NewEngine(),
		byName:   make(map[string]Node),
		lossRNG:  lossSeed,
		counters: newCounters(),
	}
}

// lossDraw returns a deterministic uniform draw in [0, 1) for link-loss
// decisions (xorshift64*, cheap and reproducible).
func (n *Network) lossDraw() float64 {
	x := n.lossRNG
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	n.lossRNG = x
	return float64(x*0x2545f4914f6cdd1d>>11) / float64(1<<53)
}

// Engine returns the network's event engine.
func (n *Network) Engine() *Engine { return n.engine }

// FaultEpoch returns the current fault epoch (see SetFaultEpoch).
func (n *Network) FaultEpoch() int { return n.faultEpoch }

// SetFaultEpoch advances the long-horizon churn clock: epoch-churned
// prefixes are withdrawn for the whole of epoch e iff their per-epoch
// draw fires (routerFaults.churned). Route memos of churn-afflicted
// routers are invalidated so lookups cached under the previous epoch
// never leak across the boundary. Campaigns set the epoch once, before
// any traffic; within an epoch churn is constant, which is what keeps
// renders byte-identical across shard counts and restarts.
func (n *Network) SetFaultEpoch(e int) {
	if e == n.faultEpoch {
		return
	}
	n.faultEpoch = e
	for _, node := range n.nodes {
		if r, ok := node.(*Router); ok && r.faults != nil && r.faults.churnPrefix.IsValid() {
			r.invalidateRoutes()
		}
	}
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.engine.Now() }

// Count adds delta to the named counter. Counter names are dotted paths
// such as "drop.ratelimit" or "fwd.options". Hot paths pre-intern the
// name with CounterID and call CountID instead.
func (n *Network) Count(name string, delta uint64) {
	n.CountID(CounterID(name), delta)
}

// CountID adds delta to the counter with the given interned ID.
func (n *Network) CountID(id int, delta uint64) {
	if id >= len(n.counters) {
		n.counters = append(n.counters, make([]uint64, id+1-len(n.counters))...)
	}
	n.counters[id] += delta
	if n.hook != nil {
		n.hook(n.engine.Now(), counterName(id))
	}
}

// SetEventHook installs a live observer invoked on every counter event
// with the virtual time and counter name — a lightweight tracing
// facility for debugging simulations. Pass nil to remove it.
func (n *Network) SetEventHook(fn func(at time.Duration, counter string)) { n.hook = fn }

// Counter returns the named counter's value.
func (n *Network) Counter(name string) uint64 {
	id, ok := lookupCounterID(name)
	if !ok || id >= len(n.counters) {
		return 0
	}
	return n.counters[id]
}

// Counters returns a sorted snapshot of all nonzero counters, for logs
// and tests.
func (n *Network) Counters() []string {
	names := counterSnapshot()
	var out []string
	for id, v := range n.counters {
		if v != 0 {
			out = append(out, fmt.Sprintf("%s=%d", names[id], v))
		}
	}
	sort.Strings(out)
	return out
}

// Node returns the named node, or nil. Clones resolve through the
// shared frozen name index instead of carrying their own map.
func (n *Network) Node(name string) Node {
	if n.byName != nil {
		return n.byName[name]
	}
	if i, ok := n.nameIdx[name]; ok {
		return n.nodes[i]
	}
	return nil
}

// NumNodes returns how many nodes have been added.
func (n *Network) NumNodes() int { return len(n.nodes) }

// register adds a node, panicking on duplicate names: topology
// construction bugs should fail loudly at build time, not mid-run.
func (n *Network) register(node Node) {
	if n.byName == nil {
		// A clone adding nodes materializes its own name map, seeded from
		// the shared frozen index it no longer matches.
		n.byName = make(map[string]Node, len(n.nodes)+1)
		for _, existing := range n.nodes {
			n.byName[existing.Name()] = existing
		}
	}
	if _, dup := n.byName[node.Name()]; dup {
		panic("netsim: duplicate node name " + node.Name())
	}
	switch v := node.(type) {
	case *Router:
		v.idx = len(n.nodes)
	case *Host:
		v.idx = len(n.nodes)
	}
	n.nodes = append(n.nodes, node)
	n.byName[node.Name()] = node
}

// localize maps an interface of a snapshot source network onto this
// network's replica of it: identity for nil and for this network's own
// interfaces, an id-indexed registry lookup for cloned planes. The
// address check lets hand-built interfaces that never joined a registry
// pass through untouched.
func (n *Network) localize(via *Iface) *Iface {
	if via == nil || via.net == n {
		return via
	}
	if int(via.id) < len(n.ifaces) {
		if l := n.ifaces[via.id]; l.Addr == via.Addr {
			return l
		}
	}
	return via
}

// Connect links two nodes with a bidirectional point-to-point link.
// addrA and addrB become the interface addresses on each side and delay
// applies in both directions. It returns the two interfaces.
func (n *Network) Connect(a, b Node, addrA, addrB netip.Addr, delay time.Duration) (*Iface, *Iface) {
	ia := &Iface{Addr: addrA, Owner: a, delay: delay, net: n, id: int32(len(n.ifaces))}
	ib := &Iface{Addr: addrB, Owner: b, delay: delay, net: n, id: int32(len(n.ifaces) + 1)}
	n.ifaces = append(n.ifaces, ia, ib)
	ia.peer, ib.peer = ib, ia
	a.addIface(ia)
	b.addIface(ib)
	// Routers learn connected host routes to their link peers, as real
	// routers do; everything else is the route computation's job.
	// AddRoute (not fib.Add) so the router's route cache is invalidated.
	if r, ok := a.(*Router); ok {
		r.AddRoute(netip.PrefixFrom(addrB, 32), ia)
	}
	if r, ok := b.(*Router); ok {
		r.AddRoute(netip.PrefixFrom(addrA, 32), ib)
	}
	return ia, ib
}
