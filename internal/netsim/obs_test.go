package netsim

import (
	"net/netip"
	"reflect"
	"testing"
	"time"
)

// traceRec is one captured TraceFunc invocation.
type traceRec struct {
	at    time.Duration
	node  string
	event string
	src   netip.Addr
	dst   netip.Addr
}

// runChainPingRR runs one ping-RR through a 3-router chain, optionally
// with a tracer and per-node counters, and returns the chain.
func runChainPingRR(t *testing.T, tracer TraceFunc, perNode bool) *chain {
	t.Helper()
	c := buildChain(3, nil, DefaultHostBehavior())
	if tracer != nil {
		c.net.SetTracer(tracer)
	}
	if perNode {
		c.net.EnableNodeCounters()
	}
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 7, 1, 64, 9))
	c.net.Engine().Run()
	return c
}

// TestTracerDoesNotPerturbRun is the observability contract: attaching
// a tracer (and per-node attribution) must leave the simulation
// byte-identical — same replies, same timing, same counters.
func TestTracerDoesNotPerturbRun(t *testing.T) {
	plain := runChainPingRR(t, nil, false)
	traced := runChainPingRR(t, func(time.Duration, string, string, netip.Addr, netip.Addr) {}, true)

	if got, want := len(traced.replies), len(plain.replies); got != want {
		t.Fatalf("traced run saw %d replies, plain %d", got, want)
	}
	for i := range plain.replies {
		if traced.replies[i].at != plain.replies[i].at {
			t.Errorf("reply %d at %v traced vs %v plain", i, traced.replies[i].at, plain.replies[i].at)
		}
		if !reflect.DeepEqual(traced.replies[i].raw, plain.replies[i].raw) {
			t.Errorf("reply %d bytes differ under tracing", i)
		}
	}
	if got, want := traced.net.Counters(), plain.net.Counters(); !reflect.DeepEqual(got, want) {
		t.Errorf("counters differ under tracing:\n traced %v\n plain  %v", got, want)
	}
	if traced.net.Now() != plain.net.Now() {
		t.Errorf("clock differs: traced %v plain %v", traced.net.Now(), plain.net.Now())
	}
}

// TestTraceEventsEmitted checks the forward path's event stream: every
// router admits the options packet to the slow path and stamps it, the
// destination replies, and virtual timestamps never run backwards.
func TestTraceEventsEmitted(t *testing.T) {
	var evs []traceRec
	runChainPingRR(t, func(at time.Duration, node, event string, src, dst netip.Addr) {
		evs = append(evs, traceRec{at, node, event, src, dst})
	}, false)

	if len(evs) == 0 {
		t.Fatal("no trace events")
	}
	count := make(map[string]int)
	var last time.Duration
	for i, e := range evs {
		count[e.event]++
		if e.at < last {
			t.Fatalf("event %d (%s) at %v precedes previous at %v", i, e.event, e.at, last)
		}
		last = e.at
	}
	// Forward path: 3 slow-path admissions and 3 stamps; reply path: the
	// copied option is stamped by the 3 routers on the way back.
	if count["router.slowpath"] != 6 || count["router.rr.stamped"] != 6 {
		t.Errorf("slowpath=%d stamped=%d, want 6 and 6 (forward + reply)",
			count["router.slowpath"], count["router.rr.stamped"])
	}
	if count["host.echo.reply"] != 1 {
		t.Errorf("host.echo.reply=%d, want 1", count["host.echo.reply"])
	}
	// The first event belongs to the first router and carries the
	// decoded probe addresses.
	if evs[0].node != "r0" || evs[0].src != a(vpAddrStr) || evs[0].dst != a(destAddrStr) {
		t.Errorf("first event = %+v, want r0 observing vp→dest", evs[0])
	}
}

// TestNodeCountersAttribution checks that per-node counters, when
// enabled, partition the node-emitted totals exactly.
func TestNodeCountersAttribution(t *testing.T) {
	c := runChainPingRR(t, nil, true)
	nodes := c.net.NodeCounters()
	if nodes == nil {
		t.Fatal("NodeCounters() nil after EnableNodeCounters")
	}
	total := c.net.CounterMap()
	for _, name := range []string{"router.rr.stamped", "router.fwd", "router.slowpath", "host.echo.reply"} {
		var sum uint64
		for _, nc := range nodes {
			sum += nc[name]
		}
		if sum != total[name] {
			t.Errorf("%s: per-node sum %d != network total %d", name, sum, total[name])
		}
	}
	// Each chain router stamped once forward and once on the reply.
	for _, r := range []string{"r0", "r1", "r2"} {
		if got := nodes[r]["router.rr.stamped"]; got != 2 {
			t.Errorf("%s stamped %d, want 2", r, got)
		}
	}
	if got := nodes["dest"]["host.echo.reply"]; got != 1 {
		t.Errorf("dest echo replies = %d, want 1", got)
	}
}

// TestNodeCountersDisabledByDefault: no attribution unless asked.
func TestNodeCountersDisabledByDefault(t *testing.T) {
	c := runChainPingRR(t, nil, false)
	if c.net.NodeCountersEnabled() || c.net.NodeCounters() != nil {
		t.Fatal("per-node counters on without EnableNodeCounters")
	}
}

// BenchmarkForwardObservability measures the chain forward path with
// observability off (the default every campaign pays), with a tracer
// attached, and with per-node attribution — the allocation guard for
// the zero-overhead-when-disabled contract: the "off" case must stay
// allocation-flat relative to the pre-observability forwarding path.
func BenchmarkForwardObservability(b *testing.B) {
	run := func(b *testing.B, tracer TraceFunc, perNode bool) {
		c := buildChain(3, nil, DefaultHostBehavior())
		if tracer != nil {
			c.net.SetTracer(tracer)
		}
		if perNode {
			c.net.EnableNodeCounters()
		}
		c.vp.SetSniffer(nil)
		hdr := makePingRR(b, a(vpAddrStr), a(destAddrStr), 7, 1, 64, 9)
		// Warm the serialization pool and route caches.
		c.vp.Inject(append(c.net.getBuf(), hdr...))
		c.net.Engine().Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.vp.Inject(append(c.net.getBuf(), hdr...))
			c.net.Engine().Run()
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil, false) })
	b.Run("tracer", func(b *testing.B) {
		run(b, func(time.Duration, string, string, netip.Addr, netip.Addr) {}, false)
	})
	b.Run("per-node", func(b *testing.B) { run(b, nil, true) })
}
