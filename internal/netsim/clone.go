package netsim

// Snapshot/clone support: a built Network can be frozen into an
// immutable route plane and cheaply replicated. The plane — interface
// wiring, link delays, FIB contents, the routing oracle, host address
// sets, link-fault parameters — is identical across every seed-identical
// replica, so clones share it read-only behind copy-on-write flags. Only
// the mutable overlay is rebuilt per clone: engine (virtual clock +
// event queue), counters, token buckets, IP-ID counters, loss RNG,
// per-router withdrawal observations, caches, and observability hooks.
// Each of those restarts in its pristine post-build state, so a clone is
// behaviorally indistinguishable from a fresh topology.Build of the same
// Config — regardless of how much traffic the source has carried since.

// Freeze marks the network as an immutable route plane that clones may
// share. It is idempotent and must be called (directly or via the first
// Clone) before any concurrent cloning: after it returns, Clone only
// reads the source. Frozen networks keep working normally — the
// copy-on-write flags make later AddRoute/AddAlias/Connect calls copy
// the shared structure instead of mutating it.
func (n *Network) Freeze() {
	if n.frozen {
		return
	}
	for _, node := range n.nodes {
		switch v := node.(type) {
		case *Router:
			v.fibShared = true
			v.localShared = true
			// The memoized routes become the shared frozen base — except
			// on routers with transient withdrawals or epoch churn, whose
			// lookups depend on the clock (or the fault epoch): a stale
			// memo must never leak into a replica starting at clock zero
			// or running under a different epoch.
			if f := v.faults; f == nil || (f.withdraw.duty == 0 && !f.churnPrefix.IsValid()) {
				if len(v.routeCache) > 0 {
					v.routeBase = v.routeCache
					v.routeCache = nil
				}
			}
		case *Host:
			v.localShared = true
		}
	}
	// The name index is immutable plane state: clones share it instead
	// of building a node map apiece.
	n.nameIdx = make(map[string]int, len(n.nodes))
	for i, node := range n.nodes {
		n.nameIdx[node.Name()] = i
	}
	n.frozen = true
}

// Clone returns a new Network sharing this network's frozen route plane,
// with every mutable element reset to its pristine post-build state.
// The first call freezes the source; once frozen, concurrent Clone calls
// are safe (pure reads of the source).
func (n *Network) Clone() *Network {
	n.Freeze()
	c := &Network{
		engine:  NewEngine(),
		nodes:   make([]Node, 0, len(n.nodes)),
		nameIdx: n.nameIdx,
		ifaces:  make([]*Iface, len(n.ifaces)),
		lossRNG: lossSeed,
		// The fault epoch is overlay state, not plane state: replicas
		// start in the source's epoch so all shards of one campaign see
		// the same churn weather.
		faultEpoch: n.faultEpoch,
		counters:   newCounters(),
	}
	// Replica structs come from per-kind blocks (one allocation each, not
	// one per node/interface): clone cost is GC-bound, and tens of
	// thousands of small objects dominate it otherwise.
	var numRouters, numHosts, numRefs int
	for _, node := range n.nodes {
		switch v := node.(type) {
		case *Router:
			numRouters++
			numRefs += len(v.ifaces)
		case *Host:
			numHosts++
		default:
			panic("netsim: Clone: unknown node kind: " + node.Name())
		}
	}
	shells := make([]Iface, len(n.ifaces))
	for i, o := range n.ifaces {
		shells[i] = Iface{Addr: o.Addr, id: o.id, delay: o.delay, loss: o.loss, faults: o.faults, net: c}
		c.ifaces[i] = &shells[i]
	}
	for i, o := range n.ifaces {
		if o.peer != nil {
			c.ifaces[i].peer = c.ifaces[o.peer.id]
		}
	}
	routers := make([]Router, numRouters)
	hosts := make([]Host, numHosts)
	refs := make([]*Iface, numRefs)
	for _, node := range n.nodes {
		switch v := node.(type) {
		case *Router:
			r := &routers[0]
			routers = routers[1:]
			c.adoptRouter(v, r, refs[:len(v.ifaces):len(v.ifaces)])
			refs = refs[len(v.ifaces):]
		case *Host:
			h := &hosts[0]
			hosts = hosts[1:]
			c.adoptHost(v, h)
		}
	}
	for i, o := range n.ifaces {
		if o.Owner != nil {
			c.ifaces[i].Owner = c.nodes[nodeIndex(o.Owner)]
		}
	}
	return c
}

// adoptRouter appends a replica of a source-network router: shared
// frozen plane (FIB, oracle closure, local-address set, memoized route
// base), pristine overlay (policers, IP-ID, caches, withdrawal
// observations). r and ifaces are the caller's block-allocated shells.
func (c *Network) adoptRouter(o *Router, r *Router, ifaces []*Iface) {
	*r = Router{
		name:        o.name,
		net:         c,
		idx:         o.idx,
		behavior:    o.behavior,
		fib:         o.fib,
		fibShared:   true,
		routeFn:     o.routeFn,
		local:       o.local,
		localShared: true,
		routeBase:   o.routeBase,
		ipid:        seedIPID(o.name),
	}
	// Policer state is copy-on-write: no bucket is allocated here — the
	// replica materializes its own from the shared behavior config on
	// first token consumption (Router.optionsLimiter/icmpErrLimiter),
	// which is exact because a fresh bucket starts full and refills clamp
	// at burst. Clones of a dirty source therefore behave like fresh
	// builds, and unpoliced replicas never pay for bucket heap.
	if o.faults != nil {
		f := *o.faults
		f.wFlips = 0 // no withdrawal window observed yet at clock zero
		r.faults = &f
	}
	for i, ifc := range o.ifaces {
		ifaces[i] = c.ifaces[ifc.id]
	}
	r.ifaces = ifaces
	c.nodes = append(c.nodes, r)
}

// adoptHost appends a replica of a source-network host: shared address
// set, pristine IP-ID, no sniffer (probers install their own). h is the
// caller's block-allocated shell.
func (c *Network) adoptHost(o *Host, h *Host) {
	*h = Host{
		name:        o.name,
		net:         c,
		idx:         o.idx,
		behavior:    o.behavior,
		addrs:       o.addrs,
		local:       o.local,
		localShared: true,
		ipid:        seedIPID(o.name),
	}
	if o.uplink != nil {
		h.uplink = c.ifaces[o.uplink.id]
	}
	c.nodes = append(c.nodes, h)
}

// nodeIndex returns a node's registration index within its network.
func nodeIndex(node Node) int {
	switch v := node.(type) {
	case *Router:
		return v.idx
	case *Host:
		return v.idx
	}
	return -1
}

// Counterpart maps a node of the snapshot source network onto this
// clone's replica of it — same registration index, same name and kind —
// or nil for a node this network does not hold. Topology snapshots use
// it to remap router/VP/destination references.
func (n *Network) Counterpart(orig Node) Node {
	if orig == nil {
		return nil
	}
	i := nodeIndex(orig)
	if i < 0 || i >= len(n.nodes) {
		return nil
	}
	return n.nodes[i]
}
