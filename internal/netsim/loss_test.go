package netsim

import (
	"testing"
	"time"
)

func TestLinkLossDropsConfiguredFraction(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	// 30% loss on the VP's uplink direction only.
	c.vp.Uplink().SetLoss(0.3)
	for i := 0; i < 1000; i++ {
		c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), uint16(i), 1, 64, 0))
	}
	c.net.Engine().Run()
	lost := c.net.Counter("link.loss")
	if lost < 230 || lost > 370 {
		t.Errorf("lost %d of 1000 at 30%% loss", lost)
	}
	if got := len(c.replies); got != 1000-int(lost) {
		t.Errorf("replies = %d, want %d (every delivered probe answered)", got, 1000-int(lost))
	}
}

func TestLinkLossDeterministic(t *testing.T) {
	run := func() uint64 {
		c := buildChain(2, nil, DefaultHostBehavior())
		c.vp.Uplink().SetLoss(0.1)
		for i := 0; i < 500; i++ {
			c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), uint16(i), 1, 64, 0))
		}
		c.net.Engine().Run()
		return c.net.Counter("link.loss")
	}
	if a, b := run(), run(); a != b {
		t.Errorf("loss draws not reproducible: %d vs %d", a, b)
	}
}

func TestLinkLossZeroByDefault(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	for i := 0; i < 100; i++ {
		c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), uint16(i), 1, 64, 0))
	}
	c.net.Engine().Run()
	if got := c.net.Counter("link.loss"); got != 0 {
		t.Errorf("default links lost %d packets", got)
	}
	if len(c.replies) != 100 {
		t.Errorf("replies = %d", len(c.replies))
	}
}

// TestProbeRetryMasksLoss shows the measurement-level consequence: the
// paper's three-ping responsiveness probe tolerates loss a single ping
// would misclassify.
func TestProbeRetryMasksLoss(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	c.vp.Uplink().SetLoss(0.4)
	const dests = 300 // 300 "destinations", 3 pings each → 900 probes
	answered := make(map[uint16]bool)
	for i := 0; i < dests; i++ {
		for r := 0; r < 3; r++ {
			c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), uint16(i), uint16(r), 64, 0))
		}
	}
	c.net.Engine().Run()
	for _, rep := range c.replies {
		_, icmp := decodeReply(t, rep.raw)
		answered[icmp.ID] = true
	}
	// P(all three lost) at 40% per-direction loss (counting both ways:
	// p_fail = 1-0.6*0.6 = 0.64) is 0.26; with one ping it would be
	// 0.64. Three tries must classify clearly more dests responsive.
	got := len(answered)
	if got < dests/2 {
		t.Errorf("three-ping retry classified only %d/%d responsive", got, dests)
	}
}

func TestICMPErrorRateLimiting(t *testing.T) {
	c := buildChain(3, func(i int) RouterBehavior {
		if i == 1 {
			return RouterBehavior{ICMPErrorRateLimit: 10}
		}
		return RouterBehavior{}
	}, DefaultHostBehavior())
	// 100 TTL-2 probes in one instant: R1 must expire them all but may
	// emit only its error budget (burst 5).
	for i := 0; i < 100; i++ {
		c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), uint16(i), 1, 2, 0))
	}
	c.net.Engine().Run()
	if got := c.net.Counter("router.ttl.expired"); got != 100 {
		t.Fatalf("expired = %d, want 100", got)
	}
	if got := c.net.Counter("router.drop.errlimit"); got != 95 {
		t.Errorf("error-limited drops = %d, want 95 (burst 5)", got)
	}
	if len(c.replies) != 5 {
		t.Errorf("time-exceeded received = %d, want 5", len(c.replies))
	}
}

func TestICMPErrorsUnlimitedByDefault(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	for i := 0; i < 50; i++ {
		c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), uint16(i), 1, 1, 0))
	}
	c.net.Engine().Run()
	if len(c.replies) != 50 {
		t.Errorf("replies = %d, want all 50", len(c.replies))
	}
}

func TestEventHookObservesDrops(t *testing.T) {
	c := buildChain(2, func(i int) RouterBehavior {
		if i == 0 {
			return RouterBehavior{DropOptions: true}
		}
		return RouterBehavior{}
	}, DefaultHostBehavior())
	var events []string
	c.net.SetEventHook(func(_ time.Duration, counter string) {
		events = append(events, counter)
	})
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 1, 1, 64, 9))
	c.net.Engine().Run()
	found := false
	for _, e := range events {
		if e == "router.drop.filter" {
			found = true
		}
	}
	if !found {
		t.Errorf("hook missed the filter drop: %v", events)
	}
	c.net.SetEventHook(nil)
	n := len(events)
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 2, 1, 64, 9))
	c.net.Engine().Run()
	if len(events) != n {
		t.Error("hook fired after removal")
	}
}
