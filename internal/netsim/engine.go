// Package netsim is a deterministic, packet-level discrete-event network
// simulator. Nodes (routers and hosts) exchange real serialized IPv4
// datagrams over point-to-point links with configurable delays; routers
// perform longest-prefix-match forwarding, decrement TTL, generate ICMP
// errors with quoted headers, process IP options on a simulated slow path
// behind a token-bucket rate limiter, and stamp Record Route options.
//
// The simulator runs on a virtual clock: time advances only when the
// event queue is drained, so experiments that take minutes of simulated
// wall-clock time (e.g. probing at a fixed packets-per-second rate)
// complete in milliseconds and are exactly reproducible.
package netsim

import (
	"time"
)

// event is the payload of a scheduled occurrence: either a callback
// (fn != nil) or a packet delivery (pkt/dst set). Packet deliveries are
// a dedicated event kind so the per-packet hot path schedules no closure
// and the engine can recycle the buffer once the receiver returns.
// Payloads live in the engine's slab (see Engine), not in the heap
// array.
type event struct {
	fn  func()
	pkt []byte
	dst *Iface
}

// heapEntry is one slot of the scheduling heap: the (at, seq) ordering
// key plus the slab index of the event payload. Splitting key from
// payload matters twice over on shard fleets: sift swaps move 24-byte
// pointer-free entries instead of 56-byte events (queue depths reach
// tens of thousands, and sift moves dominated the Figure 1 CPU
// profile), and because heapEntry contains no pointers the GC never
// scans the heap array at all — with K replica engines alive, K queues'
// worth of scan work used to multiply into every GC cycle.
type heapEntry struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for equal timestamps: determinism
	idx int32  // payload slot in Engine.slab
}

// Engine is the discrete-event scheduler. It is not safe for concurrent
// use; the whole simulation is single-threaded and deterministic.
//
// Event payloads are arena-backed: they live in a per-engine slab whose
// slots are recycled through a free list, so scheduling allocates no
// per-event objects and a fleet of K engines keeps K slabs — a handful
// of large, mostly-stable heap objects — instead of K growing
// populations of small ones for the GC to trace.
type Engine struct {
	pq   []heapEntry // d-ary min-heap ordered by (at, seq); pointer-free
	slab []event     // event payload arena, indexed by heapEntry.idx
	free []int32     // recycled slab slots
	now  time.Duration
	seq  uint64
	nRun uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nRun }

// alloc places an event payload into the slab and returns its slot.
func (e *Engine) alloc(ev event) int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		e.slab[idx] = ev
		return idx
	}
	e.slab = append(e.slab, ev)
	return int32(len(e.slab) - 1)
}

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero. Events scheduled for the same instant run in
// scheduling order.
func (e *Engine) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.seq++
	e.push(heapEntry{at: e.now + d, seq: e.seq, idx: e.alloc(event{fn: fn})})
}

// scheduleDelivery enqueues a packet delivery to dst after delay d,
// ordered exactly like Schedule. The engine owns pkt until delivery and
// returns it to the owning network's buffer pool afterwards.
func (e *Engine) scheduleDelivery(d time.Duration, pkt []byte, dst *Iface) {
	if d < 0 {
		d = 0
	}
	e.seq++
	e.push(heapEntry{at: e.now + d, seq: e.seq, idx: e.alloc(event{pkt: pkt, dst: dst})})
}

// At runs fn at absolute virtual time t (or now, if t is in the past).
func (e *Engine) At(t time.Duration, fn func()) {
	e.Schedule(t-e.now, fn)
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for len(e.pq) > 0 {
		e.step()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t. Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d more of virtual time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

func (e *Engine) step() {
	top := e.pop()
	if top.at > e.now {
		e.now = top.at
	}
	e.nRun++
	ev := e.slab[top.idx]
	e.slab[top.idx] = event{} // release buffer/closure references
	e.free = append(e.free, top.idx)
	if ev.fn != nil {
		ev.fn()
		return
	}
	dst := ev.dst
	dst.Owner.Receive(ev.pkt, dst)
	dst.net.putBuf(ev.pkt)
}

// The heap is hand-rolled rather than container/heap: the interface
// indirection there boxes one entry per Push/Pop, which dominates
// allocation in packet-heavy runs. It is 4-ary rather than binary —
// batch campaigns pre-schedule every paced send, so the queue holds tens
// of thousands of entries and the halved depth cuts the struct moves
// that dominate sift costs. Entries carry only (at, seq, slab index),
// so comparisons never chase a pointer and swaps stay small.

func (e *Engine) less(i, j int) bool {
	if e.pq[i].at != e.pq[j].at {
		return e.pq[i].at < e.pq[j].at
	}
	return e.pq[i].seq < e.pq[j].seq
}

func (e *Engine) push(ent heapEntry) {
	e.pq = append(e.pq, ent)
	i := len(e.pq) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(i, parent) {
			break
		}
		e.pq[i], e.pq[parent] = e.pq[parent], e.pq[i]
		i = parent
	}
}

func (e *Engine) pop() heapEntry {
	top := e.pq[0]
	n := len(e.pq) - 1
	e.pq[0] = e.pq[n]
	e.pq = e.pq[:n]
	i := 0
	for {
		smallest := i
		first := 4*i + 1
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if e.less(c, smallest) {
				smallest = c
			}
		}
		if smallest == i {
			break
		}
		e.pq[i], e.pq[smallest] = e.pq[smallest], e.pq[i]
		i = smallest
	}
	return top
}
