// Package netsim is a deterministic, packet-level discrete-event network
// simulator. Nodes (routers and hosts) exchange real serialized IPv4
// datagrams over point-to-point links with configurable delays; routers
// perform longest-prefix-match forwarding, decrement TTL, generate ICMP
// errors with quoted headers, process IP options on a simulated slow path
// behind a token-bucket rate limiter, and stamp Record Route options.
//
// The simulator runs on a virtual clock: time advances only when the
// event queue is drained, so experiments that take minutes of simulated
// wall-clock time (e.g. probing at a fixed packets-per-second rate)
// complete in milliseconds and are exactly reproducible.
package netsim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback in virtual time.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for equal timestamps: determinism
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is the discrete-event scheduler. It is not safe for concurrent
// use; the whole simulation is single-threaded and deterministic.
type Engine struct {
	pq   eventHeap
	now  time.Duration
	seq  uint64
	nRun uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nRun }

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero. Events scheduled for the same instant run in
// scheduling order.
func (e *Engine) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.seq++
	heap.Push(&e.pq, event{at: e.now + d, seq: e.seq, fn: fn})
}

// At runs fn at absolute virtual time t (or now, if t is in the past).
func (e *Engine) At(t time.Duration, fn func()) {
	e.Schedule(t-e.now, fn)
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for len(e.pq) > 0 {
		e.step()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t. Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d more of virtual time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

func (e *Engine) step() {
	ev := heap.Pop(&e.pq).(event)
	if ev.at > e.now {
		e.now = ev.at
	}
	e.nRun++
	ev.fn()
}
