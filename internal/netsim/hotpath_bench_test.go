package netsim

import (
	"net/netip"
	"testing"

	"recordroute/internal/packet"
)

// Hot-path microbenchmarks for the per-packet costs campaign runs are
// made of: FIB lookups, memoized route resolution, and packet
// serialization into pooled buffers. Each pairs the optimized path with
// the path it replaced so regressions show up as a ratio, not a guess.

func benchAddr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
}

// BenchmarkFIBLookup compares the /32 host-route fast path (the common
// case: connected-peer routes) against the longest-prefix walk a miss
// falls back to.
func BenchmarkFIBLookup(b *testing.B) {
	fib := NewFIB()
	dummy := &Iface{}
	for i := 0; i < 256; i++ {
		fib.Add(netip.PrefixFrom(benchAddr(i), 32), dummy)
	}
	for _, bits := range []int{8, 12, 16, 20, 24} {
		p, _ := netip.AddrFrom4([4]byte{172, 16, byte(bits), 0}).Prefix(bits)
		fib.Add(p, dummy)
	}
	hostDst := benchAddr(128)
	lpmDst := netip.AddrFrom4([4]byte{172, 16, 200, 9}) // matches /8 after walking 24,20,16,12

	b.Run("host-route", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if fib.Lookup(hostDst) == nil {
				b.Fatal("missing host route")
			}
		}
	})
	b.Run("lpm-walk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if fib.Lookup(lpmDst) == nil {
				b.Fatal("missing lpm route")
			}
		}
	})
}

// BenchmarkRouterRouteLookup compares the memoized per-destination
// route cache against the uncached resolution every packet used to pay.
func BenchmarkRouterRouteLookup(b *testing.B) {
	n := New()
	r := n.AddRouter("r", RouterBehavior{})
	peer := n.AddRouter("peer", RouterBehavior{})
	via, _ := n.Connect(r, peer, benchAddr(1), benchAddr(2), 0)
	for _, bits := range []int{8, 12, 16, 20, 24} {
		p, _ := netip.AddrFrom4([4]byte{172, 16, byte(bits), 0}).Prefix(bits)
		r.AddRoute(p, via)
	}
	dst := netip.AddrFrom4([4]byte{172, 16, 200, 9})

	b.Run("cached", func(b *testing.B) {
		r.lookupRoute(dst) // warm the cache
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r.lookupRoute(dst) == nil {
				b.Fatal("no route")
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r.lookupRouteSlow(dst) == nil {
				b.Fatal("no route")
			}
		}
	})
}

// BenchmarkPacketSerialize compares serialization into a recycled pool
// buffer (the forwarding path since the event loop started returning
// delivered buffers) against a fresh Marshal allocation per packet.
func BenchmarkPacketSerialize(b *testing.B) {
	n := New()
	rr := packet.NewRecordRoute(9)
	rr.Record(benchAddr(1))
	hdr := packet.IPv4{TTL: 32, Protocol: packet.ProtocolICMP, Src: benchAddr(3), Dst: benchAddr(4)}
	if err := hdr.SetRecordRoute(rr); err != nil {
		b.Fatal(err)
	}
	transport := packet.NewEchoRequest(7, 9, []byte("payload")).Marshal()

	b.Run("pooled-append", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := hdr.AppendTo(n.getBuf(), transport)
			if err != nil {
				b.Fatal(err)
			}
			n.putBuf(out)
		}
	})
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hdr.Marshal(transport); err != nil {
				b.Fatal(err)
			}
		}
	})
}
