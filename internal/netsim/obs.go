package netsim

import (
	"net/netip"
	"time"
)

// Observability hooks. Both facilities are nil/disabled by default and
// every hot-path call site guards with a single nil check, so campaigns
// that never enable them pay no allocations and no indirect calls (the
// Figure-1 benchmarks guard this). Neither facility touches the event
// queue or the clock: counters and traces are written synchronously
// from within the event being observed, so enabling them can never
// reorder, delay, or add virtual-time events — observed runs stay
// byte-identical to unobserved ones.

// TraceFunc observes node-level packet events: per-hop Record Route /
// Timestamp stamps, slow-path admissions, rate-limit and filter
// verdicts, TTL expiries, and end-host responses. at is the virtual
// clock, node the emitting router or host, event the counter-style
// event name (e.g. "router.rr.stamped"), and src/dst the decoded
// addresses of the packet being processed (zero when the event fires
// before the header is decoded, e.g. a chaos-offline drop).
type TraceFunc func(at time.Duration, node, event string, src, dst netip.Addr)

// SetTracer installs fn as the network's packet-event tracer; nil
// removes it. The tracer is called synchronously from the forwarding
// and delivery paths and must not retain references or re-enter the
// engine.
func (n *Network) SetTracer(fn TraceFunc) { n.tracer = fn }

// EnableNodeCounters switches on per-node counter attribution: every
// router- and host-emitted counter is additionally recorded under the
// emitting node's name, readable via NodeCounters. Off by default —
// attribution costs a map probe per event, which campaigns that only
// want network-wide totals should not pay.
func (n *Network) EnableNodeCounters() {
	if n.nodeCounts == nil {
		n.nodeCounts = make(map[string][]uint64)
	}
}

// NodeCountersEnabled reports whether per-node attribution is on.
func (n *Network) NodeCountersEnabled() bool { return n.nodeCounts != nil }

// countNode attributes one count to a node; callers guard on
// n.nodeCounts != nil.
func (n *Network) countNode(name string, id int, delta uint64) {
	s := n.nodeCounts[name]
	if id >= len(s) {
		s = append(s, make([]uint64, id+1-len(s))...)
	}
	s[id] += delta
	n.nodeCounts[name] = s
}

// CounterMap returns every nonzero network-wide counter keyed by name —
// the structured sibling of Counters() for metrics snapshots.
func (n *Network) CounterMap() map[string]uint64 {
	names := counterSnapshot()
	out := make(map[string]uint64)
	for id, v := range n.counters {
		if v != 0 {
			out[names[id]] = v
		}
	}
	return out
}

// NodeCounters returns the per-node nonzero counters (node → counter
// name → value); nil when EnableNodeCounters was never called.
func (n *Network) NodeCounters() map[string]map[string]uint64 {
	if n.nodeCounts == nil {
		return nil
	}
	names := counterSnapshot()
	out := make(map[string]map[string]uint64, len(n.nodeCounts))
	for node, vals := range n.nodeCounts {
		m := make(map[string]uint64)
		for id, v := range vals {
			if v != 0 {
				m[names[id]] = v
			}
		}
		if len(m) > 0 {
			out[node] = m
		}
	}
	return out
}
