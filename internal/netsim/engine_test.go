package netsim

import (
	"testing"
	"time"
)

func TestEngineRunsInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 3*time.Millisecond {
		t.Errorf("final clock = %v", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.Schedule(time.Millisecond, func() {
		times = append(times, e.Now())
		e.Schedule(time.Millisecond, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != time.Millisecond || times[1] != 2*time.Millisecond {
		t.Errorf("times = %v", times)
	}
}

func TestEngineRunUntilLeavesFutureEvents(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(time.Millisecond, func() { ran++ })
	e.Schedule(5*time.Millisecond, func() { ran++ })
	e.RunUntil(2 * time.Millisecond)
	if ran != 1 {
		t.Errorf("ran %d events before t=2ms, want 1", ran)
	}
	if e.Now() != 2*time.Millisecond {
		t.Errorf("clock = %v, want 2ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 2 {
		t.Errorf("ran %d total, want 2", ran)
	}
}

func TestEngineNegativeDelayRunsNow(t *testing.T) {
	e := NewEngine()
	e.RunUntil(time.Second)
	var at time.Duration = -1
	e.Schedule(-5*time.Millisecond, func() { at = e.Now() })
	e.Run()
	if at != time.Second {
		t.Errorf("negative-delay event ran at %v, want %v", at, time.Second)
	}
}

func TestEngineAt(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.At(7*time.Millisecond, func() { at = e.Now() })
	e.Run()
	if at != 7*time.Millisecond {
		t.Errorf("ran at %v", at)
	}
}

func TestTokenBucketConformingRate(t *testing.T) {
	tb := NewTokenBucket(10, 1) // 10 pps, burst 1
	// One packet every 100ms conforms indefinitely.
	for i := 0; i < 50; i++ {
		now := time.Duration(i) * 100 * time.Millisecond
		if !tb.Allow(now) {
			t.Fatalf("conforming packet %d dropped", i)
		}
	}
}

func TestTokenBucketPolicesBurst(t *testing.T) {
	tb := NewTokenBucket(10, 10)
	allowed := 0
	// 100 packets arriving in the same instant: only the burst passes.
	for i := 0; i < 100; i++ {
		if tb.Allow(0) {
			allowed++
		}
	}
	if allowed != 10 {
		t.Errorf("allowed %d of instantaneous burst, want 10", allowed)
	}
	// After one second, 10 more tokens have accumulated.
	allowed = 0
	for i := 0; i < 100; i++ {
		if tb.Allow(time.Second) {
			allowed++
		}
	}
	if allowed != 10 {
		t.Errorf("allowed %d after refill, want 10", allowed)
	}
}

func TestTokenBucketLongTermRate(t *testing.T) {
	tb := NewTokenBucket(10, 10)
	allowed := 0
	// 100 pps offered for 10 simulated seconds: ~10% should pass.
	for i := 0; i < 1000; i++ {
		if tb.Allow(time.Duration(i) * 10 * time.Millisecond) {
			allowed++
		}
	}
	if allowed < 95 || allowed > 115 {
		t.Errorf("allowed %d of 1000 at 10x overload, want ~100", allowed)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}
