package netsim

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"recordroute/internal/packet"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

// chain is a VP — R0 — R1 — … — R(n-1) — dest line topology with /32
// routes in both directions, the smallest network that exercises the
// whole forwarding, stamping, and reply path.
type chain struct {
	net     *Network
	vp      *Host
	dest    *Host
	routers []*Router
	// fwdAddrs[i] is router i's egress address toward dest (the address
	// it stamps into forward Record Route slots); revAddrs[i] its egress
	// address toward the VP (stamped on the reply path).
	fwdAddrs []netip.Addr
	revAddrs []netip.Addr
	// inAddrs[i] is router i's ingress address from the VP direction
	// (the source of its Time Exceeded errors).
	inAddrs []netip.Addr

	replies []capturedPacket
}

type capturedPacket struct {
	at  time.Duration
	raw []byte
}

const (
	vpAddrStr   = "10.0.0.2"
	destAddrStr = "10.2.0.2"
)

// buildChain builds the line topology. behavior(i) configures router i;
// nil means default (conformant) behaviour everywhere.
func buildChain(n int, behavior func(i int) RouterBehavior, hb HostBehavior) *chain {
	c := &chain{net: New()}
	c.vp = c.net.AddHost("vp", a(vpAddrStr), DefaultHostBehavior())
	c.dest = c.net.AddHost("dest", a(destAddrStr), hb)
	for i := 0; i < n; i++ {
		rb := RouterBehavior{}
		if behavior != nil {
			rb = behavior(i)
		}
		c.routers = append(c.routers, c.net.AddRouter(fmt.Sprintf("r%d", i), rb))
	}
	delay := time.Millisecond

	// VP — R0.
	_, r0in := c.net.Connect(c.vp, c.routers[0], a(vpAddrStr), a("10.0.0.1"), delay)
	revIfaces := []*Iface{r0in}
	c.inAddrs = append(c.inAddrs, r0in.Addr)

	// R(i) — R(i+1).
	var fwdIfaces []*Iface
	for i := 0; i+1 < n; i++ {
		near, far := c.net.Connect(c.routers[i], c.routers[i+1],
			a(fmt.Sprintf("10.1.%d.1", i+1)), a(fmt.Sprintf("10.1.%d.2", i+1)), delay)
		fwdIfaces = append(fwdIfaces, near)
		revIfaces = append(revIfaces, far)
		c.inAddrs = append(c.inAddrs, far.Addr)
	}

	// R(n-1) — dest.
	last, _ := c.net.Connect(c.routers[n-1], c.dest, a("10.2.0.1"), a(destAddrStr), delay)
	fwdIfaces = append(fwdIfaces, last)

	vpPfx := netip.PrefixFrom(a(vpAddrStr), 32)
	destPfx := netip.PrefixFrom(a(destAddrStr), 32)
	for i, r := range c.routers {
		r.AddRoute(destPfx, fwdIfaces[i])
		r.AddRoute(vpPfx, revIfaces[i])
		c.fwdAddrs = append(c.fwdAddrs, fwdIfaces[i].Addr)
		c.revAddrs = append(c.revAddrs, revIfaces[i].Addr)
	}

	c.vp.SetSniffer(func(at time.Duration, pkt []byte) {
		buf := make([]byte, len(pkt))
		copy(buf, pkt)
		c.replies = append(c.replies, capturedPacket{at: at, raw: buf})
	})
	return c
}

// makePingRR builds a serialized echo request, with an RR option when
// slots > 0.
func makePingRR(t testing.TB, src, dst netip.Addr, id, seq uint16, ttl uint8, slots int) []byte {
	t.Helper()
	hdr := packet.IPv4{TTL: ttl, ID: id, Protocol: packet.ProtocolICMP, Src: src, Dst: dst}
	if slots > 0 {
		if err := hdr.SetRecordRoute(packet.NewRecordRoute(slots)); err != nil {
			t.Fatal(err)
		}
	}
	wire, err := hdr.Marshal(packet.NewEchoRequest(id, seq, []byte("probe")).Marshal())
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// decodeReply parses a captured packet, failing the test on error.
func decodeReply(t *testing.T, raw []byte) (*packet.IPv4, *packet.ICMP) {
	t.Helper()
	var ip packet.IPv4
	payload, err := ip.Decode(raw)
	if err != nil {
		t.Fatalf("decode reply IP: %v", err)
	}
	var icmp packet.ICMP
	if err := icmp.Decode(payload); err != nil {
		t.Fatalf("decode reply ICMP: %v", err)
	}
	return &ip, &icmp
}

func TestPlainPingEndToEnd(t *testing.T) {
	c := buildChain(3, nil, DefaultHostBehavior())
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 1, 1, 64, 0))
	c.net.Engine().Run()
	if len(c.replies) != 1 {
		t.Fatalf("got %d replies, want 1", len(c.replies))
	}
	ip, icmp := decodeReply(t, c.replies[0].raw)
	if icmp.Type != packet.ICMPEchoReply || icmp.ID != 1 {
		t.Errorf("reply = %v id=%d", icmp.Type, icmp.ID)
	}
	if ip.Src != a(destAddrStr) {
		t.Errorf("reply source %v", ip.Src)
	}
	if len(ip.Options) != 0 {
		t.Errorf("plain ping reply carries options: %v", ip.Options)
	}
}

func TestPingRRRecordsForwardDestAndReverse(t *testing.T) {
	c := buildChain(3, nil, DefaultHostBehavior())
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 2, 1, 64, 9))
	c.net.Engine().Run()
	if len(c.replies) != 1 {
		t.Fatalf("got %d replies, want 1", len(c.replies))
	}
	ip, _ := decodeReply(t, c.replies[0].raw)
	var rr packet.RecordRoute
	found, err := ip.RecordRouteOption(&rr)
	if !found || err != nil {
		t.Fatalf("reply RR: found=%v err=%v", found, err)
	}
	// Expect: fwd stamps of R0..R2, dest, then reverse stamps R2..R0.
	var want []netip.Addr
	want = append(want, c.fwdAddrs...)
	want = append(want, a(destAddrStr))
	for i := len(c.routers) - 1; i >= 0; i-- {
		want = append(want, c.revAddrs[i])
	}
	got := rr.Recorded()
	if len(got) != len(want) {
		t.Fatalf("recorded %d hops %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("slot %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPingRRNineHopLimitHidesFarDest(t *testing.T) {
	// 12 routers: the forward path alone exhausts all nine slots, so the
	// destination cannot appear — RR-responsive but not RR-reachable.
	c := buildChain(12, nil, DefaultHostBehavior())
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 3, 1, 64, 9))
	c.net.Engine().Run()
	if len(c.replies) != 1 {
		t.Fatalf("got %d replies, want 1", len(c.replies))
	}
	ip, _ := decodeReply(t, c.replies[0].raw)
	var rr packet.RecordRoute
	if found, err := ip.RecordRouteOption(&rr); !found || err != nil {
		t.Fatalf("reply RR: found=%v err=%v", found, err)
	}
	if !rr.Full() {
		t.Error("option not full after 12-router path")
	}
	if rr.Contains(a(destAddrStr)) {
		t.Error("destination appears despite exceeding the nine hop limit")
	}
	for i := 0; i < 9; i++ {
		if rr.Recorded()[i] != c.fwdAddrs[i] {
			t.Errorf("slot %d = %v, want %v", i, rr.Recorded()[i], c.fwdAddrs[i])
		}
	}
}

func TestPingRREightHopBoundaryStampsDest(t *testing.T) {
	// 8 routers: dest stamps slot 9 — RR-reachable, but no reverse room.
	c := buildChain(8, nil, DefaultHostBehavior())
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 4, 1, 64, 9))
	c.net.Engine().Run()
	ip, _ := decodeReply(t, c.replies[0].raw)
	var rr packet.RecordRoute
	if found, _ := ip.RecordRouteOption(&rr); !found {
		t.Fatal("no RR in reply")
	}
	got := rr.Recorded()
	if len(got) != 9 || got[8] != a(destAddrStr) {
		t.Errorf("recorded = %v, want dest in final slot", got)
	}
}

func TestTTLExpiryGeneratesQuotedTimeExceeded(t *testing.T) {
	c := buildChain(4, nil, DefaultHostBehavior())
	// TTL 2: R0 decrements to 1, R1 sees TTL 1 and expires the packet.
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 5, 1, 2, 9))
	c.net.Engine().Run()
	if len(c.replies) != 1 {
		t.Fatalf("got %d replies, want 1", len(c.replies))
	}
	ip, icmp := decodeReply(t, c.replies[0].raw)
	if icmp.Type != packet.ICMPTimeExceeded {
		t.Fatalf("reply type %v, want time exceeded", icmp.Type)
	}
	if ip.Src != c.inAddrs[1] {
		t.Errorf("error source %v, want R1 ingress %v", ip.Src, c.inAddrs[1])
	}
	if len(ip.Options) != 0 {
		t.Error("ICMP error itself carries IP options")
	}
	var quoted packet.IPv4
	if _, err := icmp.QuotedDatagram(&quoted); err != nil {
		t.Fatalf("QuotedDatagram: %v", err)
	}
	var rr packet.RecordRoute
	if found, err := quoted.RecordRouteOption(&rr); !found || err != nil {
		t.Fatalf("quoted RR: found=%v err=%v", found, err)
	}
	// Only R0 forwarded (and stamped) before expiry at R1.
	if rr.RecordedCount() != 1 || rr.Recorded()[0] != c.fwdAddrs[0] {
		t.Errorf("quoted RR = %v, want [%v]", rr.Recorded(), c.fwdAddrs[0])
	}
}

func TestDropOptionsRouterFiltersOnlyOptionsPackets(t *testing.T) {
	c := buildChain(3, func(i int) RouterBehavior {
		if i == 1 {
			return RouterBehavior{DropOptions: true}
		}
		return RouterBehavior{}
	}, DefaultHostBehavior())
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 6, 1, 64, 9))
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 7, 1, 64, 0))
	c.net.Engine().Run()
	if len(c.replies) != 1 {
		t.Fatalf("got %d replies, want only the plain ping's", len(c.replies))
	}
	_, icmp := decodeReply(t, c.replies[0].raw)
	if icmp.ID != 7 {
		t.Errorf("surviving reply id = %d, want 7", icmp.ID)
	}
	if c.net.Counter("router.drop.filter") != 1 {
		t.Errorf("filter drops = %d", c.net.Counter("router.drop.filter"))
	}
}

func TestNoStampRouterForwardsWithoutRecording(t *testing.T) {
	c := buildChain(3, func(i int) RouterBehavior {
		if i == 1 {
			return RouterBehavior{NoStampRR: true}
		}
		return RouterBehavior{}
	}, DefaultHostBehavior())
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 8, 1, 64, 9))
	c.net.Engine().Run()
	ip, _ := decodeReply(t, c.replies[0].raw)
	var rr packet.RecordRoute
	if found, _ := ip.RecordRouteOption(&rr); !found {
		t.Fatal("no RR in reply")
	}
	if rr.Contains(c.fwdAddrs[1]) {
		t.Error("non-stamping router appears in RR")
	}
	// Forward: R0, R2 (R1 silent), dest, reverse: R2, R1 silent, R0.
	got := rr.Recorded()
	if got[0] != c.fwdAddrs[0] || got[1] != c.fwdAddrs[2] || got[2] != a(destAddrStr) {
		t.Errorf("recorded = %v", got)
	}
}

func TestAnonymousRouterInvisibleToTTLButStampsRR(t *testing.T) {
	c := buildChain(3, func(i int) RouterBehavior {
		if i == 1 {
			return RouterBehavior{NoTTLDecrement: true}
		}
		return RouterBehavior{}
	}, DefaultHostBehavior())

	// A TTL-2 probe should now expire at R2, not R1: R1 is TTL-invisible.
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 9, 1, 2, 9))
	c.net.Engine().Run()
	if len(c.replies) != 1 {
		t.Fatalf("got %d replies, want 1", len(c.replies))
	}
	ip, icmp := decodeReply(t, c.replies[0].raw)
	if icmp.Type != packet.ICMPTimeExceeded {
		t.Fatalf("reply type %v", icmp.Type)
	}
	if ip.Src != c.inAddrs[2] {
		t.Errorf("error from %v, want R2 %v (R1 must be TTL-invisible)", ip.Src, c.inAddrs[2])
	}
	// Yet the quoted RR proves R1 stamped: RR sees hops traceroute cannot.
	var quoted packet.IPv4
	if _, err := icmp.QuotedDatagram(&quoted); err != nil {
		t.Fatal(err)
	}
	var rr packet.RecordRoute
	if found, _ := quoted.RecordRouteOption(&rr); !found {
		t.Fatal("no RR in quote")
	}
	if !rr.Contains(c.fwdAddrs[1]) {
		t.Errorf("anonymous router missing from RR: %v", rr.Recorded())
	}
}

func TestOptionsRateLimiterDropsExcess(t *testing.T) {
	c := buildChain(2, func(i int) RouterBehavior {
		if i == 0 {
			return RouterBehavior{OptionsRateLimit: 10, OptionsRateBurst: 10}
		}
		return RouterBehavior{}
	}, DefaultHostBehavior())
	// 100 ping-RRs arriving in one instant: the burst admits 10.
	for i := 0; i < 100; i++ {
		c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), uint16(100+i), 1, 64, 9))
	}
	c.net.Engine().Run()
	// Exactly the burst (10) of requests is admitted; their 10 replies
	// also traverse the limiter milliseconds later, find no tokens, and
	// are dropped. Fully deterministic: 100 drops, 10 admissions, 0
	// replies reaching the VP.
	if got := c.net.Counter("router.drop.ratelimit"); got != 100 {
		t.Errorf("rate-limit drops = %d, want 100", got)
	}
	if got := c.net.Counter("host.echo.reply"); got != 10 {
		t.Errorf("destination replies sent = %d, want 10", got)
	}
	if len(c.replies) != 0 {
		t.Errorf("replies at VP = %d, want 0 (limiter eats the returns)", len(c.replies))
	}
}

func TestOptionsRateLimiterConformingTrafficPasses(t *testing.T) {
	c := buildChain(2, func(i int) RouterBehavior {
		if i == 0 {
			return RouterBehavior{OptionsRateLimit: 10, OptionsRateBurst: 10}
		}
		return RouterBehavior{}
	}, DefaultHostBehavior())
	// 20 probes at 5 pps: requests plus replies together stay at the
	// limiter's rate, so every reply survives.
	for i := 0; i < 20; i++ {
		wire := makePingRR(t, a(vpAddrStr), a(destAddrStr), uint16(200+i), 1, 64, 9)
		c.net.Engine().Schedule(time.Duration(i)*200*time.Millisecond, func() { c.vp.Inject(wire) })
	}
	c.net.Engine().Run()
	if len(c.replies) != 20 {
		t.Errorf("replies = %d, want all 20 at a conforming rate", len(c.replies))
	}
	if got := c.net.Counter("router.drop.ratelimit"); got != 0 {
		t.Errorf("rate-limit drops = %d, want 0", got)
	}
}

func TestHostNotRRResponsive(t *testing.T) {
	hb := DefaultHostBehavior()
	hb.RRResponsive = false
	c := buildChain(2, nil, hb)
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 10, 1, 64, 9))
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 11, 1, 64, 0))
	c.net.Engine().Run()
	if len(c.replies) != 1 {
		t.Fatalf("got %d replies, want 1", len(c.replies))
	}
	_, icmp := decodeReply(t, c.replies[0].raw)
	if icmp.ID != 11 {
		t.Errorf("reply id = %d, want the plain ping (11)", icmp.ID)
	}
}

func TestHostNotHonorRROmitsOwnAddress(t *testing.T) {
	hb := DefaultHostBehavior()
	hb.HonorRR = false
	c := buildChain(2, nil, hb)
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 12, 1, 64, 9))
	c.net.Engine().Run()
	ip, _ := decodeReply(t, c.replies[0].raw)
	var rr packet.RecordRoute
	if found, _ := ip.RecordRouteOption(&rr); !found {
		t.Fatal("no RR in reply (option must still be copied)")
	}
	if rr.Contains(a(destAddrStr)) {
		t.Error("non-honoring destination stamped itself")
	}
	// Forward stamps and reverse stamps are still present.
	if !rr.Contains(c.fwdAddrs[0]) || !rr.Contains(c.revAddrs[0]) {
		t.Errorf("router stamps missing: %v", rr.Recorded())
	}
}

func TestHostStampsAliasAddress(t *testing.T) {
	hb := DefaultHostBehavior()
	hb.StampAddr = a("10.9.9.9")
	c := buildChain(2, nil, hb)
	c.dest.AddAlias(a("10.9.9.9"))
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 13, 1, 64, 9))
	c.net.Engine().Run()
	ip, _ := decodeReply(t, c.replies[0].raw)
	var rr packet.RecordRoute
	if found, _ := ip.RecordRouteOption(&rr); !found {
		t.Fatal("no RR in reply")
	}
	if rr.Contains(a(destAddrStr)) {
		t.Error("probed address recorded despite alias stamping")
	}
	if !rr.Contains(a("10.9.9.9")) {
		t.Errorf("alias missing from RR: %v", rr.Recorded())
	}
}

func TestPingRRUDPQuoteShowsSlotsAvailable(t *testing.T) {
	hb := DefaultHostBehavior()
	hb.HonorRR = false // RR-responsive but never stamps itself
	c := buildChain(2, nil, hb)

	// Build a UDP probe to a high closed port with RR enabled.
	hdr := packet.IPv4{TTL: 64, ID: 14, Protocol: packet.ProtocolUDP, Src: a(vpAddrStr), Dst: a(destAddrStr)}
	if err := hdr.SetRecordRoute(packet.NewRecordRoute(9)); err != nil {
		t.Fatal(err)
	}
	udp := packet.UDP{SrcPort: 33434, DstPort: 40000}
	transport, err := udp.Marshal(a(vpAddrStr), a(destAddrStr))
	if err != nil {
		t.Fatal(err)
	}
	wire, err := hdr.Marshal(transport)
	if err != nil {
		t.Fatal(err)
	}
	c.vp.Inject(wire)
	c.net.Engine().Run()

	if len(c.replies) != 1 {
		t.Fatalf("got %d replies, want 1", len(c.replies))
	}
	ip, icmp := decodeReply(t, c.replies[0].raw)
	if icmp.Type != packet.ICMPDestUnreach || icmp.Code != packet.CodePortUnreachable {
		t.Fatalf("reply %v/%d", icmp.Type, icmp.Code)
	}
	if ip.Src != a(destAddrStr) {
		t.Errorf("error source %v", ip.Src)
	}
	var quoted packet.IPv4
	if _, err := icmp.QuotedDatagram(&quoted); err != nil {
		t.Fatal(err)
	}
	var rr packet.RecordRoute
	if found, _ := quoted.RecordRouteOption(&rr); !found {
		t.Fatal("no RR in quoted datagram")
	}
	// The probe reached the destination with free slots: 2 routers
	// stamped, 7 slots remain — the §3.3 reclassification evidence.
	if rr.RecordedCount() != 2 || rr.Full() {
		t.Errorf("quoted RR: %d recorded, full=%v", rr.RecordedCount(), rr.Full())
	}
}

func TestRouterAnswersPingToItself(t *testing.T) {
	c := buildChain(3, nil, DefaultHostBehavior())
	// Ping R1's ingress address with RR.
	c.vp.Inject(makePingRR(t, a(vpAddrStr), c.inAddrs[1], 15, 1, 64, 9))
	c.net.Engine().Run()
	if len(c.replies) != 1 {
		t.Fatalf("got %d replies, want 1", len(c.replies))
	}
	ip, icmp := decodeReply(t, c.replies[0].raw)
	if icmp.Type != packet.ICMPEchoReply {
		t.Fatalf("type %v", icmp.Type)
	}
	if ip.Src != c.inAddrs[1] {
		t.Errorf("reply from %v", ip.Src)
	}
	var rr packet.RecordRoute
	if found, _ := ip.RecordRouteOption(&rr); !found {
		t.Fatal("router reply lacks RR")
	}
	if !rr.Contains(c.inAddrs[1]) {
		t.Errorf("router did not stamp itself: %v", rr.Recorded())
	}
}

func TestHostIPIDSharedAcrossAliases(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	alias := a("10.9.9.9")
	c.dest.AddAlias(alias)
	// Route the alias toward the dest as well.
	for i, r := range c.routers {
		r.AddRoute(netip.PrefixFrom(alias, 32), r.FIB().Lookup(a(destAddrStr)))
		_ = i
	}
	for i := 0; i < 3; i++ {
		c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), uint16(20+i), 1, 64, 0))
		c.vp.Inject(makePingRR(t, a(vpAddrStr), alias, uint16(30+i), 1, 64, 0))
	}
	c.net.Engine().Run()
	if len(c.replies) != 6 {
		t.Fatalf("got %d replies, want 6", len(c.replies))
	}
	var ids []uint16
	for _, rep := range c.replies {
		ip, _ := decodeReply(t, rep.raw)
		ids = append(ids, ip.ID)
	}
	// One shared counter: the six IDs are strictly increasing regardless
	// of which address was probed.
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("IPIDs not from one shared counter: %v", ids)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		c := buildChain(5, func(i int) RouterBehavior {
			if i == 2 {
				return RouterBehavior{OptionsRateLimit: 5, OptionsRateBurst: 2}
			}
			return RouterBehavior{}
		}, DefaultHostBehavior())
		for i := 0; i < 50; i++ {
			c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), uint16(i), 1, 64, 9))
		}
		c.net.Engine().Run()
		return c.net.Counters()
	}
	first, second := run(), run()
	if len(first) != len(second) {
		t.Fatalf("counter sets differ: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("replay diverged: %s vs %s", first[i], second[i])
		}
	}
}
