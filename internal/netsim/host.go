package netsim

import (
	"net/netip"
	"time"

	"recordroute/internal/packet"
)

// HostBehavior configures an end host's responses to probes. The zero
// value is a silent host; DefaultHostBehavior returns a fully conformant
// responder.
type HostBehavior struct {
	// PingResponsive makes the host answer ICMP echo requests.
	PingResponsive bool
	// RRResponsive makes the host accept probe packets carrying IP
	// options; when false, such packets are silently dropped (host or
	// host-firewall options filtering).
	RRResponsive bool
	// CopyRROnReply copies a Record Route option from an echo request
	// into the echo reply, as RFC 1122 destinations do. Without it the
	// reply carries no option.
	CopyRROnReply bool
	// HonorRR makes the host stamp its own address into a Record Route
	// option (with free slots) when originating the reply — the behaviour
	// whose absence §3.3's ping-RRudp test detects.
	HonorRR bool
	// StampAddr, when valid, is recorded instead of the probed address:
	// the host stamps a different interface (an alias, §3.3's MIDAR case).
	StampAddr netip.Addr
	// UDPResponsive makes the host send ICMP port-unreachable errors for
	// UDP datagrams to closed ports, quoting the offending header.
	UDPResponsive bool
}

// DefaultHostBehavior returns the behaviour of a conformant, fully
// responsive destination.
func DefaultHostBehavior() HostBehavior {
	return HostBehavior{
		PingResponsive: true,
		RRResponsive:   true,
		CopyRROnReply:  true,
		HonorRR:        true,
		UDPResponsive:  true,
	}
}

// SnifferFunc observes packets delivered to a host. pkt is the raw
// datagram; the callee must not retain or modify it.
type SnifferFunc func(now time.Duration, pkt []byte)

// Host is an end system with a single uplink interface and one or more
// local addresses (extra addresses model aliases). Hosts answer probes
// according to their behaviour and can inject raw packets, which is how
// vantage points are modelled.
type Host struct {
	name     string
	net      *Network
	idx      int // registration index; replica clones keep it
	behavior HostBehavior
	uplink   *Iface
	addrs    []netip.Addr
	local    map[netip.Addr]bool
	ipid     uint16
	sniffer  SnifferFunc

	// localShared marks addrs/local as part of a frozen route plane
	// possibly shared with replica networks; mutation copies first.
	localShared bool

	ip packet.IPv4
	rr packet.RecordRoute
	ts packet.Timestamp
}

// AddHost creates a host with the given primary address and registers it.
// Connect must be called to attach it before traffic flows; the first
// connected interface becomes the uplink.
func (n *Network) AddHost(name string, primary netip.Addr, behavior HostBehavior) *Host {
	h := &Host{
		name:     name,
		net:      n,
		behavior: behavior,
		addrs:    []netip.Addr{primary},
		local:    map[netip.Addr]bool{primary: true},
		ipid:     seedIPID(name),
	}
	n.register(h)
	return h
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// Addr returns the host's primary address.
func (h *Host) Addr() netip.Addr { return h.addrs[0] }

// Addrs returns all local addresses (primary first).
func (h *Host) Addrs() []netip.Addr { return h.addrs }

// Behavior returns the host's configured behaviour.
func (h *Host) Behavior() HostBehavior { return h.behavior }

// AddAlias adds an extra local address; probes to it are answered like
// probes to the primary. On a host whose address set belongs to a
// frozen, shared route plane the set is copied first (copy-on-write).
func (h *Host) AddAlias(a netip.Addr) {
	if h.localShared {
		h.addrs = append([]netip.Addr(nil), h.addrs...)
		local := make(map[netip.Addr]bool, len(h.local)+1)
		for x := range h.local {
			local[x] = true
		}
		h.local = local
		h.localShared = false
	}
	h.addrs = append(h.addrs, a)
	h.local[a] = true
}

// SetSniffer installs a callback observing every packet delivered to the
// host. Vantage points use this to collect probe responses.
func (h *Host) SetSniffer(fn SnifferFunc) { h.sniffer = fn }

// Sniffer returns the currently installed sniffer (nil when none), so
// instrumentation such as pcap capture can chain rather than displace it.
func (h *Host) Sniffer() SnifferFunc { return h.sniffer }

// Uplink returns the host's uplink interface, or nil if unconnected.
func (h *Host) Uplink() *Iface { return h.uplink }

func (h *Host) addIface(i *Iface) {
	if h.uplink == nil {
		h.uplink = i
	}
}

// nextID returns the next IP identifier from the host's single shared
// counter (the alias-resolution signal).
func (h *Host) nextID() uint16 {
	h.ipid++
	return h.ipid
}

// count bumps a network counter and, when per-node attribution is
// enabled, charges it to this host.
func (h *Host) count(id int) {
	h.net.CountID(id, 1)
	if h.net.nodeCounts != nil {
		h.net.countNode(h.name, id, 1)
	}
}

// countName is count for cold paths that never pre-interned an ID.
func (h *Host) countName(name string) { h.count(CounterID(name)) }

// trace emits a packet event for the datagram currently decoded in
// h.ip; callers guard on h.net.tracer != nil.
func (h *Host) trace(event string) {
	h.net.tracer(h.net.Now(), h.name, event, h.ip.Src, h.ip.Dst)
}

// Inject transmits a raw, already-serialized IPv4 datagram out the
// uplink, exactly as a raw-socket prober would.
func (h *Host) Inject(pkt []byte) {
	if h.uplink == nil {
		h.countName("host.drop.unconnected")
		return
	}
	h.count(cHostInject)
	h.uplink.Send(pkt)
}

// Receive implements Node.
func (h *Host) Receive(pkt []byte, on *Iface) {
	payload, err := h.ip.Decode(pkt)
	if err != nil {
		h.countName("host.drop.parse")
		return
	}
	if !h.local[h.ip.Dst] {
		h.countName("host.drop.misdelivered")
		return
	}
	if h.sniffer != nil {
		h.sniffer(h.net.Now(), pkt)
	}
	hasOpts := len(h.ip.Options) > 0
	if hasOpts && !h.behavior.RRResponsive {
		h.countName("host.drop.options")
		if h.net.tracer != nil {
			h.trace("host.drop.options")
		}
		return
	}
	// Hosts never forward: a source route with hops left is undeliverable.
	var sr packet.SourceRoute
	if found, err := h.ip.SourceRouteOption(&sr); found && (err != nil || !sr.Exhausted()) {
		h.countName("host.drop.sourceroute")
		return
	}
	switch h.ip.Protocol {
	case packet.ProtocolICMP:
		h.receiveICMP(payload)
	case packet.ProtocolUDP:
		h.receiveUDP(pkt, payload)
	default:
		h.countName("host.drop.proto")
	}
}

// receiveICMP answers echo requests; other ICMP is sniffer-only.
func (h *Host) receiveICMP(payload []byte) {
	var icmp packet.ICMP
	if icmp.Decode(payload) != nil {
		h.countName("host.drop.icmpparse")
		return
	}
	if icmp.Type != packet.ICMPEchoRequest {
		return
	}
	if !h.behavior.PingResponsive {
		h.countName("host.drop.unresponsive")
		if h.net.tracer != nil {
			h.trace("host.drop.unresponsive")
		}
		return
	}
	reply := icmp.EchoReply()
	hdr := packet.IPv4{
		TTL:      64,
		ID:       h.nextID(),
		Protocol: packet.ProtocolICMP,
		Src:      h.ip.Dst, // reply from the probed address
		Dst:      h.ip.Src,
	}
	if found, err := h.ip.RecordRouteOption(&h.rr); found && err == nil && h.behavior.CopyRROnReply {
		cp := h.rr.Clone()
		if h.behavior.HonorRR {
			stamp := h.behavior.StampAddr
			if !stamp.IsValid() {
				stamp = h.ip.Dst
			}
			cp.Record(stamp) // no-op when already full
		}
		if err := hdr.SetRecordRoute(cp); err != nil {
			h.countName("host.drop.rrencode")
			return
		}
	}
	// Timestamp options are copied and completed under the same policy.
	if found, err := h.ip.TimestampOption(&h.ts); found && err == nil && h.behavior.CopyRROnReply {
		if h.behavior.HonorRR {
			stamp := h.behavior.StampAddr
			if !stamp.IsValid() {
				stamp = h.ip.Dst
			}
			h.ts.Record(stamp, uint32(h.net.Now().Milliseconds()))
		}
		if err := hdr.SetTimestamp(&h.ts); err != nil {
			h.countName("host.drop.tsencode")
			return
		}
	}
	h.count(cHostEchoReply)
	if h.net.tracer != nil {
		h.trace("host.echo.reply")
	}
	h.send(&hdr, reply.Marshal())
}

// receiveUDP generates port-unreachable errors for closed ports. The
// quote is the datagram exactly as received — options included and
// unstamped, which is what makes the ping-RRudp reclassification test
// (§3.3) possible.
func (h *Host) receiveUDP(raw, payload []byte) {
	var udp packet.UDP
	if udp.Decode(payload, h.ip.Src, h.ip.Dst) != nil {
		h.countName("host.drop.udpparse")
		return
	}
	if !h.behavior.UDPResponsive {
		h.countName("host.drop.udpsilent")
		if h.net.tracer != nil {
			h.trace("host.drop.udpsilent")
		}
		return
	}
	hdrLen := int(raw[0]&0xf) * 4
	e := packet.NewError(packet.ICMPDestUnreach, packet.CodePortUnreachable, raw[:hdrLen], raw[hdrLen:])
	hdr := packet.IPv4{
		TTL:      64,
		ID:       h.nextID(),
		Protocol: packet.ProtocolICMP,
		Src:      h.ip.Dst,
		Dst:      h.ip.Src,
	}
	h.count(cHostUDPUnreach)
	if h.net.tracer != nil {
		h.trace("host.udp.unreach")
	}
	h.send(&hdr, e.Marshal())
}

// send serializes and transmits a host-originated packet via the uplink.
func (h *Host) send(hdr *packet.IPv4, transport []byte) {
	if h.uplink == nil {
		h.countName("host.drop.unconnected")
		return
	}
	out, err := hdr.AppendTo(h.net.getBuf(), transport)
	if err != nil {
		h.countName("host.drop.encode")
		return
	}
	h.uplink.Send(out)
}
