package netsim

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

// runPingRR injects one ping-RR from a network's "vp" host toward the
// chain destination and drains the engine, returning the captured
// replies.
func runPingRR(t *testing.T, n *Network, id uint16) []capturedPacket {
	t.Helper()
	var replies []capturedPacket
	vp := n.Node("vp").(*Host)
	vp.SetSniffer(func(at time.Duration, pkt []byte) {
		replies = append(replies, capturedPacket{at: at, raw: append([]byte(nil), pkt...)})
	})
	vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), id, 1, 64, 9))
	n.Engine().Run()
	return replies
}

func sameReplies(t *testing.T, got, want []capturedPacket) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d replies, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].at != want[i].at {
			t.Errorf("reply %d at %v, want %v", i, got[i].at, want[i].at)
		}
		if !bytes.Equal(got[i].raw, want[i].raw) {
			t.Errorf("reply %d bytes differ:\n got %x\nwant %x", i, got[i].raw, want[i].raw)
		}
	}
}

func TestCloneMatchesSourceEndToEnd(t *testing.T) {
	src := buildChain(3, nil, DefaultHostBehavior())
	clone := src.net.Clone()

	want := runPingRR(t, src.net, 7)
	got := runPingRR(t, clone, 7)
	if len(want) != 1 {
		t.Fatalf("source produced %d replies, want 1", len(want))
	}
	sameReplies(t, got, want)
}

// A clone taken after the source has carried traffic must still start
// pristine: clock at zero, IP-ID counters reseeded, caches rebuilt —
// byte-identical to a clone taken before any traffic.
func TestCloneIsPristineAfterSourceTraffic(t *testing.T) {
	fresh := buildChain(3, nil, DefaultHostBehavior())
	want := runPingRR(t, fresh.net, 7)

	src := buildChain(3, nil, DefaultHostBehavior())
	for i := uint16(0); i < 5; i++ {
		runPingRR(t, src.net, 100+i) // dirty clocks, IP-IDs, route caches
	}
	clone := src.net.Clone()
	if now := clone.Engine().Now(); now != 0 {
		t.Fatalf("clone clock starts at %v, want 0", now)
	}
	sameReplies(t, runPingRR(t, clone, 7), want)
}

func TestCloneSharesFIBUntilWrite(t *testing.T) {
	src := buildChain(2, nil, DefaultHostBehavior())
	clone := src.net.Clone()
	sr := src.routers[0]
	cr := clone.Node(sr.Name()).(*Router)

	if cr.fib != sr.fib {
		t.Fatal("clone router does not share the frozen FIB")
	}
	p := netip.MustParsePrefix("203.0.113.0/24")
	cr.AddRoute(p, cr.ifaces[0])
	if cr.fib == sr.fib {
		t.Fatal("AddRoute on clone mutated the shared FIB in place")
	}
	if got := sr.fib.Lookup(netip.MustParseAddr("203.0.113.1")); got != nil {
		t.Fatalf("clone's route leaked into source FIB: %v", got.Addr)
	}
	if got := cr.fib.Lookup(netip.MustParseAddr("203.0.113.1")); got == nil {
		t.Fatal("clone lost its own added route")
	}
	if cr.fib.Len() != sr.fib.Len()+1 {
		t.Fatalf("clone FIB len %d, source %d", cr.fib.Len(), sr.fib.Len())
	}
}

func TestCloneHostAliasCopyOnWrite(t *testing.T) {
	src := buildChain(2, nil, DefaultHostBehavior())
	clone := src.net.Clone()
	sh := src.dest
	ch := clone.Node("dest").(*Host)

	alias := netip.MustParseAddr("198.51.100.9")
	ch.AddAlias(alias)
	if len(sh.Addrs()) != 1 {
		t.Fatalf("alias leaked into source host: %v", sh.Addrs())
	}
	if len(ch.Addrs()) != 2 || ch.Addrs()[1] != alias {
		t.Fatalf("clone host addrs = %v", ch.Addrs())
	}
	if sh.local[alias] {
		t.Fatal("alias leaked into source local set")
	}
}

func TestCloneCountersAndClocksIndependent(t *testing.T) {
	src := buildChain(2, nil, DefaultHostBehavior())
	clone := src.net.Clone()

	runPingRR(t, clone, 3)
	if got := src.net.Counter("link.tx"); got != 0 {
		t.Fatalf("clone traffic bumped source counter link.tx=%d", got)
	}
	if src.net.Engine().Now() != 0 {
		t.Fatalf("clone traffic advanced source clock to %v", src.net.Engine().Now())
	}
	if clone.Counter("link.tx") == 0 {
		t.Fatal("clone counted nothing")
	}
}

// Freeze must not change the source's own behaviour: the same probe
// gives the same answer before and after (the copy-on-write flags only
// matter on mutation).
func TestFrozenSourceKeepsWorking(t *testing.T) {
	fresh := buildChain(3, nil, DefaultHostBehavior())
	want := runPingRR(t, fresh.net, 9)

	src := buildChain(3, nil, DefaultHostBehavior())
	src.net.Freeze()
	sameReplies(t, runPingRR(t, src.net, 9), want)

	// And post-freeze mutations still work, via the COW path.
	r := src.routers[0]
	r.AddRoute(netip.MustParsePrefix("203.0.113.0/24"), r.ifaces[0])
	if r.fib.Lookup(netip.MustParseAddr("203.0.113.5")) == nil {
		t.Fatal("post-freeze AddRoute did not take effect")
	}
}

func TestCounterpartMapsNodes(t *testing.T) {
	src := buildChain(2, nil, DefaultHostBehavior())
	clone := src.net.Clone()
	for _, name := range []string{"vp", "dest", "r0", "r1"} {
		orig := src.net.Node(name)
		got := clone.Counterpart(orig)
		if got == nil || got.Name() != name {
			t.Fatalf("Counterpart(%s) = %v", name, got)
		}
		if got == orig {
			t.Fatalf("Counterpart(%s) returned the source node itself", name)
		}
	}
	if clone.Counterpart(nil) != nil {
		t.Fatal("Counterpart(nil) != nil")
	}
}

// runPingRRBurst injects k simultaneous ping-RR probes and drains the
// engine, returning the surviving replies — enough pressure to make a
// policed router spend its whole token bucket.
func runPingRRBurst(t *testing.T, n *Network, baseID uint16, k int) []capturedPacket {
	t.Helper()
	var replies []capturedPacket
	vp := n.Node("vp").(*Host)
	vp.SetSniffer(func(at time.Duration, pkt []byte) {
		replies = append(replies, capturedPacket{at: at, raw: append([]byte(nil), pkt...)})
	})
	for i := 0; i < k; i++ {
		vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), baseID+uint16(i), 1, 64, 9))
	}
	n.Engine().Run()
	return replies
}

// TestClonePolicerEqualsFreshBuildUnderRateLimit is the copy-on-write
// policer property: clone a source whose token buckets have been run
// dry, and the clone must behave byte-for-byte like a fresh build — the
// replica materializes its own full bucket on first use instead of
// inheriting (or deep-copying) the source's drained state, and replica
// traffic never touches the source's policer.
func TestClonePolicerEqualsFreshBuildUnderRateLimit(t *testing.T) {
	policed := func(i int) RouterBehavior {
		if i == 1 {
			// Small burst clips the simultaneous forward wave; the high
			// refill rate lets the surviving replies back through a few
			// virtual milliseconds later.
			return RouterBehavior{OptionsRateLimit: 500, OptionsRateBurst: 3, ICMPErrorRateLimit: 4}
		}
		return RouterBehavior{}
	}
	const burst = 6

	fresh := buildChain(3, policed, DefaultHostBehavior())
	want := runPingRRBurst(t, fresh.net, 100, burst)
	if len(want) == 0 || len(want) == burst {
		t.Fatalf("reference run passed %d/%d probes; rate limit not exercised", len(want), burst)
	}

	src := buildChain(3, policed, DefaultHostBehavior())
	runPingRRBurst(t, src.net, 100, burst) // drain the source's bucket
	srcDrops := src.net.Counter("router.drop.ratelimit")
	if srcDrops == 0 {
		t.Fatal("source run drained nothing")
	}

	clone := src.net.Clone()
	cr := clone.Node("r1").(*Router)
	if cr.limiter != nil || cr.errLimiter != nil {
		t.Fatal("clone materialized policer buckets eagerly; want copy-on-write")
	}
	got := runPingRRBurst(t, clone, 100, burst)
	sameReplies(t, got, want)
	if cd := clone.Counter("router.drop.ratelimit"); cd != srcDrops {
		t.Errorf("clone dropped %d, fresh-equivalent source dropped %d", cd, srcDrops)
	}

	sr := src.net.Node("r1").(*Router)
	if cr.limiter == nil {
		t.Fatal("clone traffic never materialized its policer")
	}
	if cr.limiter == sr.limiter {
		t.Fatal("clone shares the source's mutable token bucket")
	}
}
