package netsim

import (
	"fmt"
	"net/netip"
	"time"

	"math/rand/v2"
)

// Fault injection ("chaos") layer.
//
// Faults are data, not events: a FaultPlan compiles a FaultConfig into
// per-interface and per-router fault state whose activity is a pure
// function of the engine clock (faultWindow below). Nothing is pushed
// onto the event queue, so Engine.Run still drains to quiescence after
// each probing phase instead of fast-forwarding through the fault
// schedule, and a later phase starting at a later virtual time simply
// observes whichever windows are open then.
//
// Per-packet draws (loss, jitter, duplication) are content-keyed — a
// hash of the afflicted interface, the draw site, and the packet's
// shard-invariant identity — rather than pulled from a sequential RNG
// stream. A sequential stream interleaves draws across all traffic
// sharing the network, so splitting VPs over shard replicas would
// reshuffle every decision; the content key makes each packet's fate a
// function of the packet alone, which is what extends the K=1 vs K=3
// determinism contract (DESIGN.md §6) to fault-enabled workloads. The
// legacy Iface.SetLoss keeps its sequential stream and stays outside
// that contract.

// faultWindow describes when a fault is active as a pure function of
// virtual time: active during [offset+k*period, offset+k*period+duty)
// for every cycle k, or during the single window [offset, offset+duty)
// when period is zero (one-shot). A zero duty never activates.
type faultWindow struct {
	offset time.Duration
	period time.Duration // 0 = one-shot
	duty   time.Duration // 0 = never active
}

func (w faultWindow) active(now time.Duration) bool {
	if w.duty <= 0 || now < w.offset {
		return false
	}
	e := now - w.offset
	if w.period > 0 {
		e %= w.period
	}
	return e < w.duty
}

// flips counts the window's state transitions at times <= now. Routers
// use it to detect that a withdrawal boundary was crossed since the
// last route lookup and the memoized routes went stale.
func (w faultWindow) flips(now time.Duration) int {
	if w.duty <= 0 || now < w.offset {
		return 0
	}
	e := now - w.offset
	if w.period <= 0 {
		if e < w.duty {
			return 1
		}
		return 2
	}
	n := 2*int(e/w.period) + 1
	if e%w.period >= w.duty {
		n++
	}
	return n
}

// linkFaults is the chaos state attached to one interface (one link
// direction). The down window is shared by both directions of a
// flapping link; the draw salt is per-direction.
type linkFaults struct {
	salt      uint64
	down      faultWindow
	loss      float64
	jitterMax time.Duration
	dup       float64
}

// routerFaults is the chaos state attached to one router.
type routerFaults struct {
	offline  faultWindow
	suppress faultWindow
	withdraw faultWindow
	prefix   netip.Prefix
	wFlips   int // withdraw.flips at the last route lookup

	// Long-horizon churn: each fault epoch (Network.SetFaultEpoch, the
	// coarse virtual clock of a recurring campaign), the churned prefix
	// is independently withdrawn with probability churnProb. The draw is
	// keyed by (churnSeed, epoch) alone — no sequential stream — so a
	// router's churn fate in epoch e is the same on every shard replica
	// and across daemon restarts.
	churnSeed   uint64
	churnProb   float64
	churnPrefix netip.Prefix
}

// churned reports whether the router's churn prefix is withdrawn in the
// given fault epoch — a pure function of (seed, epoch).
func (f *routerFaults) churned(epoch int) bool {
	if f.churnProb <= 0 || !f.churnPrefix.IsValid() {
		return false
	}
	h := chaosMix(f.churnSeed, uint64(epoch)*0x9e3779b97f4a7c15)
	return float64(h>>11)/float64(1<<53) < f.churnProb
}

// Draw-site discriminators so one packet's loss, jitter, and
// duplication draws are independent.
const (
	chaosSaltLoss uint64 = iota + 1
	chaosSaltJitter
	chaosSaltDup
)

func chaosMix(h, v uint64) uint64 {
	h ^= v
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func chaosBE32(b []byte) uint64 {
	return uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
}

// chaosDraw returns a uniform draw in [0, 1) keyed by (salt, kind) and
// the packet's shard-invariant identity: TTL, protocol, source,
// destination, and the transport payload (which carries the ICMP id/seq
// or UDP ports distinguishing probe attempts). The IPv4 header beyond
// the fixed fields is deliberately excluded — the IP ID of
// router/host-originated replies is the contract's ReplyIPID exemption
// and must not influence packet fates.
func chaosDraw(salt, kind uint64, pkt []byte) float64 {
	h := chaosMix(salt, kind*0x9e3779b97f4a7c15)
	if len(pkt) >= 20 {
		h = chaosMix(h, uint64(pkt[8])<<40|uint64(pkt[9])<<32|chaosBE32(pkt[12:16]))
		h = chaosMix(h, chaosBE32(pkt[16:20]))
		ihl := int(pkt[0]&0xf) * 4
		if ihl < 20 || ihl > len(pkt) {
			ihl = 20
		}
		for p := pkt[ihl:]; len(p) > 0; {
			var w uint64
			nb := len(p)
			if nb > 8 {
				nb = 8
			}
			for j := 0; j < nb; j++ {
				w = w<<8 | uint64(p[j])
			}
			h = chaosMix(h, w)
			p = p[nb:]
		}
	}
	return float64(h>>11) / float64(1<<53)
}

// ifaceSalt derives a per-direction draw salt from the plan seed and
// the interface address, so the two directions of one link (and every
// link of the topology) draw independently.
func ifaceSalt(seed uint64, addr netip.Addr) uint64 {
	a4 := addr.As4()
	return chaosMix(chaosMix(seed, chaosBE32(a4[:])), 0x2545f4914f6cdd1d)
}

// Chaos counters (cold-path ones use Count directly).
var (
	cChaosLinkDown = CounterID("chaos.link.down")
	cChaosLoss     = CounterID("chaos.link.loss")
	cChaosDup      = CounterID("chaos.link.dup")
	cChaosOffline  = CounterID("chaos.router.offline")
	cChaosSuppress = CounterID("chaos.icmp.suppressed")
)

// FaultConfig parameterizes a deterministic fault-injection plan. The
// zero value injects nothing. Every fault class is gated by its own
// probability/fraction field, so scenarios can mix and match; all
// randomness derives from Seed and the deterministic registration
// order, making the plan — like the topology — part of the seed.
type FaultConfig struct {
	// Seed drives every affliction draw and window phase.
	Seed uint64

	// LossProb is the per-packet, per-direction drop probability on
	// afflicted links; LossFrac is the fraction of registered links
	// afflicted (<=0 means all, when LossProb > 0).
	LossProb float64
	LossFrac float64
	// JitterMax adds up to this much extra one-way delay per packet on
	// afflicted links (JitterFrac as above). Jittered links reorder:
	// back-to-back packets can arrive swapped.
	JitterMax  time.Duration
	JitterFrac float64
	// DupProb duplicates packets on afflicted links (DupFrac as above);
	// the copy trails the original by half the link delay.
	DupProb float64
	DupFrac float64

	// FlapFrac of links flap: down FlapDown out of every FlapPeriod,
	// with a per-link phase drawn from the seed.
	FlapFrac   float64
	FlapPeriod time.Duration // default 40s
	FlapDown   time.Duration // default 4s

	// OutageFrac of routers suffer one outage of OutageFor, starting at
	// a per-router time drawn uniformly from [0, OutageSpread). An
	// offline router drops everything it receives.
	OutageFrac   float64
	OutageSpread time.Duration // default 60s
	OutageFor    time.Duration // default 15s

	// SuppressFrac of routers periodically stop generating ICMP errors
	// (Time Exceeded): SuppressFor out of every SuppressPeriod.
	SuppressFrac   float64
	SuppressPeriod time.Duration // default 45s
	SuppressFor    time.Duration // default 10s

	// WithdrawFrac of registered (router, prefix) candidates transiently
	// withdraw the prefix: WithdrawFor out of every WithdrawPeriod the
	// router blackholes the prefix, invalidating its memoized routes at
	// each boundary.
	WithdrawFrac   float64
	WithdrawPeriod time.Duration // default 60s
	WithdrawFor    time.Duration // default 8s

	// Long-horizon route churn across fault epochs (recurring-campaign
	// cadence, see Network.SetFaultEpoch): ChurnFrac of registered
	// (router, prefix) candidates join the churn pool (<=0 means all,
	// when ChurnProb > 0), and each pooled prefix is independently
	// withdrawn for a whole epoch with probability ChurnProb. Unlike the
	// transient withdrawals above, churn is constant within an epoch — a
	// pure function of (seed, epoch), not of the packet-level clock — so
	// one epoch's render is byte-reproducible at any shard count while
	// consecutive epochs see routes appear and disappear.
	ChurnFrac float64
	ChurnProb float64
}

// randDur draws uniformly from [0, max).
func randDur(rng *rand.Rand, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(rng.Int64N(int64(max)))
}

func defDur(d, def time.Duration) time.Duration {
	if d <= 0 {
		return def
	}
	return d
}

func defFrac(f float64) float64 {
	if f <= 0 {
		return 1
	}
	return f
}

// FaultSummary reports what a plan installed, for logs and renders.
type FaultSummary struct {
	Links, Routers                                 int // registered candidates
	LossyLinks, JitterLinks, DupLinks, FlapLinks   int
	OfflineRouters, SuppressRouters, WithdrawnPfxs int
	ChurnedPfxs                                    int // prefixes in the epoch-churn pool
}

// String renders the summary as a single log-friendly line.
func (s FaultSummary) String() string {
	return fmt.Sprintf("links=%d lossy=%d jitter=%d dup=%d flapping=%d routers=%d outages=%d suppressed=%d withdrawals=%d churned=%d",
		s.Links, s.LossyLinks, s.JitterLinks, s.DupLinks, s.FlapLinks,
		s.Routers, s.OfflineRouters, s.SuppressRouters, s.WithdrawnPfxs, s.ChurnedPfxs)
}

// FaultPlan compiles a FaultConfig against registered fault targets.
// Register links, routers, and withdrawal candidates in a deterministic
// order (topology build order), then Install. Two plans built from the
// same config over the same registration sequence install identical
// fault state — which is how shard replicas of one topology all get the
// same weather.
type FaultPlan struct {
	cfg      FaultConfig
	links    []*Iface // one side per link; the other side reached via peer
	seen     map[*Iface]bool
	routers  []*Router
	pfxOwner []*Router
	pfxs     []netip.Prefix
}

// NewFaultPlan returns an empty plan for cfg.
func NewFaultPlan(cfg FaultConfig) *FaultPlan {
	return &FaultPlan{cfg: cfg, seen: make(map[*Iface]bool)}
}

// AddLink registers the link i belongs to as a fault candidate. Either
// side may be passed; the two directions are deduplicated and afflicted
// together (a flap takes the whole link down).
func (p *FaultPlan) AddLink(i *Iface) {
	if i == nil || i.peer == nil || p.seen[i] || p.seen[i.peer] {
		return
	}
	p.seen[i] = true
	p.links = append(p.links, i)
}

// AddRouter registers r as an outage/suppression candidate.
func (p *FaultPlan) AddRouter(r *Router) {
	p.routers = append(p.routers, r)
}

// AddWithdrawal registers prefix, served by r, as a transient-withdrawal
// candidate.
func (p *FaultPlan) AddWithdrawal(r *Router, prefix netip.Prefix) {
	p.pfxOwner = append(p.pfxOwner, r)
	p.pfxs = append(p.pfxs, prefix)
}

// Install draws the afflicted subsets and window phases from the seed
// and attaches fault state to the registered targets. Registration
// order is the draw order, so identical registration sequences yield
// identical plans.
func (p *FaultPlan) Install() FaultSummary {
	cfg := p.cfg
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xda3e39cb94b95bdb))
	sum := FaultSummary{Links: len(p.links), Routers: len(p.routers)}

	flapPeriod := defDur(cfg.FlapPeriod, 40*time.Second)
	flapDown := defDur(cfg.FlapDown, 4*time.Second)
	for _, l := range p.links {
		var lf linkFaults
		afflicted := false
		if cfg.LossProb > 0 && rng.Float64() < defFrac(cfg.LossFrac) {
			lf.loss = cfg.LossProb
			afflicted = true
			sum.LossyLinks++
		}
		if cfg.JitterMax > 0 && rng.Float64() < defFrac(cfg.JitterFrac) {
			lf.jitterMax = cfg.JitterMax
			afflicted = true
			sum.JitterLinks++
		}
		if cfg.DupProb > 0 && rng.Float64() < defFrac(cfg.DupFrac) {
			lf.dup = cfg.DupProb
			afflicted = true
			sum.DupLinks++
		}
		if cfg.FlapFrac > 0 && rng.Float64() < cfg.FlapFrac {
			lf.down = faultWindow{
				offset: randDur(rng, flapPeriod),
				period: flapPeriod,
				duty:   flapDown,
			}
			afflicted = true
			sum.FlapLinks++
		}
		if afflicted {
			a, b := lf, lf
			a.salt = ifaceSalt(cfg.Seed, l.Addr)
			b.salt = ifaceSalt(cfg.Seed, l.peer.Addr)
			l.faults, l.peer.faults = &a, &b
		}
	}

	outSpread := defDur(cfg.OutageSpread, 60*time.Second)
	outFor := defDur(cfg.OutageFor, 15*time.Second)
	supPeriod := defDur(cfg.SuppressPeriod, 45*time.Second)
	supFor := defDur(cfg.SuppressFor, 10*time.Second)
	byRouter := make(map[*Router]*routerFaults)
	get := func(r *Router) *routerFaults {
		rf := byRouter[r]
		if rf == nil {
			rf = &routerFaults{}
			byRouter[r] = rf
		}
		return rf
	}
	for _, r := range p.routers {
		if cfg.OutageFrac > 0 && rng.Float64() < cfg.OutageFrac {
			get(r).offline = faultWindow{offset: randDur(rng, outSpread), duty: outFor}
			sum.OfflineRouters++
		}
		if cfg.SuppressFrac > 0 && rng.Float64() < cfg.SuppressFrac {
			get(r).suppress = faultWindow{
				offset: randDur(rng, supPeriod),
				period: supPeriod,
				duty:   supFor,
			}
			sum.SuppressRouters++
		}
	}

	wdPeriod := defDur(cfg.WithdrawPeriod, 60*time.Second)
	wdFor := defDur(cfg.WithdrawFor, 8*time.Second)
	for i, r := range p.pfxOwner {
		if cfg.WithdrawFrac <= 0 || rng.Float64() >= cfg.WithdrawFrac {
			continue
		}
		rf := get(r)
		if rf.withdraw.duty > 0 {
			continue // one withdrawn prefix per router keeps the model simple
		}
		rf.withdraw = faultWindow{
			offset: randDur(rng, wdPeriod),
			period: wdPeriod,
			duty:   wdFor,
		}
		rf.prefix = p.pfxs[i]
		sum.WithdrawnPfxs++
	}

	// Churn pool: drawn after (and independently of) the transient
	// withdrawals, from the same registration list. A zero ChurnProb
	// consumes no draws, so plans without churn stay byte-identical to
	// plans built before churn existed.
	if cfg.ChurnProb > 0 {
		for i, r := range p.pfxOwner {
			if rng.Float64() >= defFrac(cfg.ChurnFrac) {
				continue
			}
			rf := get(r)
			if rf.churnPrefix.IsValid() {
				continue // one churned prefix per router, like withdrawals
			}
			rf.churnSeed = rng.Uint64()
			rf.churnProb = cfg.ChurnProb
			rf.churnPrefix = p.pfxs[i]
			sum.ChurnedPfxs++
		}
	}

	for r, rf := range byRouter {
		r.faults = rf
	}
	return sum
}
