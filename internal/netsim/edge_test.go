package netsim

import (
	"net/netip"
	"testing"
	"time"

	"recordroute/internal/packet"
)

func TestHostDropsMisdeliveredPacket(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	// A packet for an address the dest host does not own, smuggled by
	// adding a bogus /32 route at the last router.
	bogus := a("10.2.0.99")
	last := c.routers[len(c.routers)-1]
	last.AddRoute(netip.PrefixFrom(bogus, 32), last.FIB().Lookup(a(destAddrStr)))
	for _, r := range c.routers {
		r.AddRoute(netip.PrefixFrom(bogus, 32), r.FIB().Lookup(a(destAddrStr)))
	}
	c.vp.Inject(makePingRR(t, a(vpAddrStr), bogus, 1, 1, 64, 0))
	c.net.Engine().Run()
	if got := c.net.Counter("host.drop.misdelivered"); got != 1 {
		t.Errorf("misdelivered drops = %d, want 1", got)
	}
	if len(c.replies) != 0 {
		t.Errorf("replies = %d", len(c.replies))
	}
}

func TestRouterDropsGarbage(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	c.vp.Inject([]byte{0xde, 0xad, 0xbe, 0xef})
	c.net.Engine().Run()
	if got := c.net.Counter("router.drop.parse"); got != 1 {
		t.Errorf("parse drops = %d, want 1", got)
	}
}

func TestRouterNoRouteCounter(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	// An address no router has a route for.
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a("203.0.113.7"), 1, 1, 64, 0))
	c.net.Engine().Run()
	if got := c.net.Counter("router.drop.noroute"); got != 1 {
		t.Errorf("noroute drops = %d, want 1", got)
	}
}

func TestUnconnectedHostCountsDrops(t *testing.T) {
	n := New()
	h := n.AddHost("loner", a("10.0.0.1"), DefaultHostBehavior())
	h.Inject([]byte{1, 2, 3})
	n.Engine().Run()
	if got := n.Counter("host.drop.unconnected"); got != 1 {
		t.Errorf("unconnected drops = %d", got)
	}
}

func TestRouterIgnoresNonEchoLocal(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	// A UDP datagram addressed to a router is ignored (routers only
	// answer echo here), not forwarded or crashed on.
	hdr := packet.IPv4{TTL: 8, Protocol: packet.ProtocolUDP, Src: a(vpAddrStr), Dst: c.inAddrs[0]}
	u := packet.UDP{SrcPort: 9, DstPort: 9}
	transport, err := u.Marshal(a(vpAddrStr), c.inAddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	wire, err := hdr.Marshal(transport)
	if err != nil {
		t.Fatal(err)
	}
	c.vp.Inject(wire)
	c.net.Engine().Run()
	if got := c.net.Counter("router.local.ignored"); got != 1 {
		t.Errorf("local.ignored = %d, want 1", got)
	}
}

func TestEchoReplyToHostIsSnifferOnly(t *testing.T) {
	// An unsolicited echo REPLY delivered to a host must be observed by
	// the sniffer but trigger no reply (no ping-pong storms).
	c := buildChain(2, nil, DefaultHostBehavior())
	hdr := packet.IPv4{TTL: 8, Protocol: packet.ProtocolICMP, Src: a(vpAddrStr), Dst: a(destAddrStr)}
	reply := &packet.ICMP{Type: packet.ICMPEchoReply, ID: 1, Seq: 1}
	wire, err := hdr.Marshal(reply.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	c.vp.Inject(wire)
	c.net.Engine().Run()
	if got := c.net.Counter("host.echo.reply"); got != 0 {
		t.Errorf("host replied to an echo reply: %d", got)
	}
	if len(c.replies) != 0 {
		t.Errorf("VP received %d packets", len(c.replies))
	}
}

func TestSlowPathDelayAppliesToOptionsOnly(t *testing.T) {
	c := buildChain(1, func(int) RouterBehavior {
		return RouterBehavior{SlowPathDelay: 100 * time.Millisecond}
	}, DefaultHostBehavior())
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 1, 1, 64, 0)) // plain
	c.net.Engine().Run()
	plainAt := c.replies[0].at
	c.vp.Inject(makePingRR(t, a(vpAddrStr), a(destAddrStr), 2, 1, 64, 9)) // options
	c.net.Engine().Run()
	optAt := c.replies[1].at - plainAt
	// The options packet crosses the router twice (forward + reply), so
	// it must lag the plain ping by at least 200ms of slow-path delay.
	if optAt < plainAt+200*time.Millisecond {
		t.Errorf("options RTT %v vs plain %v: slow path not applied", optAt, plainAt)
	}
}

func TestSourceRouteRefusedByDefault(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	// Route the probe through R1's ingress address, then to the dest.
	sr, err := packet.NewSourceRoute(false, []netip.Addr{a(destAddrStr)})
	if err != nil {
		t.Fatal(err)
	}
	hdr := packet.IPv4{TTL: 64, ID: 1, Protocol: packet.ProtocolICMP, Src: a(vpAddrStr), Dst: c.inAddrs[0]}
	if err := hdr.SetSourceRoute(sr); err != nil {
		t.Fatal(err)
	}
	wire, err := hdr.Marshal(packet.NewEchoRequest(1, 1, nil).Marshal())
	if err != nil {
		t.Fatal(err)
	}
	c.vp.Inject(wire)
	c.net.Engine().Run()
	if got := c.net.Counter("router.drop.sourceroute"); got != 1 {
		t.Errorf("sourceroute drops = %d, want 1 (modern refusal)", got)
	}
	if len(c.replies) != 0 {
		t.Errorf("replies = %d", len(c.replies))
	}
}

func TestSourceRouteHonoredWhenAllowed(t *testing.T) {
	c := buildChain(2, func(int) RouterBehavior {
		return RouterBehavior{AllowSourceRoute: true}
	}, DefaultHostBehavior())
	sr, err := packet.NewSourceRoute(false, []netip.Addr{a(destAddrStr)})
	if err != nil {
		t.Fatal(err)
	}
	hdr := packet.IPv4{TTL: 64, ID: 2, Protocol: packet.ProtocolICMP, Src: a(vpAddrStr), Dst: c.inAddrs[0]}
	if err := hdr.SetSourceRoute(sr); err != nil {
		t.Fatal(err)
	}
	wire, err := hdr.Marshal(packet.NewEchoRequest(2, 1, nil).Marshal())
	if err != nil {
		t.Fatal(err)
	}
	c.vp.Inject(wire)
	c.net.Engine().Run()
	if got := c.net.Counter("router.fwd.sourceroute"); got != 1 {
		t.Fatalf("sourceroute forwards = %d, want 1", got)
	}
	// The packet reached the destination with the route exhausted, so
	// the host answered (the reply carries no source route back).
	if len(c.replies) != 1 {
		t.Fatalf("replies = %d, want 1", len(c.replies))
	}
	_, icmp := decodeReply(t, c.replies[0].raw)
	if icmp.Type != packet.ICMPEchoReply || icmp.ID != 2 {
		t.Errorf("reply %v id=%d", icmp.Type, icmp.ID)
	}
}

func TestHostDropsUnexhaustedSourceRoute(t *testing.T) {
	c := buildChain(2, nil, DefaultHostBehavior())
	// A source route whose next hop is still pending, addressed
	// directly at the host.
	sr, err := packet.NewSourceRoute(false, []netip.Addr{a("10.9.9.9")})
	if err != nil {
		t.Fatal(err)
	}
	hdr := packet.IPv4{TTL: 64, ID: 3, Protocol: packet.ProtocolICMP, Src: a(vpAddrStr), Dst: a(destAddrStr)}
	if err := hdr.SetSourceRoute(sr); err != nil {
		t.Fatal(err)
	}
	wire, err := hdr.Marshal(packet.NewEchoRequest(3, 1, nil).Marshal())
	if err != nil {
		t.Fatal(err)
	}
	c.vp.Inject(wire)
	c.net.Engine().Run()
	if got := c.net.Counter("host.drop.sourceroute"); got != 1 {
		t.Errorf("host sourceroute drops = %d, want 1", got)
	}
}

func TestRRAndTimestampInOnePacket(t *testing.T) {
	// Both options ride the same probe: every forwarding router stamps
	// both; the destination copies and completes both in its reply.
	c := buildChain(3, nil, DefaultHostBehavior())
	hdr := packet.IPv4{TTL: 64, ID: 9, Protocol: packet.ProtocolICMP, Src: a(vpAddrStr), Dst: a(destAddrStr)}
	// Both options must fit the 40-octet area: RR(3)=15 + TS(2)=20.
	if err := hdr.SetRecordRoute(packet.NewRecordRoute(3)); err != nil {
		t.Fatal(err)
	}
	if err := hdr.SetTimestamp(packet.NewTimestamp(packet.TSAddr, 2)); err != nil {
		t.Fatal(err)
	}
	wire, err := hdr.Marshal(packet.NewEchoRequest(9, 1, nil).Marshal())
	if err != nil {
		t.Fatal(err)
	}
	c.vp.Inject(wire)
	c.net.Engine().Run()
	if len(c.replies) != 1 {
		t.Fatalf("replies = %d", len(c.replies))
	}
	ip, _ := decodeReply(t, c.replies[0].raw)
	var rr packet.RecordRoute
	if found, _ := ip.RecordRouteOption(&rr); !found {
		t.Fatal("RR missing from reply")
	}
	var ts packet.Timestamp
	if found, _ := ip.TimestampOption(&ts); !found {
		t.Fatal("TS missing from reply")
	}
	// RR: the 3 fwd routers fill all 3 slots; TS: first 2 fwd stamps.
	if rr.RecordedCount() != 3 {
		t.Errorf("rr recorded = %d, want 3", rr.RecordedCount())
	}
	if ts.RecordedCount() != 2 {
		t.Errorf("ts recorded = %d, want 2", ts.RecordedCount())
	}
	// The shared prefix of stamped addresses must agree.
	for i := 0; i < 2; i++ {
		if rr.Recorded()[i] != ts.Recorded()[i].Addr {
			t.Errorf("slot %d: rr %v vs ts %v", i, rr.Recorded()[i], ts.Recorded()[i].Addr)
		}
	}
}
