package netsim

import "time"

// TokenBucket is a rate limiter in virtual time, modelling control-plane
// policing of IP-options packets (Cisco CoPP-style: a configured rate of
// options packets per second are punted to the route processor, the rest
// are dropped).
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Duration
}

// NewTokenBucket returns a limiter admitting rate packets per second with
// the given burst size. The bucket starts full. A burst below 1 is
// raised to 1 so a conforming first packet always passes.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Allow reports whether a packet arriving at virtual time now conforms,
// consuming one token if so. now must be monotonically non-decreasing
// across calls, which the single-threaded engine guarantees.
func (tb *TokenBucket) Allow(now time.Duration) bool {
	elapsed := now - tb.last
	tb.last = now
	tb.tokens += tb.rate * elapsed.Seconds()
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// Rate returns the configured packets-per-second rate.
func (tb *TokenBucket) Rate() float64 { return tb.rate }
