package netsim

import (
	"net/netip"
	"testing"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestFIBLongestPrefixMatch(t *testing.T) {
	f := NewFIB()
	def := &Iface{}
	agg := &Iface{}
	spec := &Iface{}
	f.Add(pfx("0.0.0.0/0"), def)
	f.Add(pfx("10.0.0.0/8"), agg)
	f.Add(pfx("10.1.2.0/24"), spec)

	tests := []struct {
		dst  string
		want *Iface
	}{
		{"10.1.2.3", spec},
		{"10.9.9.9", agg},
		{"192.0.2.1", def},
	}
	for _, tc := range tests {
		if got := f.Lookup(netip.MustParseAddr(tc.dst)); got != tc.want {
			t.Errorf("Lookup(%s) = %p, want %p", tc.dst, got, tc.want)
		}
	}
	if f.Len() != 3 {
		t.Errorf("Len = %d", f.Len())
	}
}

func TestFIBOverwriteSamePrefix(t *testing.T) {
	f := NewFIB()
	a, b := &Iface{}, &Iface{}
	f.Add(pfx("10.0.0.0/8"), a)
	f.Add(pfx("10.0.0.0/8"), b)
	if got := f.Lookup(netip.MustParseAddr("10.1.1.1")); got != b {
		t.Error("overwrite did not take effect")
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d after overwrite, want 1", f.Len())
	}
}

func TestFIBNoRoute(t *testing.T) {
	f := NewFIB()
	f.Add(pfx("10.0.0.0/8"), &Iface{})
	if got := f.Lookup(netip.MustParseAddr("192.0.2.1")); got != nil {
		t.Errorf("Lookup with no covering route = %v", got)
	}
}

func TestFIBMasksNonCanonicalPrefix(t *testing.T) {
	f := NewFIB()
	via := &Iface{}
	// 10.1.2.3/8 must be treated as 10.0.0.0/8.
	f.Add(netip.PrefixFrom(netip.MustParseAddr("10.1.2.3"), 8), via)
	if got := f.Lookup(netip.MustParseAddr("10.200.0.1")); got != via {
		t.Error("non-canonical prefix not masked on Add")
	}
}

func TestFIBHostRoute(t *testing.T) {
	f := NewFIB()
	host := &Iface{}
	agg := &Iface{}
	f.Add(pfx("10.0.0.0/8"), agg)
	f.Add(pfx("10.0.0.7/32"), host)
	if got := f.Lookup(netip.MustParseAddr("10.0.0.7")); got != host {
		t.Error("host route not preferred")
	}
	if got := f.Lookup(netip.MustParseAddr("10.0.0.8")); got != agg {
		t.Error("host route leaked to neighbours")
	}
}
