package netsim

import (
	"net/netip"
	"testing"
)

// oracleRoute is one installed route as the reference model sees it.
type oracleRoute struct {
	prefix netip.Prefix
	via    *Iface
}

// oracleAdd mirrors FIB.Add: mask to canonical form, last Add for the
// same masked prefix wins.
func oracleAdd(routes []oracleRoute, p netip.Prefix, via *Iface) []oracleRoute {
	p = p.Masked()
	for i := range routes {
		if routes[i].prefix == p {
			routes[i].via = via
			return routes
		}
	}
	return append(routes, oracleRoute{p, via})
}

// oracleLookup is the naive longest-prefix match: scan every route,
// keep the longest one containing dst. Two distinct prefixes of equal
// length cannot both contain dst, so the winner is unique.
func oracleLookup(routes []oracleRoute, dst netip.Addr) *Iface {
	var best *Iface
	bestBits := -1
	for _, r := range routes {
		if r.prefix.Contains(dst) && r.prefix.Bits() > bestBits {
			best, bestBits = r.via, r.prefix.Bits()
		}
	}
	return best
}

// FuzzFIBLookup drives the layered FIB (host-route map + per-length
// prefix maps) against the naive oracle. The input encodes a route
// table and a set of lookups: 6-byte records install routes (4 address
// bytes, prefix length, interface index) until a record's first byte is
// 0xFF; every remaining 4-byte group is a lookup address.
func FuzzFIBLookup(f *testing.F) {
	// A representative table: default route, two /8-style aggregates, a
	// /24, and host routes — then lookups that hit each layer.
	f.Add([]byte{
		10, 0, 0, 0, 8, 0,
		10, 1, 0, 0, 16, 1,
		10, 1, 2, 0, 24, 2,
		10, 1, 2, 3, 32, 3,
		0, 0, 0, 0, 0, 4,
		0xFF, 0, 0, 0, 0, 0,
		10, 1, 2, 3,
		10, 1, 2, 9,
		10, 1, 9, 9,
		10, 9, 9, 9,
		192, 0, 2, 1,
	})
	// Overwrite: same masked prefix installed twice, last wins.
	f.Add([]byte{
		10, 0, 0, 0, 8, 0,
		10, 99, 99, 99, 8, 1, // masks to 10.0.0.0/8 again
		0xFF, 0, 0, 0, 0, 0,
		10, 5, 5, 5,
	})
	f.Add([]byte{0xFF, 0, 0, 0, 0, 0, 1, 2, 3, 4})

	ifaces := make([]*Iface, 8)
	for i := range ifaces {
		ifaces[i] = &Iface{}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fib := NewFIB()
		var routes []oracleRoute

		i := 0
		for ; i+6 <= len(data) && data[i] != 0xFF && len(routes) < 64; i += 6 {
			addr := netip.AddrFrom4([4]byte{data[i], data[i+1], data[i+2], data[i+3]})
			bits := int(data[i+4]) % 33
			via := ifaces[int(data[i+5])%len(ifaces)]
			p, err := addr.Prefix(bits)
			if err != nil {
				t.Fatalf("Prefix(%d) on v4 addr: %v", bits, err)
			}
			fib.Add(p, via)
			routes = oracleAdd(routes, p, via)
		}
		if i < len(data) && data[i] == 0xFF {
			i += 6
		}
		if fib.Len() != len(routes) {
			t.Fatalf("FIB.Len() = %d, oracle has %d routes", fib.Len(), len(routes))
		}
		for ; i+4 <= len(data); i += 4 {
			dst := netip.AddrFrom4([4]byte{data[i], data[i+1], data[i+2], data[i+3]})
			got, want := fib.Lookup(dst), oracleLookup(routes, dst)
			if got != want {
				t.Fatalf("Lookup(%v): FIB %p, oracle %p (routes: %v)", dst, got, want, routes)
			}
		}
		// Installed routes must resolve to themselves by address.
		for _, r := range routes {
			if got := fib.Lookup(r.prefix.Addr()); got != oracleLookup(routes, r.prefix.Addr()) {
				t.Fatalf("Lookup(%v) of installed prefix %v diverges", r.prefix.Addr(), r.prefix)
			}
		}
	})
}
