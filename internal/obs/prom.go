package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Prometheus text exposition (format version 0.0.4), written directly:
// the daemon's /metrics endpoint serves campaign counters and service
// gauges to any Prometheus-compatible scraper without importing a
// client library. Only the small subset the service needs is
// implemented — gauge and counter families with optional labels —
// rendered with deterministic family and sample ordering so equal
// states serialize byte-identically (the same property the JSON
// snapshots have).

// PromSample is one time series of a family: a label set and a value.
type PromSample struct {
	Labels map[string]string
	Value  float64
}

// PromFamily is one metric family: name, help text, type ("gauge",
// "counter", or "histogram"), and its samples. A histogram family's
// samples are its cumulative buckets (le label, ascending, +Inf last);
// Sum and Count complete it and render as <name>_sum / <name>_count.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample

	Sum   float64
	Count uint64
}

// promName sanitizes s into a legal Prometheus metric-name fragment:
// every character outside [a-zA-Z0-9_:] becomes '_'. Counter registry
// names like "icmp.echo_request.sent" turn into
// "icmp_echo_request_sent".
func promName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set in sorted key order, with label values
// escaped per the exposition format (backslash, quote, newline).
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := labels[k]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		fmt.Fprintf(&b, `%s="%s"`, promName(k), v)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm renders the families in the text exposition format, sorted
// by family name, each family's samples sorted by rendered label set.
func WriteProm(w io.Writer, fams []PromFamily) error {
	sorted := append([]PromFamily(nil), fams...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, f := range sorted {
		name := promName(f.Name)
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, f.Help); err != nil {
				return err
			}
		}
		typ := f.Type
		if typ == "" {
			typ = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		samples := append([]PromSample(nil), f.Samples...)
		series := name
		if typ == "histogram" {
			// Buckets keep the family's ascending-le order (a lexical
			// label sort would scramble them, +Inf first) and render
			// under the conventional _bucket series name.
			series = name + "_bucket"
		} else {
			sort.Slice(samples, func(i, j int) bool {
				return promLabels(samples[i].Labels) < promLabels(samples[j].Labels)
			})
		}
		for _, s := range samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", series, promLabels(s.Labels), promFloat(s.Value)); err != nil {
				return err
			}
		}
		if typ == "histogram" {
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(f.Sum), name, f.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// promFloat renders integral values without an exponent or decimal
// point — counter registries are uint64 and scrape nicer as integers —
// and falls back to %g otherwise.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// PromFamilies converts a snapshot's counters to Prometheus counter
// families, one per registry counter, prefixed (e.g. "rrstudy_"). Each
// family carries one sample per shard plus the shard-invariant merged
// total labeled shard="merged".
func (s *Snapshot) PromFamilies(prefix string) []PromFamily {
	byName := make(map[string]*PromFamily)
	get := func(counter string) *PromFamily {
		f, ok := byName[counter]
		if !ok {
			f = &PromFamily{
				Name: prefix + promName(counter),
				Help: fmt.Sprintf("simulator counter %s", counter),
				Type: "counter",
			}
			byName[counter] = f
		}
		return f
	}
	for _, sm := range s.Shards {
		for k, v := range sm.Counters {
			get(k).Samples = append(get(k).Samples, PromSample{
				Labels: map[string]string{"shard": sm.Shard}, Value: float64(v)})
		}
	}
	for k, v := range s.Merged {
		get(k).Samples = append(get(k).Samples, PromSample{
			Labels: map[string]string{"shard": "merged"}, Value: float64(v)})
	}
	out := make([]PromFamily, 0, len(byName))
	for _, f := range byName {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PromHistogram is a minimal fixed-bucket Prometheus histogram: the
// service's latency families (plane-build duration) without a client
// library, matching the hand-rolled counter/gauge exposition above.
// Observations are goroutine-safe; the zero value is unusable — make
// one with NewPromHistogram.
type PromHistogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds, +Inf implicit
	buckets []uint64  // non-cumulative counts per bound, last is +Inf
	sum     float64
	count   uint64
}

// NewPromHistogram returns a histogram over the given ascending upper
// bounds (seconds, by convention); the +Inf bucket is implicit.
func NewPromHistogram(bounds ...float64) *PromHistogram {
	return &PromHistogram{bounds: bounds, buckets: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *PromHistogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.sum += v
	h.count++
}

// Family snapshots the histogram as one Prometheus family: cumulative
// buckets in ascending-le order (rendered by WriteProm under
// <name>_bucket), plus the _sum/_count pair.
func (h *PromHistogram) Family(name, help string) PromFamily {
	h.mu.Lock()
	defer h.mu.Unlock()
	fam := PromFamily{Name: name, Help: help, Type: "histogram", Sum: h.sum, Count: h.count}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.buckets[i]
		fam.Samples = append(fam.Samples, PromSample{
			Labels: map[string]string{"le": promFloat(b)}, Value: float64(cum)})
	}
	fam.Samples = append(fam.Samples, PromSample{
		Labels: map[string]string{"le": "+Inf"}, Value: float64(h.count)})
	return fam
}
