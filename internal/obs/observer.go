package obs

// Observer is the observability configuration a campaign resolves at
// construction time. The zero value (and a nil *Observer) observes
// nothing: no tracer hooks are installed and per-node attribution
// stays off, so the simulation hot paths pay only their nil checks.
type Observer struct {
	// Trace, when non-nil, receives node-level packet events and probe
	// lifecycle events from every engine and prober the campaign owns.
	Trace *Trace
	// PerNode enables per-router/per-host counter attribution on the
	// campaign's networks, populating ShardMetrics.Nodes in snapshots.
	PerNode bool
}

// Active reports whether the observer asks for any instrumentation.
func (o *Observer) Active() bool {
	return o != nil && (o.Trace != nil || o.PerNode)
}
