package obs

import (
	"sync/atomic"
	"time"
)

// Wall-clock seam. Latency observations (histograms, build timings)
// read the wall clock through Now so tests — the service chaos harness
// in particular — can pin it and prove that no wall-clock value leaks
// into deterministic output: with the clock frozen, every duration
// observed through this seam is exactly zero, while journals and
// renders must come out byte-identical to an unpinned run.
//
// This seam is for observability only. Simulation time is the engine's
// virtual clock; nothing behind Now may influence campaign results.

// nowFn holds the active clock; nil means time.Now.
var nowFn atomic.Pointer[func() time.Time]

// Now returns the current observability wall-clock reading.
func Now() time.Time {
	if fn := nowFn.Load(); fn != nil {
		return (*fn)()
	}
	return time.Now()
}

// Since returns the elapsed observability wall-clock time since t.
func Since(t time.Time) time.Duration {
	return Now().Sub(t)
}

// SetNow replaces the observability clock; nil restores time.Now.
// Safe for concurrent use with Now (tests pin the clock while the
// server's workers observe latencies).
func SetNow(fn func() time.Time) {
	if fn == nil {
		nowFn.Store(nil)
		return
	}
	nowFn.Store(&fn)
}
