// Package obs is the campaign observability layer: structured metrics
// snapshots of the simulator's counter registry and a ring-buffered,
// virtual-clock-stamped trace of probe lifecycles. Both facilities are
// strictly passive — they read state and record events synchronously
// from within the event being observed, never scheduling work or
// touching the virtual clock — so an observed run is byte-identical to
// an unobserved one. When nothing is attached, the hooks they hang off
// (netsim.Network.SetTracer, probe.Prober.SetTracer, per-node counter
// attribution) cost the hot paths a single nil check.
//
// Counter families flow in from every layer that owns an engine: the
// simulator's icmp.*/router.* traffic counters, the prober's probe.*
// accounting, and the traceroute engine's stop-set economics
// (trace.stop.global.hit, trace.stop.local.hit, trace.stop.miss,
// trace.probes.saved). All of these are per-VP quantities counted on
// the engine that ran the VP, so merged totals are shard-invariant;
// only counters netsim.CounterIsLocal names are excluded from merging.
package obs

import (
	"encoding/json"
	"net/netip"
	"sort"
	"sync"
	"time"

	"recordroute/internal/netsim"
	"recordroute/internal/probe"
)

// Counters maps counter name → value. JSON-serializing a Counters map
// is deterministic because encoding/json sorts map keys.
type Counters map[string]uint64

// clone returns a copy of c.
func (c Counters) clone() Counters {
	out := make(Counters, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// ShardMetrics is one engine's (one shard replica's) counter state.
type ShardMetrics struct {
	// Shard labels the engine: "shard0".."shardN" for campaign
	// replicas, "shared" for the study's shared topology engine, or an
	// arm label for chaos sweeps.
	Shard string `json:"shard"`
	// VirtualTime is the engine clock at capture, in nanoseconds.
	VirtualTime time.Duration `json:"virtual_time_ns"`
	// Counters is the engine's nonzero network-wide counters.
	Counters Counters `json:"counters"`
	// Nodes breaks counters down by emitting router/host; nil unless
	// per-node attribution was enabled on the network.
	Nodes map[string]Counters `json:"nodes,omitempty"`
}

// Snapshot is a labeled, mergeable capture of campaign metrics.
type Snapshot struct {
	// Label identifies what was captured ("campaign", "baseline",
	// "lossy/retry", ...).
	Label string `json:"label"`
	// Shards holds per-engine metrics in shard order.
	Shards []ShardMetrics `json:"shards"`
	// Merged sums counters across all shards, excluding engine-local
	// diagnostics (netsim.CounterIsLocal) whose values depend on
	// per-engine evaluation order rather than simulated events. Because
	// campaign results are shard-invariant (DESIGN.md §6), Merged is
	// byte-identical in JSON across shard counts for the same topology,
	// seed, and destination set; engine-local counters remain visible in
	// the per-shard sections.
	Merged Counters `json:"merged"`
}

// Capture reads one network's counters into a ShardMetrics. It is a
// pure read of engine state; calling it does not perturb the run.
func Capture(shard string, n *netsim.Network) ShardMetrics {
	m := ShardMetrics{
		Shard:       shard,
		VirtualTime: n.Now(),
		Counters:    Counters(n.CounterMap()),
	}
	if nc := n.NodeCounters(); nc != nil {
		m.Nodes = make(map[string]Counters, len(nc))
		for node, c := range nc {
			m.Nodes[node] = Counters(c)
		}
	}
	return m
}

// NewSnapshot assembles a labeled snapshot from per-shard captures,
// computing the merged totals over the shard-invariant counters.
func NewSnapshot(label string, shards ...ShardMetrics) *Snapshot {
	s := &Snapshot{Label: label, Shards: shards, Merged: make(Counters)}
	for _, sm := range shards {
		for k, v := range sm.Counters {
			if netsim.CounterIsLocal(k) {
				continue
			}
			s.Merged[k] += v
		}
	}
	return s
}

// Delta returns after − before per counter, dropping zero deltas.
// Counters present on only one side are treated as zero on the other;
// negative deltas cannot occur because counters are monotonic.
func Delta(before, after Counters) Counters {
	out := make(Counters)
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// MarshalIndent renders the snapshot with deterministic field and key
// ordering (struct fields are ordered; map keys are sorted by
// encoding/json), so equal snapshots serialize byte-identically.
func (s *Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// CounterNames returns the sorted union of counter names across the
// snapshot's shards.
func (s *Snapshot) CounterNames() []string {
	seen := make(map[string]bool)
	for _, sm := range s.Shards {
		for k := range sm.Counters {
			seen[k] = true
		}
	}
	names := make([]string, 0, len(seen))
	for k := range seen {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Event is one trace record. At is the virtual clock of the engine the
// event fired on (shard-local time for campaign probes).
type Event struct {
	At    time.Duration `json:"at_ns"`
	Node  string        `json:"node,omitempty"` // emitting router/host; "" for prober events
	VP    string        `json:"vp,omitempty"`   // vantage point, for prober lifecycle events
	Event string        `json:"event"`
	Src   netip.Addr    `json:"src"` // "" when unknown (e.g. pre-decode drops)
	Dst   netip.Addr    `json:"dst"`
	Seq   uint16        `json:"seq,omitempty"`     // probe sequence number (prober events)
	Try   int           `json:"attempt,omitempty"` // 1-based attempt (prober events)
}

// Filter selects which events a Trace keeps. The zero value keeps
// everything.
type Filter struct {
	// DstPrefix, when valid, keeps only events whose src or dst falls
	// inside the prefix (replies flow back with the probed address as
	// src, so matching either side follows a probe both ways).
	DstPrefix netip.Prefix
	// VP, when non-empty, keeps only prober lifecycle events from that
	// vantage point (node-level events are unattributed to VPs and are
	// kept unless DstPrefix excludes them).
	VP string
}

func (f Filter) keep(e Event) bool {
	if f.VP != "" && e.VP != "" && e.VP != f.VP {
		return false
	}
	if f.DstPrefix.IsValid() {
		if !(e.Src.IsValid() && f.DstPrefix.Contains(e.Src)) &&
			!(e.Dst.IsValid() && f.DstPrefix.Contains(e.Dst)) {
			return false
		}
	}
	return true
}

// DefaultTraceCap bounds a Trace's ring buffer when the caller passes
// no explicit capacity.
const DefaultTraceCap = 1 << 16

// Trace is a bounded ring buffer of events. Writes are mutex-guarded
// because parallel campaigns emit from several shard goroutines; the
// engines themselves stay single-threaded, so the lock serializes only
// the trace append, never simulation work.
type Trace struct {
	mu      sync.Mutex
	filter  Filter
	ring    []Event
	next    int // ring index of the next write
	wrapped bool
	dropped uint64 // events evicted by ring wrap
}

// NewTrace returns a trace keeping at most capacity events (oldest
// evicted first); capacity <= 0 means DefaultTraceCap.
func NewTrace(capacity int, f Filter) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{filter: f, ring: make([]Event, 0, capacity)}
}

// Add records an event if the filter keeps it.
func (t *Trace) Add(e Event) {
	if !t.filter.keep(e) {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
		t.next = (t.next + 1) % cap(t.ring)
		t.wrapped = true
		t.dropped++
	}
	t.mu.Unlock()
}

// Events returns the retained events in arrival order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]Event(nil), t.ring...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dropped reports how many events the ring evicted.
func (t *Trace) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len reports how many events are retained.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// NetworkTracer adapts the trace into a netsim.TraceFunc for node-level
// events.
func (t *Trace) NetworkTracer() netsim.TraceFunc {
	return func(at time.Duration, node, event string, src, dst netip.Addr) {
		t.Add(Event{At: at, Node: node, Event: event, Src: src, Dst: dst})
	}
}

// ProberTracer adapts the trace into a probe.TraceFunc for the named
// vantage point's lifecycle events.
func (t *Trace) ProberTracer(vp string) probe.TraceFunc {
	return func(at time.Duration, event string, dst netip.Addr, seq uint16, attempt int) {
		t.Add(Event{At: at, VP: vp, Event: event, Dst: dst, Seq: seq, Try: attempt})
	}
}
