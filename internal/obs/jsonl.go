package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// WriteJSONL serializes the trace's retained events to w, one JSON
// object per line, in arrival order. A trailing summary line reports
// how many events the ring evicted when any were.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if err := enc.Encode(struct {
			Dropped uint64 `json:"dropped"`
		}{d}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
