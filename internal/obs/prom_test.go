package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePromFormat pins the exposition format: HELP/TYPE headers,
// sorted families, sorted and escaped label sets, integral rendering.
func TestWritePromFormat(t *testing.T) {
	fams := []PromFamily{
		{
			Name: "rrstudyd_queue_depth", Help: "jobs waiting", Type: "gauge",
			Samples: []PromSample{{Value: 3}},
		},
		{
			Name: "rrstudyd_job_progress", Help: "completed VP batches", Type: "gauge",
			Samples: []PromSample{
				{Labels: map[string]string{"job": "j2"}, Value: 0.5},
				{Labels: map[string]string{"job": `j"1`}, Value: 7},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteProm(&buf, fams); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP rrstudyd_job_progress completed VP batches",
		"# TYPE rrstudyd_job_progress gauge",
		`rrstudyd_job_progress{job="j2"} 0.5`,
		`rrstudyd_job_progress{job="j\"1"} 7`,
		"# HELP rrstudyd_queue_depth jobs waiting",
		"# TYPE rrstudyd_queue_depth gauge",
		"rrstudyd_queue_depth 3",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("exposition differs:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPromNameSanitizes: registry counter names (dotted) and arbitrary
// label keys must collapse to the legal character set.
func TestPromNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"icmp.echo_request.sent": "icmp_echo_request_sent",
		"9lives":                 "_9lives",
		"ok_name:sub":            "ok_name:sub",
		"sp ace-dash":            "sp_ace_dash",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSnapshotPromFamilies: counter snapshots export one family per
// counter with per-shard samples plus the merged total, deterministic
// across calls.
func TestSnapshotPromFamilies(t *testing.T) {
	snap := NewSnapshot("campaign",
		ShardMetrics{Shard: "shard0", Counters: Counters{"icmp.sent": 10, "pkt.forwarded": 100}},
		ShardMetrics{Shard: "shard1", Counters: Counters{"icmp.sent": 7}},
	)
	fams := snap.PromFamilies("rrstudy_")
	if len(fams) != 2 {
		t.Fatalf("%d families, want 2", len(fams))
	}
	var buf1, buf2 bytes.Buffer
	if err := WriteProm(&buf1, fams); err != nil {
		t.Fatal(err)
	}
	if err := WriteProm(&buf2, snap.PromFamilies("rrstudy_")); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Error("two renders of the same snapshot differ")
	}
	out := buf1.String()
	for _, line := range []string{
		`rrstudy_icmp_sent{shard="shard0"} 10`,
		`rrstudy_icmp_sent{shard="shard1"} 7`,
		`rrstudy_icmp_sent{shard="merged"} 17`,
		`rrstudy_pkt_forwarded{shard="merged"} 100`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

// TestPromHistogramExposition pins the histogram rendering: cumulative
// buckets in ascending-le order under <name>_bucket, the implicit +Inf
// bucket equal to the observation count, and the _sum/_count pair.
func TestPromHistogramExposition(t *testing.T) {
	h := NewPromHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WriteProm(&buf, []PromFamily{h.Family("build_seconds", "build time")}); err != nil {
		t.Fatal(err)
	}
	want := `# HELP build_seconds build time
# TYPE build_seconds histogram
build_seconds_bucket{le="0.1"} 1
build_seconds_bucket{le="1"} 3
build_seconds_bucket{le="10"} 4
build_seconds_bucket{le="+Inf"} 5
build_seconds_sum 56.05
build_seconds_count 5
`
	if got := buf.String(); got != want {
		t.Errorf("histogram exposition:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPromHistogramBoundary pins the le semantics: an observation equal
// to a bound lands in that bound's bucket (le is inclusive).
func TestPromHistogramBoundary(t *testing.T) {
	h := NewPromHistogram(1, 2)
	h.Observe(1)
	h.Observe(2)
	fam := h.Family("x", "")
	if got := fam.Samples[0].Value; got != 1 {
		t.Errorf("le=1 bucket = %v, want 1 (inclusive upper bound)", got)
	}
	if got := fam.Samples[1].Value; got != 2 {
		t.Errorf("le=2 bucket = %v, want 2", got)
	}
}
