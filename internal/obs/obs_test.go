package obs

import (
	"bytes"
	"fmt"
	"net/netip"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"recordroute/internal/netsim"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func ev(i int) Event {
	return Event{
		At:    time.Duration(i) * time.Millisecond,
		Node:  "r0",
		Event: "router.fwd",
		Src:   addr("10.0.0.1"),
		Dst:   addr(fmt.Sprintf("10.1.0.%d", i%250+1)),
	}
}

func TestTraceRingWrap(t *testing.T) {
	tr := NewTrace(4, Filter{})
	for i := 0; i < 10; i++ {
		tr.Add(ev(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	got := tr.Events()
	for i, e := range got {
		if want := ev(6 + i); e != want {
			t.Errorf("event %d = %+v, want %+v (newest 4 in arrival order)", i, e, want)
		}
	}
}

func TestTraceNoWrap(t *testing.T) {
	tr := NewTrace(8, Filter{})
	for i := 0; i < 3; i++ {
		tr.Add(ev(i))
	}
	if tr.Len() != 3 || tr.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 3 and 0", tr.Len(), tr.Dropped())
	}
	got := tr.Events()
	for i := range got {
		if got[i] != ev(i) {
			t.Errorf("event %d = %+v, want %+v", i, got[i], ev(i))
		}
	}
}

func TestTraceDefaultCapacity(t *testing.T) {
	tr := NewTrace(0, Filter{})
	if cap(tr.ring) != DefaultTraceCap {
		t.Fatalf("capacity = %d, want DefaultTraceCap %d", cap(tr.ring), DefaultTraceCap)
	}
}

func TestFilterDstPrefix(t *testing.T) {
	pfx := netip.MustParsePrefix("10.1.0.0/24")
	tr := NewTrace(16, Filter{DstPrefix: pfx})

	in := Event{At: 1, Event: "router.fwd", Src: addr("10.0.0.1"), Dst: addr("10.1.0.9")}
	// A reply: the probed address is now the source.
	reply := Event{At: 2, Event: "router.fwd", Src: addr("10.1.0.9"), Dst: addr("10.0.0.1")}
	out := Event{At: 3, Event: "router.fwd", Src: addr("10.0.0.1"), Dst: addr("10.2.0.9")}
	// Pre-decode drop: no addresses known.
	blank := Event{At: 4, Event: "chaos.router.offline"}

	for _, e := range []Event{in, reply, out, blank} {
		tr.Add(e)
	}
	got := tr.Events()
	if len(got) != 2 || got[0] != in || got[1] != reply {
		t.Fatalf("kept %+v, want the forward and reply events only", got)
	}
}

func TestFilterVP(t *testing.T) {
	tr := NewTrace(16, Filter{VP: "vp1"})
	mine := Event{At: 1, VP: "vp1", Event: "probe.send", Dst: addr("10.1.0.9"), Seq: 1, Try: 1}
	other := Event{At: 2, VP: "vp2", Event: "probe.send", Dst: addr("10.1.0.9"), Seq: 1, Try: 1}
	node := Event{At: 3, Node: "r0", Event: "router.slowpath", Src: addr("10.0.0.1"), Dst: addr("10.1.0.9")}

	for _, e := range []Event{mine, other, node} {
		tr.Add(e)
	}
	got := tr.Events()
	if len(got) != 2 || got[0] != mine || got[1] != node {
		t.Fatalf("kept %+v, want vp1's probe event and the node event", got)
	}
}

func TestTraceConcurrentAdd(t *testing.T) {
	tr := NewTrace(128, Filter{})
	var wg sync.WaitGroup
	const writers, per = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Add(ev(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != writers*per {
		t.Fatalf("retained+dropped = %d, want %d", got, writers*per)
	}
	if tr.Len() != 128 {
		t.Fatalf("Len = %d, want full ring 128", tr.Len())
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTrace(2, Filter{})
	for i := 0; i < 3; i++ {
		tr.Add(ev(i))
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 2 events + dropped summary:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"event":"router.fwd"`) || !strings.Contains(lines[0], `"at_ns":1000000`) {
		t.Errorf("first line = %s", lines[0])
	}
	if lines[2] != `{"dropped":1}` {
		t.Errorf("summary line = %s, want {\"dropped\":1}", lines[2])
	}

	// Same events → byte-identical serialization.
	var buf2 bytes.Buffer
	if err := tr.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteJSONL not deterministic for identical trace state")
	}
}

func TestSnapshotMergeAndDeterminism(t *testing.T) {
	s1 := ShardMetrics{Shard: "shard0", Counters: Counters{"router.fwd": 10, "link.tx": 4}}
	s2 := ShardMetrics{Shard: "shard1", Counters: Counters{"router.fwd": 5, "host.echo.reply": 2}}
	snap := NewSnapshot("campaign", s1, s2)

	want := Counters{"router.fwd": 15, "link.tx": 4, "host.echo.reply": 2}
	if !reflect.DeepEqual(snap.Merged, want) {
		t.Fatalf("Merged = %v, want %v", snap.Merged, want)
	}
	if names := snap.CounterNames(); !reflect.DeepEqual(names, []string{"host.echo.reply", "link.tx", "router.fwd"}) {
		t.Fatalf("CounterNames = %v", names)
	}

	// Equal snapshots marshal byte-identically (map keys sorted by
	// encoding/json) — the property the K=1 vs K=4 acceptance check
	// relies on.
	b1, err := snap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	again := NewSnapshot("campaign", s1, s2)
	b2, err := again.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("equal snapshots serialized differently")
	}
}

// TestSnapshotMergesTraceCounters pins the traceroute engine's
// stop-set counters as ordinary shard-invariant counters: per-VP
// quantities counted on the engine that ran the VP, so the merged
// totals sum across any shard partition.
func TestSnapshotMergesTraceCounters(t *testing.T) {
	s1 := ShardMetrics{Shard: "shard0", Counters: Counters{
		"trace.stop.global.hit": 3,
		"trace.stop.local.hit":  5,
		"trace.stop.miss":       2,
		"trace.probes.saved":    40,
	}}
	s2 := ShardMetrics{Shard: "shard1", Counters: Counters{
		"trace.stop.global.hit": 4,
		"trace.stop.local.hit":  1,
		"trace.probes.saved":    7,
	}}
	for name := range s1.Counters {
		if netsim.CounterIsLocal(name) {
			t.Fatalf("%s registered engine-local; stop-set stats must merge", name)
		}
	}
	snap := NewSnapshot("doubletree", s1, s2)
	want := Counters{
		"trace.stop.global.hit": 7,
		"trace.stop.local.hit":  6,
		"trace.stop.miss":       2,
		"trace.probes.saved":    47,
	}
	if !reflect.DeepEqual(snap.Merged, want) {
		t.Fatalf("Merged = %v, want %v", snap.Merged, want)
	}
}

// TestSnapshotMergeExcludesLocalCounters: engine-local diagnostics
// (cache/memoization observations, not simulated events) stay visible
// per shard but never enter the merged totals — they are the one class
// of counter that cannot be shard-invariant.
func TestSnapshotMergeExcludesLocalCounters(t *testing.T) {
	mark := netsim.MarkCounters()
	defer mark.Reset()
	netsim.RegisterLocalCounter("test.obs.local")

	s1 := ShardMetrics{Shard: "shard0", Counters: Counters{"router.fwd": 10, "test.obs.local": 3}}
	s2 := ShardMetrics{Shard: "shard1", Counters: Counters{"router.fwd": 5, "test.obs.local": 9}}
	snap := NewSnapshot("campaign", s1, s2)
	if _, ok := snap.Merged["test.obs.local"]; ok {
		t.Fatalf("engine-local counter leaked into Merged: %v", snap.Merged)
	}
	if snap.Merged["router.fwd"] != 15 {
		t.Fatalf("Merged = %v", snap.Merged)
	}
	if snap.Shards[0].Counters["test.obs.local"] != 3 {
		t.Fatal("local counter lost from per-shard section")
	}
	// The pre-registered route-flip diagnostic is local.
	if !netsim.CounterIsLocal("chaos.route.flip") {
		t.Fatal("chaos.route.flip not registered engine-local")
	}
}

func TestDelta(t *testing.T) {
	before := Counters{"router.fwd": 10, "link.tx": 4}
	after := Counters{"router.fwd": 12, "link.tx": 4, "host.echo.reply": 1}
	got := Delta(before, after)
	want := Counters{"router.fwd": 2, "host.echo.reply": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Delta = %v, want %v", got, want)
	}
}

func TestCaptureReadsNetwork(t *testing.T) {
	n := netsim.New()
	n.CountID(netsim.CounterID("test.obs.capture"), 7)
	m := Capture("shard0", n)
	if m.Shard != "shard0" || m.Counters["test.obs.capture"] != 7 {
		t.Fatalf("Capture = %+v", m)
	}
	if m.Nodes != nil {
		t.Fatal("Nodes populated without per-node attribution")
	}
}

func TestTracerAdapters(t *testing.T) {
	tr := NewTrace(16, Filter{})
	tr.NetworkTracer()(5*time.Microsecond, "r1", "router.slowpath", addr("10.0.0.1"), addr("10.1.0.9"))
	tr.ProberTracer("vp0")(7*time.Microsecond, "probe.send", addr("10.1.0.9"), 42, 1)

	got := tr.Events()
	if len(got) != 2 {
		t.Fatalf("got %d events", len(got))
	}
	if got[0].Node != "r1" || got[0].Event != "router.slowpath" || got[0].VP != "" {
		t.Errorf("network event = %+v", got[0])
	}
	if got[1].VP != "vp0" || got[1].Seq != 42 || got[1].Try != 1 || got[1].Node != "" {
		t.Errorf("prober event = %+v", got[1])
	}
}
