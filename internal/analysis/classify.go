// Package analysis turns raw probe results into the paper's analytic
// artifacts: destination classifications (ping-responsive,
// RR-responsive, RR-reachable), hop-distance distributions, greedy
// vantage-point selection, AS-path stamping audits, and rendered tables.
//
// The package deliberately works from probe results and small callback
// interfaces (address→ASN, address→type) rather than from topology
// internals, so the same code would analyze real-Internet measurements.
package analysis

import (
	"net/netip"
	"sort"

	"recordroute/internal/probe"
)

// PingResponsive classifies destinations from repeated plain pings: a
// destination is responsive if at least one ping was answered with an
// echo reply (§3.1).
func PingResponsive(dests []netip.Addr, grouped [][]probe.Result) map[netip.Addr]bool {
	out := make(map[netip.Addr]bool, len(dests))
	for i, d := range dests {
		ok := false
		for _, r := range grouped[i] {
			if r.Type == probe.EchoReply {
				ok = true
				break
			}
		}
		out[d] = ok
	}
	return out
}

// RRDestStat aggregates one destination's ping-RR outcomes across all
// vantage points.
type RRDestStat struct {
	Addr netip.Addr
	// Responses counts VPs whose ping-RR was answered with an echo
	// reply that carried the Record Route option (the RR-responsive
	// test, §3.1).
	Responses int
	// RepliesWithoutRR counts echo replies that dropped the option.
	RepliesWithoutRR int
	// MinDestSlot is the smallest (1-based) RR slot in which the
	// destination's own address appears across VPs; 0 if it never does.
	MinDestSlot int
	// ClosestVP is the VP achieving MinDestSlot.
	ClosestVP string
	// SlotsByVP records, per responding VP, the slot where the
	// destination appeared (0 when absent from that VP's response).
	SlotsByVP map[string]int
	// SawFreeSlots notes a VP response whose option still had free
	// slots yet lacked the destination address — the §3.3 false-negative
	// signature worth re-testing with ping-RRudp.
	SawFreeSlots bool
}

// RRResponsive reports the §3.1 RR-responsive classification.
func (s *RRDestStat) RRResponsive() bool { return s.Responses > 0 }

// RRReachable reports the §3.1 RR-reachable classification: the
// destination address appeared within the nine slots for some VP.
func (s *RRDestStat) RRReachable() bool { return s.MinDestSlot > 0 }

// WithinHops reports reachability within n slots (n=8 is the reverse-
// path criterion, §3.3).
func (s *RRDestStat) WithinHops(n int) bool {
	return s.MinDestSlot > 0 && s.MinDestSlot <= n
}

// AggregateRR folds per-VP ping-RR results into per-destination stats.
// Results lacking an echo reply or an RR option do not count as
// RR-responses (a reply that strips the option is tallied separately).
func AggregateRR(perVP map[string][]probe.Result) map[netip.Addr]*RRDestStat {
	stats := make(map[netip.Addr]*RRDestStat)
	names := make([]string, 0, len(perVP))
	for name := range perVP {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic iteration
	for _, vp := range names {
		for _, r := range perVP[vp] {
			if r.Type != probe.EchoReply {
				continue
			}
			st := stats[r.Dst]
			if st == nil {
				st = &RRDestStat{Addr: r.Dst, SlotsByVP: make(map[string]int)}
				stats[r.Dst] = st
			}
			if !r.HasRR {
				st.RepliesWithoutRR++
				continue
			}
			st.Responses++
			slot := destSlot(r)
			st.SlotsByVP[vp] = slot
			if slot == 0 && r.RRSlotsRemaining() > 0 {
				st.SawFreeSlots = true
			}
			if slot > 0 && (st.MinDestSlot == 0 || slot < st.MinDestSlot) {
				st.MinDestSlot = slot
				st.ClosestVP = vp
			}
		}
	}
	return stats
}

// destSlot returns the 1-based RR slot containing the probed address,
// or 0.
func destSlot(r probe.Result) int {
	for i, h := range r.RR {
		if h == r.Dst {
			return i + 1
		}
	}
	return 0
}

// ApplyAliases upgrades reachability using alias sets: if a recorded
// address is an alias of the probed destination, the destination was
// reached even though its probed address never appeared (§3.3's first
// reclassification). aliasOf maps an address to its canonical alias-set
// representative (identity when unknown). It returns how many
// destinations were reclassified.
func ApplyAliases(stats map[netip.Addr]*RRDestStat, perVP map[string][]probe.Result, aliasOf func(netip.Addr) netip.Addr) int {
	names := make([]string, 0, len(perVP))
	for name := range perVP {
		names = append(names, name)
	}
	sort.Strings(names)
	reclassified := make(map[netip.Addr]bool)
	for _, vp := range names {
		for _, r := range perVP[vp] {
			if r.Type != probe.EchoReply || !r.HasRR {
				continue
			}
			st := stats[r.Dst]
			if st == nil || st.RRReachable() {
				continue
			}
			canon := aliasOf(r.Dst)
			for i, h := range r.RR {
				if h != r.Dst && aliasOf(h) == canon {
					st.MinDestSlot = i + 1
					st.ClosestVP = vp
					reclassified[r.Dst] = true
					break
				}
			}
		}
	}
	return len(reclassified)
}

// ApplyRRUDP upgrades reachability using ping-RRudp evidence: a
// port-unreachable whose quoted option still had free slots proves the
// probe arrived at the destination within the slot limit, even though
// the destination never stamps (§3.3's second reclassification). The
// destination is credited at slot len(RR)+1 — where its stamp would
// have landed. Returns the number of reclassified destinations.
func ApplyRRUDP(stats map[netip.Addr]*RRDestStat, perVP map[string][]probe.Result) int {
	names := make([]string, 0, len(perVP))
	for name := range perVP {
		names = append(names, name)
	}
	sort.Strings(names)
	reclassified := make(map[netip.Addr]bool)
	for _, vp := range names {
		for _, r := range perVP[vp] {
			if r.Type != probe.PortUnreachable || !r.HasRR {
				continue
			}
			if r.RRSlotsRemaining() <= 0 {
				continue
			}
			st := stats[r.Dst]
			if st == nil || st.RRReachable() {
				continue
			}
			slot := len(r.RR) + 1
			if st.MinDestSlot == 0 || slot < st.MinDestSlot {
				st.MinDestSlot = slot
				st.ClosestVP = vp
			}
			reclassified[r.Dst] = true
		}
	}
	return len(reclassified)
}
