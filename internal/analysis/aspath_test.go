package analysis

import (
	"net/netip"
	"strings"
	"testing"
)

// asnBySecondOctet resolves 10.N.x.x to ASN N, everything else to -1.
func asnBySecondOctet(h netip.Addr) int {
	b := h.As4()
	if b[0] != 10 {
		return -1
	}
	return int(b[1])
}

func TestASPathCollapsesAndSkips(t *testing.T) {
	hops := []netip.Addr{
		a("10.1.0.1"), a("10.1.0.2"), // AS 1 twice
		a("192.168.0.1"), // unresolvable
		a("10.2.0.1"),    // AS 2
		a("10.1.0.9"),    // AS 1 again (non-consecutive: kept)
	}
	got := ASPath(hops, asnBySecondOctet)
	want := []int{1, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("path = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("path = %v, want %v", got, want)
		}
	}
}

func TestAuditStampingCategories(t *testing.T) {
	// AS 1 always stamps, AS 2 never, AS 3 sometimes. Dest is in AS 9.
	pairs := []TraceRRPair{
		{
			Dst:       a("10.9.0.1"),
			TraceHops: []netip.Addr{a("10.1.0.1"), a("10.2.0.1"), a("10.3.0.1")},
			RRHops:    []netip.Addr{a("10.1.0.5"), a("10.3.0.5"), a("10.9.0.1")},
		},
		{
			Dst:       a("10.9.0.2"),
			TraceHops: []netip.Addr{a("10.1.0.1"), a("10.2.0.1"), a("10.3.0.1")},
			RRHops:    []netip.Addr{a("10.1.0.5")},
		},
	}
	audit := AuditStamping(pairs, asnBySecondOctet)
	if len(audit.Always) != 1 || audit.Always[0] != 1 {
		t.Errorf("Always = %v", audit.Always)
	}
	if len(audit.Never) != 1 || audit.Never[0] != 2 {
		t.Errorf("Never = %v", audit.Never)
	}
	if len(audit.Sometimes) != 1 || audit.Sometimes[0] != 3 {
		t.Errorf("Sometimes = %v", audit.Sometimes)
	}
	if st := audit.PerAS[2]; st.InTraceroute != 2 || st.AlsoInRR != 0 {
		t.Errorf("AS2 stats %+v", st)
	}
	// The destination AS must not be audited.
	if _, ok := audit.PerAS[9]; ok {
		t.Error("destination AS included in audit")
	}
}

func TestTable1BuildAndRender(t *testing.T) {
	dests := []DestInfo{
		{Addr: a("10.1.0.1"), ASN: 1, Type: "Transit/Access"},
		{Addr: a("10.1.1.1"), ASN: 1, Type: "Transit/Access"},
		{Addr: a("10.2.0.1"), ASN: 2, Type: "Enterprise"},
		{Addr: a("10.3.0.1"), ASN: 3, Type: "Content"},
	}
	ping := map[netip.Addr]bool{a("10.1.0.1"): true, a("10.1.1.1"): true, a("10.2.0.1"): true}
	rr := map[netip.Addr]bool{a("10.1.0.1"): true}
	tbl := BuildTable1(dests, ping, rr)

	total := tbl.ByIP[TotalLabel]
	if total.Probed != 4 || total.PingResponsive != 3 || total.RRResponsive != 1 {
		t.Errorf("ByIP total = %+v", total)
	}
	ta := tbl.ByIP["Transit/Access"]
	if ta.Probed != 2 || ta.RRResponsive != 1 {
		t.Errorf("ByIP T/A = %+v", ta)
	}
	asTotal := tbl.ByAS[TotalLabel]
	if asTotal.Probed != 3 || asTotal.PingResponsive != 2 || asTotal.RRResponsive != 1 {
		t.Errorf("ByAS total = %+v", asTotal)
	}
	if got := total.RRRatio(); got < 0.33 || got > 0.34 {
		t.Errorf("RRRatio = %v", got)
	}

	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"By IP", "By AS", "Transit/Access", "Enterprise", "All Probed", "RR-Responsive"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable1RRRatioZeroDivision(t *testing.T) {
	var c Table1Cell
	if c.RRRatio() != 0 {
		t.Error("zero-ping cell ratio not 0")
	}
}
