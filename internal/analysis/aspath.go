package analysis

import (
	"net/netip"
	"sort"
)

// ASPath collapses a hop-address sequence to its AS-level path using the
// asnOf resolver (-1 for unresolvable hops, which are skipped).
// Consecutive duplicates are merged.
func ASPath(hops []netip.Addr, asnOf func(netip.Addr) int) []int {
	var out []int
	for _, h := range hops {
		asn := asnOf(h)
		if asn < 0 {
			continue
		}
		if len(out) == 0 || out[len(out)-1] != asn {
			out = append(out, asn)
		}
	}
	return out
}

// TraceRRPair is one destination's traceroute and ping-RR measured from
// the same vantage point, the unit of §3.5's stamping audit.
type TraceRRPair struct {
	Dst       netip.Addr
	TraceHops []netip.Addr // responding traceroute hops, in order
	RRHops    []netip.Addr // recorded RR slots, in order
}

// StampStats counts, per AS, how often it appeared in a traceroute and
// how often the corresponding ping-RR also recorded it.
type StampStats struct {
	ASN          int
	InTraceroute int
	AlsoInRR     int
}

// StampAudit is the outcome of the §3.5 comparison.
type StampAudit struct {
	// PerAS holds counts for every AS seen in any traceroute.
	PerAS map[int]*StampStats
	// Always lists ASes present in RR every time they appeared in a
	// traceroute; Sometimes were present in some but not all; Never
	// were never present — the suspected no-stamp configurations.
	Always, Sometimes, Never []int
}

// AuditStamping compares traceroute-derived and RR-derived AS paths over
// the given pairs. The destination's own AS is excluded (its presence is
// governed by reachability, not stamping policy); so is the VP-side
// first AS when the RR option was already full before reaching it.
func AuditStamping(pairs []TraceRRPair, asnOf func(netip.Addr) int) *StampAudit {
	audit := &StampAudit{PerAS: make(map[int]*StampStats)}
	for _, p := range pairs {
		destASN := asnOf(p.Dst)
		tracePath := ASPath(p.TraceHops, asnOf)
		rrSet := make(map[int]bool)
		for _, asn := range ASPath(p.RRHops, asnOf) {
			rrSet[asn] = true
		}
		for _, asn := range tracePath {
			if asn == destASN {
				continue
			}
			st := audit.PerAS[asn]
			if st == nil {
				st = &StampStats{ASN: asn}
				audit.PerAS[asn] = st
			}
			st.InTraceroute++
			if rrSet[asn] {
				st.AlsoInRR++
			}
		}
	}
	asns := make([]int, 0, len(audit.PerAS))
	for asn := range audit.PerAS {
		asns = append(asns, asn)
	}
	sort.Ints(asns)
	for _, asn := range asns {
		st := audit.PerAS[asn]
		switch {
		case st.AlsoInRR == 0:
			audit.Never = append(audit.Never, asn)
		case st.AlsoInRR == st.InTraceroute:
			audit.Always = append(audit.Always, asn)
		default:
			audit.Sometimes = append(audit.Sometimes, asn)
		}
	}
	return audit
}
