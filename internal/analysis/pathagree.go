package analysis

import "net/netip"

// PathLCP returns the length of the longest common prefix of two
// AS-level paths.
func PathLCP(a, b []int) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// PathAgreement scores how far two AS paths agree: the longest common
// prefix over the longer path's length. Two empty paths agree fully
// (1.0); one empty path agrees not at all (0).
func PathAgreement(a, b []int) float64 {
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	if max == 0 {
		return 1
	}
	return float64(PathLCP(a, b)) / float64(max)
}

// OverlapFrac returns the fraction of a's distinct addresses that
// also appear in b — the router-level containment used to compare RR
// stamps against traceroute hops. 0 when a is empty.
func OverlapFrac(a, b []netip.Addr) float64 {
	if len(a) == 0 {
		return 0
	}
	in := make(map[netip.Addr]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	seen := make(map[netip.Addr]bool, len(a))
	hit := 0
	for _, x := range a {
		if seen[x] {
			continue
		}
		seen[x] = true
		if in[x] {
			hit++
		}
	}
	return float64(hit) / float64(len(seen))
}
