package analysis

import (
	"fmt"
	"io"
	"sort"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return CDF{sorted: s}
}

// NewCDFInts builds a CDF from integer samples.
func NewCDFInts(samples []int) CDF {
	fs := make([]float64, len(samples))
	for i, v := range samples {
		fs[i] = float64(v)
	}
	return NewCDF(fs)
}

// N returns the sample count.
func (c CDF) N() int { return len(c.sorted) }

// At returns P(X <= x), or 0 for an empty distribution.
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, x)
	// Advance past equal values: Search finds the first >= x.
	for idx < len(c.sorted) && c.sorted[idx] <= x {
		idx++
	}
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1), or 0 when empty.
func (c CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(q * float64(len(c.sorted)))
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Series samples the CDF at the given xs, for figure output.
func (c CDF) Series(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = c.At(x)
	}
	return out
}

// Figure is a multi-line CDF (or any y-vs-x) series table rendered as
// text: one row per x, one column per named line — the textual
// equivalent of the paper's gnuplot figures.
type Figure struct {
	Title  string
	XLabel string
	X      []float64
	Lines  []FigureLine
}

// FigureLine is one named series.
type FigureLine struct {
	Name string
	Y    []float64
}

// AddCDF samples a CDF onto the figure's x grid as a new line.
func (f *Figure) AddCDF(name string, c CDF) {
	f.Lines = append(f.Lines, FigureLine{Name: name, Y: c.Series(f.X)})
}

// AddLine appends a precomputed series; y must match len(X).
func (f *Figure) AddLine(name string, y []float64) {
	if len(y) != len(f.X) {
		panic(fmt.Sprintf("analysis: line %q has %d points for %d xs", name, len(y), len(f.X)))
	}
	f.Lines = append(f.Lines, FigureLine{Name: name, Y: y})
}

// Render writes the figure as an aligned text table.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", f.Title)
	fmt.Fprintf(w, "%-12s", f.XLabel)
	for _, l := range f.Lines {
		fmt.Fprintf(w, " %20s", l.Name)
	}
	fmt.Fprintln(w)
	for i, x := range f.X {
		fmt.Fprintf(w, "%-12.4g", x)
		for _, l := range f.Lines {
			fmt.Fprintf(w, " %20.4f", l.Y[i])
		}
		fmt.Fprintln(w)
	}
}

// Description summarizes a sample distribution.
type Description struct {
	N                 int
	Min, Median, Mean float64
	P90, Max          float64
}

// Describe computes summary statistics; zero values for empty input.
func Describe(samples []float64) Description {
	if len(samples) == 0 {
		return Description{}
	}
	c := NewCDF(samples)
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return Description{
		N:      len(samples),
		Min:    c.Quantile(0),
		Median: c.Quantile(0.5),
		Mean:   sum / float64(len(samples)),
		P90:    c.Quantile(0.9),
		Max:    c.Quantile(1),
	}
}

// IntRange returns [lo, lo+1, …, hi] as float64s, a convenience for
// hop-count x-axes.
func IntRange(lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, float64(v))
	}
	return out
}
