package analysis

import (
	"net/netip"
	"sort"
)

// GreedyStep records one round of greedy vantage-point selection.
type GreedyStep struct {
	// VP is the site chosen this round.
	VP string
	// NewlyCovered is how many destinations this site added.
	NewlyCovered int
	// TotalCovered is the cumulative coverage after this round.
	TotalCovered int
}

// GreedyCover selects up to k vantage points maximizing destination
// coverage (the paper's §3.3 site-selection experiment: 73% with one
// site, 95% with ten). cover maps VP name to the set of destinations it
// covers. Ties break toward the lexicographically smaller name, keeping
// runs deterministic.
func GreedyCover(cover map[string]map[netip.Addr]bool, k int) []GreedyStep {
	names := make([]string, 0, len(cover))
	for n := range cover {
		names = append(names, n)
	}
	sort.Strings(names)
	if k > len(names) {
		k = len(names)
	}
	covered := make(map[netip.Addr]bool)
	chosen := make(map[string]bool)
	var steps []GreedyStep
	for round := 0; round < k; round++ {
		best, bestGain := "", -1
		for _, n := range names {
			if chosen[n] {
				continue
			}
			gain := 0
			for d := range cover[n] {
				if !covered[d] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = n, gain
			}
		}
		if best == "" {
			break
		}
		chosen[best] = true
		for d := range cover[best] {
			covered[d] = true
		}
		steps = append(steps, GreedyStep{VP: best, NewlyCovered: bestGain, TotalCovered: len(covered)})
	}
	return steps
}

// CoverageFromStats derives each VP's covered-destination set from
// aggregated RR stats: VP covers dest if the destination appeared in
// that VP's Record Route response within maxSlot slots.
func CoverageFromStats(stats map[netip.Addr]*RRDestStat, maxSlot int) map[string]map[netip.Addr]bool {
	cover := make(map[string]map[netip.Addr]bool)
	for dst, st := range stats {
		for vp, slot := range st.SlotsByVP {
			if slot == 0 || slot > maxSlot {
				continue
			}
			m := cover[vp]
			if m == nil {
				m = make(map[netip.Addr]bool)
				cover[vp] = m
			}
			m[dst] = true
		}
	}
	return cover
}
