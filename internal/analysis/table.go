package analysis

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
)

// DestInfo is the per-destination metadata Table 1 needs: which AS it
// belongs to and that AS's classification, as read from the exported
// datasets.
type DestInfo struct {
	Addr netip.Addr
	ASN  int
	Type string // "Transit/Access", "Enterprise", "Content", "Unknown"
}

// Table1Cell is one (population, ping-responsive, RR-responsive) triple.
type Table1Cell struct {
	Probed, PingResponsive, RRResponsive int
}

// RRRatio returns RR-responsive / ping-responsive, the paper's headline
// 75% (by IP) and 82% (by AS).
func (c Table1Cell) RRRatio() float64 {
	if c.PingResponsive == 0 {
		return 0
	}
	return float64(c.RRResponsive) / float64(c.PingResponsive)
}

// Table1 mirrors the paper's Table 1: response rates by IP and by AS,
// total and per AS type.
type Table1 struct {
	Types []string // column order after Total
	ByIP  map[string]Table1Cell
	ByAS  map[string]Table1Cell
}

// TotalLabel is the first column's key.
const TotalLabel = "Total"

// BuildTable1 computes the table from destination metadata and the two
// classifications.
func BuildTable1(dests []DestInfo, pingResp map[netip.Addr]bool, rrResp map[netip.Addr]bool) *Table1 {
	t := &Table1{
		ByIP: make(map[string]Table1Cell),
		ByAS: make(map[string]Table1Cell),
	}
	typeSet := map[string]bool{}
	asType := map[int]string{}
	asPing := map[int]bool{}
	asRR := map[int]bool{}
	for _, d := range dests {
		typeSet[d.Type] = true
		for _, label := range []string{TotalLabel, d.Type} {
			c := t.ByIP[label]
			c.Probed++
			if pingResp[d.Addr] {
				c.PingResponsive++
			}
			if rrResp[d.Addr] {
				c.RRResponsive++
			}
			t.ByIP[label] = c
		}
		asType[d.ASN] = d.Type
		if pingResp[d.Addr] {
			asPing[d.ASN] = true
		}
		if rrResp[d.Addr] {
			asRR[d.ASN] = true
		}
	}
	for asn, typ := range asType {
		for _, label := range []string{TotalLabel, typ} {
			c := t.ByAS[label]
			c.Probed++
			if asPing[asn] {
				c.PingResponsive++
			}
			if asRR[asn] {
				c.RRResponsive++
			}
			t.ByAS[label] = c
		}
	}
	for typ := range typeSet {
		t.Types = append(t.Types, typ)
	}
	sort.Strings(t.Types)
	return t
}

// Render writes the table in the paper's layout (counts with per-column
// percentages of the probed population).
func (t *Table1) Render(w io.Writer) {
	cols := append([]string{TotalLabel}, t.Types...)
	render := func(title string, cells map[string]Table1Cell) {
		fmt.Fprintf(w, "%-18s", title)
		for _, c := range cols {
			fmt.Fprintf(w, " %22s", c)
		}
		fmt.Fprintln(w)
		rows := []struct {
			name string
			get  func(Table1Cell) int
		}{
			{"All Probed", func(c Table1Cell) int { return c.Probed }},
			{"Ping Responsive", func(c Table1Cell) int { return c.PingResponsive }},
			{"RR-Responsive", func(c Table1Cell) int { return c.RRResponsive }},
		}
		for _, row := range rows {
			fmt.Fprintf(w, "%-18s", row.name)
			for _, col := range cols {
				cell := cells[col]
				v := row.get(cell)
				pct := 0.0
				if cell.Probed > 0 {
					pct = 100 * float64(v) / float64(cell.Probed)
				}
				fmt.Fprintf(w, " %12d (%5.1f%%)", v, pct)
			}
			fmt.Fprintln(w)
		}
	}
	render("By IP", t.ByIP)
	fmt.Fprintln(w)
	render("By AS", t.ByAS)
}
