package analysis

import (
	"net/netip"
	"testing"
)

func set(addrs ...string) map[netip.Addr]bool {
	m := make(map[netip.Addr]bool)
	for _, s := range addrs {
		m[a(s)] = true
	}
	return m
}

func TestGreedyCoverPicksLargestFirst(t *testing.T) {
	cover := map[string]map[netip.Addr]bool{
		"small": set("10.0.0.1"),
		"big":   set("10.0.0.1", "10.0.0.2", "10.0.0.3"),
		"mid":   set("10.0.0.4", "10.0.0.2"),
	}
	steps := GreedyCover(cover, 3)
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	if steps[0].VP != "big" || steps[0].NewlyCovered != 3 {
		t.Errorf("first pick %+v", steps[0])
	}
	// mid adds 10.0.0.4 (1 new); small adds nothing.
	if steps[1].VP != "mid" || steps[1].NewlyCovered != 1 {
		t.Errorf("second pick %+v", steps[1])
	}
	if steps[2].NewlyCovered != 0 {
		t.Errorf("third pick %+v", steps[2])
	}
	if steps[2].TotalCovered != 4 {
		t.Errorf("total covered %d", steps[2].TotalCovered)
	}
}

func TestGreedyCoverDeterministicTies(t *testing.T) {
	cover := map[string]map[netip.Addr]bool{
		"zeta":  set("10.0.0.1"),
		"alpha": set("10.0.0.2"),
	}
	for i := 0; i < 10; i++ {
		steps := GreedyCover(cover, 1)
		if steps[0].VP != "alpha" {
			t.Fatalf("tie broken to %q, want alpha", steps[0].VP)
		}
	}
}

func TestGreedyCoverKBeyondSites(t *testing.T) {
	cover := map[string]map[netip.Addr]bool{"only": set("10.0.0.1")}
	steps := GreedyCover(cover, 10)
	if len(steps) != 1 {
		t.Errorf("steps = %d, want 1", len(steps))
	}
}

func TestCoverageFromStats(t *testing.T) {
	d1, d2 := a("10.0.0.1"), a("10.0.0.2")
	stats := map[netip.Addr]*RRDestStat{
		d1: {Addr: d1, SlotsByVP: map[string]int{"vp-a": 3, "vp-b": 9}},
		d2: {Addr: d2, SlotsByVP: map[string]int{"vp-a": 0}},
	}
	cover := CoverageFromStats(stats, 8)
	if !cover["vp-a"][d1] {
		t.Error("vp-a should cover d1 at slot 3")
	}
	if cover["vp-b"][d1] {
		t.Error("slot 9 exceeds maxSlot 8")
	}
	if cover["vp-a"][d2] {
		t.Error("slot 0 (absent) counted as coverage")
	}
}
