package analysis

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFAt(t *testing.T) {
	c := NewCDFInts([]int{1, 2, 2, 3, 9})
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{1, 0.2},
		{2, 0.6},
		{2.5, 0.6},
		{3, 0.8},
		{9, 1},
		{100, 1},
	}
	for _, tc := range tests {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(5) != 0 || c.Quantile(0.5) != 0 || c.N() != 0 {
		t.Error("empty CDF misbehaves")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDFInts([]int{10, 20, 30, 40})
	if q := c.Quantile(0); q != 10 {
		t.Errorf("Quantile(0) = %v", q)
	}
	if q := c.Quantile(1); q != 40 {
		t.Errorf("Quantile(1) = %v", q)
	}
	if q := c.Quantile(0.5); q != 30 {
		t.Errorf("Quantile(0.5) = %v", q)
	}
}

func TestCDFPropertiesMonotonic(t *testing.T) {
	f := func(samples []float64, probes []float64) bool {
		for i, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				samples[i] = 0
			}
		}
		c := NewCDF(samples)
		prev := -1.0
		for _, x := range []float64{-1e9, -1, 0, 1, 1e9} {
			v := c.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{Title: "test", XLabel: "hops", X: IntRange(1, 3)}
	f.AddCDF("line-a", NewCDFInts([]int{1, 2, 3}))
	f.AddLine("line-b", []float64{0.5, 0.6, 0.7})
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	for _, want := range []string{"# test", "hops", "line-a", "line-b", "0.3333", "0.5000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigureAddLinePanicsOnMismatch(t *testing.T) {
	f := &Figure{X: IntRange(1, 5)}
	defer func() {
		if recover() == nil {
			t.Error("no panic for mismatched series")
		}
	}()
	f.AddLine("bad", []float64{1})
}

func TestIntRange(t *testing.T) {
	got := IntRange(2, 4)
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("IntRange = %v", got)
	}
}

func TestDescribe(t *testing.T) {
	d := Describe([]float64{4, 1, 3, 2, 10})
	if d.N != 5 || d.Min != 1 || d.Max != 10 {
		t.Errorf("describe = %+v", d)
	}
	if d.Median != 3 {
		t.Errorf("median = %v", d.Median)
	}
	if math.Abs(d.Mean-4) > 1e-9 {
		t.Errorf("mean = %v", d.Mean)
	}
	if z := Describe(nil); z.N != 0 {
		t.Errorf("empty describe = %+v", z)
	}
}
