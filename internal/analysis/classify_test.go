package analysis

import (
	"net/netip"
	"testing"

	"recordroute/internal/probe"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

// mkResult builds an echo-reply ping-RR result with the given recorded
// hops out of total slots.
func mkRR(dst netip.Addr, hops []netip.Addr, total int) probe.Result {
	return probe.Result{
		Spec:         probe.Spec{Dst: dst, Kind: probe.PingRR},
		Type:         probe.EchoReply,
		HasRR:        true,
		RR:           hops,
		RRTotalSlots: total,
		RRFull:       len(hops) == total,
	}
}

func TestPingResponsiveAnyOfThree(t *testing.T) {
	dests := []netip.Addr{a("10.0.0.1"), a("10.0.0.2")}
	grouped := [][]probe.Result{
		{{Type: probe.NoResponse}, {Type: probe.EchoReply}, {Type: probe.NoResponse}},
		{{Type: probe.NoResponse}, {Type: probe.NoResponse}, {Type: probe.NoResponse}},
	}
	got := PingResponsive(dests, grouped)
	if !got[dests[0]] {
		t.Error("one reply of three not counted as responsive")
	}
	if got[dests[1]] {
		t.Error("all-timeout dest counted as responsive")
	}
}

func TestAggregateRRClassifications(t *testing.T) {
	d1, d2, d3 := a("20.0.0.1"), a("20.0.0.2"), a("20.0.0.3")
	r1, r2 := a("9.0.0.1"), a("9.0.0.2")
	perVP := map[string][]probe.Result{
		// vp-a reaches d1 at slot 3; d2 responds but never appears
		// (free slots remain → false-negative signature); d3 times out.
		"vp-a": {
			mkRR(d1, []netip.Addr{r1, r2, d1}, 9),
			mkRR(d2, []netip.Addr{r1, r2}, 9),
			{Spec: probe.Spec{Dst: d3}, Type: probe.NoResponse},
		},
		// vp-b reaches d1 closer, at slot 2.
		"vp-b": {
			mkRR(d1, []netip.Addr{r2, d1, r1}, 9),
		},
	}
	stats := AggregateRR(perVP)
	s1 := stats[d1]
	if s1 == nil || !s1.RRResponsive() || !s1.RRReachable() {
		t.Fatalf("d1 stats: %+v", s1)
	}
	if s1.Responses != 2 || s1.MinDestSlot != 2 || s1.ClosestVP != "vp-b" {
		t.Errorf("d1: %+v", s1)
	}
	if !s1.WithinHops(8) || s1.WithinHops(1) {
		t.Errorf("d1 WithinHops wrong")
	}
	s2 := stats[d2]
	if s2 == nil || !s2.RRResponsive() || s2.RRReachable() {
		t.Fatalf("d2 stats: %+v", s2)
	}
	if !s2.SawFreeSlots {
		t.Error("d2 free-slot signature missed")
	}
	if stats[d3] != nil {
		t.Error("timeout created stats for d3")
	}
}

func TestAggregateRRRepliesWithoutOption(t *testing.T) {
	d := a("20.0.0.9")
	perVP := map[string][]probe.Result{
		"vp": {{Spec: probe.Spec{Dst: d, Kind: probe.PingRR}, Type: probe.EchoReply, HasRR: false}},
	}
	stats := AggregateRR(perVP)
	if stats[d].RRResponsive() {
		t.Error("reply without copied option counted as RR-responsive")
	}
	if stats[d].RepliesWithoutRR != 1 {
		t.Errorf("RepliesWithoutRR = %d", stats[d].RepliesWithoutRR)
	}
}

func TestApplyAliasesReclassifies(t *testing.T) {
	dst, alias := a("30.0.0.1"), a("30.0.0.129")
	perVP := map[string][]probe.Result{
		"vp": {mkRR(dst, []netip.Addr{a("9.9.9.9"), alias}, 9)},
	}
	stats := AggregateRR(perVP)
	if stats[dst].RRReachable() {
		t.Fatal("reachable before alias resolution")
	}
	aliasOf := func(x netip.Addr) netip.Addr {
		if x == alias || x == dst {
			return dst
		}
		return x
	}
	n := ApplyAliases(stats, perVP, aliasOf)
	if n != 1 {
		t.Fatalf("reclassified %d, want 1", n)
	}
	if !stats[dst].RRReachable() || stats[dst].MinDestSlot != 2 {
		t.Errorf("after aliases: %+v", stats[dst])
	}
}

func TestApplyAliasesIgnoresUnrelatedHops(t *testing.T) {
	dst := a("30.0.0.2")
	perVP := map[string][]probe.Result{
		"vp": {mkRR(dst, []netip.Addr{a("9.9.9.9")}, 9)},
	}
	stats := AggregateRR(perVP)
	if n := ApplyAliases(stats, perVP, func(x netip.Addr) netip.Addr { return x }); n != 0 {
		t.Errorf("identity aliasing reclassified %d", n)
	}
}

func TestApplyRRUDPReclassifies(t *testing.T) {
	dst := a("40.0.0.1")
	// The destination answered ping-RR without stamping itself.
	perVP := map[string][]probe.Result{
		"vp": {mkRR(dst, []netip.Addr{a("9.0.0.1"), a("9.0.0.2")}, 9)},
	}
	stats := AggregateRR(perVP)
	if stats[dst].RRReachable() {
		t.Fatal("unexpectedly reachable")
	}
	udp := map[string][]probe.Result{
		"vp": {{
			Spec:         probe.Spec{Dst: dst, Kind: probe.PingRRUDP},
			Type:         probe.PortUnreachable,
			HasRR:        true,
			QuotedRR:     true,
			RR:           []netip.Addr{a("9.0.0.1"), a("9.0.0.2")},
			RRTotalSlots: 9,
		}},
	}
	if n := ApplyRRUDP(stats, udp); n != 1 {
		t.Fatalf("reclassified %d, want 1", n)
	}
	if !stats[dst].RRReachable() || stats[dst].MinDestSlot != 3 {
		t.Errorf("after RRudp: %+v", stats[dst])
	}
}

func TestApplyRRUDPIgnoresFullOptions(t *testing.T) {
	dst := a("40.0.0.2")
	stats := map[netip.Addr]*RRDestStat{dst: {Addr: dst, Responses: 1, SlotsByVP: map[string]int{}}}
	full := make([]netip.Addr, 9)
	for i := range full {
		full[i] = a("9.0.0.1")
	}
	udp := map[string][]probe.Result{
		"vp": {{
			Spec:         probe.Spec{Dst: dst, Kind: probe.PingRRUDP},
			Type:         probe.PortUnreachable,
			HasRR:        true,
			RR:           full,
			RRTotalSlots: 9,
			RRFull:       true,
		}},
	}
	if n := ApplyRRUDP(stats, udp); n != 0 {
		t.Errorf("full-option quote reclassified %d", n)
	}
}
