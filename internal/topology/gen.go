package topology

import (
	"fmt"
	"math/rand/v2"
)

// generateASLevel builds the AS roster and relationship graph for cfg.
// Index ranges are contiguous per role in roster order: tier-1, transit,
// access, enterprise, content, unknown stubs, clouds.
func generateASLevel(cfg Config, rng *rand.Rand) ([]*AS, *Graph) {
	var ases []*AS
	add := func(role Role, name string, routers, prefixes int) *AS {
		a := &AS{
			Index:       len(ases),
			ASN:         1000 + len(ases),
			Role:        role,
			Name:        name,
			NumRouters:  routers,
			NumPrefixes: prefixes,
		}
		ases = append(ases, a)
		return a
	}

	// jitter returns n scaled by a uniform factor in [0.5, 1.5), min 1.
	jitter := func(n int) int {
		j := int(float64(n) * (0.5 + rng.Float64()))
		if j < 1 {
			j = 1
		}
		if j > maxDestSlots {
			j = maxDestSlots
		}
		return j
	}

	var tier1s, transits, access, enterprise, content, unknown, clouds []int
	for i := 0; i < cfg.NumTier1; i++ {
		a := add(RoleTier1, fmt.Sprintf("t1-%d", i), cfg.RoutersPerTier1, jitter(cfg.PrefixesPerTransit))
		tier1s = append(tier1s, a.Index)
	}
	for i := 0; i < cfg.NumTransit; i++ {
		a := add(RoleTransit, fmt.Sprintf("transit-%d", i), cfg.RoutersPerTransit, jitter(cfg.PrefixesPerTransit))
		transits = append(transits, a.Index)
	}
	for i := 0; i < cfg.NumAccess; i++ {
		a := add(RoleAccess, fmt.Sprintf("access-%d", i), cfg.RoutersPerAccess, jitter(cfg.PrefixesPerAccess))
		access = append(access, a.Index)
	}
	for i := 0; i < cfg.NumEnterprise; i++ {
		a := add(RoleEnterprise, fmt.Sprintf("ent-%d", i), cfg.RoutersPerStub, jitter(cfg.PrefixesPerEnterprise))
		enterprise = append(enterprise, a.Index)
	}
	for i := 0; i < cfg.NumContent; i++ {
		a := add(RoleContent, fmt.Sprintf("content-%d", i), cfg.RoutersPerStub, jitter(cfg.PrefixesPerContent))
		content = append(content, a.Index)
	}
	for i := 0; i < cfg.NumUnknown; i++ {
		a := add(RoleUnknownStub, fmt.Sprintf("unk-%d", i), cfg.RoutersPerStub, jitter(cfg.PrefixesPerUnknown))
		unknown = append(unknown, a.Index)
	}
	for _, name := range cfg.CloudNames {
		a := add(RoleCloud, name, cfg.RoutersPerCloud, 2)
		clouds = append(clouds, a.Index)
	}

	g := NewGraph(len(ases))
	link := func(a, b int, rel Rel) {
		if a != b && !g.HasLink(a, b) {
			g.AddLink(a, b, rel)
		}
	}
	pick := func(pool []int) int { return pool[rng.IntN(len(pool))] }

	// Tier-1 clique.
	for i, a := range tier1s {
		for _, b := range tier1s[i+1:] {
			link(a, b, RelPeer)
		}
	}
	// Transit: customer of 1-2 tier-1s; IXP peering among transits.
	for _, t := range transits {
		link(pick(tier1s), t, RelCustomer)
		if rng.Float64() < 0.4 {
			link(pick(tier1s), t, RelCustomer)
		}
	}
	for i, a := range transits {
		for _, b := range transits[i+1:] {
			if rng.Float64() < cfg.TransitPeerProb {
				link(a, b, RelPeer)
			}
		}
	}
	// Access: customer of 1-2 transits (occasionally a tier-1 directly);
	// sparse access—access peering.
	for _, a := range access {
		if rng.Float64() < 0.1 {
			link(pick(tier1s), a, RelCustomer)
		} else {
			link(pick(transits), a, RelCustomer)
		}
		if rng.Float64() < 0.4 {
			link(pick(transits), a, RelCustomer)
		}
	}
	for i, a := range access {
		for _, b := range access[i+1:] {
			if rng.Float64() < cfg.AccessPeerProb {
				link(a, b, RelPeer)
			}
		}
	}
	// Stubs (enterprise + unknown): homed to a transit or an access AS.
	for _, pool := range [][]int{enterprise, unknown} {
		for _, e := range pool {
			if rng.Float64() < cfg.EnterpriseViaTransitP {
				link(pick(transits), e, RelCustomer)
			} else {
				link(pick(access), e, RelCustomer)
			}
		}
	}
	// Content: transit customers plus flattening peering.
	for _, c := range content {
		link(pick(transits), c, RelCustomer)
		if rng.Float64() < 0.5 {
			link(pick(transits), c, RelCustomer)
		}
		for _, a := range access {
			if rng.Float64() < cfg.ContentAccessPeerProb {
				link(c, a, RelPeer)
			}
		}
		for _, t := range transits {
			if rng.Float64() < cfg.ContentTransitPeerProb {
				link(c, t, RelPeer)
			}
		}
	}
	// Clouds: dual-homed to tier-1s, peering almost everywhere in 2016.
	for _, c := range clouds {
		link(tier1s[0], c, RelCustomer)
		link(tier1s[1%len(tier1s)], c, RelCustomer)
		for _, pools := range [][]int{access, transits, content} {
			for _, b := range pools {
				if rng.Float64() < cfg.CloudPeerProb {
					link(c, b, RelPeer)
				}
			}
		}
	}
	return ases, g
}

// assignPolicies stamps AS-wide behaviour flags onto the roster.
func assignPolicies(cfg Config, ases []*AS, rng *rand.Rand) {
	filterRate := func(a *AS) float64 {
		switch a.Role {
		case RoleAccess:
			return cfg.FilterRateAccess
		case RoleEnterprise:
			return cfg.FilterRateEnterprise
		case RoleContent:
			return cfg.FilterRateContent
		case RoleUnknownStub:
			return cfg.FilterRateUnknown
		case RoleTransit:
			return cfg.FilterRateTransit
		default:
			return 0 // tier-1s, clouds, and VP hosts never filter here
		}
	}
	var transitIdx []int
	for _, a := range ases {
		if rng.Float64() < filterRate(a) {
			a.FilterOptions = true
		}
		if a.Role == RoleTransit {
			transitIdx = append(transitIdx, a.Index)
		}
		// Partial no-stamp only makes sense where paths actually cross:
		// transit and access networks (stub stamping is unobservable).
		if a.Role == RoleTransit || a.Role == RoleAccess {
			if rng.Float64() < 2*cfg.PartialNoStampRate {
				a.PartialNoStamp = true
			}
		}
	}
	// A handful of transit ASes globally refuse to stamp (§3.5).
	for i := 0; i < cfg.NoStampASCount && len(transitIdx) > 0; i++ {
		k := rng.IntN(len(transitIdx))
		ases[transitIdx[k]].NoStamp = true
		transitIdx = append(transitIdx[:k], transitIdx[k+1:]...)
	}
}
