package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomHierarchy builds a random but well-formed AS hierarchy: a tier-1
// clique, transit ASes homed to tier-1s, stubs homed to transits, plus
// random peering. Every AS has a provider chain to the clique, so the
// graph is policy-connected.
func randomHierarchy(seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	nT1 := 2 + r.Intn(3)
	nTr := 3 + r.Intn(5)
	nSt := 5 + r.Intn(10)
	g := NewGraph(nT1 + nTr + nSt)
	for i := 0; i < nT1; i++ {
		for j := i + 1; j < nT1; j++ {
			g.AddLink(i, j, RelPeer)
		}
	}
	for t := nT1; t < nT1+nTr; t++ {
		g.AddLink(r.Intn(nT1), t, RelCustomer)
		if r.Float64() < 0.3 {
			g.AddLink(r.Intn(nT1), t, RelCustomer)
		}
	}
	for s := nT1 + nTr; s < g.N(); s++ {
		g.AddLink(nT1+r.Intn(nTr), s, RelCustomer)
	}
	// Random extra peering among transits and stubs.
	for k := 0; k < g.N()/2; k++ {
		a, b := nT1+r.Intn(nTr+nSt), nT1+r.Intn(nTr+nSt)
		if a != b && !g.HasLink(a, b) {
			g.AddLink(a, b, RelPeer)
		}
	}
	return g
}

// relOf returns the relationship of b from a's perspective.
func relOf(g *Graph, a, b int) (Rel, bool) {
	for _, nb := range g.Neighbors(a) {
		if nb.To == b {
			return nb.Rel, true
		}
	}
	return 0, false
}

// TestQuickRoutesValleyFree property: on random well-formed hierarchies,
// every computed path exists, is loop-free, and is valley-free.
func TestQuickRoutesValleyFree(t *testing.T) {
	f := func(seed int64) bool {
		g := randomHierarchy(seed)
		routes := ComputeRoutes(g)
		for s := 0; s < g.N(); s++ {
			for d := 0; d < g.N(); d++ {
				p := routes.Path(s, d)
				if p == nil {
					return false // hierarchy guarantees connectivity
				}
				seen := make(map[int]bool)
				for _, a := range p {
					if seen[a] {
						return false // loop
					}
					seen[a] = true
				}
				descended := false
				for i := 0; i+1 < len(p); i++ {
					rel, ok := relOf(g, p[i], p[i+1])
					if !ok {
						return false // path uses a nonexistent link
					}
					switch rel {
					case RelCustomer:
						descended = true
					case RelPeer:
						if descended {
							return false
						}
						descended = true
					case RelProvider:
						if descended {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickRoutesPreferCustomer property: whenever the destination is a
// (transitive) customer of the source, the path never climbs to a
// provider of the source first.
func TestQuickRoutesPreferCustomer(t *testing.T) {
	f := func(seed int64) bool {
		g := randomHierarchy(seed)
		for d := 0; d < g.N(); d++ {
			nh, cls, _ := g.NextHops(d)
			for s := 0; s < g.N(); s++ {
				if s == d {
					continue
				}
				if cls[s] == classCustomer {
					rel, ok := relOf(g, s, int(nh[s]))
					if !ok || rel != RelCustomer {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickRoutesSymmetricReachability property: reachability is
// symmetric under Gao-Rexford on well-formed hierarchies (if s reaches
// d, d reaches s — both have provider chains to the clique).
func TestQuickRoutesSymmetricReachability(t *testing.T) {
	f := func(seed int64) bool {
		g := randomHierarchy(seed)
		routes := ComputeRoutes(g)
		for s := 0; s < g.N(); s++ {
			for d := s + 1; d < g.N(); d++ {
				if (routes.Path(s, d) == nil) != (routes.Path(d, s) == nil) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
