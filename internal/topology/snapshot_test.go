package topology

import (
	"testing"

	"recordroute/internal/netsim"
)

func snapshotTestConfig() Config {
	cfg := DefaultConfig(Epoch2016).Scale(0.15)
	cfg.Seed = 42
	return cfg
}

func TestSnapshotCloneStructure(t *testing.T) {
	src := MustBuild(snapshotTestConfig())
	clone := SnapshotOf(src).Clone()

	if clone.Net == src.Net {
		t.Fatal("clone shares the source network")
	}
	if clone.Net.NumNodes() != src.Net.NumNodes() {
		t.Fatalf("clone has %d nodes, source %d", clone.Net.NumNodes(), src.Net.NumNodes())
	}
	if len(clone.Dests) != len(src.Dests) {
		t.Fatalf("clone has %d dests, source %d", len(clone.Dests), len(src.Dests))
	}
	for i := range src.Routers {
		if len(clone.Routers[i]) != len(src.Routers[i]) {
			t.Fatalf("AS %d: %d routers, want %d", i, len(clone.Routers[i]), len(src.Routers[i]))
		}
		for j, r := range src.Routers[i] {
			cr := clone.Routers[i][j]
			if cr == r {
				t.Fatalf("AS %d router %d not remapped", i, j)
			}
			if cr.Name() != r.Name() {
				t.Fatalf("AS %d router %d named %q, want %q", i, j, cr.Name(), r.Name())
			}
			if cr.FIB() != r.FIB() {
				t.Fatalf("AS %d router %d does not share the frozen FIB", i, j)
			}
		}
	}
	for i, v := range src.VPs {
		cv := clone.VPs[i]
		if cv.Host == v.Host || cv.Host.Name() != v.Host.Name() || cv.Addr != v.Addr {
			t.Fatalf("VP %d (%s) misremapped", i, v.Name)
		}
		if cv.SourceRateLimited != v.SourceRateLimited {
			t.Fatalf("VP %s lost its rate-limited flag", v.Name)
		}
	}
	for i, d := range src.Dests {
		cd := clone.Dests[i]
		if cd.Host == d.Host || cd.Addr != d.Addr || cd.GTRRDrop != d.GTRRDrop {
			t.Fatalf("dest %d (%v) misremapped", i, d.Addr)
		}
		if clone.DestByAddr(d.Addr) != cd {
			t.Fatalf("destByAddr(%v) not rebuilt", d.Addr)
		}
	}
}

// The ground-truth helpers must give identical answers on a clone: they
// traverse the shared route plane.
func TestSnapshotCloneGroundTruthEquivalent(t *testing.T) {
	src := MustBuild(snapshotTestConfig())
	clone := SnapshotOf(src).Clone()

	checked := 0
	for _, vp := range src.VPs {
		for _, d := range src.Dests {
			if checked >= 500 {
				break
			}
			want := src.ForwardStampPath(vp.Addr, d.Addr)
			got := clone.ForwardStampPath(vp.Addr, d.Addr)
			if len(want) != len(got) {
				t.Fatalf("%s→%v: clone path %v, want %v", vp.Name, d.Addr, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s→%v hop %d: clone %v, want %v", vp.Name, d.Addr, i, got[i], want[i])
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no paths checked")
	}
	for _, d := range src.Dests[:50] {
		if src.ASOf(d.Addr) != clone.ASOf(d.Addr) || src.ASNOf(d.Addr) != clone.ASNOf(d.Addr) {
			t.Fatalf("AS mapping differs for %v", d.Addr)
		}
	}
}

func TestSnapshotCloneWithFaults(t *testing.T) {
	cfg := snapshotTestConfig()
	cfg.Faults = &netsim.FaultConfig{LossProb: 0.05, LossFrac: 0.25,
		OutageFrac: 0.02, WithdrawFrac: 0.05}
	src := MustBuild(cfg)
	clone := SnapshotOf(src).Clone()
	if clone.Faults != src.Faults {
		t.Fatalf("clone fault summary %+v, want %+v", clone.Faults, src.Faults)
	}
}
