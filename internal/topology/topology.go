// Package topology generates synthetic Internet topologies — an AS-level
// relationship graph with Gao-Rexford policy routing, expanded into a
// router-level packet network on internal/netsim — and places vantage
// points, destinations, and the behaviour mix (options filtering,
// non-stamping routers, rate limiters, aliases) that the Record Route
// study measures.
package topology

import (
	"fmt"
	"net/netip"

	"recordroute/internal/netsim"
)

// VPKind distinguishes vantage-point platforms.
type VPKind int

const (
	// MLab vantage points sit in transit/colo networks.
	MLab VPKind = iota
	// PlanetLab vantage points sit in enterprise (university) networks.
	PlanetLab
	// Cloud vantage points sit at a cloud provider's border (§3.6).
	Cloud
)

// String names the platform.
func (k VPKind) String() string {
	switch k {
	case MLab:
		return "mlab"
	case PlanetLab:
		return "planetlab"
	case Cloud:
		return "cloud"
	default:
		return fmt.Sprintf("VPKind(%d)", int(k))
	}
}

// VP is a measurement vantage point.
type VP struct {
	Name  string
	Kind  VPKind
	Addr  netip.Addr
	ASIdx int
	Host  *netsim.Host
	// SourceRateLimited marks VPs behind a source-proximate options
	// policer (ground truth for validating the §4.1 experiment).
	SourceRateLimited bool
}

// Dest is one probed destination: the representative address of one
// advertised /24, mirroring the paper's one-per-prefix hitlist.
type Dest struct {
	Addr   netip.Addr
	Prefix netip.Prefix
	ASIdx  int
	Host   *netsim.Host

	// Ground-truth behaviour flags, for white-box validation only;
	// analyses must work from probe responses.
	GTPingResponsive bool
	GTRRDrop         bool // host-level options filtering
	GTNoHonorRR      bool
	GTAlias          netip.Addr // valid when the host stamps an alias
	GTUDPResponsive  bool
}

// Topology is a fully built simulated Internet.
type Topology struct {
	Cfg    Config
	Net    *netsim.Network
	Graph  *Graph
	Routes *Routes
	ASes   []*AS

	// Routers[a] lists AS a's routers; index 0 is the intra-AS hub.
	Routers [][]*netsim.Router
	// Dests are the probe targets in roster order.
	Dests []*Dest
	// VPs lists M-Lab then PlanetLab vantage points. CloudVPs lists the
	// per-cloud measurement hosts separately.
	VPs      []*VP
	CloudVPs []*VP
	// Faults summarizes the installed fault plan (zero when Cfg.Faults
	// is nil).
	Faults netsim.FaultSummary

	// routing oracle state
	hostIface  map[netip.Addr]*netsim.Iface // router-side iface toward a host
	hostAttach map[netip.Addr]int           // attach router idx for a host addr
	routerAddr map[netip.Addr]int           // router idx owning an infra addr
	// Intra-AS routers form a tree rooted at router 0. parent[a][j] is
	// router j's parent (-1 for the root); upIface[a][j] the interface
	// from j toward its parent; downIface[a][j] the interface from
	// parent[a][j] toward j.
	parent    [][]int
	upIface   [][]*netsim.Iface
	downIface [][]*netsim.Iface
	// borderIface[a][nbrAS] / borderIdx[a][nbrAS]: the inter-AS link.
	borderIface []map[int]*netsim.Iface
	borderIdx   []map[int]int

	destByAddr  map[netip.Addr]int32      // addr → index in Dests (shared by clones)
	routerIndex map[*netsim.Router][2]int // router → (AS index, router index)
}

// RouterByAddr returns the router owning an infrastructure address, or
// nil. Tests use it to consult ground-truth router behaviour.
func (t *Topology) RouterByAddr(a netip.Addr) *netsim.Router {
	asIdx := t.ASOf(a)
	if asIdx < 0 {
		return nil
	}
	idx, ok := t.routerAddr[a]
	if !ok {
		return nil
	}
	return t.Routers[asIdx][idx]
}

// ForwardStampPath returns the egress interface addresses a packet from
// the host at src would traverse to reach dst — the Record Route stamps
// a fully conformant path would record, excluding the destination's own
// stamp. It is ground truth for validating measurements; nil when either
// address is unknown or unrouted.
func (t *Topology) ForwardStampPath(src, dst netip.Addr) []netip.Addr {
	gw, ok := t.hostIface[src]
	if !ok {
		return nil
	}
	cur, okr := gw.Owner.(*netsim.Router)
	if !okr {
		return nil
	}
	var stamps []netip.Addr
	for hop := 0; hop < 64; hop++ {
		pos, ok := t.routerIndex[cur]
		if !ok {
			return nil
		}
		egress := t.route(pos[0], pos[1], dst)
		if egress == nil {
			// Local delivery to this router itself.
			if idx, isRouter := t.routerAddr[dst]; isRouter && idx == pos[1] && t.ASOf(dst) == pos[0] {
				return stamps
			}
			return nil
		}
		stamps = append(stamps, egress.Addr)
		next := egress.Peer().Owner
		if _, isHost := next.(*netsim.Host); isHost {
			return stamps
		}
		cur = next.(*netsim.Router)
	}
	return nil
}

// ASOf maps any address from the plan to its owning AS index, or -1.
func (t *Topology) ASOf(a netip.Addr) int { return asOfAddr(a, len(t.ASes)) }

// ASNOf maps an address to its owning AS number, or -1.
func (t *Topology) ASNOf(a netip.Addr) int {
	idx := t.ASOf(a)
	if idx < 0 {
		return -1
	}
	return t.ASes[idx].ASN
}

// DestByAddr returns the destination record probed at a, or nil.
func (t *Topology) DestByAddr(a netip.Addr) *Dest {
	if i, ok := t.destByAddr[a]; ok {
		return t.Dests[i]
	}
	return nil
}

// VPByName returns the named vantage point (including clouds), or nil.
func (t *Topology) VPByName(name string) *VP {
	for _, v := range t.VPs {
		if v.Name == name {
			return v
		}
	}
	for _, v := range t.CloudVPs {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// route is the shared routing oracle: the egress interface for a packet
// at router (asIdx, rIdx) toward dst, or nil to fall back to the FIB.
func (t *Topology) route(asIdx, rIdx int, dst netip.Addr) *netsim.Iface {
	dstAS := t.ASOf(dst)
	if dstAS < 0 {
		return nil
	}
	if dstAS == asIdx {
		// Intra-AS delivery: find the target router, then hop the star.
		if tgt, ok := t.hostAttach[dst]; ok {
			if tgt == rIdx {
				return t.hostIface[dst]
			}
			return t.intraToward(asIdx, rIdx, tgt)
		}
		if tgt, ok := t.routerAddr[dst]; ok {
			if tgt == rIdx {
				return nil // local to this router; netsim handles it
			}
			return t.intraToward(asIdx, rIdx, tgt)
		}
		return nil
	}
	nh := t.Routes.NextHop(asIdx, dstAS)
	if nh < 0 {
		return nil
	}
	// Route toward the border with the next-hop AS. When there is no
	// direct adjacency (shouldn't happen with consistent routes), drop.
	b, ok := t.borderIdx[asIdx][nh]
	if !ok {
		return nil
	}
	if b == rIdx {
		return t.borderIface[asIdx][nh]
	}
	return t.intraToward(asIdx, rIdx, b)
}

// intraToward returns the next interface from router rIdx toward router
// tgt inside AS a. The intra-AS topology is a tree rooted at router 0:
// if tgt is in rIdx's subtree the packet goes down one child; otherwise
// it climbs to rIdx's parent.
func (t *Topology) intraToward(a, rIdx, tgt int) *netsim.Iface {
	if rIdx == tgt {
		return nil
	}
	// Climb from tgt toward the root; if we pass through rIdx, tgt is
	// below us and the crossing child is the next hop downward.
	for c := tgt; c >= 0; c = t.parent[a][c] {
		if t.parent[a][c] == rIdx {
			return t.downIface[a][c]
		}
	}
	return t.upIface[a][rIdx]
}

// depthOf returns a router's depth in its AS tree (root = 0).
func (t *Topology) depthOf(a, rIdx int) int {
	d := 0
	for p := t.parent[a][rIdx]; p >= 0; p = t.parent[a][p] {
		d++
	}
	return d
}
