package topology

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"recordroute/internal/netsim"
)

// Epoch selects the interconnection era the generator models. The 2016
// epoch is the paper's measurement; 2011 reproduces the sparser peering
// of the Reverse Traceroute era for the §3.4 comparison.
type Epoch int

const (
	// Epoch2016 is the flattened Internet: dense IXP/colo peering,
	// content and cloud networks peered broadly with access networks.
	Epoch2016 Epoch = iota
	// Epoch2011 has sparse peering; most paths climb to tier-1s.
	Epoch2011
)

// String names the epoch.
func (e Epoch) String() string {
	if e == Epoch2011 {
		return "2011"
	}
	return "2016"
}

// Config parameterizes topology generation. DefaultConfig returns values
// calibrated (at ~1/100 of the paper's scale) so the study reproduces
// the paper's aggregate shapes; tests may shrink the counts further.
type Config struct {
	// Seed drives all randomness; equal seeds give identical topologies.
	Seed uint64
	// Epoch selects the peering era.
	Epoch Epoch

	// AS roster sizes by role.
	NumTier1, NumTransit, NumAccess       int
	NumEnterprise, NumContent, NumUnknown int
	// CloudNames creates one cloud AS per entry (e.g. gce, ec2).
	CloudNames []string

	// Peering probabilities (the "flattening" knobs).
	TransitPeerProb        float64 // transit—transit at IXPs
	AccessPeerProb         float64 // access—access
	ContentAccessPeerProb  float64 // content—access (flattening)
	ContentTransitPeerProb float64
	CloudPeerProb          float64 // cloud—{access,transit,content}
	EnterpriseViaTransitP  float64 // enterprise homed to transit vs access

	// Prefix counts per AS by role (expected values; small jitter).
	PrefixesPerTransit, PrefixesPerAccess, PrefixesPerEnterprise int
	PrefixesPerContent, PrefixesPerUnknown                       int

	// Routers per AS by role.
	RoutersPerTier1, RoutersPerTransit, RoutersPerAccess int
	RoutersPerStub, RoutersPerCloud                      int
	// ChainBoost deepens every AS's router tree (added to the per-role
	// chain bias); the 2011 epoch uses it to model the longer
	// router-level paths of the pre-flattening Internet.
	ChainBoost float64

	// Behaviour rates: AS-wide options filtering by type.
	FilterRateAccess, FilterRateEnterprise float64
	FilterRateContent, FilterRateUnknown   float64
	// FilterRateTransit makes a few transit ASes filter options,
	// producing path-dependent response loss: destinations whose routes
	// from some VPs cross the filter answer only the other VPs (the
	// §3.2 partial-response population).
	FilterRateTransit float64
	// NoStampASCount transit ASes never stamp (§3.5's needles);
	// PartialNoStampRate of ASes have some non-stamping routers.
	NoStampASCount     int
	PartialNoStampRate float64

	// Router behaviour rates.
	RouterAnonymousRate float64 // no TTL decrement
	EdgeRateLimitRate   float64 // stub-AS routers with options policers
	EdgeRateLimitPPS    float64

	// Host behaviour rates.
	PingResponsiveRate    map[ASType]float64
	HostRRDropRate        map[ASType]float64 // host-level options filtering
	HostNoHonorRRRate     float64            // replies but never stamps itself
	HostAliasStampRate    float64            // stamps an alias address
	HostUDPResponsiveRate float64

	// Vantage points.
	NumMLab, NumPlanetLab int
	// MLabRateLimited VPs (and as many PlanetLab VPs, halved) sit behind
	// a source-proximate options policer at their first-hop router.
	MLabRateLimited    int
	SourceRateLimitPPS float64

	// Faults optionally installs a deterministic fault-injection plan
	// over the built network (netsim.FaultConfig): link loss, jitter,
	// duplication, flaps, router outages, ICMP suppression, transient
	// route withdrawals. Every router, link, and destination prefix is
	// registered in build order, so replicas built from the same Config
	// get identical weather — faults are part of the seed. Nil injects
	// nothing.
	Faults *netsim.FaultConfig
}

// DefaultConfig returns the calibrated configuration for an epoch at
// roughly 1/100 the paper's scale.
func DefaultConfig(epoch Epoch) Config {
	c := Config{
		Seed:  20170924, // the RouteViews RIB date used by the paper
		Epoch: epoch,

		NumTier1:      5,
		NumTransit:    35,
		NumAccess:     150,
		NumEnterprise: 240,
		NumContent:    20,
		NumUnknown:    48,
		CloudNames:    []string{"gce", "ec2", "softlayer"},

		TransitPeerProb:        0.30,
		AccessPeerProb:         0.05,
		ContentAccessPeerProb:  0.30,
		ContentTransitPeerProb: 0.40,
		CloudPeerProb:          0.70,
		EnterpriseViaTransitP:  0.30,

		PrefixesPerTransit:    5,
		PrefixesPerAccess:     20,
		PrefixesPerEnterprise: 2,
		PrefixesPerContent:    18,
		PrefixesPerUnknown:    3,

		RoutersPerTier1:   5,
		RoutersPerTransit: 6,
		RoutersPerAccess:  14,
		RoutersPerStub:    4,
		RoutersPerCloud:   3,

		FilterRateAccess:     0.08,
		FilterRateEnterprise: 0.16,
		FilterRateContent:    0.12,
		FilterRateUnknown:    0.10,
		FilterRateTransit:    0.05,
		NoStampASCount:       1,
		PartialNoStampRate:   0.06,

		RouterAnonymousRate: 0.02,
		EdgeRateLimitRate:   0.03,
		EdgeRateLimitPPS:    100,

		PingResponsiveRate: map[ASType]float64{
			TypeTransitAccess: 0.76,
			TypeEnterprise:    0.84,
			TypeContent:       0.84,
			TypeUnknown:       0.62,
		},
		HostRRDropRate: map[ASType]float64{
			TypeTransitAccess: 0.15,
			TypeEnterprise:    0.12,
			TypeContent:       0.12,
			TypeUnknown:       0.09,
		},
		HostNoHonorRRRate:     0.020,
		HostAliasStampRate:    0.025,
		HostUDPResponsiveRate: 0.60,

		NumMLab:            30,
		NumPlanetLab:       20,
		MLabRateLimited:    2,
		SourceRateLimitPPS: 30,
	}
	if epoch == Epoch2011 {
		// Sparse peering: traffic climbs to the tier-1 core. Fewer
		// M-Lab sites existed; PlanetLab dominated.
		c.TransitPeerProb = 0.05
		c.AccessPeerProb = 0
		c.ContentAccessPeerProb = 0.02
		c.ContentTransitPeerProb = 0.10
		c.CloudPeerProb = 0.05
		c.NumMLab = 5
		c.NumPlanetLab = 35
		// Pre-flattening router-level paths: deeper aggregation
		// everywhere and longer transit crossings.
		c.RoutersPerTransit = 10
		c.RoutersPerAccess = 20
		c.RoutersPerStub = 6
		c.ChainBoost = 0.25
	}
	return c
}

// Scale multiplies the roster and VP sizes by f (minimum 1 per nonzero
// field), for quick tests (f < 1) or heavier runs (f > 1).
func (c Config) Scale(f float64) Config {
	scale := func(n int) int {
		if n == 0 {
			return 0
		}
		s := int(float64(n)*f + 0.5)
		if s < 1 {
			s = 1
		}
		return s
	}
	c.NumTier1 = max(2, scale(c.NumTier1))
	c.NumTransit = max(3, scale(c.NumTransit))
	c.NumAccess = scale(c.NumAccess)
	c.NumEnterprise = scale(c.NumEnterprise)
	c.NumContent = scale(c.NumContent)
	c.NumUnknown = scale(c.NumUnknown)
	c.NumMLab = scale(c.NumMLab)
	c.NumPlanetLab = scale(c.NumPlanetLab)
	c.MLabRateLimited = min(c.MLabRateLimited, c.NumMLab)
	return c
}

// Digest returns a stable hex key identifying the world this Config
// builds: every generation input — seed, epoch, roster sizes, behaviour
// rates, and the fault plan — feeds the hash, so equal digests mean
// byte-identical topologies (the determinism contract, DESIGN.md §6).
// The frozen-plane cache and campaign checkpoints key on it.
func (c Config) Digest() string {
	// Config is plain exported data (maps keyed by ASType marshal
	// deterministically: encoding/json sorts map keys), so the JSON form
	// is a canonical encoding of the generation inputs.
	b, err := json.Marshal(c)
	if err != nil {
		// Unreachable for a struct of scalars, slices, and int-keyed
		// maps; fail loudly rather than hand out a colliding key.
		panic(fmt.Sprintf("topology: config digest: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// Validate reports configuration errors that would break generation.
func (c Config) Validate() error {
	if c.NumTier1 < 2 {
		return fmt.Errorf("topology: need >= 2 tier-1 ASes, have %d", c.NumTier1)
	}
	if c.NumTransit < 1 {
		return fmt.Errorf("topology: need >= 1 transit AS")
	}
	if c.NumMLab > c.NumTransit+c.NumTier1 {
		return fmt.Errorf("topology: %d M-Lab VPs exceed %d transit hosts", c.NumMLab, c.NumTransit+c.NumTier1)
	}
	if c.NumPlanetLab > c.NumEnterprise {
		return fmt.Errorf("topology: %d PlanetLab VPs exceed %d enterprise hosts", c.NumPlanetLab, c.NumEnterprise)
	}
	total := c.NumTier1 + c.NumTransit + c.NumAccess + c.NumEnterprise +
		c.NumContent + c.NumUnknown + len(c.CloudNames)
	if total > maxASes {
		return fmt.Errorf("topology: %d ASes exceed address-plan limit %d", total, maxASes)
	}
	return nil
}
