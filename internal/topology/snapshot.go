package topology

import (
	"recordroute/internal/netsim"
)

// Snapshot is a frozen, built topology that stamps out replicas without
// regenerating anything. The expensive route plane — AS graph, all-pairs
// policy routes, FIB contents, addressing, link delays, the oracle's
// attachment indexes — is computed once by Build and shared read-only by
// every replica; each Clone gets only a fresh mutable overlay (engine,
// counters, policers, IP-ID state) via netsim.Network.Clone.
type Snapshot struct {
	src *Topology
}

// SnapshotOf freezes a built topology for replication. The source keeps
// working normally afterwards (mutations copy-on-write); once this
// returns, concurrent Clone calls are safe.
func SnapshotOf(t *Topology) *Snapshot {
	t.Net.Freeze()
	return &Snapshot{src: t}
}

// Source returns the topology the snapshot was taken from.
func (s *Snapshot) Source() *Topology { return s.src }

// Clone returns a replica topology: a cloned network plus remapped
// router/VP/destination handles, sharing everything else with the
// source. A replica behaves exactly like an independent Build of the
// same Config — same routes, same behaviour draws, same fault plan —
// with its clock at zero.
func (s *Snapshot) Clone() *Topology {
	src := s.src
	net := src.Net.Clone()
	c := &Topology{
		Cfg:    src.Cfg,
		Net:    net,
		Graph:  src.Graph,
		Routes: src.Routes,
		ASes:   src.ASes,
		Faults: src.Faults,

		// The oracle state is part of the frozen plane. Its interface and
		// router pointers reference the source network; packet forwarding
		// localizes them (netsim lookupRoute), and ground-truth helpers
		// like ForwardStampPath traverse the shared plane directly.
		hostIface:   src.hostIface,
		hostAttach:  src.hostAttach,
		routerAddr:  src.routerAddr,
		parent:      src.parent,
		upIface:     src.upIface,
		downIface:   src.downIface,
		borderIface: src.borderIface,
		borderIdx:   src.borderIdx,
		routerIndex: src.routerIndex,
	}

	c.Routers = make([][]*netsim.Router, len(src.Routers))
	for i, rs := range src.Routers {
		crs := make([]*netsim.Router, len(rs))
		for j, r := range rs {
			crs[j] = net.Counterpart(r).(*netsim.Router)
		}
		c.Routers[i] = crs
	}

	// destByAddr maps to indexes, so the (large) map itself is part of
	// the shared plane; only the Dest records are per-replica, allocated
	// as one block.
	c.destByAddr = src.destByAddr
	c.Dests = make([]*Dest, len(src.Dests))
	block := make([]Dest, len(src.Dests))
	for i, d := range src.Dests {
		block[i] = *d
		block[i].Host = net.Counterpart(d.Host).(*netsim.Host)
		c.Dests[i] = &block[i]
	}

	cloneVPs := func(vps []*VP) []*VP {
		out := make([]*VP, len(vps))
		for i, v := range vps {
			cv := *v
			cv.Host = net.Counterpart(v.Host).(*netsim.Host)
			out[i] = &cv
		}
		return out
	}
	c.VPs = cloneVPs(src.VPs)
	c.CloudVPs = cloneVPs(src.CloudVPs)
	return c
}
