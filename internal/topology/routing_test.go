package topology

import "testing"

// buildTestGraph constructs the classic textbook graph:
//
//	     T1a ──peer── T1b          (tier 1 clique)
//	     /  \          |
//	   M1    M2        M3          (mid-tier: customers of tier 1)
//	  /  \     \      /
//	E1    E2    E3──peer (E2-E3)   (edges: customers of mid-tier)
//
// Indices: T1a=0 T1b=1 M1=2 M2=3 M3=4 E1=5 E2=6 E3=7.
func buildTestGraph() *Graph {
	g := NewGraph(8)
	g.AddLink(0, 1, RelPeer)     // T1a — T1b
	g.AddLink(0, 2, RelCustomer) // M1 customer of T1a
	g.AddLink(0, 3, RelCustomer) // M2 customer of T1a
	g.AddLink(1, 4, RelCustomer) // M3 customer of T1b
	g.AddLink(2, 5, RelCustomer) // E1 customer of M1
	g.AddLink(2, 6, RelCustomer) // E2 customer of M1
	g.AddLink(3, 7, RelCustomer) // E3 customer of M2
	g.AddLink(6, 7, RelPeer)     // E2 — E3 peering
	return g
}

func pathEq(got []int, want ...int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestRoutesCustomerPreferredOverPeer(t *testing.T) {
	g := buildTestGraph()
	r := ComputeRoutes(g)
	// M1 → E2: direct customer route, one hop down.
	if got := r.Path(2, 6); !pathEq(got, 2, 6) {
		t.Errorf("M1→E2 path = %v", got)
	}
	// T1a → E3: customer chain through M2, never the peer T1b.
	if got := r.Path(0, 7); !pathEq(got, 0, 3, 7) {
		t.Errorf("T1a→E3 path = %v", got)
	}
}

func TestRoutesPeerShortcutUsed(t *testing.T) {
	g := buildTestGraph()
	r := ComputeRoutes(g)
	// E2 → E3: the peering link beats the long provider path up to T1a.
	if got := r.Path(6, 7); !pathEq(got, 6, 7) {
		t.Errorf("E2→E3 path = %v (peer shortcut not taken)", got)
	}
	// E3 → E2 symmetric.
	if got := r.Path(7, 6); !pathEq(got, 7, 6) {
		t.Errorf("E3→E2 path = %v", got)
	}
}

func TestRoutesProviderPathWhenNecessary(t *testing.T) {
	g := buildTestGraph()
	r := ComputeRoutes(g)
	// E1 → E3: up to M1, up to T1a, down through M2. Valley-free.
	if got := r.Path(5, 7); !pathEq(got, 5, 2, 0, 3, 7) {
		t.Errorf("E1→E3 path = %v", got)
	}
	// E1 → M3: must cross the tier-1 peering (T1a—T1b).
	if got := r.Path(5, 4); !pathEq(got, 5, 2, 0, 1, 4) {
		t.Errorf("E1→M3 path = %v", got)
	}
}

func TestRoutesValleyFreeEverywhere(t *testing.T) {
	g := buildTestGraph()
	r := ComputeRoutes(g)
	relOf := func(a, b int) Rel {
		for _, nb := range g.Neighbors(a) {
			if nb.To == b {
				return nb.Rel
			}
		}
		t.Fatalf("no link %d-%d on path", a, b)
		return 0
	}
	for s := 0; s < g.N(); s++ {
		for d := 0; d < g.N(); d++ {
			p := r.Path(s, d)
			if p == nil {
				t.Fatalf("no path %d→%d in connected graph", s, d)
			}
			// Valley-free: once the path goes down (to a customer) or
			// sideways (peer), it may never go up or sideways again.
			descended := false
			for i := 0; i+1 < len(p); i++ {
				switch relOf(p[i], p[i+1]) {
				case RelCustomer: // going down
					descended = true
				case RelPeer:
					if descended {
						t.Errorf("path %v: peer edge after descent", p)
					}
					descended = true
				case RelProvider: // going up
					if descended {
						t.Errorf("path %v: climbs after descent", p)
					}
				}
			}
		}
	}
}

func TestRoutesNoPathAcrossPartition(t *testing.T) {
	g := NewGraph(4)
	g.AddLink(0, 1, RelCustomer)
	g.AddLink(2, 3, RelCustomer)
	r := ComputeRoutes(g)
	if got := r.Path(0, 3); got != nil {
		t.Errorf("path across partition = %v", got)
	}
}

func TestRoutesPeerDoesNotTransit(t *testing.T) {
	// a —peer— b —peer— c: a must NOT reach c through b (no transit
	// over two peer edges).
	g := NewGraph(3)
	g.AddLink(0, 1, RelPeer)
	g.AddLink(1, 2, RelPeer)
	r := ComputeRoutes(g)
	if got := r.Path(0, 2); got != nil {
		t.Errorf("peer-peer transit path = %v, want none", got)
	}
	if got := r.Path(0, 1); !pathEq(got, 0, 1) {
		t.Errorf("direct peer path = %v", got)
	}
}

func TestRoutesCustomerBeatsShorterPeer(t *testing.T) {
	// dst is both a's customer (via m) and a's direct peer. Policy
	// prefers the longer customer route.
	// a(0) — m(1) customer; m — dst(2) customer; a — dst peer.
	g := NewGraph(3)
	g.AddLink(0, 1, RelCustomer)
	g.AddLink(1, 2, RelCustomer)
	g.AddLink(0, 2, RelPeer)
	r := ComputeRoutes(g)
	if got := r.Path(0, 2); !pathEq(got, 0, 1, 2) {
		t.Errorf("a→dst path = %v, want customer route through m", got)
	}
}

func TestRoutesDeterministicTieBreak(t *testing.T) {
	// Two equal-length customer routes toward dst: next hop must be the
	// lower-indexed AS, consistently across recomputation.
	g := NewGraph(4)
	g.AddLink(1, 3, RelCustomer) // dst(3) customer of 1
	g.AddLink(2, 3, RelCustomer) // dst customer of 2
	g.AddLink(1, 0, RelCustomer) // 0 customer of 1
	g.AddLink(2, 0, RelCustomer) // 0 customer of 2
	for i := 0; i < 5; i++ {
		r := ComputeRoutes(g)
		if got := r.NextHop(0, 3); got != 1 {
			t.Fatalf("run %d: next hop = %d, want 1 (lowest index)", i, got)
		}
	}
}

func TestGraphHasLink(t *testing.T) {
	g := NewGraph(3)
	g.AddLink(0, 1, RelPeer)
	if !g.HasLink(0, 1) || !g.HasLink(1, 0) {
		t.Error("HasLink missed the adjacency")
	}
	if g.HasLink(0, 2) {
		t.Error("HasLink invented an adjacency")
	}
}

func TestNextHopsClassAndDist(t *testing.T) {
	g := buildTestGraph()
	nh, class, dist := g.NextHops(7) // dst = E3
	// E2 reaches E3 via peer: class peer, dist 1.
	if class[6] != classPeer || dist[6] != 1 || nh[6] != 7 {
		t.Errorf("E2: class=%d dist=%d nh=%d", class[6], dist[6], nh[6])
	}
	// M2 reaches via customer, dist 1.
	if class[3] != classCustomer || dist[3] != 1 {
		t.Errorf("M2: class=%d dist=%d", class[3], dist[3])
	}
	// E1 gets a provider route (via M1).
	if class[5] != classProvider {
		t.Errorf("E1: class=%d", class[5])
	}
	// dst itself.
	if dist[7] != 0 || nh[7] != 7 {
		t.Errorf("dst: dist=%d nh=%d", dist[7], nh[7])
	}
}

// TestComputeRoutesParallelMatchesSerial pins the parallel route build's
// determinism contract: every worker count produces the exact matrix the
// serial build does, row for row, on both the textbook graph and random
// well-formed hierarchies.
func TestComputeRoutesParallelMatchesSerial(t *testing.T) {
	graphs := []*Graph{buildTestGraph()}
	for seed := int64(1); seed <= 4; seed++ {
		graphs = append(graphs, randomHierarchy(seed))
	}
	for gi, g := range graphs {
		want := ComputeRoutesParallel(g, 1)
		for _, workers := range []int{2, 3, 4, 8, 0} {
			got := ComputeRoutesParallel(g, workers)
			if len(got.Next) != len(want.Next) {
				t.Fatalf("graph %d workers=%d: %d rows, want %d", gi, workers, len(got.Next), len(want.Next))
			}
			for d := range want.Next {
				for a := range want.Next[d] {
					if got.Next[d][a] != want.Next[d][a] {
						t.Fatalf("graph %d workers=%d: Next[%d][%d] = %d, want %d",
							gi, workers, d, a, got.Next[d][a], want.Next[d][a])
					}
				}
			}
		}
	}
}
