package topology

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"sync/atomic"
	"time"

	"recordroute/internal/netsim"
)

// builds counts completed topology Builds process-wide. The campaign
// service's frozen-plane cache asserts its hit path against this: two
// concurrent identical-key jobs must move it by exactly one.
var builds atomic.Uint64

// Builds returns how many topology Builds have completed in this
// process.
func Builds() uint64 { return builds.Load() }

// Build generates the AS graph, computes policy routes, and expands
// everything into a packet-level netsim network with vantage points,
// destinations, and behaviour assignments.
func Build(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))

	ases, graph := generateASLevel(cfg, rng)
	assignPolicies(cfg, ases, rng)
	routes := ComputeRoutes(graph)

	// Exact totals are known before any map fills, so size them up front:
	// at large scale these maps hold 10⁵+ entries and incremental growth
	// dominates build time otherwise.
	totalPrefixes, totalRouters, links := 0, 0, 0
	for i, a := range ases {
		totalPrefixes += a.NumPrefixes
		totalRouters += a.NumRouters
		links += len(graph.Neighbors(i))
	}
	links = links/2 + totalRouters - len(ases) // inter-AS + intra-AS tree
	numVPs := cfg.NumMLab + cfg.NumPlanetLab + len(cfg.CloudNames)
	hosts := totalPrefixes + totalPrefixes/8 + numVPs // destinations + occasional aliases + VPs

	t := &Topology{
		Cfg:        cfg,
		Net:        netsim.New(),
		Graph:      graph,
		Routes:     routes,
		ASes:       ases,
		hostIface:  make(map[netip.Addr]*netsim.Iface, hosts),
		hostAttach: make(map[netip.Addr]int, hosts),
		routerAddr: make(map[netip.Addr]int, 2*links+totalPrefixes+numVPs),
		destByAddr: make(map[netip.Addr]int32, totalPrefixes),
	}

	plans := make([]*asPlan, len(ases))
	for i := range ases {
		plans[i] = newASPlan(i)
	}

	t.buildRouters(rng)
	t.buildIntraLinks(plans, rng)
	t.buildInterLinks(plans, rng)
	t.buildDests(plans, rng)
	t.buildVPs(plans, rng)
	t.installOracle()
	t.installFaults()
	builds.Add(1)
	return t, nil
}

// installFaults compiles Cfg.Faults into per-interface and per-router
// fault state. Registration follows build order — routers by (AS,
// router) index with their interfaces in attachment order, then
// destination prefixes in hitlist order — so every replica built from
// the same Config draws the same afflicted subsets and window phases.
func (t *Topology) installFaults() {
	if t.Cfg.Faults == nil {
		return
	}
	plan := netsim.NewFaultPlan(*t.Cfg.Faults)
	for i := range t.Routers {
		for _, r := range t.Routers[i] {
			plan.AddRouter(r)
			for _, ifc := range r.Interfaces() {
				plan.AddLink(ifc)
			}
		}
	}
	for _, d := range t.Dests {
		plan.AddWithdrawal(t.Routers[d.ASIdx][t.hostAttach[d.Addr]], d.Prefix)
	}
	t.Faults = plan.Install()
}

// MustBuild is Build for tests and examples with known-good configs.
func MustBuild(cfg Config) *Topology {
	t, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// routerBehavior derives a router's behaviour from its AS policy flags
// and the per-router rates.
func (t *Topology) routerBehavior(a *AS, rng *rand.Rand) netsim.RouterBehavior {
	b := netsim.RouterBehavior{}
	if a.FilterOptions {
		b.DropOptions = true
	}
	if a.NoStamp {
		b.NoStampRR = true
	} else if a.PartialNoStamp && rng.Float64() < 0.5 {
		b.NoStampRR = true
	}
	if rng.Float64() < t.Cfg.RouterAnonymousRate {
		b.NoTTLDecrement = true
	}
	// Options policers live at stub-AS edges (destination-proximate).
	isStub := a.Role == RoleEnterprise || a.Role == RoleUnknownStub || a.Role == RoleContent
	if isStub && rng.Float64() < t.Cfg.EdgeRateLimitRate {
		b.OptionsRateLimit = t.Cfg.EdgeRateLimitPPS
		b.OptionsRateBurst = t.Cfg.EdgeRateLimitPPS / 2
	}
	return b
}

func (t *Topology) buildRouters(rng *rand.Rand) {
	t.Routers = make([][]*netsim.Router, len(t.ASes))
	total := 0
	for _, a := range t.ASes {
		total += a.NumRouters
	}
	t.routerIndex = make(map[*netsim.Router][2]int, total)
	for i, a := range t.ASes {
		rs := make([]*netsim.Router, a.NumRouters)
		// Connected /32 routes per router: tree links plus this AS's share
		// of destination attachments; border links add a few more.
		fibHint := 4
		if a.NumRouters > 0 {
			fibHint += a.NumPrefixes / a.NumRouters
		}
		for j := range rs {
			rs[j] = t.Net.AddRouter(fmt.Sprintf("as%d-r%d", i, j), t.routerBehavior(a, rng))
			rs[j].FIB().Grow(fibHint)
			t.routerIndex[rs[j]] = [2]int{i, j}
		}
		t.Routers[i] = rs
	}
}

// chainBias returns how strongly an AS role's router tree grows as a
// chain (1 = pure chain, 0 = star): access and enterprise networks have
// deep aggregation hierarchies; the core is flat and bushy.
func chainBias(r Role) float64 {
	switch r {
	case RoleAccess:
		return 0.85
	case RoleEnterprise, RoleUnknownStub:
		return 0.7
	case RoleContent:
		return 0.5
	default: // tier-1, transit, cloud backbones
		return 0.4
	}
}

// buildIntraLinks wires each AS's routers into a random tree rooted at
// router 0, chain-biased per role, so destinations sit at varying
// depths — the spread Figure 1's hop CDF measures.
func (t *Topology) buildIntraLinks(plans []*asPlan, rng *rand.Rand) {
	t.parent = make([][]int, len(t.ASes))
	t.upIface = make([][]*netsim.Iface, len(t.ASes))
	t.downIface = make([][]*netsim.Iface, len(t.ASes))
	for i, a := range t.ASes {
		n := len(t.Routers[i])
		t.parent[i] = make([]int, n)
		t.parent[i][0] = -1
		t.upIface[i] = make([]*netsim.Iface, n)
		t.downIface[i] = make([]*netsim.Iface, n)
		bias := chainBias(a.Role) + t.Cfg.ChainBoost
		if bias > 0.95 {
			bias = 0.95
		}
		for j := 1; j < n; j++ {
			p := j - 1
			if rng.Float64() >= bias {
				p = rng.IntN(j)
			}
			t.attachChild(plans, rng, i, j, p)
		}
	}
}

// attachChild links router j of AS i under parent p and registers the
// interfaces. It also serves routers appended after the initial build
// (dedicated VP gateways), which must extend parent/upIface/downIface
// before calling.
func (t *Topology) attachChild(plans []*asPlan, rng *rand.Rand, i, j, p int) {
	parentAddr, childAddr := plans[i].NextInfra(), plans[i].NextInfra()
	delay := time.Duration(1+rng.IntN(3)) * time.Millisecond
	pi, ci := t.Net.Connect(t.Routers[i][p], t.Routers[i][j], parentAddr, childAddr, delay)
	t.parent[i][j] = p
	t.downIface[i][j] = pi
	t.upIface[i][j] = ci
	t.routerAddr[parentAddr] = p
	t.routerAddr[childAddr] = j
}

// borderCandidates lists an AS's routers eligible to host inter-AS
// links: backbone routers near the root — core networks spread borders
// a level deeper (lengthening transit crossings), edge networks keep
// them shallow so their aggregation tails stay destination-only.
func (t *Topology) borderCandidates(i int) []int {
	maxDepth := 1
	if r := t.ASes[i].Role; r == RoleTier1 || r == RoleTransit {
		maxDepth = 2
	}
	var out []int
	for j := range t.Routers[i] {
		if t.depthOf(i, j) <= maxDepth {
			out = append(out, j)
		}
	}
	return out
}

// deepBorderCandidates lists routers eligible for cloud private
// interconnects: anywhere in the upper two-thirds of the AS tree.
func (t *Topology) deepBorderCandidates(i int) []int {
	maxDepth := 0
	for j := range t.Routers[i] {
		if d := t.depthOf(i, j); d > maxDepth {
			maxDepth = d
		}
	}
	limit := 2 * maxDepth / 3
	if limit < 1 {
		limit = 1
	}
	var out []int
	for j := range t.Routers[i] {
		if t.depthOf(i, j) <= limit {
			out = append(out, j)
		}
	}
	return out
}

// buildInterLinks realizes each AS adjacency as one router-level link
// between randomly chosen border routers.
func (t *Topology) buildInterLinks(plans []*asPlan, rng *rand.Rand) {
	t.borderIface = make([]map[int]*netsim.Iface, len(t.ASes))
	t.borderIdx = make([]map[int]int, len(t.ASes))
	for i := range t.ASes {
		t.borderIface[i] = make(map[int]*netsim.Iface)
		t.borderIdx[i] = make(map[int]int)
	}
	borders := make([][]int, len(t.ASes))
	deepBorders := make([][]int, len(t.ASes))
	for i := range t.ASes {
		borders[i] = t.borderCandidates(i)
		deepBorders[i] = t.deepBorderCandidates(i)
	}
	// pickBorder chooses AS i's router for its link to AS j. Cloud
	// private interconnects land deep inside access networks (metro
	// POPs close to the aggregation), shortening cloud—user paths —
	// the §3.6 flattening effect.
	pickBorder := func(i, j int) int {
		cands := borders[i]
		if t.ASes[i].Role == RoleAccess && t.ASes[j].Role == RoleCloud {
			cands = deepBorders[i]
		}
		return cands[rng.IntN(len(cands))]
	}
	for a := 0; a < t.Graph.N(); a++ {
		for _, nb := range t.Graph.Neighbors(a) {
			b := nb.To
			if b < a {
				continue // realize each adjacency once
			}
			ra := pickBorder(a, b)
			rb := pickBorder(b, a)
			addrA, addrB := plans[a].NextInfra(), plans[b].NextInfra()
			delay := time.Duration(3+rng.IntN(13)) * time.Millisecond
			ia, ib := t.Net.Connect(t.Routers[a][ra], t.Routers[b][rb], addrA, addrB, delay)
			t.borderIface[a][b] = ia
			t.borderIdx[a][b] = ra
			t.borderIface[b][a] = ib
			t.borderIdx[b][a] = rb
			t.routerAddr[addrA] = ra
			t.routerAddr[addrB] = rb
		}
	}
}

// buildDests creates one destination host per advertised prefix, with
// behaviour drawn from the calibrated rates.
func (t *Topology) buildDests(plans []*asPlan, rng *rand.Rand) {
	cfg := t.Cfg
	for i, a := range t.ASes {
		typ := a.Type()
		for j := 0; j < a.NumPrefixes; j++ {
			hb := netsim.HostBehavior{
				PingResponsive: rng.Float64() < cfg.PingResponsiveRate[typ],
				RRResponsive:   rng.Float64() >= cfg.HostRRDropRate[typ],
				CopyRROnReply:  true,
				HonorRR:        true,
				UDPResponsive:  rng.Float64() < cfg.HostUDPResponsiveRate,
			}
			d := &Dest{
				Addr:   plans[i].DestAddr(j, HostOctets[rng.IntN(len(HostOctets))]),
				Prefix: plans[i].DestPrefix(j),
				ASIdx:  i,
			}
			switch {
			case rng.Float64() < cfg.HostNoHonorRRRate:
				hb.HonorRR = false
				d.GTNoHonorRR = true
			case rng.Float64() < cfg.HostAliasStampRate:
				d.GTAlias = plans[i].AliasAddr(j)
				hb.StampAddr = d.GTAlias
			}
			d.GTPingResponsive = hb.PingResponsive
			d.GTRRDrop = !hb.RRResponsive
			d.GTUDPResponsive = hb.UDPResponsive

			host := t.Net.AddHost(fmt.Sprintf("as%d-d%d", i, j), d.Addr, hb)
			if d.GTAlias.IsValid() {
				host.AddAlias(d.GTAlias)
			}
			attach := rng.IntN(len(t.Routers[i]))
			gwAddr := plans[i].NextInfra()
			delay := time.Duration(1+rng.IntN(5)) * time.Millisecond
			gwIf, _ := t.Net.Connect(t.Routers[i][attach], host, gwAddr, d.Addr, delay)
			t.routerAddr[gwAddr] = attach
			t.hostIface[d.Addr] = gwIf
			t.hostAttach[d.Addr] = attach
			if d.GTAlias.IsValid() {
				t.hostIface[d.GTAlias] = gwIf
				t.hostAttach[d.GTAlias] = attach
			}
			d.Host = host
			t.Dests = append(t.Dests, d)
			t.destByAddr[d.Addr] = int32(len(t.Dests) - 1)
		}
	}
}

// buildVPs places M-Lab VPs in transit ASes (hub-attached, colo-like),
// PlanetLab VPs in enterprise ASes, and one measurement host at each
// cloud's border. Rate-limited VPs get a dedicated, policed gateway
// router so the policer affects only their own traffic.
func (t *Topology) buildVPs(plans []*asPlan, rng *rand.Rand) {
	cfg := t.Cfg
	vpSlots := make([]int, len(t.ASes)) // next VP host slot per AS

	var transits, ents []int
	for _, a := range t.ASes {
		switch a.Role {
		case RoleTransit:
			transits = append(transits, a.Index)
		case RoleEnterprise:
			ents = append(ents, a.Index)
		}
	}

	addVP := func(name string, kind VPKind, asIdx, attach int, limited bool) *VP {
		addr := plans[asIdx].VPAddr(vpSlots[asIdx])
		vpSlots[asIdx]++
		host := t.Net.AddHost(name, addr, netsim.DefaultHostBehavior())
		if limited {
			// Dedicated first-hop gateway carrying only this VP.
			gw := t.Net.AddRouter(fmt.Sprintf("as%d-vpgw-%s", asIdx, name), netsim.RouterBehavior{
				OptionsRateLimit: cfg.SourceRateLimitPPS,
				OptionsRateBurst: cfg.SourceRateLimitPPS / 2,
			})
			j := len(t.Routers[asIdx])
			t.Routers[asIdx] = append(t.Routers[asIdx], gw)
			t.routerIndex[gw] = [2]int{asIdx, j}
			t.parent[asIdx] = append(t.parent[asIdx], 0)
			t.upIface[asIdx] = append(t.upIface[asIdx], nil)
			t.downIface[asIdx] = append(t.downIface[asIdx], nil)
			t.attachChild(plans, rng, asIdx, j, 0)
			attach = j
		}
		gwAddr := plans[asIdx].NextInfra()
		gwIf, _ := t.Net.Connect(t.Routers[asIdx][attach], host, gwAddr, addr, time.Millisecond)
		t.routerAddr[gwAddr] = attach
		t.hostIface[addr] = gwIf
		t.hostAttach[addr] = attach
		return &VP{Name: name, Kind: kind, Addr: addr, ASIdx: asIdx, Host: host, SourceRateLimited: limited}
	}

	for i := 0; i < cfg.NumMLab; i++ {
		asIdx := transits[i%len(transits)]
		limited := i < cfg.MLabRateLimited
		t.VPs = append(t.VPs, addVP(fmt.Sprintf("mlab-%d", i), MLab, asIdx, 0, limited))
	}
	for i := 0; i < cfg.NumPlanetLab; i++ {
		asIdx := ents[i%len(ents)]
		limited := i < cfg.MLabRateLimited/2
		t.VPs = append(t.VPs, addVP(fmt.Sprintf("pl-%d", i), PlanetLab, asIdx, 0, limited))
	}
	for _, a := range t.ASes {
		if a.Role == RoleCloud {
			t.CloudVPs = append(t.CloudVPs, addVP(a.Name, Cloud, a.Index, 0, false))
		}
	}
}

// installOracle wires every router to the shared routing oracle.
func (t *Topology) installOracle() {
	for a := range t.Routers {
		for j, r := range t.Routers[a] {
			a, j := a, j
			r.SetRouteFunc(func(dst netip.Addr) *netsim.Iface {
				return t.route(a, j, dst)
			})
		}
	}
}
