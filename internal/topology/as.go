package topology

import "fmt"

// ASType is the CAIDA-style business classification the paper's Table 1
// breaks results down by. It is what the exported AS-classification
// dataset records; analyses must read it from the dataset, not from
// generator internals.
type ASType int

const (
	// TypeTransitAccess covers transit providers and access/eyeball
	// networks (CAIDA groups them).
	TypeTransitAccess ASType = iota
	// TypeEnterprise is a stub business network.
	TypeEnterprise
	// TypeContent is a content provider or CDN.
	TypeContent
	// TypeUnknown is an AS the classifier could not label.
	TypeUnknown
	numASTypes
)

// String returns the dataset label for the type.
func (t ASType) String() string {
	switch t {
	case TypeTransitAccess:
		return "Transit/Access"
	case TypeEnterprise:
		return "Enterprise"
	case TypeContent:
		return "Content"
	case TypeUnknown:
		return "Unknown"
	default:
		return fmt.Sprintf("ASType(%d)", int(t))
	}
}

// ParseASType inverts String; unknown labels map to TypeUnknown.
func ParseASType(s string) ASType {
	switch s {
	case "Transit/Access":
		return TypeTransitAccess
	case "Enterprise":
		return TypeEnterprise
	case "Content":
		return TypeContent
	default:
		return TypeUnknown
	}
}

// Role is the structural role an AS plays in the generated graph. Role
// determines connectivity; ASType is the (coarser) classification the
// analysis sees.
type Role int

const (
	// RoleTier1 is a transit-free core AS, mutually peered with the
	// other tier-1s.
	RoleTier1 Role = iota
	// RoleTransit is a regional/national transit provider.
	RoleTransit
	// RoleAccess is an eyeball/access network hosting many prefixes.
	RoleAccess
	// RoleEnterprise is a stub business network.
	RoleEnterprise
	// RoleContent is a content provider or CDN.
	RoleContent
	// RoleUnknownStub is a stub whose classification is Unknown.
	RoleUnknownStub
	// RoleCloud is a large cloud provider (classified Content) with
	// very broad peering in the 2016 epoch.
	RoleCloud
	numRoles
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleTier1:
		return "tier1"
	case RoleTransit:
		return "transit"
	case RoleAccess:
		return "access"
	case RoleEnterprise:
		return "enterprise"
	case RoleContent:
		return "content"
	case RoleUnknownStub:
		return "unknown-stub"
	case RoleCloud:
		return "cloud"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Type returns the CAIDA-style classification for a role.
func (r Role) Type() ASType {
	switch r {
	case RoleTier1, RoleTransit, RoleAccess:
		return TypeTransitAccess
	case RoleEnterprise:
		return TypeEnterprise
	case RoleContent, RoleCloud:
		return TypeContent
	default:
		return TypeUnknown
	}
}

// AS is one autonomous system in the generated topology.
type AS struct {
	// Index is the AS's position in the graph (0-based).
	Index int
	// ASN is the AS number exported in datasets (arbitrary but stable).
	ASN int
	// Role drives connectivity and behaviour assignment.
	Role Role
	// Name is a human-readable label; cloud ASes carry provider names.
	Name string
	// NumRouters is how many routers the AS expands to.
	NumRouters int
	// NumPrefixes is how many /24 destination prefixes it advertises.
	NumPrefixes int

	// Policy flags assigned at build time.

	// FilterOptions drops IP-options packets at every router of the AS.
	FilterOptions bool
	// NoStamp forwards options packets without stamping, AS-wide
	// (the global configuration §3.5 looks for).
	NoStamp bool
	// PartialNoStamp disables stamping on a subset of the AS's routers.
	PartialNoStamp bool
}

// Type returns the AS's dataset classification.
func (a *AS) Type() ASType { return a.Role.Type() }
