package topology

import (
	"net/netip"
	"testing"
	"time"

	"recordroute/internal/netsim"
	"recordroute/internal/packet"
)

// testConfig is a small, fast topology for unit tests.
func testConfig() Config {
	return DefaultConfig(Epoch2016).Scale(0.15)
}

func TestBuildProducesConfiguredRoster(t *testing.T) {
	cfg := testConfig()
	topo := MustBuild(cfg)
	want := cfg.NumTier1 + cfg.NumTransit + cfg.NumAccess + cfg.NumEnterprise +
		cfg.NumContent + cfg.NumUnknown + len(cfg.CloudNames)
	if len(topo.ASes) != want {
		t.Fatalf("ASes = %d, want %d", len(topo.ASes), want)
	}
	if len(topo.VPs) != cfg.NumMLab+cfg.NumPlanetLab {
		t.Errorf("VPs = %d, want %d", len(topo.VPs), cfg.NumMLab+cfg.NumPlanetLab)
	}
	if len(topo.CloudVPs) != len(cfg.CloudNames) {
		t.Errorf("CloudVPs = %d", len(topo.CloudVPs))
	}
	if len(topo.Dests) == 0 {
		t.Fatal("no destinations")
	}
	// Destination counts follow the per-AS prefix counts.
	sum := 0
	for _, a := range topo.ASes {
		sum += a.NumPrefixes
	}
	if len(topo.Dests) != sum {
		t.Errorf("Dests = %d, want %d", len(topo.Dests), sum)
	}
}

func TestBuildValidatesConfig(t *testing.T) {
	cfg := testConfig()
	cfg.NumTier1 = 1
	if _, err := Build(cfg); err == nil {
		t.Error("Build accepted a single-tier-1 config")
	}
}

func TestAllASPairsRouted(t *testing.T) {
	topo := MustBuild(testConfig())
	// Every VP AS must reach every destination AS (the generator
	// guarantees a provider chain to the tier-1 clique).
	for _, vp := range topo.VPs {
		for _, d := range topo.Dests {
			if topo.Routes.Path(vp.ASIdx, d.ASIdx) == nil {
				t.Fatalf("no AS path %s(as%d) → as%d", vp.Name, vp.ASIdx, d.ASIdx)
			}
		}
	}
}

func TestAddressPlanRoundTrip(t *testing.T) {
	topo := MustBuild(testConfig())
	for _, d := range topo.Dests {
		if got := topo.ASOf(d.Addr); got != d.ASIdx {
			t.Fatalf("ASOf(%v) = %d, want %d", d.Addr, got, d.ASIdx)
		}
		if !d.Prefix.Contains(d.Addr) {
			t.Fatalf("dest %v outside its prefix %v", d.Addr, d.Prefix)
		}
	}
	for _, vp := range topo.VPs {
		if got := topo.ASOf(vp.Addr); got != vp.ASIdx {
			t.Fatalf("ASOf(%v) = %d, want %d", vp.Addr, got, vp.ASIdx)
		}
	}
	if topo.ASOf(netip.MustParseAddr("8.8.8.8")) != -1 {
		t.Error("off-plan address mapped to an AS")
	}
}

// probeOnce injects a single crafted probe from vp and returns all
// packets the VP receives before the event queue drains.
func probeOnce(t *testing.T, topo *Topology, vp *VP, wire []byte) [][]byte {
	t.Helper()
	var got [][]byte
	vp.Host.SetSniffer(func(_ time.Duration, pkt []byte) {
		cp := make([]byte, len(pkt))
		copy(cp, pkt)
		got = append(got, cp)
	})
	defer vp.Host.SetSniffer(nil)
	vp.Host.Inject(wire)
	topo.Net.Engine().Run()
	return got
}

func craftPing(t *testing.T, src, dst netip.Addr, id uint16, slots int) []byte {
	t.Helper()
	hdr := packet.IPv4{TTL: 64, ID: id, Protocol: packet.ProtocolICMP, Src: src, Dst: dst}
	if slots > 0 {
		if err := hdr.SetRecordRoute(packet.NewRecordRoute(slots)); err != nil {
			t.Fatal(err)
		}
	}
	wire, err := hdr.Marshal(packet.NewEchoRequest(id, 1, nil).Marshal())
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// firstResponsiveDest returns a ground-truth fully responsive dest whose
// AS does not filter options.
func firstResponsiveDest(topo *Topology) *Dest {
	for _, d := range topo.Dests {
		if d.GTPingResponsive && !d.GTRRDrop && !d.GTNoHonorRR && !d.GTAlias.IsValid() &&
			!topo.ASes[d.ASIdx].FilterOptions {
			return d
		}
	}
	return nil
}

func TestGeneratedFabricDeliversPing(t *testing.T) {
	topo := MustBuild(testConfig())
	vp := topo.VPs[0]
	d := firstResponsiveDest(topo)
	if d == nil {
		t.Fatal("no fully responsive destination in test topology")
	}
	got := probeOnce(t, topo, vp, craftPing(t, vp.Addr, d.Addr, 42, 0))
	if len(got) != 1 {
		t.Fatalf("received %d packets, want 1 echo reply", len(got))
	}
	var ip packet.IPv4
	payload, err := ip.Decode(got[0])
	if err != nil {
		t.Fatal(err)
	}
	var icmp packet.ICMP
	if err := icmp.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if icmp.Type != packet.ICMPEchoReply || icmp.ID != 42 || ip.Src != d.Addr {
		t.Errorf("reply: %v id=%d from %v", icmp.Type, icmp.ID, ip.Src)
	}
}

func TestGeneratedFabricStampsValleyFreePath(t *testing.T) {
	topo := MustBuild(testConfig())
	vp := topo.VPs[0]
	d := firstResponsiveDest(topo)
	if d == nil {
		t.Fatal("no responsive dest")
	}
	got := probeOnce(t, topo, vp, craftPing(t, vp.Addr, d.Addr, 43, 9))
	if len(got) != 1 {
		t.Fatalf("received %d packets", len(got))
	}
	var ip packet.IPv4
	if _, err := ip.Decode(got[0]); err != nil {
		t.Fatal(err)
	}
	var rr packet.RecordRoute
	if found, err := ip.RecordRouteOption(&rr); !found || err != nil {
		t.Fatalf("reply RR: found=%v err=%v", found, err)
	}
	if rr.RecordedCount() == 0 {
		t.Fatal("no hops recorded across the generated fabric")
	}
	// Every recorded address must belong to an AS on the policy path
	// (or be the destination itself).
	asPath := topo.Routes.Path(vp.ASIdx, d.ASIdx)
	onPath := make(map[int]bool)
	for _, a := range asPath {
		onPath[a] = true
	}
	for _, hop := range rr.Recorded() {
		asIdx := topo.ASOf(hop)
		if asIdx < 0 || !onPath[asIdx] {
			t.Errorf("hop %v maps to as%d, not on AS path %v", hop, asIdx, asPath)
		}
	}
	// The forward stamps must follow AS-path order (no ping-ponging).
	lastPos := -1
	for _, hop := range rr.Recorded() {
		if hop == d.Addr {
			break // dest stamp; reverse stamps follow
		}
		pos := -1
		for i, a := range asPath {
			if a == topo.ASOf(hop) {
				pos = i
				break
			}
		}
		if pos < lastPos {
			t.Errorf("forward stamps out of AS order: %v", rr.Recorded())
			break
		}
		if pos >= 0 {
			lastPos = pos
		}
	}
}

func TestGeneratedAliasDestStampsAlias(t *testing.T) {
	topo := MustBuild(testConfig())
	var ad *Dest
	for _, d := range topo.Dests {
		if d.GTAlias.IsValid() && d.GTPingResponsive && !d.GTRRDrop && !topo.ASes[d.ASIdx].FilterOptions {
			ad = d
			break
		}
	}
	if ad == nil {
		t.Skip("no alias destination drawn in this seed")
	}
	vp := topo.VPs[0]
	got := probeOnce(t, topo, vp, craftPing(t, vp.Addr, ad.Addr, 44, 9))
	if len(got) != 1 {
		t.Fatalf("received %d packets", len(got))
	}
	var ip packet.IPv4
	if _, err := ip.Decode(got[0]); err != nil {
		t.Fatal(err)
	}
	var rr packet.RecordRoute
	if found, _ := ip.RecordRouteOption(&rr); !found {
		t.Fatal("no RR in reply")
	}
	if rr.Contains(ad.Addr) {
		t.Error("alias dest stamped its probed address")
	}
	if !rr.Full() && !rr.Contains(ad.GTAlias) {
		t.Errorf("alias %v missing from %v", ad.GTAlias, rr.Recorded())
	}
}

func TestBuildDeterministicAcrossRuns(t *testing.T) {
	a := MustBuild(testConfig())
	b := MustBuild(testConfig())
	if len(a.Dests) != len(b.Dests) {
		t.Fatalf("dest counts differ: %d vs %d", len(a.Dests), len(b.Dests))
	}
	for i := range a.Dests {
		if a.Dests[i].Addr != b.Dests[i].Addr ||
			a.Dests[i].GTPingResponsive != b.Dests[i].GTPingResponsive ||
			a.Dests[i].GTRRDrop != b.Dests[i].GTRRDrop {
			t.Fatalf("dest %d differs between identically-seeded builds", i)
		}
	}
	for i := range a.VPs {
		if a.VPs[i].Addr != b.VPs[i].Addr || a.VPs[i].Name != b.VPs[i].Name {
			t.Fatalf("VP %d differs between builds", i)
		}
	}
}

func TestEpochsShareRosterButDifferInPeering(t *testing.T) {
	t16 := MustBuild(DefaultConfig(Epoch2016).Scale(0.15))
	t11 := MustBuild(DefaultConfig(Epoch2011).Scale(0.15))
	if len(t16.ASes) != len(t11.ASes) {
		t.Fatalf("rosters differ: %d vs %d ASes", len(t16.ASes), len(t11.ASes))
	}
	edges := func(topo *Topology) int {
		n := 0
		for a := 0; a < topo.Graph.N(); a++ {
			n += len(topo.Graph.Neighbors(a))
		}
		return n / 2
	}
	e16, e11 := edges(t16), edges(t11)
	if e16 <= e11 {
		t.Errorf("2016 edges (%d) not denser than 2011 (%d)", e16, e11)
	}
	// Average AS-path length from M-Lab hosting ASes to access-network
	// dests must be shorter in the flattened 2016 epoch.
	avg := func(topo *Topology) float64 {
		total, n := 0, 0
		for _, vp := range topo.VPs {
			if vp.Kind != MLab {
				continue
			}
			for _, d := range topo.Dests {
				if topo.ASes[d.ASIdx].Role != RoleAccess {
					continue
				}
				if p := topo.Routes.Path(vp.ASIdx, d.ASIdx); p != nil {
					total += len(p)
					n++
				}
			}
		}
		return float64(total) / float64(n)
	}
	a16, a11 := avg(t16), avg(t11)
	if a16 >= a11 {
		t.Errorf("2016 avg AS path %.2f not shorter than 2011 %.2f", a16, a11)
	}
}

func TestSourceRateLimitedVPHasDedicatedGateway(t *testing.T) {
	topo := MustBuild(testConfig())
	var limited *VP
	for _, vp := range topo.VPs {
		if vp.SourceRateLimited {
			limited = vp
			break
		}
	}
	if limited == nil {
		t.Skip("no rate-limited VP at this scale")
	}
	gw := limited.Host.Uplink().Peer().Owner.(*netsim.Router)
	if gw.Behavior().OptionsRateLimit <= 0 {
		t.Error("limited VP's first-hop router has no options policer")
	}
	// No destination host shares that gateway.
	for _, d := range topo.Dests {
		if d.Host.Uplink() != nil && d.Host.Uplink().Peer().Owner == gw {
			t.Error("destination shares the dedicated VP gateway")
		}
	}
}

func TestCloudInterconnectsLandDeep(t *testing.T) {
	topo := MustBuild(testConfig())
	// Find cloud—access adjacencies and check the access-side border
	// depth can exceed the normal shallow-border limit.
	sawDeep := false
	for _, cloud := range topo.CloudVPs {
		ci := cloud.ASIdx
		for _, nb := range topo.Graph.Neighbors(ci) {
			if topo.ASes[nb.To].Role != RoleAccess {
				continue
			}
			idx, ok := topo.borderIdx[nb.To][ci]
			if !ok {
				continue
			}
			if topo.depthOf(nb.To, idx) > 1 {
				sawDeep = true
			}
		}
	}
	if !sawDeep {
		t.Error("no cloud interconnect deeper than the shallow border limit")
	}
	// Non-cloud inter-AS borders at access networks stay shallow.
	for a := 0; a < topo.Graph.N(); a++ {
		if topo.ASes[a].Role != RoleAccess {
			continue
		}
		for nbr, idx := range topo.borderIdx[a] {
			if topo.ASes[nbr].Role == RoleCloud {
				continue
			}
			if d := topo.depthOf(a, idx); d > 1 {
				t.Errorf("access as%d border to %v at depth %d", a, topo.ASes[nbr].Role, d)
			}
		}
	}
}

func TestChainBoostDeepensTrees(t *testing.T) {
	base := testConfig()
	boosted := base
	boosted.ChainBoost = 0.3
	maxDepth := func(topo *Topology) int {
		deepest := 0
		for i := range topo.ASes {
			for j := range topo.Routers[i] {
				if d := topo.depthOf(i, j); d > deepest {
					deepest = d
				}
			}
		}
		return deepest
	}
	avgDepth := func(topo *Topology) float64 {
		total, n := 0, 0
		for i := range topo.ASes {
			for j := range topo.Routers[i] {
				total += topo.depthOf(i, j)
				n++
			}
		}
		return float64(total) / float64(n)
	}
	t0, t1 := MustBuild(base), MustBuild(boosted)
	if avgDepth(t1) <= avgDepth(t0) {
		t.Errorf("ChainBoost did not deepen trees: %.2f vs %.2f", avgDepth(t1), avgDepth(t0))
	}
	_ = maxDepth
}

func TestForwardStampPathMatchesMeasurement(t *testing.T) {
	topo := MustBuild(testConfig())
	d := firstResponsiveDest(topo)
	if d == nil {
		t.Skip("no conformant dest")
	}
	// Find a VP whose ping-RR to d completes (paths through filtering
	// ASes legitimately yield nothing).
	var vp *VP
	var got [][]byte
	for _, cand := range topo.VPs {
		if cand.SourceRateLimited {
			continue
		}
		got = probeOnce(t, topo, cand, craftPing(t, cand.Addr, d.Addr, 90, 9))
		if len(got) == 1 {
			vp = cand
			break
		}
	}
	if vp == nil {
		t.Skip("no VP completed a ping-RR to the chosen dest")
	}
	want := topo.ForwardStampPath(vp.Addr, d.Addr)
	if want == nil {
		t.Fatal("no oracle path")
	}
	var ip packet.IPv4
	if _, err := ip.Decode(got[0]); err != nil {
		t.Fatal(err)
	}
	var rr packet.RecordRoute
	if found, _ := ip.RecordRouteOption(&rr); !found {
		t.Fatal("no RR")
	}
	// The measured forward stamps (before the dest stamp) must equal
	// the oracle path restricted to stamping routers, truncated to the
	// slots available.
	var filtered []netip.Addr
	for _, hop := range want {
		r := topo.RouterByAddr(hop)
		if r != nil && !r.Behavior().NoStampRR {
			filtered = append(filtered, hop)
		}
	}
	var fwd []netip.Addr
	for _, h := range rr.Recorded() {
		if h == d.Addr {
			break
		}
		fwd = append(fwd, h)
	}
	if len(fwd) > len(filtered) {
		t.Fatalf("measured %d fwd stamps, oracle has %d", len(fwd), len(filtered))
	}
	for i := range fwd {
		if fwd[i] != filtered[i] {
			t.Fatalf("stamp %d: measured %v, oracle %v", i, fwd[i], filtered[i])
		}
	}
}
