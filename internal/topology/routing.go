package topology

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Gao-Rexford policy routing over an AS-relationship graph.
//
// Each AS selects one best route per destination following the standard
// preference order — routes learned from customers over routes learned
// from peers over routes learned from providers, then shortest AS-path,
// then lowest next-hop index — under valley-free export rules: a route
// learned from a customer is exported to everyone; a route learned from
// a peer or provider is exported only to customers.

// Rel is an AS relationship, viewed from the AS holding the adjacency
// toward the neighbour it describes.
type Rel int8

const (
	// RelCustomer: the neighbour is my customer (I transit for it).
	RelCustomer Rel = iota
	// RelPeer: settlement-free peering.
	RelPeer
	// RelProvider: the neighbour is my provider.
	RelProvider
)

// String names the relationship.
func (r Rel) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	default:
		return "rel(?)"
	}
}

// Neighbor is one adjacency in the AS graph.
type Neighbor struct {
	To  int
	Rel Rel // relationship of To, from the owning AS's perspective
}

// Graph is an AS-relationship graph over ASes indexed 0..N-1.
type Graph struct {
	n   int
	adj [][]Neighbor
}

// NewGraph returns an empty graph over n ASes.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]Neighbor, n)}
}

// N returns the number of ASes.
func (g *Graph) N() int { return g.n }

// Neighbors returns a's adjacency list.
func (g *Graph) Neighbors(a int) []Neighbor { return g.adj[a] }

// AddLink records a relationship between a and b: rel is b's role from
// a's perspective (RelCustomer means b is a's customer). The reverse
// adjacency is added automatically.
func (g *Graph) AddLink(a, b int, rel Rel) {
	g.adj[a] = append(g.adj[a], Neighbor{To: b, Rel: rel})
	var back Rel
	switch rel {
	case RelCustomer:
		back = RelProvider
	case RelProvider:
		back = RelCustomer
	default:
		back = RelPeer
	}
	g.adj[b] = append(g.adj[b], Neighbor{To: a, Rel: back})
}

// HasLink reports whether a and b are adjacent.
func (g *Graph) HasLink(a, b int) bool {
	for _, nb := range g.adj[a] {
		if nb.To == b {
			return true
		}
	}
	return false
}

// route classes in preference order. classNone sorts last.
const (
	classCustomer int8 = 1
	classPeer     int8 = 2
	classProvider int8 = 3
	classNone     int8 = 4
)

// NextHops computes, for every AS, the next-hop AS on its best
// policy-compliant route toward dst. nh[dst] = dst; unreachable ASes get
// -1. The companion class and dist slices describe the selected route.
func (g *Graph) NextHops(dst int) (nh []int32, class []int8, dist []int32) {
	nh = make([]int32, g.n)
	class = make([]int8, g.n)
	dist = make([]int32, g.n)
	g.nextHopsInto(dst, nh, class, dist)
	return nh, class, dist
}

// nextHopsInto is NextHops writing into caller-provided slices of length
// g.n, so all-pairs computations can reuse scratch across destinations.
func (g *Graph) nextHopsInto(dst int, nh []int32, class []int8, dist []int32) {
	n := g.n
	for i := range nh {
		nh[i] = -1
		class[i] = classNone
		dist[i] = 1 << 30
	}
	nh[dst] = int32(dst)
	class[dst] = 0
	dist[dst] = 0

	// Stage 1: customer routes climb provider edges from dst. An AS
	// whose customer has a customer route (or is dst) learns a customer
	// route. Level-order BFS gives shortest paths; the lowest next-hop
	// index wins ties within a level.
	level := []int{dst}
	d := int32(0)
	for len(level) > 0 {
		d++
		var next []int
		for _, a := range level {
			for _, nb := range g.adj[a] {
				if nb.Rel != RelProvider {
					continue // only a's providers learn this as a customer route
				}
				p := nb.To
				if class[p] == classCustomer {
					// Already reached at an earlier or equal level; a
					// same-level lower-index hop wins the tie.
					if dist[p] == d && int32(a) < nh[p] {
						nh[p] = int32(a)
					}
					continue
				}
				if class[p] == classNone {
					class[p] = classCustomer
					dist[p] = d
					nh[p] = int32(a)
					next = append(next, p)
				}
				// class[p] == 0 is dst itself: nothing to do.
			}
		}
		level = dedupInts(next)
	}

	// Stage 2: peer routes: one peer edge from an AS holding a customer
	// route (or dst itself).
	for a := 0; a < n; a++ {
		if class[a] <= classCustomer {
			continue
		}
		best := int32(1 << 30)
		bestHop := int32(-1)
		for _, nb := range g.adj[a] {
			if nb.Rel != RelPeer {
				continue
			}
			b := nb.To
			if class[b] > classCustomer && b != dst {
				continue
			}
			if cand := dist[b] + 1; cand < best || (cand == best && int32(b) < bestHop) {
				best = cand
				bestHop = int32(b)
			}
		}
		if bestHop >= 0 {
			class[a] = classPeer
			dist[a] = best
			nh[a] = bestHop
		}
	}

	// Stage 3: provider routes descend customer edges from any routed
	// AS, chaining downward. Level-order BFS over candidate distances.
	// Seeds: every AS with a route so far, offering dist+1 to customers.
	// Because seed distances vary, bucket by distance.
	maxD := int32(0)
	for a := 0; a < n; a++ {
		if class[a] != classNone && dist[a] > maxD && dist[a] < 1<<29 {
			maxD = dist[a]
		}
	}
	buckets := make([][]int, maxD+2)
	for a := 0; a < n; a++ {
		if class[a] != classNone {
			buckets[dist[a]] = append(buckets[dist[a]], a)
		}
	}
	for d := int32(0); int(d) < len(buckets); d++ {
		for _, a := range buckets[d] {
			if dist[a] != d {
				continue // superseded before processing
			}
			for _, nb := range g.adj[a] {
				if nb.Rel != RelCustomer {
					continue // only a's customers learn this downward
				}
				c := nb.To
				cand := d + 1
				switch {
				case class[c] < classProvider:
					// customer/peer routes always beat provider routes.
				case class[c] == classProvider && dist[c] < cand:
				case class[c] == classProvider && dist[c] == cand:
					if int32(a) < nh[c] {
						nh[c] = int32(a)
					}
				default:
					class[c] = classProvider
					dist[c] = cand
					nh[c] = int32(a)
					for int(cand) >= len(buckets) {
						buckets = append(buckets, nil)
					}
					buckets[cand] = append(buckets[cand], c)
				}
			}
		}
	}

	for a := 0; a < n; a++ {
		if class[a] == classNone {
			dist[a] = -1
		}
	}
}

// dedupInts removes duplicates preserving first occurrence order.
func dedupInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Routes is the all-pairs next-hop matrix: Next[d][a] is a's next hop
// toward destination d.
type Routes struct {
	g    *Graph
	Next [][]int32
}

// ComputeRoutes builds the full next-hop matrix. All rows share one flat
// n×n backing array — one allocation instead of n — and rows are
// computed on a bounded worker pool sized to the host (each destination
// row is independent; see ComputeRoutesParallel).
func ComputeRoutes(g *Graph) *Routes {
	return ComputeRoutesParallel(g, 0)
}

// ComputeRoutesParallel is ComputeRoutes with an explicit worker count
// (workers <= 0 selects min(GOMAXPROCS, NumCPU)). Per-destination rows
// are independent — each worker owns its own class/dist scratch and
// writes only row d of the shared flat backing array, so the result is
// bit-identical to the serial build regardless of worker count or
// scheduling.
func ComputeRoutesParallel(g *Graph, workers int) *Routes {
	r := &Routes{g: g, Next: make([][]int32, g.n)}
	flat := make([]int32, g.n*g.n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if nc := runtime.NumCPU(); nc < workers {
			workers = nc
		}
	}
	if workers > g.n {
		workers = g.n
	}
	if workers <= 1 {
		class := make([]int8, g.n)
		dist := make([]int32, g.n)
		for d := 0; d < g.n; d++ {
			row := flat[d*g.n : (d+1)*g.n : (d+1)*g.n]
			g.nextHopsInto(d, row, class, dist)
			r.Next[d] = row
		}
		return r
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			class := make([]int8, g.n)
			dist := make([]int32, g.n)
			for {
				d := int(next.Add(1)) - 1
				if d >= g.n {
					return
				}
				row := flat[d*g.n : (d+1)*g.n : (d+1)*g.n]
				g.nextHopsInto(d, row, class, dist)
				r.Next[d] = row
			}
		}()
	}
	wg.Wait()
	return r
}

// Path returns the AS-level path from src to dst (inclusive of both), or
// nil if unreachable.
func (r *Routes) Path(src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	path := []int{src}
	cur := src
	for cur != dst {
		next := r.Next[dst][cur]
		if next < 0 {
			return nil
		}
		cur = int(next)
		path = append(path, cur)
		if len(path) > r.g.n {
			return nil // routing loop; must not happen
		}
	}
	return path
}

// NextHop returns a's next-hop AS toward dst, or -1.
func (r *Routes) NextHop(a, dst int) int {
	if a == dst {
		return dst
	}
	return int(r.Next[dst][a])
}
