package topology

import (
	"testing"

	"recordroute/internal/netsim"
)

// TestConfigDigest pins the cache-key contract: digests are stable
// across calls, equal for equal configs, and sensitive to every class
// of generation input — seed, scale, epoch, and the fault plan.
func TestConfigDigest(t *testing.T) {
	base := DefaultConfig(Epoch2016).Scale(0.2)
	if base.Digest() != base.Digest() {
		t.Fatal("digest not stable across calls")
	}
	same := DefaultConfig(Epoch2016).Scale(0.2)
	if same.Digest() != base.Digest() {
		t.Error("identical configs digest differently")
	}
	variants := map[string]Config{
		"seed":  func() Config { c := base; c.Seed = 99; return c }(),
		"scale": DefaultConfig(Epoch2016).Scale(0.3),
		"epoch": DefaultConfig(Epoch2011).Scale(0.2),
		"faults": func() Config {
			c := base
			c.Faults = &netsim.FaultConfig{LossProb: 0.1, LossFrac: 0.5}
			return c
		}(),
	}
	seen := map[string]string{base.Digest(): "base"}
	for name, cfg := range variants {
		d := cfg.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[d] = name
	}
}
