package topology

import "fmt"

// ScaleProfile names a calibrated topology size. Profiles scale the AS
// roster and prefix counts while keeping the behaviour-rate calibration
// (filtering, stamping, responsiveness) fixed, so study results stay
// comparable across sizes.
type ScaleProfile string

const (
	// ScaleSmall is a quick-iteration topology (~1/400 of the paper):
	// a few thousand prefixes, seconds to build and probe.
	ScaleSmall ScaleProfile = "small"
	// ScaleMedium is the default calibrated size (~1/100 of the paper).
	ScaleMedium ScaleProfile = "medium"
	// ScaleLarge approaches the paper's hitlist magnitude: 10⁵+
	// advertised prefixes across ~1.5k ASes. Building it is expensive —
	// this is the profile the snapshot/clone replication path exists for.
	ScaleLarge ScaleProfile = "large"
)

// ParseScale maps a profile name to its constant.
func ParseScale(name string) (ScaleProfile, error) {
	switch ScaleProfile(name) {
	case ScaleSmall, ScaleMedium, ScaleLarge:
		return ScaleProfile(name), nil
	}
	return "", fmt.Errorf("topology: unknown scale profile %q (want small, medium, or large)", name)
}

// ProfileConfig returns the calibrated configuration for a profile at
// the given epoch. An empty profile means medium.
func ProfileConfig(epoch Epoch, p ScaleProfile) (Config, error) {
	c := DefaultConfig(epoch)
	switch p {
	case ScaleSmall:
		return c.Scale(0.25), nil
	case ScaleMedium, "":
		return c, nil
	case ScaleLarge:
	default:
		return Config{}, fmt.Errorf("topology: unknown scale profile %q (want small, medium, or large)", p)
	}

	// Large: grow the roster toward the paper's shape and push the
	// advertised-prefix total past 10⁵ (the paper's hitlist has one
	// representative per routable /24). Peering probabilities shrink as
	// the roster grows so per-AS adjacency degree stays calibrated, and
	// the VP set stays at a size whose full Table 1 campaign completes in
	// minutes.
	c.NumTier1 = 8
	c.NumTransit = 100
	c.NumAccess = 520
	c.NumEnterprise = 700
	c.NumContent = 60
	c.NumUnknown = 160

	c.PrefixesPerTransit = 12
	c.PrefixesPerAccess = 170
	c.PrefixesPerEnterprise = 4
	c.PrefixesPerContent = 120
	c.PrefixesPerUnknown = 40

	c.RoutersPerTier1 = 6
	c.RoutersPerTransit = 6
	c.RoutersPerAccess = 10
	c.RoutersPerStub = 3
	c.RoutersPerCloud = 3

	c.TransitPeerProb = 0.12
	c.AccessPeerProb = 0.012
	c.ContentAccessPeerProb = 0.10
	c.ContentTransitPeerProb = 0.15
	c.CloudPeerProb = 0.45

	c.NumMLab = 14
	c.NumPlanetLab = 8
	c.MLabRateLimited = 2
	return c, nil
}
