package topology

import (
	"encoding/binary"
	"net/netip"
)

// Address plan: AS i owns the /16 supernet at addrBase + i<<16. Inside
// it, destination prefixes are /24s from the bottom (x.y.0.0/24,
// x.y.1.0/24, …), vantage-point hosts use the /24 at vpSlot, and
// infrastructure (link) addresses are allocated from the top downward.
// Mapping any address back to its owning AS is a shift, which keeps the
// routing oracle O(1).
const (
	addrBase     uint32 = 0x64000000 // 100.0.0.0
	maxASes             = 4096       // keeps supernets inside 100.0.0.0/4-ish space
	vpSlot              = 250        // third octet reserved for VP hosts
	maxDestSlots        = 240
)

// u32Addr converts a uint32 to a netip.Addr.
func u32Addr(v uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return netip.AddrFrom4(b)
}

// addrU32 converts an IPv4 netip.Addr to its uint32 value.
func addrU32(a netip.Addr) uint32 {
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}

// asPlan is the per-AS address allocator.
type asPlan struct {
	base  uint32 // supernet network address
	infra uint32 // next infrastructure address offset (counts down)
}

func newASPlan(asIdx int) *asPlan {
	return &asPlan{base: addrBase + uint32(asIdx)<<16, infra: 0xfffe}
}

// Supernet returns the AS's /16.
func (p *asPlan) Supernet() netip.Prefix {
	return netip.PrefixFrom(u32Addr(p.base), 16)
}

// DestPrefix returns the AS's j'th advertised /24.
func (p *asPlan) DestPrefix(j int) netip.Prefix {
	if j < 0 || j >= maxDestSlots {
		panic("topology: destination slot out of range")
	}
	return netip.PrefixFrom(u32Addr(p.base+uint32(j)<<8), 24)
}

// HostOctets are the last octets destination hosts may live at; hitlist
// discovery (internal/hitlist) sweeps these candidates the way Fan &
// Heidemann's history-based selection narrowed real prefixes. 129 is
// reserved for aliases.
var HostOctets = []uint8{1, 2, 10, 33, 50, 100, 200, 254}

// DestAddr returns the destination host address in prefix j at the
// given last octet.
func (p *asPlan) DestAddr(j int, octet uint8) netip.Addr {
	return u32Addr(p.base + uint32(j)<<8 + uint32(octet))
}

// AliasAddr returns the alias address paired with destination j (the
// ".129" of the same /24 — a second interface of the same device).
func (p *asPlan) AliasAddr(j int) netip.Addr { return u32Addr(p.base + uint32(j)<<8 + 129) }

// VPAddr returns the k'th vantage-point host address in the AS.
func (p *asPlan) VPAddr(k int) netip.Addr {
	if k < 0 || k >= 250 {
		panic("topology: VP slot out of range")
	}
	return u32Addr(p.base + vpSlot<<8 + uint32(k) + 1)
}

// NextInfra allocates a fresh infrastructure (link) address from the top
// of the supernet downward.
func (p *asPlan) NextInfra() netip.Addr {
	a := u32Addr(p.base + p.infra)
	p.infra--
	if p.infra <= uint32(vpSlot)<<8|0xff {
		panic("topology: infrastructure address space exhausted")
	}
	return a
}

// asOfAddr maps an address back to the owning AS index, or -1 when the
// address is outside the plan.
func asOfAddr(a netip.Addr, numASes int) int {
	v := addrU32(a)
	if v < addrBase {
		return -1
	}
	idx := int((v - addrBase) >> 16)
	if idx >= numASes {
		return -1
	}
	return idx
}
